package cluster

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/stats"
)

func newManagerForJob(t *testing.T, steps int, seedBase uint64, nodes int) *Manager {
	t.Helper()
	var ns []*Node
	for i := 0; i < nodes; i++ {
		ns = append(ns, newNode(t, nodeName(i), apps.LAMMPS(apps.DefaultRanks, steps), 0, seedBase+uint64(i)))
	}
	m, err := NewManager(EqualSplit{}, ConstantBudget(1e9), ns...) // budget overridden by the system
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

func TestSystemValidation(t *testing.T) {
	m := newManagerForJob(t, 50, 1, 1)
	if _, err := NewSystem(0, NewSystemJob("j", 1, 50, 0, m)); err == nil {
		t.Fatal("zero envelope accepted")
	}
	if _, err := NewSystem(400); err == nil {
		t.Fatal("no jobs accepted")
	}
	m2 := newManagerForJob(t, 50, 9, 1)
	if _, err := NewSystem(100,
		NewSystemJob("a", 1, 80, 0, m),
		NewSystemJob("b", 1, 80, 0, m2)); err == nil {
		t.Fatal("floors above envelope accepted")
	}
	m3 := newManagerForJob(t, 50, 17, 1)
	m4 := newManagerForJob(t, 50, 21, 1)
	if _, err := NewSystem(400,
		NewSystemJob("same", 1, 50, 0, m3),
		NewSystemJob("same", 1, 50, 0, m4)); err == nil {
		t.Fatal("duplicate job names accepted")
	}
}

// TestSystemHighPriorityArrivalShrinksBudget reproduces §II's motivating
// scenario end to end: a low-priority job runs alone with the whole
// machine, then a high-priority job arrives and the system cuts the
// low-priority job's budget; its NRM-side enforcement slows its online
// progress.
func TestSystemHighPriorityArrivalShrinksBudget(t *testing.T) {
	low := newManagerForJob(t, 1200, 1, 1)
	high := newManagerForJob(t, 300, 11, 1)

	sys, err := NewSystem(260,
		NewSystemJob("low", 1, 60, 0, low),
		NewSystemJob("high", 4, 60, 12, high), // arrives at epoch 12
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lowRes := results["low"]
	if lowRes == nil {
		t.Fatal("low-priority job missing from results")
	}

	// Budget: full machine before epoch 12, floor + 1/5 share after.
	bt := lowRes.BudgetTrace.Values()
	if len(bt) < 20 {
		t.Fatalf("budget epochs = %d", len(bt))
	}
	before := stats.Mean(bt[4:10])
	after := stats.Mean(bt[14:20])
	if before < 250 {
		t.Fatalf("solo budget = %v, want the whole 260 W envelope", before)
	}
	if after > before*0.6 {
		t.Fatalf("budget after high-priority arrival = %v, want a deep cut from %v", after, before)
	}

	// Progress: the low-priority job's normalized progress drops.
	mp := lowRes.MeanProgress.Values()
	pBefore := stats.Mean(mp[4:10])
	pAfter := stats.Mean(mp[14:20])
	if pAfter >= pBefore*0.95 {
		t.Fatalf("low-priority progress unchanged: %v before, %v after", pBefore, pAfter)
	}
	if _, ok := results["high"]; !ok {
		t.Fatal("high-priority job missing from results")
	}
}

func TestSystemFloorsRespected(t *testing.T) {
	low := newManagerForJob(t, 600, 1, 1)
	high := newManagerForJob(t, 600, 11, 1)
	sys, err := NewSystem(300,
		NewSystemJob("low", 1, 90, 0, low),
		NewSystemJob("high", 9, 90, 0, high),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, j := range sys.jobs {
		for _, p := range j.BudgetTrace().Values() {
			if p < 90-1e-9 {
				t.Fatalf("job %s budget %v fell below its 90 W floor", j.Name, p)
			}
		}
	}
	// Total never exceeds the envelope.
	lb, hb := sys.jobs[0].BudgetTrace().Values(), sys.jobs[1].BudgetTrace().Values()
	for i := range lb {
		if lb[i]+hb[i] > 300+1e-9 {
			t.Fatalf("epoch %d: budgets %v + %v exceed the envelope", i, lb[i], hb[i])
		}
	}
}

func TestManagerStepFinishEquivalentToRun(t *testing.T) {
	mk := func() *Manager {
		return func() *Manager {
			m, err := NewManager(EqualSplit{}, ConstantBudget(280),
				newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 150), 0, 1),
				newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 150), 0, 2))
			if err != nil {
				t.Fatal(err)
			}
			return m
		}()
	}
	r1, err := mk().Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m2 := mk()
	for {
		done, err := m2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	r2, err := m2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed || r1.TotalEnergyJ != r2.TotalEnergyJ {
		t.Fatalf("Run vs Step loop diverged: %v/%v, %v/%v",
			r1.Elapsed, r2.Elapsed, r1.TotalEnergyJ, r2.TotalEnergyJ)
	}
	if _, err := m2.Finish(); err == nil {
		t.Fatal("second Finish accepted")
	}
}
