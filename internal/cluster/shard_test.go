package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
	"progresscap/internal/trace"
)

// seriesSig renders a trace bit-exactly (%b floats), so two runs agree
// only if every point matches to the last mantissa bit.
func seriesSig(b *strings.Builder, s *trace.Series) {
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		fmt.Fprintf(b, "%d:%b|", p.T, p.V)
	}
	b.WriteByte('\n')
}

// managerSig flattens a Manager run into a bit-exact signature: every
// node's full engine result signature plus the job-level traces.
func managerSig(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%d completed=%t energy=%b\n", res.Elapsed, res.Completed, res.TotalEnergyJ)
	seriesSig(&b, res.MinProgress)
	seriesSig(&b, res.MeanProgress)
	seriesSig(&b, res.BudgetTrace)
	for _, n := range res.Nodes {
		fmt.Fprintf(&b, "node %s\n", n.Name())
		seriesSig(&b, n.CapTrace())
		b.WriteString(n.Result().Signature())
	}
	return b.String()
}

// leasedSig flattens a LeasedCluster run the same way, including the
// distributed-safety counters.
func leasedSig(res *LeasedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%d completed=%t energy=%b work=%b overshoot=%b\n",
		res.Elapsed, res.Completed, res.TotalEnergyJ, res.WorkUnits, res.PeakOvershootW)
	fmt.Fprintf(&b, "failovers=%d grants=%d fenced=%d expired=%d undelivered=%d reverts=%d\n",
		res.Failovers, res.GrantsIssued, res.FencedGrants, res.ExpiredOnArrival,
		res.UndeliveredGrants, res.ExpiredReverts)
	seriesSig(&b, res.MinProgress)
	seriesSig(&b, res.MeanProgress)
	seriesSig(&b, res.BudgetTrace)
	seriesSig(&b, res.EnforcedTrace)
	for _, n := range res.Nodes {
		fmt.Fprintf(&b, "node %s\n", n.Name())
		seriesSig(&b, n.CapTrace())
		b.WriteString(n.Result().Signature())
	}
	return b.String()
}

// shardCase runs a 6-node Manager job — heterogeneous silicon, a crash
// with recovery, a slowdown, a decaying budget — at the given worker
// count and returns its full signature.
func runManagerSharded(t *testing.T, workers int) string {
	t.Helper()
	m, err := NewManager(ProgressAware{Gain: 2}, DecayingBudget(700, 500, 10*time.Second),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 900), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 900), 1.15, 2),
		newNode(t, "n2", apps.LAMMPS(apps.DefaultRanks, 900), 0, 3),
		newNode(t, "n3", apps.LAMMPS(apps.DefaultRanks, 900), 1.3, 4),
		newNode(t, "n4", apps.LAMMPS(apps.DefaultRanks, 900), 0, 5),
		newNode(t, "n5", apps.LAMMPS(apps.DefaultRanks, 900), 0, 6),
	)
	if err != nil {
		t.Fatal(err)
	}
	m.SetNodeWorkers(workers)
	m.SetFaults(fault.NewInjector(fault.Plan{Nodes: map[string]fault.NodePlan{
		"n1": {CrashAt: 4 * time.Second, RecoverAt: 8 * time.Second},
		"n3": {SlowFactor: 0.6},
	}}))
	res, err := m.Run(12 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return managerSig(res)
}

func runLeasedSharded(t *testing.T, workers int) string {
	t.Helper()
	plan := fault.Plan{
		Nodes: map[string]fault.NodePlan{
			"n1": {CrashAt: 5 * time.Second, RecoverAt: 9 * time.Second},
		},
		Managers: map[string]fault.ManagerPlan{
			PrimaryManager: {KillAt: 6 * time.Second},
		},
	}
	cfg := LeasedConfig{
		Policy:      EqualSplit{},
		Budget:      ConstantBudget(leasedBudgetW),
		Faults:      fault.NewInjector(plan),
		NodeWorkers: workers,
	}
	lc, err := NewLeasedCluster(cfg,
		newLeasedTestNode(t, "n0", 1),
		newLeasedTestNode(t, "n1", 2),
		newLeasedTestNode(t, "n2", 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lc.Run(14 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return leasedSig(res)
}

// TestClusterParallelDeterminism is the tentpole's proof: serial and
// sharded stepping produce byte-identical result signatures at 1, 2,
// and 8 workers, for both the plain Manager and the replicated
// LeasedCluster, under active fault plans. It runs under -race too —
// the schedule varies there, the signatures must not.
func TestClusterParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	mgr := map[int]string{}
	for _, w := range []int{1, 2, 8} {
		mgr[w] = runManagerSharded(t, w)
	}
	if mgr[2] != mgr[1] || mgr[8] != mgr[1] {
		t.Fatal("Manager signatures diverge across worker counts")
	}
	leased := map[int]string{}
	for _, w := range []int{1, 2, 8} {
		leased[w] = runLeasedSharded(t, w)
	}
	if leased[2] != leased[1] || leased[8] != leased[1] {
		t.Fatal("LeasedCluster signatures diverge across worker counts")
	}
}

// TestEpochSeriesAligned pins the trace-timestamp contract: within one
// epoch, the budget in force, the caps programmed, and the progress
// measured are all stamped on the same instant — the epoch's end.
func TestEpochSeriesAligned(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	m, err := NewManager(EqualSplit{}, ConstantBudget(300),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 900), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 900), 0, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 5
	for i := 0; i < epochs; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < epochs; i++ {
		want := time.Duration(i+1) * Epoch
		if got := res.BudgetTrace.At(i).T; got != want {
			t.Fatalf("budget epoch %d stamped %v, want %v", i, got, want)
		}
		if got := res.MinProgress.At(i).T; got != want {
			t.Fatalf("min-progress epoch %d stamped %v, want %v", i, got, want)
		}
		if got := res.MeanProgress.At(i).T; got != want {
			t.Fatalf("mean-progress epoch %d stamped %v, want %v", i, got, want)
		}
		for _, n := range res.Nodes {
			if got := n.CapTrace().At(i).T; got != want {
				t.Fatalf("%s cap epoch %d stamped %v, want %v", n.Name(), i, got, want)
			}
		}
	}

	lc := newLeasedTestCluster(t, fault.Plan{})
	stepEpochs(t, lc, epochs)
	lres, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < epochs; i++ {
		want := time.Duration(i+1) * Epoch
		if got := lres.BudgetTrace.At(i).T; got != want {
			t.Fatalf("leased budget epoch %d stamped %v, want %v", i, got, want)
		}
		if got := lres.EnforcedTrace.At(i).T; got != want {
			t.Fatalf("leased enforced epoch %d stamped %v, want %v", i, got, want)
		}
		if got := lres.MinProgress.At(i).T; got != want {
			t.Fatalf("leased min-progress epoch %d stamped %v, want %v", i, got, want)
		}
	}
}

// TestShardPoolErrorOrder proves error reporting is schedule-
// independent: whichever shard finishes first, the error returned is
// the failing node with the lowest index.
func TestShardPoolErrorOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := &shardPool{workers: workers}
		err := p.run(16, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("node %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "node 3 failed" {
			t.Fatalf("workers=%d: err = %v, want node 3 failed", workers, err)
		}
	}
}

// TestShardPoolCoverage proves every index runs exactly once at any
// worker count, including the degenerate shapes (more workers than
// nodes, zero nodes, workers <= 0).
func TestShardPoolCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16, 64} {
		for _, n := range []int{0, 1, 2, 5, 16, 33} {
			p := &shardPool{workers: workers}
			hits := make([]int32, n)
			if err := p.run(n, func(i int) error {
				hits[i]++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
			if n > 0 && p.stats.Epochs != 1 {
				t.Fatalf("stats.Epochs = %d", p.stats.Epochs)
			}
		}
	}
}

func TestShardStatsMerge(t *testing.T) {
	a := ShardStats{Epochs: 2, Shards: 4, PeakWorkers: 3, BarrierWait: time.Millisecond}
	a.Merge(ShardStats{Epochs: 5, Shards: 2, PeakWorkers: 6, BarrierWait: time.Millisecond})
	want := ShardStats{Epochs: 7, Shards: 4, PeakWorkers: 6, BarrierWait: 2 * time.Millisecond}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
}

func TestShardPoolSerialFastPathStopsEarly(t *testing.T) {
	var calls int
	p := &shardPool{workers: 1}
	err := p.run(10, func(i int) error {
		calls++
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("serial path ran %d calls (err %v), want 3", calls, err)
	}
}
