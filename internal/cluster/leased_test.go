package cluster

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/rapl"
)

const (
	leasedBudgetW  = 300.0
	leasedSafeCapW = DefaultQuarantineCapW
)

// newLeasedTestNode builds a leased node on a coarse 1 ms tick (the
// control period): ~10x faster than the default plant, precise enough
// for epoch-level assertions.
func newLeasedTestNode(t *testing.T, name string, seed uint64) *LeasedNode {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	cfg.Tick = time.Millisecond
	e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
	if err != nil {
		t.Fatal(err)
	}
	return NewLeasedNode(name, e)
}

func newLeasedTestCluster(t *testing.T, plan fault.Plan) *LeasedCluster {
	t.Helper()
	cfg := LeasedConfig{
		Policy: EqualSplit{},
		Budget: ConstantBudget(leasedBudgetW),
		Faults: fault.NewInjector(plan),
	}
	lc, err := NewLeasedCluster(cfg,
		newLeasedTestNode(t, "n0", 1),
		newLeasedTestNode(t, "n1", 2),
		newLeasedTestNode(t, "n2", 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func stepEpochs(t *testing.T, lc *LeasedCluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := lc.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func assertInvariant(t *testing.T, res *LeasedResult) {
	t.Helper()
	if res.PeakOvershootW > 0 {
		t.Errorf("enforced caps exceeded the budget by %.3f W", res.PeakOvershootW)
	}
	for i := 0; i < res.EnforcedTrace.Len(); i++ {
		p := res.EnforcedTrace.At(i)
		if p.V > leasedBudgetW {
			t.Fatalf("enforced %.3f W > budget %.0f W at %v", p.V, leasedBudgetW, p.T)
		}
	}
}

func TestLeasedClusterHealthyRun(t *testing.T) {
	lc := newLeasedTestCluster(t, fault.Plan{})
	stepEpochs(t, lc, 10)

	// Healthy steady state: every node holds a live lease well above the
	// safe cap, renewed each epoch.
	for _, n := range lc.nodes {
		if cap := n.holder.CapAt(lc.elapsed); cap <= leasedSafeCapW {
			t.Errorf("node %s cap %.1f W not above safe cap in a healthy run", n.name, cap)
		}
	}
	res, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertInvariant(t, res)
	if res.Failovers != 0 || res.FencedGrants != 0 || res.ExpiredReverts != 0 {
		t.Errorf("healthy run saw failovers=%d fenced=%d reverts=%d",
			res.Failovers, res.FencedGrants, res.ExpiredReverts)
	}
	if res.GrantsIssued == 0 || res.UndeliveredGrants != 0 {
		t.Errorf("grants issued=%d undelivered=%d", res.GrantsIssued, res.UndeliveredGrants)
	}
	// Acks ride the control lane of the manager inbox.
	ctl, tel, ok := lc.ManagerInboxStats(PrimaryManager)
	if !ok || ctl.Delivered == 0 || tel.Delivered == 0 {
		t.Errorf("inbox lanes idle: control %+v telemetry %+v", ctl, tel)
	}
}

func TestLeasedClusterFailover(t *testing.T) {
	lc := newLeasedTestCluster(t, fault.Plan{
		Managers: map[string]fault.ManagerPlan{
			PrimaryManager: {KillAt: 5 * time.Second},
		},
	})
	stepEpochs(t, lc, 16)

	// After the standby's takeover, leases must be flowing again: every
	// node above the safe cap at the end.
	for _, n := range lc.nodes {
		if cap := n.holder.CapAt(lc.elapsed); cap <= leasedSafeCapW {
			t.Errorf("node %s cap %.1f W not restored after failover", n.name, cap)
		}
	}
	res, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertInvariant(t, res)
	if res.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.Failovers)
	}
	// The gap between the primary's death and the standby's first grants
	// is at most FailoverEpochs+1 epochs < LeaseTTL, so leases never
	// lapse and the deadmen stay quiet.
	if res.ExpiredReverts != 0 {
		t.Errorf("deadman tripped %d times across a fast failover", res.ExpiredReverts)
	}
}

func TestLeasedClusterPartitionRevertsWithinTTL(t *testing.T) {
	// n1 is cut off from both managers for 8 s. Its lease must lapse and
	// the RAPL deadman must revert it to the safe cap within one TTL of
	// the last renewal; after the heal and probation it is re-admitted.
	lc := newLeasedTestCluster(t, fault.Plan{
		Partitions: []fault.Partition{{
			Window: fault.Window{From: 6 * time.Second, To: 14 * time.Second},
			A:      []string{"n1"},
			B:      []string{PrimaryManager, StandbyManager},
		}},
	})

	// Run to just past partition start + TTL (renewal at 5 s is the last
	// delivered; the lease lapses by 8 s).
	stepEpochs(t, lc, 9)
	n1 := lc.byName["n1"]
	capW, err := registerCapW(n1.eng.Device())
	if err != nil {
		t.Fatal(err)
	}
	if capW != leasedSafeCapW {
		t.Fatalf("partitioned node register = %.1f W at t=%v, want safe cap %.0f W within one TTL",
			capW, lc.elapsed, float64(leasedSafeCapW))
	}
	if trips := n1.eng.Controller().DeadmanTrips(); trips == 0 {
		t.Error("deadman never tripped on the partitioned node")
	}

	// Heal at 14 s; probation (3 epochs of telemetry) must re-admit n1.
	stepEpochs(t, lc, 24-9)
	if cap := n1.holder.CapAt(lc.elapsed); cap <= leasedSafeCapW {
		t.Errorf("healed node still at %.1f W, never re-admitted", cap)
	}
	res, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertInvariant(t, res)
	if res.UndeliveredGrants == 0 {
		t.Error("partition ate no grants — schedule did not bite")
	}
	if res.Failovers != 0 {
		t.Errorf("node partition triggered %d manager failovers", res.Failovers)
	}
}

func TestLeasedClusterDeposedPrimaryIsFenced(t *testing.T) {
	// The primary journals its epoch-4 grant batch, then pauses before
	// sending it (TearsSend). The standby takes over; when the old
	// primary resumes at 12 s it flushes the stale batch — every node
	// must reject it by epoch fencing, and the old primary must demote.
	lc := newLeasedTestCluster(t, fault.Plan{
		Managers: map[string]fault.ManagerPlan{
			PrimaryManager: {PauseAt: 4500 * time.Millisecond, ResumeAt: 12 * time.Second},
		},
	})
	stepEpochs(t, lc, 18)

	res, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertInvariant(t, res)
	if res.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", res.Failovers)
	}
	if res.FencedGrants == 0 && res.ExpiredOnArrival == 0 {
		t.Error("deposed primary's stale flush was not rejected anywhere")
	}
	// Exactly one primary at the end — the resumed one stays demoted.
	primaries := 0
	for _, m := range lc.managers {
		if m.primary {
			primaries++
		}
	}
	if primaries != 1 || lc.managers[0].primary {
		t.Errorf("primary set wrong after depose: m0=%v m1=%v",
			lc.managers[0].primary, lc.managers[1].primary)
	}
}

func TestLeasedClusterBothManagersDeadDecaysToSafeCap(t *testing.T) {
	// With nobody to renew, every lease lapses and the hardware deadman
	// reverts every node — the budget is bounded by safe caps alone.
	lc := newLeasedTestCluster(t, fault.Plan{
		Managers: map[string]fault.ManagerPlan{
			PrimaryManager: {KillAt: 4 * time.Second},
			StandbyManager: {KillAt: 4 * time.Second},
		},
	})
	stepEpochs(t, lc, 12)
	enforced, err := lc.EnforcedCapW(lc.elapsed)
	if err != nil {
		t.Fatal(err)
	}
	want := leasedSafeCapW * float64(len(lc.nodes))
	if enforced != want {
		t.Fatalf("enforced %.1f W with both managers dead, want the %.0f W safe-cap floor", enforced, want)
	}
	res, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertInvariant(t, res)
	if res.ExpiredReverts == 0 {
		t.Error("no deadman trips despite total manager loss")
	}
}

// TestLeasedClusterCapWriterHook pins the per-node cap-write hook: when
// LeasedConfig.CapWriter is set, every cap the cluster applies — boot
// cap and per-epoch lease grants — flows through it, and the run's
// outcome matches the default register path (the hook here delegates to
// the same write, so this is pure plumbing, not a behavior change).
func TestLeasedClusterCapWriterHook(t *testing.T) {
	writes := map[*engine.Engine]int{}
	cfg := LeasedConfig{
		Policy: EqualSplit{},
		Budget: ConstantBudget(leasedBudgetW),
		Faults: fault.NewInjector(fault.Plan{}),
		CapWriter: func(eng *engine.Engine) func(float64) error {
			return func(capW float64) error {
				writes[eng]++
				return rapl.WriteLimitRetry(eng.Device(), capW, 10*time.Millisecond)
			}
		},
	}
	lc, err := NewLeasedCluster(cfg,
		newLeasedTestNode(t, "n0", 1),
		newLeasedTestNode(t, "n1", 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	stepEpochs(t, lc, 6)
	res, err := lc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertInvariant(t, res)
	if len(writes) != 2 {
		t.Fatalf("cap writer built for %d nodes, want 2", len(writes))
	}
	for eng, n := range writes {
		// Boot cap plus at least one granted cap per node.
		if n < 2 {
			t.Errorf("node engine %p saw %d hook writes, want >= 2", eng, n)
		}
	}
}
