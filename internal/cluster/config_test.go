package cluster

import (
	"strings"
	"testing"

	"progresscap/internal/apps"
	"progresscap/internal/rapl"
)

func TestConfigValidate(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if c.QuarantineCapW != DefaultQuarantineCapW {
		t.Errorf("default not filled: %v", c.QuarantineCapW)
	}

	neg := Config{QuarantineCapW: -1}
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("negative cap accepted: %v", err)
	}
	hot := Config{QuarantineCapW: rapl.FirmwareDefaultCapW}
	if err := hot.Validate(); err == nil || !strings.Contains(err.Error(), "TDP") {
		t.Errorf("cap at TDP accepted: %v", err)
	}
}

func TestNewManagerCfgRejectsBadConfig(t *testing.T) {
	n := newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 5), 0, 1)
	if _, err := NewManagerCfg(Config{QuarantineCapW: -5}, EqualSplit{}, ConstantBudget(100), n); err == nil {
		t.Fatal("bad config accepted")
	}
}
