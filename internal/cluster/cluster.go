// Package cluster implements the job level of the Argo power-management
// hierarchy the paper is motivated by (§II): a job receives a power
// budget from the system, distributes it across its compute nodes
// "according to application characteristics and node variability", and
// each node's resource manager enforces its share through RAPL while the
// job manager watches online progress — the capability the paper argues
// progress monitoring enables.
//
// The manager advances every node engine in one-second epochs. At each
// epoch it reads per-node feedback (measured power, online performance,
// a running baseline estimate), asks its division policy for new
// per-node caps under the current job budget, and programs them through
// each node's whitelisted MSR interface — exactly the interposition
// point a real NRM uses.
package cluster

import (
	"fmt"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/rapl"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
)

// Epoch is the job manager's control period.
const Epoch = time.Second

// DefaultQuarantineCapW is the default power cap held on a fenced node.
// It must be a small *positive* value: 0 means "uncapped" in RAPL
// semantics, and an unresponsive node left uncapped could silently burn
// its full TDP out of the job's allocation.
const DefaultQuarantineCapW = 40

// Config carries the manager knobs that were previously compile-time
// constants. The zero value is replaced by defaults in Validate.
type Config struct {
	// QuarantineCapW is the power cap held on a fenced node. Must be
	// positive (0 is "uncapped" in RAPL semantics) and below the node
	// TDP — quarantine exists to bound a silent node's draw, so a cap at
	// or above TDP would be a no-op disguised as a safety measure.
	QuarantineCapW float64
}

// DefaultClusterConfig returns the defaults.
func DefaultClusterConfig() Config {
	return Config{QuarantineCapW: DefaultQuarantineCapW}
}

// Validate fills defaults and rejects unsafe values.
func (c *Config) Validate() error {
	if c.QuarantineCapW == 0 {
		c.QuarantineCapW = DefaultQuarantineCapW
	}
	if c.QuarantineCapW < 0 {
		return fmt.Errorf("cluster: QuarantineCapW %.1f W must be positive (0 means uncapped in RAPL)", c.QuarantineCapW)
	}
	if c.QuarantineCapW >= rapl.FirmwareDefaultCapW {
		return fmt.Errorf("cluster: QuarantineCapW %.1f W must be below the node TDP (%d W)",
			c.QuarantineCapW, rapl.FirmwareDefaultCapW)
	}
	return nil
}

// NodeStatus is the per-epoch feedback a policy divides on.
type NodeStatus struct {
	Name     string
	CapW     float64 // cap currently programmed (0 = uncapped)
	PowerW   float64 // package power over the last epoch
	Rate     float64 // online performance over the last epoch
	Baseline float64 // running estimate of the uncapped rate
	Done     bool
	// Failed marks a node the manager's watchdog has fenced: its progress
	// stream went silent for FailureEpochs. Policies must not allocate
	// budget to it; the manager holds it at a quarantine cap instead.
	Failed bool
}

// allocatable reports whether a node should receive a budget share.
func (s NodeStatus) allocatable() bool { return !s.Done && !s.Failed }

// Normalized returns the node's progress as a fraction of its baseline
// estimate (1 when no baseline is known yet).
func (s NodeStatus) Normalized() float64 {
	if s.Baseline <= 0 {
		return 1
	}
	return s.Rate / s.Baseline
}

// Policy divides a job budget across nodes. Implementations return one
// cap per status entry (0 = leave the node uncapped); the manager clamps
// the sum to the budget.
type Policy interface {
	Name() string
	Divide(budgetW float64, nodes []NodeStatus) []float64
}

// EqualSplit gives every unfinished node the same share — the obvious
// progress-agnostic baseline policy.
type EqualSplit struct{}

// Name implements Policy.
func (EqualSplit) Name() string { return "equal-split" }

// Divide implements Policy.
func (EqualSplit) Divide(budgetW float64, nodes []NodeStatus) []float64 {
	caps := make([]float64, len(nodes))
	alive := 0
	for _, n := range nodes {
		if n.allocatable() {
			alive++
		}
	}
	if alive == 0 {
		return caps
	}
	share := budgetW / float64(alive)
	for i, n := range nodes {
		if n.allocatable() {
			caps[i] = share
		}
	}
	return caps
}

// ProgressAware shifts power toward nodes whose normalized online
// performance lags, equalizing progress across the job the way the
// paper's envisioned NRM policies (and critical-path systems like POW /
// Conductor) do. It needs the progress metric the paper defines — a
// power- or time-based policy cannot see which node is behind on
// *science*.
type ProgressAware struct {
	// Gain scales how aggressively power follows the progress gap;
	// 0 defaults to 1.
	Gain float64
}

// Name implements Policy.
func (ProgressAware) Name() string { return "progress-aware" }

// Divide implements Policy.
func (p ProgressAware) Divide(budgetW float64, nodes []NodeStatus) []float64 {
	gain := p.Gain
	if gain == 0 {
		gain = 1
	}
	caps := make([]float64, len(nodes))
	var weights []float64
	var alive []int
	for i, n := range nodes {
		if !n.allocatable() {
			continue
		}
		// Need grows as normalized progress falls below the job mean.
		need := 1 + gain*(1-stats.Clamp(n.Normalized(), 0, 2))
		weights = append(weights, stats.Clamp(need, 0.25, 4))
		alive = append(alive, i)
	}
	if len(alive) == 0 {
		return caps
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for k, i := range alive {
		caps[i] = budgetW * weights[k] / wsum
	}
	return caps
}

// Throughput maximizes the job's *mean* progress by steering power
// toward nodes that convert watts into normalized progress most
// efficiently — the right policy for embarrassingly parallel jobs with
// no synchronization, and the foil to ProgressAware for synchronous
// ones (it starves inefficient silicon instead of compensating for it).
type Throughput struct{}

// Name implements Policy.
func (Throughput) Name() string { return "throughput" }

// Divide implements Policy.
func (Throughput) Divide(budgetW float64, nodes []NodeStatus) []float64 {
	caps := make([]float64, len(nodes))
	var weights []float64
	var alive []int
	for i, n := range nodes {
		if !n.allocatable() {
			continue
		}
		// Efficiency: normalized progress per watt drawn; unknown power
		// (first epochs) counts as average.
		eff := 1.0
		if n.PowerW > 0 {
			eff = n.Normalized() / n.PowerW * 100
		}
		weights = append(weights, stats.Clamp(eff, 0.25, 4))
		alive = append(alive, i)
	}
	if len(alive) == 0 {
		return caps
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for k, i := range alive {
		caps[i] = budgetW * weights[k] / wsum
	}
	return caps
}

// BudgetFunc is the job's power budget over time, in watts.
type BudgetFunc func(elapsed time.Duration) float64

// ConstantBudget returns a fixed job budget.
func ConstantBudget(w float64) BudgetFunc {
	return func(time.Duration) float64 { return w }
}

// DecayingBudget decreases linearly from startW to endW over the given
// duration, then holds — the paper's "gradually decreasing power
// budgets" scenario.
func DecayingBudget(startW, endW float64, over time.Duration) BudgetFunc {
	return func(t time.Duration) float64 {
		if t >= over {
			return endW
		}
		frac := float64(t) / float64(over)
		return startW + (endW-startW)*frac
	}
}

// Node is one compute node under the manager.
type Node struct {
	name     string
	eng      *engine.Engine
	capW     float64
	baseline float64
	lastRate float64
	lastPow  float64
	capTrace *trace.Series
	result   *engine.Result

	// Watchdog state: a node whose monitor sample count stops moving for
	// FailureEpochs consecutive epochs is fenced (failed = true); a
	// fenced node must then keep samples flowing for ProbationEpochs
	// consecutive epochs before it is un-fenced and gets its budget
	// share back.
	failed         bool
	lastSamples    int
	stagnantEpochs int
	freshEpochs    int
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// CapTrace returns the caps the manager programmed on this node.
func (n *Node) CapTrace() *trace.Series { return n.capTrace }

// Result returns the node's engine result (after Run).
func (n *Node) Result() *engine.Result { return n.result }

// NewNode wraps an engine. The engine must not have its own policy
// daemon — the cluster manager owns the node's power limit.
func NewNode(name string, eng *engine.Engine) *Node {
	n := &Node{
		name:     name,
		eng:      eng,
		capTrace: trace.NewSeries("cluster.cap."+name, "W"),
	}
	eng.SetWindowHook(func(ws engine.WindowStats) { n.lastPow = ws.PkgW })
	return n
}

// Result is the job-level outcome.
type Result struct {
	Elapsed time.Duration
	// MinProgress and MeanProgress track the job's normalized progress
	// per epoch: the minimum across nodes (the bulk-synchronous job
	// rate) and the mean.
	MinProgress  *trace.Series
	MeanProgress *trace.Series
	BudgetTrace  *trace.Series
	TotalEnergyJ float64
	Nodes        []*Node
	Completed    bool
}

// MeanMinProgress averages the per-epoch minimum normalized progress —
// the headline number for comparing division policies on synchronous
// jobs.
func (r *Result) MeanMinProgress() float64 {
	vals := r.MinProgress.Values()
	// Skip the calibration epochs where baselines are still settling.
	if len(vals) > 4 {
		vals = vals[2:]
	}
	return stats.Mean(vals)
}

// Manager drives a set of nodes under a job budget.
type Manager struct {
	nodes  []*Node
	policy Policy
	budget BudgetFunc
	cfg    Config

	// UncappedEpochs is how many initial epochs run without caps to
	// estimate per-node baselines (default 2).
	UncappedEpochs int

	// FailureEpochs is how many consecutive epochs a node's progress
	// stream may stay frozen before the watchdog fences it (default 3).
	FailureEpochs int

	// ProbationEpochs is how many consecutive epochs a fenced node must
	// keep samples flowing before the watchdog un-fences it and returns
	// its budget share (default 3). Without it, a flapping node would
	// bounce in and out of the allocation every epoch, destabilizing
	// every healthy node's cap.
	ProbationEpochs int

	faults *fault.Injector

	// pool fans node advancement across shards each epoch (see shard.go);
	// its worker bound is set with SetNodeWorkers.
	pool shardPool

	// policyHook, when non-nil, is consulted each post-calibration epoch
	// and may swap the division policy at runtime (see SetPolicyHook).
	policyHook PolicyHook

	epoch    int
	elapsed  time.Duration
	res      *Result
	finished bool

	// budgetOverride, when >= 0, replaces the BudgetFunc for the next
	// epochs — how a system-level controller retargets a running job.
	budgetOverride float64
}

// NewManager assembles a job manager with default Config.
func NewManager(policy Policy, budget BudgetFunc, nodes ...*Node) (*Manager, error) {
	return NewManagerCfg(DefaultClusterConfig(), policy, budget, nodes...)
}

// NewManagerCfg assembles a job manager with an explicit Config.
func NewManagerCfg(cfg Config, policy Policy, budget BudgetFunc, nodes ...*Node) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil || budget == nil {
		return nil, fmt.Errorf("cluster: nil policy or budget")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if seen[n.name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.name)
		}
		seen[n.name] = true
	}
	return &Manager{nodes: nodes, policy: policy, budget: budget, cfg: cfg,
		UncappedEpochs: 2, FailureEpochs: 3, ProbationEpochs: 3, budgetOverride: -1}, nil
}

// SetFaults installs a fault injector whose per-node plans (crash,
// slowdown) the manager consults while stepping. Call before the first
// Step.
func (m *Manager) SetFaults(inj *fault.Injector) { m.faults = inj }

// SetNodeWorkers bounds how many node shards advance concurrently each
// epoch: 0 (the default) means GOMAXPROCS, 1 means the plain serial
// loop. Results are byte-identical at any setting — engines are fully
// self-contained — so this is purely a wall-clock knob. Call before the
// first Step.
func (m *Manager) SetNodeWorkers(workers int) { m.pool.workers = workers }

// ShardStats returns the shard pool's accumulated counters.
func (m *Manager) ShardStats() ShardStats { return m.pool.stats }

// FailedNodes lists the nodes currently fenced by the watchdog.
func (m *Manager) FailedNodes() []string {
	var out []string
	for _, n := range m.nodes {
		if n.failed {
			out = append(out, n.name)
		}
	}
	return out
}

// SetBudgetOverride replaces the job's budget function with a fixed
// value from the next epoch on (a system controller retargeting the
// job). A negative value restores the original function.
func (m *Manager) SetBudgetOverride(watts float64) { m.budgetOverride = watts }

// Done reports whether every node's workload has completed.
func (m *Manager) Done() bool {
	for _, n := range m.nodes {
		if !n.eng.Done() {
			return false
		}
	}
	return true
}

// Statuses snapshots the nodes' current feedback.
func (m *Manager) Statuses() []NodeStatus { return m.statuses() }

func (m *Manager) ensureResult() {
	if m.res == nil {
		m.res = &Result{
			MinProgress:  trace.NewSeries("cluster.progress.min", "normalized"),
			MeanProgress: trace.NewSeries("cluster.progress.mean", "normalized"),
			BudgetTrace:  trace.NewSeries("cluster.budget", "W"),
			Nodes:        m.nodes,
		}
	}
}

// Step advances the job by one epoch: decide caps, program them, advance
// every node, collect feedback. It reports whether the job is done.
func (m *Manager) Step() (bool, error) {
	if m.finished {
		return true, fmt.Errorf("cluster: Step after Finish")
	}
	m.ensureResult()
	res := m.res
	// Every per-epoch series is stamped at the epoch's end instant, so
	// the budget in force, the caps programmed, and the progress measured
	// over the same epoch all align on one timestamp.
	end := m.elapsed + Epoch

	// 1. Decide and program caps.
	budgetW := m.budget(m.elapsed)
	if m.budgetOverride >= 0 {
		budgetW = m.budgetOverride
	}
	res.BudgetTrace.Add(end, budgetW)
	statuses := m.statuses()
	if m.policyHook != nil && m.epoch >= m.UncappedEpochs {
		if p := m.policyHook(m.epoch, statuses); p != nil {
			m.policy = p
		}
	}

	// Fenced nodes are held at the quarantine cap; that power comes out
	// of the job budget before the policy divides the remainder among
	// healthy nodes.
	divisible := budgetW
	for _, s := range statuses {
		if s.Failed && !s.Done {
			divisible -= m.cfg.QuarantineCapW
		}
	}
	if divisible < 0 {
		divisible = 0
	}

	var caps []float64
	if m.epoch < m.UncappedEpochs {
		caps = make([]float64, len(m.nodes)) // calibration: uncapped
	} else {
		caps = m.policy.Divide(divisible, statuses)
		if len(caps) != len(m.nodes) {
			return false, fmt.Errorf("cluster: policy %s returned %d caps for %d nodes",
				m.policy.Name(), len(caps), len(m.nodes))
		}
		clampCaps(caps, divisible)
		for i, s := range statuses {
			if s.Failed && !s.Done {
				caps[i] = m.cfg.QuarantineCapW
			}
		}
	}
	for i, n := range m.nodes {
		n.capW = caps[i]
		if err := rapl.WriteLimitRetry(n.eng.Device(), caps[i], 10*time.Millisecond); err != nil {
			return false, fmt.Errorf("cluster: programming %s: %w", n.name, err)
		}
		n.capTrace.Add(end, caps[i])
	}

	// 2. Advance every node one epoch, sharded across the pool (engines
	// are self-contained, so distinct nodes advance concurrently without
	// observable effect — see shard.go). A crashed node is frozen in
	// place — it burns no virtual time and produces no reports, which is
	// exactly what the watchdog must detect from the outside. A slowed
	// node gets its frequency ceiling applied before it steps. The crash
	// and ceiling checks are pure window lookups on the node's own plan,
	// safe inside the parallel section.
	now := m.elapsed
	err := m.pool.run(len(m.nodes), func(i int) error {
		n := m.nodes[i]
		if n.eng.Done() {
			return nil
		}
		if np := m.nodeFaults(n); np != nil {
			if np.Crashed(now) {
				return nil
			}
			if frac := np.FreqCeilingFrac(now); frac < 1 {
				n.eng.SetFreqCeiling(frac * n.eng.MaxFreqMHz())
			}
		}
		if _, err := n.eng.Advance(Epoch); err != nil {
			return fmt.Errorf("cluster: advancing %s: %w", n.name, err)
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	m.elapsed += Epoch
	m.epoch++

	// 3. Collect feedback, run the watchdog, and compute the job
	// progress metrics over healthy nodes only — a fenced node's frozen
	// last rate must not drag the job minimum to zero forever.
	min, mean, alive := 1.0, 0.0, 0
	for _, n := range m.nodes {
		m.refresh(n)
		m.watchdog(n)
		if n.eng.Done() || n.failed {
			continue
		}
		alive++
		norm := NodeStatus{Rate: n.lastRate, Baseline: n.baseline}.Normalized()
		if norm < min {
			min = norm
		}
		mean += norm
	}
	if alive > 0 {
		res.MinProgress.Add(m.elapsed, min)
		res.MeanProgress.Add(m.elapsed, mean/float64(alive))
	}
	return m.Done(), nil
}

// Finish finalizes every node engine and returns the job result.
func (m *Manager) Finish() (*Result, error) {
	if m.finished {
		return nil, fmt.Errorf("cluster: Finish called twice")
	}
	m.finished = true
	m.ensureResult()
	res := m.res
	res.Elapsed = m.elapsed
	res.Completed = true
	for _, n := range m.nodes {
		r, err := n.eng.Finish()
		if err != nil {
			return nil, fmt.Errorf("cluster: finishing %s: %w", n.name, err)
		}
		n.result = r
		res.TotalEnergyJ += r.EnergyJ
		if !r.Completed {
			res.Completed = false
		}
	}
	return res, nil
}

// Run advances the job until every node's workload completes or maxDur
// of virtual time elapses.
func (m *Manager) Run(maxDur time.Duration) (*Result, error) {
	for m.elapsed < maxDur {
		done, err := m.Step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return m.Finish()
}

// statuses snapshots per-node feedback for the policy.
func (m *Manager) statuses() []NodeStatus {
	out := make([]NodeStatus, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = NodeStatus{
			Name:     n.name,
			CapW:     n.capW,
			PowerW:   n.lastPow,
			Rate:     n.lastRate,
			Baseline: n.baseline,
			Done:     n.eng.Done(),
			Failed:   n.failed,
		}
	}
	return out
}

// nodeFaults returns the node's fault plan, or nil when no injector is
// installed or the plan has no entry for this node.
func (m *Manager) nodeFaults(n *Node) *fault.Node {
	if m.faults == nil {
		return nil
	}
	return m.faults.Node(n.name)
}

// watchdog fences a node whose monitor sample count has not moved for
// FailureEpochs consecutive epochs. A fenced node is un-fenced only
// after a clean probation: samples flowing for ProbationEpochs
// consecutive epochs. One fresh window is not enough — a node rebooting
// in a crash loop emits a burst of reports each time, and handing its
// budget share back on every burst would whipsaw the healthy nodes'
// caps. Done nodes are never fenced — a finished stream is silent by
// design.
func (m *Manager) watchdog(n *Node) {
	count := len(n.eng.Monitor().Samples())
	fresh := count > n.lastSamples
	n.lastSamples = count
	if n.eng.Done() {
		n.failed = false
		n.stagnantEpochs = 0
		n.freshEpochs = 0
		return
	}
	if !n.failed {
		if fresh {
			n.stagnantEpochs = 0
			return
		}
		n.stagnantEpochs++
		if n.stagnantEpochs >= m.FailureEpochs {
			n.failed = true
			n.freshEpochs = 0
		}
		return
	}
	if !fresh {
		n.freshEpochs = 0 // probation restarts on any silent epoch
		return
	}
	n.freshEpochs++
	if n.freshEpochs >= m.ProbationEpochs {
		n.failed = false
		n.stagnantEpochs = 0
		n.freshEpochs = 0
	}
}

// refresh pulls the node's latest window sample out of its monitor and
// maintains the running baseline estimate (the highest smoothed rate
// seen, i.e. near-uncapped performance).
func (m *Manager) refresh(n *Node) {
	samples := n.eng.Monitor().Samples()
	if len(samples) == 0 {
		return
	}
	last := samples[len(samples)-1]
	// Smooth single-window aliasing with the previous window.
	rate := last.Rate
	if len(samples) >= 2 {
		rate = (rate + samples[len(samples)-2].Rate) / 2
	}
	n.lastRate = rate
	if rate > n.baseline {
		n.baseline = rate
	}
}

// clampCaps scales the caps down proportionally if they exceed the
// budget (a policy bug must never over-commit the job's allocation).
func clampCaps(caps []float64, budgetW float64) {
	var sum float64
	for _, c := range caps {
		sum += c
	}
	if sum <= budgetW || sum == 0 {
		return
	}
	scale := budgetW / sum
	for i := range caps {
		caps[i] *= scale
	}
}
