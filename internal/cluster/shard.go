package cluster

// Sharded node advancement: the intra-epoch parallelism layer.
//
// Both stepping paths (Manager.Step, LeasedCluster.Step) decide caps,
// program RAPL, and run watchdog/feedback serially — those touch shared
// policy, lease, and journal state. But advancing the node engines
// through the epoch is embarrassingly parallel: each engine is a fully
// self-contained plant (its own device, bus, monitor, fault plan, RNG),
// so engines never share mutable state and the schedule cannot leak
// into any simulation result. The shard pool below fans those Advance
// calls across a bounded worker set — one contiguous shard of nodes per
// worker — with a barrier at the epoch boundary, and collects per-node
// errors by index so even failure output is reported in node order,
// independent of which shard finished first.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardStats aggregates the shard pool's work across epochs: how many
// epochs went through the pool, the widest fan-out used, the most
// shards ever observed running simultaneously, and the cumulative
// straggler time — how long finished shards sat at epoch barriers
// waiting for the slowest one.
type ShardStats struct {
	Epochs      int
	Shards      int
	PeakWorkers int
	BarrierWait time.Duration
}

// Merge folds another stats block into s (counters add, high-water
// marks take the max) — how per-manager pools roll up into a suite
// summary.
func (s *ShardStats) Merge(o ShardStats) {
	s.Epochs += o.Epochs
	if o.Shards > s.Shards {
		s.Shards = o.Shards
	}
	if o.PeakWorkers > s.PeakWorkers {
		s.PeakWorkers = o.PeakWorkers
	}
	s.BarrierWait += o.BarrierWait
}

// shardPool fans independent per-node work across at most workers
// goroutines. workers <= 0 means GOMAXPROCS; 1 means the plain serial
// loop with zero goroutines and zero synchronization.
type shardPool struct {
	workers int
	stats   ShardStats
}

// resolve returns the shard count for n nodes.
func (p *shardPool) resolve(n int) int {
	w := p.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run executes fn(i) for every i in [0, n) and returns the first error
// in node-index order.
//
// Determinism contract: fn must touch only state owned by node i, and
// must not read shared mutable state written by any other fn(j). Under
// that contract the execution schedule cannot influence any simulation
// result — only wall time changes — so results are byte-identical at
// every worker count. Error paths are the one place worker counts can
// diverge observably: a shard stops at its first error while sibling
// shards finish their current epoch, whereas the serial loop stops
// immediately. Both report the same (first-by-index) error and the
// caller aborts the run, so no divergent state is ever observed.
func (p *shardPool) run(n int, fn func(i int) error) error {
	w := p.resolve(n)
	p.stats.Epochs++
	if w > p.stats.Shards {
		p.stats.Shards = w
	}
	if w == 1 {
		if p.stats.PeakWorkers < 1 {
			p.stats.PeakWorkers = 1
		}
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	ends := make([]time.Time, w)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		lo, hi := s*n/w, (s+1)*n/w
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			if r := running.Add(1); r > peak.Load() {
				// Benign race on the max: CAS-loop so the larger wins.
				for {
					old := peak.Load()
					if r <= old || peak.CompareAndSwap(old, r) {
						break
					}
				}
			}
			for i := lo; i < hi; i++ {
				if errs[i] = fn(i); errs[i] != nil {
					break
				}
			}
			running.Add(-1)
			ends[s] = time.Now()
		}(s, lo, hi)
	}
	wg.Wait()

	var last time.Time
	for _, e := range ends {
		if e.After(last) {
			last = e
		}
	}
	for _, e := range ends {
		p.stats.BarrierWait += last.Sub(e)
	}
	if pk := int(peak.Load()); pk > p.stats.PeakWorkers {
		p.stats.PeakWorkers = pk
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
