package cluster

// Fleet-scale placement policies, modeled on elektron's schedulers/
// (binpacksortedwatts, MaxGreedyMins) recast from task placement to
// watt placement: instead of packing tasks onto offers, they pack the
// job's watt budget onto nodes. Both treat a node's measured draw as
// its "task size" — after the calibration epochs the manager has seen
// every node run uncapped, so PowerW is a true demand signal — and
// both reserve a safety floor per node before concentrating anything,
// so no node is starved below quarantine power.
//
// SetPolicy / PolicyHook make the division policy switchable at
// runtime, elektron's schedPolicy switching hook: a sweep can start
// bin-packed for throughput and fall back to equal-split when the
// budget tightens, without rebuilding the manager.

import (
	"fmt"
	"sort"

	"progresscap/internal/rapl"
)

// BinPackSortedWatts packs the budget onto the hungriest nodes first:
// statuses are sorted by measured draw (descending, node order breaking
// ties), each node in turn is filled to its demand — at most NodeCapW —
// and whatever remains after every demand is met is spread equally.
// Nodes the budget runs out on sit at the FloorW reserve. The effect is
// elektron's bin-packing: a tight budget concentrates on the few nodes
// that convert watts fastest instead of brown-outing everyone.
type BinPackSortedWatts struct {
	// NodeCapW bounds any single node's fill (0 = the firmware TDP).
	NodeCapW float64
	// FloorW is the per-node reserve granted before packing
	// (0 = DefaultQuarantineCapW). Keeps starved nodes at quarantine
	// power rather than uncapped-by-zero.
	FloorW float64
}

// Name implements Policy.
func (BinPackSortedWatts) Name() string { return "binpack-sorted-watts" }

// Divide implements Policy.
func (p BinPackSortedWatts) Divide(budgetW float64, nodes []NodeStatus) []float64 {
	order := allocatableIdx(nodes)
	if len(order) == 0 {
		return make([]float64, len(nodes))
	}
	sort.SliceStable(order, func(a, b int) bool {
		return nodes[order[a]].PowerW > nodes[order[b]].PowerW
	})
	return packCaps(budgetW, nodes, order, p.nodeCap(), p.floor())
}

func (p BinPackSortedWatts) nodeCap() float64 {
	if p.NodeCapW > 0 {
		return p.NodeCapW
	}
	return rapl.FirmwareDefaultCapW
}

func (p BinPackSortedWatts) floor() float64 {
	if p.FloorW > 0 {
		return p.FloorW
	}
	return DefaultQuarantineCapW
}

// MaxGreedyMins fills the single largest demand first, then grows the
// smallest demands upward — elektron's MaxGreedyMins shape: one watt-
// heavy node is satisfied outright (the job's critical consumer), and
// the remaining budget lifts the cheapest nodes first, maximizing how
// many nodes reach their full demand.
type MaxGreedyMins struct {
	// NodeCapW / FloorW as in BinPackSortedWatts.
	NodeCapW float64
	FloorW   float64
}

// Name implements Policy.
func (MaxGreedyMins) Name() string { return "max-greedy-mins" }

// Divide implements Policy.
func (p MaxGreedyMins) Divide(budgetW float64, nodes []NodeStatus) []float64 {
	order := allocatableIdx(nodes)
	if len(order) == 0 {
		return make([]float64, len(nodes))
	}
	// Ascending by demand, node order breaking ties; then the max is
	// pulled to the front.
	sort.SliceStable(order, func(a, b int) bool {
		return nodes[order[a]].PowerW < nodes[order[b]].PowerW
	})
	maxAt := len(order) - 1
	front := make([]int, 0, len(order))
	front = append(front, order[maxAt])
	front = append(front, order[:maxAt]...)
	return packCaps(budgetW, nodes, front, p.nodeCap(), p.floor())
}

func (p MaxGreedyMins) nodeCap() float64 {
	if p.NodeCapW > 0 {
		return p.NodeCapW
	}
	return rapl.FirmwareDefaultCapW
}

func (p MaxGreedyMins) floor() float64 {
	if p.FloorW > 0 {
		return p.FloorW
	}
	return DefaultQuarantineCapW
}

// allocatableIdx returns the indices of nodes eligible for budget, in
// node order.
func allocatableIdx(nodes []NodeStatus) []int {
	idx := make([]int, 0, len(nodes))
	for i, n := range nodes {
		if n.allocatable() {
			idx = append(idx, i)
		}
	}
	return idx
}

// packCaps reserves floorW per allocatable node, fills nodes to their
// demand (bounded by nodeCapW) in the given order until the budget is
// exhausted, then spreads any remainder equally. A budget below the
// total floor degrades to an equal split — packing only ever happens on
// top of the safety reserve. Fully deterministic: order is the caller's
// (tie-broken by node index) and no iteration touches map state.
func packCaps(budgetW float64, nodes []NodeStatus, order []int, nodeCapW, floorW float64) []float64 {
	caps := make([]float64, len(nodes))
	alive := float64(len(order))
	if budgetW <= floorW*alive {
		share := budgetW / alive
		for _, i := range order {
			caps[i] = share
		}
		return caps
	}
	rem := budgetW - floorW*alive
	for _, i := range order {
		caps[i] = floorW
	}
	for _, i := range order {
		if rem <= 0 {
			break
		}
		demand := nodes[i].PowerW
		if demand <= 0 {
			demand = nodeCapW // unmeasured node: assume it can use TDP
		}
		if demand > nodeCapW {
			demand = nodeCapW
		}
		add := demand - floorW
		if add <= 0 {
			continue
		}
		if add > rem {
			add = rem
		}
		caps[i] += add
		rem -= add
	}
	// Surplus beyond every demand water-fills equally, bounded by the
	// per-node cap: each pass spreads the remainder over the unsaturated
	// nodes, saturating some; at most len(order) passes. Budget the
	// hardware cannot latch (everyone at nodeCapW) stays unallocated —
	// under-commitment is safe, a fictional above-TDP cap is not.
	for rem > 1e-12 {
		open := 0
		for _, i := range order {
			if caps[i] < nodeCapW {
				open++
			}
		}
		if open == 0 {
			break
		}
		share := rem / float64(open)
		for _, i := range order {
			if caps[i] >= nodeCapW {
				continue
			}
			add := share
			if caps[i]+add > nodeCapW {
				add = nodeCapW - caps[i]
			}
			caps[i] += add
			rem -= add
		}
	}
	return caps
}

// PolicyHook inspects the epoch's statuses before division and may
// return a replacement policy (nil keeps the current one) — runtime
// policy switching, consulted once per post-calibration epoch.
type PolicyHook func(epoch int, statuses []NodeStatus) Policy

// SetPolicy swaps the manager's division policy from the next epoch on.
func (m *Manager) SetPolicy(p Policy) error {
	if p == nil {
		return fmt.Errorf("cluster: SetPolicy(nil)")
	}
	m.policy = p
	return nil
}

// PolicyName returns the current division policy's name.
func (m *Manager) PolicyName() string { return m.policy.Name() }

// SetPolicyHook installs a runtime policy-switching hook. Call before
// the first Step; pass nil to remove.
func (m *Manager) SetPolicyHook(h PolicyHook) { m.policyHook = h }
