package cluster

import (
	"fmt"
	"time"

	"progresscap/internal/trace"
)

// System is the top of the Argo hierarchy (§II): "a system controller
// monitors power across the entire machine and distributes power budgets
// across the jobs". Jobs have priorities; when a high-priority job
// arrives, lower-priority jobs' budgets shrink — the exact scenario the
// paper's motivation sketches for the NRM underneath.
type System struct {
	totalW float64
	jobs   []*SystemJob
}

// SystemJob is one job under the system controller.
type SystemJob struct {
	Name     string
	Priority int // higher = more important
	// MinShareW is the floor the system never budgets below while the
	// job runs (keeps low-priority jobs from starving entirely).
	MinShareW float64
	// StartEpoch delays the job's arrival (its nodes idle until then).
	StartEpoch int

	mgr         *Manager
	budgetTrace *trace.Series
	arrived     bool
	done        bool
}

// NewSystemJob wraps a job manager for system-level scheduling.
func NewSystemJob(name string, priority int, minShareW float64, startEpoch int, mgr *Manager) *SystemJob {
	return &SystemJob{
		Name:        name,
		Priority:    priority,
		MinShareW:   minShareW,
		StartEpoch:  startEpoch,
		mgr:         mgr,
		budgetTrace: trace.NewSeries("system.budget."+name, "W"),
	}
}

// BudgetTrace returns the budgets the system granted this job.
func (j *SystemJob) BudgetTrace() *trace.Series { return j.budgetTrace }

// Manager returns the job's manager (for results after the run).
func (j *SystemJob) Manager() *Manager { return j.mgr }

// NewSystem assembles a system controller over the given machine power
// envelope.
func NewSystem(totalW float64, jobs ...*SystemJob) (*System, error) {
	if totalW <= 0 {
		return nil, fmt.Errorf("cluster: system power %v invalid", totalW)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cluster: system has no jobs")
	}
	seen := map[string]bool{}
	var minSum float64
	for _, j := range jobs {
		if seen[j.Name] {
			return nil, fmt.Errorf("cluster: duplicate job %q", j.Name)
		}
		seen[j.Name] = true
		minSum += j.MinShareW
	}
	if minSum > totalW {
		return nil, fmt.Errorf("cluster: job floors (%v W) exceed the machine envelope (%v W)", minSum, totalW)
	}
	return &System{totalW: totalW, jobs: jobs}, nil
}

// divide distributes the machine envelope across the active jobs:
// every active job gets its floor, and the remainder is split in
// proportion to priority.
func (s *System) divide(epoch int) map[*SystemJob]float64 {
	out := map[*SystemJob]float64{}
	var active []*SystemJob
	var prioSum float64
	remaining := s.totalW
	for _, j := range s.jobs {
		if j.done || epoch < j.StartEpoch {
			continue
		}
		active = append(active, j)
		prioSum += float64(j.Priority)
		remaining -= j.MinShareW
	}
	if len(active) == 0 {
		return out
	}
	if remaining < 0 {
		remaining = 0
	}
	for _, j := range active {
		share := j.MinShareW
		if prioSum > 0 {
			share += remaining * float64(j.Priority) / prioSum
		} else {
			share += remaining / float64(len(active))
		}
		out[j] = share
	}
	return out
}

// Run steps the whole machine epoch by epoch until every job finishes or
// maxDur elapses, and returns per-job results keyed by job name.
func (s *System) Run(maxDur time.Duration) (map[string]*Result, error) {
	epochs := int(maxDur / Epoch)
	for epoch := 0; epoch < epochs; epoch++ {
		budgets := s.divide(epoch)
		if len(budgets) == 0 && s.allDone() {
			break
		}
		for _, j := range s.jobs {
			if j.done || epoch < j.StartEpoch {
				continue
			}
			j.arrived = true
			b := budgets[j]
			j.budgetTrace.Add(time.Duration(epoch)*Epoch, b)
			j.mgr.SetBudgetOverride(b)
			done, err := j.mgr.Step()
			if err != nil {
				return nil, fmt.Errorf("cluster: system stepping job %s: %w", j.Name, err)
			}
			if done {
				j.done = true
			}
		}
	}
	out := map[string]*Result{}
	for _, j := range s.jobs {
		if !j.arrived {
			continue
		}
		res, err := j.mgr.Finish()
		if err != nil {
			return nil, fmt.Errorf("cluster: finishing job %s: %w", j.Name, err)
		}
		out[j.Name] = res
	}
	return out, nil
}

func (s *System) allDone() bool {
	for _, j := range s.jobs {
		if !j.done {
			return false
		}
	}
	return true
}
