package cluster

// The distributed-safety property test: across randomized (but seeded,
// deterministic) schedules of manager kills, pauses, partitions, and
// heals, the cluster-wide budget invariant
//
//	Σ(enforced node caps) = Σ(live lease caps) + quarantine slack ≤ job budget
//
// must hold at every epoch, and a node cut off from every manager must
// revert to the safe cap within one lease TTL of its last renewal.

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/simtime"
)

// randomChaosPlan draws one fault schedule: each manager may be killed
// or paused/resumed, and each node may be partitioned away from one or
// both managers for a window.
func randomChaosPlan(rng *simtime.RNG, nodes []string, horizon time.Duration) fault.Plan {
	plan := fault.Plan{Seed: rng.Uint64() | 1, Managers: map[string]fault.ManagerPlan{}}
	sec := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Second
	}
	for _, mgr := range []string{PrimaryManager, StandbyManager} {
		switch rng.Intn(4) {
		case 0: // healthy
		case 1:
			plan.Managers[mgr] = fault.ManagerPlan{KillAt: sec(3, 12)}
		case 2:
			at := sec(3, 10)
			plan.Managers[mgr] = fault.ManagerPlan{PauseAt: at, ResumeAt: at + sec(3, 8)}
		case 3: // pause that tears a send mid-epoch, the stale-flush hazard
			at := sec(3, 10) + 500*time.Millisecond
			plan.Managers[mgr] = fault.ManagerPlan{PauseAt: at, ResumeAt: at + sec(3, 8)}
		}
	}
	for _, n := range nodes {
		if rng.Intn(3) == 0 {
			continue // this node stays connected
		}
		from := sec(2, int(horizon/time.Second)-8)
		p := fault.Partition{
			Window:     fault.Window{From: from, To: from + sec(4, 9)},
			A:          []string{n},
			Asymmetric: rng.Intn(3) == 0,
		}
		if rng.Intn(2) == 0 {
			p.B = []string{PrimaryManager, StandbyManager}
		} else {
			p.B = []string{PrimaryManager}
		}
		plan.Partitions = append(plan.Partitions, p)
	}
	return plan
}

func TestLeasedBudgetSafetyProperty(t *testing.T) {
	const (
		schedules = 8
		epochs    = 26
		budgetW   = 300.0
	)
	nodeNames := []string{"n0", "n1", "n2"}
	horizon := time.Duration(epochs) * Epoch
	root := simtime.NewRNG(0xC0FFEE)

	for s := 0; s < schedules; s++ {
		s := s
		t.Run("", func(t *testing.T) {
			rng := root.Split(uint64(s + 1))
			plan := randomChaosPlan(rng, nodeNames, horizon)

			var nodes []*LeasedNode
			for i, name := range nodeNames {
				cfg := engine.DefaultConfig()
				cfg.Seed = uint64(s*10 + i + 1)
				cfg.Tick = time.Millisecond
				e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
				if err != nil {
					t.Fatal(err)
				}
				nodes = append(nodes, NewLeasedNode(name, e))
			}
			lc, err := NewLeasedCluster(LeasedConfig{
				Policy: EqualSplit{},
				Budget: ConstantBudget(budgetW),
				Faults: fault.NewInjector(plan),
			}, nodes...)
			if err != nil {
				t.Fatal(err)
			}

			// lastRenewal tracks when each node last accepted a grant, to
			// check the revert-within-TTL bound directly against hardware.
			lastRenewal := map[string]time.Duration{}
			lastAccepted := map[string]uint64{}
			for e := 0; e < epochs; e++ {
				if _, err := lc.Step(); err != nil {
					t.Fatalf("schedule %d epoch %d: %v", s, e, err)
				}
				now := lc.elapsed
				for _, n := range lc.nodes {
					c := n.holder.Counters()
					if c.Accepted > lastAccepted[n.name] {
						lastAccepted[n.name] = c.Accepted
						if l, ok := n.holder.Lease(); ok {
							lastRenewal[n.name] = l.GrantedAt
						}
					}
				}

				// Invariant 1: enforced caps never exceed the budget.
				enforced, err := lc.EnforcedCapW(now)
				if err != nil {
					t.Fatal(err)
				}
				if enforced > budgetW {
					t.Fatalf("schedule %d: enforced %.3f W > budget %.0f W at %v (plan %+v)",
						s, enforced, budgetW, now, plan)
				}

				// Invariant 2: a node un-renewed for a full TTL is back at
				// the safe cap (plus one epoch of slack for the deadman to
				// tick during the advance).
				for _, n := range lc.nodes {
					granted, saw := lastRenewal[n.name]
					if !saw || now < granted+lc.cfg.LeaseTTL+Epoch {
						continue
					}
					capW, err := registerCapW(n.eng.Device())
					if err != nil {
						t.Fatal(err)
					}
					if capW != lc.cfg.Cluster.QuarantineCapW {
						t.Fatalf("schedule %d: node %s at %.1f W at %v, lease granted %v TTL %v — no revert",
							s, n.name, capW, now, granted, lc.cfg.LeaseTTL)
					}
				}
			}
			res, err := lc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if res.PeakOvershootW > 0 {
				t.Fatalf("schedule %d: peak overshoot %.3f W", s, res.PeakOvershootW)
			}
		})
	}
}
