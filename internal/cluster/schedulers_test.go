package cluster

import (
	"testing"

	"progresscap/internal/apps"
	"progresscap/internal/rapl"
)

func sumCaps(caps []float64) float64 {
	var s float64
	for _, c := range caps {
		s += c
	}
	return s
}

// Four nodes with measured draws 150/90/120/60 W — the packing fixture.
func packFixture() []NodeStatus {
	return []NodeStatus{
		{Name: "a", PowerW: 150},
		{Name: "b", PowerW: 90},
		{Name: "c", PowerW: 120},
		{Name: "d", PowerW: 60},
	}
}

func TestBinPackSortedWattsConcentrates(t *testing.T) {
	nodes := packFixture()
	// Budget covers the floors (4×40) plus 200 W of packing headroom.
	caps := BinPackSortedWatts{}.Divide(360, nodes)
	if got := sumCaps(caps); got > 360+1e-9 {
		t.Fatalf("over-committed: Σ=%g", got)
	}
	// Hungriest first: a (150) and c (120) fill to demand, b gets the
	// last 10 W of headroom, d sits at the floor.
	want := []float64{150, 50, 120, 40}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("caps = %v, want %v", caps, want)
		}
	}
}

func TestBinPackSortedWattsSurplusSpreads(t *testing.T) {
	nodes := packFixture()
	// 600 W covers every demand (Σ=420) with 180 W spare: the surplus
	// water-fills equally, saturating a and c at the 165 W firmware cap
	// and leaving b and d level at 150/120.
	caps := BinPackSortedWatts{}.Divide(600, nodes)
	want := []float64{165, 150, 165, 120}
	for i := range want {
		if diff := caps[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("caps = %v, want %v", caps, want)
		}
	}
}

func TestBinPackSortedWattsTightBudgetEqualSplit(t *testing.T) {
	nodes := packFixture()
	// Below the total floor the packing degrades to an equal split — the
	// safety reserve is never bin-packed away.
	caps := BinPackSortedWatts{}.Divide(100, nodes)
	for i := range caps {
		if caps[i] != 25 {
			t.Fatalf("caps = %v, want equal 25s", caps)
		}
	}
}

func TestBinPackRespectsNodeCap(t *testing.T) {
	nodes := []NodeStatus{{Name: "a", PowerW: 500}, {Name: "b", PowerW: 50}}
	caps := BinPackSortedWatts{}.Divide(400, nodes)
	if caps[0] > rapl.FirmwareDefaultCapW {
		t.Fatalf("a = %g exceeds the firmware TDP %d", caps[0], rapl.FirmwareDefaultCapW)
	}
}

func TestMaxGreedyMinsShape(t *testing.T) {
	nodes := packFixture()
	// 360 W: floors (160) + 200 headroom. Max-first fills a (150); then
	// mins-first fills d (60) and b (90) from the cheap end.
	caps := MaxGreedyMins{}.Divide(360, nodes)
	if got := sumCaps(caps); got > 360+1e-9 {
		t.Fatalf("over-committed: Σ=%g", got)
	}
	if caps[0] != 150 {
		t.Fatalf("max node a = %g, want 150", caps[0])
	}
	if caps[3] != 60 {
		t.Fatalf("min node d = %g, want filled to demand 60", caps[3])
	}
	if caps[1] != 90 {
		t.Fatalf("next-min node b = %g, want filled to demand 90", caps[1])
	}
	// c gets what's left: 200 - 110 - 20 - 50 = 20 above its floor.
	if caps[2] != 60 {
		t.Fatalf("c = %g, want 60", caps[2])
	}
}

func TestPackersSkipFailedAndDone(t *testing.T) {
	nodes := []NodeStatus{
		{Name: "a", PowerW: 100},
		{Name: "b", PowerW: 100, Failed: true},
		{Name: "c", PowerW: 100, Done: true},
	}
	for _, p := range []Policy{BinPackSortedWatts{}, MaxGreedyMins{}} {
		caps := p.Divide(300, nodes)
		if caps[1] != 0 || caps[2] != 0 {
			t.Fatalf("%s allocated to a failed/done node: %v", p.Name(), caps)
		}
		if caps[0] == 0 {
			t.Fatalf("%s starved the healthy node: %v", p.Name(), caps)
		}
	}
	for _, p := range []Policy{BinPackSortedWatts{}, MaxGreedyMins{}} {
		caps := p.Divide(300, []NodeStatus{{Done: true}})
		if caps[0] != 0 {
			t.Fatalf("%s allocated to an all-done job", p.Name())
		}
	}
}

func TestPackersDeterministicOnTies(t *testing.T) {
	nodes := []NodeStatus{
		{Name: "a", PowerW: 100}, {Name: "b", PowerW: 100},
		{Name: "c", PowerW: 100}, {Name: "d", PowerW: 100},
	}
	for _, p := range []Policy{BinPackSortedWatts{}, MaxGreedyMins{}} {
		first := p.Divide(250, nodes)
		for rep := 0; rep < 10; rep++ {
			again := p.Divide(250, nodes)
			for i := range first {
				if first[i] != again[i] {
					t.Fatalf("%s tie-break unstable: %v vs %v", p.Name(), first, again)
				}
			}
		}
	}
}

// TestPolicySwitchHook drives a manager with a runtime policy-switching
// hook: equal-split through epoch 5, bin-packed after — and verifies
// the switch actually changes division behavior mid-run.
func TestPolicySwitchHook(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	m, err := NewManager(EqualSplit{}, ConstantBudget(260),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 900), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 900), 1.4, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	var switched bool
	m.SetPolicyHook(func(epoch int, statuses []NodeStatus) Policy {
		if epoch == 5 {
			switched = true
			return BinPackSortedWatts{}
		}
		return nil
	})
	for i := 0; i < 9; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !switched {
		t.Fatal("hook never fired")
	}
	if m.PolicyName() != (BinPackSortedWatts{}).Name() {
		t.Fatalf("policy after switch = %s", m.PolicyName())
	}
	// Before the switch both nodes split equally; after it the caps must
	// differ (the packer sees unequal draw on heterogeneous silicon).
	n0, n1 := res.Nodes[0].CapTrace(), res.Nodes[1].CapTrace()
	preIdx, postIdx := 3, 8 // post-calibration equal epoch, post-switch epoch
	if n0.At(preIdx).V != n1.At(preIdx).V {
		t.Fatalf("pre-switch caps unequal: %g vs %g", n0.At(preIdx).V, n1.At(preIdx).V)
	}
	if n0.At(postIdx).V == n1.At(postIdx).V {
		t.Fatalf("post-switch caps still equal: %g", n0.At(postIdx).V)
	}
}

func TestSetPolicy(t *testing.T) {
	m, err := NewManager(EqualSplit{}, ConstantBudget(100),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 100), 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPolicy(nil); err == nil {
		t.Fatal("SetPolicy(nil) accepted")
	}
	if err := m.SetPolicy(MaxGreedyMins{}); err != nil {
		t.Fatal(err)
	}
	if m.PolicyName() != "max-greedy-mins" {
		t.Fatalf("policy = %s", m.PolicyName())
	}
}
