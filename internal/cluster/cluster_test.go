package cluster

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/workload"
)

// newNode builds a node running the workload, optionally with a power
// model scaled by ineff (>1 = less efficient silicon, the node
// variability the paper cites from Rountree et al.).
func newNode(t *testing.T, name string, w *workload.Workload, ineff float64, seed uint64) *Node {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	if ineff != 0 {
		cfg.Power.CoreDynMaxW *= ineff
	}
	e, err := engine.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return NewNode(name, e)
}

func TestEqualSplitDividesAmongAlive(t *testing.T) {
	nodes := []NodeStatus{
		{Name: "a"}, {Name: "b", Done: true}, {Name: "c"},
	}
	caps := EqualSplit{}.Divide(120, nodes)
	if caps[0] != 60 || caps[1] != 0 || caps[2] != 60 {
		t.Fatalf("caps = %v", caps)
	}
	if caps := (EqualSplit{}).Divide(100, []NodeStatus{{Done: true}}); caps[0] != 0 {
		t.Fatal("all-done division nonzero")
	}
}

func TestProgressAwareFavorsLaggards(t *testing.T) {
	nodes := []NodeStatus{
		{Name: "fast", Rate: 10, Baseline: 10}, // at baseline
		{Name: "slow", Rate: 4, Baseline: 10},  // 40% of baseline
	}
	caps := ProgressAware{}.Divide(200, nodes)
	if caps[1] <= caps[0] {
		t.Fatalf("laggard got %v, leader %v", caps[1], caps[0])
	}
	if caps[0]+caps[1] > 200+1e-9 {
		t.Fatalf("over-committed: %v", caps)
	}
}

func TestProgressAwareNoBaselineNeutral(t *testing.T) {
	nodes := []NodeStatus{{Name: "a"}, {Name: "b"}}
	caps := ProgressAware{}.Divide(100, nodes)
	if caps[0] != caps[1] {
		t.Fatalf("no-feedback division unequal: %v", caps)
	}
}

func TestClampCaps(t *testing.T) {
	caps := []float64{80, 80}
	clampCaps(caps, 120)
	if caps[0] != 60 || caps[1] != 60 {
		t.Fatalf("clamped = %v", caps)
	}
	caps = []float64{30, 40}
	clampCaps(caps, 120) // under budget: untouched
	if caps[0] != 30 || caps[1] != 40 {
		t.Fatalf("under-budget caps changed: %v", caps)
	}
}

func TestBudgetFuncs(t *testing.T) {
	c := ConstantBudget(300)
	if c(0) != 300 || c(time.Hour) != 300 {
		t.Fatal("constant budget varies")
	}
	d := DecayingBudget(400, 200, 10*time.Second)
	if d(0) != 400 || d(5*time.Second) != 300 || d(10*time.Second) != 200 || d(time.Minute) != 200 {
		t.Fatalf("decaying budget wrong: %v %v %v", d(0), d(5*time.Second), d(10*time.Second))
	}
}

func TestManagerValidation(t *testing.T) {
	n := newNode(t, "a", apps.LAMMPS(apps.DefaultRanks, 50), 0, 1)
	if _, err := NewManager(nil, ConstantBudget(100), n); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewManager(EqualSplit{}, nil, n); err == nil {
		t.Fatal("nil budget accepted")
	}
	if _, err := NewManager(EqualSplit{}, ConstantBudget(100)); err == nil {
		t.Fatal("no nodes accepted")
	}
	n2 := newNode(t, "a", apps.LAMMPS(apps.DefaultRanks, 50), 0, 2)
	if _, err := NewManager(EqualSplit{}, ConstantBudget(100), n, n2); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestManagerRunsJobToCompletion(t *testing.T) {
	m, err := NewManager(EqualSplit{}, ConstantBudget(300),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 200), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 200), 0, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job incomplete")
	}
	if res.TotalEnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
	for _, n := range res.Nodes {
		if n.Result() == nil || !n.Result().Completed {
			t.Fatalf("node %s incomplete", n.Name())
		}
		// Manager-programmed caps respected: skip calibration epochs.
		vals := n.Result().PowerTrace.Values()
		for i := 3; i < len(vals)-1; i++ {
			if vals[i] > 150*1.06 { // 300 W split two ways
				t.Fatalf("node %s window %d power %v exceeds 150 W share", n.Name(), i, vals[i])
			}
		}
	}
	if res.MinProgress.Len() == 0 {
		t.Fatal("no job progress recorded")
	}
}

func TestDecayingBudgetDegradesProgress(t *testing.T) {
	m, err := NewManager(EqualSplit{}, DecayingBudget(400, 160, 20*time.Second),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 900), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 900), 0, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(40 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.MeanProgress.Values()
	if len(vals) < 20 {
		t.Fatalf("only %d epochs", len(vals))
	}
	early := (vals[3] + vals[4] + vals[5]) / 3
	late := (vals[len(vals)-3] + vals[len(vals)-2] + vals[len(vals)-1]) / 3
	if late >= early*0.9 {
		t.Fatalf("progress did not degrade with the budget: early %v, late %v", early, late)
	}
}

// TestProgressAwareBeatsEqualSplit is the headline cluster result: with
// heterogeneous silicon (one node needs ~15% more power for the same
// frequency), shifting power toward the progress laggard raises the
// job's synchronous (minimum) progress — the capability the paper's
// online progress metric exists to enable.
func TestProgressAwareBeatsEqualSplit(t *testing.T) {
	const budget = 260 // tight enough that division matters
	runWith := func(p Policy) float64 {
		m, err := NewManager(p, ConstantBudget(budget),
			newNode(t, "good", apps.LAMMPS(apps.DefaultRanks, 900), 1.0, 1),
			newNode(t, "leaky", apps.LAMMPS(apps.DefaultRanks, 900), 1.15, 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanMinProgress()
	}
	equal := runWith(EqualSplit{})
	aware := runWith(ProgressAware{})
	if aware <= equal*1.01 {
		t.Fatalf("progress-aware (%v) did not beat equal split (%v)", aware, equal)
	}
}

func TestThroughputFavorsEfficientNodes(t *testing.T) {
	nodes := []NodeStatus{
		{Name: "efficient", Rate: 9, Baseline: 10, PowerW: 100},
		{Name: "leaky", Rate: 9, Baseline: 10, PowerW: 140},
	}
	caps := Throughput{}.Divide(240, nodes)
	if caps[0] <= caps[1] {
		t.Fatalf("efficient node got %v, leaky got %v", caps[0], caps[1])
	}
	if caps[0]+caps[1] > 240+1e-9 {
		t.Fatalf("over-committed: %v", caps)
	}
}

func TestThroughputVsProgressAwareTradeoff(t *testing.T) {
	// On heterogeneous silicon, throughput division should deliver at
	// least as much mean progress as progress-aware (which sacrifices
	// mean for the minimum).
	const budget = 280
	run := func(p Policy) (minP, meanP float64) {
		m, err := NewManager(p, ConstantBudget(budget),
			newNode(t, "good", apps.LAMMPS(apps.DefaultRanks, 900), 1.0, 1),
			newNode(t, "leaky", apps.LAMMPS(apps.DefaultRanks, 900), 1.2, 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(25 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var meanVals []float64
		for _, v := range res.MeanProgress.Values()[2:] {
			meanVals = append(meanVals, v)
		}
		var mean float64
		for _, v := range meanVals {
			mean += v
		}
		return res.MeanMinProgress(), mean / float64(len(meanVals))
	}
	_, meanThroughput := run(Throughput{})
	minAware, meanAware := run(ProgressAware{Gain: 3})
	if meanThroughput < meanAware*0.98 {
		t.Fatalf("throughput policy mean %v clearly below progress-aware mean %v",
			meanThroughput, meanAware)
	}
	_ = minAware
}

func TestManagerTimeLimit(t *testing.T) {
	m, err := NewManager(EqualSplit{}, ConstantBudget(300),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 100000), 0, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("endless workload reported complete")
	}
	if res.Elapsed > 6*time.Second {
		t.Fatalf("elapsed %v past limit", res.Elapsed)
	}
}
