package cluster

// Partition-tolerant power leasing: the replicated job manager.
//
// The plain Manager assumes it is always up and always connected — it
// writes caps straight into every node's MSR each epoch. This file drops
// both assumptions. Caps become time-bounded, epoch-fenced leases
// (internal/lease); the manager is replicated as a primary/standby pair
// sharing state through the append-only journal (internal/journal); and
// every node arms a RAPL deadman so an un-renewed lease reverts the
// hardware to the quarantine-safe cap within one TTL. The resulting
// invariant needs no consensus protocol:
//
//	Σ(enforced node caps) ≤ Σ(arbiter charges) ≤ job budget
//
// at every instant, across manager crashes, pauses, failovers, and
// network partitions — because grants are journaled before they are
// sent, a failover adopts every unexpired journaled grant as a charge,
// the shared log rejects appends from deposed epochs, and each node
// rejects grants whose (epoch, seq) is not strictly newer than anything
// it has enforced.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/journal"
	"progresscap/internal/lease"
	"progresscap/internal/msr"
	"progresscap/internal/pubsub"
	"progresscap/internal/rapl"
	"progresscap/internal/trace"
)

// Manager names of the replicated pair, usable in fault.Plan.Managers
// and fault.Partition actor lists.
const (
	PrimaryManager = "m0"
	StandbyManager = "m1"
)

// TelemetryTopicPrefix carries node → manager progress reports (the
// telemetry lane of the manager inbox).
const TelemetryTopicPrefix = "telemetry.progress."

// AckTopicPrefix carries node → manager lease acknowledgements (the
// control lane of the manager inbox).
const AckTopicPrefix = "lease.ack."

// errFencedAppend rejects a journal append from a deposed reign.
var errFencedAppend = errors.New("cluster: journal append fenced (stale manager epoch)")

// LeasedConfig assembles a replicated, lease-based job manager.
type LeasedConfig struct {
	// Cluster supplies the quarantine cap, which doubles as the lease
	// safe cap: the power a node reverts to when its lease lapses.
	Cluster Config
	Policy  Policy
	Budget  BudgetFunc

	// LeaseTTL bounds how long a grant is enforceable without renewal
	// (default 3 epochs). It is also the node deadman TTL, so the
	// revert-to-safe-cap guarantee holds in hardware, not just in the
	// ledger.
	LeaseTTL time.Duration

	// FailoverEpochs is how many consecutive epochs the shared journal
	// may go without appends before the standby takes over (default 2).
	FailoverEpochs int

	// FailureEpochs / ProbationEpochs drive the manager-side telemetry
	// watchdog, mirroring Manager's semantics (defaults 3 / 3): a node
	// silent for FailureEpochs stops being granted leases (it decays to
	// the safe cap on its own); it must then report for ProbationEpochs
	// consecutive epochs to re-enter the allocation.
	FailureEpochs   int
	ProbationEpochs int

	// TelemetryPerEpoch is how many copies of its progress report each
	// node publishes per epoch (default 1; raise it to flood the
	// telemetry lane).
	TelemetryPerEpoch int

	// InboxControlDepth / InboxTelemetryDepth bound the manager inbox
	// lanes (defaults 256 / 256). Overflow sheds per lane — control
	// never queues behind telemetry.
	InboxControlDepth   int
	InboxTelemetryDepth int

	// NodeWorkers bounds how many node shards advance concurrently each
	// epoch (0 = GOMAXPROCS, 1 = serial). Purely a wall-clock knob:
	// results are byte-identical at any setting. Not part of any
	// scenario hash or run fingerprint.
	NodeWorkers int

	// Faults supplies partitions, manager kills/pauses, and node plans;
	// nil injects nothing.
	Faults *fault.Injector

	// CapWriter, when set, builds each node's cap-write path: every cap
	// the cluster applies to that node — lease grants, the boot cap,
	// reboot quarantine — flows through the returned function instead
	// of the legacy single-retry register write. This is where a
	// hardened rapl.Actuator plugs in per node (the engine exposes the
	// device and clock the actuator needs). Nil keeps the legacy path,
	// byte-identical to clusters before backends existed.
	CapWriter func(eng *engine.Engine) func(capW float64) error
}

func (c *LeasedConfig) validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Policy == nil || c.Budget == nil {
		return fmt.Errorf("cluster: leased config needs a policy and a budget")
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 3 * Epoch
	}
	if c.LeaseTTL < Epoch {
		return fmt.Errorf("cluster: lease TTL %v below the %v control epoch cannot be renewed in time", c.LeaseTTL, Epoch)
	}
	if c.FailoverEpochs == 0 {
		c.FailoverEpochs = 2
	}
	if c.FailureEpochs == 0 {
		c.FailureEpochs = 3
	}
	if c.ProbationEpochs == 0 {
		c.ProbationEpochs = 3
	}
	if c.TelemetryPerEpoch == 0 {
		c.TelemetryPerEpoch = 1
	}
	if c.InboxControlDepth == 0 {
		c.InboxControlDepth = 256
	}
	if c.InboxTelemetryDepth == 0 {
		c.InboxTelemetryDepth = 256
	}
	if c.Faults == nil {
		c.Faults = fault.NewInjector(fault.Plan{})
	}
	if err := c.Faults.Plan().Validate(); err != nil {
		return fmt.Errorf("cluster: invalid fault plan: %w", err)
	}
	return nil
}

// sharedLog is the journal both managers replicate through: an in-memory
// WAL with a fencing gate. Appends must carry the highest epoch the log
// has seen — a deposed primary's appends fail, which is how it learns it
// was deposed even before reading the log back.
type sharedLog struct {
	buf      bytes.Buffer
	w        *journal.Writer
	maxEpoch uint64
	appends  int
}

func newSharedLog() *sharedLog {
	l := &sharedLog{}
	l.w = journal.NewWriter(&l.buf)
	return l
}

func (l *sharedLog) Append(epoch uint64, rec journal.Record) error {
	if epoch < l.maxEpoch {
		return errFencedAppend
	}
	if err := l.w.Append(rec); err != nil {
		return err
	}
	l.maxEpoch = epoch
	l.appends++
	return nil
}

func (l *sharedLog) Appends() int     { return l.appends }
func (l *sharedLog) MaxEpoch() uint64 { return l.maxEpoch }

func (l *sharedLog) Replay() ([]journal.Record, error) {
	recs, st, err := journal.ReplayBytes(l.buf.Bytes())
	if err != nil {
		return nil, err
	}
	if st.DamagedTail {
		return nil, fmt.Errorf("cluster: shared journal damaged: %s", st.TailError)
	}
	return recs, nil
}

// LeasedNode is one compute node under the replicated manager. Its cap
// is owned by a lease.Holder; actuation re-arms the RAPL deadman, so a
// node no manager can reach provably reverts to the safe cap.
type LeasedNode struct {
	name     string
	eng      *engine.Engine
	holder   *lease.Holder
	lastPow  float64
	capTrace *trace.Series
	result   *engine.Result
	// writeCap applies a cap to this node's package domain; set at
	// cluster construction (LeasedConfig.CapWriter or the legacy
	// register write).
	writeCap func(capW float64) error
}

// NewLeasedNode wraps an engine. The engine must not run its own policy
// daemon; the lease holder owns the node's power limit.
func NewLeasedNode(name string, eng *engine.Engine) *LeasedNode {
	n := &LeasedNode{
		name:     name,
		eng:      eng,
		capTrace: trace.NewSeries("cluster.lease.cap."+name, "W"),
	}
	eng.SetWindowHook(func(ws engine.WindowStats) { n.lastPow = ws.PkgW })
	return n
}

// Name returns the node's name.
func (n *LeasedNode) Name() string { return n.name }

// CapTrace returns the caps actually applied on this node.
func (n *LeasedNode) CapTrace() *trace.Series { return n.capTrace }

// Result returns the node's engine result (after Finish).
func (n *LeasedNode) Result() *engine.Result { return n.result }

// Holder returns the node's lease state machine.
func (n *LeasedNode) Holder() *lease.Holder { return n.holder }

// Engine returns the node's plant.
func (n *LeasedNode) Engine() *engine.Engine { return n.eng }

// RegisterCapW decodes the cap currently latched in the node's RAPL
// register (0 = uncapped) — the ground truth the soak oracles check
// against the ledger and the budget.
func (n *LeasedNode) RegisterCapW() (float64, error) {
	return registerCapW(n.eng.Device())
}

// observedRate mirrors Manager.refresh's two-window smoothing.
func (n *LeasedNode) observedRate() float64 {
	samples := n.eng.Monitor().Samples()
	if len(samples) == 0 {
		return 0
	}
	rate := samples[len(samples)-1].Rate
	if len(samples) >= 2 {
		rate = (rate + samples[len(samples)-2].Rate) / 2
	}
	return rate
}

// registerCapW decodes the node's currently latched PL1 (0 = disabled).
func registerCapW(dev *msr.Device) (float64, error) {
	raw, err := dev.Read(msr.PkgPowerLimit)
	if err != nil {
		return 0, err
	}
	unitRaw, err := dev.Read(msr.RaplPowerUnit)
	if err != nil {
		return 0, err
	}
	pl1, _ := msr.DecodePowerLimits(raw, msr.DecodeUnits(unitRaw))
	if !pl1.Enabled {
		return 0, nil
	}
	return pl1.Watts, nil
}

// leasedManager is one replica of the job manager.
type leasedManager struct {
	name    string
	primary bool
	epoch   uint64 // fencing epoch of this replica's current reign
	arb     *lease.Arbiter
	inbox   *pubsub.LanedQueue

	// Failover detection (standby): epochs the shared log stayed still.
	lastAppends int
	staleEpochs int

	// Pending grants journaled but not yet sent — a pause tore the epoch
	// between WAL append and delivery; flushed (stale) on resume.
	pending []lease.Lease

	// Telemetry watchdog and policy feedback, keyed by node name.
	heard    map[string]bool
	done     map[string]bool
	rate     map[string]float64
	baseline map[string]float64
	silent   map[string]int
	fresh    map[string]int
	fenced   map[string]bool

	acks uint64
}

func newLeasedManager(name string, cfg *LeasedConfig) *leasedManager {
	return &leasedManager{
		name:     name,
		inbox:    pubsub.NewLanedQueue(cfg.InboxControlDepth, cfg.InboxTelemetryDepth),
		heard:    map[string]bool{},
		done:     map[string]bool{},
		rate:     map[string]float64{},
		baseline: map[string]float64{},
		silent:   map[string]int{},
		fresh:    map[string]int{},
		fenced:   map[string]bool{},
	}
}

// LeasedResult is the job-level outcome plus the distributed-safety
// counters the partition experiments assert on.
type LeasedResult struct {
	Elapsed      time.Duration
	Completed    bool
	TotalEnergyJ float64
	WorkUnits    float64

	MinProgress  *trace.Series
	MeanProgress *trace.Series
	BudgetTrace  *trace.Series
	// EnforcedTrace is Σ(latched register caps) over the nodes actually
	// running each epoch — the physically enforceable draw bound.
	EnforcedTrace *trace.Series
	// PeakOvershootW is the worst EnforcedTrace excursion above the
	// budget (0 when the safety invariant held everywhere, which it must).
	PeakOvershootW float64

	Failovers         int    // standby takeovers
	GrantsIssued      uint64 // leases journaled and charged
	FencedGrants      uint64 // grants a node rejected as stale (split-brain blocked)
	ExpiredOnArrival  uint64 // grants delivered after their own TTL
	UndeliveredGrants uint64 // grants eaten by a partition
	ExpiredReverts    uint64 // node deadman trips (revert to safe cap)

	Nodes []*LeasedNode
}

// LeasedCluster drives a node set under the replicated leasing manager.
type LeasedCluster struct {
	cfg      LeasedConfig
	nodes    []*LeasedNode
	byName   map[string]*LeasedNode
	managers []*leasedManager
	log      *sharedLog
	pool     shardPool

	elapsed  time.Duration
	res      *LeasedResult
	finished bool
}

// NewLeasedCluster assembles the replicated manager pair over the nodes.
// Every node is booted at the safe cap with an armed deadman before the
// first epoch, so the cluster is never uncapped: overshoot is zero by
// construction, not by luck.
func NewLeasedCluster(cfg LeasedConfig, nodes ...*LeasedNode) (*LeasedCluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	lc := &LeasedCluster{cfg: cfg, nodes: nodes, byName: map[string]*LeasedNode{}, log: newSharedLog()}
	lc.pool.workers = cfg.NodeWorkers
	safeCap := cfg.Cluster.QuarantineCapW
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if lc.byName[n.name] != nil || n.name == "" {
			return nil, fmt.Errorf("cluster: empty or duplicate node name %q", n.name)
		}
		lc.byName[n.name] = n
		names = append(names, n.name)

		node := n
		if cfg.CapWriter != nil {
			n.writeCap = cfg.CapWriter(n.eng)
		} else {
			n.writeCap = func(capW float64) error {
				return rapl.WriteLimitRetry(node.eng.Device(), capW, 10*time.Millisecond)
			}
		}
		h, err := lease.NewHolder(n.name, safeCap, n.writeCap)
		if err != nil {
			return nil, err
		}
		n.holder = h
		if err := n.eng.SetDeadman(rapl.Deadman{TTL: cfg.LeaseTTL, DefaultCapW: safeCap}); err != nil {
			return nil, err
		}
		// Boot cap: the node starts at the safe cap, never uncapped.
		if err := n.writeCap(safeCap); err != nil {
			return nil, fmt.Errorf("cluster: boot cap on %s: %w", n.name, err)
		}
	}
	m0 := newLeasedManager(PrimaryManager, &cfg)
	m1 := newLeasedManager(StandbyManager, &cfg)
	m0.primary = true
	m0.epoch = 1
	arb, err := lease.NewArbiter(cfg.Budget(0), safeCap, m0.epoch, names...)
	if err != nil {
		return nil, err
	}
	m0.arb = arb
	lc.managers = []*leasedManager{m0, m1}
	return lc, nil
}

func (lc *LeasedCluster) ensureResult() {
	if lc.res == nil {
		lc.res = &LeasedResult{
			MinProgress:   trace.NewSeries("cluster.lease.progress.min", "normalized"),
			MeanProgress:  trace.NewSeries("cluster.lease.progress.mean", "normalized"),
			BudgetTrace:   trace.NewSeries("cluster.lease.budget", "W"),
			EnforcedTrace: trace.NewSeries("cluster.lease.enforced", "W"),
			Nodes:         lc.nodes,
		}
	}
}

// Elapsed returns the virtual time the cluster has advanced through.
func (lc *LeasedCluster) Elapsed() time.Duration { return lc.elapsed }

// Nodes returns the cluster's nodes, in construction order.
func (lc *LeasedCluster) Nodes() []*LeasedNode { return lc.nodes }

// LeaseTTL returns the configured grant TTL (also every node's deadman
// TTL), so oracles can bound the revert-to-safe-cap window.
func (lc *LeasedCluster) LeaseTTL() time.Duration { return lc.cfg.LeaseTTL }

// SafeCapW returns the quarantine cap nodes revert to.
func (lc *LeasedCluster) SafeCapW() float64 { return lc.cfg.Cluster.QuarantineCapW }

// ShardStats returns the node-advancement shard pool's counters.
func (lc *LeasedCluster) ShardStats() ShardStats { return lc.pool.stats }

// ReplayGrants replays the shared manager journal and returns every
// journaled grant plus the highest fencing epoch and sequence stamped
// anywhere — the ledger view of the WAL. Because grants are journaled
// before they are sent, every lease a node has ever enforced must appear
// here; the soak journal oracle checks exactly that.
func (lc *LeasedCluster) ReplayGrants() ([]lease.Lease, uint64, uint64, error) {
	recs, err := lc.log.Replay()
	if err != nil {
		return nil, 0, 0, err
	}
	grants, maxEpoch, maxSeq := lease.FromRecords(recs)
	return grants, maxEpoch, maxSeq, nil
}

// Done reports whether every node's workload has completed.
func (lc *LeasedCluster) Done() bool {
	for _, n := range lc.nodes {
		if !n.eng.Done() {
			return false
		}
	}
	return true
}

// ManagerInboxStats returns one manager's per-lane inbox counters.
func (lc *LeasedCluster) ManagerInboxStats(name string) (control, telemetry pubsub.LaneStats, ok bool) {
	for _, m := range lc.managers {
		if m.name == name {
			c, t := m.inbox.Stats()
			return c, t, true
		}
	}
	return pubsub.LaneStats{}, pubsub.LaneStats{}, false
}

// EnforcedCapW sums the latched register caps of the nodes currently
// running (crashed and finished nodes draw no package power). This is
// the left side of the safety invariant the property test checks
// against the budget.
func (lc *LeasedCluster) EnforcedCapW(now time.Duration) (float64, error) {
	var sum float64
	for _, n := range lc.nodes {
		if n.eng.Done() {
			continue
		}
		if np := lc.cfg.Faults.Node(n.name); np != nil && np.Crashed(now) {
			continue
		}
		capW, err := registerCapW(n.eng.Device())
		if err != nil {
			return 0, err
		}
		if capW == 0 {
			// An uncapped register would make the invariant vacuous; it
			// must never happen after the boot cap.
			return 0, fmt.Errorf("cluster: node %s register uncapped", n.name)
		}
		sum += capW
	}
	return sum, nil
}

// Step advances the cluster one epoch: managers act on last epoch's
// telemetry, nodes advance and report, metrics are collected. It reports
// whether the job is done.
func (lc *LeasedCluster) Step() (bool, error) {
	if lc.finished {
		return true, fmt.Errorf("cluster: Step after Finish")
	}
	lc.ensureResult()
	now := lc.elapsed
	budgetW := lc.cfg.Budget(now)
	// Stamped at the epoch's end instant, like every other per-epoch
	// series (caps, enforced sum, progress) — one timestamp per epoch.
	lc.res.BudgetTrace.Add(now+Epoch, budgetW)

	// 1. Manager phase. Fixed replica order keeps runs deterministic.
	for _, m := range lc.managers {
		fm := lc.cfg.Faults.Manager(m.name)
		if fm != nil && (fm.Dead(now) || fm.Paused(now)) {
			continue
		}
		// A replica resuming with an undelivered batch flushes it first —
		// the journaled-but-unsent grants a paused primary still believes
		// it owes its nodes. This is the stale-delivery hazard; node-side
		// fencing is what contains it.
		if len(m.pending) > 0 {
			lc.deliver(m, m.pending, now)
			m.pending = nil
		}
		// A primary that sees a higher epoch in the shared log was deposed
		// while it was away; it demotes without granting.
		if m.primary && lc.log.MaxEpoch() > m.epoch {
			m.primary = false
			m.arb = nil
		}
		if m.primary {
			lc.drainInbox(m, now)
			lc.watchdog(m)
			if err := lc.grantCycle(m, budgetW, now); err != nil {
				return false, err
			}
		} else {
			lc.standbyWatch(m, budgetW, now)
		}
		m.lastAppends = lc.log.Appends()
	}

	// 2. Node phase: advance engines under node fault plans, sharded
	// across the pool (see shard.go). Everything inside the closure is
	// node-local: the crash/ceiling checks are pure window lookups on
	// the node's own plan, and the reboot cap writes the node's own
	// simulated register.
	err := lc.pool.run(len(lc.nodes), func(i int) error {
		n := lc.nodes[i]
		if n.eng.Done() {
			return nil
		}
		if np := lc.cfg.Faults.Node(n.name); np != nil {
			if np.Crashed(now) {
				if !np.Crashed(now + Epoch) {
					// The node reboots within this epoch. Its register comes
					// back at the boot (safe) cap with a freshly armed
					// deadman, exactly like initial construction — the
					// pre-crash latched cap did not survive the crash, and
					// its engine clock (frozen for the whole window) must not
					// keep enforcing a cap whose lease charge expired.
					if err := n.writeCap(lc.cfg.Cluster.QuarantineCapW); err != nil {
						return fmt.Errorf("cluster: reboot cap on %s: %w", n.name, err)
					}
				}
				return nil
			}
			if frac := np.FreqCeilingFrac(now); frac < 1 {
				n.eng.SetFreqCeiling(frac * n.eng.MaxFreqMHz())
			}
		}
		if _, err := n.eng.Advance(Epoch); err != nil {
			return fmt.Errorf("cluster: advancing %s: %w", n.name, err)
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	lc.elapsed += Epoch
	end := lc.elapsed

	// 3. Telemetry phase: running nodes report progress to both replicas,
	// subject to the partition schedule. Crashed nodes are silent — that
	// silence is the watchdog's signal.
	links := lc.cfg.Faults.Links()
	for _, n := range lc.nodes {
		if np := lc.cfg.Faults.Node(n.name); np != nil && np.Crashed(end) {
			continue
		}
		done := byte('0')
		if n.eng.Done() {
			done = '1'
		}
		payload := []byte(fmt.Sprintf("%.9g %c", n.observedRate(), done))
		msg := pubsub.Message{Topic: TelemetryTopicPrefix + n.name, Payload: payload}
		for _, m := range lc.managers {
			if links.Cut(n.name, m.name, end) {
				continue
			}
			for i := 0; i < lc.cfg.TelemetryPerEpoch; i++ {
				m.inbox.Push(msg, end)
			}
		}
		n.capTrace.Add(end, n.holder.CapAt(end))
	}

	// 4. Safety and progress metrics — the experimenter's view, read from
	// the hardware registers, not the ledger.
	enforced, err := lc.EnforcedCapW(end)
	if err != nil {
		return false, err
	}
	lc.res.EnforcedTrace.Add(end, enforced)
	if over := enforced - budgetW; over > lc.res.PeakOvershootW {
		lc.res.PeakOvershootW = over
	}
	min, mean, alive := 1.0, 0.0, 0
	for _, n := range lc.nodes {
		if n.eng.Done() {
			continue
		}
		if np := lc.cfg.Faults.Node(n.name); np != nil && np.Crashed(end) {
			continue
		}
		alive++
		rate := n.observedRate()
		base := rate
		for _, m := range lc.managers {
			if b := m.baseline[n.name]; b > base {
				base = b
			}
		}
		norm := NodeStatus{Rate: rate, Baseline: base}.Normalized()
		if norm < min {
			min = norm
		}
		mean += norm
	}
	if alive > 0 {
		lc.res.MinProgress.Add(end, min)
		lc.res.MeanProgress.Add(end, mean/float64(alive))
	}
	return lc.Done(), nil
}

// grantCycle is one primary epoch: divide the budget, journal each
// grant (write-ahead), then deliver. The caller has already drained the
// inbox and run the watchdog for this epoch.
func (lc *LeasedCluster) grantCycle(m *leasedManager, budgetW float64, now time.Duration) error {
	safeCap := lc.cfg.Cluster.QuarantineCapW
	m.arb.SetBudget(budgetW)

	// The safe-cap floor of every node is reserved up front (the
	// quarantine slack); the policy divides only the remainder, and each
	// node's lease request is floor + share.
	divisible := budgetW - safeCap*float64(len(lc.nodes))
	if divisible < 0 {
		divisible = 0
	}
	statuses := make([]NodeStatus, len(lc.nodes))
	for i, n := range lc.nodes {
		statuses[i] = NodeStatus{
			Name:     n.name,
			Rate:     m.rate[n.name],
			Baseline: m.baseline[n.name],
			Done:     m.done[n.name],
			Failed:   m.fenced[n.name],
		}
	}
	shares := lc.cfg.Policy.Divide(divisible, statuses)
	if len(shares) != len(lc.nodes) {
		return fmt.Errorf("cluster: policy %s returned %d caps for %d nodes",
			lc.cfg.Policy.Name(), len(shares), len(lc.nodes))
	}
	clampCaps(shares, divisible)

	// Grants are floored to the RAPL register power unit before being
	// charged: the register encodes caps by rounding to the nearest unit,
	// so an unrepresentable grant would latch up to half a unit ABOVE its
	// ledger charge — enough for Σ(registers) to poke over the budget the
	// ledger says is respected. Flooring keeps hardware ≤ ledger exactly.
	unit := msr.DefaultUnits().PowerUnit()

	var grants []lease.Lease
	for i, s := range statuses {
		if s.Done || s.Failed {
			continue // no renewal: the node decays to the safe cap
		}
		capReq := math.Floor((safeCap+shares[i])/unit) * unit
		// A grant above the firmware reset cap is fictional — the node
		// cannot draw it, and a register programmed above TDP is a no-op
		// disguised as an allocation. Concentrating a large budget on the
		// few unfenced nodes (everyone else quarantined) hits this.
		if capReq > rapl.FirmwareDefaultCapW {
			capReq = rapl.FirmwareDefaultCapW
		}
		l, ok := m.arb.Grant(s.Name, capReq, lc.cfg.LeaseTTL, now)
		if !ok {
			continue
		}
		if err := lc.log.Append(m.epoch, l.Record(now)); err != nil {
			if errors.Is(err, errFencedAppend) {
				m.primary = false // deposed mid-cycle; the grant dies unjournaled and unsent
				m.arb = nil
				return nil
			}
			return err
		}
		lc.res.GrantsIssued++
		grants = append(grants, l)
	}
	if len(grants) == 0 {
		// Idle heartbeat so the standby can tell "nothing to grant" from
		// "primary dead".
		err := lc.log.Append(m.epoch, journal.Record{Kind: journal.KindHeartbeat, At: now, LeaseEpoch: m.epoch})
		if errors.Is(err, errFencedAppend) {
			m.primary = false
			m.arb = nil
			return nil
		}
		return err
	}
	if fm := lc.cfg.Faults.Manager(m.name); fm != nil && fm.TearsSend(now, Epoch) {
		// The pause lands between WAL append and send: the batch stays
		// pending, already charged in the journal, flushed stale on resume.
		m.pending = append(m.pending, grants...)
		return nil
	}
	lc.deliver(m, grants, now)
	return nil
}

// deliver offers grants to their nodes across the (possibly partitioned)
// network and collects the fencing verdicts.
func (lc *LeasedCluster) deliver(m *leasedManager, grants []lease.Lease, now time.Duration) {
	links := lc.cfg.Faults.Links()
	for _, g := range grants {
		n := lc.byName[g.Node]
		if n == nil {
			continue
		}
		// A crashed node is unreachable: the grant stays charged in the
		// journal but nothing latches it, same as a partition eating it.
		if np := lc.cfg.Faults.Node(g.Node); np != nil && np.Crashed(now) {
			lc.res.UndeliveredGrants++
			continue
		}
		if links.Cut(m.name, g.Node, now) {
			lc.res.UndeliveredGrants++
			continue
		}
		err := n.holder.Offer(g, now)
		switch {
		case err == nil:
			if !links.Cut(g.Node, m.name, now) {
				m.inbox.Push(pubsub.Message{Topic: AckTopicPrefix + g.Node}, now)
			}
		case errors.Is(err, lease.ErrFenced):
			lc.res.FencedGrants++
		case errors.Is(err, lease.ErrExpired):
			lc.res.ExpiredOnArrival++
		}
	}
}

// drainInbox consumes everything queued since the replica last looked,
// control lane first.
func (lc *LeasedCluster) drainInbox(m *leasedManager, now time.Duration) {
	for n := range m.heard {
		delete(m.heard, n)
	}
	for {
		msg, lane, ok := m.inbox.Pop(now)
		if !ok {
			return
		}
		if lane == pubsub.LaneControl {
			m.acks++
			continue
		}
		node := msg.Topic[len(TelemetryTopicPrefix):]
		var rate float64
		var done byte
		if _, err := fmt.Sscanf(string(msg.Payload), "%g %c", &rate, &done); err != nil {
			continue
		}
		m.heard[node] = true
		m.done[node] = done == '1'
		m.rate[node] = rate
		if rate > m.baseline[node] {
			m.baseline[node] = rate
		}
	}
}

// watchdog mirrors Manager's fencing/probation semantics over the
// telemetry stream: silence fences, sustained reporting un-fences.
func (lc *LeasedCluster) watchdog(m *leasedManager) {
	for _, n := range lc.nodes {
		name := n.name
		if m.done[name] {
			m.fenced[name] = false
			m.silent[name], m.fresh[name] = 0, 0
			continue
		}
		if m.heard[name] {
			m.silent[name] = 0
			m.fresh[name]++
		} else {
			m.silent[name]++
			m.fresh[name] = 0
		}
		if !m.fenced[name] && m.silent[name] >= lc.cfg.FailureEpochs {
			m.fenced[name] = true
		}
		if m.fenced[name] && m.fresh[name] >= lc.cfg.ProbationEpochs {
			m.fenced[name] = false
		}
	}
}

// standbyWatch is one standby epoch: drain the inbox (keeping telemetry
// state warm) and take over when the shared journal has gone still for
// FailoverEpochs.
func (lc *LeasedCluster) standbyWatch(m *leasedManager, budgetW float64, now time.Duration) {
	lc.drainInbox(m, now)
	lc.watchdog(m)
	if lc.log.Appends() != m.lastAppends {
		m.staleEpochs = 0
		return
	}
	m.staleEpochs++
	if m.staleEpochs < lc.cfg.FailoverEpochs {
		return
	}
	// Failover: replay the WAL, adopt every unexpired grant as a charge
	// (whoever issued it), claim the next fencing epoch, and stamp the
	// log with it before granting anything.
	recs, err := lc.log.Replay()
	if err != nil {
		return // unreadable log: stay standby, the deadmen keep the nodes safe
	}
	grants, maxEpoch, maxSeq := lease.FromRecords(recs)
	names := make([]string, len(lc.nodes))
	for i, n := range lc.nodes {
		names[i] = n.name
	}
	arb, err := lease.NewArbiter(budgetW, lc.cfg.Cluster.QuarantineCapW, maxEpoch+1, names...)
	if err != nil {
		return
	}
	arb.Adopt(grants, maxEpoch, maxSeq, now)
	m.arb = arb
	m.epoch = arb.Epoch()
	if err := lc.log.Append(m.epoch, journal.Record{Kind: journal.KindEpochChange, At: now, LeaseEpoch: m.epoch}); err != nil {
		return
	}
	m.primary = true
	m.staleEpochs = 0
	lc.res.Failovers++
	// Grant immediately: the takeover epoch should also be the first
	// renewal epoch, shrinking the window in which leases lapse.
	_ = lc.grantCycle(m, budgetW, now)
}

// Finish finalizes every node engine and returns the job result.
func (lc *LeasedCluster) Finish() (*LeasedResult, error) {
	if lc.finished {
		return nil, fmt.Errorf("cluster: Finish called twice")
	}
	lc.finished = true
	lc.ensureResult()
	res := lc.res
	res.Elapsed = lc.elapsed
	res.Completed = true
	for _, n := range lc.nodes {
		res.ExpiredReverts += n.eng.Controller().DeadmanTrips()
		r, err := n.eng.Finish()
		if err != nil {
			return nil, fmt.Errorf("cluster: finishing %s: %w", n.name, err)
		}
		n.result = r
		res.TotalEnergyJ += r.EnergyJ
		res.WorkUnits += r.WorkUnits
		if !r.Completed {
			res.Completed = false
		}
	}
	return res, nil
}

// Run advances the job until completion or maxDur of virtual time.
func (lc *LeasedCluster) Run(maxDur time.Duration) (*LeasedResult, error) {
	for lc.elapsed < maxDur {
		done, err := lc.Step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return lc.Finish()
}
