package cluster

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
)

func TestPoliciesSkipFailedNodes(t *testing.T) {
	nodes := []NodeStatus{
		{Name: "a", Rate: 9, Baseline: 10, PowerW: 100},
		{Name: "b", Rate: 9, Baseline: 10, PowerW: 100, Failed: true},
		{Name: "c", Rate: 9, Baseline: 10, PowerW: 100},
	}
	for _, p := range []Policy{EqualSplit{}, ProgressAware{}, Throughput{}} {
		caps := p.Divide(300, nodes)
		if caps[1] != 0 {
			t.Fatalf("%s allocated %v W to a failed node", p.Name(), caps[1])
		}
		if caps[0] != 150 || caps[2] != 150 {
			t.Fatalf("%s did not split the budget among survivors: %v", p.Name(), caps)
		}
	}
}

// TestNodeCrashDetectedAndRedistributed is the cluster-level acceptance
// scenario: one of three nodes dies mid-job, the watchdog fences it
// within FailureEpochs, and its budget share flows to the survivors
// (minus the quarantine cap held on the dead node).
func TestNodeCrashDetectedAndRedistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	const budget = 360
	m, err := NewManager(EqualSplit{}, ConstantBudget(budget),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 900), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 900), 0, 2),
		newNode(t, "n2", apps.LAMMPS(apps.DefaultRanks, 900), 0, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := 8 * time.Second
	m.SetFaults(fault.NewInjector(fault.Plan{Nodes: map[string]fault.NodePlan{
		"n1": {CrashAt: crashAt},
	}}))
	res, err := m.Run(25 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	failed := m.FailedNodes()
	if len(failed) != 1 || failed[0] != "n1" {
		t.Fatalf("FailedNodes() = %v, want [n1]", failed)
	}

	// The fence must land within FailureEpochs (+1 epoch of detection
	// latency: the crash happens mid-epoch, the cap is programmed at the
	// start of the next one).
	var crashed *Node
	for _, n := range res.Nodes {
		if n.Name() == "n1" {
			crashed = n
		}
	}
	fencedAt := time.Duration(-1)
	for i := 0; i < crashed.CapTrace().Len(); i++ {
		p := crashed.CapTrace().At(i)
		if p.V == DefaultQuarantineCapW {
			fencedAt = p.T
			break
		}
	}
	if fencedAt < 0 {
		t.Fatal("crashed node never quarantined")
	}
	deadline := crashAt + time.Duration(m.FailureEpochs+1)*Epoch
	if fencedAt > deadline {
		t.Fatalf("fenced at %v, want <= %v", fencedAt, deadline)
	}

	// After the fence the survivors split the remaining budget: each
	// gets (360 - 40)/2 = 160 W, up from the 120 W three-way share.
	for _, n := range res.Nodes {
		if n.Name() == "n1" {
			continue
		}
		for i := 0; i < n.CapTrace().Len(); i++ {
			p := n.CapTrace().At(i)
			if p.T <= fencedAt {
				continue
			}
			want := (budget - DefaultQuarantineCapW) / 2.0
			if p.V < want-1e-9 || p.V > want+1e-9 {
				t.Fatalf("survivor %s cap at %v = %v W, want %v W", n.Name(), p.T, p.V, want)
			}
		}
	}

	// The dead node must not poison the job progress metric: min
	// progress stays healthy after the fence.
	for i := 0; i < res.MinProgress.Len(); i++ {
		p := res.MinProgress.At(i)
		if p.T > fencedAt+2*Epoch && p.V < 0.2 {
			t.Fatalf("min progress %v at %v — fenced node still counted", p.V, p.T)
		}
	}
}

// TestNodeRecoveryUnfencesAfterProbation: a crashed node that comes back
// (RecoverAt) is un-fenced only after ProbationEpochs consecutive epochs
// of flowing samples, and then gets its equal budget share back while
// the survivors drop back to theirs.
func TestNodeRecoveryUnfencesAfterProbation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	const budget = 360
	m, err := NewManager(EqualSplit{}, ConstantBudget(budget),
		newNode(t, "n0", apps.LAMMPS(apps.DefaultRanks, 1600), 0, 1),
		newNode(t, "n1", apps.LAMMPS(apps.DefaultRanks, 1600), 0, 2),
		newNode(t, "n2", apps.LAMMPS(apps.DefaultRanks, 1600), 0, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	crashAt, recoverAt := 8*time.Second, 14*time.Second
	m.SetFaults(fault.NewInjector(fault.Plan{Nodes: map[string]fault.NodePlan{
		"n1": {CrashAt: crashAt, RecoverAt: recoverAt},
	}}))
	res, err := m.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if failed := m.FailedNodes(); len(failed) != 0 {
		t.Fatalf("FailedNodes() = %v after recovery, want none", failed)
	}

	var recovered *Node
	for _, n := range res.Nodes {
		if n.Name() == "n1" {
			recovered = n
		}
	}
	fencedAt, unfencedAt := time.Duration(-1), time.Duration(-1)
	for i := 0; i < recovered.CapTrace().Len(); i++ {
		p := recovered.CapTrace().At(i)
		if fencedAt < 0 && p.V == DefaultQuarantineCapW {
			fencedAt = p.T
		}
		if fencedAt >= 0 && unfencedAt < 0 && p.V != DefaultQuarantineCapW {
			unfencedAt = p.T
			if want := budget / 3.0; p.V != want {
				t.Fatalf("un-fenced cap %v W, want the %v W equal share back", p.V, want)
			}
		}
	}
	if fencedAt < 0 {
		t.Fatal("crashed node never quarantined")
	}
	if unfencedAt < 0 {
		t.Fatal("recovered node never un-fenced")
	}
	// Un-fencing must wait out probation: not before ProbationEpochs of
	// flowing samples after recovery, but within a couple epochs after.
	if min := recoverAt + time.Duration(m.ProbationEpochs)*Epoch; unfencedAt < min {
		t.Fatalf("un-fenced at %v, before the probation floor %v", unfencedAt, min)
	}
	if max := recoverAt + time.Duration(m.ProbationEpochs+3)*Epoch; unfencedAt > max {
		t.Fatalf("un-fenced at %v, want <= %v", unfencedAt, max)
	}

	// Survivors drop back to the equal three-way share once the budget
	// share is returned.
	for _, n := range res.Nodes {
		if n.Name() == "n1" {
			continue
		}
		last := n.CapTrace().At(n.CapTrace().Len() - 1)
		if last.T > unfencedAt && last.V != budget/3.0 {
			t.Fatalf("survivor %s final cap %v W, want %v W", n.Name(), last.V, budget/3.0)
		}
	}
}

// TestSlowdownThrottlesNode verifies the injector's frequency-ceiling
// fault reaches the node's DVFS domain: after SlowAt the node's online
// rate drops roughly with the ceiling while a healthy peer holds steady.
func TestSlowdownThrottlesNode(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	m, err := NewManager(EqualSplit{}, ConstantBudget(600), // ample: power not binding
		newNode(t, "good", apps.LAMMPS(apps.DefaultRanks, 900), 0, 1),
		newNode(t, "slow", apps.LAMMPS(apps.DefaultRanks, 900), 0, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaults(fault.NewInjector(fault.Plan{Nodes: map[string]fault.NodePlan{
		"slow": {SlowAt: 6 * time.Second, SlowFactor: 0.5},
	}}))
	rateAt := func(name string) float64 {
		for _, s := range m.Statuses() {
			if s.Name == name {
				return s.Rate
			}
		}
		t.Fatalf("no status for %s", name)
		return 0
	}
	var earlySlow, earlyGood float64
	for i := 0; i < 16; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if i == 4 { // pre-fault, post-calibration
			earlySlow, earlyGood = rateAt("slow"), rateAt("good")
		}
	}
	lateSlow, lateGood := rateAt("slow"), rateAt("good")
	if earlySlow <= 0 || earlyGood <= 0 {
		t.Fatal("no pre-fault rates observed")
	}
	if lateSlow > earlySlow*0.75 {
		t.Fatalf("slowed node rate %v vs %v pre-fault — ceiling not applied", lateSlow, earlySlow)
	}
	if lateGood < earlyGood*0.85 {
		t.Fatalf("healthy node rate dropped too: %v vs %v", lateGood, earlyGood)
	}
}
