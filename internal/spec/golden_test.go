package spec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenHash pins the content hash of the representative scenario. If
// this test fails, the canonical serialization changed: every key in
// every disk cache and every committed corpus entry is invalidated.
// That can be the right call — but it must be deliberate, so bump
// spec.Version, regenerate with -update, and say so in the changelog.
const goldenHash = "v1-6cc12ff57446cddc5265a4534d7a493d7448604d8b3caad0827179210cd65907"

func TestGoldenScenario(t *testing.T) {
	s := testScenario()
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "representative.json")
	if *updateGolden {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/spec -run Golden -update): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("canonical encoding drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", enc, want)
	}

	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenHash {
		t.Fatalf("scenario hash drifted: got %s want %s", h, goldenHash)
	}

	// The golden file must decode back to the exact scenario.
	dec, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := dec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != goldenHash {
		t.Fatalf("decoded golden file hashes to %s, want %s", h2, goldenHash)
	}
}
