package spec

// Run fingerprints: the canonical, hashable identity of one engine run,
// shared by the experiment Runner's memoization and its disk cache. A
// fingerprint is to a RunSpec what a Scenario hash is to a scenario —
// canonical JSON, SHA-256 — so the in-memory memo table, the on-disk
// cache, and CI all agree on when two runs are the same run.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"progresscap/internal/fault"
	"progresscap/internal/simtime"
	"progresscap/internal/workload"
)

// PhaseFP is one workload phase's contribution to the fingerprint: its
// declarative fields plus the generator probed at corner coordinates
// with a fixed RNG — deterministic per construction, and sensitive to
// any parameter (jitter amplitude, segment split) the declarative
// fields don't expose.
type PhaseFP struct {
	Name            string    `json:"name"`
	Iterations      int       `json:"iterations"`
	ProgressPerIter float64   `json:"progress_per_iter"`
	Probes          []float64 `json:"probes"`
}

// WorkloadFP is a workload's construction fingerprint.
type WorkloadFP struct {
	Name   string    `json:"name"`
	Metric string    `json:"metric"`
	Ranks  int       `json:"ranks"`
	Phases []PhaseFP `json:"phases"`
}

// FingerprintWorkload probes w at fixed corner coordinates and returns
// its fingerprint. Rank 0 is probed first within each iteration because
// the shared-jitter closures re-draw there, resetting their state.
func FingerprintWorkload(w *workload.Workload) WorkloadFP {
	fp := WorkloadFP{Name: w.Name, Metric: w.Metric, Ranks: w.Ranks}
	probeRNG := simtime.NewRNG(0x9e3779b97f4a7c15)
	for _, p := range w.Phases {
		pf := PhaseFP{Name: p.Name, Iterations: p.Iterations, ProgressPerIter: p.ProgressPerIter}
		iters := []int{0}
		if p.Iterations > 1 {
			iters = append(iters, p.Iterations-1)
		}
		ranks := []int{0}
		if w.Ranks > 1 {
			ranks = append(ranks, 1, w.Ranks-1)
		}
		for _, it := range iters {
			for _, r := range ranks {
				seg := p.Gen(r, it, probeRNG)
				pf.Probes = append(pf.Probes,
					seg.ComputeCycles, seg.MemSeconds, seg.SleepSeconds,
					seg.Instructions, seg.L3Misses, seg.BWShare, seg.WorkUnits)
			}
		}
		fp.Phases = append(fp.Phases, pf)
	}
	return fp
}

// RunFingerprint is the canonical identity of one engine run. Equal
// fingerprints describe byte-identical simulations; the hash is the
// memoization and disk-cache key.
//
// Execution-level knobs — scheduler parallelism, cluster shard worker
// counts, cache directories, anything that changes only wall time —
// must NEVER become fingerprint fields: the hash names a *result*, and
// a result computed on a 64-core machine is byte-identical to one
// computed serially, so the disk cache stays valid across machines.
// TestRunFingerprintFieldSet pins the exact field set.
type RunFingerprint struct {
	Version  int        `json:"version"`
	Workload WorkloadFP `json:"workload"`
	// Operating is a rendered operating point: "dvfs:<mhz>",
	// "scheme:<type+params>", or "uncapped".
	Operating  string  `json:"operating"`
	Seed       uint64  `json:"seed"`
	MaxSeconds float64 `json:"max_seconds"`
	Invariants bool    `json:"invariants,omitempty"`
	FixedTick  bool    `json:"fixed_tick,omitempty"`
	// Faults is the run's fault plan; nil when the run injects nothing
	// (the common case, kept out of the JSON so pre-fault keys and
	// fault-free keys coincide structurally).
	Faults *fault.Plan `json:"faults,omitempty"`
	// Backend is the actuation backend; "" is the register-level default
	// (omitted, so pre-backend cache keys are unchanged). It MUST key the
	// cache: sysfs floors caps to µW-quantized register units where the
	// MSR path rounds to nearest, so the same scheme produces different
	// power traces per backend.
	Backend string `json:"backend,omitempty"`
}

// Hash returns the fingerprint's content hash (SHA-256 of the canonical
// JSON, hex). It panics only if the fingerprint contains values JSON
// cannot represent (NaN probes), which no constructible workload does.
func (f RunFingerprint) Hash() string {
	b, err := json.Marshal(f)
	if err != nil {
		panic(fmt.Sprintf("spec: unhashable run fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
