// Package spec defines the declarative, content-addressed scenario
// language the soak harness and the experiment cache share.
//
// A Scenario describes one complete simulation — workload mix, operating
// point (capping scheme or pinned DVFS), fleet shape, fault plan,
// partition and manager-kill schedule, and lease/budget parameters — as
// plain data. Scenarios have a canonical serialization (deterministic
// JSON: fixed struct field order, sorted map keys, shortest-round-trip
// floats) and therefore a content hash; two equal hashes denote
// byte-identical simulations. The hash is the key of the disk-backed
// result cache in internal/experiments and the identity of regression
// corpus entries in internal/soak.
//
// Scenarios come from three places: hand-written JSON files
// (cmd/experiments -spec), the seeded random Generate (cmd/soak), and
// the shrinker (ShrinkSteps), which proposes strictly simpler variants
// of a failing scenario. All three flow through Validate, which shares
// the fault-schedule validation with hand-built fault.Plans.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
	"progresscap/internal/policy"
	"progresscap/internal/rapl"
	"progresscap/internal/workload"
)

// Version is the spec schema version. It participates in the content
// hash, so a schema change invalidates every cached result and corpus
// hash at once instead of silently aliasing old entries.
const Version = 1

// Manager names a cluster scenario's fault plan may reference. They
// mirror cluster.PrimaryManager / cluster.StandbyManager (asserted by a
// cross-package test) without making spec depend on the cluster package.
const (
	PrimaryManager = "m0"
	StandbyManager = "m1"
)

// MaxHorizonSec bounds scenario length so a generated or hand-written
// spec cannot ask for an unbounded simulation.
const MaxHorizonSec = 120

// WorkloadSpec names one application from the registry
// (internal/apps.Registry) scaled to roughly Seconds of virtual time.
type WorkloadSpec struct {
	App     string  `json:"app"`
	Seconds float64 `json:"seconds"`
}

// Build constructs the workload. Each call returns a fresh instance —
// required by the Runner, whose generators carry per-instance state.
func (w WorkloadSpec) Build() (*workload.Workload, error) {
	info, err := apps.Lookup(w.App)
	if err != nil {
		return nil, err
	}
	if !info.Runnable() {
		return nil, fmt.Errorf("spec: application %q has no workload model", w.App)
	}
	return info.Build(w.Seconds), nil
}

// SchemeSpec is a declarative policy.Scheme: Kind selects the scheme,
// the remaining fields parameterize it. Unused fields must be zero (they
// still participate in the hash).
type SchemeSpec struct {
	// Kind is one of "uncapped", "constant", "linear", "step", "jagged".
	// The empty string means uncapped.
	Kind string `json:"kind,omitempty"`

	Watts float64 `json:"watts,omitempty"` // constant

	DelaySec    float64 `json:"delay_sec,omitempty"`       // linear
	StartW      float64 `json:"start_w,omitempty"`         // linear, jagged
	MinW        float64 `json:"min_w,omitempty"`           // linear
	RateWPerSec float64 `json:"rate_w_per_sec,omitempty"`  // linear
	HighW       float64 `json:"high_w,omitempty"`          // step
	LowW        float64 `json:"low_w,omitempty"`           // step, jagged
	HighForSec  float64 `json:"high_for_sec,omitempty"`    // step
	LowForSec   float64 `json:"low_for_sec,omitempty"`     // step
	FallForSec  float64 `json:"fall_for_sec,omitempty"`    // jagged
	UncappedSec float64 `json:"uncapped_for_sec,omitempty"` // jagged
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Uncapped reports whether the spec denotes no capping scheme.
func (s SchemeSpec) Uncapped() bool { return s.Kind == "" || s.Kind == "uncapped" }

// Build constructs the policy.Scheme, or nil for an uncapped run.
func (s SchemeSpec) Build() (policy.Scheme, error) {
	switch s.Kind {
	case "", "uncapped":
		return nil, nil
	case "constant":
		return policy.Constant{Watts: s.Watts}, nil
	case "linear":
		return policy.Linear{Delay: secs(s.DelaySec), StartW: s.StartW, MinW: s.MinW, RateWPerSec: s.RateWPerSec}, nil
	case "step":
		return policy.Step{HighW: s.HighW, LowW: s.LowW, HighFor: secs(s.HighForSec), LowFor: secs(s.LowForSec)}, nil
	case "jagged":
		return policy.Jagged{StartW: s.StartW, LowW: s.LowW, FallFor: secs(s.FallForSec), UncappedFor: secs(s.UncappedSec)}, nil
	default:
		return nil, fmt.Errorf("spec: unknown scheme kind %q", s.Kind)
	}
}

// Validate checks the parameters of the selected kind.
func (s SchemeSpec) Validate() error {
	switch s.Kind {
	case "", "uncapped":
		return nil
	case "constant":
		if s.Watts <= 0 {
			return fmt.Errorf("spec: constant scheme needs watts > 0, got %g", s.Watts)
		}
	case "linear":
		if s.DelaySec < 0 {
			return fmt.Errorf("spec: linear scheme delay %g s is negative", s.DelaySec)
		}
		if s.StartW <= 0 || s.MinW <= 0 || s.StartW < s.MinW {
			return fmt.Errorf("spec: linear scheme needs start_w >= min_w > 0, got %g/%g", s.StartW, s.MinW)
		}
		if s.RateWPerSec <= 0 {
			return fmt.Errorf("spec: linear scheme needs rate_w_per_sec > 0, got %g", s.RateWPerSec)
		}
	case "step":
		if s.HighW < 0 || s.LowW <= 0 {
			return fmt.Errorf("spec: step scheme needs high_w >= 0 and low_w > 0, got %g/%g", s.HighW, s.LowW)
		}
		if s.HighForSec <= 0 || s.LowForSec <= 0 {
			return fmt.Errorf("spec: step scheme needs positive hold durations, got %g/%g", s.HighForSec, s.LowForSec)
		}
	case "jagged":
		if s.StartW <= 0 || s.LowW <= 0 || s.StartW <= s.LowW {
			return fmt.Errorf("spec: jagged scheme needs start_w > low_w > 0, got %g/%g", s.StartW, s.LowW)
		}
		if s.FallForSec <= 0 || s.UncappedSec < 0 {
			return fmt.Errorf("spec: jagged scheme needs fall_for_sec > 0 and uncapped_for_sec >= 0, got %g/%g", s.FallForSec, s.UncappedSec)
		}
	default:
		return fmt.Errorf("spec: unknown scheme kind %q", s.Kind)
	}
	return nil
}

// OperatingPoint is what throttles the node(s): a capping scheme, a
// pinned DVFS frequency, or (in cluster scenarios) nothing — the lease
// arbiter owns the caps.
type OperatingPoint struct {
	Scheme SchemeSpec `json:"scheme"`
	// DVFSMHz, when positive, pins the frequency with RAPL in manual
	// mode; the scheme must then be uncapped. Single-node only.
	DVFSMHz float64 `json:"dvfs_mhz,omitempty"`
	// Backend selects the power-actuation path: "" or "msr" is the
	// register-level default (byte-identical to pre-backend scenarios,
	// and omitted from the canonical JSON), "sysfs" actuates through the
	// hardened actuator over the emulated powercap tree — which floors
	// caps to the register unit where the MSR path rounds, so the two
	// backends are distinct cache keys. Single-node only.
	Backend string `json:"backend,omitempty"`
}

// FleetSpec shapes the simulated fleet. Nodes == 1 runs one engine under
// the operating point; Nodes >= 2 runs the replicated leasing manager
// (internal/cluster.LeasedCluster) with the remaining fields.
type FleetSpec struct {
	Nodes int `json:"nodes"`
	// BudgetW is the cluster-wide power budget the lease arbiter divides
	// (cluster scenarios only). It must cover every node's quarantine
	// cap, or the boot caps alone would exceed it.
	BudgetW float64 `json:"budget_w,omitempty"`
	// QuarantineCapW is the safe cap a fenced or lease-lapsed node
	// reverts to (default cluster.DefaultQuarantineCapW).
	QuarantineCapW float64 `json:"quarantine_cap_w,omitempty"`
	// LeaseTTLEpochs bounds grant life in 1 s manager epochs (default 3).
	LeaseTTLEpochs int `json:"lease_ttl_epochs,omitempty"`
	// FailoverEpochs is how long the standby waits before takeover
	// (default 2).
	FailoverEpochs int `json:"failover_epochs,omitempty"`
}

// Scenario is one complete, declarative simulation description. The
// zero value is not a valid scenario; use Generate or build one by hand
// and Validate it.
type Scenario struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// Seed drives workload jitter and the engine RNG; node i of a
	// cluster scenario uses Seed+i.
	Seed uint64 `json:"seed"`
	// HorizonSec bounds the run in virtual seconds. Cluster scenarios
	// step one 1 s manager epoch at a time, so it is also the epoch
	// count.
	HorizonSec float64 `json:"horizon_sec"`
	// Workloads is the application mix; cluster node i runs entry
	// i mod len(Workloads). Single-node scenarios use exactly one entry.
	Workloads []WorkloadSpec `json:"workloads"`
	Operating OperatingPoint `json:"operating"`
	Fleet     FleetSpec      `json:"fleet"`
	// Faults embeds the full fault-injection plan: transport faults, MSR
	// and counter faults, node crash/slowdown, partitions, manager
	// kills/pauses. Durations are nanoseconds in the JSON encoding
	// (Go time.Duration), unlike the *_sec fields above.
	Faults fault.Plan `json:"faults"`
}

// Cluster reports whether the scenario runs the replicated leasing
// manager rather than a single capped engine.
func (s Scenario) Cluster() bool { return s.Fleet.Nodes >= 2 }

// NodeNames returns the fleet's node names: n0..n{Nodes-1}.
func (s Scenario) NodeNames() []string {
	names := make([]string, s.Fleet.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	return names
}

// Epochs returns the cluster scenario's epoch count.
func (s Scenario) Epochs() int { return int(s.HorizonSec) }

// Validate checks the whole scenario, including the embedded fault plan
// (shared with hand-built plans) and cross-field constraints like
// partition actors naming real nodes and the budget covering the boot
// caps.
func (s Scenario) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: version %d, this build understands %d", s.Version, Version)
	}
	if s.Seed == 0 {
		return fmt.Errorf("spec: seed 0 is not a usable seed")
	}
	if s.HorizonSec <= 0 || s.HorizonSec > MaxHorizonSec {
		return fmt.Errorf("spec: horizon %g s outside (0, %d]", s.HorizonSec, MaxHorizonSec)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("spec: no workloads")
	}
	for i, w := range s.Workloads {
		if _, err := w.Build(); err != nil {
			return fmt.Errorf("spec: workload %d: %w", i, err)
		}
		if w.Seconds <= 0 || w.Seconds > MaxHorizonSec {
			return fmt.Errorf("spec: workload %d: %g s outside (0, %d]", i, w.Seconds, MaxHorizonSec)
		}
	}
	if err := s.Operating.Scheme.Validate(); err != nil {
		return err
	}
	if s.Operating.DVFSMHz != 0 {
		if s.Operating.DVFSMHz < 800 || s.Operating.DVFSMHz > 3600 {
			return fmt.Errorf("spec: DVFS %g MHz outside [800, 3600]", s.Operating.DVFSMHz)
		}
		if !s.Operating.Scheme.Uncapped() {
			return fmt.Errorf("spec: pinned DVFS and a capping scheme are mutually exclusive")
		}
	}
	switch s.Operating.Backend {
	case "", "msr", "sysfs":
	default:
		return fmt.Errorf("spec: unknown actuation backend %q (want msr or sysfs)", s.Operating.Backend)
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	if s.Fleet.Nodes < 1 {
		return fmt.Errorf("spec: fleet needs at least one node, got %d", s.Fleet.Nodes)
	}
	if s.Cluster() {
		return s.validateCluster()
	}
	return s.validateSingle()
}

func (s Scenario) validateSingle() error {
	if len(s.Workloads) != 1 {
		return fmt.Errorf("spec: single-node scenario carries %d workloads, needs exactly 1", len(s.Workloads))
	}
	if s.Fleet.BudgetW != 0 || s.Fleet.QuarantineCapW != 0 || s.Fleet.LeaseTTLEpochs != 0 || s.Fleet.FailoverEpochs != 0 {
		return fmt.Errorf("spec: lease/budget parameters on a single-node scenario")
	}
	if len(s.Faults.Nodes) > 0 || len(s.Faults.Managers) > 0 || len(s.Faults.Partitions) > 0 {
		return fmt.Errorf("spec: node/manager/partition faults on a single-node scenario")
	}
	// Powercap faults only perturb the sysfs actuation path; on the MSR
	// backend they would be silent no-ops, which is always a spec bug.
	if s.Faults.Powercap != nil && s.Faults.Powercap.Enabled() && s.Operating.Backend != "sysfs" {
		return fmt.Errorf("spec: powercap faults require the sysfs backend, got %q", s.Operating.Backend)
	}
	if s.Operating.Backend == "sysfs" && s.Operating.DVFSMHz != 0 {
		return fmt.Errorf("spec: sysfs backend actuates caps; pinned DVFS has no cap daemon to reroute")
	}
	return nil
}

func (s Scenario) validateCluster() error {
	if s.Fleet.Nodes > 16 {
		return fmt.Errorf("spec: fleet of %d nodes above the soak bound of 16", s.Fleet.Nodes)
	}
	if !s.Operating.Scheme.Uncapped() || s.Operating.DVFSMHz != 0 || s.Operating.Backend != "" {
		return fmt.Errorf("spec: cluster scenarios carry no operating point (the lease arbiter owns the caps)")
	}
	if s.Faults.Powercap != nil && s.Faults.Powercap.Enabled() {
		return fmt.Errorf("spec: powercap faults on a cluster scenario (nodes actuate through the lease arbiter)")
	}
	if s.Epochs() < 2 {
		return fmt.Errorf("spec: cluster horizon %g s is under 2 manager epochs", s.HorizonSec)
	}
	quarantine := s.Fleet.QuarantineCapW
	if quarantine == 0 {
		quarantine = 40 // cluster.DefaultQuarantineCapW
	}
	if quarantine < 0 || quarantine >= rapl.FirmwareDefaultCapW {
		return fmt.Errorf("spec: quarantine cap %g W outside (0, %d)", quarantine, rapl.FirmwareDefaultCapW)
	}
	// The quarantine cap is written to RAPL registers verbatim (boot,
	// reboot, deadman revert); the register rounds to the nearest 1/8 W,
	// so an unrepresentable value could latch above the budget's
	// quarantine floor.
	if quarantine != math.Floor(quarantine*8)/8 {
		return fmt.Errorf("spec: quarantine cap %g W not representable in 1/8 W register units", quarantine)
	}
	if s.Fleet.BudgetW < quarantine*float64(s.Fleet.Nodes) {
		return fmt.Errorf("spec: budget %g W below the fleet's %d×%g W quarantine floor",
			s.Fleet.BudgetW, s.Fleet.Nodes, quarantine)
	}
	if s.Fleet.LeaseTTLEpochs < 0 || s.Fleet.FailoverEpochs < 0 {
		return fmt.Errorf("spec: negative lease TTL or failover epochs")
	}
	actors := map[string]bool{PrimaryManager: true, StandbyManager: true}
	for _, n := range s.NodeNames() {
		actors[n] = true
	}
	for name := range s.Faults.Nodes {
		if name == PrimaryManager || name == StandbyManager || !actors[name] {
			return fmt.Errorf("spec: node fault plan for unknown node %q", name)
		}
	}
	for name := range s.Faults.Managers {
		if name != PrimaryManager && name != StandbyManager {
			return fmt.Errorf("spec: manager fault plan for unknown manager %q", name)
		}
	}
	for i, p := range s.Faults.Partitions {
		for _, side := range [][]string{p.A, p.B} {
			for _, a := range side {
				if !actors[a] {
					return fmt.Errorf("spec: partition %d references unknown actor %q", i, a)
				}
			}
		}
	}
	return nil
}

// CanonicalJSON returns the scenario's canonical serialization: compact
// JSON with struct fields in declaration order, map keys sorted, and
// floats in Go's shortest-round-trip form. It is a pure function of the
// value — the content the hash addresses.
func (s Scenario) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s)
}

// Hash returns the scenario's content hash: "v<version>-" plus the
// SHA-256 of the canonical serialization, in hex. Scenarios with equal
// hashes describe byte-identical simulations.
func (s Scenario) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("v%d-%s", s.Version, hex.EncodeToString(sum[:])), nil
}

// Encode renders the scenario as indented JSON for files meant to be
// read and diffed by humans (corpus entries, -spec inputs). Decoding
// either form yields the same value, and the hash is always computed
// over the canonical compact form.
func (s Scenario) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a scenario from JSON, rejecting unknown fields (a typo
// in a hand-written spec must not silently validate as its zero value).
// The result is validated.
func Decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("spec: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// FaultCount counts the scenario's active fault features — one per
// nonzero knob or schedule entry. The shrinker drives it toward zero;
// the shrinker test asserts the minimal repro keeps at most a couple.
func (s Scenario) FaultCount() int {
	n := 0
	ps := s.Faults.PubSub
	for _, r := range []float64{ps.DropRate, ps.DelayRate, ps.DupRate} {
		if r > 0 {
			n++
		}
	}
	n += len(ps.Blackouts) + len(ps.Disconnects)
	m := s.Faults.MSR
	for _, r := range []float64{m.StaleReadRate, m.ReadEIORate, m.WriteEIORate} {
		if r > 0 {
			n++
		}
	}
	if m.EnergyWrapRaw != 0 {
		n++
	}
	c := s.Faults.Counters
	if c.GlitchRate > 0 {
		n++
	}
	if c.OverflowOffset != 0 {
		n++
	}
	for _, np := range s.Faults.Nodes {
		if np.CrashAt > 0 {
			n++
		}
		if np.SlowAt > 0 {
			n++
		}
	}
	for _, mp := range s.Faults.Managers {
		if mp.Enabled() {
			n++
		}
	}
	n += len(s.Faults.Partitions)
	if pc := s.Faults.Powercap; pc != nil {
		for _, r := range []float64{
			pc.ReadAgainRate, pc.WriteAgainRate, pc.ReadEIORate,
			pc.WriteEIORate, pc.TruncateRate, pc.StaleEnergyRate,
		} {
			if r > 0 {
				n++
			}
		}
		n += len(pc.PermWindows) + len(pc.GoneWindows)
	}
	return n
}
