package spec

// The seeded scenario generator: Generate(seed) is a pure function from
// seed to a valid Scenario, so a soak run is exactly reproducible from
// its base seed and a failing seed can be replayed in isolation. The
// generator draws from the same distributions the curated suites cover —
// single capped nodes under transport/MSR/counter faults, and leased
// clusters under partitions, manager kills/pauses, and node
// crash/slowdown — but composes them freely, which is the point: it
// reaches corners no hand-authored schedule does.

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
	"progresscap/internal/simtime"
)

// generated scenarios keep horizons short: soak throughput matters more
// than per-scenario depth, and the shrinker prefers short repros anyway.
const (
	genMinClusterEpochs = 14
	genMaxClusterEpochs = 26
	genMinSingleSec     = 6
	genMaxSingleSec     = 12
)

// Generate returns the valid scenario deterministically derived from
// seed. Roughly 60% of scenarios are leased clusters (2–4 nodes under
// partition/manager/node faults); the rest are single capped engines
// under transport/MSR/counter faults.
func Generate(seed uint64) Scenario {
	if seed == 0 {
		seed = 1
	}
	rng := simtime.NewRNG(seed)
	s := Scenario{
		Version: Version,
		Name:    fmt.Sprintf("gen-%016x", seed),
		Seed:    seed,
	}
	if rng.Float64() < 0.6 {
		generateCluster(&s, rng)
	} else {
		generateSingle(&s, rng)
	}
	if err := s.Validate(); err != nil {
		// The generator's distributions are constructed to always produce
		// valid scenarios; a violation is a bug in this file.
		panic(fmt.Sprintf("spec: Generate(%d) produced an invalid scenario: %v", seed, err))
	}
	return s
}

func pickSec(rng *simtime.RNG, lo, hi int) float64 {
	return float64(lo + rng.Intn(hi-lo+1))
}

func pickApp(rng *simtime.RNG) string {
	names := apps.RunnableNames()
	return names[rng.Intn(len(names))]
}

func generateSingle(s *Scenario, rng *simtime.RNG) {
	dur := pickSec(rng, genMinSingleSec, genMaxSingleSec)
	s.HorizonSec = dur + 2 // slack so completion, not the horizon, usually ends the run
	s.Workloads = []WorkloadSpec{{App: pickApp(rng), Seconds: dur}}
	s.Fleet = FleetSpec{Nodes: 1}

	// Operating point: mostly schemes (the paper's three plus constant),
	// occasionally pinned DVFS, occasionally uncapped.
	switch rng.Intn(8) {
	case 0:
		s.Operating.DVFSMHz = float64(1200 + 100*rng.Intn(13)) // 1200..2400
	case 1:
		// uncapped
	case 2, 3:
		s.Operating.Scheme = SchemeSpec{Kind: "constant", Watts: float64(70 + 10*rng.Intn(8))}
	case 4:
		s.Operating.Scheme = SchemeSpec{
			Kind: "linear", DelaySec: pickSec(rng, 1, 3),
			StartW: 150, MinW: float64(60 + 10*rng.Intn(4)), RateWPerSec: float64(5 + rng.Intn(11)),
		}
	case 5, 6:
		s.Operating.Scheme = SchemeSpec{
			Kind: "step", HighW: 0, LowW: float64(60 + 10*rng.Intn(5)),
			HighForSec: pickSec(rng, 1, 3), LowForSec: pickSec(rng, 1, 3),
		}
	case 7:
		s.Operating.Scheme = SchemeSpec{
			Kind: "jagged", StartW: 150, LowW: float64(60 + 10*rng.Intn(5)),
			FallForSec: pickSec(rng, 2, 4), UncappedSec: pickSec(rng, 1, 2),
		}
	}

	s.Faults = fault.Plan{Seed: rng.Uint64() | 1}
	// Transport faults: the degraded-signal regime the NRM and monitor
	// are hardened against. Rates stay moderate so the run remains
	// measurable (oracles need some signal to check).
	if rng.Intn(2) == 0 {
		s.Faults.PubSub.DropRate = 0.05 * float64(rng.Intn(5)) // 0..0.20
		s.Faults.PubSub.DelayRate = 0.05 * float64(rng.Intn(4))
		if s.Faults.PubSub.DelayRate > 0 {
			s.Faults.PubSub.MaxDelay = time.Duration(50+50*rng.Intn(4)) * time.Millisecond
		}
		s.Faults.PubSub.DupRate = 0.05 * float64(rng.Intn(3))
	}
	if rng.Intn(4) == 0 {
		from := secs(pickSec(rng, 2, int(dur)-2))
		s.Faults.PubSub.Blackouts = []fault.Window{{From: from, To: from + secs(pickSec(rng, 1, 2))}}
	}
	if rng.Intn(3) == 0 {
		s.Faults.MSR.StaleReadRate = 0.02 * float64(rng.Intn(4))
		s.Faults.MSR.ReadEIORate = 0.01 * float64(rng.Intn(3))
	}
	if rng.Intn(4) == 0 {
		s.Faults.MSR.EnergyWrapRaw = (1 << 32) - uint64(1000000*(1+rng.Intn(10)))
	}
	if rng.Intn(4) == 0 {
		s.Faults.Counters.GlitchRate = 0.01 * float64(1+rng.Intn(3))
		s.Faults.Counters.GlitchScale = 1024
	}

	// Sysfs-backend scenarios: a fraction of single-node runs actuate
	// through the hardened powercap path under its own fault plan. These
	// draws sit strictly after every pre-existing draw, so all earlier
	// fields of every seed are exactly what they were before backends
	// existed.
	if s.Operating.DVFSMHz == 0 && rng.Intn(4) == 0 {
		s.Operating.Backend = "sysfs"
		pc := &fault.PowercapPlan{}
		if rng.Intn(2) == 0 {
			pc.WriteAgainRate = 0.05 * float64(rng.Intn(4)) // 0..0.15
			pc.ReadAgainRate = 0.05 * float64(rng.Intn(3))
		}
		if rng.Intn(3) == 0 {
			pc.WriteEIORate = 0.02 * float64(rng.Intn(3))
			pc.ReadEIORate = 0.02 * float64(rng.Intn(3))
		}
		if rng.Intn(3) == 0 {
			pc.TruncateRate = 0.02 * float64(1+rng.Intn(3))
		}
		if rng.Intn(3) == 0 {
			pc.StaleEnergyRate = 0.05 * float64(1+rng.Intn(3))
		}
		if rng.Intn(4) == 0 {
			from := secs(pickSec(rng, 2, int(dur)-2))
			pc.GoneWindows = []fault.Window{{From: from, To: from + secs(1)}}
		}
		if pc.Enabled() {
			s.Faults.Powercap = pc
		}
	}
}

func generateCluster(s *Scenario, rng *simtime.RNG) {
	nodes := 2 + rng.Intn(3) // 2..4
	epochs := genMinClusterEpochs + rng.Intn(genMaxClusterEpochs-genMinClusterEpochs+1)
	s.HorizonSec = float64(epochs)
	s.Fleet = FleetSpec{
		Nodes:          nodes,
		QuarantineCapW: 40,
		BudgetW:        float64(nodes) * float64(70+10*rng.Intn(5)), // 70..110 W per node
		LeaseTTLEpochs: 2 + rng.Intn(3),                             // 2..4
		FailoverEpochs: 1 + rng.Intn(2),                             // 1..2
	}
	// Mix 1–2 applications across the fleet, sized past the horizon so
	// nodes stay busy (and granted) for the whole run.
	mix := 1 + rng.Intn(2)
	for i := 0; i < mix; i++ {
		s.Workloads = append(s.Workloads, WorkloadSpec{App: pickApp(rng), Seconds: float64(epochs + 10)})
	}

	plan := fault.Plan{Seed: rng.Uint64() | 1, Managers: map[string]fault.ManagerPlan{}, Nodes: map[string]fault.NodePlan{}}
	sec := func(lo, hi int) time.Duration { return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Second }

	// Manager faults mirror the distributed-safety property test: kill,
	// clean pause, or a pause offset half an epoch so it tears a send.
	for _, mgr := range []string{PrimaryManager, StandbyManager} {
		switch rng.Intn(4) {
		case 0, 1: // healthy
		case 2:
			plan.Managers[mgr] = fault.ManagerPlan{KillAt: sec(3, epochs-4)}
		case 3:
			at := sec(3, epochs-8)
			if rng.Intn(2) == 0 {
				at += 500 * time.Millisecond
			}
			plan.Managers[mgr] = fault.ManagerPlan{PauseAt: at, ResumeAt: at + sec(3, 6)}
		}
	}

	for _, name := range s.NodeNames() {
		switch rng.Intn(6) {
		case 0: // crash, maybe reboot
			np := fault.NodePlan{CrashAt: sec(3, epochs-6)}
			if rng.Intn(2) == 0 {
				np.RecoverAt = np.CrashAt + sec(3, 5)
			}
			plan.Nodes[name] = np
		case 1: // thermal slowdown
			plan.Nodes[name] = fault.NodePlan{SlowAt: sec(2, epochs-4), SlowFactor: 0.4 + 0.2*float64(rng.Intn(3))}
		}
		// Independent of node-local faults, the node may be partitioned
		// away from one or both managers for a window.
		if rng.Intn(3) == 0 {
			from := sec(2, epochs-8)
			p := fault.Partition{
				Window:     fault.Window{From: from, To: from + sec(3, 7)},
				A:          []string{name},
				Asymmetric: rng.Intn(3) == 0,
			}
			if rng.Intn(2) == 0 {
				p.B = []string{PrimaryManager, StandbyManager}
			} else {
				p.B = []string{PrimaryManager}
			}
			plan.Partitions = append(plan.Partitions, p)
		}
	}
	if len(plan.Managers) == 0 {
		plan.Managers = nil
	}
	if len(plan.Nodes) == 0 {
		plan.Nodes = nil
	}
	s.Faults = plan
}
