package spec

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"progresscap/internal/fault"
)

// testScenario is a hand-built cluster scenario exercising every spec
// section; the golden test pins its canonical encoding and hash.
func testScenario() Scenario {
	return Scenario{
		Version:    Version,
		Name:       "representative",
		Seed:       42,
		HorizonSec: 20,
		Workloads: []WorkloadSpec{
			{App: "LAMMPS", Seconds: 30},
			{App: "STREAM", Seconds: 30},
		},
		Fleet: FleetSpec{
			Nodes:          3,
			BudgetW:        300,
			QuarantineCapW: 40,
			LeaseTTLEpochs: 3,
			FailoverEpochs: 2,
		},
		Faults: fault.Plan{
			Seed: 7,
			PubSub: fault.PubSubPlan{
				DropRate: 0.1,
				MaxDelay: 200 * time.Millisecond,
			},
			Nodes: map[string]fault.NodePlan{
				"n1": {CrashAt: 8 * time.Second, RecoverAt: 14 * time.Second},
			},
			Managers: map[string]fault.ManagerPlan{
				PrimaryManager: {PauseAt: 6*time.Second + 500*time.Millisecond, ResumeAt: 12 * time.Second},
			},
			Partitions: []fault.Partition{{
				Window: fault.Window{From: 8 * time.Second, To: 14 * time.Second},
				A:      []string{"n2"},
				B:      []string{PrimaryManager, StandbyManager},
			}},
		},
	}
}

func TestRepresentativeScenarioValidates(t *testing.T) {
	if err := testScenario().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := testScenario()
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"wrong version", func(s *Scenario) { s.Version = 99 }, "version"},
		{"zero seed", func(s *Scenario) { s.Seed = 0 }, "seed 0"},
		{"zero horizon", func(s *Scenario) { s.HorizonSec = 0 }, "horizon"},
		{"huge horizon", func(s *Scenario) { s.HorizonSec = 1e6 }, "horizon"},
		{"no workloads", func(s *Scenario) { s.Workloads = nil }, "no workloads"},
		{"unknown app", func(s *Scenario) { s.Workloads[0].App = "DOOM" }, "unknown application"},
		{"unbuildable app", func(s *Scenario) { s.Workloads[0].App = "HACC" }, "no workload model"},
		{"no nodes", func(s *Scenario) { s.Fleet.Nodes = 0 }, "at least one node"},
		{"cluster scheme", func(s *Scenario) { s.Operating.Scheme = SchemeSpec{Kind: "constant", Watts: 100} }, "no operating point"},
		{"budget under floor", func(s *Scenario) { s.Fleet.BudgetW = 100 }, "quarantine floor"},
		{"unknown fault node", func(s *Scenario) {
			s.Faults.Nodes = map[string]fault.NodePlan{"n9": {CrashAt: time.Second}}
		}, "unknown node"},
		{"unknown manager", func(s *Scenario) {
			s.Faults.Managers = map[string]fault.ManagerPlan{"m7": {KillAt: time.Second}}
		}, "unknown manager"},
		{"unknown partition actor", func(s *Scenario) {
			s.Faults.Partitions[0].A = []string{"n99"}
		}, "unknown actor"},
		{"bad fault window", func(s *Scenario) {
			s.Faults.Partitions[0].Window = fault.Window{From: 4 * time.Second, To: 4 * time.Second}
		}, "empty or inverted"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base
			// Deep-enough copies for the mutations above.
			s.Workloads = append([]WorkloadSpec(nil), base.Workloads...)
			s.Faults.Partitions = append([]fault.Partition(nil), base.Faults.Partitions...)
			s.Faults.Partitions[0].A = append([]string(nil), base.Faults.Partitions[0].A...)
			c.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("mutation should invalidate the scenario")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateSingleNodeConstraints(t *testing.T) {
	s := Scenario{
		Version:    Version,
		Seed:       3,
		HorizonSec: 10,
		Workloads:  []WorkloadSpec{{App: "AMG", Seconds: 8}},
		Operating:  OperatingPoint{Scheme: SchemeSpec{Kind: "constant", Watts: 100}},
		Fleet:      FleetSpec{Nodes: 1},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Faults.Partitions = []fault.Partition{{
		Window: fault.Window{From: time.Second, To: 2 * time.Second},
		A:      []string{"n0"}, B: []string{PrimaryManager},
	}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "single-node") {
		t.Fatalf("partitions on a single-node scenario should be rejected, got %v", err)
	}
	bad = s
	bad.Fleet.BudgetW = 100
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "single-node") {
		t.Fatalf("budget on a single-node scenario should be rejected, got %v", err)
	}
	bad = s
	bad.Operating.DVFSMHz = 2000
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("DVFS plus scheme should be rejected, got %v", err)
	}
}

// TestGenerateValidAndDeterministic sweeps a block of seeds: every
// generated scenario validates, and regenerating from the same seed is
// bit-identical (the property soak reproducibility rests on).
func TestGenerateValidAndDeterministic(t *testing.T) {
	clusters, singles := 0, 0
	for seed := uint64(1); seed <= 300; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again := Generate(seed)
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		h1, err := s.Hash()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h2, _ := again.Hash()
		if h1 != h2 {
			t.Fatalf("seed %d: hash differs across identical generations", seed)
		}
		if s.Cluster() {
			clusters++
		} else {
			singles++
		}
	}
	if clusters == 0 || singles == 0 {
		t.Fatalf("generator collapsed to one mode: %d clusters, %d singles", clusters, singles)
	}
}

// TestGenerateSeedsDiffer guards against the generator ignoring its
// seed (every seed hashing identically would quietly gut the soak).
func TestGenerateSeedsDiffer(t *testing.T) {
	seen := map[string]uint64{}
	for seed := uint64(1); seed <= 50; seed++ {
		h, err := Generate(seed).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("seeds %d and %d generate the same scenario", prev, seed)
		}
		seen[h] = seed
	}
}

// TestShrinkStepsValidAndSimpler: every candidate validates, stays in
// the same mode, and is strictly simpler by at least one measure.
func TestShrinkStepsValidAndSimpler(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		s := Generate(seed)
		for i, c := range s.ShrinkSteps() {
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d candidate %d: %v", seed, i, err)
			}
			if c.Cluster() != s.Cluster() {
				t.Fatalf("seed %d candidate %d crossed the mode boundary", seed, i)
			}
			simpler := c.FaultCount() < s.FaultCount() ||
				c.HorizonSec < s.HorizonSec ||
				c.Fleet.Nodes < s.Fleet.Nodes ||
				len(c.Workloads) < len(s.Workloads) ||
				(!s.Operating.Scheme.Uncapped() && c.Operating.Scheme.Uncapped()) ||
				(s.Operating.DVFSMHz != 0 && c.Operating.DVFSMHz == 0)
			if !simpler {
				t.Fatalf("seed %d candidate %d is not simpler than its parent", seed, i)
			}
		}
	}
}

func TestShrinkReachesFixpoint(t *testing.T) {
	// Repeatedly taking the first candidate must terminate: candidates
	// are strictly simpler, so the chain is finite.
	s := Generate(9)
	for steps := 0; ; steps++ {
		if steps > 200 {
			t.Fatal("shrink chain did not terminate")
		}
		cands := s.ShrinkSteps()
		if len(cands) == 0 {
			break
		}
		s = cands[0]
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"version":1,"seed":1,"horizon_sec":10,"typo_field":3}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
}

func TestSchemeSpecBuild(t *testing.T) {
	for _, spec := range []SchemeSpec{
		{},
		{Kind: "uncapped"},
		{Kind: "constant", Watts: 100},
		{Kind: "linear", StartW: 150, MinW: 60, RateWPerSec: 10},
		{Kind: "step", HighW: 0, LowW: 80, HighForSec: 2, LowForSec: 2},
		{Kind: "jagged", StartW: 150, LowW: 70, FallForSec: 3, UncappedSec: 1},
	} {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		sch, err := spec.Build()
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if spec.Uncapped() != (sch == nil) {
			t.Fatalf("%+v: Uncapped()=%v but scheme=%v", spec, spec.Uncapped(), sch)
		}
	}
	if _, err := (SchemeSpec{Kind: "sawtooth"}).Build(); err == nil {
		t.Fatal("unknown scheme kind should fail to build")
	}
}

// TestFingerprintSensitivity: the run fingerprint must change when any
// run-shaping field changes, and must not change when nothing does.
func TestFingerprintSensitivity(t *testing.T) {
	mk := func() WorkloadFP {
		w, err := (WorkloadSpec{App: "LAMMPS", Seconds: 10}).Build()
		if err != nil {
			t.Fatal(err)
		}
		return FingerprintWorkload(w)
	}
	base := RunFingerprint{Version: 1, Workload: mk(), Operating: "uncapped", Seed: 1, MaxSeconds: 10}
	if base.Hash() != base.Hash() {
		t.Fatal("hash not stable")
	}
	variants := []RunFingerprint{}
	v := base
	v.Operating = "dvfs:2000"
	variants = append(variants, v)
	v = base
	v.Seed = 2
	variants = append(variants, v)
	v = base
	v.MaxSeconds = 11
	variants = append(variants, v)
	v = base
	v.Invariants = true
	variants = append(variants, v)
	v = base
	v.FixedTick = true
	variants = append(variants, v)
	v = base
	v.Faults = &fault.Plan{Seed: 3, PubSub: fault.PubSubPlan{DropRate: 0.5}}
	variants = append(variants, v)
	v = base
	other, err := (WorkloadSpec{App: "STREAM", Seconds: 10}).Build()
	if err != nil {
		t.Fatal(err)
	}
	v.Workload = FingerprintWorkload(other)
	variants = append(variants, v)

	seen := map[string]int{base.Hash(): -1}
	for i, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("variant %d collides with %d", i, prev)
		}
		seen[h] = i
	}
}

// FuzzRoundTrip: decode(encode(s)) == s and hash equality, for
// generator-derived scenarios across arbitrary seeds.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3, 17, 0xdeadbeef, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		s := Generate(seed)
		for _, enc := range []func() ([]byte, error){s.CanonicalJSON, s.Encode} {
			b, err := enc()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Decode(b)
			if err != nil {
				t.Fatalf("decode of our own encoding failed: %v\n%s", err, b)
			}
			if !reflect.DeepEqual(s, s2) {
				t.Fatalf("round trip changed the scenario:\n%+v\n%+v", s, s2)
			}
			h1, _ := s.Hash()
			h2, _ := s2.Hash()
			if h1 != h2 {
				t.Fatalf("round trip changed the hash: %s vs %s", h1, h2)
			}
		}
	})
}
