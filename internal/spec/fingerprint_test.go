package spec

import (
	"reflect"
	"testing"
)

// TestRunFingerprintFieldSet pins the exact fields of RunFingerprint.
// The fingerprint names a simulation *result*, so only knobs that can
// change simulated bytes belong here. Execution-level knobs (scheduler
// parallelism, cluster shard worker counts) must never appear: adding
// one would fork the disk cache by machine shape for byte-identical
// results. If this test fails, you either added a semantic knob
// (update the want list AND bump Version so stale cache entries cannot
// alias the new meaning) or leaked an execution knob (remove it).
func TestRunFingerprintFieldSet(t *testing.T) {
	// Backend rides without a Version bump: "" is omitted from the JSON,
	// so every pre-backend cache key still means exactly the MSR path —
	// no stale entry can alias a sysfs result.
	want := []string{
		"Version", "Workload", "Operating", "Seed",
		"MaxSeconds", "Invariants", "FixedTick", "Faults", "Backend",
	}
	typ := reflect.TypeOf(RunFingerprint{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunFingerprint fields = %v, want %v", got, want)
	}
	for _, banned := range []string{"Parallel", "NodeWorkers", "Workers", "Shards", "Forking"} {
		if _, ok := typ.FieldByName(banned); ok {
			t.Fatalf("execution knob %s leaked into the run fingerprint", banned)
		}
	}
}

// TestRunFingerprintBackendKeysCache pins the backend's cache-key
// semantics: the sysfs backend floors caps to the register unit where
// the MSR path rounds to nearest, so the two must hash differently —
// while the empty backend must hash identically to a pre-backend
// fingerprint (the field is omitted) so existing disk caches stay
// valid.
func TestRunFingerprintBackendKeysCache(t *testing.T) {
	base := RunFingerprint{Version: 1, Operating: "scheme:constant(50)", Seed: 1, MaxSeconds: 6}
	sysfs := base
	sysfs.Backend = "sysfs"
	if base.Hash() == sysfs.Hash() {
		t.Fatal("sysfs backend does not key the cache: hash equals the MSR default's")
	}
	msr := base
	msr.Backend = ""
	if base.Hash() != msr.Hash() {
		t.Fatal("empty backend changed the hash; pre-backend cache entries would be orphaned")
	}
}
