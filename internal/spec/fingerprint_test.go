package spec

import (
	"reflect"
	"testing"
)

// TestRunFingerprintFieldSet pins the exact fields of RunFingerprint.
// The fingerprint names a simulation *result*, so only knobs that can
// change simulated bytes belong here. Execution-level knobs (scheduler
// parallelism, cluster shard worker counts) must never appear: adding
// one would fork the disk cache by machine shape for byte-identical
// results. If this test fails, you either added a semantic knob
// (update the want list AND bump Version so stale cache entries cannot
// alias the new meaning) or leaked an execution knob (remove it).
func TestRunFingerprintFieldSet(t *testing.T) {
	want := []string{
		"Version", "Workload", "Operating", "Seed",
		"MaxSeconds", "Invariants", "FixedTick", "Faults",
	}
	typ := reflect.TypeOf(RunFingerprint{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RunFingerprint fields = %v, want %v", got, want)
	}
	for _, banned := range []string{"Parallel", "NodeWorkers", "Workers", "Shards"} {
		if _, ok := typ.FieldByName(banned); ok {
			t.Fatalf("execution knob %s leaked into the run fingerprint", banned)
		}
	}
}
