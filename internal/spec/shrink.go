package spec

// Shrink candidates: strictly simpler variants of a scenario, tried in
// order by the soak shrinker (internal/soak.Shrink) until none of them
// still reproduces the violation. "Simpler" means fewer faults, a
// shorter horizon, a smaller fleet, fewer workloads — each candidate
// changes exactly one thing, so the fixpoint is a locally minimal repro.

import "progresscap/internal/fault"

// minShrinkHorizonSec is the shortest horizon shrinking will propose:
// cluster scenarios need a couple of manager epochs to grant anything,
// and single-node runs need a progress window or two to observe.
const minShrinkHorizonSec = 3

// ShrinkSteps returns simpler candidate scenarios in decreasing order of
// aggressiveness (big structural cuts first, individual fault knobs
// last). Every candidate validates; candidates that would cross the
// single/cluster mode boundary are not proposed, so a cluster repro
// stays a cluster repro.
func (s Scenario) ShrinkSteps() []Scenario {
	var out []Scenario
	propose := func(c Scenario) {
		if c.Validate() == nil {
			out = append(out, c)
		}
	}

	// 1. Halve the horizon (and any blackout/partition windows the cut
	// would strand wholly past the end are dropped by their own steps).
	if half := s.HorizonSec / 2; half >= minShrinkHorizonSec {
		c := s
		c.HorizonSec = float64(int(half))
		propose(c)
	}

	// 2. Shrink the fleet, preserving per-node budget share.
	if s.Cluster() && s.Fleet.Nodes > 2 {
		c := s
		perNode := s.Fleet.BudgetW / float64(s.Fleet.Nodes)
		c.Fleet.Nodes = s.Fleet.Nodes - 1
		c.Fleet.BudgetW = perNode * float64(c.Fleet.Nodes)
		// Fault plans referencing the removed node must go with it.
		dropped := s.NodeNames()[s.Fleet.Nodes-1]
		c.Faults = dropActor(c.Faults, dropped)
		propose(c)
	}

	// 3. Collapse the workload mix to its first entry.
	if len(s.Workloads) > 1 {
		c := s
		c.Workloads = s.Workloads[:1]
		propose(c)
	}

	// 4. Remove whole fault-plan entries, one at a time.
	for i := range s.Faults.Partitions {
		c := s
		c.Faults.Partitions = append(append([]fault.Partition(nil), s.Faults.Partitions[:i]...), s.Faults.Partitions[i+1:]...)
		if len(c.Faults.Partitions) == 0 {
			c.Faults.Partitions = nil
		}
		propose(c)
	}
	for name := range s.Faults.Managers {
		c := s
		c.Faults.Managers = copyManagers(s.Faults.Managers)
		delete(c.Faults.Managers, name)
		if len(c.Faults.Managers) == 0 {
			c.Faults.Managers = nil
		}
		propose(c)
	}
	for name := range s.Faults.Nodes {
		c := s
		c.Faults.Nodes = copyNodes(s.Faults.Nodes)
		delete(c.Faults.Nodes, name)
		if len(c.Faults.Nodes) == 0 {
			c.Faults.Nodes = nil
		}
		propose(c)
	}

	// 5. Zero individual fault classes.
	if s.Faults.PubSub.Enabled() {
		c := s
		c.Faults.PubSub = fault.PubSubPlan{}
		propose(c)
	}
	if s.Faults.MSR.Enabled() {
		c := s
		c.Faults.MSR = fault.MSRPlan{}
		propose(c)
	}
	if s.Faults.Counters.Enabled() {
		c := s
		c.Faults.Counters = fault.CounterPlan{}
		propose(c)
	}
	if s.Faults.Powercap != nil && s.Faults.Powercap.Enabled() {
		c := s
		c.Faults.Powercap = nil
		propose(c)
	}

	// 5b. Fall back from the sysfs backend to the register default
	// (validates only once the powercap faults are gone, so the shrinker
	// drops the faults first and then the backend).
	if s.Operating.Backend != "" {
		c := s
		c.Operating.Backend = ""
		propose(c)
	}

	// 6. Drop the operating point back to uncapped.
	if !s.Operating.Scheme.Uncapped() || s.Operating.DVFSMHz != 0 {
		c := s
		c.Operating = OperatingPoint{}
		propose(c)
	}

	return out
}

// dropActor removes every fault-plan reference to the named actor:
// its node plan, and its membership in partition sides (partitions left
// with an empty side are dropped entirely).
func dropActor(p fault.Plan, name string) fault.Plan {
	if p.Nodes != nil {
		p.Nodes = copyNodes(p.Nodes)
		delete(p.Nodes, name)
		if len(p.Nodes) == 0 {
			p.Nodes = nil
		}
	}
	var parts []fault.Partition
	for _, part := range p.Partitions {
		part.A = without(part.A, name)
		part.B = without(part.B, name)
		if len(part.A) == 0 || len(part.B) == 0 {
			continue
		}
		parts = append(parts, part)
	}
	p.Partitions = parts
	return p
}

func without(names []string, drop string) []string {
	var out []string
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

func copyManagers(m map[string]fault.ManagerPlan) map[string]fault.ManagerPlan {
	out := make(map[string]fault.ManagerPlan, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyNodes(m map[string]fault.NodePlan) map[string]fault.NodePlan {
	out := make(map[string]fault.NodePlan, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
