package apps

import (
	"math"
	"testing"

	"progresscap/internal/simtime"
	"progresscap/internal/stats"
)

func TestNek5000StepsNonuniform(t *testing.T) {
	// The defining Category 3 property: step costs vary widely, so
	// timesteps/second is not a reliable online metric.
	w := Nek5000(16, 60)
	rng := simtime.NewRNG(1)
	var durs []float64
	for it := 0; it < 60; it++ {
		longest := 0.0
		for r := 0; r < w.Ranks; r++ {
			d := w.Phases[0].Gen(r, it, rng).DurationAt(FMaxHz, 1)
			if d > longest {
				longest = d
			}
		}
		durs = append(durs, longest)
	}
	cv := stats.CoefVar(durs)
	if cv < 0.15 {
		t.Fatalf("Nek5000 step CV = %v, want wildly nonuniform (>0.15)", cv)
	}
	// LAMMPS, by contrast, is uniform.
	l := LAMMPS(16, 60)
	durs = durs[:0]
	rng = simtime.NewRNG(1)
	for it := 0; it < 60; it++ {
		durs = append(durs, l.Phases[0].Gen(0, it, rng).DurationAt(FMaxHz, 1))
	}
	if cv := stats.CoefVar(durs); cv > 0.02 {
		t.Fatalf("LAMMPS step CV = %v, want uniform", cv)
	}
}

func TestEnergyPlusTimescaleSlower(t *testing.T) {
	nek, eplus := URBANComponents(20)
	nekPer := nek.IdealDuration(FMaxHz, 1, 1).Seconds() / float64(nek.TotalIterations())
	epPer := eplus.IdealDuration(FMaxHz, 1, 1).Seconds() / float64(eplus.TotalIterations())
	if epPer < nekPer*3 {
		t.Fatalf("EnergyPlus step %v not at a slower timescale than Nek5000 %v", epPer, nekPer)
	}
}

func TestURBANComponentsShareTheNode(t *testing.T) {
	nek, eplus := URBANComponents(10)
	if nek.Ranks+eplus.Ranks != 24 {
		t.Fatalf("component ranks = %d + %d, want a full 24-core node", nek.Ranks, eplus.Ranks)
	}
	if err := nek.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := eplus.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both sized to roughly the requested duration.
	for _, w := range []struct {
		name string
		d    float64
	}{
		{"nek", nek.IdealDuration(FMaxHz, 1, 1).Seconds()},
		{"eplus", eplus.IdealDuration(FMaxHz, 1, 1).Seconds()},
	} {
		if math.Abs(w.d-10) > 4 {
			t.Fatalf("%s duration = %v, want ~10 s", w.name, w.d)
		}
	}
}
