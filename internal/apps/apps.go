// Package apps provides workload models of the applications the paper
// instruments (§IV-B), calibrated so that the characterization metrics it
// reports (Table VI: β and MPO; Table V: progress metrics and reporting
// rates) come out of the simulation:
//
//	app        β     MPO(×10⁻³)  metric                    reports
//	LAMMPS     1.00  0.32        atom timesteps/s          ~20/s
//	AMG        0.52  30.1        GMRES iterations/s        ~2.5-3/s
//	QMCPACK    0.84  3.91        blocks/s (DMC)            ~16/s
//	OpenMC     0.93  0.20        particles/s               ~1/s
//	STREAM     0.37  50.9        iterations/s              ~16/s
//
// Because a segment's time is T(f) = C/f + M, an application's measured β
// equals its compute-time fraction at f_max by construction, so each
// builder fixes that fraction to the paper's value.
package apps

import (
	"progresscap/internal/simtime"
	"progresscap/internal/workload"
)

// FMaxHz is the frequency the calibration times below are specified at
// (the node's maximum all-core turbo).
const FMaxHz = 3.3e9

// DefaultRanks is the paper's single-node parallelism: 24 processes or
// threads, one per physical core.
const DefaultRanks = 24

// sharedJitter returns a generator-local source of one multiplicative
// jitter per iteration, shared by every rank: workload generators are
// invoked rank 0..N-1 for each iteration, so the value drawn at rank 0 is
// reused for the rest of the team. Sharing the draw keeps iteration cost
// variation from masquerading as rank imbalance (which would inflate
// barrier-spin instructions and dilute MPO).
func sharedJitter(amp float64) func(rank, iter int, rng *simtime.RNG) float64 {
	cur := -1
	val := 1.0
	return func(rank, iter int, rng *simtime.RNG) float64 {
		if iter != cur || rank == 0 {
			cur = iter
			val = rng.Jitter(amp)
		}
		return val
	}
}

// seg builds a segment from an iteration-time budget: total duration at
// FMaxHz split into compute and memory by beta, with instruction and miss
// counts derived from ipc and mpo.
func seg(durSec, beta, ipc, mpo, bwShare, workUnits float64) workload.Segment {
	ct := durSec * beta
	cycles := ct * FMaxHz
	inst := cycles * ipc
	return workload.Segment{
		ComputeCycles: cycles,
		MemSeconds:    durSec * (1 - beta),
		Instructions:  inst,
		L3Misses:      inst * mpo,
		BWShare:       bwShare,
		WorkUnits:     workUnits,
	}
}

// LAMMPS models the Lennard-Jones benchmark: 24 MPI ranks, 40,000 atoms,
// a timestep loop of ~50 ms iterations (≈20 progress reports/s), fully
// compute-bound (β = 1.00, MPO = 0.32×10⁻³).
func LAMMPS(ranks, steps int) *workload.Workload {
	const (
		iterSec = 0.050
		beta    = 0.998 // rounds to the paper's 1.00
		ipc     = 2.0
		mpo     = 0.32e-3
		atoms   = 40000
	)
	jit := sharedJitter(0.01)
	return &workload.Workload{
		Name:   "lammps",
		Metric: "atom timesteps/s",
		Ranks:  ranks,
		Phases: []workload.Phase{{
			Name:            "verlet",
			Iterations:      steps,
			ProgressPerIter: atoms,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				return seg(iterSec*jit(rank, iter, rng), beta, ipc, mpo, 0.002, atoms/float64(ranks))
			},
		}},
	}
}

// AMG models the GMRES solve (HYPRE solver 3 with diagonal scaling):
// 24 MPI ranks, ~0.36 s iterations whose cost fluctuates so the online
// rate wobbles between ~2.5 and ~3 iterations/s, memory-heavy
// (β = 0.52, MPO = 30.1×10⁻³).
func AMG(ranks, iters int) *workload.Workload {
	const (
		iterSec = 0.364
		beta    = 0.52
		ipc     = 1.2
		mpo     = 30.1e-3
	)
	jit := sharedJitter(0.10)
	return &workload.Workload{
		Name:   "amg",
		Metric: "GMRES iterations/s",
		Ranks:  ranks,
		Phases: []workload.Phase{{
			Name:            "gmres",
			Iterations:      iters,
			ProgressPerIter: 1,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				// Iteration-to-iteration cost variation dominates
				// (Fig 1 center); a little rank imbalance on top.
				itJitter := jit(rank, iter, rng)
				rkJitter := rng.Jitter(0.01)
				return seg(iterSec*itJitter*rkJitter, beta, ipc, mpo, 0.05, 1.0/float64(ranks))
			},
		}},
	}
}

// QMCPACK models the performance-NiO benchmark: 24 OpenMP threads and
// three phases — VMC1, VMC2, and the DMC that dominates the run —
// computing blocks at visibly different rates (Fig 1 right). The DMC has
// β = 0.84 and MPO = 3.91×10⁻³.
func QMCPACK(threads, vmc1, vmc2, dmc int) *workload.Workload {
	const (
		ipc = 1.8
		mpo = 3.91e-3
	)
	phase := func(name string, blocks int, iterSec, beta float64) workload.Phase {
		jit := sharedJitter(0.02)
		return workload.Phase{
			Name:            name,
			Iterations:      blocks,
			ProgressPerIter: 1, // one block
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				return seg(iterSec*jit(rank, iter, rng), beta, ipc, mpo, 0.02, 1.0/float64(threads))
			},
		}
	}
	return &workload.Workload{
		Name:   "qmcpack",
		Metric: "blocks/s",
		Ranks:  threads,
		Phases: []workload.Phase{
			phase("vmc1", vmc1, 1.0/8, 0.88),  // ~8 blocks/s
			phase("vmc2", vmc2, 1.0/12, 0.88), // ~12 blocks/s
			phase("dmc", dmc, 1.0/16, 0.84),   // ~16 blocks/s
		},
	}
}

// OpenMC models the neutron-transport benchmark: inactive then active
// batches over 24 OpenMP threads, ~1 s per active batch so the 1 Hz
// aggregation window aliases against batch completions (the paper's
// occasional zero reports). β = 0.93, MPO = 0.20×10⁻³.
func OpenMC(threads, inactive, active, particles int) *workload.Workload {
	const (
		ipc = 1.5
		mpo = 0.20e-3
	)
	phase := func(name string, batches int, iterSec float64) workload.Phase {
		jit := sharedJitter(0.03)
		return workload.Phase{
			Name:            name,
			Iterations:      batches,
			ProgressPerIter: float64(particles),
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				return seg(iterSec*jit(rank, iter, rng), 0.93, ipc, mpo, 0.01,
					float64(particles)/float64(threads))
			},
		}
	}
	return &workload.Workload{
		Name:   "openmc",
		Metric: "particles/s",
		Ranks:  threads,
		Phases: []workload.Phase{
			phase("inactive", inactive, 0.80),
			phase("active", active, 1.05),
		},
	}
}

// STREAM models the memory-bandwidth benchmark: 24 OpenMP threads
// sweeping copy/scale/add/triad each iteration (~16 iterations/s),
// saturating memory bandwidth (β = 0.37, MPO = 50.9×10⁻³).
func STREAM(threads, iters int) *workload.Workload {
	const (
		iterSec = 0.0625
		beta    = 0.37
		ipc     = 0.8
		mpo     = 50.9e-3
	)
	jit := sharedJitter(0.01)
	return &workload.Workload{
		Name:   "stream",
		Metric: "iterations/s",
		Ranks:  threads,
		Phases: []workload.Phase{{
			Name:            "copy-scale-add-triad",
			Iterations:      iters,
			ProgressPerIter: 1,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				// Per-thread bandwidth share is high enough that the
				// aggregate demand saturates the memory subsystem.
				return seg(iterSec*jit(rank, iter, rng), beta, ipc, mpo, 0.104, 1.0/float64(threads))
			},
		}},
	}
}

// CANDLE models the deep-learning benchmark's training phase: epochs
// completed per second is the online metric; the epoch count is bounded
// by accuracy rather than known in advance, which is why the paper puts
// it between Categories 1 and 2.
func CANDLE(threads, epochs int) *workload.Workload {
	const (
		epochSec = 1.25
		beta     = 0.85
		ipc      = 1.6
		mpo      = 2.0e-3
	)
	jit := sharedJitter(0.04)
	return &workload.Workload{
		Name:   "candle",
		Metric: "epochs/s",
		Ranks:  threads,
		Phases: []workload.Phase{{
			Name:            "training",
			Iterations:      epochs,
			ProgressPerIter: 1,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				return seg(epochSec*jit(rank, iter, rng), beta, ipc, mpo, 0.02, 1.0/float64(threads))
			},
		}},
	}
}

// ImbalanceSample is the paper's Listing 1: each rank "works" by sleeping
// — one work unit per microsecond slept — then hits a barrier. With equal
// work every rank sleeps WorkSeconds; with unequal work rank r sleeps
// (r+1)/ranks × WorkSeconds and busy-waits the rest, inflating MIPS
// without changing iterations/s (Table I).
func ImbalanceSample(ranks, iters int, equal bool, workSeconds float64) *workload.Workload {
	name := "imbalance-unequal"
	if equal {
		name = "imbalance-equal"
	}
	return &workload.Workload{
		Name:   name,
		Metric: "iterations/s",
		Ranks:  ranks,
		Phases: []workload.Phase{{
			Name:            "main",
			Iterations:      iters,
			ProgressPerIter: 1,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				sleep := workSeconds
				if !equal {
					sleep = float64(rank+1) / float64(ranks) * workSeconds
				}
				return workload.Segment{
					SleepSeconds: sleep,
					WorkUnits:    sleep * 1e6, // one unit per µs in sleep()
				}
			},
		}},
	}
}
