package apps

import (
	"progresscap/internal/simtime"
	"progresscap/internal/workload"
)

// This file models the paper's Category 3 example: the URBAN project,
// where the Nek5000 CFD library runs coupled with EnergyPlus (building
// energy simulation) "at timescales that are orders of magnitude apart"
// (§III-A). The paper excludes URBAN from its runtime study because no
// single online metric is reliable; its future work proposes "studying
// individual components separately and modeling progress as a weighted
// combination of the progress of individual components" (§VI-3). The
// component models below feed that extension (internal/composite).

// Nek5000 models the spectral-element CFD solver component: timestep
// based, but with heavy step-to-step variation (pressure-solver
// iteration counts swing with the flow), which is why timesteps/second
// is not a reliable online metric on its own.
func Nek5000(ranks, steps int) *workload.Workload {
	const (
		meanIterSec = 0.125 // ~8 steps/s nominal
		beta        = 0.75
		ipc         = 1.6
		mpo         = 8.0e-3
	)
	jit := sharedJitter(0.45) // the defining feature: wildly nonuniform steps
	return &workload.Workload{
		Name:   "nek5000",
		Metric: "timesteps/s",
		Ranks:  ranks,
		Phases: []workload.Phase{{
			Name:            "solve",
			Iterations:      steps,
			ProgressPerIter: 1,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				return seg(meanIterSec*jit(rank, iter, rng), beta, ipc, mpo, 0.03, 1.0/float64(ranks))
			},
		}},
	}
}

// EnergyPlus models the building-energy simulation component: long zone
// timesteps at a timescale orders of magnitude slower than the CFD
// solver's, moderately memory-bound.
func EnergyPlus(ranks, zoneSteps int) *workload.Workload {
	const (
		stepSec = 0.6
		beta    = 0.60
		ipc     = 1.1
		mpo     = 15.0e-3
	)
	jit := sharedJitter(0.08)
	return &workload.Workload{
		Name:   "energyplus",
		Metric: "zone timesteps/s",
		Ranks:  ranks,
		Phases: []workload.Phase{{
			Name:            "annual",
			Iterations:      zoneSteps,
			ProgressPerIter: 1,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				return seg(stepSec*jit(rank, iter, rng), beta, ipc, mpo, 0.04, 1.0/float64(ranks))
			},
		}},
	}
}

// URBANComponents returns the coupled URBAN workload pair sized to run
// for roughly the given virtual seconds: Nek5000 on 16 cores and
// EnergyPlus on 8 (they run concurrently on one node via the engine's
// multi-workload support).
func URBANComponents(seconds float64) (nek, eplus *workload.Workload) {
	steps := int(seconds * 8)
	if steps < 4 {
		steps = 4
	}
	zones := int(seconds / 0.6)
	if zones < 4 {
		zones = 4
	}
	return Nek5000(16, steps), EnergyPlus(8, zones)
}
