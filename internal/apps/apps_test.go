package apps

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/workload"
)

// measureBeta runs the paper's §IV-A procedure on a workload model:
// execution time at 3300 MHz vs 1600 MHz, solved for β via the Etinski
// relation.
func measureBeta(w *workload.Workload) float64 {
	const fmax, flow = 3.3e9, 1.6e9
	tMax := w.IdealDuration(fmax, 1, 1).Seconds()
	tLow := w.IdealDuration(flow, 1, 1).Seconds()
	return (tLow/tMax - 1) / (fmax/flow - 1)
}

// measureMPO executes a slice of the workload and reads the counters.
func measureMPO(t *testing.T, w *workload.Workload) float64 {
	t.Helper()
	bank := counters.NewBank(w.Ranks)
	e, err := workload.NewExec(w, bank, 1)
	if err != nil {
		t.Fatal(err)
	}
	tick := 100 * time.Microsecond
	now := time.Duration(0)
	for i := 0; i < 5_000_000 && !e.Done(); i++ {
		now += tick
		e.Step(now, tick, FMaxHz, 1)
	}
	ins := float64(bank.Total(counters.TotIns))
	if ins == 0 {
		t.Fatal("no instructions retired")
	}
	return float64(bank.Total(counters.L3TCM)) / ins
}

func TestTableVIBetaCalibration(t *testing.T) {
	cases := []struct {
		name string
		w    *workload.Workload
		want float64
	}{
		{"LAMMPS", LAMMPS(DefaultRanks, 4), 1.00},
		{"AMG", AMG(DefaultRanks, 4), 0.52},
		{"QMCPACK-DMC", QMCPACK(DefaultRanks, 1, 1, 8).SubsetPhase("dmc"), 0.84},
		{"OpenMC", OpenMC(DefaultRanks, 1, 3, 100000), 0.93},
		{"STREAM", STREAM(DefaultRanks, 4), 0.37},
	}
	for _, c := range cases {
		got := measureBeta(c.w)
		if math.Abs(got-c.want) > 0.03 {
			t.Errorf("%s: β = %.3f, want %.2f ±0.03", c.name, got, c.want)
		}
	}
}

func TestTableVIMPOCalibration(t *testing.T) {
	cases := []struct {
		name string
		w    *workload.Workload
		want float64
	}{
		{"LAMMPS", LAMMPS(DefaultRanks, 4), 0.32e-3},
		{"AMG", AMG(DefaultRanks, 3), 30.1e-3},
		{"STREAM", STREAM(DefaultRanks, 6), 50.9e-3},
	}
	for _, c := range cases {
		got := measureMPO(t, c.w)
		if math.Abs(got-c.want)/c.want > 0.25 {
			t.Errorf("%s: MPO = %.4g, want %.4g ±25%%", c.name, got, c.want)
		}
	}
}

func TestLAMMPSReportRate(t *testing.T) {
	w := LAMMPS(DefaultRanks, 100)
	dur := w.IdealDuration(FMaxHz, 1, 1).Seconds()
	rate := 100 / dur
	if rate < 17 || rate > 23 {
		t.Fatalf("LAMMPS iteration rate = %.1f/s, want ~20/s", rate)
	}
}

func TestAMGIterationRateFluctuates(t *testing.T) {
	w := AMG(DefaultRanks, 40)
	dur := w.IdealDuration(FMaxHz, 1, 1).Seconds()
	rate := 40 / dur
	if rate < 2.3 || rate > 3.2 {
		t.Fatalf("AMG rate = %.2f/s, want 2.5-3/s", rate)
	}
}

func TestQMCPACKPhaseRatesDiffer(t *testing.T) {
	w := QMCPACK(DefaultRanks, 16, 16, 16)
	if len(w.Phases) != 3 {
		t.Fatalf("phases = %d", len(w.Phases))
	}
	rate := func(p workload.Phase) float64 {
		one := &workload.Workload{Name: "x", Metric: "b/s", Ranks: w.Ranks, Phases: []workload.Phase{p}}
		return float64(p.Iterations) / one.IdealDuration(FMaxHz, 1, 1).Seconds()
	}
	r1, r2, r3 := rate(w.Phases[0]), rate(w.Phases[1]), rate(w.Phases[2])
	if !(r1 < r2 && r2 < r3) {
		t.Fatalf("phase rates not increasing: %.1f, %.1f, %.1f", r1, r2, r3)
	}
	if r3 < 13 || r3 > 19 {
		t.Fatalf("DMC rate = %.1f blocks/s, want ~16", r3)
	}
}

func TestOpenMCBatchRate(t *testing.T) {
	w := OpenMC(DefaultRanks, 0+1, 10, 100000)
	// Active batches take ~1.05 s.
	act := w.Phases[1]
	one := &workload.Workload{Name: "x", Metric: "p/s", Ranks: w.Ranks, Phases: []workload.Phase{act}}
	per := one.IdealDuration(FMaxHz, 1, 1).Seconds() / float64(act.Iterations)
	if per < 0.95 || per > 1.2 {
		t.Fatalf("active batch duration = %.2f s, want ~1.05", per)
	}
}

func TestImbalanceSampleWork(t *testing.T) {
	eq := ImbalanceSample(24, 5, true, 1.0)
	uneq := ImbalanceSample(24, 5, false, 1.0)
	// Both take ~1 s per iteration (critical path = slowest rank).
	te := eq.IdealDuration(FMaxHz, 1, 1).Seconds()
	tu := uneq.IdealDuration(FMaxHz, 1, 1).Seconds()
	if math.Abs(te-5) > 0.01 || math.Abs(tu-5) > 0.01 {
		t.Fatalf("durations = %v, %v, want 5 s each", te, tu)
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 9 {
		t.Fatalf("registry has %d applications, want 9 (Table II)", len(reg))
	}
	runnable := 0
	for _, info := range reg {
		if info.Name == "" || info.Description == "" || info.Resource == "" {
			t.Errorf("incomplete entry %+v", info)
		}
		if info.Category == 3 && info.Metric != "N/A" {
			t.Errorf("%s: Category 3 should have N/A metric", info.Name)
		}
		if info.Category != 3 && !info.Runnable() {
			t.Errorf("%s: category %v but not runnable", info.Name, info.Category)
		}
		if info.Runnable() {
			runnable++
			w := info.Build(5)
			if err := w.Validate(); err != nil {
				t.Errorf("%s: built workload invalid: %v", info.Name, err)
			}
		}
	}
	if runnable != 6 {
		t.Fatalf("runnable apps = %d, want 6", runnable)
	}
}

func TestRegistryBuildScalesWithSeconds(t *testing.T) {
	for _, info := range Registry() {
		if !info.Runnable() {
			continue
		}
		short := info.Build(5)
		long := info.Build(30)
		ds := short.IdealDuration(FMaxHz, 1, 1).Seconds()
		dl := long.IdealDuration(FMaxHz, 1, 1).Seconds()
		if dl <= ds {
			t.Errorf("%s: Build(30) not longer than Build(5): %v vs %v", info.Name, dl, ds)
		}
		if dl < 15 || dl > 60 {
			t.Errorf("%s: Build(30) duration = %v s, want roughly 30", info.Name, dl)
		}
	}
}

func TestLookup(t *testing.T) {
	info, err := Lookup("STREAM")
	if err != nil || info.Name != "STREAM" {
		t.Fatalf("Lookup(STREAM) = %+v, %v", info, err)
	}
	if _, err := Lookup("nosuch"); err == nil {
		t.Fatal("Lookup(nosuch) succeeded")
	}
}

func TestRunnableNames(t *testing.T) {
	names := RunnableNames()
	want := []string{"QMCPACK", "OpenMC", "AMG", "LAMMPS", "CANDLE", "STREAM"}
	if len(names) != len(want) {
		t.Fatalf("RunnableNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("RunnableNames = %v, want %v", names, want)
		}
	}
}

func TestQuestionsComplete(t *testing.T) {
	for i, q := range Questions {
		if q == "" {
			t.Fatalf("question %d empty", i+1)
		}
	}
}
