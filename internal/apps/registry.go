package apps

import (
	"fmt"

	"progresscap/internal/progress"
	"progresscap/internal/workload"
)

// Questions are the eight questions posed to application specialists
// (Table III).
var Questions = [8]string{
	"Is there a well-defined FOM for the application?",
	"Can we measure online performance during execution that correlates well with either FOM or the execution time?",
	"Does online performance measure progress toward an application-defined scientific goal?",
	"Is the execution time accurately predictable based on a performance model of the application?",
	"If the application is loop based, is the number of loop iterations decided prior to execution?",
	"If application is loop based, do loop iterations proceed in a uniform manner in terms of instructions executed?",
	"Does the application have multiple phases or components that are clearly demarcated from a design or performance characteristic standpoint?",
	"What system resource is the application limited by?",
}

// Info is one row of the paper's application tables: description
// (Table II), interview answers (Table IV), category and online
// performance metric (Table V), and — for the applications the paper
// could instrument — a builder for the corresponding workload model.
type Info struct {
	Name        string
	Description string
	Category    progress.Category
	Metric      string // "N/A" for Category 3
	// Answers holds the responses to Questions[0..6] ("Y"/"N", or a
	// note); Resource is the answer to question 8.
	Answers  [7]string
	Resource string
	// TableVI characterization targets (0 when the paper does not report
	// the application in Table VI).
	BetaTarget float64
	MPOTarget  float64 // absolute (e.g. 30.1e-3)
	// Build constructs the workload model at the paper's single-node
	// configuration, scaled to run for roughly the given number of
	// virtual seconds. Nil for Category 3 applications, which the paper
	// also excludes from the runtime study.
	Build func(seconds float64) *workload.Workload
}

// Runnable reports whether the application has a workload model.
func (i Info) Runnable() bool { return i.Build != nil }

// Registry returns the paper's application set in presentation order.
// Interview answers follow the narrative of §III; the single-letter
// values match Table IV.
func Registry() []Info {
	return []Info{
		{
			Name:        "QMCPACK",
			Description: "Monte Carlo quantum chemistry code that samples particle positions randomly. Phased application.",
			Category:    progress.Category1,
			Metric:      "Blocks per second",
			Answers:     [7]string{"Y", "Y", "Y", "Y", "Y", "Y", "Y"},
			Resource:    "Compute",
			BetaTarget:  0.84,
			MPOTarget:   3.91e-3,
			Build: func(seconds float64) *workload.Workload {
				// Phase budget ¼ / ¼ / ½ at 8, 12, 16 blocks/s.
				v1 := max(2, int(seconds/4*8))
				v2 := max(2, int(seconds/4*12))
				dmc := max(2, int(seconds/2*16))
				return QMCPACK(DefaultRanks, v1, v2, dmc)
			},
		},
		{
			Name:        "OpenMC",
			Description: "Monte Carlo neutron transport code that simulates particle movement inside nuclear reactor. Phased application.",
			Category:    progress.Category1,
			Metric:      "Particles per second",
			Answers:     [7]string{"N", "Y", "Y", "Y", "Y", "Y", "Y"},
			Resource:    "Memory latency",
			BetaTarget:  0.93,
			MPOTarget:   0.20e-3,
			Build: func(seconds float64) *workload.Workload {
				active := max(2, int(seconds/1.05)-8)
				return OpenMC(DefaultRanks, 8, active, 100000)
			},
		},
		{
			Name:        "AMG",
			Description: "Iterative solver benchmark that uses algebraic multigrid preconditioning. Only the solve phase is important for performance.",
			Category:    progress.Category2,
			Metric:      "Conjugate gradient iterations per second",
			Answers:     [7]string{"N", "Y", "N", "N", "N", "Y", "N"},
			Resource:    "Memory bandwidth",
			BetaTarget:  0.52,
			MPOTarget:   30.1e-3,
			Build: func(seconds float64) *workload.Workload {
				return AMG(DefaultRanks, max(2, int(seconds*2.75)))
			},
		},
		{
			Name:        "LAMMPS",
			Description: "Molecular dynamics package that uses N-body simulation techniques. No detected phases in the application.",
			Category:    progress.Category1,
			Metric:      "Atom timesteps per second",
			Answers:     [7]string{"N", "Y", "Y", "Y", "Y", "Y", "N"},
			Resource:    "Compute",
			BetaTarget:  1.00,
			MPOTarget:   0.32e-3,
			Build: func(seconds float64) *workload.Workload {
				return LAMMPS(DefaultRanks, max(2, int(seconds*20)))
			},
		},
		{
			Name:        "CANDLE",
			Description: "Deep Learning based cancer suite. Benchmark code that uses TensorFlow to solve problems related to precision medicine for cancer.",
			Category:    progress.Category1, // "1/2" in the paper; training epochs are Category 1 online, Category 2 toward the goal
			Metric:      "Epochs per second (training phase)",
			Answers:     [7]string{"N", "Y", "N", "N", "N", "Y", "Y"},
			Resource:    "Memory bandwidth",
			Build: func(seconds float64) *workload.Workload {
				return CANDLE(DefaultRanks, max(2, int(seconds/1.25)))
			},
		},
		{
			Name:        "STREAM",
			Description: "Memory bandwidth benchmark designed to stress-test the memory subsystem.",
			Category:    progress.Category1,
			Metric:      "Iterations per second",
			Answers:     [7]string{"Y", "Y", "Y", "Y", "Y", "Y", "N"},
			Resource:    "Memory bandwidth",
			BetaTarget:  0.37,
			MPOTarget:   50.9e-3,
			Build: func(seconds float64) *workload.Workload {
				return STREAM(DefaultRanks, max(2, int(seconds*16)))
			},
		},
		{
			Name:        "URBAN",
			Description: "Collection of applications for modeling and simulation of city infrastructure and transport mechanisms. Multiphysics application where individual components run at different timescales.",
			Category:    progress.Category3,
			Metric:      "N/A",
			Answers:     [7]string{"N", "N", "N", "N", "N", "N", "Y"},
			Resource:    "Component-dependent",
		},
		{
			Name:        "Nek5000",
			Description: "Computational fluid dynamics library that is a part of larger applications.",
			Category:    progress.Category3,
			Metric:      "N/A",
			Answers:     [7]string{"N", "N", "N", "N", "Y", "N", "Y"},
			Resource:    "Compute",
		},
		{
			Name:        "HACC",
			Description: "Cosmology application that uses N-body techniques for simulation of galaxies. Many individual components with distinct performance characteristics.",
			Category:    progress.Category3,
			Metric:      "N/A",
			Answers:     [7]string{"N", "N", "N", "N", "Y", "N", "Y"},
			Resource:    "Compute",
		},
	}
}

// Lookup returns the registry entry with the given name (case-sensitive).
func Lookup(name string) (Info, error) {
	for _, info := range Registry() {
		if info.Name == name {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("apps: unknown application %q", name)
}

// RunnableNames returns the names of applications with workload models,
// in registry order.
func RunnableNames() []string {
	var out []string
	for _, info := range Registry() {
		if info.Runnable() {
			out = append(out, info.Name)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
