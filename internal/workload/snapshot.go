// Checkpoint support for Exec. Generators are closures — some carry
// hidden state (the apps' shared-jitter draws) — so an executor cannot
// be deep-copied field by field. Instead the restore *replays* the
// generator call sequence: loadIteration is the only place the RNG is
// consumed and the only place generator closures run, and it runs in a
// deterministic (phase, iter) order from construction. Replaying that
// sequence on a fresh identically-seeded executor reproduces both the
// RNG position and every closure's internal state; the snapshot then
// overwrites the mid-iteration remainders, accounting, and anchors.

package workload

import (
	"fmt"
	"time"

	"progresscap/internal/simtime"
)

// RankSnapshot is one rank's mid-iteration execution state.
type RankSnapshot struct {
	Seg       Segment
	RemCycles float64
	RemMem    float64
	RemSleep  float64
	Finished  bool
	Load      RankLoad
}

// ExecState is the complete mutable state of an Exec.
type ExecState struct {
	PhaseIdx  int
	Iter      int
	IterStart time.Duration
	Done      bool
	At        time.Duration
	RNG       simtime.RNGState
	Ranks     []RankSnapshot
}

// Snapshot captures the executor's state.
func (e *Exec) Snapshot() ExecState {
	st := ExecState{
		PhaseIdx:  e.phaseIdx,
		Iter:      e.iter,
		IterStart: e.iterStart,
		Done:      e.done,
		At:        e.at,
		RNG:       e.rng.State(),
		Ranks:     make([]RankSnapshot, len(e.ranks)),
	}
	for r := range e.ranks {
		rs := &e.ranks[r]
		st.Ranks[r] = RankSnapshot{
			Seg:       rs.seg,
			RemCycles: rs.remCycles,
			RemMem:    rs.remMem,
			RemSleep:  rs.remSleep,
			Finished:  rs.finished,
			Load:      rs.load,
		}
	}
	return st
}

// globalIter returns the executor's position as a count of completed
// loadIteration calls after the constructor's: phase-by-phase iteration
// order is fixed, so (phaseIdx, iter) maps to one replay count.
func (e *Exec) globalIter(phaseIdx, iter int) (int, error) {
	if phaseIdx < 0 || phaseIdx >= len(e.w.Phases) {
		return 0, fmt.Errorf("workload %s: snapshot phase %d outside [0,%d)", e.w.Name, phaseIdx, len(e.w.Phases))
	}
	if iter < 0 || iter >= e.w.Phases[phaseIdx].Iterations {
		return 0, fmt.Errorf("workload %s: snapshot iter %d outside phase %d", e.w.Name, iter, phaseIdx)
	}
	n := 0
	for p := 0; p < phaseIdx; p++ {
		n += e.w.Phases[p].Iterations
	}
	return n + iter, nil
}

// Restore positions a freshly constructed executor (same workload, same
// seed, same offset, untouched since NewExecOffset) at the captured
// state. It replays the generator sequence up to the snapshot's
// iteration — reproducing RNG position and generator-closure state —
// then overwrites the mid-iteration remainders. The RNG position is
// verified against the snapshot: a mismatch means the executor was not
// fresh or the workload differs, and is returned as an error.
func (e *Exec) Restore(st ExecState) error {
	if len(st.Ranks) != len(e.ranks) {
		return fmt.Errorf("workload %s: snapshot has %d ranks, executor %d", e.w.Name, len(st.Ranks), len(e.ranks))
	}
	if e.phaseIdx != 0 || e.iter != 0 || e.at != 0 || e.done {
		return fmt.Errorf("workload %s: restore onto a non-fresh executor", e.w.Name)
	}
	target := e.w.TotalIterations() // replay count when the snapshot is done
	if !st.Done {
		var err error
		target, err = e.globalIter(st.PhaseIdx, st.Iter)
		if err != nil {
			return err
		}
	}
	// The constructor already ran loadIteration for global iteration 0;
	// advance() runs it for each subsequent one (and flips done past the
	// last). Replay with a zero timestamp — iterStart is overwritten below.
	for g := 0; g < target && !e.done; g++ {
		e.advance(0)
	}
	if !st.Done && (e.phaseIdx != st.PhaseIdx || e.iter != st.Iter) {
		return fmt.Errorf("workload %s: replay landed at phase %d iter %d, snapshot says %d/%d",
			e.w.Name, e.phaseIdx, e.iter, st.PhaseIdx, st.Iter)
	}
	if e.done != st.Done {
		return fmt.Errorf("workload %s: replay done=%v, snapshot done=%v", e.w.Name, e.done, st.Done)
	}
	if got := e.rng.State(); got != st.RNG {
		return fmt.Errorf("workload %s: replayed RNG diverges from snapshot (different seed or workload?)", e.w.Name)
	}
	for r := range e.ranks {
		rs := st.Ranks[r]
		e.ranks[r] = rankState{
			seg:       rs.Seg,
			remCycles: rs.RemCycles,
			remMem:    rs.RemMem,
			remSleep:  rs.RemSleep,
			finished:  rs.Finished,
			load:      rs.Load,
		}
	}
	e.iterStart = st.IterStart
	e.at = st.At
	return nil
}
