package workload

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/simtime"
)

// uniform returns a generator where every rank does the same fixed work.
func uniform(seg Segment) GenFunc {
	return func(rank, iter int, rng *simtime.RNG) Segment { return seg }
}

func simpleWorkload(ranks, iters int, seg Segment) *Workload {
	return &Workload{
		Name:   "test",
		Metric: "iters/s",
		Ranks:  ranks,
		Phases: []Phase{{Name: "main", Iterations: iters, ProgressPerIter: 1, Gen: uniform(seg)}},
	}
}

// runToCompletion steps the exec at a fixed operating point and returns
// all completion events and the total virtual time.
func runToCompletion(t *testing.T, e *Exec, tick time.Duration, effHz, memFactor float64) ([]IterationEvent, time.Duration) {
	t.Helper()
	var events []IterationEvent
	now := time.Duration(0)
	for i := 0; i < 10_000_000 && !e.Done(); i++ {
		now += tick
		out := e.Step(now, tick, effHz, memFactor)
		events = append(events, out.Completions...)
	}
	if !e.Done() {
		t.Fatal("workload did not complete")
	}
	return events, now
}

func TestValidate(t *testing.T) {
	good := simpleWorkload(2, 3, Segment{ComputeCycles: 1e6, Instructions: 1e6})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Workload{
		{Name: "", Ranks: 1, Phases: []Phase{{Name: "p", Iterations: 1, Gen: uniform(Segment{ComputeCycles: 1})}}},
		{Name: "x", Ranks: 0, Phases: []Phase{{Name: "p", Iterations: 1, Gen: uniform(Segment{ComputeCycles: 1})}}},
		{Name: "x", Ranks: 1},
		{Name: "x", Ranks: 1, Phases: []Phase{{Name: "p", Iterations: 0, Gen: uniform(Segment{ComputeCycles: 1})}}},
		{Name: "x", Ranks: 1, Phases: []Phase{{Name: "p", Iterations: 1}}},
	}
	for i, w := range bad {
		if w.Validate() == nil {
			t.Errorf("bad workload %d validated", i)
		}
	}
}

func TestSegmentValidate(t *testing.T) {
	good := Segment{ComputeCycles: 100, MemSeconds: 0.1, Instructions: 10, BWShare: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Segment{
		{},
		{ComputeCycles: -1},
		{ComputeCycles: 1, BWShare: 2},
		{ComputeCycles: 1, Instructions: -1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad segment %d validated", i)
		}
	}
}

func TestSegmentDurationAt(t *testing.T) {
	s := Segment{ComputeCycles: 2e9, MemSeconds: 0.5, SleepSeconds: 0.25}
	got := s.DurationAt(2e9, 2)
	if math.Abs(got-(0.25+1+1)) > 1e-12 {
		t.Fatalf("DurationAt = %v, want 2.25", got)
	}
}

func TestExecCompletesAllIterations(t *testing.T) {
	// 4 ranks, 5 iterations, 10 ms of compute at 1 GHz.
	w := simpleWorkload(4, 5, Segment{ComputeCycles: 1e7, Instructions: 2e7})
	e, err := NewExec(w, counters.NewBank(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := runToCompletion(t, e, time.Millisecond, 1e9, 1)
	if len(events) != 5 {
		t.Fatalf("completions = %d, want 5", len(events))
	}
	for i, ev := range events {
		if ev.Iter != i || ev.Phase != "main" || ev.Progress != 1 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestExecIterationTimingMatchesModel(t *testing.T) {
	// One rank: 50 ms compute at 1 GHz + 50 ms memory → 100 ms/iter.
	w := simpleWorkload(1, 10, Segment{ComputeCycles: 5e7, MemSeconds: 0.05, Instructions: 1e8})
	e, _ := NewExec(w, counters.NewBank(1), 1)
	_, total := runToCompletion(t, e, 100*time.Microsecond, 1e9, 1)
	want := 1.0 // 10 × 100 ms
	if math.Abs(total.Seconds()-want) > 0.01 {
		t.Fatalf("total = %v, want ~%vs", total, want)
	}
}

func TestExecFrequencyScalesComputeOnly(t *testing.T) {
	seg := Segment{ComputeCycles: 6.6e7, MemSeconds: 0.03, Instructions: 1e8}
	w := simpleWorkload(1, 5, seg)

	e1, _ := NewExec(w, counters.NewBank(1), 1)
	_, tFast := runToCompletion(t, e1, 100*time.Microsecond, 3.3e9, 1)

	e2, _ := NewExec(w, counters.NewBank(1), 1)
	_, tSlow := runToCompletion(t, e2, 100*time.Microsecond, 1.65e9, 1)

	// Compute part doubles (20→40 ms), memory part fixed (30 ms).
	ratio := tSlow.Seconds() / tFast.Seconds()
	want := (0.04 + 0.03) / (0.02 + 0.03)
	if math.Abs(ratio-want) > 0.03 {
		t.Fatalf("slowdown = %v, want ~%v", ratio, want)
	}
}

func TestExecMemFactorScalesMemoryOnly(t *testing.T) {
	seg := Segment{ComputeCycles: 3.3e7, MemSeconds: 0.04, Instructions: 1e8, BWShare: 1}
	w := simpleWorkload(1, 5, seg)

	e1, _ := NewExec(w, counters.NewBank(1), 1)
	_, tFull := runToCompletion(t, e1, 100*time.Microsecond, 3.3e9, 1)

	e2, _ := NewExec(w, counters.NewBank(1), 1)
	_, tHalf := runToCompletion(t, e2, 100*time.Microsecond, 3.3e9, 2)

	ratio := tHalf.Seconds() / tFull.Seconds()
	want := (0.01 + 0.08) / (0.01 + 0.04)
	if math.Abs(ratio-want) > 0.03 {
		t.Fatalf("bandwidth slowdown = %v, want ~%v", ratio, want)
	}
}

func TestExecEtinskiRelationHolds(t *testing.T) {
	// β = (C/fmax)/(C/fmax + M). Check T(f)/T(fmax) = β(fmax/f−1)+1.
	const fmax, fmin = 3.3e9, 1.6e9
	seg := Segment{ComputeCycles: 0.02 * fmax, MemSeconds: 0.02, Instructions: 1e8}
	beta := 0.02 / (0.02 + 0.02) // 0.5
	w := simpleWorkload(1, 4, seg)

	e1, _ := NewExec(w, counters.NewBank(1), 1)
	_, tMax := runToCompletion(t, e1, 100*time.Microsecond, fmax, 1)
	e2, _ := NewExec(w, counters.NewBank(1), 1)
	_, tMin := runToCompletion(t, e2, 100*time.Microsecond, fmin, 1)

	got := tMin.Seconds() / tMax.Seconds()
	want := beta*(fmax/fmin-1) + 1
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("Etinski ratio = %v, want %v", got, want)
	}
}

func TestExecBarrierSpinRetiresInstructions(t *testing.T) {
	// Rank 1 works 100 ms; rank 0 works 10 ms then spins ~90 ms.
	gen := func(rank, iter int, rng *simtime.RNG) Segment {
		c := 1e7
		if rank == 1 {
			c = 1e8
		}
		return Segment{ComputeCycles: c, Instructions: c} // IPC 1 while working
	}
	w := &Workload{Name: "imb", Metric: "iters/s", Ranks: 2,
		Phases: []Phase{{Name: "p", Iterations: 1, ProgressPerIter: 1, Gen: gen}}}
	bank := counters.NewBank(2)
	e, _ := NewExec(w, bank, 1)
	runToCompletion(t, e, 100*time.Microsecond, 1e9, 1)

	work0 := 1e7
	spin0 := 0.09 * 1e9 * SpinIPC // 90 ms spinning at 1 GHz, SpinIPC
	got0 := float64(bank.Read(0, counters.TotIns))
	if math.Abs(got0-(work0+spin0))/(work0+spin0) > 0.02 {
		t.Fatalf("rank 0 instructions = %v, want ~%v", got0, work0+spin0)
	}
	got1 := float64(bank.Read(1, counters.TotIns))
	if math.Abs(got1-1e8)/1e8 > 0.02 {
		t.Fatalf("rank 1 instructions = %v, want ~1e8", got1)
	}
}

func TestExecSleepIsFrequencyIndependent(t *testing.T) {
	w := simpleWorkload(1, 3, Segment{SleepSeconds: 0.1})
	e1, _ := NewExec(w, counters.NewBank(1), 1)
	_, tFast := runToCompletion(t, e1, time.Millisecond, 3.3e9, 1)
	e2, _ := NewExec(w, counters.NewBank(1), 1)
	_, tSlow := runToCompletion(t, e2, time.Millisecond, 1e9, 1)
	if math.Abs(tFast.Seconds()-tSlow.Seconds()) > 0.005 {
		t.Fatalf("sleep time varied with frequency: %v vs %v", tFast, tSlow)
	}
	if math.Abs(tFast.Seconds()-0.3) > 0.01 {
		t.Fatalf("sleep total = %v, want ~0.3s", tFast)
	}
}

func TestExecSleepingRanksReportedIdle(t *testing.T) {
	w := simpleWorkload(2, 1, Segment{SleepSeconds: 1})
	e, _ := NewExec(w, counters.NewBank(2), 1)
	out := e.Step(time.Millisecond, time.Millisecond, 3.3e9, 1)
	if out.Sleeping != 2 || out.Engaged != 0 {
		t.Fatalf("sleeping=%d engaged=%d, want 2,0", out.Sleeping, out.Engaged)
	}
}

func TestExecActivityReflectsMemoryStall(t *testing.T) {
	// 50/50 compute/memory at this frequency → activity ≈ 0.5.
	seg := Segment{ComputeCycles: 1e9, MemSeconds: 1, Instructions: 1e9, BWShare: 1}
	w := simpleWorkload(1, 1, seg)
	e, _ := NewExec(w, counters.NewBank(1), 1)
	out := e.Step(time.Millisecond, time.Millisecond, 1e9, 1)
	if math.Abs(out.Activity-0.5) > 0.01 {
		t.Fatalf("activity = %v, want ~0.5", out.Activity)
	}
	if math.Abs(out.BWUtil-0.5) > 0.01 {
		t.Fatalf("bw util = %v, want ~0.5", out.BWUtil)
	}
}

func TestExecPhaseSequencing(t *testing.T) {
	mk := func(name string, iters int) Phase {
		return Phase{Name: name, Iterations: iters, ProgressPerIter: 1,
			Gen: uniform(Segment{ComputeCycles: 1e6, Instructions: 1e6})}
	}
	w := &Workload{Name: "phased", Metric: "blocks/s", Ranks: 1,
		Phases: []Phase{mk("vmc1", 2), mk("vmc2", 3), mk("dmc", 4)}}
	if w.TotalIterations() != 9 {
		t.Fatalf("TotalIterations = %d", w.TotalIterations())
	}
	e, _ := NewExec(w, counters.NewBank(1), 1)
	name, idx := e.Phase()
	if name != "vmc1" || idx != 0 {
		t.Fatalf("initial phase = %s,%d", name, idx)
	}
	events, _ := runToCompletion(t, e, 100*time.Microsecond, 1e9, 1)
	if len(events) != 9 {
		t.Fatalf("events = %d, want 9", len(events))
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Phase]++
	}
	if counts["vmc1"] != 2 || counts["vmc2"] != 3 || counts["dmc"] != 4 {
		t.Fatalf("phase counts = %v", counts)
	}
	if name, idx := e.Phase(); name != "" || idx != -1 {
		t.Fatalf("done phase = %s,%d", name, idx)
	}
}

func TestExecWorkUnitsSummedAcrossRanks(t *testing.T) {
	gen := func(rank, iter int, rng *simtime.RNG) Segment {
		return Segment{SleepSeconds: 0.01, WorkUnits: float64(rank + 1)}
	}
	w := &Workload{Name: "wu", Metric: "units/s", Ranks: 3,
		Phases: []Phase{{Name: "p", Iterations: 1, ProgressPerIter: 1, Gen: gen}}}
	e, _ := NewExec(w, counters.NewBank(3), 1)
	events, _ := runToCompletion(t, e, time.Millisecond, 1e9, 1)
	if events[0].WorkUnits != 6 {
		t.Fatalf("WorkUnits = %v, want 6", events[0].WorkUnits)
	}
}

func TestExecStepAfterDoneIsIdle(t *testing.T) {
	w := simpleWorkload(2, 1, Segment{ComputeCycles: 1e3, Instructions: 1e3})
	e, _ := NewExec(w, counters.NewBank(2), 1)
	runToCompletion(t, e, time.Millisecond, 1e9, 1)
	out := e.Step(time.Hour, time.Millisecond, 1e9, 1)
	if out.Engaged != 0 || len(out.Completions) != 0 || out.Sleeping != 2 {
		t.Fatalf("post-done step = %+v", out)
	}
}

func TestExecBadOperatingPointPanics(t *testing.T) {
	w := simpleWorkload(1, 1, Segment{ComputeCycles: 1e6, Instructions: 1})
	e, _ := NewExec(w, counters.NewBank(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("memFactor < 1 did not panic")
		}
	}()
	e.Step(time.Millisecond, time.Millisecond, 1e9, 0.5)
}

func TestExecBankTooSmall(t *testing.T) {
	w := simpleWorkload(4, 1, Segment{ComputeCycles: 1e6, Instructions: 1})
	if _, err := NewExec(w, counters.NewBank(2), 1); err == nil {
		t.Fatal("undersized bank accepted")
	}
}

func TestExecDeterministicAcrossRuns(t *testing.T) {
	gen := func(rank, iter int, rng *simtime.RNG) Segment {
		return Segment{ComputeCycles: 1e6 * rng.Jitter(0.2), Instructions: 1e6}
	}
	w := &Workload{Name: "jit", Metric: "iters/s", Ranks: 4,
		Phases: []Phase{{Name: "p", Iterations: 20, ProgressPerIter: 1, Gen: gen}}}
	run := func() time.Duration {
		e, _ := NewExec(w, counters.NewBank(4), 42)
		_, total := runToCompletion(t, e, 100*time.Microsecond, 1e9, 1)
		return total
	}
	if run() != run() {
		t.Fatal("same seed produced different executions")
	}
}

func TestIdealDurationMatchesExec(t *testing.T) {
	seg := Segment{ComputeCycles: 3.3e7, MemSeconds: 0.01, Instructions: 1e6}
	w := simpleWorkload(4, 10, seg)
	ideal := w.IdealDuration(3.3e9, 1, 7).Seconds()
	e, _ := NewExec(w, counters.NewBank(4), 7)
	_, total := runToCompletion(t, e, 100*time.Microsecond, 3.3e9, 1)
	if math.Abs(total.Seconds()-ideal)/ideal > 0.02 {
		t.Fatalf("exec total %v vs ideal %v", total.Seconds(), ideal)
	}
}

func TestExecInvalidSegmentFromGenPanics(t *testing.T) {
	w := &Workload{Name: "bad", Metric: "x", Ranks: 1,
		Phases: []Phase{{Name: "p", Iterations: 1, Gen: uniform(Segment{})}}}
	defer func() {
		if recover() == nil {
			t.Fatal("empty segment from generator did not panic")
		}
	}()
	_, _ = NewExec(w, counters.NewBank(1), 1)
}
