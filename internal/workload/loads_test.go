package workload

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/simtime"
)

func TestRankLoadsBalanced(t *testing.T) {
	w := simpleWorkload(4, 5, Segment{ComputeCycles: 1e7, Instructions: 1e7})
	e, _ := NewExec(w, counters.NewBank(4), 1)
	runToCompletion(t, e, 100*time.Microsecond, 1e9, 1)
	loads := e.RankLoads()
	if len(loads) != 4 {
		t.Fatalf("loads = %d", len(loads))
	}
	for r, l := range loads {
		if math.Abs(l.WorkSeconds-0.05) > 0.002 { // 5 × 10 ms
			t.Fatalf("rank %d work = %v, want ~0.05", r, l.WorkSeconds)
		}
		// Balanced: spin bounded by tick granularity (one tick per iter).
		if l.SpinSeconds > 5*0.0002 {
			t.Fatalf("rank %d spin = %v in a balanced run", r, l.SpinSeconds)
		}
	}
	if idx := ImbalanceIndex(loads); idx > 0.02 {
		t.Fatalf("balanced imbalance index = %v", idx)
	}
}

func TestRankLoadsImbalanced(t *testing.T) {
	// Rank 1 works 10× longer than rank 0.
	gen := func(rank, iter int, rng *simtime.RNG) Segment {
		c := 1e7
		if rank == 1 {
			c = 1e8
		}
		return Segment{ComputeCycles: c, Instructions: c}
	}
	w := &Workload{Name: "imb", Metric: "it/s", Ranks: 2,
		Phases: []Phase{{Name: "p", Iterations: 3, ProgressPerIter: 1, Gen: gen}}}
	e, _ := NewExec(w, counters.NewBank(2), 1)
	runToCompletion(t, e, 100*time.Microsecond, 1e9, 1)
	loads := e.RankLoads()
	// Rank 0 spins ~90 ms per 100 ms iteration.
	if loads[0].SpinSeconds < 0.25 {
		t.Fatalf("rank 0 spin = %v, want ~0.27", loads[0].SpinSeconds)
	}
	if loads[1].SpinSeconds > 0.01 {
		t.Fatalf("rank 1 (critical path) spin = %v", loads[1].SpinSeconds)
	}
	idx := ImbalanceIndex(loads)
	if idx < 0.3 || idx > 0.6 {
		t.Fatalf("imbalance index = %v, want ~0.45", idx)
	}
}

func TestRankLoadsSleepAccounted(t *testing.T) {
	w := simpleWorkload(1, 2, Segment{SleepSeconds: 0.1})
	e, _ := NewExec(w, counters.NewBank(1), 1)
	runToCompletion(t, e, time.Millisecond, 1e9, 1)
	l := e.RankLoads()[0]
	if math.Abs(l.SleepSeconds-0.2) > 0.005 {
		t.Fatalf("sleep = %v, want ~0.2", l.SleepSeconds)
	}
	if l.WorkSeconds > 0.001 {
		t.Fatalf("work = %v for a sleep-only segment", l.WorkSeconds)
	}
}

func TestImbalanceIndexEdgeCases(t *testing.T) {
	if ImbalanceIndex(nil) != 0 {
		t.Fatal("empty loads index != 0")
	}
	if ImbalanceIndex([]RankLoad{{}}) != 0 {
		t.Fatal("zero-busy loads index != 0")
	}
	half := []RankLoad{{WorkSeconds: 1, SpinSeconds: 1}}
	if got := ImbalanceIndex(half); got != 0.5 {
		t.Fatalf("index = %v, want 0.5", got)
	}
}

func TestRankLoadBusy(t *testing.T) {
	l := RankLoad{WorkSeconds: 2, SpinSeconds: 1, SleepSeconds: 10}
	if l.Busy() != 3 {
		t.Fatalf("Busy = %v", l.Busy())
	}
}
