// Package workload defines the declarative application model the
// simulation executes.
//
// An application is a sequence of phases (QMCPACK's VMC1/VMC2/DMC,
// OpenMC's inactive/active); a phase is a fixed number of iterations (a
// LAMMPS timestep, a GMRES iteration, a QMC block, an OpenMC batch, a
// STREAM copy/scale/add/triad sweep); and an iteration gives every rank a
// segment of work:
//
//   - ComputeCycles: core cycles; wall time = cycles / effective-frequency,
//     so this part scales with DVFS and duty-cycle modulation.
//   - MemSeconds: memory-stall time at full bandwidth; frequency
//     independent, but inflated when RAPL scales uncore bandwidth down.
//   - SleepSeconds: blocked time (the usleep in the paper's Listing 1);
//     consumes wall time with the core idle.
//
// Ranks synchronize on a barrier at the end of every iteration: a rank
// that finishes early busy-waits, retiring spin instructions at full rate.
// That spin is what decouples MIPS from online performance in the paper's
// Table I.
//
// The compute/memory split per segment is what fixes an application's β
// (compute-boundedness): with T(f) = C/f + M, the Etinski relation
// T(f)/T(fmax) = β(fmax/f − 1) + 1 holds exactly with
// β = (C/fmax) / (C/fmax + M).
package workload

import (
	"fmt"
	"math"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/simtime"
)

// SpinIPC is the instruction rate of the barrier busy-wait loop in
// instructions per cycle.
const SpinIPC = 2.0

// Segment is one rank's work for one iteration.
type Segment struct {
	ComputeCycles float64
	MemSeconds    float64
	SleepSeconds  float64
	Instructions  float64 // instructions retired over the segment's compute part
	L3Misses      float64 // misses incurred over the segment's memory part
	BWShare       float64 // uncore bandwidth demand while in the memory part, [0,1]
	WorkUnits     float64 // application-defined work units (paper's Definition 2)
}

// Validate rejects physically meaningless segments.
func (s Segment) Validate() error {
	switch {
	case s.ComputeCycles < 0 || s.MemSeconds < 0 || s.SleepSeconds < 0:
		return fmt.Errorf("workload: negative segment component %+v", s)
	case s.Instructions < 0 || s.L3Misses < 0 || s.WorkUnits < 0:
		return fmt.Errorf("workload: negative segment accounting %+v", s)
	case s.BWShare < 0 || s.BWShare > 1:
		return fmt.Errorf("workload: BWShare %v outside [0,1]", s.BWShare)
	case s.ComputeCycles == 0 && s.MemSeconds == 0 && s.SleepSeconds == 0:
		return fmt.Errorf("workload: empty segment")
	}
	return nil
}

// DurationAt returns the segment's execution time (excluding barrier
// spin) at an effective core frequency of effHz and a memory-time
// inflation factor memFactor.
func (s Segment) DurationAt(effHz, memFactor float64) float64 {
	return s.SleepSeconds + s.ComputeCycles/effHz + s.MemSeconds*memFactor
}

// GenFunc produces the segment for a rank in an iteration. Generators
// must be deterministic given the supplied RNG.
type GenFunc func(rank, iter int, rng *simtime.RNG) Segment

// Phase is a named stretch of iterations with homogeneous behaviour.
type Phase struct {
	Name            string
	Iterations      int
	ProgressPerIter float64 // metric units contributed by one iteration
	Gen             GenFunc
}

// Workload is a complete application model.
type Workload struct {
	Name   string
	Metric string // online-performance metric name, e.g. "atom timesteps/s"
	Ranks  int
	Phases []Phase
}

// Validate checks the workload is runnable.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: missing name")
	}
	if w.Ranks <= 0 {
		return fmt.Errorf("workload %s: Ranks = %d", w.Name, w.Ranks)
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", w.Name)
	}
	for i, p := range w.Phases {
		if p.Iterations <= 0 {
			return fmt.Errorf("workload %s phase %d (%s): Iterations = %d", w.Name, i, p.Name, p.Iterations)
		}
		if p.Gen == nil {
			return fmt.Errorf("workload %s phase %d (%s): nil generator", w.Name, i, p.Name)
		}
	}
	return nil
}

// TotalIterations returns the iteration count summed over phases.
func (w *Workload) TotalIterations() int {
	n := 0
	for _, p := range w.Phases {
		n += p.Iterations
	}
	return n
}

// IterationEvent reports one completed iteration (the progress events the
// instrumented applications publish).
type IterationEvent struct {
	At        time.Duration
	Phase     string
	PhaseIdx  int
	Iter      int     // iteration index within the phase
	Progress  float64 // metric units (Phase.ProgressPerIter)
	WorkUnits float64 // summed per-rank work units (Definition 2)
	Duration  time.Duration
}

// StepOutput aggregates what happened during one engine tick, in the form
// the power model needs.
type StepOutput struct {
	// Engaged is the number of ranks that spent any part of the tick
	// computing, stalled on memory, or spinning (their cores are active).
	Engaged int
	// Sleeping is the number of ranks blocked in sleep for the whole
	// tick (their cores idle).
	Sleeping int
	// Activity is the mean fraction of the tick engaged ranks spent
	// executing instructions (compute or spin) rather than stalled.
	Activity float64
	// BWUtil is the aggregate uncore bandwidth demand in [0,1].
	BWUtil float64
	// Completions lists iterations that finished during this tick. The
	// slice aliases a buffer owned by the Exec and is overwritten by the
	// next Step call; callers that retain events across ticks must copy
	// the elements (the elements themselves are plain values).
	Completions []IterationEvent
}

type rankState struct {
	seg       Segment
	remCycles float64
	remMem    float64
	remSleep  float64
	finished  bool
	load      RankLoad
}

// RankLoad is one rank's cumulative time accounting, the per-processing-
// element view of progress the paper's future work calls for. The spin
// share exposes load imbalance at runtime: a balanced application spins
// only at tick granularity, an imbalanced one burns real time at the
// barrier.
type RankLoad struct {
	WorkSeconds  float64 // compute + memory-stall time
	SpinSeconds  float64 // barrier busy-wait
	SleepSeconds float64 // blocked
}

// Busy returns work + spin (the time the core was powered and active).
func (l RankLoad) Busy() float64 { return l.WorkSeconds + l.SpinSeconds }

// Exec executes a workload tick by tick. It is single-goroutine, owned by
// the engine.
type Exec struct {
	w      *Workload
	rng    *simtime.RNG
	bank   *counters.Bank
	ranks  []rankState
	offset int // rank r retires instructions on core offset+r

	phaseIdx  int
	iter      int
	iterStart time.Duration
	done      bool

	// at is the instant the executor has consumed up to (the anchor of
	// the event-driven ConsumeTo/Span API). The legacy Step entry point
	// does not maintain it; an executor is driven through exactly one of
	// the two interfaces.
	at time.Duration

	// compBuf backs StepOutput.Completions across Step calls so the hot
	// loop does not allocate one slice per completed iteration.
	compBuf []IterationEvent
}

// NewExec prepares an executor. The counter bank must cover at least
// w.Ranks cores (rank i retires instructions on core i). seed gives the
// deterministic RNG stream for the workload's generators.
func NewExec(w *Workload, bank *counters.Bank, seed uint64) (*Exec, error) {
	return NewExecOffset(w, bank, seed, 0)
}

// NewExecOffset is NewExec with the workload's ranks pinned to cores
// [offset, offset+Ranks): multiple workloads can share one node by
// occupying disjoint core ranges (the URBAN-style composite setup).
func NewExecOffset(w *Workload, bank *counters.Bank, seed uint64, offset int) (*Exec, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if offset < 0 || offset+w.Ranks > bank.Cores() {
		return nil, fmt.Errorf("workload %s: cores [%d,%d) outside bank of %d cores",
			w.Name, offset, offset+w.Ranks, bank.Cores())
	}
	e := &Exec{
		w:      w,
		rng:    simtime.NewRNG(seed),
		bank:   bank,
		ranks:  make([]rankState, w.Ranks),
		offset: offset,
	}
	e.loadIteration(0)
	return e, nil
}

// Workload returns the model being executed.
func (e *Exec) Workload() *Workload { return e.w }

// Done reports whether every phase has completed.
func (e *Exec) Done() bool { return e.done }

// Phase returns the current phase name and index ("" and -1 when done).
func (e *Exec) Phase() (string, int) {
	if e.done {
		return "", -1
	}
	return e.w.Phases[e.phaseIdx].Name, e.phaseIdx
}

// loadIteration (re)fills rank states for the current phase/iter,
// preserving each rank's cumulative load accounting.
// startAt records when the iteration began for duration accounting.
func (e *Exec) loadIteration(startAt time.Duration) {
	p := e.w.Phases[e.phaseIdx]
	for r := range e.ranks {
		seg := p.Gen(r, e.iter, e.rng)
		if err := seg.Validate(); err != nil {
			panic(fmt.Sprintf("workload %s phase %s rank %d iter %d: %v", e.w.Name, p.Name, r, e.iter, err))
		}
		e.ranks[r] = rankState{
			seg:       seg,
			remCycles: seg.ComputeCycles,
			remMem:    seg.MemSeconds,
			remSleep:  seg.SleepSeconds,
			load:      e.ranks[r].load,
		}
	}
	e.iterStart = startAt
}

// RankLoads returns each rank's cumulative load accounting.
func (e *Exec) RankLoads() []RankLoad {
	out := make([]RankLoad, len(e.ranks))
	for r := range e.ranks {
		out[r] = e.ranks[r].load
	}
	return out
}

// ImbalanceIndex summarizes load imbalance over a set of rank loads: the
// mean barrier-spin share of each rank's total accounted time (work +
// spin + sleep). 0 means perfectly balanced; approaching 1 means most
// ranks spend most of their time waiting at barriers.
func ImbalanceIndex(loads []RankLoad) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, l := range loads {
		total := l.WorkSeconds + l.SpinSeconds + l.SleepSeconds
		if total <= 0 {
			continue
		}
		sum += l.SpinSeconds / total
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Step advances the workload by one tick ending at virtual time now,
// of length dt, with the package running at effective frequency effHz
// (P-state × duty, in Hz) and memory time inflated by memFactor (>= 1 at
// full bandwidth grant). It updates hardware counters and returns the
// tick aggregate.
func (e *Exec) Step(now time.Duration, dt time.Duration, effHz, memFactor float64) StepOutput {
	var out StepOutput
	if e.done {
		out.Sleeping = len(e.ranks)
		return out
	}
	if effHz <= 0 || memFactor < 1 {
		panic(fmt.Sprintf("workload: bad operating point effHz=%v memFactor=%v", effHz, memFactor))
	}
	dtSec := dt.Seconds()
	if dtSec <= 0 {
		panic("workload: non-positive tick")
	}

	allFinished := true
	var activitySum float64
	for r := range e.ranks {
		rs := &e.ranks[r]
		budget := dtSec
		var computeT, memT, spinT, sleepT float64
		var instr, misses float64

		if !rs.finished {
			// 1. Blocked sleep: consumes tick budget with the core idle.
			if rs.remSleep > 0 {
				s := rs.remSleep
				if s > budget {
					s = budget
				}
				rs.remSleep -= s
				sleepT = s
				budget -= s
			}
			// 2. Interleaved compute + memory.
			if budget > 0 && (rs.remCycles > 0 || rs.remMem > 0) {
				rc := rs.remCycles / effHz
				rm := rs.remMem * memFactor
				rt := rc + rm
				u := rt
				if u > budget {
					u = budget
				}
				x := 0.0
				if rt > 0 {
					x = u / rt
				}
				cycUsed := rs.remCycles * x
				memUsed := rs.remMem * x
				rs.remCycles -= cycUsed
				rs.remMem -= memUsed
				computeT = rc * x
				memT = rm * x
				budget -= u
				if rs.seg.ComputeCycles > 0 {
					instr += rs.seg.Instructions * (cycUsed / rs.seg.ComputeCycles)
				}
				if rs.seg.MemSeconds > 0 {
					misses += rs.seg.L3Misses * (memUsed / rs.seg.MemSeconds)
				}
			}
			if rs.remSleep <= 1e-15 && rs.remCycles <= 1e-6 && rs.remMem <= 1e-15 {
				rs.finished = true
			}
		}
		// 3. Barrier busy-wait for the rest of the tick.
		if rs.finished && budget > 0 {
			spinT = budget
			instr += spinT * effHz * SpinIPC
		}
		if !rs.finished {
			allFinished = false
		}

		// Counter updates.
		core := e.offset + r
		if instr > 0 {
			e.bank.Add(core, counters.TotIns, uint64(instr))
		}
		if misses > 0 {
			e.bank.Add(core, counters.L3TCM, uint64(misses))
		}
		if cyc := (computeT + spinT) * effHz; cyc > 0 {
			e.bank.Add(core, counters.TotCyc, uint64(cyc))
		}
		if stall := memT * effHz; stall > 0 {
			e.bank.Add(core, counters.StallCyc, uint64(stall))
		}

		// Per-rank load accounting.
		rs.load.WorkSeconds += computeT + memT
		rs.load.SpinSeconds += spinT
		rs.load.SleepSeconds += sleepT

		// Power-model aggregates.
		active := computeT + memT + spinT
		if active > 0 {
			out.Engaged++
			activitySum += (computeT + spinT) / dtSec
			out.BWUtil += (memT / dtSec) * rs.seg.BWShare
		} else {
			out.Sleeping++
		}
	}
	if out.Engaged > 0 {
		out.Activity = activitySum / float64(out.Engaged)
	}
	if out.BWUtil > 1 {
		out.BWUtil = 1
	}

	if allFinished {
		p := e.w.Phases[e.phaseIdx]
		var units float64
		for r := range e.ranks {
			units += e.ranks[r].seg.WorkUnits
		}
		e.compBuf = append(e.compBuf[:0], IterationEvent{
			At:        now,
			Phase:     p.Name,
			PhaseIdx:  e.phaseIdx,
			Iter:      e.iter,
			Progress:  p.ProgressPerIter,
			WorkUnits: units,
			Duration:  now - e.iterStart,
		})
		out.Completions = e.compBuf
		e.advance(now)
	}
	return out
}

// advance moves to the next iteration or phase, or marks completion.
func (e *Exec) advance(now time.Duration) {
	e.iter++
	if e.iter >= e.w.Phases[e.phaseIdx].Iterations {
		e.iter = 0
		e.phaseIdx++
		if e.phaseIdx >= len(e.w.Phases) {
			e.done = true
			return
		}
	}
	e.loadIteration(now)
}

// Span describes the execution mix from the executor's current anchor
// (see At) forward, valid while the operating point stays fixed. It is
// the workload's NextEventAt hook for the macro-stepping engine: the
// aggregates are constant until Boundary, so the engine may integrate
// power and counters over the whole stretch in one closed-form step.
type Span struct {
	// Engaged / Sleeping partition the ranks exactly as StepOutput does
	// for any tick inside the stretch.
	Engaged  int
	Sleeping int
	// ActivitySum is the summed active (compute or spin, vs memory stall)
	// fraction over engaged ranks; Activity = ActivitySum/Engaged.
	ActivitySum float64
	// BWUtil is the aggregate uncore bandwidth demand in [0,1].
	BWUtil float64
	// Boundary is the earliest instant the composition changes: a rank
	// leaving sleep, finishing its compute+memory segment, or the
	// iteration completing. Valid only when HasBoundary; a done executor
	// has none.
	Boundary    time.Duration
	HasBoundary bool
}

// At returns the instant the executor has consumed up to via ConsumeTo.
func (e *Exec) At() time.Duration { return e.at }

// boundaryIn converts a remaining-seconds estimate into an absolute
// boundary instant, rounding up to the nanosecond grid so consuming up to
// the boundary covers at least the full remainder. The 1 ns floor
// guarantees forward progress: sub-nanosecond residue (from the rounding
// itself) resolves on the next stride via the Step finish epsilons.
func (e *Exec) boundaryIn(sec float64) time.Duration {
	d := time.Duration(math.Ceil(sec * 1e9))
	if d < 1 {
		d = 1
	}
	return e.at + d
}

// Span computes the current stretch composition at the given operating
// point. It is pure: repeated calls between ConsumeTo calls return
// identical values, which is what makes the fixed-tick engine mode an
// exact oracle for the macro-stepping mode.
func (e *Exec) Span(effHz, memFactor float64) Span {
	var sp Span
	if e.done {
		sp.Sleeping = len(e.ranks)
		return sp
	}
	if effHz <= 0 || memFactor < 1 {
		panic(fmt.Sprintf("workload: bad operating point effHz=%v memFactor=%v", effHz, memFactor))
	}
	bound := func(sec float64) {
		b := e.boundaryIn(sec)
		if !sp.HasBoundary || b < sp.Boundary {
			sp.Boundary, sp.HasBoundary = b, true
		}
	}
	for r := range e.ranks {
		rs := &e.ranks[r]
		switch {
		case rs.finished:
			// Barrier busy-wait until the slowest rank arrives.
			sp.Engaged++
			sp.ActivitySum++
		case rs.remSleep > 0:
			sp.Sleeping++
			bound(rs.remSleep)
		default:
			sp.Engaged++
			rc := rs.remCycles / effHz
			rm := rs.remMem * memFactor
			rt := rc + rm
			if rt > 0 {
				sp.ActivitySum += rc / rt
				sp.BWUtil += (rm / rt) * rs.seg.BWShare
				bound(rt)
			} else {
				// Residue below the finish epsilons: the next consume
				// marks the rank finished; treat it as spinning.
				sp.ActivitySum++
				bound(0)
			}
		}
	}
	if sp.BWUtil > 1 {
		sp.BWUtil = 1
	}
	return sp
}

// ConsumeTo advances the executor from its anchor to the absolute instant
// to in a single analytic step, returning iterations completed exactly at
// to. The caller must not advance past the Span boundary computed at the
// same operating point — inside that stretch one Step over the whole
// interval is arithmetically identical to any subdivision of it, because
// each rank stays within one part (sleep, compute+memory, or spin) and
// the consumed amounts are linear in elapsed time. Completions alias the
// executor's internal buffer exactly as StepOutput.Completions does.
func (e *Exec) ConsumeTo(to time.Duration, effHz, memFactor float64) []IterationEvent {
	if to < e.at {
		panic(fmt.Sprintf("workload: ConsumeTo moved backwards: at %v, asked for %v", e.at, to))
	}
	if to == e.at {
		return nil
	}
	out := e.Step(to, to-e.at, effHz, memFactor)
	e.at = to
	return out.Completions
}

// SubsetPhase returns a copy of the workload containing only the named
// phase, for characterizing one phase in isolation (the paper
// characterizes QMCPACK's DMC and OpenMC's active phase separately).
// It panics if the phase does not exist.
func (w *Workload) SubsetPhase(name string) *Workload {
	for _, p := range w.Phases {
		if p.Name == name {
			cp := *w
			cp.Name = w.Name + "." + name
			cp.Phases = []Phase{p}
			return &cp
		}
	}
	panic(fmt.Sprintf("workload %s: no phase %q", w.Name, name))
}

// IdealDuration returns the workload's execution time at a fixed
// operating point, assuming perfectly synchronized barriers (the critical
// path: the slowest rank per iteration). It is used by characterization
// (β measurement) and tests.
func (w *Workload) IdealDuration(effHz, memFactor float64, seed uint64) time.Duration {
	rng := simtime.NewRNG(seed)
	var total float64
	for _, p := range w.Phases {
		for it := 0; it < p.Iterations; it++ {
			longest := 0.0
			for r := 0; r < w.Ranks; r++ {
				d := p.Gen(r, it, rng).DurationAt(effHz, memFactor)
				if d > longest {
					longest = d
				}
			}
			total += longest
		}
	}
	return time.Duration(total * float64(time.Second))
}
