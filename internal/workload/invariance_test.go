package workload

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/counters"
)

// TestTickSizeInvariance: the executor's timing must not depend on the
// engine's tick size (within one tick of quantization per iteration).
func TestTickSizeInvariance(t *testing.T) {
	seg := Segment{ComputeCycles: 6.6e7, MemSeconds: 0.02, Instructions: 1e8, BWShare: 0.5}
	w := simpleWorkload(4, 20, seg)
	durFor := func(tick time.Duration) float64 {
		e, err := NewExec(w, counters.NewBank(4), 5)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Duration(0)
		for i := 0; i < 10_000_000 && !e.Done(); i++ {
			now += tick
			e.Step(now, tick, 3.3e9, 1)
		}
		return now.Seconds()
	}
	d50 := durFor(50 * time.Microsecond)
	d100 := durFor(100 * time.Microsecond)
	d400 := durFor(400 * time.Microsecond)
	if math.Abs(d100-d50)/d50 > 0.02 || math.Abs(d400-d50)/d50 > 0.03 {
		t.Fatalf("durations vary with tick size: 50µs=%v 100µs=%v 400µs=%v", d50, d100, d400)
	}
}

// TestCounterConservation: total instructions attributed must equal the
// sum of segment instructions plus spin, independent of operating point.
func TestCounterConservation(t *testing.T) {
	const iters = 10
	seg := Segment{ComputeCycles: 3.3e7, MemSeconds: 0.01, Instructions: 5e7}
	w := simpleWorkload(2, iters, seg)
	for _, hz := range []float64{3.3e9, 1.6e9} {
		bank := counters.NewBank(2)
		e, _ := NewExec(w, bank, 3)
		now := time.Duration(0)
		for !e.Done() {
			now += 100 * time.Microsecond
			e.Step(now, 100*time.Microsecond, hz, 1)
		}
		workInstr := float64(2 * iters * 5e7)
		spin := 0.0
		for _, l := range e.RankLoads() {
			spin += l.SpinSeconds * hz * SpinIPC
		}
		got := float64(bank.Total(counters.TotIns))
		want := workInstr + spin
		if math.Abs(got-want)/want > 0.01 {
			t.Fatalf("at %v Hz: instructions %v, want %v (work %v + spin %v)", hz, got, want, workInstr, spin)
		}
		// Misses fully attributed.
		if bank.Total(counters.L3TCM) != 0 {
			t.Fatalf("misses attributed for a zero-miss workload")
		}
	}
}
