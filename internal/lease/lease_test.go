package lease

import (
	"errors"
	"testing"
	"time"

	"progresscap/internal/journal"
)

const sec = time.Second

func mustHolder(t *testing.T, node string, safe float64) *Holder {
	t.Helper()
	h, err := NewHolder(node, safe, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHolderLifecycle(t *testing.T) {
	var applied []float64
	h, err := NewHolder("n0", 40, func(w float64) error {
		applied = append(applied, w)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.CapAt(0); got != 40 {
		t.Fatalf("pre-lease cap = %v, want safe 40", got)
	}
	l := Lease{Node: "n0", CapW: 120, Epoch: 1, Seq: 1, GrantedAt: 0, TTL: 3 * sec}
	if err := h.Offer(l, 0); err != nil {
		t.Fatal(err)
	}
	if got := h.CapAt(2 * sec); got != 120 {
		t.Fatalf("leased cap = %v, want 120", got)
	}
	// TTL lapse with no renewal: back to the safe cap.
	if got := h.CapAt(3 * sec); got != 40 {
		t.Fatalf("expired cap = %v, want safe 40", got)
	}
	if !h.Expired(3 * sec) {
		t.Fatal("holder should report expiry")
	}
	if len(applied) != 1 || applied[0] != 120 {
		t.Fatalf("applied = %v", applied)
	}
}

func TestHolderFencing(t *testing.T) {
	h := mustHolder(t, "n0", 40)
	if err := h.Offer(Lease{Node: "n0", CapW: 100, Epoch: 2, Seq: 5, TTL: 3 * sec}, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		l    Lease
		want error
	}{
		{"older epoch", Lease{Node: "n0", CapW: 150, Epoch: 1, Seq: 9, TTL: 3 * sec}, ErrFenced},
		{"same epoch same seq (duplicate)", Lease{Node: "n0", CapW: 150, Epoch: 2, Seq: 5, TTL: 3 * sec}, ErrFenced},
		{"same epoch older seq (reordered)", Lease{Node: "n0", CapW: 150, Epoch: 2, Seq: 4, TTL: 3 * sec}, ErrFenced},
		{"wrong node", Lease{Node: "n1", CapW: 150, Epoch: 3, Seq: 6, TTL: 3 * sec}, ErrWrongNode},
	}
	for _, c := range cases {
		if err := h.Offer(c.l, sec); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if got := h.CapAt(sec); got != 100 {
		t.Fatalf("cap after stale offers = %v, want 100", got)
	}
	if c := h.Counters(); c.RejectedFenced != 3 || c.Accepted != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// A genuinely newer grant still lands.
	if err := h.Offer(Lease{Node: "n0", CapW: 90, Epoch: 3, Seq: 6, GrantedAt: sec, TTL: 3 * sec}, sec); err != nil {
		t.Fatal(err)
	}
	if got := h.CapAt(2 * sec); got != 90 {
		t.Fatalf("cap = %v, want 90", got)
	}
}

func TestHolderExpiredOnArrivalAdvancesFence(t *testing.T) {
	h := mustHolder(t, "n0", 40)
	// Delivered through a healed partition long after issue.
	late := Lease{Node: "n0", CapW: 150, Epoch: 4, Seq: 9, GrantedAt: 0, TTL: sec}
	if err := h.Offer(late, 10*sec); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if got := h.CapAt(10 * sec); got != 40 {
		t.Fatalf("cap = %v, want safe 40", got)
	}
	// The fence advanced: an older-stamp replay cannot sneak in after.
	if err := h.Offer(Lease{Node: "n0", CapW: 150, Epoch: 4, Seq: 8, GrantedAt: 10 * sec, TTL: 5 * sec}, 10*sec); !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
}

func TestHolderValidation(t *testing.T) {
	if _, err := NewHolder("", 40, nil); err == nil {
		t.Error("empty node accepted")
	}
	if _, err := NewHolder("n0", 0, nil); err == nil {
		t.Error("zero safe cap accepted (0 W is uncapped in RAPL semantics)")
	}
}

func TestArbiterBudgetInvariant(t *testing.T) {
	a, err := NewArbiter(360, 40, 1, "n0", "n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	// Floor: three idle nodes are charged the safe cap each.
	if got := a.Outstanding(0); got != 120 {
		t.Fatalf("floor outstanding = %v, want 120", got)
	}
	// Greedy over-asking is clipped, never over-committed.
	caps := []float64{200, 200, 200}
	var granted float64
	for i, n := range []string{"n0", "n1", "n2"} {
		l, ok := a.Grant(n, caps[i], 3*sec, 0)
		if !ok {
			t.Fatalf("grant %s refused", n)
		}
		granted += l.CapW
	}
	if out := a.Outstanding(0); out > 360+1e-9 {
		t.Fatalf("outstanding %v exceeds budget 360", out)
	}
	if granted > 360+1e-9 {
		t.Fatalf("granted caps %v exceed budget", granted)
	}
	// Renewal at the standing cap always fits.
	if _, ok := a.Grant("n0", a.Charge("n0", sec), 3*sec, sec); !ok {
		t.Fatal("standing renewal refused")
	}
}

func TestArbiterChargeDecaysAtExpiry(t *testing.T) {
	a, err := NewArbiter(360, 40, 1, "n0", "n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Grant("n0", 280, 3*sec, 0); !ok {
		t.Fatal("grant refused")
	}
	// While n0's 280 W lease lives, the others can only get the slack.
	l, ok := a.Grant("n1", 200, 3*sec, sec)
	if !ok || l.CapW > 360-280-40+1e-9 {
		t.Fatalf("grant = %+v ok=%v, want clip to 40", l, ok)
	}
	// After expiry the charge decays to the safe cap and the watts return.
	if got := a.Charge("n0", 4*sec); got != 40 {
		t.Fatalf("post-expiry charge = %v, want 40", got)
	}
	if l, ok := a.Grant("n1", 240, 3*sec, 4*sec); !ok || l.CapW != 240 {
		t.Fatalf("post-expiry grant = %+v ok=%v, want 240", l, ok)
	}
}

func TestArbiterShrinkingBudgetNeverRevokes(t *testing.T) {
	a, err := NewArbiter(360, 40, 1, "n0", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Grant("n0", 250, 3*sec, 0); !ok {
		t.Fatal("grant refused")
	}
	a.SetBudget(200)
	// Transient gap is allowed (revocation is impossible) but grants
	// must not widen it.
	if _, ok := a.Grant("n1", 150, 3*sec, sec); ok {
		if out := a.Outstanding(sec); out > 250+40+1e-9 {
			t.Fatalf("outstanding %v grew past the pre-shrink charge", out)
		}
	}
	// Once the fat lease expires the gap closes for good.
	if gap := a.InvariantGapW(4 * sec); gap > 0 {
		t.Fatalf("gap %v W after expiry, want <= 0", gap)
	}
}

func TestArbiterAdoptChargesForeignEpochs(t *testing.T) {
	// A new primary must charge the deposed primary's unexpired grants
	// even for nodes it was not configured with.
	a, err := NewArbiter(360, 40, 3, "n0", "n1")
	if err != nil {
		t.Fatal(err)
	}
	old := []Lease{
		{Node: "n0", CapW: 200, Epoch: 1, Seq: 7, GrantedAt: 0, TTL: 5 * sec},
		{Node: "n9", CapW: 60, Epoch: 1, Seq: 8, GrantedAt: 0, TTL: 5 * sec},
		{Node: "n1", CapW: 100, Epoch: 1, Seq: 9, GrantedAt: 0, TTL: sec}, // already expired at adopt
	}
	a.Adopt(old, 2, 9, 2*sec)
	if a.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3 (maxSeen+1)", a.Epoch())
	}
	if got := a.Charge("n0", 2*sec); got != 200 {
		t.Fatalf("adopted charge = %v, want 200", got)
	}
	// Unknown node n9's 60 W and n1's floor both count.
	want := 200.0 + 40 + 60
	if got := a.Outstanding(2 * sec); got != want {
		t.Fatalf("outstanding = %v, want %v", got, want)
	}
	// New grants are stamped past the replayed sequence.
	l, ok := a.Grant("n1", 50, 3*sec, 2*sec)
	if !ok || l.Seq <= 9 || l.Epoch != 3 {
		t.Fatalf("grant = %+v ok=%v, want seq > 9 epoch 3", l, ok)
	}
}

func TestArbiterValidation(t *testing.T) {
	if _, err := NewArbiter(100, 40, 1, "a", "b", "c"); err == nil {
		t.Error("budget below safe-cap floor accepted")
	}
	if _, err := NewArbiter(100, 0, 1, "a"); err == nil {
		t.Error("zero safe cap accepted")
	}
	if _, err := NewArbiter(100, 40, 1); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := NewArbiter(100, 40, 1, "a", "a"); err == nil {
		t.Error("duplicate nodes accepted")
	}
}

func TestLeaseJournalRoundTrip(t *testing.T) {
	l := Lease{Node: "n2", CapW: 77.5, Epoch: 4, Seq: 12, GrantedAt: 9 * sec, TTL: 3 * sec}
	recs := []journal.Record{
		{Kind: journal.KindEpochChange, LeaseEpoch: 1},
		l.Record(9 * sec),
		{Kind: journal.KindHeartbeat, LeaseEpoch: 4, At: 10 * sec},
	}
	grants, maxEpoch, maxSeq := FromRecords(recs)
	if len(grants) != 1 {
		t.Fatalf("grants = %d, want 1", len(grants))
	}
	if grants[0] != l {
		t.Fatalf("round trip %+v != %+v", grants[0], l)
	}
	if maxEpoch != 4 || maxSeq != 12 {
		t.Fatalf("maxEpoch/maxSeq = %d/%d", maxEpoch, maxSeq)
	}
}

func TestHolderNextExpiryAt(t *testing.T) {
	h, err := NewHolder("n0", 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.NextExpiryAt(0); ok {
		t.Fatal("holder with no lease reported a pending expiry")
	}
	l := Lease{Node: "n0", CapW: 120, Epoch: 1, Seq: 1, GrantedAt: time.Second, TTL: 3 * time.Second}
	if err := h.Offer(l, time.Second); err != nil {
		t.Fatal(err)
	}
	if at, ok := h.NextExpiryAt(2 * time.Second); !ok || at != 4*time.Second {
		t.Fatalf("NextExpiryAt = %v,%v, want 4s,true", at, ok)
	}
	// Past the expiry the revert is history, not a pending event.
	if _, ok := h.NextExpiryAt(5 * time.Second); ok {
		t.Fatal("expired lease reported a pending expiry")
	}
}
