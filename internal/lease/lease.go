// Package lease turns per-node power caps into time-bounded,
// epoch-fenced leases, giving the job level of the Argo hierarchy the
// guarantee the paper's always-up job manager silently assumes: the sum
// of enforceable caps never exceeds the job budget, even while the
// manager is dead, failing over, or partitioned from its nodes.
//
// Three cooperating pieces:
//
//   - A Lease is a cap grant with an expiry and a (fencing epoch,
//     sequence) stamp. A node enforces a lease only until its TTL; with
//     no renewal the node's RAPL deadman reverts it to the safe cap, so
//     an unreachable node provably stops consuming budget.
//   - A Holder is the node-side state machine. It accepts grants only
//     with a (epoch, seq) strictly newer than anything it has seen, so a
//     deposed primary's stale grants — however they arrive — can never
//     roll a node back to an allocation the current primary no longer
//     accounts for.
//   - An Arbiter is the manager-side ledger. Every node is charged
//     max(safe cap, caps of its unexpired grants): the charge is an
//     upper bound on what the node could be enforcing right now, no
//     matter which grants were delivered, lost, or delayed. Grants are
//     clipped so the total charge never exceeds the budget, which makes
//     Σ(enforced caps) ≤ budget an invariant rather than a hope.
//
// Split-brain safety needs no consensus library: grants are journaled
// (write-ahead) before they are sent, a failover replays the journal and
// adopts every unexpired grant as a charge, and the journal itself
// rejects appends from lower epochs. A deposed primary can therefore
// only re-deliver grants that are already charged, and the Holder's
// fencing rejects even those once the node has seen the new epoch.
package lease

import (
	"errors"
	"fmt"
	"time"

	"progresscap/internal/journal"
)

// Errors returned by Holder.Offer.
var (
	// ErrFenced rejects a grant whose (epoch, seq) is not strictly newer
	// than the newest the holder has applied.
	ErrFenced = errors.New("lease: grant fenced (stale epoch or sequence)")
	// ErrExpired rejects a grant already past its TTL on arrival
	// (delivered through a healing partition after its useful life).
	ErrExpired = errors.New("lease: grant expired on arrival")
	// ErrWrongNode rejects a grant addressed to a different node.
	ErrWrongNode = errors.New("lease: grant addressed to another node")
)

// Lease is one time-bounded power-cap grant.
type Lease struct {
	Node      string
	CapW      float64
	Epoch     uint64 // issuing manager's fencing epoch
	Seq       uint64 // grant order within and across reigns
	GrantedAt time.Duration
	TTL       time.Duration
}

// ExpiresAt returns the virtual time at which the lease lapses.
func (l Lease) ExpiresAt() time.Duration { return l.GrantedAt + l.TTL }

// ActiveAt reports whether the lease is still enforceable at now.
func (l Lease) ActiveAt(now time.Duration) bool { return now < l.ExpiresAt() }

// newerThan orders grants by (epoch, seq): the fencing comparison.
func (l Lease) newerThan(epoch, seq uint64) bool {
	return l.Epoch > epoch || (l.Epoch == epoch && l.Seq > seq)
}

// Record encodes the lease as a journal record (write-ahead: append this
// before sending the lease).
func (l Lease) Record(at time.Duration) journal.Record {
	return journal.Record{
		Kind:       journal.KindLeaseGrant,
		At:         at,
		Node:       l.Node,
		CapW:       l.CapW,
		TTL:        l.TTL,
		LeaseEpoch: l.Epoch,
		Seq:        l.Seq,
	}
}

// FromRecords folds a replayed journal into the lease ledger state a
// failover needs: every journaled grant (the adopter filters expiry
// itself) plus the highest fencing epoch and sequence stamped anywhere.
func FromRecords(recs []journal.Record) (grants []Lease, maxEpoch, maxSeq uint64) {
	for _, r := range recs {
		switch r.Kind {
		case journal.KindLeaseGrant:
			grants = append(grants, Lease{
				Node:      r.Node,
				CapW:      r.CapW,
				Epoch:     r.LeaseEpoch,
				Seq:       r.Seq,
				GrantedAt: r.At,
				TTL:       r.TTL,
			})
		case journal.KindEpochChange, journal.KindHeartbeat:
		default:
			continue
		}
		if r.LeaseEpoch > maxEpoch {
			maxEpoch = r.LeaseEpoch
		}
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	return grants, maxEpoch, maxSeq
}

// HolderCounters tallies a holder's accept/reject history.
type HolderCounters struct {
	Accepted        uint64
	RejectedFenced  uint64
	RejectedExpired uint64
}

// Holder is the node-side lease state machine. Actuation (the RAPL
// write, which also re-arms the node's cap deadman) happens through the
// apply callback, so the holder decides and the hardware layer enforces.
type Holder struct {
	node     string
	safeCapW float64
	apply    func(capW float64) error

	cur      Lease
	hasLease bool
	maxEpoch uint64
	maxSeq   uint64
	counters HolderCounters
}

// NewHolder returns a holder for the named node. safeCapW is the cap the
// node reverts to when its lease lapses (the cluster quarantine cap,
// enforced in hardware by the RAPL deadman); apply programs an accepted
// lease's cap and may be nil in tests.
func NewHolder(node string, safeCapW float64, apply func(capW float64) error) (*Holder, error) {
	if node == "" {
		return nil, fmt.Errorf("lease: holder needs a node name")
	}
	if safeCapW <= 0 {
		return nil, fmt.Errorf("lease: safe cap %v W must be positive (0 is uncapped in RAPL semantics)", safeCapW)
	}
	return &Holder{node: node, safeCapW: safeCapW, apply: apply}, nil
}

// Offer validates and, when acceptable, applies a grant. Fencing is
// strict: the grant's (epoch, seq) must exceed the newest ever applied,
// so duplicates, reordered deliveries, and a deposed primary's stale
// flushes are all rejected by the same comparison.
func (h *Holder) Offer(l Lease, now time.Duration) error {
	if l.Node != h.node {
		return ErrWrongNode
	}
	if !l.newerThan(h.maxEpoch, h.maxSeq) {
		h.counters.RejectedFenced++
		return ErrFenced
	}
	if !l.ActiveAt(now) {
		// Expired-on-arrival still advances the fence: the sender was
		// legitimate when it issued the grant, and accepting an older
		// (epoch, seq) later would reopen the stale-grant hole.
		h.maxEpoch, h.maxSeq = l.Epoch, l.Seq
		h.counters.RejectedExpired++
		return ErrExpired
	}
	if h.apply != nil {
		if err := h.apply(l.CapW); err != nil {
			return fmt.Errorf("lease: applying %v W on %s: %w", l.CapW, h.node, err)
		}
	}
	h.cur, h.hasLease = l, true
	h.maxEpoch, h.maxSeq = l.Epoch, l.Seq
	h.counters.Accepted++
	return nil
}

// CapAt returns the cap the node is entitled to at now: the live lease's
// cap, or the safe cap once the lease has lapsed.
func (h *Holder) CapAt(now time.Duration) float64 {
	if h.hasLease && h.cur.ActiveAt(now) {
		return h.cur.CapW
	}
	return h.safeCapW
}

// Expired reports whether the holder had a lease and it has lapsed
// without renewal.
func (h *Holder) Expired(now time.Duration) bool {
	return h.hasLease && !h.cur.ActiveAt(now)
}

// Lease returns the newest accepted lease (ok is false before any).
func (h *Holder) Lease() (Lease, bool) { return h.cur, h.hasLease }

// NextExpiryAt returns when the currently active lease lapses: the
// holder's NextEventAt hook for macro-stepping drivers, which must visit
// the expiry instant to apply the safe-cap revert on time. ok is false
// when no lease is held or the held one has already lapsed (the revert
// is past, not pending).
func (h *Holder) NextExpiryAt(now time.Duration) (t time.Duration, ok bool) {
	if !h.hasLease || !h.cur.ActiveAt(now) {
		return 0, false
	}
	return h.cur.ExpiresAt(), true
}

// SafeCapW returns the holder's revert cap.
func (h *Holder) SafeCapW() float64 { return h.safeCapW }

// Counters returns the accept/reject tallies.
func (h *Holder) Counters() HolderCounters { return h.counters }
