package lease

import (
	"fmt"
	"time"
)

// Arbiter is the manager-side budget ledger. It never trusts delivery:
// a node is charged the largest cap of any of its unexpired grants (and
// never less than the safe cap the node reverts to on its own), because
// with lost acks and partitions that maximum is the only sound upper
// bound on what the node might be enforcing. Grants are clipped so the
// total charge stays within the budget, which yields the cluster-wide
// safety invariant by construction:
//
//	Σ(per-node enforced cap) ≤ Σ(per-node charge) ≤ job budget
//
// The floor charge (safe cap per node) is the "quarantine slack" of the
// invariant: budget pre-reserved for nodes whose leases have lapsed and
// which are therefore burning exactly the safe cap.
type Arbiter struct {
	budgetW  float64
	safeCapW float64
	epoch    uint64
	seq      uint64
	order    []string
	grants   map[string][]Lease
}

// NewArbiter builds a ledger over the given nodes. The budget must
// cover at least the safe-cap floor of every node — otherwise even a
// cluster of fully-quarantined nodes would exceed it.
func NewArbiter(budgetW, safeCapW float64, epoch uint64, nodes ...string) (*Arbiter, error) {
	if safeCapW <= 0 {
		return nil, fmt.Errorf("lease: safe cap %v W must be positive", safeCapW)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("lease: arbiter needs nodes")
	}
	if floor := safeCapW * float64(len(nodes)); budgetW < floor {
		return nil, fmt.Errorf("lease: budget %v W below the %v W safe-cap floor of %d nodes",
			budgetW, floor, len(nodes))
	}
	a := &Arbiter{
		budgetW:  budgetW,
		safeCapW: safeCapW,
		epoch:    epoch,
		order:    append([]string(nil), nodes...),
		grants:   make(map[string][]Lease, len(nodes)),
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			return nil, fmt.Errorf("lease: empty or duplicate node %q", n)
		}
		seen[n] = true
		a.grants[n] = nil
	}
	return a, nil
}

// Epoch returns the arbiter's fencing epoch.
func (a *Arbiter) Epoch() uint64 { return a.epoch }

// SafeCapW returns the per-node floor charge.
func (a *Arbiter) SafeCapW() float64 { return a.safeCapW }

// BudgetW returns the current budget.
func (a *Arbiter) BudgetW() float64 { return a.budgetW }

// SetBudget retargets the ledger. A shrinking budget does not revoke
// outstanding grants — revocation cannot be confirmed across a lossy
// network — it only stops new grants from exceeding the new budget; the
// old charges drain as their TTLs lapse.
func (a *Arbiter) SetBudget(budgetW float64) { a.budgetW = budgetW }

// Adopt installs replayed grants as charges and bumps the fencing state
// past everything the previous reigns stamped — the failover path. Only
// grants still unexpired at now matter; the rest can no longer be
// enforced anywhere.
func (a *Arbiter) Adopt(grants []Lease, maxEpoch, maxSeq uint64, now time.Duration) {
	for _, g := range grants {
		if !g.ActiveAt(now) {
			continue
		}
		if _, known := a.grants[g.Node]; !known {
			// A grant for a node this arbiter does not manage still caps
			// budget the node may be burning: charge it under its own name.
			a.order = append(a.order, g.Node)
		}
		a.grants[g.Node] = append(a.grants[g.Node], g)
	}
	if maxEpoch >= a.epoch {
		a.epoch = maxEpoch + 1
	}
	if maxSeq > a.seq {
		a.seq = maxSeq
	}
}

// prune drops expired grants; charges decay exactly when enforceability
// does.
func (a *Arbiter) prune(now time.Duration) {
	for n, gs := range a.grants {
		live := gs[:0]
		for _, g := range gs {
			if g.ActiveAt(now) {
				live = append(live, g)
			}
		}
		a.grants[n] = live
	}
}

// Charge returns the budget charged to one node at now.
func (a *Arbiter) Charge(node string, now time.Duration) float64 {
	c := a.safeCapW
	for _, g := range a.grants[node] {
		if g.ActiveAt(now) && g.CapW > c {
			c = g.CapW
		}
	}
	return c
}

// Outstanding returns the total charge at now: Σ(live lease caps) plus
// the safe-cap slack of every node without a live lease above it.
func (a *Arbiter) Outstanding(now time.Duration) float64 {
	var sum float64
	for _, n := range a.order {
		sum += a.Charge(n, now)
	}
	return sum
}

// HeadroomFor returns the largest cap grantable to node at now without
// the total charge exceeding the budget. It is never below the node's
// current charge, so a renewal at the standing cap always fits.
func (a *Arbiter) HeadroomFor(node string, now time.Duration) float64 {
	others := a.Outstanding(now) - a.Charge(node, now)
	head := a.budgetW - others
	if cur := a.Charge(node, now); head < cur {
		head = cur
	}
	return head
}

// Grant issues (or renews) a lease for node, clipping the requested cap
// to the available headroom. granted is false when the node is unknown
// or the clip leaves nothing above the safe-cap floor worth granting —
// the node then simply decays to the safe cap at its current lease's
// expiry.
func (a *Arbiter) Grant(node string, capW float64, ttl, now time.Duration) (Lease, bool) {
	if _, known := a.grants[node]; !known || ttl <= 0 || capW <= 0 {
		return Lease{}, false
	}
	a.prune(now)
	if head := a.HeadroomFor(node, now); capW > head {
		capW = head
	}
	if capW < a.safeCapW {
		// A lease below the revert cap buys nothing: the deadman's safe
		// cap is already tighter, and charging for it would double-count.
		return Lease{}, false
	}
	a.seq++
	l := Lease{Node: node, CapW: capW, Epoch: a.epoch, Seq: a.seq, GrantedAt: now, TTL: ttl}
	a.grants[node] = append(a.grants[node], l)
	return l, true
}

// InvariantGapW returns how far the total charge stands above the
// budget at now. It is positive only transiently after SetBudget shrank
// the budget below already-outstanding charges; grants never create a
// positive gap, and the gap drains within one TTL.
func (a *Arbiter) InvariantGapW(now time.Duration) float64 {
	return a.Outstanding(now) - a.budgetW
}
