// Package power models package-domain power draw for the simulated node.
//
// The model splits the package into the core component (cores, private
// caches) and the uncore component (LLC, memory controllers, interconnect)
// exactly as the paper does when reasoning about how RAPL budgets a
// package cap:
//
//	P_pkg    = P_core + P_uncore
//	P_core   = Σ_cores [ static + dynMax · duty · act(a) · (f/f_ref)^α ]
//	P_uncore = static + dynMax · bwUtil · bwScale
//
// where a is the core's compute activity (fraction of time executing
// rather than stalled on memory), act(a) = floor + (1-floor)·a models
// that stalled cores still clock and consume most of their dynamic power,
// and α is the *hardware's* frequency exponent — deliberately distinct
// from the α the analytical model fixes to 2 (§VI), which is one source
// of the model error the paper reports.
package power

import (
	"fmt"
	"math"
)

// Model holds the calibrated coefficients for one package.
type Model struct {
	// Core side.
	CoreStaticW   float64 // per-core static/leakage power
	CoreDynMaxW   float64 // per-core dynamic power at RefMHz, full activity
	AlphaHW       float64 // hardware frequency exponent for dynamic power
	RefMHz        float64 // frequency at which CoreDynMaxW is specified
	ActivityFloor float64 // act(0): dynamic power fraction of a fully stalled core

	// Uncore side.
	UncoreStaticW float64
	UncoreDynMaxW float64 // uncore dynamic power at full bandwidth utilization

	// DRAM domain — a separate RAPL domain outside the package, exposed
	// for measurement like MSR_DRAM_ENERGY_STATUS (the paper caps only
	// the package domain but notes DRAM is commonly exposed).
	DRAMStaticW float64
	DRAMDynMaxW float64 // DRAM dynamic power at full bandwidth
}

// DefaultModel returns coefficients calibrated so a 24-core package lands
// near the paper's operating points: ~180 W uncapped for a compute-bound
// code, ~60 W of uncore for a bandwidth-saturating code.
func DefaultModel() Model {
	return Model{
		CoreStaticW:   1.0,
		CoreDynMaxW:   5.8,
		AlphaHW:       2.3,
		RefMHz:        3300,
		ActivityFloor: 0.55,
		UncoreStaticW: 14,
		UncoreDynMaxW: 48,
		DRAMStaticW:   4,
		DRAMDynMaxW:   18,
	}
}

// Validate checks the coefficients are physically sensible.
func (m Model) Validate() error {
	switch {
	case m.CoreStaticW < 0 || m.CoreDynMaxW <= 0:
		return fmt.Errorf("power: core coefficients static=%v dyn=%v invalid", m.CoreStaticW, m.CoreDynMaxW)
	case m.AlphaHW < 1 || m.AlphaHW > 4:
		return fmt.Errorf("power: AlphaHW=%v outside [1,4] (paper: α varies between 1 and 4)", m.AlphaHW)
	case m.RefMHz <= 0:
		return fmt.Errorf("power: RefMHz=%v invalid", m.RefMHz)
	case m.ActivityFloor < 0 || m.ActivityFloor > 1:
		return fmt.Errorf("power: ActivityFloor=%v outside [0,1]", m.ActivityFloor)
	case m.UncoreStaticW < 0 || m.UncoreDynMaxW < 0:
		return fmt.Errorf("power: uncore coefficients invalid")
	case m.DRAMStaticW < 0 || m.DRAMDynMaxW < 0:
		return fmt.Errorf("power: DRAM coefficients invalid")
	}
	return nil
}

// ActivityFactor maps compute activity a∈[0,1] to the dynamic-power
// multiplier act(a).
func (m Model) ActivityFactor(a float64) float64 {
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return m.ActivityFloor + (1-m.ActivityFloor)*a
}

// CorePowerPerCore returns one engaged core's power at frequency fMHz with
// duty cycle duty and compute activity a. Idle (disengaged) cores draw
// only static power; pass engaged=false for those.
func (m Model) CorePowerPerCore(fMHz, duty, a float64, engaged bool) float64 {
	if !engaged {
		return m.CoreStaticW
	}
	rel := fMHz / m.RefMHz
	return m.CoreStaticW + m.CoreDynMaxW*duty*m.ActivityFactor(a)*math.Pow(rel, m.AlphaHW)
}

// CorePower returns total core-component power for n engaged cores (all at
// the same package frequency/duty, with mean activity a) plus idle static
// draw for the remaining idleCores.
func (m Model) CorePower(nEngaged int, idleCores int, fMHz, duty, a float64) float64 {
	p := float64(nEngaged) * m.CorePowerPerCore(fMHz, duty, a, true)
	p += float64(idleCores) * m.CoreStaticW
	return p
}

// UncorePower returns the uncore-component power at the given bandwidth
// utilization (demand, in [0,1]) under bandwidth grant bwScale.
func (m Model) UncorePower(bwUtil, bwScale float64) float64 {
	if bwUtil < 0 {
		bwUtil = 0
	}
	if bwUtil > 1 {
		bwUtil = 1
	}
	eff := bwUtil * bwScale
	return m.UncoreStaticW + m.UncoreDynMaxW*eff
}

// FreqForCoreBudget inverts the core power model: it returns the highest
// frequency (unquantized) at which nEngaged cores with activity a and
// duty 1 fit inside budget watts. The boolean is false when even the
// minimum conceivable dynamic power exceeds the budget (caller must then
// resort to duty-cycle modulation).
func (m Model) FreqForCoreBudget(budget float64, nEngaged, idleCores int, a, minMHz, maxMHz float64) (float64, bool) {
	if nEngaged <= 0 {
		return maxMHz, true
	}
	static := float64(nEngaged+idleCores) * m.CoreStaticW
	dynBudget := budget - static
	denom := float64(nEngaged) * m.CoreDynMaxW * m.ActivityFactor(a)
	if dynBudget <= 0 || denom <= 0 {
		return minMHz, false
	}
	rel := math.Pow(dynBudget/denom, 1/m.AlphaHW)
	f := rel * m.RefMHz
	if f < minMHz {
		return minMHz, false
	}
	if f > maxMHz {
		f = maxMHz
	}
	return f, true
}

// NodeState is the instantaneous operating point the meter integrates.
type NodeState struct {
	EngagedCores int
	IdleCores    int
	FreqMHz      float64
	Duty         float64
	Activity     float64 // mean compute activity of engaged cores
	BWUtil       float64 // uncore bandwidth demand
	BWScale      float64 // uncore bandwidth grant
}

// DRAMPower returns the DRAM-domain power at the given bandwidth
// utilization under grant bwScale. DRAM is outside the package domain.
func (m Model) DRAMPower(bwUtil, bwScale float64) float64 {
	if bwUtil < 0 {
		bwUtil = 0
	}
	if bwUtil > 1 {
		bwUtil = 1
	}
	return m.DRAMStaticW + m.DRAMDynMaxW*bwUtil*bwScale
}

// Breakdown is a power reading split by component. CoreW and UncoreW
// make up the package domain; DRAMW is the separate DRAM domain.
type Breakdown struct {
	CoreW   float64
	UncoreW float64
	DRAMW   float64
}

// PkgW returns total package power (DRAM excluded, as on hardware).
func (b Breakdown) PkgW() float64 { return b.CoreW + b.UncoreW }

// Power evaluates the model at a node state.
func (m Model) Power(s NodeState) Breakdown {
	return Breakdown{
		CoreW:   m.CorePower(s.EngagedCores, s.IdleCores, s.FreqMHz, s.Duty, s.Activity),
		UncoreW: m.UncorePower(s.BWUtil, s.BWScale),
		DRAMW:   m.DRAMPower(s.BWUtil, s.BWScale),
	}
}

// Meter integrates power over time into energy and keeps an exponentially
// weighted moving average of package power, which is what the RAPL
// controller regulates against.
type Meter struct {
	model   Model
	tauSec  float64 // EWMA time constant
	avgPkgW float64
	havePkg bool
	energyJ float64
	coreJ   float64
	uncoreJ float64
	dramJ   float64
	lastBrk Breakdown
}

// NewMeter returns a meter using the model with the given averaging time
// constant (the RAPL window).
func NewMeter(model Model, tauSec float64) *Meter {
	if tauSec <= 0 {
		panic("power: meter needs positive time constant")
	}
	return &Meter{model: model, tauSec: tauSec}
}

// Observe integrates dtSec of operation at state s.
func (mt *Meter) Observe(s NodeState, dtSec float64) Breakdown {
	if dtSec < 0 {
		panic("power: negative observation interval")
	}
	b := mt.model.Power(s)
	mt.lastBrk = b
	mt.energyJ += b.PkgW() * dtSec
	mt.coreJ += b.CoreW * dtSec
	mt.uncoreJ += b.UncoreW * dtSec
	mt.dramJ += b.DRAMW * dtSec
	if !mt.havePkg {
		mt.avgPkgW = b.PkgW()
		mt.havePkg = true
	} else {
		// EWMA with per-step decay exp(-dt/tau).
		decay := math.Exp(-dtSec / mt.tauSec)
		mt.avgPkgW = mt.avgPkgW*decay + b.PkgW()*(1-decay)
	}
	return b
}

// AvgPkgW returns the running-average package power.
func (mt *Meter) AvgPkgW() float64 { return mt.avgPkgW }

// Last returns the most recent instantaneous breakdown.
func (mt *Meter) Last() Breakdown { return mt.lastBrk }

// EnergyJ returns cumulative package energy in joules.
func (mt *Meter) EnergyJ() float64 { return mt.energyJ }

// ComponentEnergyJ returns cumulative core and uncore energy.
func (mt *Meter) ComponentEnergyJ() (coreJ, uncoreJ float64) {
	return mt.coreJ, mt.uncoreJ
}

// DRAMEnergyJ returns cumulative DRAM-domain energy.
func (mt *Meter) DRAMEnergyJ() float64 { return mt.dramJ }
