// Checkpoint accessors for the Meter. The model and time constant are
// construction-time configuration; everything the meter accumulates over
// a run — energy integrals, the EWMA average, the last instantaneous
// breakdown — is captured here bit-exactly so a forked run's power traces
// continue from the same floats the donor held.

package power

// MeterState is the mutable state of a Meter.
type MeterState struct {
	AvgPkgW float64
	HavePkg bool
	EnergyJ float64
	CoreJ   float64
	UncoreJ float64
	DRAMJ   float64
	LastBrk Breakdown
}

// Snapshot captures the meter's accumulated state.
func (mt *Meter) Snapshot() MeterState {
	return MeterState{
		AvgPkgW: mt.avgPkgW,
		HavePkg: mt.havePkg,
		EnergyJ: mt.energyJ,
		CoreJ:   mt.coreJ,
		UncoreJ: mt.uncoreJ,
		DRAMJ:   mt.dramJ,
		LastBrk: mt.lastBrk,
	}
}

// Restore pours a captured state back.
func (mt *Meter) Restore(s MeterState) {
	mt.avgPkgW = s.AvgPkgW
	mt.havePkg = s.HavePkg
	mt.energyJ = s.EnergyJ
	mt.coreJ = s.CoreJ
	mt.uncoreJ = s.UncoreJ
	mt.dramJ = s.DRAMJ
	mt.lastBrk = s.LastBrk
}
