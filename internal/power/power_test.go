package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := DefaultModel()
	bad.AlphaHW = 5
	if bad.Validate() == nil {
		t.Error("alpha=5 validated")
	}
	bad = DefaultModel()
	bad.CoreDynMaxW = 0
	if bad.Validate() == nil {
		t.Error("zero dynamic power validated")
	}
	bad = DefaultModel()
	bad.ActivityFloor = 1.5
	if bad.Validate() == nil {
		t.Error("activity floor >1 validated")
	}
}

func TestActivityFactorRange(t *testing.T) {
	m := DefaultModel()
	if got := m.ActivityFactor(0); got != m.ActivityFloor {
		t.Fatalf("act(0) = %v", got)
	}
	if got := m.ActivityFactor(1); got != 1 {
		t.Fatalf("act(1) = %v", got)
	}
	if got := m.ActivityFactor(-5); got != m.ActivityFloor {
		t.Fatalf("act(-5) = %v", got)
	}
	if got := m.ActivityFactor(5); got != 1 {
		t.Fatalf("act(5) = %v", got)
	}
}

func TestCorePowerMonotoneInFrequency(t *testing.T) {
	m := DefaultModel()
	prev := 0.0
	for f := 1000.0; f <= 3300; f += 100 {
		p := m.CorePowerPerCore(f, 1, 1, true)
		if p <= prev {
			t.Fatalf("core power not monotone at %v MHz: %v <= %v", f, p, prev)
		}
		prev = p
	}
}

func TestIdleCoreDrawsStaticOnly(t *testing.T) {
	m := DefaultModel()
	if got := m.CorePowerPerCore(3300, 1, 1, false); got != m.CoreStaticW {
		t.Fatalf("idle core power = %v, want %v", got, m.CoreStaticW)
	}
}

func TestCorePowerAggregation(t *testing.T) {
	m := DefaultModel()
	per := m.CorePowerPerCore(2600, 1, 0.8, true)
	total := m.CorePower(10, 14, 2600, 1, 0.8)
	want := 10*per + 14*m.CoreStaticW
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("CorePower = %v, want %v", total, want)
	}
}

func TestUncorePowerClampsUtil(t *testing.T) {
	m := DefaultModel()
	if got := m.UncorePower(2, 1); got != m.UncoreStaticW+m.UncoreDynMaxW {
		t.Fatalf("clamped high = %v", got)
	}
	if got := m.UncorePower(-1, 1); got != m.UncoreStaticW {
		t.Fatalf("clamped low = %v", got)
	}
	mid := m.UncorePower(0.5, 0.5)
	want := m.UncoreStaticW + m.UncoreDynMaxW*0.25
	if math.Abs(mid-want) > 1e-9 {
		t.Fatalf("mid = %v, want %v", mid, want)
	}
}

func TestCalibrationOperatingPoints(t *testing.T) {
	// Sanity-check the DefaultModel lands near the paper's regime:
	// a compute-bound 24-core code uncapped should draw 150-220 W package.
	m := DefaultModel()
	b := m.Power(NodeState{EngagedCores: 24, FreqMHz: 3300, Duty: 1, Activity: 1, BWUtil: 0.05, BWScale: 1})
	if b.PkgW() < 150 || b.PkgW() > 220 {
		t.Fatalf("compute-bound uncapped package power = %v W, want 150-220", b.PkgW())
	}
	// A bandwidth-saturating code should push 40+ W into the uncore.
	b2 := m.Power(NodeState{EngagedCores: 24, FreqMHz: 3300, Duty: 1, Activity: 0.37, BWUtil: 1, BWScale: 1})
	if b2.UncoreW < 40 {
		t.Fatalf("memory-bound uncore power = %v W, want >= 40", b2.UncoreW)
	}
}

func TestFreqForCoreBudgetInvertsModel(t *testing.T) {
	m := DefaultModel()
	for _, budget := range []float64{40, 80, 120, 160} {
		f, ok := m.FreqForCoreBudget(budget, 24, 0, 1, 1000, 3300)
		if !ok && budget >= 40 {
			// Even 40 W may be below the floor; only check consistency below.
			continue
		}
		got := m.CorePower(24, 0, f, 1, 1)
		if got > budget+1e-6 {
			t.Fatalf("budget %v W: freq %v gives %v W (over budget)", budget, f, got)
		}
	}
}

func TestFreqForCoreBudgetSaturatesHigh(t *testing.T) {
	m := DefaultModel()
	f, ok := m.FreqForCoreBudget(10000, 24, 0, 1, 1000, 3300)
	if !ok || f != 3300 {
		t.Fatalf("huge budget: f=%v ok=%v", f, ok)
	}
}

func TestFreqForCoreBudgetBelowFloor(t *testing.T) {
	m := DefaultModel()
	f, ok := m.FreqForCoreBudget(10, 24, 0, 1, 1000, 3300)
	if ok {
		t.Fatalf("10 W for 24 cores fit: f=%v", f)
	}
	if f != 1000 {
		t.Fatalf("below-floor frequency = %v, want min", f)
	}
}

func TestFreqForCoreBudgetNoEngagedCores(t *testing.T) {
	m := DefaultModel()
	f, ok := m.FreqForCoreBudget(50, 0, 24, 1, 1000, 3300)
	if !ok || f != 3300 {
		t.Fatalf("idle package: f=%v ok=%v", f, ok)
	}
}

// Property: FreqForCoreBudget never returns an operating point above
// budget when ok is true.
func TestFreqForCoreBudgetProperty(t *testing.T) {
	m := DefaultModel()
	prop := func(budgetRaw uint8, actRaw uint8) bool {
		budget := 20 + float64(budgetRaw) // 20..275 W
		a := float64(actRaw) / 255
		f, ok := m.FreqForCoreBudget(budget, 24, 0, a, 1000, 3300)
		if !ok {
			return f == 1000
		}
		return m.CorePower(24, 0, f, 1, a) <= budget+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterEnergyIntegration(t *testing.T) {
	m := DefaultModel()
	mt := NewMeter(m, 0.01)
	s := NodeState{EngagedCores: 24, FreqMHz: 3300, Duty: 1, Activity: 1, BWUtil: 0, BWScale: 1}
	want := m.Power(s).PkgW() * 2.0
	for i := 0; i < 2000; i++ {
		mt.Observe(s, 0.001)
	}
	if math.Abs(mt.EnergyJ()-want) > 1e-6 {
		t.Fatalf("EnergyJ = %v, want %v", mt.EnergyJ(), want)
	}
	coreJ, uncoreJ := mt.ComponentEnergyJ()
	if math.Abs(coreJ+uncoreJ-mt.EnergyJ()) > 1e-6 {
		t.Fatalf("component energies %v+%v != total %v", coreJ, uncoreJ, mt.EnergyJ())
	}
}

func TestMeterEWMAConverges(t *testing.T) {
	m := DefaultModel()
	mt := NewMeter(m, 0.005)
	low := NodeState{EngagedCores: 24, FreqMHz: 1000, Duty: 1, Activity: 1, BWUtil: 0, BWScale: 1}
	high := NodeState{EngagedCores: 24, FreqMHz: 3300, Duty: 1, Activity: 1, BWUtil: 0, BWScale: 1}
	mt.Observe(low, 0.001)
	for i := 0; i < 100; i++ {
		mt.Observe(high, 0.001)
	}
	want := m.Power(high).PkgW()
	if math.Abs(mt.AvgPkgW()-want) > 0.5 {
		t.Fatalf("EWMA = %v, want ~%v after 20 time constants", mt.AvgPkgW(), want)
	}
}

func TestMeterFirstObservationSeedsAverage(t *testing.T) {
	m := DefaultModel()
	mt := NewMeter(m, 1)
	s := NodeState{EngagedCores: 1, FreqMHz: 2000, Duty: 1, Activity: 1, BWUtil: 0, BWScale: 1}
	b := mt.Observe(s, 0.001)
	if mt.AvgPkgW() != b.PkgW() {
		t.Fatalf("first observation: avg=%v, want %v", mt.AvgPkgW(), b.PkgW())
	}
}

func TestMeterPanicsOnBadInput(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewMeter(tau=0) did not panic")
			}
		}()
		NewMeter(DefaultModel(), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe(dt<0) did not panic")
			}
		}()
		NewMeter(DefaultModel(), 1).Observe(NodeState{}, -1)
	}()
}
