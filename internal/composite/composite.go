// Package composite implements the paper's proposed extension for
// Category 3 applications (§VI-3, §VIII): when a multiphysics workload
// like URBAN has no single reliable online metric, monitor each
// component separately and model progress as a *weighted combination of
// the progress of individual components*, each normalized by its own
// uncapped baseline.
//
// The combined metric is dimensionless:
//
//	composite(t) = Σ_i w_i · rate_i(t) / baseline_i,   Σ_i w_i = 1
//
// so 1.0 means "every component progressing at its uncapped rate" and
// the value degrades toward 0 under throttling — directly comparable
// across components running at timescales orders of magnitude apart.
package composite

import (
	"fmt"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
)

// Component describes one monitored part of the composite application.
type Component struct {
	// Name must match the component workload's name (its progress
	// stream identity).
	Name string
	// Weight is the component's relative importance; weights are
	// normalized to sum to 1.
	Weight float64
	// Baseline is the component's uncapped online performance in its
	// own metric units/s.
	Baseline float64
}

// Metric combines component progress into one value.
type Metric struct {
	comps []Component
}

// NewMetric validates and normalizes the component set.
func NewMetric(comps ...Component) (*Metric, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("composite: no components")
	}
	var wsum float64
	seen := map[string]bool{}
	for _, c := range comps {
		if c.Name == "" {
			return nil, fmt.Errorf("composite: unnamed component")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("composite: duplicate component %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 {
			return nil, fmt.Errorf("composite: component %q weight %v must be positive", c.Name, c.Weight)
		}
		if c.Baseline <= 0 {
			return nil, fmt.Errorf("composite: component %q baseline %v must be positive", c.Name, c.Baseline)
		}
		wsum += c.Weight
	}
	norm := make([]Component, len(comps))
	copy(norm, comps)
	for i := range norm {
		norm[i].Weight /= wsum
	}
	return &Metric{comps: norm}, nil
}

// Components returns the normalized component set.
func (m *Metric) Components() []Component {
	return append([]Component(nil), m.comps...)
}

// Combine evaluates the composite metric for one set of per-component
// rates. Missing components contribute zero (they made no progress in
// the window).
func (m *Metric) Combine(rates map[string]float64) float64 {
	var v float64
	for _, c := range m.comps {
		v += c.Weight * rates[c.Name] / c.Baseline
	}
	return v
}

// Series computes the composite progress over a multi-workload engine
// result: per aggregation window, each component's rate is smoothed
// (five-window moving average, absorbing timescale aliasing) and
// combined. Job streams are matched to components by workload name; an
// unmatched component is an error.
func (m *Metric) Series(res *engine.Result) (*trace.Series, error) {
	byName := map[string]*engine.JobResult{}
	for _, j := range res.Jobs {
		byName[j.Workload] = j
	}
	for _, c := range m.comps {
		if byName[c.Name] == nil {
			return nil, fmt.Errorf("composite: result has no job %q", c.Name)
		}
	}
	// All jobs flush on the same window boundaries, so sample indexes
	// align; a job that finished early simply reports zero-rate windows.
	n := 0
	for _, c := range m.comps {
		if l := len(byName[c.Name].Samples); l > n {
			n = l
		}
	}
	smoothed := map[string][]float64{}
	for _, c := range m.comps {
		smoothed[c.Name] = stats.MovingAvg(byName[c.Name].Rates(), 5)
	}
	out := trace.NewSeries("progress.composite", "normalized")
	for i := 0; i < n; i++ {
		rates := map[string]float64{}
		var at time.Duration
		for _, c := range m.comps {
			j := byName[c.Name]
			if i < len(j.Samples) {
				rates[c.Name] = smoothed[c.Name][i]
				at = j.Samples[i].At
			}
		}
		out.Add(at, m.Combine(rates))
	}
	return out, nil
}

// BaselinesFrom extracts per-component uncapped baselines from an
// uncapped calibration run: the mean of each job's steady windows
// (skipping the first window and the final partial one).
func BaselinesFrom(res *engine.Result) map[string]float64 {
	out := map[string]float64{}
	for _, j := range res.Jobs {
		rates := j.Rates()
		if len(rates) > 3 {
			rates = rates[1 : len(rates)-1]
		}
		// Drop empty-window zeros: they are reporting artifacts.
		var nz []float64
		for _, r := range rates {
			if r > 0 {
				nz = append(nz, r)
			}
		}
		out[j.Workload] = stats.Mean(nz)
	}
	return out
}
