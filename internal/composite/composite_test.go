package composite

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/policy"
	"progresscap/internal/stats"
)

func TestNewMetricValidation(t *testing.T) {
	if _, err := NewMetric(); err == nil {
		t.Fatal("empty metric accepted")
	}
	bad := []Component{
		{Name: "", Weight: 1, Baseline: 1},
		{Name: "a", Weight: 0, Baseline: 1},
		{Name: "a", Weight: 1, Baseline: 0},
	}
	for i, c := range bad {
		if _, err := NewMetric(c); err == nil {
			t.Errorf("bad component %d accepted", i)
		}
	}
	if _, err := NewMetric(
		Component{Name: "a", Weight: 1, Baseline: 1},
		Component{Name: "a", Weight: 1, Baseline: 1},
	); err == nil {
		t.Fatal("duplicate component accepted")
	}
}

func TestWeightsNormalized(t *testing.T) {
	m, err := NewMetric(
		Component{Name: "a", Weight: 3, Baseline: 10},
		Component{Name: "b", Weight: 1, Baseline: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	comps := m.Components()
	if comps[0].Weight != 0.75 || comps[1].Weight != 0.25 {
		t.Fatalf("normalized weights = %v, %v", comps[0].Weight, comps[1].Weight)
	}
}

func TestCombine(t *testing.T) {
	m, _ := NewMetric(
		Component{Name: "a", Weight: 1, Baseline: 10},
		Component{Name: "b", Weight: 1, Baseline: 2},
	)
	// Both at baseline → 1.0.
	if got := m.Combine(map[string]float64{"a": 10, "b": 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("at-baseline composite = %v", got)
	}
	// One at half speed → 0.75.
	if got := m.Combine(map[string]float64{"a": 5, "b": 2}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("half-speed composite = %v", got)
	}
	// Missing component contributes zero.
	if got := m.Combine(map[string]float64{"a": 10}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("missing-component composite = %v", got)
	}
}

// runURBAN executes the coupled Nek5000+EnergyPlus node.
func runURBAN(t *testing.T, scheme policy.Scheme, seconds float64) *engine.Result {
	t.Helper()
	nek, eplus := apps.URBANComponents(seconds)
	e, err := engine.NewMulti(engine.DefaultConfig(), nek, eplus)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != nil {
		if err := e.SetScheme(scheme); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Run(time.Duration(seconds*6) * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselinesFromURBAN(t *testing.T) {
	res := runURBAN(t, nil, 20)
	base := BaselinesFrom(res)
	if base["nek5000"] < 4 || base["nek5000"] > 12 {
		t.Fatalf("nek5000 baseline = %v, want ~8", base["nek5000"])
	}
	if base["energyplus"] < 1 || base["energyplus"] > 2.6 {
		t.Fatalf("energyplus baseline = %v, want ~1.7", base["energyplus"])
	}
}

func TestCompositeNearOneUncapped(t *testing.T) {
	calib := runURBAN(t, nil, 20)
	base := BaselinesFrom(calib)
	m, err := NewMetric(
		Component{Name: "nek5000", Weight: 2, Baseline: base["nek5000"]},
		Component{Name: "energyplus", Weight: 1, Baseline: base["energyplus"]},
	)
	if err != nil {
		t.Fatal(err)
	}
	series, err := m.Series(calib)
	if err != nil {
		t.Fatal(err)
	}
	// Interior windows should hover near 1.0.
	vals := series.Values()
	if len(vals) < 8 {
		t.Fatalf("only %d composite windows", len(vals))
	}
	mid := stats.Mean(vals[2 : len(vals)-2])
	if math.Abs(mid-1) > 0.15 {
		t.Fatalf("uncapped composite = %v, want ~1.0", mid)
	}
}

func TestCompositeFollowsCap(t *testing.T) {
	calib := runURBAN(t, nil, 20)
	base := BaselinesFrom(calib)
	m, err := NewMetric(
		Component{Name: "nek5000", Weight: 2, Baseline: base["nek5000"]},
		Component{Name: "energyplus", Weight: 1, Baseline: base["energyplus"]},
	)
	if err != nil {
		t.Fatal(err)
	}

	scheme := policy.Step{HighW: policy.Uncapped, LowW: 85, HighFor: 10 * time.Second, LowFor: 10 * time.Second}
	res := runURBAN(t, scheme, 40)
	series, err := m.Series(res)
	if err != nil {
		t.Fatal(err)
	}
	// Split composite values by cap state and compare.
	var capped, uncapped []float64
	for _, p := range series.Points() {
		capW, ok := res.CapTrace.ValueAt(p.T - time.Millisecond)
		if !ok {
			continue
		}
		prev, _ := res.CapTrace.ValueAt(p.T - 2100*time.Millisecond)
		if prev != capW {
			continue // transition windows (smoothing spreads them)
		}
		if capW == policy.Uncapped {
			uncapped = append(uncapped, p.V)
		} else {
			capped = append(capped, p.V)
		}
	}
	if len(capped) < 4 || len(uncapped) < 4 {
		t.Fatalf("not enough windows: %d capped, %d uncapped", len(capped), len(uncapped))
	}
	hi, lo := stats.Mean(uncapped), stats.Mean(capped)
	if lo >= hi*0.92 {
		t.Fatalf("composite did not follow the cap: uncapped %v, capped %v", hi, lo)
	}
}

func TestSeriesUnknownComponent(t *testing.T) {
	res := runURBAN(t, nil, 8)
	m, _ := NewMetric(Component{Name: "nosuch", Weight: 1, Baseline: 1})
	if _, err := m.Series(res); err == nil {
		t.Fatal("unknown component accepted")
	}
}
