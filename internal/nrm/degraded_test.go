package nrm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/msr"
)

// newFaultyEngine assembles a LAMMPS engine with the given fault plan
// installed before any policy layer touches the device.
func newFaultyEngine(t *testing.T, steps int, plan fault.Plan) *engine.Engine {
	t.Helper()
	e := newEngine(t, steps, 1)
	e.SetFaults(fault.NewInjector(plan))
	return e
}

func TestDegradedModeRidesOutBlackout(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// The signal goes totally silent for 10 s mid-run while a 120 W
	// budget is being enforced.
	e := newFaultyEngine(t, 2000, fault.Plan{PubSub: fault.PubSubPlan{
		Blackouts: []fault.Window{{From: 8 * time.Second, To: 18 * time.Second}},
	}})
	n, err := New(Config{Beta: 1.0}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(120)
	res, err := n.Run(40 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The state machine must engage and disengage, visibly.
	var sawDegraded, sawNormalAgain bool
	for _, tr := range n.ModeTransitions() {
		if tr.To == ModeDegraded {
			sawDegraded = true
		}
		if sawDegraded && tr.To == ModeNormal {
			sawNormalAgain = true
		}
	}
	if !sawDegraded {
		t.Fatalf("never entered degraded mode; transitions: %+v", n.ModeTransitions())
	}
	if !sawNormalAgain {
		t.Fatalf("never re-trusted the signal; transitions: %+v", n.ModeTransitions())
	}
	// Every degraded/probation epoch is visible in the decision log.
	var degEpochs int
	for _, d := range n.Decisions() {
		if d.Mode != ModeNormal {
			degEpochs++
			if d.Knob != KnobRAPL {
				t.Fatalf("degraded decision used knob %v, want RAPL: %+v", d.Knob, d)
			}
			if d.Setting <= 0 || d.Setting > 120 {
				t.Fatalf("degraded cap %v W outside (0, budget]: %+v", d.Setting, d)
			}
		}
	}
	if degEpochs < 3 {
		t.Fatalf("only %d degraded-mode decisions during a 10 s blackout", degEpochs)
	}

	// No cap overshoot while blind: window-average package power must
	// stay at or under the budget throughout the blackout (small
	// tolerance for the RAPL controller's settling transient).
	for i := 0; i < res.PowerTrace.Len(); i++ {
		p := res.PowerTrace.At(i)
		if p.T > 10*time.Second && p.T <= 18*time.Second && p.V > 120*1.05 {
			t.Fatalf("power %v W at %v exceeds the 120 W budget during blackout", p.V, p.T)
		}
	}
}

func TestBackoffDoublesOnRelapse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// Two blackouts separated by a single good window: the signal comes
	// back just long enough to start probation, then dies again.
	e := newFaultyEngine(t, 4000, fault.Plan{PubSub: fault.PubSubPlan{
		Blackouts: []fault.Window{
			{From: 8 * time.Second, To: 15 * time.Second},
			{From: 16 * time.Second, To: 23 * time.Second},
		},
	}})
	n, err := New(Config{Beta: 1.0}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(120)
	if _, err := n.Run(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	var sawRelapse bool
	for _, tr := range n.ModeTransitions() {
		if tr.From == ModeProbation && tr.To == ModeDegraded {
			sawRelapse = true
			if !strings.Contains(tr.Reason, "backoff now 4") {
				t.Fatalf("relapse did not double backoff: %q", tr.Reason)
			}
		}
	}
	if !sawRelapse {
		t.Fatalf("no probation relapse recorded; transitions: %+v", n.ModeTransitions())
	}
}

func TestDegradedModeSurvivesEnergyWrap(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// Seed the energy counter just below the 32-bit wrap: the baseline
	// power fit must still be sane (a cumulative-from-zero read would
	// compute garbage and poison every later budget decision).
	e := newFaultyEngine(t, 600, fault.Plan{MSR: fault.MSRPlan{EnergyWrapRaw: 0xFFFF_0000}})
	n, err := New(Config{Beta: 1.0}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(120)
	if _, err := n.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Model(); !ok {
		t.Fatal("model never fitted")
	}
	// An uncapped 24-core node draws on the order of 200 W; the fit must
	// land in a physical range, not in the petawatts a mis-handled wrap
	// produces.
	if n.basePowW < 50 || n.basePowW > 500 {
		t.Fatalf("baseline power fit = %v W with wrapped counter", n.basePowW)
	}
}

func TestTransientMSRFaultsAreAbsorbed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// Transient EIO and stale serves on MSR accesses: the retry-once
	// semantics must keep the run alive end to end. (The write rate is
	// kept low enough that a double-fault — which is SUPPOSED to surface
	// an error, see TestStepErrorPaths — does not occur in this run.)
	e := newFaultyEngine(t, 400, fault.Plan{Seed: 13, MSR: fault.MSRPlan{
		ReadEIORate: 0.02, WriteEIORate: 0.01, StaleReadRate: 0.1,
	}})
	n, err := New(Config{Beta: 1.0}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(120)
	res, err := n.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("workload did not complete under transient MSR faults")
	}
}

// TestStepErrorPaths is the table-driven contract for how Step must fail:
// persistent actuation failure and fitting without a baseline both return
// errors instead of silently running on.
func TestStepErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		plan    fault.Plan
		wantSub string
		wantIO  bool
	}{
		{
			name:   "actuation failure surfaces",
			plan:   fault.Plan{MSR: fault.MSRPlan{WriteEIORate: 1.0}},
			wantIO: true,
		},
		{
			name:    "fit before baseline progress",
			plan:    fault.Plan{PubSub: fault.PubSubPlan{DropRate: 1.0}},
			wantSub: "no baseline progress",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newFaultyEngine(t, 600, tc.plan)
			n, err := New(Config{Beta: 1.0}, e)
			if err != nil {
				t.Fatal(err)
			}
			n.SetBudget(120)
			var stepErr error
			for i := 0; i < 8; i++ {
				if _, stepErr = n.Step(); stepErr != nil {
					break
				}
			}
			if stepErr == nil {
				t.Fatal("Step never returned an error")
			}
			if tc.wantIO && !errors.Is(stepErr, msr.ErrIO) {
				t.Fatalf("err = %v, want msr.ErrIO", stepErr)
			}
			if tc.wantSub != "" && !strings.Contains(stepErr.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", stepErr, tc.wantSub)
			}
		})
	}
}
