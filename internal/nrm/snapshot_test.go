package nrm

import (
	"reflect"
	"testing"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
)

// stepN advances an NRM n epochs (or until the workload completes).
func stepN(t *testing.T, n *NRM, epochs int) {
	t.Helper()
	for i := 0; i < epochs; i++ {
		done, err := n.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if done {
			return
		}
	}
}

func newBudgetNRM(t *testing.T) *NRM {
	t.Helper()
	cfg := engine.DefaultConfig()
	e, err := engine.New(cfg, apps.STREAM(apps.DefaultRanks, 2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Beta: 0.3, DVFSTable: streamDVFSTable}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(110)
	return n
}

// TestNRMSnapshotResume forks an NRM-driven simulation mid-run — during
// the knob trial and again after it commits — and requires the forked
// continuation to be bit-identical to the straight-through run: same
// engine signature, same decision log, same trust-machine history.
func TestNRMSnapshotResume(t *testing.T) {
	const totalEpochs = 16
	for _, forkAt := range []int{6, 11} {
		// Straight-through reference.
		ref := newBudgetNRM(t)
		stepN(t, ref, totalEpochs)
		refRes, err := ref.eng.Finish()
		if err != nil {
			t.Fatal(err)
		}

		donor := newBudgetNRM(t)
		stepN(t, donor, forkAt)
		ck, err := donor.eng.Checkpoint()
		if err != nil {
			t.Fatalf("fork at %d: %v", forkAt, err)
		}
		st := donor.Snapshot()

		forked := newBudgetNRM(t)
		if err := forked.eng.Resume(ck); err != nil {
			t.Fatalf("fork at %d: resume: %v", forkAt, err)
		}
		forked.RestoreSnapshot(st)
		stepN(t, forked, totalEpochs-forkAt)
		forkRes, err := forked.eng.Finish()
		if err != nil {
			t.Fatal(err)
		}

		if got, want := forkRes.Signature(), refRes.Signature(); got != want {
			t.Errorf("fork at %d: engine signature diverges from straight run", forkAt)
		}
		if !reflect.DeepEqual(forked.Decisions(), ref.Decisions()) {
			t.Errorf("fork at %d: decision logs diverge:\nfork: %+v\nref:  %+v",
				forkAt, forked.Decisions(), ref.Decisions())
		}
		if !reflect.DeepEqual(forked.ModeTransitions(), ref.ModeTransitions()) {
			t.Errorf("fork at %d: trust transitions diverge", forkAt)
		}
		if forked.PhaseChanges() != ref.PhaseChanges() {
			t.Errorf("fork at %d: phase-change counts diverge: %d vs %d",
				forkAt, forked.PhaseChanges(), ref.PhaseChanges())
		}
	}
}

// TestNRMStateInventory pins the NRM's field set against the snapshot
// (same discipline as the engine's TestEngineStateInventory): a new
// field must be snapshotted or exempted here with a reason.
func TestNRMStateInventory(t *testing.T) {
	check := func(typ reflect.Type, snapshotted []string, exempt map[string]string) {
		t.Helper()
		seen := map[string]bool{}
		for i := 0; i < typ.NumField(); i++ {
			name := typ.Field(i).Name
			seen[name] = true
			inSnap := false
			for _, s := range snapshotted {
				if s == name {
					inSnap = true
					break
				}
			}
			if _, inExempt := exempt[name]; !inSnap && !inExempt {
				t.Errorf("%s.%s is not covered by Snapshot: add it to State or exempt it with a reason", typ, name)
			}
		}
		for _, s := range snapshotted {
			if !seen[s] {
				t.Errorf("%s: snapshotted field %q no longer exists", typ, s)
			}
		}
		for s := range exempt {
			if !seen[s] {
				t.Errorf("%s: exempt field %q no longer exists", typ, s)
			}
		}
	}

	check(reflect.TypeOf(NRM{}),
		[]string{
			"params", "fitted", "epoch", "baseRate", "basePowW", "budgetW",
			"targetRat", "trial", "detector", "priorChanges", "lastKnob",
			"lastSetting", "stableEpochs", "phaseChanges", "mode", "backoff",
			"probationLeft", "cleanEpochs", "transitions", "startAt",
			"counters", "jErr", "energy", "energyJ", "decisions", "rateTrace",
		},
		map[string]string{
			"cfg": "construction configuration (journal and actuator wiring included)",
			"eng": "wiring; the engine has its own Checkpoint/Resume",
		})
	check(reflect.TypeOf(trial{}),
		[]string{"budgetW", "raplRates", "dvfsRates", "committed"}, nil)
}
