package nrm

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/stats"
)

func newEngine(t *testing.T, steps int, seed uint64) *engine.Engine {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, steps))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// streamDVFSTable is a coarse calibration table for STREAM (values match
// the Fig 5 measurements).
var streamDVFSTable = []DVFSPoint{
	{MHz: 2800, PowerW: 156},
	{MHz: 2300, PowerW: 132},
	{MHz: 1800, PowerW: 113},
	{MHz: 1300, PowerW: 99},
	{MHz: 1000, PowerW: 86},
}

func TestNewValidation(t *testing.T) {
	e := newEngine(t, 50, 1)
	if _, err := New(Config{Epoch: time.Millisecond}, e); err == nil {
		t.Fatal("tiny epoch accepted")
	}
	if _, err := New(Config{Beta: 2}, e); err == nil {
		t.Fatal("β=2 accepted")
	}
}

func TestCalibrationThenUncappedRun(t *testing.T) {
	n, err := New(Config{Beta: 1.0}, newEngine(t, 300, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("workload incomplete")
	}
	if n.BaselineRate() < 700000 || n.BaselineRate() > 900000 {
		t.Fatalf("baseline = %v", n.BaselineRate())
	}
	p, ok := n.Model()
	if !ok {
		t.Fatal("model never fitted")
	}
	if p.Beta != 1.0 || p.RMax != n.BaselineRate() {
		t.Fatalf("fitted params = %+v", p)
	}
	// Every decision after calibration is "none" (no budget set).
	for i, d := range n.Decisions() {
		if i >= 3 && d.Knob != KnobNone {
			t.Fatalf("decision %d = %v without a budget", i, d.Knob)
		}
	}
}

func TestEnforceBudgetRespectsPower(t *testing.T) {
	n, err := New(Config{Beta: 1.0}, newEngine(t, 900, 1))
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(110)
	res, err := n.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Power after calibration + settling must respect the budget.
	vals := res.PowerTrace.Values()
	for i := 5; i < len(vals)-1; i++ {
		if vals[i] > 110*1.05 {
			t.Fatalf("window %d power %v exceeds 110 W budget", i, vals[i])
		}
	}
	// Progress under budget must drop below the baseline.
	post := stats.Mean(res.Rates()[5:])
	if post >= n.BaselineRate()*0.95 {
		t.Fatalf("budget had no progress effect: %v vs baseline %v", post, n.BaselineRate())
	}
	// The decision log shows RAPL enforcement with a sane prediction.
	var found bool
	for _, d := range n.Decisions() {
		if d.Knob == KnobRAPL {
			found = true
			if d.PredictedRate <= 0 || d.PredictedRate >= n.BaselineRate() {
				t.Fatalf("RAPL prediction %v implausible", d.PredictedRate)
			}
		}
	}
	if !found {
		t.Fatal("no RAPL decision recorded")
	}
}

func TestBudgetAboveBaselineStaysUncapped(t *testing.T) {
	n, err := New(Config{Beta: 1.0}, newEngine(t, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(400) // way above the ~180 W uncapped draw
	if _, err := n.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, d := range n.Decisions() {
		if i >= 3 && d.Knob != KnobNone {
			t.Fatalf("decision %d = %v for a non-binding budget", i, d.Knob)
		}
	}
}

func TestDVFSPreferredForMemoryBound(t *testing.T) {
	cfg := engine.DefaultConfig()
	e, err := engine.New(cfg, apps.STREAM(apps.DefaultRanks, 800))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Beta: 0.37, DVFSTable: streamDVFSTable}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(120)
	if _, err := n.Run(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	dvfs := 0
	for _, d := range n.Decisions() {
		if d.Knob == KnobDVFS {
			dvfs++
			if d.Setting != 1800 { // fastest point fitting 120 W with headroom
				t.Fatalf("DVFS setting = %v, want 1800", d.Setting)
			}
		}
	}
	if dvfs == 0 {
		t.Fatal("memory-bound budget never used DVFS")
	}
}

func TestTargetProgressMode(t *testing.T) {
	n, err := New(Config{Beta: 1.0}, newEngine(t, 900, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := func() (*engine.Result, error) {
		// Calibrate first, then ask for 70% of baseline.
		for i := 0; i < 4; i++ {
			if _, err := n.Step(); err != nil {
				return nil, err
			}
		}
		n.SetTargetProgress(n.BaselineRate() * 0.7)
		return n.Run(time.Minute)
	}()
	if err != nil {
		t.Fatal(err)
	}
	// Achieved progress near the target (model error allowed).
	post := stats.Mean(res.Rates()[6:])
	target := n.BaselineRate() * 0.7
	if math.Abs(post-target)/target > 0.30 {
		t.Fatalf("achieved %v, target %v (>30%% off)", post, target)
	}
	// And the node saved power doing it.
	power := stats.Mean(res.PowerTrace.Values()[6:])
	if power >= 175 {
		t.Fatalf("no power saved: %v W", power)
	}
}

func TestPhaseChangeDetectedAndBaselineRescaled(t *testing.T) {
	// QMCPACK's VMC1 (~8 blocks/s) → VMC2 (~12) → DMC (~16) transitions
	// must be detected while running uncapped, and the baseline must end
	// near the final phase's level.
	cfg := engine.DefaultConfig()
	e, err := engine.New(cfg, apps.QMCPACK(apps.DefaultRanks, 80, 120, 160))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Beta: 0.84}, e)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("QMCPACK incomplete")
	}
	if n.PhaseChanges() < 2 {
		t.Fatalf("detected %d phase changes, want >= 2", n.PhaseChanges())
	}
	if math.Abs(n.BaselineRate()-16) > 3 {
		t.Fatalf("baseline after DMC = %v, want ~16", n.BaselineRate())
	}
}

func TestKnobString(t *testing.T) {
	if KnobNone.String() != "none" || KnobRAPL.String() != "rapl" || KnobDVFS.String() != "dvfs" {
		t.Fatal("knob names wrong")
	}
}

func TestNRMNextDecisionAt(t *testing.T) {
	n, err := New(Config{Beta: 1.0}, newEngine(t, 300, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ now, want time.Duration }{
		{0, time.Second},
		{time.Second, 2 * time.Second},
		{1500 * time.Millisecond, 2 * time.Second},
		{2*time.Second - time.Nanosecond, 2 * time.Second},
	} {
		if got := n.NextDecisionAt(tc.now); got != tc.want {
			t.Errorf("NextDecisionAt(%v) = %v, want %v", tc.now, got, tc.want)
		}
	}
}
