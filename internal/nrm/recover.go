package nrm

import (
	"fmt"

	"progresscap/internal/engine"
	"progresscap/internal/journal"
	"progresscap/internal/model"
	"progresscap/internal/rapl"
)

// Counters aggregates the NRM's reliability telemetry: every retried or
// restarted thing the daemon survived. A snapshot rides along in each
// Decision so the decision log doubles as the counter stream.
type Counters struct {
	// MSRRetries counts cap writes that needed the transient-EIO retry.
	MSRRetries int
	// EnergyReadFailures counts energy-accounting intervals whose MSR
	// reads failed even after retry (the energy defers to the next good
	// read, so this is lag, not loss).
	EnergyReadFailures uint64
	// TrustTransitions counts degraded-signal state machine edges.
	TrustTransitions int
	// SupervisorRestarts is how many times a supervisor restarted this
	// daemon's unit; the harness records it via RecordSupervisorRestarts
	// after each restart, since the daemon cannot observe its own death.
	SupervisorRestarts int
	// Recoveries counts journal-replay restorations (1 after Restore).
	Recoveries int
	// Actuation is the hardened actuator's retry/failover/park counter
	// snapshot, populated only when Config.Actuator is set (the legacy
	// MSR path reports its retries through MSRRetries instead).
	Actuation rapl.ActuatorCounters
}

// Counters returns the current reliability-counter snapshot.
func (n *NRM) Counters() Counters {
	c := n.counters
	c.EnergyReadFailures = n.energy.Failures()
	if a := n.cfg.Actuator; a != nil {
		c.Actuation = a.Counters()
	}
	return c
}

// RecordSupervisorRestarts stores the supervising layer's restart count
// so it surfaces in the decision log alongside the daemon-side counters.
func (n *NRM) RecordSupervisorRestarts(restarts int) {
	n.counters.SupervisorRestarts = restarts
}

// journalDecision write-ahead-logs one epoch's decision. It also
// surfaces any journal failure buffered by a transition append (which
// has no error path of its own): a daemon that cannot journal must not
// keep actuating, or a crash would replay state older than the plant's.
func (n *NRM) journalDecision(dec Decision) error {
	if n.jErr != nil {
		return fmt.Errorf("nrm: journal failed: %w", n.jErr)
	}
	if n.cfg.Journal == nil {
		return nil
	}
	return n.cfg.Journal.Append(journal.Record{
		Kind:    journal.KindCapDecision,
		Epoch:   n.epoch,
		At:      dec.At,
		BudgetW: dec.BudgetW,
		Knob:    int(dec.Knob),
		Setting: dec.Setting,
		Mode:    int(dec.Mode),
	})
}

// Restore builds an NRM that resumes from journal-recovered state
// instead of re-calibrating: the pre-crash epoch index, budget, β-fit,
// trust mode, and degraded backoff are restored, and the last journaled
// enforcement is re-actuated immediately — the plant may still hold the
// pre-crash cap (RAPL stays latched across a daemon death), and if a
// deadman reverted it in the meantime this re-arm restores it.
//
// Two deliberate conservatisms:
//
//   - A crash during calibration (no journaled fit) restores the epoch
//     index but re-runs calibration from live samples; Restore's clock
//     baseline keeps the power estimate honest.
//   - A crash during probation resumes as Degraded — probation progress
//     is not journaled, so the daemon re-earns trust from the start of a
//     probation window rather than guessing how much it had served.
func Restore(cfg Config, eng *engine.Engine, st journal.State) (*NRM, error) {
	n, err := New(cfg, eng)
	if err != nil {
		return nil, err
	}
	n.epoch = st.Epoch
	n.budgetW = st.BudgetW
	if st.Backoff > 0 {
		n.backoff = st.Backoff
	}
	if !st.Fitted {
		// No journaled fit means calibration never completed; resuming at
		// a post-calibration epoch with no baseline would crash-loop the
		// daemon inside fit(). Re-calibrate from scratch instead.
		n.epoch = 0
	}
	if st.Fitted {
		p, err := model.FromBaseline(st.Beta, st.BaseRate, st.BasePowW)
		if err != nil {
			return nil, fmt.Errorf("nrm: restoring fit: %w", err)
		}
		n.params = p
		n.fitted = true
		n.baseRate = st.BaseRate
		n.basePowW = st.BasePowW
	}
	if Mode(st.Mode) != ModeNormal {
		n.mode = ModeDegraded
	}
	n.counters.Recoveries++
	if st.Decisions > 0 {
		// Re-arm the pre-crash enforcement before the first epoch. No new
		// journal record: the decision being re-actuated IS the journal's
		// final record, and re-actuating a journaled decision is the
		// idempotent case recovery is designed around.
		dec := Decision{
			At:      eng.Clock().Now(),
			BudgetW: st.BudgetW,
			Knob:    Knob(st.Knob),
			Setting: st.Setting,
			Mode:    n.mode,
		}
		if err := n.actuate(dec); err != nil {
			return nil, fmt.Errorf("nrm: re-arming recovered cap: %w", err)
		}
	}
	return n, nil
}
