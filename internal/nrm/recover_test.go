package nrm

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"progresscap/internal/journal"
	"progresscap/internal/msr"
	"progresscap/internal/rapl"
)

// TestJournalRecordsDecisionsAndFit: a journaling NRM write-ahead-logs
// calibration decisions, the model fit, and budget-enforcement
// decisions, and Recover reconstructs the matching state.
func TestJournalRecordsDecisionsAndFit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nrm.journal")
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Beta: 1.0, Journal: jw}, newEngine(t, 10000, 1))
	if err != nil {
		t.Fatal(err)
	}
	n.SetBudget(110)
	for i := 0; i < 8; i++ {
		if _, err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	recs, rst, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rst.DamagedTail {
		t.Fatalf("clean journal read as damaged: %+v", rst)
	}
	st := journal.Recover(recs)
	if st.Epoch != 8 || st.Decisions != 8 {
		t.Fatalf("recovered epoch=%d decisions=%d, want 8/8", st.Epoch, st.Decisions)
	}
	if !st.Fitted || st.Beta != 1.0 {
		t.Fatalf("fit not recovered: %+v", st)
	}
	if st.Knob != int(KnobRAPL) || st.Setting != 110 || st.BudgetW != 110 {
		t.Fatalf("last decision not recovered: knob=%d setting=%v budget=%v",
			st.Knob, st.Setting, st.BudgetW)
	}
	if st.BaseRate != n.BaselineRate() {
		t.Fatalf("baseline rate %v != %v", st.BaseRate, n.BaselineRate())
	}
}

// TestRestoreResumesPreCrashCap is the package-level acceptance check
// for recovery: kill the daemon after it settled on a cap, replay its
// journal into a fresh NRM on the same engine, and the restored daemon
// must (a) re-arm the pre-crash cap immediately, (b) skip
// re-calibration, and (c) keep enforcing the budget.
func TestRestoreResumesPreCrashCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nrm.journal")
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t, 20000, 1)
	n1, err := New(Config{Beta: 1.0, Journal: jw}, eng)
	if err != nil {
		t.Fatal(err)
	}
	n1.SetBudget(110)
	for i := 0; i < 8; i++ {
		if _, err := n1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": drop n1 without ceremony. Simulate the latched-cap hazard
	// by scribbling a different cap before restore (a deadman revert, or
	// another agent, may have moved the register while the daemon was
	// down).
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rapl.WriteLimit(eng.Device(), 165, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	recs, _, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := journal.Recover(recs)
	jw2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	n2, err := Restore(Config{Beta: 1.0, Journal: jw2}, eng, st)
	if err != nil {
		t.Fatal(err)
	}

	// (a) The pre-crash cap is back in the register before any epoch ran.
	raw, err := eng.Device().Read(msr.PkgPowerLimit)
	if err != nil {
		t.Fatal(err)
	}
	unitRaw, err := eng.Device().Read(msr.RaplPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	pl1, _ := msr.DecodePowerLimits(raw, msr.DecodeUnits(unitRaw))
	if !pl1.Enabled || pl1.Watts != 110 {
		t.Fatalf("restored cap = %+v, want enabled 110 W", pl1)
	}

	// (b) No re-calibration: the model is fitted and the epoch resumed.
	if _, ok := n2.Model(); !ok {
		t.Fatal("restored NRM lost its fit")
	}
	if n2.Counters().Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", n2.Counters().Recoveries)
	}
	for i := 0; i < 4; i++ {
		if _, err := n2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range n2.Decisions() {
		if d.Knob == KnobNone {
			t.Fatalf("restored decision %d re-calibrated (knob none)", i)
		}
		if d.Counters.Recoveries != 1 {
			t.Fatalf("decision %d counters missing recovery: %+v", i, d.Counters)
		}
	}

	// (c) The continued journal recovers the full history on a second
	// replay: old records plus the restored daemon's new decisions.
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, rst2, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rst2.DamagedTail {
		t.Fatalf("continued journal damaged: %+v", rst2)
	}
	st2 := journal.Recover(recs2)
	if st2.Decisions != st.Decisions+4 {
		t.Fatalf("continued journal has %d decisions, want %d", st2.Decisions, st.Decisions+4)
	}
	if st2.Epoch != st.Epoch+4 {
		t.Fatalf("continued epoch = %d, want %d", st2.Epoch, st.Epoch+4)
	}
}

// TestRestoreUnfittedRecalibrates: a crash before any journaled fit must
// restart calibration rather than crash-looping inside fit().
func TestRestoreUnfittedRecalibrates(t *testing.T) {
	eng := newEngine(t, 10000, 1)
	st := journal.State{Epoch: 3, Decisions: 3, Knob: int(KnobNone)}
	n, err := Restore(Config{Beta: 1.0}, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := n.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := n.Model(); !ok {
		t.Fatal("re-calibration never fitted")
	}
	if n.BaselineRate() <= 0 {
		t.Fatal("no baseline after re-calibration")
	}
}

// TestRestoreDegradedMapsProbationConservatively: a daemon that crashed
// mid-probation resumes as Degraded with the journaled backoff.
func TestRestoreDegradedMapsProbationConservatively(t *testing.T) {
	eng := newEngine(t, 10000, 1)
	st := journal.State{
		Epoch: 6, Decisions: 6, Fitted: true,
		Beta: 0.9, BaseRate: 800000, BasePowW: 180,
		Mode: int(ModeProbation), Backoff: 8,
		Knob: int(KnobRAPL), Setting: 144, BudgetW: 0,
	}
	n, err := Restore(Config{Beta: 0.9}, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	if n.Mode() != ModeDegraded {
		t.Fatalf("restored mode = %v, want degraded", n.Mode())
	}
	if n.backoff != 8 {
		t.Fatalf("restored backoff = %d, want 8", n.backoff)
	}
}

// TestJournalOpenTruncatesDamagedTail: appending through Open after a
// torn final write must land new frames on a clean boundary so the next
// replay sees old records AND new ones.
func TestJournalOpenTruncatesDamagedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nrm.journal")
	jw, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if err := jw.Append(journal.Record{Kind: journal.KindCapDecision, Epoch: e, Setting: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final write: append half a frame header.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xA5, 0x02}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	jw2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jw2.Append(journal.Record{Kind: journal.KindCapDecision, Epoch: 3, Setting: 90}); err != nil {
		t.Fatal(err)
	}
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rst, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rst.DamagedTail {
		t.Fatalf("tail still damaged after Open: %+v", rst)
	}
	if len(recs) != 4 || recs[3].Setting != 90 {
		t.Fatalf("replay = %d records (last %+v), want 4 ending at 90 W", len(recs), recs[len(recs)-1])
	}
}
