// Package nrm implements the paper's node resource manager (§II): the
// per-node daemon of the Argo hierarchy that is "ultimately responsible
// for the enforcement of a power budget received from higher levels ...
// while improving application performance".
//
// The NRM owns the node's control knobs (the RAPL power limit via the
// whitelisted MSR interface, plain DVFS, duty-cycle modulation) and uses
// the paper's two ingredients to act intelligently:
//
//   - online progress (§III): the application-specific work rate it
//     monitors every second; and
//   - the analytical model (§VI): fitted from an uncapped baseline and
//     the measured β, used to predict the progress impact of candidate
//     enforcement strategies and to translate a progress expectation
//     into a power budget.
//
// Two operating modes mirror the paper's motivating policies:
//
//   - EnforceBudget: respect a (possibly changing) node power budget
//     with the least predicted progress impact, choosing between RAPL
//     capping and plain DVFS per the application's characteristics; and
//   - TargetProgress: given an expectation of online performance, derive
//     and apply the cheapest power budget expected to sustain it
//     (Eq. 4/5 inverted).
package nrm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/journal"
	"progresscap/internal/model"
	"progresscap/internal/progress"
	"progresscap/internal/rapl"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
)

// Knob identifies the enforcement mechanism the NRM picked for an epoch.
type Knob int

// Available knobs.
const (
	KnobNone Knob = iota // uncapped
	KnobRAPL
	KnobDVFS
)

func (k Knob) String() string {
	switch k {
	case KnobNone:
		return "none"
	case KnobRAPL:
		return "rapl"
	case KnobDVFS:
		return "dvfs"
	default:
		return fmt.Sprintf("Knob(%d)", int(k))
	}
}

// Mode is the NRM's trust state toward the progress signal.
type Mode int

// Modes of the degraded-signal state machine.
const (
	// ModeNormal: the progress signal is trusted and drives control.
	ModeNormal Mode = iota
	// ModeDegraded: the signal has gone silent or stale. The NRM stops
	// steering by progress and holds a conservative power cap — the
	// budget must stay enforced even blind, and the control loop must not
	// chase a rate of zero (which would read as "application stopped,
	// power is free" and overshoot the cap the moment work resumes).
	ModeDegraded
	// ModeProbation: reports have resumed after an outage, but the NRM
	// keeps the conservative cap for a backoff period before re-trusting
	// the signal; an immediate relapse doubles the next backoff.
	ModeProbation
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDegraded:
		return "degraded"
	case ModeProbation:
		return "probation"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ModeTransition records one state-machine edge for the decision log.
type ModeTransition struct {
	At       time.Duration
	From, To Mode
	Reason   string
}

// Decision records one epoch's enforcement choice.
type Decision struct {
	At      time.Duration
	BudgetW float64 // 0 = no budget (uncapped)
	Knob    Knob
	Setting float64 // cap in W for RAPL, frequency in MHz for DVFS
	// PredictedRate is the model's expected online performance under
	// the decision (0 when no model is fitted yet).
	PredictedRate float64
	// Mode is the trust state the decision was made in.
	Mode Mode
	// Counters is the NRM's retry/restart counter snapshot after the
	// decision was actuated, so the decision log doubles as the
	// reliability telemetry stream.
	Counters Counters
}

// Config tunes the NRM.
type Config struct {
	// Epoch is the control period (default 1 s, like the paper's tool).
	Epoch time.Duration
	// CalibrationEpochs run uncapped to estimate the baseline rate and
	// power before the model is fitted (default 3).
	CalibrationEpochs int
	// Beta is the application's compute-boundedness. If zero, the NRM
	// estimates it online from the ratio of progress loss to frequency
	// loss once it has capped epochs to learn from; providing the
	// characterized value (Table VI) makes early decisions better.
	Beta float64
	// DVFSTable maps candidate pinned frequencies to expected package
	// power, measured offline (examples/nrm shows how). When empty the
	// NRM only uses RAPL.
	DVFSTable []DVFSPoint

	// StaleEpochs is how many consecutive report-free aggregation windows
	// the NRM tolerates before declaring the progress signal stale and
	// entering degraded mode (default 3; a single empty window is a known
	// benign artifact — the paper's OpenMC zero reports).
	StaleEpochs int
	// DegradedCapW is the conservative cap held while degraded. Zero
	// derives it as 80% of the calibrated baseline power — strictly less
	// than uncapped draw, so a silent node cannot breach its budget.
	DegradedCapW float64
	// BackoffEpochs is the initial probation length after the signal
	// resumes (default 2). Each relapse during probation doubles the next
	// probation, up to maxBackoffEpochs.
	BackoffEpochs int

	// Journal, when set, receives a write-ahead record of every cap
	// decision, model fit, and trust transition *before* it takes
	// effect, so a restarted daemon can Restore its pre-crash state
	// instead of re-calibrating against a still-capped plant.
	Journal *journal.Writer

	// Actuator, when set, routes every RAPL cap write through the
	// hardened multi-backend actuator (retry/backoff, health-state
	// failover, safe-cap park) instead of the legacy single-retry MSR
	// path. Nil preserves the legacy path byte-for-byte; the actuator's
	// counters are merged into Counters() so they ride the decision log.
	Actuator *rapl.Actuator
}

// Degraded-mode tuning: backoff doubling is bounded, and a long healthy
// run forgives past relapses.
const (
	maxBackoffEpochs   = 32
	backoffResetEpochs = 16
)

// DVFSPoint is one calibrated (frequency, package power) pair.
type DVFSPoint struct {
	MHz    float64
	PowerW float64
}

// trialEpochs is how long each candidate knob is tried before the NRM
// commits to the better-measured one.
const trialEpochs = 2

// trial tracks the online knob comparison for one budget level. The
// analytical model cannot rank RAPL against DVFS (it does not capture
// RAPL's non-DVFS enforcement — the paper's Fig 4d/Fig 5 finding), so
// the NRM measures both briefly using the online progress signal and
// commits to whichever preserved more progress.
type trial struct {
	budgetW   float64
	raplRates []float64
	dvfsRates []float64
	committed Knob // KnobNone until the comparison finishes
}

// NRM drives one node engine.
type NRM struct {
	cfg    Config
	eng    *engine.Engine
	params model.Params
	fitted bool

	epoch     int
	baseRate  float64
	basePowW  float64
	budgetW   float64
	targetRat float64 // target progress rate; 0 = budget mode

	trial *trial

	// Phase awareness: the detector watches the online-performance level
	// while the actuation is stable; a sustained level shift means the
	// application changed phase (Fig 1 right), so the NRM rescales its
	// baseline and re-runs the knob comparison.
	detector     *progress.PhaseDetector
	priorChanges []progress.PhaseChange
	lastKnob     Knob
	lastSetting  float64
	stableEpochs int
	phaseChanges int

	// Degraded-signal state machine.
	mode          Mode
	backoff       int // current probation length
	probationLeft int
	cleanEpochs   int
	transitions   []ModeTransition

	// startAt is the engine clock when this NRM instance began; fit()
	// measures calibration elapsed time from here so a Restored daemon
	// does not divide post-restart energy by pre-restart wall time.
	startAt  time.Duration
	counters Counters
	jErr     error // first journal-append failure, surfaced by Step

	// Wrap-safe energy accounting (replaces cumulative-from-zero reads,
	// which a seeded or wrapped RAPL counter silently corrupts).
	energy  *rapl.EnergyReader
	energyJ float64

	decisions []Decision
	rateTrace *trace.Series
}

// New wraps an engine (which must not have its own policy daemon).
func New(cfg Config, eng *engine.Engine) (*NRM, error) {
	if cfg.Epoch == 0 {
		cfg.Epoch = time.Second
	}
	if cfg.Epoch < 100*time.Millisecond {
		return nil, fmt.Errorf("nrm: epoch %v too short", cfg.Epoch)
	}
	if cfg.CalibrationEpochs == 0 {
		cfg.CalibrationEpochs = 3
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("nrm: β=%v outside [0,1]", cfg.Beta)
	}
	if cfg.StaleEpochs <= 0 {
		cfg.StaleEpochs = 3
	}
	if cfg.BackoffEpochs <= 0 {
		cfg.BackoffEpochs = 2
	}
	det, err := progress.NewPhaseDetector(0.2, 3)
	if err != nil {
		return nil, err
	}
	return &NRM{
		cfg:       cfg,
		eng:       eng,
		detector:  det,
		backoff:   cfg.BackoffEpochs,
		energy:    rapl.NewEnergyReader(eng.Device()),
		rateTrace: trace.NewSeries("nrm.rate", ""),
		startAt:   eng.Clock().Now(),
	}, nil
}

// Mode returns the NRM's current trust state toward the progress signal.
func (n *NRM) Mode() Mode { return n.mode }

// ModeTransitions returns the degraded-mode state machine's edge log.
func (n *NRM) ModeTransitions() []ModeTransition { return n.transitions }

func (n *NRM) transition(at time.Duration, to Mode, reason string) {
	n.transitions = append(n.transitions, ModeTransition{At: at, From: n.mode, To: to, Reason: reason})
	n.counters.TrustTransitions++
	if n.cfg.Journal != nil {
		if err := n.cfg.Journal.Append(journal.Record{
			Kind:    journal.KindTrustTransition,
			Epoch:   n.epoch,
			At:      at,
			From:    int(n.mode),
			To:      int(to),
			Backoff: n.backoff,
			Reason:  reason,
		}); err != nil && n.jErr == nil {
			n.jErr = err
		}
	}
	n.mode = to
}

// PhaseChanges returns how many application phase changes the NRM has
// detected and adapted to.
func (n *NRM) PhaseChanges() int { return n.phaseChanges }

// ChangeLog returns every committed phase change, across actuation
// regimes, in detection order.
func (n *NRM) ChangeLog() []progress.PhaseChange {
	out := append([]progress.PhaseChange(nil), n.priorChanges...)
	return append(out, n.detector.Changes()...)
}

// RateTrace returns the per-epoch achieved online performance the NRM
// observed.
func (n *NRM) RateTrace() *trace.Series { return n.rateTrace }

// NextDecisionAt returns the first epoch boundary strictly after now:
// the NRM's NextEventAt hook for macro-stepping drivers. Decisions land
// on the fixed epoch grid (the paper's tool acts once a second), so the
// next one is the next grid multiple regardless of where now falls.
func (n *NRM) NextDecisionAt(now time.Duration) time.Duration {
	return now - now%n.cfg.Epoch + n.cfg.Epoch
}

// SetBudget switches the NRM to budget-enforcement mode (0 = uncapped).
// Takes effect at the next epoch.
func (n *NRM) SetBudget(watts float64) {
	n.budgetW = watts
	n.targetRat = 0
}

// SetTargetProgress switches the NRM to progress-target mode: it derives
// the power budget expected to sustain the target rate. Requires a
// fitted model (after calibration); until then the node runs uncapped.
func (n *NRM) SetTargetProgress(rate float64) {
	n.targetRat = rate
}

// Decisions returns the per-epoch decision log.
func (n *NRM) Decisions() []Decision { return n.decisions }

// Model returns the fitted model parameters and whether fitting has
// happened yet.
func (n *NRM) Model() (model.Params, bool) { return n.params, n.fitted }

// BaselineRate returns the calibrated uncapped rate (0 before
// calibration completes).
func (n *NRM) BaselineRate() float64 { return n.baseRate }

// Step advances the node by one epoch: observe last epoch's progress and
// power, update the model, decide, actuate, advance. It reports whether
// the workload finished.
func (n *NRM) Step() (bool, error) {
	// Observe feedback from the previous epoch.
	samples := n.eng.Monitor().Samples()
	if len(samples) > 0 {
		last := samples[len(samples)-1]
		n.rateTrace.Add(last.At, last.Rate)
	}

	now := n.eng.Clock().Now()
	dec := Decision{At: now}

	switch {
	case n.epoch < n.cfg.CalibrationEpochs:
		// Calibration: uncapped, accumulate baseline.
		dec.Knob = KnobNone
	default:
		if !n.fitted {
			if err := n.fit(); err != nil {
				return false, err
			}
		}
		n.updateMode(now)
		if n.mode == ModeNormal {
			dec = n.decide(now)
		} else {
			dec = n.degradedDecision(now)
		}
	}
	// Write-ahead: the decision reaches the journal before it reaches
	// hardware, so recovery can always restore the last actuated cap (or
	// one the daemon was about to actuate — re-actuating it is safe).
	if err := n.journalDecision(dec); err != nil {
		return false, err
	}
	if err := n.actuate(dec); err != nil {
		return false, err
	}
	dec.Counters = n.Counters()
	n.decisions = append(n.decisions, dec)
	n.epoch++

	done, err := n.eng.Advance(n.cfg.Epoch)
	if err != nil {
		return done, err
	}
	n.energyJ += n.energy.Advance()

	// Feed the epoch's achieved progress back into the calibration or the
	// running knob trial — but only when the signal is trusted AND the
	// window actually carried reports. A zero-rate window during an
	// outage is transport loss, not application behaviour; learning from
	// it would poison the baseline, the knob trial, and the phase
	// detector at once.
	if s := n.eng.Monitor().Samples(); len(s) > 0 {
		last := s[len(s)-1]
		if n.mode != ModeNormal || last.Reports == 0 {
			return done, nil
		}
		achieved := last.Rate
		switch {
		case dec.Knob == KnobNone:
			if achieved > n.baseRate {
				n.baseRate = achieved
			}
		case n.trial != nil && n.trial.committed == KnobNone:
			switch dec.Knob {
			case KnobRAPL:
				n.trial.raplRates = append(n.trial.raplRates, achieved)
			case KnobDVFS:
				n.trial.dvfsRates = append(n.trial.dvfsRates, achieved)
			}
		}
		n.observePhase(dec, achieved)
	}
	return done, nil
}

// updateMode advances the degraded-signal state machine, once per epoch,
// before the epoch's decision is made.
func (n *NRM) updateMode(now time.Duration) {
	empty := n.eng.Monitor().EmptyWindows()
	switch n.mode {
	case ModeNormal:
		if empty >= n.cfg.StaleEpochs {
			n.trial = nil // the comparison data predates the outage
			n.cleanEpochs = 0
			n.transition(now, ModeDegraded,
				fmt.Sprintf("no progress reports for %d consecutive windows", empty))
			return
		}
		n.cleanEpochs++
		if n.cleanEpochs >= backoffResetEpochs {
			n.backoff = n.cfg.BackoffEpochs
		}
	case ModeDegraded:
		if empty == 0 {
			n.probationLeft = n.backoff
			n.transition(now, ModeProbation,
				fmt.Sprintf("progress reports resumed; %d-epoch probation", n.backoff))
		}
	case ModeProbation:
		if empty > 0 {
			// Relapse: the signal is flapping, so trust it later and less.
			n.backoff *= 2
			if n.backoff > maxBackoffEpochs {
				n.backoff = maxBackoffEpochs
			}
			n.transition(now, ModeDegraded,
				fmt.Sprintf("signal relapsed during probation; backoff now %d epochs", n.backoff))
			return
		}
		n.probationLeft--
		if n.probationLeft <= 0 {
			n.cleanEpochs = 0
			n.transition(now, ModeNormal, "probation complete, signal re-trusted")
		}
	}
}

// degradedDecision holds the conservative cap while the progress signal
// cannot be trusted. The knob is always RAPL: unlike an open-loop DVFS
// pin, the RAPL controller clamps power transients by itself, which is
// exactly what a blind NRM needs.
func (n *NRM) degradedDecision(now time.Duration) Decision {
	capW := n.cfg.DegradedCapW
	if capW <= 0 {
		capW = 0.8 * n.basePowW
	}
	if n.budgetW > 0 && n.budgetW < capW {
		capW = n.budgetW
	}
	dec := Decision{At: now, BudgetW: n.budgetW, Knob: KnobRAPL, Setting: capW, Mode: n.mode}
	if n.fitted {
		dec.PredictedRate = n.params.PredictProgress(capW)
	}
	return dec
}

// observePhase feeds the phase detector while the actuation has been
// stable (an enforcement change shifts the level too and must not be
// mistaken for an application phase). On a detected phase change the NRM
// rescales its baseline by the level ratio — the cap's relative impact is
// assumed phase-independent until re-measured — and restarts the knob
// comparison.
func (n *NRM) observePhase(dec Decision, achieved float64) {
	if dec.Knob != n.lastKnob || dec.Setting != n.lastSetting {
		n.lastKnob, n.lastSetting = dec.Knob, dec.Setting
		n.stableEpochs = 0
		// The enforcement change moves the level itself; start the
		// detector over so the new regime is its reference, keeping the
		// committed-change history.
		prior := n.detector.Changes()
		det, err := progress.NewPhaseDetector(0.2, 3)
		if err == nil {
			n.detector = det
			n.priorChanges = append(n.priorChanges, prior...)
		}
		return
	}
	n.stableEpochs++
	if n.stableEpochs < 2 {
		return
	}
	if !n.detector.Offer(achieved) {
		return
	}
	n.phaseChanges++
	changes := n.detector.Changes()
	last := changes[len(changes)-1]
	if last.OldLevel > 0 {
		if dec.Knob == KnobNone {
			// Uncapped: the new level IS the new phase's baseline.
			n.baseRate = last.NewLevel
		} else if n.baseRate > 0 {
			// Capped: the uncapped level is unobservable, so assume the
			// cap's relative impact carries over and rescale.
			n.baseRate *= last.NewLevel / last.OldLevel
		}
		if n.fitted {
			n.params.RMax = n.baseRate
		}
	}
	n.trial = nil // the knob ranking may differ in the new phase
}

// Run steps until the workload completes or maxDur elapses, then
// finalizes the engine.
func (n *NRM) Run(maxDur time.Duration) (*engine.Result, error) {
	deadline := n.eng.Clock().Now() + maxDur
	for n.eng.Clock().Now() < deadline {
		done, err := n.Step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return n.eng.Finish()
}

// fit builds the model from the calibration epochs.
func (n *NRM) fit() error {
	// Baseline package power: the wrap-safe energy accumulated over the
	// calibration epochs. (A cumulative-since-zero register read would
	// silently misreport on a node whose counter was seeded mid-count or
	// wrapped during calibration.)
	elapsed := (n.eng.Clock().Now() - n.startAt).Seconds()
	if elapsed <= 0 {
		return fmt.Errorf("nrm: fit before any epoch ran")
	}
	n.basePowW = n.energyJ / elapsed
	if n.baseRate <= 0 {
		return fmt.Errorf("nrm: no baseline progress observed during calibration")
	}
	beta := n.cfg.Beta
	if beta == 0 {
		// Without a characterized β, assume compute-bound (conservative:
		// predicts the largest impact, so the NRM over-provisions).
		beta = 0.9
	}
	p, err := model.FromBaseline(beta, n.baseRate, n.basePowW)
	if err != nil {
		return fmt.Errorf("nrm: fitting model: %w", err)
	}
	n.params = p
	n.fitted = true
	if n.cfg.Journal != nil {
		if err := n.cfg.Journal.Append(journal.Record{
			Kind:     journal.KindModelFit,
			Epoch:    n.epoch,
			At:       n.eng.Clock().Now(),
			Beta:     beta,
			BaseRate: n.baseRate,
			BasePowW: n.basePowW,
		}); err != nil {
			return fmt.Errorf("nrm: journaling fit: %w", err)
		}
	}
	return nil
}

// decide picks the enforcement strategy for the coming epoch.
func (n *NRM) decide(now time.Duration) Decision {
	dec := Decision{At: now}

	budget := n.budgetW
	if n.targetRat > 0 && n.fitted {
		// Progress-target mode: invert the model for the budget.
		if w, err := n.params.PackageCapForProgress(n.targetRat); err == nil {
			budget = stats.Clamp(w, 30, 1e4)
		}
	}
	dec.BudgetW = budget
	if budget <= 0 || budget >= n.basePowW {
		dec.Knob = KnobNone
		if n.fitted {
			dec.PredictedRate = n.params.RMax
		}
		return dec
	}

	// Candidate 1: RAPL cap at the budget.
	raplPred := 0.0
	if n.fitted {
		raplPred = n.params.PredictProgress(budget)
	}

	// Candidate 2: the fastest calibrated DVFS point that fits. DVFS
	// cannot clamp transients, so require headroom below the budget.
	const dvfsHeadroom = 0.97
	var best *DVFSPoint
	for i := range n.cfg.DVFSTable {
		p := &n.cfg.DVFSTable[i]
		if p.PowerW <= budget*dvfsHeadroom && (best == nil || p.MHz > best.MHz) {
			best = p
		}
	}
	if best == nil {
		// Only RAPL can enforce this budget.
		n.trial = nil
		dec.Knob = KnobRAPL
		dec.Setting = budget
		dec.PredictedRate = raplPred
		return dec
	}
	dvfsPred := 0.0
	if n.fitted {
		// Predicted progress at a pinned frequency via Eq. 1.
		dvfsPred = n.params.RMax / model.TimeRatio(n.params.Beta, 3300, best.MHz)
	}

	// The model cannot rank the knobs reliably (it misses RAPL's
	// non-DVFS enforcement), so compare them empirically: a short RAPL
	// trial, a short DVFS trial, then commit to the better-measured one.
	// A budget change of more than 10% restarts the comparison.
	if n.trial == nil || math.Abs(n.trial.budgetW-budget) > 0.1*n.trial.budgetW {
		n.trial = &trial{budgetW: budget}
	}
	tr := n.trial
	switch {
	case len(tr.raplRates) < trialEpochs:
		dec.Knob = KnobRAPL
		dec.Setting = budget
		dec.PredictedRate = raplPred
	case len(tr.dvfsRates) < trialEpochs:
		dec.Knob = KnobDVFS
		dec.Setting = best.MHz
		dec.PredictedRate = dvfsPred
	default:
		if tr.committed == KnobNone {
			// Skip each trial's first (settling) epoch when judging.
			if stats.Mean(tr.dvfsRates[1:]) >= stats.Mean(tr.raplRates[1:]) {
				tr.committed = KnobDVFS
			} else {
				tr.committed = KnobRAPL
			}
		}
		dec.Knob = tr.committed
		if tr.committed == KnobDVFS {
			dec.Setting = best.MHz
			dec.PredictedRate = dvfsPred
		} else {
			dec.Setting = budget
			dec.PredictedRate = raplPred
		}
	}
	return dec
}

// actuate applies a decision through the node's control surfaces.
func (n *NRM) actuate(dec Decision) error {
	writeCap := func(watts float64) error {
		if a := n.cfg.Actuator; a != nil {
			err := a.WriteCap(dec.At, watts)
			if errors.Is(err, rapl.ErrAllBackendsDown) {
				// Parked at the safe cap with the deadman guarding the
				// register: the safety response already happened, so the
				// daemon stays up and re-tries next epoch rather than
				// crash-looping through its restart budget during an
				// actuation outage.
				return nil
			}
			return err
		}
		retries, err := rapl.WriteLimitRetryN(n.eng.Device(), watts, 10*time.Millisecond)
		n.counters.MSRRetries += retries
		return err
	}
	switch dec.Knob {
	case KnobNone:
		n.eng.Controller().SetManual(false)
		return writeCap(0)
	case KnobRAPL:
		n.eng.Controller().SetManual(false)
		return writeCap(dec.Setting)
	case KnobDVFS:
		n.eng.SetManualDVFS(dec.Setting)
		return nil
	default:
		return fmt.Errorf("nrm: unknown knob %v", dec.Knob)
	}
}
