// Checkpoint support for the NRM daemon, complementing the journal
// recovery path in recover.go: the journal restores the *durable*
// decision state a crashed daemon wrote ahead, while Snapshot/
// RestoreSnapshot capture the complete in-memory state — knob trials,
// phase-detector position, probation countdowns — so a forked
// simulation resumes mid-epoch-sequence bit-exactly instead of
// re-earning trust and re-running trials.

package nrm

import (
	"time"

	"progresscap/internal/model"
	"progresscap/internal/progress"
	"progresscap/internal/rapl"
	"progresscap/internal/trace"
)

// TrialState is the in-flight knob comparison (nil when none runs).
type TrialState struct {
	BudgetW   float64
	RAPLRates []float64
	DVFSRates []float64
	Committed Knob
}

// State is the complete mutable state of an NRM. The engine pointer,
// Config, journal writer, and actuator are construction wiring the
// restored daemon brings itself.
type State struct {
	Params model.Params
	Fitted bool

	Epoch     int
	BaseRate  float64
	BasePowW  float64
	BudgetW   float64
	TargetRat float64

	Trial *TrialState

	Detector     progress.PhaseDetectorState
	PriorChanges []progress.PhaseChange
	LastKnob     Knob
	LastSetting  float64
	StableEpochs int
	PhaseChanges int

	Mode          Mode
	Backoff       int
	ProbationLeft int
	CleanEpochs   int
	Transitions   []ModeTransition

	StartAt  time.Duration
	Counters Counters
	JErr     error

	Energy  rapl.EnergyReaderState
	EnergyJ float64

	Decisions []Decision
	RateTrace []trace.Point
}

// Snapshot captures the daemon's state.
func (n *NRM) Snapshot() State {
	st := State{
		Params:        n.params,
		Fitted:        n.fitted,
		Epoch:         n.epoch,
		BaseRate:      n.baseRate,
		BasePowW:      n.basePowW,
		BudgetW:       n.budgetW,
		TargetRat:     n.targetRat,
		Detector:      n.detector.Snapshot(),
		PriorChanges:  append([]progress.PhaseChange(nil), n.priorChanges...),
		LastKnob:      n.lastKnob,
		LastSetting:   n.lastSetting,
		StableEpochs:  n.stableEpochs,
		PhaseChanges:  n.phaseChanges,
		Mode:          n.mode,
		Backoff:       n.backoff,
		ProbationLeft: n.probationLeft,
		CleanEpochs:   n.cleanEpochs,
		Transitions:   append([]ModeTransition(nil), n.transitions...),
		StartAt:       n.startAt,
		Counters:      n.counters,
		JErr:          n.jErr,
		Energy:        n.energy.Snapshot(),
		EnergyJ:       n.energyJ,
		Decisions:     append([]Decision(nil), n.decisions...),
		RateTrace:     n.rateTrace.Snapshot(),
	}
	if n.trial != nil {
		st.Trial = &TrialState{
			BudgetW:   n.trial.budgetW,
			RAPLRates: append([]float64(nil), n.trial.raplRates...),
			DVFSRates: append([]float64(nil), n.trial.dvfsRates...),
			Committed: n.trial.committed,
		}
	}
	return st
}

// RestoreSnapshot pours a captured state into a freshly constructed NRM
// (same Config, engine already restored to the matching checkpoint).
func (n *NRM) RestoreSnapshot(st State) {
	n.params = st.Params
	n.fitted = st.Fitted
	n.epoch = st.Epoch
	n.baseRate = st.BaseRate
	n.basePowW = st.BasePowW
	n.budgetW = st.BudgetW
	n.targetRat = st.TargetRat
	if st.Trial != nil {
		n.trial = &trial{
			budgetW:   st.Trial.BudgetW,
			raplRates: append([]float64(nil), st.Trial.RAPLRates...),
			dvfsRates: append([]float64(nil), st.Trial.DVFSRates...),
			committed: st.Trial.Committed,
		}
	} else {
		n.trial = nil
	}
	n.detector.Restore(st.Detector)
	n.priorChanges = append([]progress.PhaseChange(nil), st.PriorChanges...)
	n.lastKnob = st.LastKnob
	n.lastSetting = st.LastSetting
	n.stableEpochs = st.StableEpochs
	n.phaseChanges = st.PhaseChanges
	n.mode = st.Mode
	n.backoff = st.Backoff
	n.probationLeft = st.ProbationLeft
	n.cleanEpochs = st.CleanEpochs
	n.transitions = append([]ModeTransition(nil), st.Transitions...)
	n.startAt = st.StartAt
	n.counters = st.Counters
	n.jErr = st.JErr
	n.energy.Restore(st.Energy)
	n.energyJ = st.EnergyJ
	n.decisions = append([]Decision(nil), st.Decisions...)
	n.rateTrace.Restore(st.RateTrace)
}
