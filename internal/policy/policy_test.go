package policy

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/msr"
)

func TestConstantScheme(t *testing.T) {
	s := Constant{Watts: 90}
	if s.CapAt(0) != 90 || s.CapAt(time.Hour) != 90 {
		t.Fatal("constant cap varies")
	}
}

func TestNoCapScheme(t *testing.T) {
	if (NoCap{}).CapAt(time.Minute) != Uncapped {
		t.Fatal("NoCap capped")
	}
}

func TestLinearScheme(t *testing.T) {
	l := Linear{Delay: 5 * time.Second, StartW: 200, MinW: 80, RateWPerSec: 10}
	if l.CapAt(0) != Uncapped || l.CapAt(4*time.Second) != Uncapped {
		t.Fatal("linear scheme capped during delay")
	}
	if got := l.CapAt(5 * time.Second); got != 200 {
		t.Fatalf("cap at start of ramp = %v", got)
	}
	if got := l.CapAt(10 * time.Second); got != 150 {
		t.Fatalf("cap at +5 s = %v, want 150", got)
	}
	if got := l.CapAt(time.Hour); got != 80 {
		t.Fatalf("cap at floor = %v, want 80", got)
	}
}

func TestLinearMonotoneNonIncreasing(t *testing.T) {
	l := Linear{Delay: 2 * time.Second, StartW: 180, MinW: 60, RateWPerSec: 7}
	prev := math.Inf(1)
	for sec := 2; sec < 40; sec++ {
		w := l.CapAt(time.Duration(sec) * time.Second)
		if w > prev {
			t.Fatalf("cap increased at %ds: %v > %v", sec, w, prev)
		}
		prev = w
	}
}

func TestStepScheme(t *testing.T) {
	s := Step{HighW: Uncapped, LowW: 100, HighFor: 10 * time.Second, LowFor: 10 * time.Second}
	if s.CapAt(0) != Uncapped || s.CapAt(9*time.Second) != Uncapped {
		t.Fatal("high phase wrong")
	}
	if s.CapAt(10*time.Second) != 100 || s.CapAt(19*time.Second) != 100 {
		t.Fatal("low phase wrong")
	}
	if s.CapAt(20*time.Second) != Uncapped { // period wraps
		t.Fatal("period wrap wrong")
	}
	if s.CapAt(35*time.Second) != 100 {
		t.Fatal("second low phase wrong")
	}
}

func TestStepZeroPeriodDegradesToLow(t *testing.T) {
	s := Step{LowW: 42}
	if s.CapAt(time.Second) != 42 {
		t.Fatal("zero-period step should hold low value")
	}
}

func TestJaggedScheme(t *testing.T) {
	j := Jagged{StartW: 200, LowW: 100, FallFor: 10 * time.Second, UncappedFor: 2 * time.Second}
	if j.CapAt(0) != Uncapped || j.CapAt(time.Second) != Uncapped {
		t.Fatal("uncapped tooth top wrong")
	}
	if got := j.CapAt(2 * time.Second); got != 200 {
		t.Fatalf("start of fall = %v", got)
	}
	if got := j.CapAt(7 * time.Second); math.Abs(got-150) > 1e-9 {
		t.Fatalf("mid fall = %v, want 150", got)
	}
	if got := j.CapAt(12 * time.Second); got != Uncapped { // wrapped to next tooth
		t.Fatalf("tooth wrap = %v, want uncapped", got)
	}
}

func TestJaggedNeverBelowLow(t *testing.T) {
	j := Jagged{StartW: 180, LowW: 90, FallFor: 7 * time.Second, UncappedFor: time.Second}
	for ms := 0; ms < 30000; ms += 100 {
		w := j.CapAt(time.Duration(ms) * time.Millisecond)
		if w != Uncapped && w < 90-1e-9 {
			t.Fatalf("cap %v below LowW at %dms", w, ms)
		}
	}
}

func TestDaemonAppliesSchemeThroughMSR(t *testing.T) {
	dev := msr.NewDevice(24, nil)
	d, err := NewDaemon(dev, Constant{Watts: 120}, time.Second, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	raw, err := dev.Read(msr.PkgPowerLimit)
	if err != nil {
		t.Fatal(err)
	}
	pl := msr.DecodePowerLimit(raw, msr.DefaultUnits())
	if !pl.Enabled || math.Abs(pl.Watts-120) > 0.5 {
		t.Fatalf("programmed limit = %+v", pl)
	}
	if d.Applied() != 1 {
		t.Fatalf("Applied = %d", d.Applied())
	}
}

func TestDaemonAnchorsSchemeAtFirstApply(t *testing.T) {
	dev := msr.NewDevice(24, nil)
	lin := Linear{Delay: 0, StartW: 200, MinW: 100, RateWPerSec: 10}
	d, err := NewDaemon(dev, lin, time.Second, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// First Apply at t=100s must see elapsed 0, i.e. StartW.
	if err := d.Apply(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	raw, _ := dev.Read(msr.PkgPowerLimit)
	pl := msr.DecodePowerLimit(raw, msr.DefaultUnits())
	if math.Abs(pl.Watts-200) > 0.5 {
		t.Fatalf("first cap = %v, want 200", pl.Watts)
	}
	// 5 s later: 150 W.
	if err := d.Apply(105 * time.Second); err != nil {
		t.Fatal(err)
	}
	raw, _ = dev.Read(msr.PkgPowerLimit)
	pl = msr.DecodePowerLimit(raw, msr.DefaultUnits())
	if math.Abs(pl.Watts-150) > 0.5 {
		t.Fatalf("cap after 5 s = %v, want 150", pl.Watts)
	}
}

func TestDaemonRecordsCapTrace(t *testing.T) {
	dev := msr.NewDevice(24, nil)
	d, _ := NewDaemon(dev, Step{HighW: Uncapped, LowW: 90, HighFor: 2 * time.Second, LowFor: 2 * time.Second},
		time.Second, 10*time.Millisecond)
	for sec := 0; sec < 6; sec++ {
		if err := d.Apply(time.Duration(sec) * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	tr := d.CapTrace()
	if tr.Len() != 6 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	want := []float64{0, 0, 90, 90, 0, 0}
	for i, w := range want {
		if tr.At(i).V != w {
			t.Fatalf("trace[%d] = %v, want %v", i, tr.At(i).V, w)
		}
	}
}

func TestNewDaemonValidation(t *testing.T) {
	dev := msr.NewDevice(1, nil)
	if _, err := NewDaemon(dev, nil, time.Second, time.Second); err == nil {
		t.Fatal("nil scheme accepted")
	}
	if _, err := NewDaemon(dev, NoCap{}, 0, time.Second); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewDaemon(dev, NoCap{}, time.Second, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestDaemonSurfacesWhitelistFailure(t *testing.T) {
	// A device whose whitelist blocks the power limit (a locked-down
	// msr-safe configuration) must surface the write failure through
	// Apply rather than silently not capping.
	dev := msr.NewDevice(4, map[uint32]uint64{})
	d, err := NewDaemon(dev, Constant{Watts: 100}, time.Second, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(0); err == nil {
		t.Fatal("Apply succeeded against a read-only whitelist")
	}
	if d.Applied() != 0 {
		t.Fatalf("Applied = %d after a failed write", d.Applied())
	}
	if d.CapTrace().Len() != 0 {
		t.Fatal("cap trace recorded a failed application")
	}
}

func TestSchemeNames(t *testing.T) {
	names := map[string]Scheme{
		"linear-decrease": Linear{},
		"step-function":   Step{},
		"jagged-edge":     Jagged{},
		"uncapped":        NoCap{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("%T.Name() = %q, want %q", s, s.Name(), want)
		}
	}
}
