// Package policy implements the paper's *power-policy* tool (§V-B): a
// daemon that monitors power and applies a dynamic power-capping scheme
// to the package domain once every second, through the whitelisted MSR
// interface.
//
// The three schemes from the paper are provided — linearly decreasing,
// step function, and jagged edge — plus constant and uncapped schemes the
// evaluation harness uses.
package policy

import (
	"fmt"
	"math"
	"time"

	"progresscap/internal/msr"
	"progresscap/internal/rapl"
	"progresscap/internal/trace"
)

// Uncapped is the watts value meaning "no limit".
const Uncapped = 0

// Scheme computes the package power cap as a function of time since the
// scheme started. A zero return (Uncapped) disables the limit.
type Scheme interface {
	Name() string
	// CapAt returns the cap in watts at elapsed time t.
	CapAt(t time.Duration) float64
}

// Constant applies a fixed cap forever.
type Constant struct {
	Watts float64
}

// Name implements Scheme.
func (c Constant) Name() string { return fmt.Sprintf("constant(%gW)", c.Watts) }

// CapAt implements Scheme.
func (c Constant) CapAt(time.Duration) float64 { return c.Watts }

// NoCap never caps.
type NoCap struct{}

// Name implements Scheme.
func (NoCap) Name() string { return "uncapped" }

// CapAt implements Scheme.
func (NoCap) CapAt(time.Duration) float64 { return Uncapped }

// Linear is the paper's linearly decreasing scheme: the node starts
// uncapped; after Delay the cap starts at StartW and decreases by
// RateWPerSec until it reaches MinW, where it stays.
type Linear struct {
	Delay       time.Duration
	StartW      float64
	MinW        float64
	RateWPerSec float64
}

// Name implements Scheme.
func (l Linear) Name() string { return "linear-decrease" }

// CapAt implements Scheme.
func (l Linear) CapAt(t time.Duration) float64 {
	if t < l.Delay {
		return Uncapped
	}
	w := l.StartW - l.RateWPerSec*(t-l.Delay).Seconds()
	if w < l.MinW {
		return l.MinW
	}
	return w
}

// Step is the paper's step-function scheme: the cap alternates between an
// uncapped (or high) level and a low level. Each level holds for
// HighFor / LowFor respectively, starting high.
type Step struct {
	HighW   float64 // Uncapped for a fully uncapped high phase
	LowW    float64
	HighFor time.Duration
	LowFor  time.Duration
}

// Name implements Scheme.
func (s Step) Name() string { return "step-function" }

// CapAt implements Scheme.
func (s Step) CapAt(t time.Duration) float64 {
	period := s.HighFor + s.LowFor
	if period <= 0 {
		return s.LowW
	}
	into := t % period
	if into < s.HighFor {
		return s.HighW
	}
	return s.LowW
}

// Jagged is the paper's jagged-edge scheme: the cap decreases linearly
// from an uncapped level to LowW and then snaps back to uncapped,
// repeating. The descent takes FallFor; the snap-back is immediate, with
// one interval uncapped at the top of each tooth.
type Jagged struct {
	StartW      float64
	LowW        float64
	FallFor     time.Duration
	UncappedFor time.Duration
}

// Name implements Scheme.
func (j Jagged) Name() string { return "jagged-edge" }

// CapAt implements Scheme.
func (j Jagged) CapAt(t time.Duration) float64 {
	period := j.UncappedFor + j.FallFor
	if period <= 0 {
		return j.LowW
	}
	into := t % period
	if into < j.UncappedFor {
		return Uncapped
	}
	frac := (into - j.UncappedFor).Seconds() / j.FallFor.Seconds()
	w := j.StartW - (j.StartW-j.LowW)*frac
	return math.Max(w, j.LowW)
}

// CapWriter is the actuation seam the daemon programs caps through: the
// default implementation writes the MSR directly (the legacy path,
// byte-identical to the pre-seam daemon), while the hardened
// rapl.Actuator is plugged in via rapl.DaemonWriter for runs that want
// retry/backoff/failover semantics or the sysfs backend.
type CapWriter interface {
	// WriteCap programs the cap (watts <= 0 releases it) with the given
	// RAPL averaging window at virtual time now.
	WriteCap(now time.Duration, watts float64, window time.Duration) error
}

// msrWriter is the default register-level CapWriter.
type msrWriter struct{ dev *msr.Device }

func (w msrWriter) WriteCap(now time.Duration, watts float64, window time.Duration) error {
	return rapl.WriteLimit(w.dev, watts, window)
}

// Daemon applies a scheme to the package power limit at a fixed interval
// (the paper's tool acts once every second). The engine drives it with
// Apply at each policy tick of virtual time.
type Daemon struct {
	writer   CapWriter
	scheme   Scheme
	interval time.Duration
	window   time.Duration
	start    time.Duration
	started  bool
	capTrace *trace.Series
	applied  uint64
}

// NewDaemon returns a daemon applying scheme through dev. interval is the
// actuation period (1 s in the paper); window the RAPL averaging window
// programmed alongside the cap.
func NewDaemon(dev *msr.Device, scheme Scheme, interval, window time.Duration) (*Daemon, error) {
	return NewDaemonVia(msrWriter{dev: dev}, scheme, interval, window)
}

// NewDaemonVia is NewDaemon actuating through an explicit CapWriter —
// the hardened actuator, a sysfs backend, or anything else that can
// program a cap.
func NewDaemonVia(w CapWriter, scheme Scheme, interval, window time.Duration) (*Daemon, error) {
	if w == nil {
		return nil, fmt.Errorf("policy: nil cap writer")
	}
	if scheme == nil {
		return nil, fmt.Errorf("policy: nil scheme")
	}
	if interval <= 0 || window <= 0 {
		return nil, fmt.Errorf("policy: non-positive interval/window")
	}
	return &Daemon{
		writer:   w,
		scheme:   scheme,
		interval: interval,
		window:   window,
		capTrace: trace.NewSeries("powercap."+scheme.Name(), "W"),
	}, nil
}

// Interval returns the actuation period.
func (d *Daemon) Interval() time.Duration { return d.interval }

// Scheme returns the active scheme.
func (d *Daemon) Scheme() Scheme { return d.scheme }

// CapTrace returns the series of applied caps (0 = uncapped).
func (d *Daemon) CapTrace() *trace.Series { return d.capTrace }

// Applied returns how many MSR writes the daemon has performed.
func (d *Daemon) Applied() uint64 { return d.applied }

// Apply evaluates the scheme at virtual time now and programs the power
// limit. The first call anchors the scheme's t=0.
func (d *Daemon) Apply(now time.Duration) error {
	if !d.started {
		d.start = now
		d.started = true
	}
	capW := d.scheme.CapAt(now - d.start)
	if err := d.writer.WriteCap(now, capW, d.window); err != nil {
		return fmt.Errorf("policy: applying %s at %v: %w", d.scheme.Name(), now, err)
	}
	d.applied++
	d.capTrace.Add(now, capW)
	return nil
}
