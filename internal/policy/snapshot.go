// Checkpoint accessors for the capping daemon. Schemes are stateless
// values, so the daemon's state is its anchor, apply count, and the cap
// trace it has emitted so far. The restored daemon is built from the
// run's own scheme — the trace series keeps its own name, which never
// appears in result signatures — and inherits the donor's points.

package policy

import (
	"time"

	"progresscap/internal/trace"
)

// DaemonState is the mutable state of a Daemon.
type DaemonState struct {
	Start    time.Duration
	Started  bool
	Applied  uint64
	CapTrace []trace.Point
}

// Snapshot captures the daemon's state.
func (d *Daemon) Snapshot() DaemonState {
	return DaemonState{
		Start:    d.start,
		Started:  d.started,
		Applied:  d.applied,
		CapTrace: d.capTrace.Snapshot(),
	}
}

// Restore pours a captured state back.
func (d *Daemon) Restore(s DaemonState) {
	d.start = s.Start
	d.started = s.Started
	d.applied = s.Applied
	d.capTrace.Restore(s.CapTrace)
}
