// Package msr emulates the model-specific register interface the paper's
// power-policy tool uses through libmsr and the msr-safe kernel module.
//
// The emulated device exposes the package-domain RAPL registers
// (RAPL_POWER_UNIT, PKG_POWER_LIMIT, PKG_ENERGY_STATUS), the P-state
// registers (IA32_PERF_STATUS / IA32_PERF_CTL), and the clock-modulation
// register used for dynamic duty cycle modulation (DDCM). Writes go
// through an msr-safe style whitelist of per-register write masks, so the
// policy daemon manipulates power exactly the way the real tool does: by
// encoding bit fields into registers, never by touching simulator state
// directly.
package msr

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Register addresses (Intel SDM numbering).
const (
	RaplPowerUnit    uint32 = 0x606 // MSR_RAPL_POWER_UNIT
	PkgPowerLimit    uint32 = 0x610 // MSR_PKG_POWER_LIMIT
	PkgEnergyStatus  uint32 = 0x611 // MSR_PKG_ENERGY_STATUS
	DramEnergyStatus uint32 = 0x619 // MSR_DRAM_ENERGY_STATUS
	PerfStatus       uint32 = 0x198 // IA32_PERF_STATUS (per core)
	PerfCtl          uint32 = 0x199 // IA32_PERF_CTL (per core)
	ClockModulation  uint32 = 0x19A // IA32_CLOCK_MODULATION (per core)
)

// perCore reports whether an MSR is replicated per core rather than per
// package.
func perCore(addr uint32) bool {
	switch addr {
	case PerfStatus, PerfCtl, ClockModulation:
		return true
	}
	return false
}

// ErrNotWhitelisted is wrapped by write errors for registers or bits the
// whitelist does not allow.
type ErrNotWhitelisted struct {
	Addr uint32
	Bits uint64 // offending bits, 0 when the whole register is blocked
}

func (e *ErrNotWhitelisted) Error() string {
	if e.Bits == 0 {
		return fmt.Sprintf("msr: register 0x%x is not writable", e.Addr)
	}
	return fmt.Sprintf("msr: write to 0x%x touches non-whitelisted bits %#x", e.Addr, e.Bits)
}

// ErrIO is the transient I/O error an MSR access can fail with, the
// emulated analogue of the EIO an msr-safe read/write occasionally
// returns on real hardware. Callers should treat it as retryable.
var ErrIO = errors.New("msr: transient I/O error (EIO)")

// FaultOp distinguishes reads from writes for the fault hook.
type FaultOp int

// Fault hook operations.
const (
	OpRead FaultOp = iota
	OpWrite
)

// FaultClass is the fault a hook asks the device to exhibit for one
// access.
type FaultClass int

// Injectable access faults.
const (
	// FaultNone performs the access normally.
	FaultNone FaultClass = iota
	// FaultStale serves the value of the previous successful read of the
	// same register instead of the current one (no effect on writes, or
	// when the register was never read).
	FaultStale
	// FaultEIO fails the access with ErrIO without touching the register.
	FaultEIO
)

// FaultHook lets a fault-injection layer perturb individual accesses.
// It must be deterministic for reproducible runs.
type FaultHook func(op FaultOp, addr uint32) FaultClass

// Device is an emulated MSR file for one package with n cores.
// It is safe for concurrent use.
type Device struct {
	mu        sync.Mutex
	cores     int
	pkg       map[uint32]uint64
	core      []map[uint32]uint64
	writeMask map[uint32]uint64
	writes    uint64
	reads     uint64
	// writeSeq counts successful whitelisted writes per register — the
	// freshness signal the RAPL deadman watches to tell a live policy
	// daemon (which re-arms its cap) from a dead one (whose stale cap
	// must expire). Pokes are hardware-side and do not advance it.
	writeSeq map[uint32]uint64

	faultHook FaultHook
	// stale holds, per register scope, the value returned by the previous
	// successful read — what a FaultStale access serves.
	stalePkg  map[uint32]uint64
	staleCore []map[uint32]uint64
}

// DefaultWhitelist mirrors the msr-safe configuration the paper's setup
// needs: the power limit is fully writable (both the PL1 and PL2
// windows), P-state control and clock modulation are writable,
// everything else is read-only.
func DefaultWhitelist() map[uint32]uint64 {
	return map[uint32]uint64{
		PkgPowerLimit:   0x00FFFFFF_00FFFFFF, // PL1 + PL2: power, enable, clamp, window
		PerfCtl:         0x0000FF00,          // target ratio
		ClockModulation: 0x0000001F,          // duty level + enable
	}
}

// NewDevice returns a device for cores cores using the given write
// whitelist (register -> writable-bit mask). A nil whitelist uses
// DefaultWhitelist. The RAPL unit register is initialized to standard
// Skylake units.
func NewDevice(cores int, whitelist map[uint32]uint64) *Device {
	if cores <= 0 {
		panic("msr: device needs at least one core")
	}
	if whitelist == nil {
		whitelist = DefaultWhitelist()
	}
	d := &Device{
		cores:     cores,
		pkg:       make(map[uint32]uint64),
		core:      make([]map[uint32]uint64, cores),
		writeMask: whitelist,
		writeSeq:  make(map[uint32]uint64),
		stalePkg:  make(map[uint32]uint64),
		staleCore: make([]map[uint32]uint64, cores),
	}
	for i := range d.core {
		d.core[i] = make(map[uint32]uint64)
		d.staleCore[i] = make(map[uint32]uint64)
	}
	d.pkg[RaplPowerUnit] = DefaultUnits().encode()
	d.pkg[PkgPowerLimit] = 0
	d.pkg[PkgEnergyStatus] = 0
	return d
}

// Cores returns the number of cores the device models.
func (d *Device) Cores() int { return d.cores }

// SetFaultHook installs (or, with nil, removes) the access fault hook.
// Without a hook the device behaves perfectly; installing one is the only
// way accesses can fail transiently.
func (d *Device) SetFaultHook(h FaultHook) {
	d.mu.Lock()
	d.faultHook = h
	d.mu.Unlock()
}

// Read returns the value of a package-scope MSR.
func (d *Device) Read(addr uint32) (uint64, error) {
	return d.ReadCore(0, addr)
}

// ReadCore returns the value of an MSR as seen from the given core.
// Package-scope registers ignore the core index (after validation).
func (d *Device) ReadCore(cpu int, addr uint32) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cpu < 0 || cpu >= d.cores {
		return 0, fmt.Errorf("msr: core %d out of range [0,%d)", cpu, d.cores)
	}
	d.reads++
	var m, stale map[uint32]uint64
	if perCore(addr) {
		m = d.core[cpu]
		stale = d.staleCore[cpu]
	} else {
		m = d.pkg
		stale = d.stalePkg
	}
	v, ok := m[addr]
	if !ok {
		return 0, fmt.Errorf("msr: read of unimplemented register 0x%x", addr)
	}
	if d.faultHook != nil {
		switch d.faultHook(OpRead, addr) {
		case FaultEIO:
			return 0, ErrIO
		case FaultStale:
			if old, seen := stale[addr]; seen {
				return old, nil
			}
		}
	}
	stale[addr] = v
	return v, nil
}

// Write stores a value into a package-scope MSR, enforcing the whitelist.
func (d *Device) Write(addr uint32, v uint64) error {
	return d.WriteCore(0, addr, v)
}

// WriteCore stores a value into an MSR on the given core, enforcing the
// whitelist: the register must be whitelisted, and the write may only
// change whitelisted bits.
func (d *Device) WriteCore(cpu int, addr uint32, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cpu < 0 || cpu >= d.cores {
		return fmt.Errorf("msr: core %d out of range [0,%d)", cpu, d.cores)
	}
	if d.faultHook != nil && d.faultHook(OpWrite, addr) == FaultEIO {
		return ErrIO
	}
	mask, ok := d.writeMask[addr]
	if !ok {
		return &ErrNotWhitelisted{Addr: addr}
	}
	var m map[uint32]uint64
	if perCore(addr) {
		m = d.core[cpu]
	} else {
		m = d.pkg
	}
	old := m[addr]
	if changed := (old ^ v) &^ mask; changed != 0 {
		return &ErrNotWhitelisted{Addr: addr, Bits: changed}
	}
	d.writes++
	d.writeSeq[addr]++
	m[addr] = v
	return nil
}

// WriteSeq returns how many successful whitelisted writes the register
// has received. Failed writes (EIO, whitelist violations) and hardware
// Pokes do not count, so a consumer watching the sequence sees exactly
// the policy side's live re-arms.
func (d *Device) WriteSeq(addr uint32) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeSeq[addr]
}

// Poke bypasses the whitelist; it is how the hardware side of the
// simulation (the RAPL emulator) updates read-only registers like energy
// status and PERF_STATUS. Policy code must never call it.
func (d *Device) Poke(addr uint32, v uint64) {
	d.PokeCore(0, addr, v)
}

// PokeCore is Poke for per-core registers.
func (d *Device) PokeCore(cpu int, addr uint32, v uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cpu < 0 || cpu >= d.cores {
		panic(fmt.Sprintf("msr: Poke on core %d out of range", cpu))
	}
	if perCore(addr) {
		d.core[cpu][addr] = v
	} else {
		d.pkg[addr] = v
	}
}

// Counts returns the number of whitelisted writes and reads performed,
// for instrumentation-overhead accounting.
func (d *Device) Counts() (writes, reads uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, d.reads
}

// Units describes the RAPL unit register: power in 1/2^PowerBits W,
// energy in 1/2^EnergyBits J, time in 1/2^TimeBits s.
type Units struct {
	PowerBits  uint
	EnergyBits uint
	TimeBits   uint
}

// DefaultUnits returns the standard Skylake-server units: 1/8 W,
// ~61 µJ, ~977 µs.
func DefaultUnits() Units {
	return Units{PowerBits: 3, EnergyBits: 14, TimeBits: 10}
}

func (u Units) encode() uint64 {
	return uint64(u.PowerBits&0xF) |
		uint64(u.EnergyBits&0x1F)<<8 |
		uint64(u.TimeBits&0xF)<<16
}

// DecodeUnits parses the RAPL_POWER_UNIT register value.
func DecodeUnits(v uint64) Units {
	return Units{
		PowerBits:  uint(v & 0xF),
		EnergyBits: uint(v >> 8 & 0x1F),
		TimeBits:   uint(v >> 16 & 0xF),
	}
}

// PowerUnit returns the power LSB in watts.
func (u Units) PowerUnit() float64 { return 1 / float64(uint64(1)<<u.PowerBits) }

// EnergyUnit returns the energy LSB in joules.
func (u Units) EnergyUnit() float64 { return 1 / float64(uint64(1)<<u.EnergyBits) }

// TimeUnit returns the time LSB in seconds.
func (u Units) TimeUnit() float64 { return 1 / float64(uint64(1)<<u.TimeBits) }

// PowerLimit is the decoded PKG_POWER_LIMIT PL1 window.
type PowerLimit struct {
	Watts         float64
	Enabled       bool
	Clamp         bool
	WindowSeconds float64
}

// EncodePowerLimits packs the PL1 (sustained, low 32 bits) and PL2
// (burst, high 32 bits) windows into the PKG_POWER_LIMIT register.
func EncodePowerLimits(pl1, pl2 PowerLimit, u Units) uint64 {
	return EncodePowerLimit(pl1, u) | EncodePowerLimit(pl2, u)<<32
}

// DecodePowerLimits unpacks both windows of PKG_POWER_LIMIT.
func DecodePowerLimits(v uint64, u Units) (pl1, pl2 PowerLimit) {
	return DecodePowerLimit(v&0xFFFFFFFF, u), DecodePowerLimit(v>>32, u)
}

// EncodePowerLimit packs a power limit into the register format using the
// given units. The power field saturates at its 15-bit range; the time
// window uses the Y * (1 + Z/4) SDM encoding.
func EncodePowerLimit(pl PowerLimit, u Units) uint64 {
	powerRaw := uint64(math.Round(pl.Watts / u.PowerUnit()))
	if powerRaw > 0x7FFF {
		powerRaw = 0x7FFF
	}
	v := powerRaw
	if pl.Enabled {
		v |= 1 << 15
	}
	if pl.Clamp {
		v |= 1 << 16
	}
	y, z := encodeTimeWindow(pl.WindowSeconds, u)
	v |= uint64(y&0x1F) << 17
	v |= uint64(z&0x3) << 22
	return v
}

// DecodePowerLimit unpacks a PKG_POWER_LIMIT value.
func DecodePowerLimit(v uint64, u Units) PowerLimit {
	y := uint(v >> 17 & 0x1F)
	z := uint(v >> 22 & 0x3)
	return PowerLimit{
		Watts:         float64(v&0x7FFF) * u.PowerUnit(),
		Enabled:       v>>15&1 == 1,
		Clamp:         v>>16&1 == 1,
		WindowSeconds: u.TimeUnit() * float64(uint64(1)<<y) * (1 + float64(z)/4),
	}
}

// encodeTimeWindow finds (Y, Z) with window ≈ 2^Y * (1 + Z/4) * timeUnit.
func encodeTimeWindow(seconds float64, u Units) (y, z uint) {
	if seconds <= 0 {
		return 0, 0
	}
	target := seconds / u.TimeUnit()
	bestY, bestZ, bestErr := uint(0), uint(0), math.Inf(1)
	for yy := uint(0); yy < 32; yy++ {
		for zz := uint(0); zz < 4; zz++ {
			val := float64(uint64(1)<<yy) * (1 + float64(zz)/4)
			if err := math.Abs(val - target); err < bestErr {
				bestY, bestZ, bestErr = yy, zz, err
			}
		}
	}
	return bestY, bestZ
}

// EnergyCounter maintains a RAPL-style 32-bit wrapping energy counter.
type EnergyCounter struct {
	units Units
	raw   uint64 // full-resolution accumulated energy in energy units
	frac  float64
}

// NewEnergyCounter returns a counter using the given units.
func NewEnergyCounter(u Units) *EnergyCounter {
	return &EnergyCounter{units: u}
}

// AddJoules accumulates energy; fractional units carry over so no energy
// is lost to truncation.
func (c *EnergyCounter) AddJoules(j float64) {
	if j < 0 {
		panic("msr: negative energy")
	}
	units := j/c.units.EnergyUnit() + c.frac
	whole := math.Floor(units)
	c.frac = units - whole
	c.raw += uint64(whole)
}

// Raw returns the register image: the low 32 bits of the accumulated
// count, as the hardware exposes it.
func (c *EnergyCounter) Raw() uint64 { return c.raw & 0xFFFFFFFF }

// SeedRaw positions the counter at an arbitrary raw value. A node does
// not boot with a zeroed energy counter, so consumers must tolerate an
// early 32-bit wraparound; fault plans use this to start the counter just
// below the wrap point.
func (c *EnergyCounter) SeedRaw(raw uint64) { c.raw = raw }

// EnergyWrapModulus is the modulus of the hardware energy counters: the
// register image wraps at 32 bits regardless of the unit scale.
const EnergyWrapModulus = uint64(1) << 32

// WrapDelta returns the forward distance from prev to cur on a counter
// that wraps at modulus, assuming the counter advanced by less than one
// full modulus between the two observations (reads must be frequent
// enough that it wraps at most once, as with real RAPL). It is the one
// wrap-math primitive shared by every energy consumer: the register-level
// readers (32-bit raw counts) and the powercap sysfs backend (µJ values
// wrapping at max_energy_range_uj). modulus must be nonzero.
func WrapDelta(prev, cur, modulus uint64) uint64 {
	prev %= modulus
	cur %= modulus
	if cur >= prev {
		return cur - prev
	}
	return modulus - prev + cur
}

// DeltaJoules returns the energy consumed between two successive register
// reads, handling 32-bit wraparound exactly once (reads must be frequent
// enough that the counter wraps at most once between them, as with real
// RAPL).
func DeltaJoules(prev, cur uint64, u Units) float64 {
	return float64(WrapDelta(prev, cur, EnergyWrapModulus)) * u.EnergyUnit()
}

// RatioFromMHz converts a core frequency to the 100 MHz bus-ratio encoding
// used by PERF_STATUS/PERF_CTL.
func RatioFromMHz(mhz float64) uint64 {
	r := uint64(math.Round(mhz / 100))
	if r > 0xFF {
		r = 0xFF
	}
	return r << 8
}

// MHzFromRatio decodes a PERF_STATUS/PERF_CTL value to MHz.
func MHzFromRatio(v uint64) float64 {
	return float64(v>>8&0xFF) * 100
}

// ClockMod is the decoded IA32_CLOCK_MODULATION register (extended
// 6.25 %-granularity form).
type ClockMod struct {
	Enabled bool
	Level   uint // 1..15, duty cycle = Level/16; 0 is reserved
}

// DutyCycle returns the effective duty cycle in (0, 1]. Disabled or
// reserved-level modulation means full duty.
func (c ClockMod) DutyCycle() float64 {
	if !c.Enabled || c.Level == 0 {
		return 1
	}
	return float64(c.Level) / 16
}

// EncodeClockMod packs the register value.
func EncodeClockMod(c ClockMod) uint64 {
	v := uint64(c.Level & 0xF)
	if c.Enabled {
		v |= 1 << 4
	}
	return v
}

// DecodeClockMod unpacks the register value.
func DecodeClockMod(v uint64) ClockMod {
	return ClockMod{Enabled: v>>4&1 == 1, Level: uint(v & 0xF)}
}
