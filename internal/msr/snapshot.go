// Checkpoint accessors for the emulated MSR device and the wrapping
// energy counters. The register file, access statistics, write sequences
// (the deadman's freshness signal), and per-scope stale-read images are
// all semantic state a forked run must inherit bit-exactly; the write
// whitelist and fault hook are construction/installation-time wiring the
// restoring engine re-creates itself.

package msr

// DeviceState is a deep copy of a Device's mutable state.
type DeviceState struct {
	Pkg       map[uint32]uint64
	Core      []map[uint32]uint64
	Writes    uint64
	Reads     uint64
	WriteSeq  map[uint32]uint64
	StalePkg  map[uint32]uint64
	StaleCore []map[uint32]uint64
}

func copyRegs(m map[uint32]uint64) map[uint32]uint64 {
	out := make(map[uint32]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyCoreRegs(ms []map[uint32]uint64) []map[uint32]uint64 {
	out := make([]map[uint32]uint64, len(ms))
	for i, m := range ms {
		out[i] = copyRegs(m)
	}
	return out
}

// Snapshot captures the device's register file and access accounting.
func (d *Device) Snapshot() DeviceState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeviceState{
		Pkg:       copyRegs(d.pkg),
		Core:      copyCoreRegs(d.core),
		Writes:    d.writes,
		Reads:     d.reads,
		WriteSeq:  copyRegs(d.writeSeq),
		StalePkg:  copyRegs(d.stalePkg),
		StaleCore: copyCoreRegs(d.staleCore),
	}
}

// Restore pours a captured register file back. The state must come from
// a device with the same core count.
func (d *Device) Restore(s DeviceState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(s.Core) != d.cores || len(s.StaleCore) != d.cores {
		panic("msr: device state core count mismatch")
	}
	d.pkg = copyRegs(s.Pkg)
	d.core = copyCoreRegs(s.Core)
	d.writes = s.Writes
	d.reads = s.Reads
	d.writeSeq = copyRegs(s.WriteSeq)
	d.stalePkg = copyRegs(s.StalePkg)
	d.staleCore = copyCoreRegs(s.StaleCore)
}

// EnergyCounterState is the full-resolution position of an EnergyCounter
// (Raw here is the unmasked accumulator, not the 32-bit register image).
type EnergyCounterState struct {
	Raw  uint64
	Frac float64
}

// Snapshot captures the counter's position.
func (c *EnergyCounter) Snapshot() EnergyCounterState {
	return EnergyCounterState{Raw: c.raw, Frac: c.frac}
}

// Restore pours a captured position back. Units stay as constructed.
func (c *EnergyCounter) Restore(s EnergyCounterState) {
	c.raw = s.Raw
	c.frac = s.Frac
}
