package msr

import (
	"math"
	"testing"
)

// TestWrapDelta pins the shared wrap-math primitive on both moduli it is
// deployed with: the 32-bit register image and the µJ-scale powercap
// range.
func TestWrapDelta(t *testing.T) {
	const ujMod = (uint64(1) << 32) * 1_000_000 >> 14 // max_energy_range_uj for EnergyBits=14
	cases := []struct {
		name             string
		prev, cur, mod   uint64
		want             uint64
	}{
		{"no-wrap", 100, 250, EnergyWrapModulus, 150},
		{"equal", 7, 7, EnergyWrapModulus, 0},
		{"wrap-once", EnergyWrapModulus - 10, 5, EnergyWrapModulus, 15},
		{"wrap-at-edge", EnergyWrapModulus - 1, 0, EnergyWrapModulus, 1},
		{"high-bits-ignored", (1 << 40) | 100, (1 << 41) | 250, EnergyWrapModulus, 150},
		{"uj-no-wrap", 1_000_000, 3_500_000, ujMod, 2_500_000},
		{"uj-wrap", ujMod - 1_000, 2_000, ujMod, 3_000},
	}
	for _, c := range cases {
		if got := WrapDelta(c.prev, c.cur, c.mod); got != c.want {
			t.Errorf("%s: WrapDelta(%d, %d, %d) = %d, want %d", c.name, c.prev, c.cur, c.mod, got, c.want)
		}
	}
}

// TestWrapDeltaMatchesDeltaJoules proves the refactored DeltaJoules is
// numerically identical to the pre-helper wrap arithmetic across the
// wrap boundary, so no cached energy accounting shifted.
func TestWrapDeltaMatchesDeltaJoules(t *testing.T) {
	u := DefaultUnits()
	legacy := func(prev, cur uint64) float64 {
		prev &= 0xFFFFFFFF
		cur &= 0xFFFFFFFF
		var d uint64
		if cur >= prev {
			d = cur - prev
		} else {
			d = (1<<32 - prev) + cur
		}
		return float64(d) * u.EnergyUnit()
	}
	for _, pair := range [][2]uint64{
		{0, 0}, {0, 1}, {12345, 999999}, {0xFFFFFFFF, 0}, {0xFFFFFF00, 0x80},
		{1 << 33, (1 << 33) + 500}, {0xFFFFFFFE, 0xFFFFFFFF},
	} {
		got := DeltaJoules(pair[0], pair[1], u)
		want := legacy(pair[0], pair[1])
		if math.Abs(got-want) > 0 {
			t.Errorf("DeltaJoules(%d, %d) = %g, legacy %g", pair[0], pair[1], got, want)
		}
	}
}
