package msr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceReadDefaults(t *testing.T) {
	d := NewDevice(24, nil)
	if d.Cores() != 24 {
		t.Fatalf("Cores = %d", d.Cores())
	}
	v, err := d.Read(RaplPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	u := DecodeUnits(v)
	if u != DefaultUnits() {
		t.Fatalf("units = %+v, want %+v", u, DefaultUnits())
	}
}

func TestDeviceUnimplementedRead(t *testing.T) {
	d := NewDevice(1, nil)
	if _, err := d.Read(0xDEAD); err == nil {
		t.Fatal("read of unimplemented register succeeded")
	}
}

func TestDeviceWhitelistedWrite(t *testing.T) {
	d := NewDevice(2, nil)
	pl := EncodePowerLimit(PowerLimit{Watts: 120, Enabled: true, WindowSeconds: 0.01}, DefaultUnits())
	if err := d.Write(PkgPowerLimit, pl); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(PkgPowerLimit)
	if err != nil {
		t.Fatal(err)
	}
	if got != pl {
		t.Fatalf("readback = %#x, want %#x", got, pl)
	}
}

func TestDeviceNonWhitelistedRegisterRejected(t *testing.T) {
	d := NewDevice(1, nil)
	err := d.Write(PkgEnergyStatus, 1)
	var nw *ErrNotWhitelisted
	if !errors.As(err, &nw) {
		t.Fatalf("err = %v, want ErrNotWhitelisted", err)
	}
	if nw.Addr != PkgEnergyStatus || nw.Bits != 0 {
		t.Fatalf("err detail = %+v", nw)
	}
}

func TestDeviceNonWhitelistedBitsRejected(t *testing.T) {
	d := NewDevice(1, nil)
	// Bit 63 of PKG_POWER_LIMIT (lock bit) is outside the whitelist mask.
	err := d.Write(PkgPowerLimit, 1<<63)
	var nw *ErrNotWhitelisted
	if !errors.As(err, &nw) {
		t.Fatalf("err = %v, want ErrNotWhitelisted", err)
	}
	if nw.Bits != 1<<63 {
		t.Fatalf("offending bits = %#x", nw.Bits)
	}
}

func TestDevicePerCoreIsolation(t *testing.T) {
	d := NewDevice(4, nil)
	if err := d.WriteCore(1, PerfCtl, RatioFromMHz(2600)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCore(2, PerfCtl, RatioFromMHz(1200)); err != nil {
		t.Fatal(err)
	}
	v1, err := d.ReadCore(1, PerfCtl)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d.ReadCore(2, PerfCtl)
	if err != nil {
		t.Fatal(err)
	}
	if MHzFromRatio(v1) != 2600 || MHzFromRatio(v2) != 1200 {
		t.Fatalf("core values = %v, %v", MHzFromRatio(v1), MHzFromRatio(v2))
	}
}

func TestDeviceCoreRangeChecks(t *testing.T) {
	d := NewDevice(2, nil)
	if _, err := d.ReadCore(2, PerfStatus); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := d.WriteCore(-1, PerfCtl, 0); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestDevicePokeBypassesWhitelist(t *testing.T) {
	d := NewDevice(1, nil)
	d.Poke(PkgEnergyStatus, 12345)
	v, err := d.Read(PkgEnergyStatus)
	if err != nil || v != 12345 {
		t.Fatalf("Read = %v, %v", v, err)
	}
	d.PokeCore(0, PerfStatus, RatioFromMHz(3300))
	v, err = d.ReadCore(0, PerfStatus)
	if err != nil || MHzFromRatio(v) != 3300 {
		t.Fatalf("PerfStatus = %v, %v", v, err)
	}
}

func TestDeviceCounts(t *testing.T) {
	d := NewDevice(1, nil)
	_, _ = d.Read(RaplPowerUnit)
	_ = d.Write(PkgPowerLimit, 0)
	w, r := d.Counts()
	if w != 1 || r != 1 {
		t.Fatalf("Counts = %d,%d", w, r)
	}
}

func TestDeviceZeroCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice(0) did not panic")
		}
	}()
	NewDevice(0, nil)
}

func TestPowerLimitRoundTrip(t *testing.T) {
	u := DefaultUnits()
	in := PowerLimit{Watts: 97.5, Enabled: true, Clamp: true, WindowSeconds: 0.009765625}
	out := DecodePowerLimit(EncodePowerLimit(in, u), u)
	if math.Abs(out.Watts-in.Watts) > u.PowerUnit()/2 {
		t.Fatalf("watts = %v, want %v", out.Watts, in.Watts)
	}
	if out.Enabled != in.Enabled || out.Clamp != in.Clamp {
		t.Fatalf("flags = %+v", out)
	}
	if math.Abs(out.WindowSeconds-in.WindowSeconds) > in.WindowSeconds/8 {
		t.Fatalf("window = %v, want ~%v", out.WindowSeconds, in.WindowSeconds)
	}
}

func TestPowerLimitSaturation(t *testing.T) {
	u := DefaultUnits()
	out := DecodePowerLimit(EncodePowerLimit(PowerLimit{Watts: 1e9}, u), u)
	if out.Watts != float64(0x7FFF)*u.PowerUnit() {
		t.Fatalf("saturated watts = %v", out.Watts)
	}
}

// Property: encode/decode round-trips watts within half a power unit for
// the representable range, and flags exactly.
func TestPowerLimitRoundTripProperty(t *testing.T) {
	u := DefaultUnits()
	maxW := float64(0x7FFF) * u.PowerUnit()
	prop := func(rawW uint16, en, cl bool) bool {
		w := float64(rawW) / 65535 * maxW
		in := PowerLimit{Watts: w, Enabled: en, Clamp: cl, WindowSeconds: 0.01}
		out := DecodePowerLimit(EncodePowerLimit(in, u), u)
		return math.Abs(out.Watts-w) <= u.PowerUnit()/2+1e-9 &&
			out.Enabled == en && out.Clamp == cl
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitsValues(t *testing.T) {
	u := DefaultUnits()
	if u.PowerUnit() != 0.125 {
		t.Fatalf("PowerUnit = %v", u.PowerUnit())
	}
	if math.Abs(u.EnergyUnit()-6.103515625e-5) > 1e-12 {
		t.Fatalf("EnergyUnit = %v", u.EnergyUnit())
	}
	if math.Abs(u.TimeUnit()-9.765625e-4) > 1e-12 {
		t.Fatalf("TimeUnit = %v", u.TimeUnit())
	}
}

func TestEnergyCounterAccumulates(t *testing.T) {
	u := DefaultUnits()
	c := NewEnergyCounter(u)
	prev := c.Raw()
	c.AddJoules(10)
	got := DeltaJoules(prev, c.Raw(), u)
	if math.Abs(got-10) > 2*u.EnergyUnit() {
		t.Fatalf("delta = %v, want ~10", got)
	}
}

func TestEnergyCounterFractionCarry(t *testing.T) {
	u := DefaultUnits()
	c := NewEnergyCounter(u)
	// Add 10000 slivers each smaller than one energy unit.
	sliver := u.EnergyUnit() / 3
	for i := 0; i < 10000; i++ {
		c.AddJoules(sliver)
	}
	want := sliver * 10000
	got := DeltaJoules(0, c.Raw(), u)
	if math.Abs(got-want) > 2*u.EnergyUnit() {
		t.Fatalf("accumulated %v, want ~%v (truncation lost energy)", got, want)
	}
}

func TestEnergyCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative energy did not panic")
		}
	}()
	NewEnergyCounter(DefaultUnits()).AddJoules(-1)
}

func TestDeltaJoulesWraparound(t *testing.T) {
	u := DefaultUnits()
	prev := uint64(0xFFFFFFF0)
	cur := uint64(0x10)
	want := float64(0x20) * u.EnergyUnit()
	if got := DeltaJoules(prev, cur, u); math.Abs(got-want) > 1e-12 {
		t.Fatalf("wrap delta = %v, want %v", got, want)
	}
}

func TestRatioRoundTrip(t *testing.T) {
	for _, mhz := range []float64{1000, 1600, 2600, 3300} {
		if got := MHzFromRatio(RatioFromMHz(mhz)); got != mhz {
			t.Fatalf("ratio round trip %v -> %v", mhz, got)
		}
	}
	// Values quantize to 100 MHz.
	if got := MHzFromRatio(RatioFromMHz(2550)); got != 2600 && got != 2500 {
		t.Fatalf("2550 quantized to %v", got)
	}
}

func TestClockModDutyCycle(t *testing.T) {
	if (ClockMod{Enabled: false, Level: 8}).DutyCycle() != 1 {
		t.Fatal("disabled modulation should be full duty")
	}
	if (ClockMod{Enabled: true, Level: 0}).DutyCycle() != 1 {
		t.Fatal("reserved level 0 should be full duty")
	}
	if got := (ClockMod{Enabled: true, Level: 8}).DutyCycle(); got != 0.5 {
		t.Fatalf("level 8 duty = %v, want 0.5", got)
	}
}

func TestClockModRoundTrip(t *testing.T) {
	for lvl := uint(0); lvl < 16; lvl++ {
		for _, en := range []bool{false, true} {
			in := ClockMod{Enabled: en, Level: lvl}
			if out := DecodeClockMod(EncodeClockMod(in)); out != in {
				t.Fatalf("round trip %+v -> %+v", in, out)
			}
		}
	}
}

// TestWriteSeqTracksOnlySuccessfulPolicyWrites: the deadman's freshness
// signal must advance on whitelisted writes only — not on hardware
// Pokes, not on EIO-failed writes, not on whitelist violations.
func TestWriteSeqTracksOnlySuccessfulPolicyWrites(t *testing.T) {
	d := NewDevice(2, nil)
	if d.WriteSeq(PkgPowerLimit) != 0 {
		t.Fatal("fresh device has nonzero write seq")
	}
	if err := d.Write(PkgPowerLimit, 0x8078); err != nil {
		t.Fatal(err)
	}
	if d.WriteSeq(PkgPowerLimit) != 1 {
		t.Fatalf("seq = %d after one write", d.WriteSeq(PkgPowerLimit))
	}
	// Hardware-side Poke must not advance the sequence.
	d.Poke(PkgPowerLimit, 0x1234)
	if d.WriteSeq(PkgPowerLimit) != 1 {
		t.Fatal("Poke advanced the write sequence")
	}
	// A non-whitelisted write must not advance it.
	if err := d.Write(PkgEnergyStatus, 1); err == nil {
		t.Fatal("energy status write allowed")
	}
	if d.WriteSeq(PkgEnergyStatus) != 0 {
		t.Fatal("rejected write advanced the sequence")
	}
	// An EIO-failed write must not advance it.
	d.SetFaultHook(func(op FaultOp, addr uint32) FaultClass {
		if op == OpWrite {
			return FaultEIO
		}
		return FaultNone
	})
	if err := d.Write(PkgPowerLimit, 0x8078); err != ErrIO {
		t.Fatalf("expected EIO, got %v", err)
	}
	if d.WriteSeq(PkgPowerLimit) != 1 {
		t.Fatal("failed write advanced the sequence")
	}
}
