// Package mpi is a miniature message-passing runtime — the repository's
// stand-in for the MPI library the paper's applications are built on.
// Ranks are goroutines inside one process; the API mirrors the MPI calls
// the paper's code sample (Listing 1) and applications use: rank/size
// queries, point-to-point send/receive with tags, barrier, broadcast,
// reduce, allreduce, and Wtime.
//
// Sends are asynchronous (buffered); receives match on (source, tag) with
// wildcard support. The runtime is deliberately strict about misuse:
// out-of-range ranks panic, and Run reports an error if any rank's body
// returns one or panics.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// AnySource and AnyTag are wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case Sum:
		return a + b
	case Max:
		if a > b {
			return a
		}
		return b
	case Min:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
	}
}

type message struct {
	from, tag int
	data      interface{}
}

type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(m message) {
	ib.mu.Lock()
	ib.pending = append(ib.pending, m)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

func (ib *inbox) take(from, tag int) message {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i, m := range ib.pending {
			if (from == AnySource || m.from == from) && (tag == AnyTag || m.tag == tag) {
				ib.pending = append(ib.pending[:i], ib.pending[i+1:]...)
				return m
			}
		}
		ib.cond.Wait()
	}
}

// world is the shared state of one Run.
type world struct {
	size    int
	inboxes []*inbox
	epoch   time.Time

	barMu   sync.Mutex
	barCond *sync.Cond
	barGen  int
	barCnt  int
}

// Comm is one rank's handle on the communicator.
type Comm struct {
	w    *world
	rank int
}

// Rank returns the calling rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// Wtime returns seconds since the communicator was created (MPI_Wtime
// semantics).
func (c *Comm) Wtime() float64 { return time.Since(c.w.epoch).Seconds() }

func (c *Comm) check(rank int, what string) {
	if rank < 0 || rank >= c.w.size {
		panic(fmt.Sprintf("mpi: %s rank %d out of range [0,%d)", what, rank, c.w.size))
	}
}

// Send delivers data to rank `to` with the given tag. It never blocks.
func (c *Comm) Send(to, tag int, data interface{}) {
	c.check(to, "destination")
	c.w.inboxes[to].put(message{from: c.rank, tag: tag, data: data})
}

// Recv blocks until a message matching (from, tag) arrives and returns
// its payload and envelope. Use AnySource / AnyTag as wildcards.
func (c *Comm) Recv(from, tag int) (data interface{}, source, msgTag int) {
	if from != AnySource {
		c.check(from, "source")
	}
	m := c.w.inboxes[c.rank].take(from, tag)
	return m.data, m.from, m.tag
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.w
	w.barMu.Lock()
	gen := w.barGen
	w.barCnt++
	if w.barCnt == w.size {
		w.barCnt = 0
		w.barGen++
		w.barCond.Broadcast()
	} else {
		for gen == w.barGen {
			w.barCond.Wait()
		}
	}
	w.barMu.Unlock()
}

// internal collective tags live above any user tag space.
const (
	tagBcast = 1 << 30
	tagGath  = 1<<30 + 1
	tagScat  = 1<<30 + 2
)

// Bcast distributes root's value to every rank and returns it. Non-root
// callers' data argument is ignored.
func (c *Comm) Bcast(root int, data interface{}) interface{} {
	c.check(root, "root")
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		return data
	}
	v, _, _ := c.Recv(root, tagBcast)
	return v
}

// Reduce combines every rank's value at root with op. Only root receives
// the result (ok true); other ranks get (0, false).
func (c *Comm) Reduce(root int, v float64, op Op) (float64, bool) {
	c.check(root, "root")
	if c.rank != root {
		c.Send(root, tagGath, v)
		return 0, false
	}
	acc := v
	for i := 0; i < c.w.size-1; i++ {
		d, _, _ := c.Recv(AnySource, tagGath)
		acc = op.apply(acc, d.(float64))
	}
	return acc, true
}

// Allreduce combines every rank's value with op and returns the result on
// all ranks.
func (c *Comm) Allreduce(v float64, op Op) float64 {
	acc, ok := c.Reduce(0, v, op)
	if !ok {
		r := c.Bcast(0, nil)
		return r.(float64)
	}
	c.Bcast(0, acc)
	return acc
}

// Gather collects every rank's value at root, indexed by rank. Non-root
// ranks receive nil.
func (c *Comm) Gather(root int, v interface{}) []interface{} {
	c.check(root, "root")
	if c.rank != root {
		c.Send(root, tagScat, [2]interface{}{c.rank, v})
		return nil
	}
	out := make([]interface{}, c.w.size)
	out[c.rank] = v
	for i := 0; i < c.w.size-1; i++ {
		d, _, _ := c.Recv(AnySource, tagScat)
		pair := d.([2]interface{})
		out[pair[0].(int)] = pair[1]
	}
	return out
}

// Run launches size ranks executing body concurrently and waits for all
// of them. It returns the first non-nil error; a panicking rank is
// reported as an error rather than crashing the process.
func Run(size int, body func(c *Comm) error) error {
	if size <= 0 {
		return fmt.Errorf("mpi: size %d invalid", size)
	}
	w := &world{size: size, inboxes: make([]*inbox, size), epoch: time.Now()}
	w.barCond = sync.NewCond(&w.barMu)
	for i := range w.inboxes {
		w.inboxes[i] = newInbox()
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
