package mpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunRankAndSize(t *testing.T) {
	var seen [8]int32
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			return fmt.Errorf("size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d ran %d times", r, n)
		}
	}
}

func TestRunInvalidSize(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, "hello")
			return nil
		}
		data, src, tag := c.Recv(0, 7)
		if data.(string) != "hello" || src != 0 || tag != 7 {
			return fmt.Errorf("got %v from %d tag %d", data, src, tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first")
			c.Send(1, 2, "second")
			return nil
		}
		// Receive out of order by tag.
		d2, _, _ := c.Recv(0, 2)
		d1, _, _ := c.Recv(0, 1)
		if d2.(string) != "second" || d1.(string) != "first" {
			return fmt.Errorf("tag matching broken: %v, %v", d1, d2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, c.Rank()*10, float64(c.Rank()))
			return nil
		}
		got := map[int]bool{}
		for i := 0; i < 2; i++ {
			d, src, tag := c.Recv(AnySource, AnyTag)
			if tag != src*10 || d.(float64) != float64(src) {
				return fmt.Errorf("mismatched envelope: %v/%d/%d", d, src, tag)
			}
			got[src] = true
		}
		if !got[1] || !got[2] {
			return fmt.Errorf("sources seen: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range send did not error")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 6
	var phase int32
	err := Run(n, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			atomic.StoreInt32(&phase, 1)
		}
		c.Barrier()
		if atomic.LoadInt32(&phase) != 1 {
			return fmt.Errorf("rank %d passed barrier before rank 0 finished", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	var counter int64
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			atomic.AddInt64(&counter, 1)
			c.Barrier()
			// After each barrier the counter must be a multiple of 4.
			if v := atomic.LoadInt64(&counter); v%4 != 0 {
				return fmt.Errorf("iteration %d: counter %d not synchronized", i, v)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		var in interface{}
		if c.Rank() == 2 {
			in = "the value"
		}
		out := c.Bcast(2, in)
		if out.(string) != "the value" {
			return fmt.Errorf("rank %d got %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		v, ok := c.Reduce(0, float64(c.Rank()+1), Sum)
		if c.Rank() == 0 {
			if !ok || v != 21 {
				return fmt.Errorf("reduce = %v,%v, want 21,true", v, ok)
			}
		} else if ok {
			return fmt.Errorf("non-root got ok")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		mx := c.Allreduce(float64(c.Rank()), Max)
		if mx != 4 {
			return fmt.Errorf("allreduce max = %v", mx)
		}
		mn := c.Allreduce(float64(c.Rank()), Min)
		if mn != 0 {
			return fmt.Errorf("allreduce min = %v", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		out := c.Gather(1, c.Rank()*c.Rank())
		if c.Rank() != 1 {
			if out != nil {
				return fmt.Errorf("non-root gather = %v", out)
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if out[r].(int) != r*r {
				return fmt.Errorf("gather[%d] = %v", r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWtimeAdvances(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		t0 := c.Wtime()
		time.Sleep(10 * time.Millisecond)
		if d := c.Wtime() - t0; d < 0.008 {
			return fmt.Errorf("Wtime advanced only %v s", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestListing1Shape reproduces the paper's Listing 1 at 1000× speed: both
// the balanced and imbalanced do_work variants must show the same
// "iterations per second" because the slowest rank is on the critical
// path either way.
func TestListing1Shape(t *testing.T) {
	const (
		ranks = 8
		scale = time.Millisecond // paper's 1 s of work → 1 ms
		iters = 3
	)
	run := func(equal bool) float64 {
		var rate float64
		err := Run(ranks, func(c *Comm) error {
			var total float64
			for i := 0; i < iters; i++ {
				start := c.Wtime()
				d := scale
				if !equal {
					d = time.Duration(float64(c.Rank()+1) / float64(ranks) * float64(scale))
				}
				time.Sleep(d)
				c.Barrier()
				total += c.Wtime() - start
			}
			if c.Rank() == 0 {
				rate = float64(iters) / total
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rate
	}
	eq, uneq := run(true), run(false)
	if math.Abs(eq-uneq)/eq > 0.5 {
		t.Fatalf("iterations/s diverged: equal=%v unequal=%v", eq, uneq)
	}
}

func TestOpApplyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	Op(99).apply(1, 2)
}
