package mpi

import (
	"fmt"
	"testing"
)

func TestScatter(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		var vals []interface{}
		if c.Rank() == 2 {
			for i := 0; i < 5; i++ {
				vals = append(vals, i*100)
			}
		}
		got := c.Scatter(2, vals)
		if got.(int) != c.Rank()*100 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongLengthPanics(t *testing.T) {
	// Single-rank world avoids the deadlock a mid-collective panic would
	// otherwise cause for peers blocked in Recv.
	err := Run(1, func(c *Comm) error {
		c.Scatter(0, []interface{}{1, 2}) // wrong length → panic → error
		return nil
	})
	if err == nil {
		t.Fatal("wrong-length scatter accepted")
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		vals := make([]interface{}, n)
		for j := 0; j < n; j++ {
			vals[j] = c.Rank()*10 + j // value destined for rank j
		}
		out := c.Alltoall(vals)
		for i := 0; i < n; i++ {
			want := i*10 + c.Rank()
			if out[i].(int) != want {
				return fmt.Errorf("rank %d out[%d] = %v, want %v", c.Rank(), i, out[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		data, src, _ := c.Sendrecv(right, 5, c.Rank(), left, 5)
		if src != left || data.(int) != left {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), data, src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		out := c.Allgather(c.Rank() * c.Rank())
		for r := 0; r < 4; r++ {
			if out[r].(int) != r*r {
				return fmt.Errorf("rank %d: out[%d] = %v", c.Rank(), r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscan(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		got := c.Exscan(float64(c.Rank() + 1)) // values 1..5
		want := 0.0
		for r := 1; r <= c.Rank(); r++ {
			want += float64(r)
		}
		if got != want {
			return fmt.Errorf("rank %d exscan = %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherCounts(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		out := c.GatherCounts(1, c.Rank()+10)
		if c.Rank() != 1 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for r, v := range out {
			if v != r+10 {
				return fmt.Errorf("counts[%d] = %d", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
