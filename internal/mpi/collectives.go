package mpi

import "fmt"

// Additional collectives beyond the core set in mpi.go, mirroring the
// MPI operations HPC codes lean on.

const (
	tagScatter  = 1<<30 + 3
	tagAlltoall = 1<<30 + 4
)

// Scatter distributes root's values slice — one element per rank — and
// returns the caller's element. Root must supply exactly Size elements;
// other ranks' values argument is ignored.
func (c *Comm) Scatter(root int, values []interface{}) interface{} {
	c.check(root, "root")
	if c.rank == root {
		if len(values) != c.w.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d values, got %d", c.w.size, len(values)))
		}
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.Send(r, tagScatter, values[r])
			}
		}
		return values[root]
	}
	v, _, _ := c.Recv(root, tagScatter)
	return v
}

// Alltoall performs the full exchange: rank i's values[j] is delivered
// to rank j, which receives it at index i of its result. Every rank must
// supply exactly Size values.
func (c *Comm) Alltoall(values []interface{}) []interface{} {
	if len(values) != c.w.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d values, got %d", c.w.size, len(values)))
	}
	out := make([]interface{}, c.w.size)
	out[c.rank] = values[c.rank]
	for r := 0; r < c.w.size; r++ {
		if r != c.rank {
			c.Send(r, tagAlltoall, [2]interface{}{c.rank, values[r]})
		}
	}
	for i := 0; i < c.w.size-1; i++ {
		d, _, _ := c.Recv(AnySource, tagAlltoall)
		pair := d.([2]interface{})
		out[pair[0].(int)] = pair[1]
	}
	return out
}

// Sendrecv performs a combined send and receive (deadlock-free because
// sends never block in this runtime).
func (c *Comm) Sendrecv(sendTo, sendTag int, sendData interface{}, recvFrom, recvTag int) (data interface{}, source, tag int) {
	c.Send(sendTo, sendTag, sendData)
	return c.Recv(recvFrom, recvTag)
}

// Allgather collects every rank's value on every rank, indexed by rank.
func (c *Comm) Allgather(v interface{}) []interface{} {
	gathered := c.Gather(0, v)
	if c.rank == 0 {
		c.Bcast(0, gathered)
		return gathered
	}
	r := c.Bcast(0, nil)
	return r.([]interface{})
}

// Exscan computes the exclusive prefix reduction: rank i receives the
// combination of ranks 0..i-1's values (rank 0 receives 0 for Sum, and
// the op identity is approximated with the rank's own value excluded).
// Only Sum is supported, matching its dominant use for offsets.
func (c *Comm) Exscan(v float64) float64 {
	all := c.Allgather(v)
	var acc float64
	for r := 0; r < c.rank; r++ {
		acc += all[r].(float64)
	}
	return acc
}

// GatherCounts is a convenience over Gather for integer contributions,
// returning the per-rank counts on root (nil elsewhere).
func (c *Comm) GatherCounts(root, count int) []int {
	res := c.Gather(root, count)
	if res == nil {
		return nil
	}
	out := make([]int, len(res))
	for i, v := range res {
		out[i] = v.(int)
	}
	return out
}
