package supervise

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeSleep records backoffs instead of sleeping.
type fakeSleep struct{ slept []time.Duration }

func (f *fakeSleep) sleep(d time.Duration) { f.slept = append(f.slept, d) }

func TestCleanExitNeedsNoRestart(t *testing.T) {
	fs := &fakeSleep{}
	s := New(Options{Sleep: fs.sleep})
	err := s.Supervise(Unit{Name: "ok", Start: func(int) (func() error, error) {
		return func() error { return nil }, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Restarts() != 0 || s.Panics() != 0 || s.Broken() || len(fs.slept) != 0 {
		t.Fatalf("clean exit: restarts=%d panics=%d broken=%v slept=%v",
			s.Restarts(), s.Panics(), s.Broken(), fs.slept)
	}
}

// TestPanickingUnitRestartsWithBackoffThenRecovers is the core contract:
// a daemon that panics is restarted with exponentially growing backoff,
// and an incarnation that finally holds ends supervision cleanly.
func TestPanickingUnitRestartsWithBackoffThenRecovers(t *testing.T) {
	fs := &fakeSleep{}
	s := New(Options{MaxRestarts: 8, Backoff: 100 * time.Millisecond, Sleep: fs.sleep})
	incarnations := 0
	err := s.Supervise(Unit{Name: "flaky", Start: func(attempt int) (func() error, error) {
		incarnations++
		return func() error {
			if incarnations <= 3 {
				panic(fmt.Sprintf("crash %d", incarnations))
			}
			return nil
		}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if incarnations != 4 || s.Restarts() != 3 || s.Panics() != 3 {
		t.Fatalf("incarnations=%d restarts=%d panics=%d", incarnations, s.Restarts(), s.Panics())
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(fs.slept) != len(want) {
		t.Fatalf("backoffs %v, want %v", fs.slept, want)
	}
	for i := range want {
		if fs.slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (exponential)", i, fs.slept[i], want[i])
		}
	}
}

// TestCircuitBreakerDegradesToSafeCap: a unit that never stops crashing
// exhausts the restart budget, opens the breaker exactly once, and the
// OnBreak hook applies the static safe cap.
func TestCircuitBreakerDegradesToSafeCap(t *testing.T) {
	fs := &fakeSleep{}
	safeCapApplied := 0
	var breakCause error
	s := New(Options{
		MaxRestarts: 3,
		Backoff:     50 * time.Millisecond,
		Sleep:       fs.sleep,
		OnBreak: func(unit string, cause error) {
			safeCapApplied++
			breakCause = cause
		},
	})
	err := s.Supervise(Unit{Name: "doomed", Start: func(int) (func() error, error) {
		return func() error { panic("always") }, nil
	}})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if !s.Broken() || s.Restarts() != 3 || s.Panics() != 4 {
		t.Fatalf("broken=%v restarts=%d panics=%d", s.Broken(), s.Restarts(), s.Panics())
	}
	if safeCapApplied != 1 {
		t.Fatalf("OnBreak called %d times, want exactly 1", safeCapApplied)
	}
	var pe *PanicError
	if !errors.As(breakCause, &pe) || pe.Value != "always" {
		t.Fatalf("break cause = %v, want the captured panic", breakCause)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestErrorReturnAlsoRestarts(t *testing.T) {
	fs := &fakeSleep{}
	s := New(Options{MaxRestarts: 5, Sleep: fs.sleep})
	runs := 0
	err := s.Supervise(Unit{Name: "errs", Start: func(int) (func() error, error) {
		runs++
		return func() error {
			if runs < 3 {
				return errors.New("transient")
			}
			return nil
		}, nil
	}})
	if err != nil || runs != 3 || s.Panics() != 0 || s.Restarts() != 2 {
		t.Fatalf("err=%v runs=%d panics=%d restarts=%d", err, runs, s.Panics(), s.Restarts())
	}
}

func TestStartFailureCountsAsIncarnation(t *testing.T) {
	fs := &fakeSleep{}
	s := New(Options{MaxRestarts: 4, Sleep: fs.sleep})
	starts := 0
	err := s.Supervise(Unit{Name: "recovering", Start: func(attempt int) (func() error, error) {
		starts++
		if starts < 2 {
			return nil, errors.New("journal locked")
		}
		if attempt != starts-1 {
			t.Fatalf("attempt %d on start %d", attempt, starts)
		}
		return func() error { return nil }, nil
	}})
	if err != nil || starts != 2 {
		t.Fatalf("err=%v starts=%d", err, starts)
	}
}

func TestPanicInStartIsCaptured(t *testing.T) {
	fs := &fakeSleep{}
	s := New(Options{MaxRestarts: 1, Sleep: fs.sleep})
	err := s.Supervise(Unit{Name: "ctor-panic", Start: func(int) (func() error, error) {
		panic("corrupt journal struct")
	}})
	if !errors.Is(err, ErrCircuitOpen) || s.Panics() != 2 {
		t.Fatalf("err=%v panics=%d", err, s.Panics())
	}
}

func TestBackoffCapped(t *testing.T) {
	fs := &fakeSleep{}
	s := New(Options{
		MaxRestarts: 6,
		Backoff:     time.Second,
		MaxBackoff:  3 * time.Second,
		Sleep:       fs.sleep,
	})
	_ = s.Supervise(Unit{Name: "doomed", Start: func(int) (func() error, error) {
		return func() error { return errors.New("down") }, nil
	}})
	for _, d := range fs.slept {
		if d > 3*time.Second {
			t.Fatalf("backoff %v exceeded MaxBackoff", d)
		}
	}
	if fs.slept[len(fs.slept)-1] != 3*time.Second {
		t.Fatalf("final backoff %v, want capped 3s", fs.slept[len(fs.slept)-1])
	}
}

func TestNilStartRejected(t *testing.T) {
	if err := New(Options{}).Supervise(Unit{Name: "nil"}); err == nil {
		t.Fatal("nil Start accepted")
	}
}
