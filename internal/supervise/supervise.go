// Package supervise runs the control-plane components — policy daemon,
// monitors, cluster manager — as restartable units with crash-only
// semantics.
//
// The paper's setup assumes its NRM-style daemon never dies; this
// package assumes the opposite. A unit is a function that runs until it
// finishes, errors, or panics. The supervisor captures panics, restarts
// the unit with exponential backoff, and — when restarts keep failing —
// opens a circuit breaker and invokes a degrade hook so the node falls
// back to a static safe power cap rather than flapping forever. Paired
// with internal/journal (state recovery across restarts) and the RAPL
// deadman (hardware-side cap TTL), it gives the control plane explicit
// safety guarantees independent of the plant.
//
// The supervisor state machine per unit:
//
//	        run ok
//	Running ───────▶ Stopped
//	   │ error/panic
//	   ▼
//	Backoff ── sleep(b), b *= factor ──▶ Running   (restart)
//	   │ restarts > MaxRestarts
//	   ▼
//	Broken ── OnBreak() ──▶ degraded static safe cap
//
// Sleeping is injectable so a simulation can advance *virtual* time
// while the daemon is down — exactly how the chaos harness models a
// plant that keeps running under a latched cap while its controller is
// being restarted.
package supervise

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// PanicError wraps a recovered panic so callers can distinguish a crash
// from an ordinary error return.
type PanicError struct {
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("unit panicked: %v", e.Value)
}

// ErrCircuitOpen is wrapped by Supervise's return when the restart
// budget is exhausted and the unit has been abandoned to the degrade
// hook.
var ErrCircuitOpen = errors.New("supervise: circuit breaker open")

// Unit is one restartable component. Start is called for every
// incarnation and must return a fresh run function — this is where a
// daemon replays its journal and re-arms its cap. Returning an error
// from Start counts as a failed incarnation (it can be retried); a nil
// run function with a nil error is invalid.
type Unit struct {
	Name  string
	Start func(attempt int) (func() error, error)
}

// Options tunes the supervisor.
type Options struct {
	// MaxRestarts is how many restarts are attempted before the circuit
	// breaker opens (default 5). The first run is not a restart.
	MaxRestarts int
	// Backoff is the delay before the first restart (default 100 ms);
	// each subsequent restart multiplies it by BackoffFactor (default 2)
	// up to MaxBackoff (default 30 s). A clean stretch does not reset the
	// backoff within one Supervise call — a unit that needed five
	// restarts is not trusted faster because the fifth held briefly.
	Backoff       time.Duration
	BackoffFactor float64
	MaxBackoff    time.Duration
	// Sleep waits out a backoff. The default is time.Sleep; simulations
	// inject the virtual clock here so the plant keeps running while the
	// daemon is down.
	Sleep func(time.Duration)
	// OnRestart is invoked before each restart attempt with the failure
	// that caused it and the backoff about to be served.
	OnRestart func(unit string, attempt int, cause error, backoff time.Duration)
	// OnBreak is invoked exactly once when the circuit opens — the hook
	// that degrades the node to its static safe cap.
	OnBreak func(unit string, cause error)
}

func (o *Options) fillDefaults() {
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.BackoffFactor < 1 {
		o.BackoffFactor = 2
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// Supervisor supervises units. Counters are cumulative across all units
// and incarnations it has run.
type Supervisor struct {
	opts Options

	mu       sync.Mutex
	restarts int
	panics   int
	broken   bool
	last     error
}

// New returns a supervisor with the given options.
func New(opts Options) *Supervisor {
	opts.fillDefaults()
	return &Supervisor{opts: opts}
}

// Restarts returns how many restarts the supervisor has performed.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Panics returns how many incarnations died by panic (vs error return).
func (s *Supervisor) Panics() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics
}

// Broken reports whether a supervised unit has opened the circuit
// breaker.
func (s *Supervisor) Broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// LastFailure returns the most recent failure a unit exhibited (nil when
// every incarnation so far exited cleanly).
func (s *Supervisor) LastFailure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Supervise runs the unit until it exits cleanly (nil return) or the
// restart budget is exhausted. It blocks; run units in goroutines for
// concurrent supervision. On circuit break it calls OnBreak and returns
// an error wrapping ErrCircuitOpen and the final failure.
func (s *Supervisor) Supervise(u Unit) error {
	if u.Start == nil {
		return fmt.Errorf("supervise: unit %q has no Start", u.Name)
	}
	backoff := s.opts.Backoff
	for attempt := 0; ; attempt++ {
		err := s.runOnce(u, attempt)
		if err == nil {
			return nil
		}
		s.mu.Lock()
		s.last = err
		var pe *PanicError
		if errors.As(err, &pe) {
			s.panics++
		}
		exhausted := attempt >= s.opts.MaxRestarts
		if exhausted {
			s.broken = true
		} else {
			s.restarts++
		}
		s.mu.Unlock()

		if exhausted {
			if s.opts.OnBreak != nil {
				s.opts.OnBreak(u.Name, err)
			}
			return fmt.Errorf("supervise: %s: %w after %d restarts: %v",
				u.Name, ErrCircuitOpen, attempt, err)
		}
		if s.opts.OnRestart != nil {
			s.opts.OnRestart(u.Name, attempt+1, err, backoff)
		}
		s.opts.Sleep(backoff)
		backoff = time.Duration(float64(backoff) * s.opts.BackoffFactor)
		if backoff > s.opts.MaxBackoff {
			backoff = s.opts.MaxBackoff
		}
	}
}

// runOnce starts and runs one incarnation, converting panics in either
// the constructor or the run function into PanicErrors.
func (s *Supervisor) runOnce(u Unit, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	run, err := u.Start(attempt)
	if err != nil {
		return fmt.Errorf("supervise: %s: start: %w", u.Name, err)
	}
	if run == nil {
		return fmt.Errorf("supervise: %s: Start returned no run function", u.Name)
	}
	return run()
}
