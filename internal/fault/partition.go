package fault

import "time"

// Partition cuts the links between two groups of actors (node and
// manager names) for a window of virtual time. Symmetric partitions cut
// both directions; an asymmetric one cuts only A→B — the classic
// half-open failure where a manager can still push grants at a node
// whose telemetry never makes it back (or vice versa).
type Partition struct {
	Window
	// A and B are the two sides, by actor name.
	A, B []string
	// Asymmetric, when true, cuts only messages from A to B.
	Asymmetric bool
}

func member(names []string, who string) bool {
	for _, n := range names {
		if n == who {
			return true
		}
	}
	return false
}

// Links answers per-message reachability queries against the plan's
// partition schedule. It is pure virtual-time lookup — no RNG — so a
// partition plan never perturbs any other fault class's decisions.
type Links struct {
	parts []Partition

	cut uint64
}

func newLinks(parts []Partition) *Links {
	return &Links{parts: append([]Partition(nil), parts...)}
}

// Cut reports whether a message from one actor to another is lost at
// virtual time now, and counts the losses it rules.
func (l *Links) Cut(from, to string, now time.Duration) bool {
	for _, p := range l.parts {
		if !p.Contains(now) {
			continue
		}
		if member(p.A, from) && member(p.B, to) {
			l.cut++
			return true
		}
		if !p.Asymmetric && member(p.B, from) && member(p.A, to) {
			l.cut++
			return true
		}
	}
	return false
}

// CutCount returns how many messages the partition schedule has eaten.
func (l *Links) CutCount() uint64 { return l.cut }

// Enabled reports whether any partition is scheduled.
func (l *Links) Enabled() bool { return len(l.parts) > 0 }

// ManagerPlan injects job-manager process faults, consumed by the
// replicated (leased) cluster manager.
type ManagerPlan struct {
	// KillAt, when positive, kills the manager process for good at that
	// virtual time: no journal appends, no grants, no recovery.
	KillAt time.Duration
	// PauseAt/ResumeAt freeze the manager (GC stall, SIGSTOP, VM
	// migration) without killing it. A paused primary stops heartbeating
	// — the standby takes over — and on resume it still believes it is
	// primary: it flushes any grants it had journaled but not yet sent,
	// which is exactly the stale-delivery hazard epoch fencing exists to
	// stop. Zero ResumeAt means the pause never ends.
	PauseAt  time.Duration
	ResumeAt time.Duration
}

// Enabled reports whether the plan can perturb anything.
func (p ManagerPlan) Enabled() bool { return p.KillAt > 0 || p.PauseAt > 0 }

// Manager answers manager-process fault queries.
type Manager struct {
	plan ManagerPlan
}

// Dead reports whether the manager is permanently dead at now.
func (m *Manager) Dead(now time.Duration) bool {
	return m.plan.KillAt > 0 && now >= m.plan.KillAt
}

// Paused reports whether the manager is frozen at now.
func (m *Manager) Paused(now time.Duration) bool {
	if m.plan.PauseAt <= 0 || now < m.plan.PauseAt {
		return false
	}
	return m.plan.ResumeAt <= 0 || now < m.plan.ResumeAt
}

// TearsSend reports whether the pause lands inside the epoch starting at
// now — after the manager journaled its grant batch but before it sent
// it. The batch stays pending and is flushed, stale, on resume.
func (m *Manager) TearsSend(epochStart, epochLen time.Duration) bool {
	return m.plan.PauseAt > epochStart && m.plan.PauseAt <= epochStart+epochLen
}
