package fault

import (
	"testing"
	"time"

	"progresscap/internal/pubsub"
)

func TestLinksSymmetricPartition(t *testing.T) {
	inj := NewInjector(Plan{Partitions: []Partition{{
		Window: Window{From: 5 * time.Second, To: 10 * time.Second},
		A:      []string{"m0", "m1"},
		B:      []string{"n1"},
	}}})
	l := inj.Links()
	if !l.Enabled() {
		t.Fatal("partitioned plan reports disabled")
	}
	if l.Cut("m0", "n1", 4*time.Second) {
		t.Error("cut before window")
	}
	if !l.Cut("m0", "n1", 5*time.Second) || !l.Cut("n1", "m1", 7*time.Second) {
		t.Error("symmetric window should cut both directions")
	}
	if l.Cut("m0", "n0", 7*time.Second) {
		t.Error("uninvolved node cut")
	}
	if l.Cut("m0", "n1", 10*time.Second) {
		t.Error("cut at (half-open) window end")
	}
	if got := l.CutCount(); got != 2 {
		t.Errorf("CutCount = %d, want 2", got)
	}
}

func TestLinksAsymmetricPartition(t *testing.T) {
	inj := NewInjector(Plan{Partitions: []Partition{{
		Window:     Window{From: 0, To: time.Minute},
		A:          []string{"n1"},
		B:          []string{"m0"},
		Asymmetric: true,
	}}})
	l := inj.Links()
	if !l.Cut("n1", "m0", time.Second) {
		t.Error("A→B should be cut")
	}
	if l.Cut("m0", "n1", time.Second) {
		t.Error("B→A should flow in an asymmetric partition")
	}
}

func TestManagerFaults(t *testing.T) {
	inj := NewInjector(Plan{Managers: map[string]ManagerPlan{
		"m0": {KillAt: 8 * time.Second},
		"m1": {PauseAt: 5 * time.Second, ResumeAt: 12 * time.Second},
	}})
	m0, m1 := inj.Manager("m0"), inj.Manager("m1")
	if inj.Manager("m9") != nil {
		t.Error("unknown manager should be nil")
	}
	if m0.Dead(7*time.Second) || !m0.Dead(8*time.Second) {
		t.Error("kill boundary wrong")
	}
	if m1.Paused(4*time.Second) || !m1.Paused(5*time.Second) || m1.Paused(12*time.Second) {
		t.Error("pause window wrong")
	}
	// Pause at 5 s tears the send of the epoch starting at 4 s.
	if !m1.TearsSend(4*time.Second, time.Second) || m1.TearsSend(5*time.Second, time.Second) {
		t.Error("TearsSend boundary wrong")
	}
	// A permanent pause (ResumeAt 0) never lifts.
	perm := Manager{plan: ManagerPlan{PauseAt: time.Second}}
	if !perm.Paused(time.Hour) {
		t.Error("permanent pause lifted")
	}
}

func TestPartitionPlanDoesNotShiftOtherStreams(t *testing.T) {
	// Adding a partition schedule must not consume RNG draws: the pubsub
	// stream's decisions stay identical (Links is pure lookup).
	base := NewInjector(Plan{Seed: 7, PubSub: PubSubPlan{DropRate: 0.5}})
	part := NewInjector(Plan{Seed: 7, PubSub: PubSubPlan{DropRate: 0.5},
		Partitions: []Partition{{Window: Window{To: time.Hour}, A: []string{"a"}, B: []string{"b"}}}})
	part.Links().Cut("a", "b", time.Second)
	msg := pubsub.Message{Topic: "progress.x", Payload: []byte("1")}
	for i := 0; i < 64; i++ {
		now := time.Duration(i) * time.Millisecond
		a := base.PubSub().Intercept(now, msg)
		b := part.PubSub().Intercept(now, msg)
		if len(a) != len(b) {
			t.Fatalf("pubsub drop decision %d diverged once partitions were scheduled", i)
		}
	}
}
