package fault

import (
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/msr"
	"progresscap/internal/simtime"
)

// MSR perturbs model-specific-register accesses through msr.Device's
// fault hook.
type MSR struct {
	plan MSRPlan
	rng  *simtime.RNG

	staleServed uint64
	readEIO     uint64
	writeEIO    uint64
}

func newMSR(plan MSRPlan, rng *simtime.RNG) *MSR {
	return &MSR{plan: plan, rng: rng}
}

// Enabled reports whether the injector can perturb anything.
func (f *MSR) Enabled() bool { return f.plan.Enabled() }

// EnergyWrapRaw returns the raw seed for RAPL energy counters (0 when the
// plan does not request an early wraparound).
func (f *MSR) EnergyWrapRaw() uint64 { return f.plan.EnergyWrapRaw }

// Hook returns the msr.FaultHook implementing the plan, or nil when the
// plan injects no access faults — installing nil keeps the device on its
// zero-overhead fast path.
func (f *MSR) Hook() msr.FaultHook {
	if f.plan.StaleReadRate <= 0 && f.plan.ReadEIORate <= 0 && f.plan.WriteEIORate <= 0 {
		return nil
	}
	return func(op msr.FaultOp, addr uint32) msr.FaultClass {
		if op == msr.OpWrite {
			if f.plan.WriteEIORate > 0 && f.rng.Float64() < f.plan.WriteEIORate {
				f.writeEIO++
				return msr.FaultEIO
			}
			return msr.FaultNone
		}
		if f.plan.ReadEIORate > 0 && f.rng.Float64() < f.plan.ReadEIORate {
			f.readEIO++
			return msr.FaultEIO
		}
		if f.plan.StaleReadRate > 0 && f.rng.Float64() < f.plan.StaleReadRate {
			f.staleServed++
			return msr.FaultStale
		}
		return msr.FaultNone
	}
}

// Stats returns the injector's fault counts.
func (f *MSR) Stats() (stale, readEIO, writeEIO uint64) {
	return f.staleServed, f.readEIO, f.writeEIO
}

// Counters perturbs hardware-event-counter observations through
// counters.Bank's read hook.
type Counters struct {
	plan CounterPlan
	rng  *simtime.RNG

	glitches uint64
	spike    bool
}

func newCounters(plan CounterPlan, rng *simtime.RNG) *Counters {
	if plan.GlitchScale <= 0 {
		plan.GlitchScale = 1024
	}
	return &Counters{plan: plan, rng: rng}
}

// Enabled reports whether the injector can perturb anything.
func (f *Counters) Enabled() bool { return f.plan.Enabled() }

// Hook returns the counters.ReadHook implementing the plan, or nil when
// the plan injects nothing.
func (f *Counters) Hook() counters.ReadHook {
	if !f.plan.Enabled() {
		return nil
	}
	return func(core int, e counters.Event, v uint64) uint64 {
		v += f.plan.OverflowOffset
		if f.plan.GlitchRate > 0 && f.rng.Float64() < f.plan.GlitchRate {
			f.glitches++
			f.spike = !f.spike
			if f.spike {
				return v * uint64(f.plan.GlitchScale)
			}
			return v / 2
		}
		return v
	}
}

// Glitches returns how many observations were glitched.
func (f *Counters) Glitches() uint64 { return f.glitches }

// Node answers whole-node fault queries for the cluster manager.
type Node struct {
	plan NodePlan
}

// Crashed reports whether the node is dead at virtual time now: from
// CrashAt until RecoverAt (forever, when RecoverAt is zero).
func (n *Node) Crashed(now time.Duration) bool {
	if n.plan.CrashAt <= 0 || now < n.plan.CrashAt {
		return false
	}
	return n.plan.RecoverAt <= 0 || now < n.plan.RecoverAt
}

// FreqCeilingFrac returns the fraction of maximum frequency available at
// virtual time now: 1 before any slowdown, SlowFactor after SlowAt.
func (n *Node) FreqCeilingFrac(now time.Duration) float64 {
	if n.plan.SlowAt > 0 && now >= n.plan.SlowAt && n.plan.SlowFactor > 0 {
		return n.plan.SlowFactor
	}
	return 1
}
