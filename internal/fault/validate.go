package fault

// Plan validation. Hand-built plans and the spec generator share one
// Validate pass, so a schedule with a negative crash time or an empty
// partition window is rejected before it can silently inject nothing
// (or, worse, inject at time zero and corrupt a baseline).

import (
	"fmt"
	"time"
)

// Validate rejects an empty or inverted window. Windows are half-open
// [From, To), so To must be strictly after From, and virtual time starts
// at zero.
func (w Window) Validate() error {
	if w.From < 0 {
		return fmt.Errorf("fault: window start %v is negative", w.From)
	}
	if w.To <= w.From {
		return fmt.Errorf("fault: window [%v, %v) is empty or inverted", w.From, w.To)
	}
	return nil
}

func rate01(name string, r float64) error {
	if r < 0 || r > 1 {
		return fmt.Errorf("fault: %s %g outside [0, 1]", name, r)
	}
	return nil
}

// Validate checks rates, delays, and schedules.
func (p PubSubPlan) Validate() error {
	if err := rate01("PubSub.DropRate", p.DropRate); err != nil {
		return err
	}
	if err := rate01("PubSub.DelayRate", p.DelayRate); err != nil {
		return err
	}
	if err := rate01("PubSub.DupRate", p.DupRate); err != nil {
		return err
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("fault: PubSub.MaxDelay %v is negative", p.MaxDelay)
	}
	for i, b := range p.Blackouts {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("fault: blackout %d: %w", i, err)
		}
	}
	for i, d := range p.Disconnects {
		if d <= 0 {
			return fmt.Errorf("fault: disconnect %d at %v is not after time zero", i, d)
		}
	}
	return nil
}

// Validate checks the MSR fault rates.
func (p MSRPlan) Validate() error {
	if err := rate01("MSR.StaleReadRate", p.StaleReadRate); err != nil {
		return err
	}
	if err := rate01("MSR.ReadEIORate", p.ReadEIORate); err != nil {
		return err
	}
	return rate01("MSR.WriteEIORate", p.WriteEIORate)
}

// Validate checks the counter fault rates and scales.
func (p CounterPlan) Validate() error {
	if err := rate01("Counters.GlitchRate", p.GlitchRate); err != nil {
		return err
	}
	if p.GlitchScale < 0 {
		return fmt.Errorf("fault: Counters.GlitchScale %g is negative", p.GlitchScale)
	}
	return nil
}

// Validate rejects non-positive fault times and out-of-order
// crash/recover schedules. Zero means "disabled" for every field, so a
// negative time is always a construction bug, and a fault scheduled at
// exactly time zero is indistinguishable from a disabled one.
func (p NodePlan) Validate() error {
	for _, f := range []struct {
		name string
		at   time.Duration
	}{{"CrashAt", p.CrashAt}, {"RecoverAt", p.RecoverAt}, {"SlowAt", p.SlowAt}} {
		if f.at < 0 {
			return fmt.Errorf("fault: node %s %v is negative", f.name, f.at)
		}
	}
	if p.RecoverAt > 0 {
		if p.CrashAt <= 0 {
			return fmt.Errorf("fault: node RecoverAt %v without a crash", p.RecoverAt)
		}
		if p.RecoverAt <= p.CrashAt {
			return fmt.Errorf("fault: node RecoverAt %v not after CrashAt %v", p.RecoverAt, p.CrashAt)
		}
	}
	if p.SlowAt > 0 && (p.SlowFactor <= 0 || p.SlowFactor > 1) {
		return fmt.Errorf("fault: node SlowFactor %g outside (0, 1]", p.SlowFactor)
	}
	return nil
}

// Validate rejects non-positive fault times and a resume that is not
// after its pause.
func (p ManagerPlan) Validate() error {
	for _, f := range []struct {
		name string
		at   time.Duration
	}{{"KillAt", p.KillAt}, {"PauseAt", p.PauseAt}, {"ResumeAt", p.ResumeAt}} {
		if f.at < 0 {
			return fmt.Errorf("fault: manager %s %v is negative", f.name, f.at)
		}
	}
	if p.ResumeAt > 0 {
		if p.PauseAt <= 0 {
			return fmt.Errorf("fault: manager ResumeAt %v without a pause", p.ResumeAt)
		}
		if p.ResumeAt <= p.PauseAt {
			return fmt.Errorf("fault: manager ResumeAt %v not after PauseAt %v", p.ResumeAt, p.PauseAt)
		}
	}
	return nil
}

// Validate checks the window and requires both sides to be non-empty:
// a partition with an empty side cuts nothing and is always a typo.
func (p Partition) Validate() error {
	if err := p.Window.Validate(); err != nil {
		return err
	}
	if len(p.A) == 0 || len(p.B) == 0 {
		return fmt.Errorf("fault: partition [%v, %v) has an empty side", p.From, p.To)
	}
	for _, a := range p.A {
		if member(p.B, a) {
			return fmt.Errorf("fault: partition actor %q on both sides", a)
		}
	}
	return nil
}

// Validate checks every fault class of the plan. The zero Plan is valid
// (it injects nothing).
func (p Plan) Validate() error {
	if err := p.PubSub.Validate(); err != nil {
		return err
	}
	if err := p.MSR.Validate(); err != nil {
		return err
	}
	if err := p.Counters.Validate(); err != nil {
		return err
	}
	if p.Powercap != nil {
		if err := p.Powercap.Validate(); err != nil {
			return err
		}
	}
	for name, np := range p.Nodes {
		if err := np.Validate(); err != nil {
			return fmt.Errorf("fault: node %q: %w", name, err)
		}
	}
	for name, mp := range p.Managers {
		if err := mp.Validate(); err != nil {
			return fmt.Errorf("fault: manager %q: %w", name, err)
		}
	}
	for i, part := range p.Partitions {
		if err := part.Validate(); err != nil {
			return fmt.Errorf("fault: partition %d: %w", i, err)
		}
	}
	return nil
}
