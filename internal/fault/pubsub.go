package fault

import (
	"sort"
	"time"

	"progresscap/internal/pubsub"
	"progresscap/internal/simtime"
)

// delayed is a message held back by the delay fault, due for release at a
// later virtual time.
type delayed struct {
	due time.Duration
	seq uint64
	m   pubsub.Message
}

// PubSub perturbs the progress-report transport. The engine routes every
// publish through Intercept and releases delayed messages with Due each
// tick; KickDue drives scheduled TCP disconnects. All methods are meant
// for the single-threaded simulation loop and are not safe for concurrent
// use.
type PubSub struct {
	plan PubSubPlan
	rng  *simtime.RNG

	queue   []delayed
	seq     uint64
	kickIdx int

	// Stats.
	dropped   uint64
	delayedN  uint64
	duplected uint64
	blackout  uint64
}

func newPubSub(plan PubSubPlan, rng *simtime.RNG) *PubSub {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 200 * time.Millisecond
	}
	sort.Slice(plan.Disconnects, func(i, j int) bool {
		return plan.Disconnects[i] < plan.Disconnects[j]
	})
	return &PubSub{plan: plan, rng: rng}
}

// Enabled reports whether the injector can perturb anything; when false,
// Intercept is pure passthrough and draws no random numbers.
func (f *PubSub) Enabled() bool { return f.plan.Enabled() }

// Intercept decides the fate of one publish at virtual time now. It
// returns the messages to deliver immediately: nil when dropped or
// delayed, {m} for passthrough, {m, m} when duplicated. Delayed messages
// are surfaced later by Due, after which they re-enter out of order
// relative to newer traffic.
func (f *PubSub) Intercept(now time.Duration, m pubsub.Message) []pubsub.Message {
	if !f.Enabled() {
		return []pubsub.Message{m}
	}
	for _, w := range f.plan.Blackouts {
		if w.Contains(now) {
			f.blackout++
			return nil
		}
	}
	if f.plan.DropRate > 0 && f.rng.Float64() < f.plan.DropRate {
		f.dropped++
		return nil
	}
	if f.plan.DelayRate > 0 && f.rng.Float64() < f.plan.DelayRate {
		f.delayedN++
		f.seq++
		hold := time.Duration(f.rng.Float64() * float64(f.plan.MaxDelay))
		f.queue = append(f.queue, delayed{due: now + hold, seq: f.seq, m: m})
		return nil
	}
	if f.plan.DupRate > 0 && f.rng.Float64() < f.plan.DupRate {
		f.duplected++
		return []pubsub.Message{m, m}
	}
	return []pubsub.Message{m}
}

// Due returns (and removes from the hold queue) every delayed message
// whose release time has arrived, in deterministic (due, arrival) order.
func (f *PubSub) Due(now time.Duration) []pubsub.Message {
	if len(f.queue) == 0 {
		return nil
	}
	var out []pubsub.Message
	rest := f.queue[:0]
	// The queue is small (bounded by in-flight delays), so a stable
	// selection sort via full ordering keeps this deterministic.
	sort.Slice(f.queue, func(i, j int) bool {
		if f.queue[i].due != f.queue[j].due {
			return f.queue[i].due < f.queue[j].due
		}
		return f.queue[i].seq < f.queue[j].seq
	})
	for _, d := range f.queue {
		if d.due <= now {
			out = append(out, d.m)
		} else {
			rest = append(rest, d)
		}
	}
	f.queue = rest
	return out
}

// NextDueAt returns the earliest release time among held-back messages.
// ok is false when nothing is queued. It is the transport injector's
// NextEventAt hook: a macro-stepping engine must not stride past a
// delayed report's due time, or the report would re-enter later than the
// fixed-tick engine delivers it.
func (f *PubSub) NextDueAt() (t time.Duration, ok bool) {
	for _, d := range f.queue {
		if !ok || d.due < t {
			t, ok = d.due, true
		}
	}
	return t, ok
}

// Pending returns how many delayed messages are still held.
func (f *PubSub) Pending() int { return len(f.queue) }

// KickDue reports whether a scheduled TCP disconnect falls due at or
// before now, consuming it. The caller (whoever owns a pubsub.Publisher)
// responds by calling KickAll.
func (f *PubSub) KickDue(now time.Duration) bool {
	if f.kickIdx >= len(f.plan.Disconnects) {
		return false
	}
	if f.plan.Disconnects[f.kickIdx] <= now {
		f.kickIdx++
		return true
	}
	return false
}

// Stats returns the injector's fault counts.
func (f *PubSub) Stats() (dropped, delayed, duplicated, blackout uint64) {
	return f.dropped, f.delayedN, f.duplected, f.blackout
}
