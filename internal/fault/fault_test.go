package fault

import (
	"testing"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/msr"
	"progresscap/internal/pubsub"
)

func msg(i byte) pubsub.Message {
	return pubsub.Message{Topic: "progress.app", Payload: []byte{i}}
}

func TestZeroPlanIsPassthrough(t *testing.T) {
	inj := NewInjector(Plan{})
	ps := inj.PubSub()
	if ps.Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	for i := 0; i < 100; i++ {
		out := ps.Intercept(time.Duration(i)*time.Millisecond, msg(byte(i)))
		if len(out) != 1 || out[0].Payload[0] != byte(i) {
			t.Fatalf("publish %d perturbed: %v", i, out)
		}
	}
	if d, dl, du, b := ps.Stats(); d|dl|du|b != 0 {
		t.Fatalf("zero plan accumulated stats: %d %d %d %d", d, dl, du, b)
	}
	if inj.MSR().Hook() != nil {
		t.Fatal("zero plan produced an MSR hook")
	}
	if inj.Counters().Hook() != nil {
		t.Fatal("zero plan produced a counters hook")
	}
	if inj.Node("n0") != nil {
		t.Fatal("zero plan produced a node injector")
	}
}

func TestPubSubDeterminism(t *testing.T) {
	plan := Plan{
		Seed: 42,
		PubSub: PubSubPlan{
			DropRate:  0.2,
			DelayRate: 0.2,
			MaxDelay:  50 * time.Millisecond,
			DupRate:   0.1,
		},
	}
	trace := func() []int {
		ps := NewInjector(plan).PubSub()
		var out []int
		for i := 0; i < 500; i++ {
			now := time.Duration(i) * 10 * time.Millisecond
			n := len(ps.Intercept(now, msg(byte(i))))
			n += len(ps.Due(now))
			out = append(out, n)
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("publish %d: run A delivered %d, run B delivered %d", i, a[i], b[i])
		}
	}
}

func TestPubSubDropRate(t *testing.T) {
	ps := NewInjector(Plan{Seed: 7, PubSub: PubSubPlan{DropRate: 0.3}}).PubSub()
	const n = 5000
	kept := 0
	for i := 0; i < n; i++ {
		kept += len(ps.Intercept(0, msg(0)))
	}
	got := 1 - float64(kept)/n
	if got < 0.25 || got > 0.35 {
		t.Fatalf("drop rate %.3f, want ≈0.30", got)
	}
}

func TestPubSubDelayReleasesInOrder(t *testing.T) {
	ps := NewInjector(Plan{Seed: 3, PubSub: PubSubPlan{
		DelayRate: 1.0, MaxDelay: 100 * time.Millisecond,
	}}).PubSub()
	for i := 0; i < 20; i++ {
		if out := ps.Intercept(time.Duration(i)*time.Millisecond, msg(byte(i))); out != nil {
			t.Fatalf("delayed publish %d delivered immediately", i)
		}
	}
	if ps.Pending() != 20 {
		t.Fatalf("pending = %d, want 20", ps.Pending())
	}
	got := ps.Due(10 * time.Second)
	if len(got) != 20 {
		t.Fatalf("released %d, want 20", len(got))
	}
	if ps.Pending() != 0 {
		t.Fatalf("pending after release = %d", ps.Pending())
	}
	// Nothing due in the past stays queued.
	ps2 := NewInjector(Plan{Seed: 3, PubSub: PubSubPlan{
		DelayRate: 1.0, MaxDelay: time.Hour,
	}}).PubSub()
	ps2.Intercept(0, msg(1))
	if out := ps2.Due(time.Microsecond); len(out) != 0 {
		t.Fatalf("released %d messages before due time", len(out))
	}
}

func TestPubSubBlackout(t *testing.T) {
	ps := NewInjector(Plan{PubSub: PubSubPlan{
		Blackouts: []Window{{From: time.Second, To: 2 * time.Second}},
	}}).PubSub()
	if out := ps.Intercept(500*time.Millisecond, msg(0)); len(out) != 1 {
		t.Fatal("message before blackout lost")
	}
	if out := ps.Intercept(1500*time.Millisecond, msg(1)); out != nil {
		t.Fatal("message during blackout delivered")
	}
	if out := ps.Intercept(2*time.Second, msg(2)); len(out) != 1 {
		t.Fatal("message at blackout end lost (window is half-open)")
	}
}

func TestPubSubKickSchedule(t *testing.T) {
	ps := NewInjector(Plan{PubSub: PubSubPlan{
		Disconnects: []time.Duration{3 * time.Second, time.Second},
	}}).PubSub()
	if ps.KickDue(500 * time.Millisecond) {
		t.Fatal("kick before schedule")
	}
	if !ps.KickDue(time.Second) {
		t.Fatal("first kick (schedule is sorted) missed")
	}
	if ps.KickDue(2 * time.Second) {
		t.Fatal("second kick fired early")
	}
	if !ps.KickDue(3 * time.Second) {
		t.Fatal("second kick missed")
	}
	if ps.KickDue(time.Hour) {
		t.Fatal("kick after schedule exhausted")
	}
}

func TestMSRHookEIOAndStale(t *testing.T) {
	dev := msr.NewDevice(1, nil)
	inj := NewInjector(Plan{Seed: 11, MSR: MSRPlan{ReadEIORate: 1.0}})
	dev.SetFaultHook(inj.MSR().Hook())
	if _, err := dev.Read(msr.PkgEnergyStatus); err != msr.ErrIO {
		t.Fatalf("read err = %v, want ErrIO", err)
	}

	// Stale: first read records, hardware advances, faulted read serves old.
	dev2 := msr.NewDevice(1, nil)
	if _, err := dev2.Read(msr.PkgEnergyStatus); err != nil {
		t.Fatal(err)
	}
	dev2.Poke(msr.PkgEnergyStatus, 999)
	inj2 := NewInjector(Plan{Seed: 11, MSR: MSRPlan{StaleReadRate: 1.0}})
	dev2.SetFaultHook(inj2.MSR().Hook())
	v, err := dev2.Read(msr.PkgEnergyStatus)
	if err != nil || v != 0 {
		t.Fatalf("stale read = %d, %v; want previous value 0", v, err)
	}

	// Write EIO blocks actuation.
	dev3 := msr.NewDevice(1, nil)
	inj3 := NewInjector(Plan{Seed: 11, MSR: MSRPlan{WriteEIORate: 1.0}})
	dev3.SetFaultHook(inj3.MSR().Hook())
	if err := dev3.Write(msr.PkgPowerLimit, 0); err != msr.ErrIO {
		t.Fatalf("write err = %v, want ErrIO", err)
	}
}

func TestCounterHookGlitchAndOverflow(t *testing.T) {
	bank := counters.NewBank(1)
	bank.Add(0, counters.TotIns, 1000)
	inj := NewInjector(Plan{Seed: 5, Counters: CounterPlan{GlitchRate: 1.0, GlitchScale: 10}})
	bank.SetReadHook(inj.Counters().Hook())
	a := bank.Read(0, counters.TotIns) // spike
	b := bank.Read(0, counters.TotIns) // backwards jump
	if a != 10000 {
		t.Fatalf("spike read = %d, want 10000", a)
	}
	if b != 500 {
		t.Fatalf("backwards read = %d, want 500", b)
	}
	if inj.Counters().Glitches() != 2 {
		t.Fatalf("glitches = %d, want 2", inj.Counters().Glitches())
	}

	bank2 := counters.NewBank(1)
	bank2.Add(0, counters.TotIns, 100)
	inj2 := NewInjector(Plan{Counters: CounterPlan{OverflowOffset: ^uint64(0) - 50}})
	bank2.SetReadHook(inj2.Counters().Hook())
	if v := bank2.Read(0, counters.TotIns); v != 49 {
		t.Fatalf("overflowed read = %d, want 49 (wrapped)", v)
	}
}

func TestNodeFaults(t *testing.T) {
	inj := NewInjector(Plan{Nodes: map[string]NodePlan{
		"n0": {CrashAt: 5 * time.Second},
		"n1": {SlowAt: 2 * time.Second, SlowFactor: 0.5},
	}})
	n0, n1 := inj.Node("n0"), inj.Node("n1")
	if n0.Crashed(4 * time.Second) {
		t.Fatal("n0 crashed early")
	}
	if !n0.Crashed(5 * time.Second) {
		t.Fatal("n0 not crashed at CrashAt")
	}
	if f := n1.FreqCeilingFrac(time.Second); f != 1 {
		t.Fatalf("n1 ceiling before SlowAt = %v", f)
	}
	if f := n1.FreqCeilingFrac(3 * time.Second); f != 0.5 {
		t.Fatalf("n1 ceiling after SlowAt = %v", f)
	}
	if inj.Node("n2") != nil {
		t.Fatal("unplanned node has an injector")
	}
}

func TestSplitStreamsAreIndependent(t *testing.T) {
	// Enabling the MSR class must not change pubsub decisions: the fault
	// classes draw from split streams, not one shared one.
	planA := Plan{Seed: 9, PubSub: PubSubPlan{DropRate: 0.5}}
	planB := planA
	planB.MSR = MSRPlan{ReadEIORate: 0.5}

	run := func(p Plan) []int {
		inj := NewInjector(p)
		ps := inj.PubSub()
		if h := inj.MSR().Hook(); h != nil {
			// Interleave MSR draws with pubsub draws.
			for i := 0; i < 50; i++ {
				h(msr.OpRead, msr.PkgEnergyStatus)
			}
		}
		var out []int
		for i := 0; i < 200; i++ {
			out = append(out, len(ps.Intercept(0, msg(byte(i)))))
		}
		return out
	}
	a, b := run(planA), run(planB)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("publish %d: MSR plan changed pubsub decision (%d vs %d)", i, a[i], b[i])
		}
	}
}
