package fault

// Powercap-backend faults: the failure modes of the Linux
// /sys/class/powercap/intel-rapl sysfs tree, which real deployments
// drive instead of (or alongside) msr-safe. Unlike raw register access,
// sysfs file I/O fails in more ways than a transient EIO: reads and
// writes return EAGAIN under contention, writes can be silently
// truncated (a short write latches a prefix of the digits), energy_uj
// can serve a stale snapshot, permissions flip when udev rules or
// systemd-tmpfiles rewrite the tree, and a whole zone can disappear
// (ENOENT) across a driver rebind. The hardened actuation layer
// (internal/rapl.Actuator) must ride through every one of these.

import (
	"fmt"
	"time"

	"progresscap/internal/powercap"
	"progresscap/internal/simtime"
)

// PowercapPlan injects powercap-sysfs access faults. It only perturbs
// runs actuating through the sysfs backend; on the register path it is
// inert, which is why spec validation requires backend "sysfs" whenever
// a plan is present.
type PowercapPlan struct {
	// ReadAgainRate / WriteAgainRate are per-access probabilities of a
	// transient EAGAIN.
	ReadAgainRate  float64
	WriteAgainRate float64
	// ReadEIORate / WriteEIORate are per-access probabilities of a
	// transient EIO.
	ReadEIORate  float64
	WriteEIORate float64
	// TruncateRate is the per-write probability of a short write: only a
	// prefix of the digits is latched, silently programming a far smaller
	// limit. Only read-back verification catches it.
	TruncateRate float64
	// StaleEnergyRate is the per-read probability that energy_uj serves
	// the previous successful read's value instead of the current one.
	StaleEnergyRate float64
	// PermWindows are windows of virtual time during which every access
	// fails with EACCES (a udev/tmpfiles permission flip).
	PermWindows []Window
	// GoneWindows are windows during which the zone's files do not exist
	// (ENOENT — a transient driver unbind/rebind).
	GoneWindows []Window
}

// Enabled reports whether the plan can perturb anything.
func (p PowercapPlan) Enabled() bool {
	return p.ReadAgainRate > 0 || p.WriteAgainRate > 0 ||
		p.ReadEIORate > 0 || p.WriteEIORate > 0 ||
		p.TruncateRate > 0 || p.StaleEnergyRate > 0 ||
		len(p.PermWindows) > 0 || len(p.GoneWindows) > 0
}

// Validate checks rates and windows.
func (p PowercapPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"Powercap.ReadAgainRate", p.ReadAgainRate},
		{"Powercap.WriteAgainRate", p.WriteAgainRate},
		{"Powercap.ReadEIORate", p.ReadEIORate},
		{"Powercap.WriteEIORate", p.WriteEIORate},
		{"Powercap.TruncateRate", p.TruncateRate},
		{"Powercap.StaleEnergyRate", p.StaleEnergyRate},
	} {
		if err := rate01(r.name, r.v); err != nil {
			return err
		}
	}
	for i, w := range p.PermWindows {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("fault: powercap perm window %d: %w", i, err)
		}
	}
	for i, w := range p.GoneWindows {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("fault: powercap gone window %d: %w", i, err)
		}
	}
	return nil
}

// Powercap perturbs sysfs zone accesses through powercap.Zone's fault
// hook. Window faults (permission flips, disappearance) are checked
// before rate faults and draw no randomness, so a plan with only
// windows is exactly reproducible access-count-independently.
type Powercap struct {
	plan PowercapPlan
	rng  *simtime.RNG

	again     uint64
	eio       uint64
	truncated uint64
	stale     uint64
	denied    uint64
	gone      uint64
}

func newPowercap(plan PowercapPlan, rng *simtime.RNG) *Powercap {
	return &Powercap{plan: plan, rng: rng}
}

// Enabled reports whether the injector can perturb anything.
func (f *Powercap) Enabled() bool { return f.plan.Enabled() }

// Hook returns the powercap.FaultHook implementing the plan, or nil when
// the plan injects nothing — installing nil keeps the zone on its
// zero-overhead fast path.
func (f *Powercap) Hook() powercap.FaultHook {
	if !f.plan.Enabled() {
		return nil
	}
	return func(op powercap.FaultOp, file string, now time.Duration) powercap.FaultClass {
		for _, w := range f.plan.GoneWindows {
			if w.Contains(now) {
				f.gone++
				return powercap.FaultGone
			}
		}
		for _, w := range f.plan.PermWindows {
			if w.Contains(now) {
				f.denied++
				return powercap.FaultPerm
			}
		}
		if op == powercap.OpWrite {
			if f.plan.WriteAgainRate > 0 && f.rng.Float64() < f.plan.WriteAgainRate {
				f.again++
				return powercap.FaultAgain
			}
			if f.plan.WriteEIORate > 0 && f.rng.Float64() < f.plan.WriteEIORate {
				f.eio++
				return powercap.FaultEIO
			}
			if f.plan.TruncateRate > 0 && file == powercap.FilePowerLimitUW &&
				f.rng.Float64() < f.plan.TruncateRate {
				f.truncated++
				return powercap.FaultTruncate
			}
			return powercap.FaultNone
		}
		if f.plan.ReadAgainRate > 0 && f.rng.Float64() < f.plan.ReadAgainRate {
			f.again++
			return powercap.FaultAgain
		}
		if f.plan.ReadEIORate > 0 && f.rng.Float64() < f.plan.ReadEIORate {
			f.eio++
			return powercap.FaultEIO
		}
		if f.plan.StaleEnergyRate > 0 && file == powercap.FileEnergyUJ &&
			f.rng.Float64() < f.plan.StaleEnergyRate {
			f.stale++
			return powercap.FaultStale
		}
		return powercap.FaultNone
	}
}

// Stats returns the injector's fault counts.
func (f *Powercap) Stats() (again, eio, truncated, stale, denied, gone uint64) {
	return f.again, f.eio, f.truncated, f.stale, f.denied, f.gone
}
