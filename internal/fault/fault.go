// Package fault is the seeded, deterministic fault-injection layer.
//
// The paper's framework is explicit that its telemetry is imperfect — the
// lossy non-blocking ZeroMQ publish behind OpenMC's zero-report artifact,
// RAPL counters that wrap, msr-safe accesses that occasionally fail — and
// an NRM must keep enforcing its power budget on a progress signal that
// can go silent, stale, or noisy. This package makes those disturbances
// injectable on demand so the consumers (progress monitor, NRM, cluster
// manager, RAPL readers) can be hardened and regression-tested against
// every one of them.
//
// A Plan declares fault classes and rates; an Injector derives one
// independent seeded RNG stream per fault class (via simtime.RNG.Split),
// so runs are exactly reproducible given (plan, seed) and — critically —
// a disabled fault class draws no random numbers and perturbs nothing:
// with an all-zero Plan, every trace is byte-identical to a run with no
// injector installed.
//
// Fault classes and their injection surfaces:
//
//   - PubSubPlan  — progress-report transport faults (drop / delay /
//     duplicate / blackout), intercepted between the Reporter and the
//     in-process Bus by the engine; delayed messages re-enter later,
//     which also produces reordering. TCP disconnects are injected with
//     pubsub.(*Publisher).KickAll, driven by the Disconnects schedule.
//   - MSRPlan     — stale reads, transient EIO, and an energy-counter
//     seed just below the 32-bit wrap, through msr.Device's fault hook.
//   - CounterPlan — TOT_INS/L3_TCM read glitches and overflow offsets,
//     through counters.Bank's read hook.
//   - NodePlan    — node crash and slowdown mid-job, consumed by the
//     cluster manager.
package fault

import (
	"time"

	"progresscap/internal/simtime"
)

// Window is a half-open interval [From, To) of virtual time.
type Window struct {
	From, To time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.From && t < w.To }

// PubSubPlan injects progress-transport faults.
type PubSubPlan struct {
	// DropRate is the per-publish probability of silently losing the
	// report (the ZeroMQ lossy-publish artifact, dialed up).
	DropRate float64
	// DelayRate is the per-publish probability of delaying the report by
	// up to MaxDelay; delayed reports re-enter out of order relative to
	// later publishes, so this also injects reordering.
	DelayRate float64
	// MaxDelay bounds injected delays (default 200 ms).
	MaxDelay time.Duration
	// DupRate is the per-publish probability of delivering the report
	// twice (at-least-once transports re-deliver on retry).
	DupRate float64
	// Blackouts are windows during which every publish is dropped — the
	// total-silence scenario the NRM's degraded mode must ride through.
	Blackouts []Window
	// Disconnects schedules TCP transport kicks (consumed by whoever
	// drives a pubsub.Publisher; see KickDue).
	Disconnects []time.Duration
}

// Enabled reports whether the plan can perturb anything.
func (p PubSubPlan) Enabled() bool {
	return p.DropRate > 0 || p.DelayRate > 0 || p.DupRate > 0 ||
		len(p.Blackouts) > 0 || len(p.Disconnects) > 0
}

// MSRPlan injects model-specific-register access faults.
type MSRPlan struct {
	// StaleReadRate is the per-read probability of serving the previous
	// read's value instead of the current one.
	StaleReadRate float64
	// ReadEIORate / WriteEIORate are per-access probabilities of a
	// transient EIO (msr.ErrIO).
	ReadEIORate  float64
	WriteEIORate float64
	// EnergyWrapRaw, when nonzero, seeds the RAPL energy counters at the
	// given raw value so they wrap 32 bits early in the run — consumers
	// must use wraparound-safe deltas, not cumulative-from-zero reads.
	EnergyWrapRaw uint64
}

// Enabled reports whether the plan can perturb anything.
func (p MSRPlan) Enabled() bool {
	return p.StaleReadRate > 0 || p.ReadEIORate > 0 || p.WriteEIORate > 0 || p.EnergyWrapRaw != 0
}

// CounterPlan injects hardware-event-counter observation faults.
type CounterPlan struct {
	// GlitchRate is the per-read probability of a glitched observation:
	// alternately a spike (value × GlitchScale) and a backwards jump
	// (value / 2), both of which real PMU reads exhibit under counter
	// multiplexing bugs.
	GlitchRate float64
	// GlitchScale is the spike multiplier (default 1024).
	GlitchScale float64
	// OverflowOffset, when nonzero, is added to every observed value so
	// the 64-bit counter image wraps mid-run; modular deltas survive it,
	// naive ones explode.
	OverflowOffset uint64
}

// Enabled reports whether the plan can perturb anything.
func (p CounterPlan) Enabled() bool { return p.GlitchRate > 0 || p.OverflowOffset != 0 }

// NodePlan injects whole-node faults, consumed by the cluster manager.
type NodePlan struct {
	// CrashAt, when positive, stops the node dead at that virtual time:
	// its engine is no longer advanced and its progress stream goes
	// silent (the job manager must detect and fence it).
	CrashAt time.Duration
	// RecoverAt, when positive, revives a crashed node at that virtual
	// time (a reboot): its engine advances and reports again, and the
	// job manager may un-fence it after a clean probation. Zero means
	// the crash is permanent.
	RecoverAt time.Duration
	// SlowAt, when positive, throttles the node from that time on.
	SlowAt time.Duration
	// SlowFactor is the fraction of the node's maximum frequency the
	// slowdown leaves available (e.g. 0.5), a thermally-throttled or
	// degraded part.
	SlowFactor float64
}

// Plan is a complete fault-injection configuration for one run.
// The zero value injects nothing.
type Plan struct {
	// Seed drives every fault decision (default 1). Distinct fault
	// classes use independent Split streams, so enabling one class never
	// shifts another's decisions.
	Seed     uint64
	PubSub   PubSubPlan
	MSR      MSRPlan
	Counters CounterPlan
	// Powercap injects sysfs powercap-backend faults (see powercap.go).
	// It is a pointer with omitempty so the canonical serialization of
	// every pre-existing plan — and therefore every scenario hash, cache
	// key, and corpus entry — is unchanged when no powercap faults are
	// declared.
	Powercap *PowercapPlan `json:",omitempty"`
	// Nodes maps cluster node names to their fault plans.
	Nodes map[string]NodePlan
	// Partitions cut links between named actors (nodes and managers)
	// for windows of virtual time, consumed by the leased cluster's
	// message plane.
	Partitions []Partition
	// Managers maps job-manager names to their process fault plans
	// (kill, pause/resume), consumed by the replicated manager.
	Managers map[string]ManagerPlan
}

// Enabled reports whether the plan injects anything at all. A zero Plan
// (modulo Seed) is disabled and behaves exactly like running faultless.
func (p Plan) Enabled() bool {
	return p.PubSub.Enabled() || p.MSR.Enabled() || p.Counters.Enabled() ||
		(p.Powercap != nil && p.Powercap.Enabled()) ||
		len(p.Nodes) > 0 || len(p.Partitions) > 0 || len(p.Managers) > 0
}

// Injector instantiates a Plan's per-class fault generators.
type Injector struct {
	plan     Plan
	pubsub   *PubSub
	msr      *MSR
	counters *Counters
	powercap *Powercap
	nodes    map[string]*Node
	links    *Links
	managers map[string]*Manager
}

// NewInjector returns an injector for the plan.
func NewInjector(plan Plan) *Injector {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	root := simtime.NewRNG(plan.Seed)
	var pcPlan PowercapPlan
	if plan.Powercap != nil {
		pcPlan = *plan.Powercap
	}
	inj := &Injector{
		plan:     plan,
		pubsub:   newPubSub(plan.PubSub, root.Split(1)),
		msr:      newMSR(plan.MSR, root.Split(2)),
		counters: newCounters(plan.Counters, root.Split(3)),
		powercap: newPowercap(pcPlan, root.Split(4)),
		nodes:    make(map[string]*Node, len(plan.Nodes)),
		links:    newLinks(plan.Partitions),
		managers: make(map[string]*Manager, len(plan.Managers)),
	}
	for name, np := range plan.Nodes {
		inj.nodes[name] = &Node{plan: np}
	}
	for name, mp := range plan.Managers {
		inj.managers[name] = &Manager{plan: mp}
	}
	return inj
}

// Plan returns the injector's plan.
func (i *Injector) Plan() Plan { return i.plan }

// PubSub returns the transport fault generator.
func (i *Injector) PubSub() *PubSub { return i.pubsub }

// MSR returns the MSR fault generator.
func (i *Injector) MSR() *MSR { return i.msr }

// Counters returns the counter fault generator.
func (i *Injector) Counters() *Counters { return i.counters }

// Powercap returns the sysfs powercap-backend fault generator.
func (i *Injector) Powercap() *Powercap { return i.powercap }

// Node returns the named node's fault generator, or nil when the plan
// has none for it.
func (i *Injector) Node(name string) *Node { return i.nodes[name] }

// Links returns the partition-schedule reachability oracle.
func (i *Injector) Links() *Links { return i.links }

// Manager returns the named job manager's fault generator, or nil when
// the plan has none for it.
func (i *Injector) Manager(name string) *Manager { return i.managers[name] }
