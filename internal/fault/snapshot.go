// Checkpoint accessors for the fault-injection streams. A forked run
// builds its injector from the *target's* plan (hooks and rate tables
// come from construction) and then pours the donor's stream positions
// in: RNG cursors, the delayed-message queue, and the loss accounting.
// Node/link/manager streams never advance during a single-engine run —
// their split RNGs are untouched — so they are not part of the state.

package fault

import (
	"time"

	"progresscap/internal/pubsub"
	"progresscap/internal/simtime"
)

// DelayedMessage is one held message in the pub/sub delay queue.
type DelayedMessage struct {
	Due     time.Duration
	Seq     uint64
	Topic   string
	Payload []byte
}

// PubSubState is the mutable state of the pub/sub fault stream.
type PubSubState struct {
	RNG        simtime.RNGState
	Queue      []DelayedMessage
	Seq        uint64
	KickIdx    int
	Dropped    uint64
	DelayedN   uint64
	Duplicated uint64
	Blackout   uint64
}

// MSRState is the mutable state of the MSR fault stream.
type MSRState struct {
	RNG         simtime.RNGState
	StaleServed uint64
	ReadEIO     uint64
	WriteEIO    uint64
}

// CountersState is the mutable state of the counter fault stream.
type CountersState struct {
	RNG      simtime.RNGState
	Glitches uint64
	Spike    bool
}

// PowercapState is the mutable state of the powercap fault stream.
type PowercapState struct {
	RNG       simtime.RNGState
	Again     uint64
	EIO       uint64
	Truncated uint64
	Stale     uint64
	Denied    uint64
	Gone      uint64
}

// InjectorState bundles every stream that advances during an engine run.
type InjectorState struct {
	PubSub   PubSubState
	MSR      MSRState
	Counters CountersState
	Powercap PowercapState
}

// Snapshot captures the positions of all engine-visible fault streams.
func (inj *Injector) Snapshot() InjectorState {
	ps := inj.pubsub
	st := InjectorState{
		PubSub: PubSubState{
			RNG:        ps.rng.State(),
			Queue:      make([]DelayedMessage, len(ps.queue)),
			Seq:        ps.seq,
			KickIdx:    ps.kickIdx,
			Dropped:    ps.dropped,
			DelayedN:   ps.delayedN,
			Duplicated: ps.duplected,
			Blackout:   ps.blackout,
		},
		MSR: MSRState{
			RNG:         inj.msr.rng.State(),
			StaleServed: inj.msr.staleServed,
			ReadEIO:     inj.msr.readEIO,
			WriteEIO:    inj.msr.writeEIO,
		},
		Counters: CountersState{
			RNG:      inj.counters.rng.State(),
			Glitches: inj.counters.glitches,
			Spike:    inj.counters.spike,
		},
		Powercap: PowercapState{
			RNG:       inj.powercap.rng.State(),
			Again:     inj.powercap.again,
			EIO:       inj.powercap.eio,
			Truncated: inj.powercap.truncated,
			Stale:     inj.powercap.stale,
			Denied:    inj.powercap.denied,
			Gone:      inj.powercap.gone,
		},
	}
	for i, d := range ps.queue {
		st.PubSub.Queue[i] = DelayedMessage{
			Due:     d.due,
			Seq:     d.seq,
			Topic:   d.m.Topic,
			Payload: append([]byte(nil), d.m.Payload...),
		}
	}
	return st
}

// Restore pours captured stream positions into this injector. The
// injector should be freshly constructed from the run's plan; the
// stream RNGs are overwritten wholesale, so only position (not seed
// derivation) must match the donor.
func (inj *Injector) Restore(st InjectorState) {
	ps := inj.pubsub
	ps.rng.SetState(st.PubSub.RNG)
	ps.queue = make([]delayed, len(st.PubSub.Queue))
	for i, d := range st.PubSub.Queue {
		ps.queue[i] = delayed{
			due: d.Due,
			seq: d.Seq,
			m:   pubsub.Message{Topic: d.Topic, Payload: append([]byte(nil), d.Payload...)},
		}
	}
	ps.seq = st.PubSub.Seq
	ps.kickIdx = st.PubSub.KickIdx
	ps.dropped = st.PubSub.Dropped
	ps.delayedN = st.PubSub.DelayedN
	ps.duplected = st.PubSub.Duplicated
	ps.blackout = st.PubSub.Blackout

	inj.msr.rng.SetState(st.MSR.RNG)
	inj.msr.staleServed = st.MSR.StaleServed
	inj.msr.readEIO = st.MSR.ReadEIO
	inj.msr.writeEIO = st.MSR.WriteEIO

	inj.counters.rng.SetState(st.Counters.RNG)
	inj.counters.glitches = st.Counters.Glitches
	inj.counters.spike = st.Counters.Spike

	inj.powercap.rng.SetState(st.Powercap.RNG)
	inj.powercap.again = st.Powercap.Again
	inj.powercap.eio = st.Powercap.EIO
	inj.powercap.truncated = st.Powercap.Truncated
	inj.powercap.stale = st.Powercap.Stale
	inj.powercap.denied = st.Powercap.Denied
	inj.powercap.gone = st.Powercap.Gone
}
