package fault

import (
	"strings"
	"testing"
	"time"
)

func TestValidateAcceptsZeroPlan(t *testing.T) {
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan should validate: %v", err)
	}
}

func TestValidateAcceptsRealisticPlan(t *testing.T) {
	p := Plan{
		Seed: 7,
		PubSub: PubSubPlan{
			DropRate:    0.1,
			DelayRate:   0.05,
			MaxDelay:    150 * time.Millisecond,
			Blackouts:   []Window{{From: 2 * time.Second, To: 4 * time.Second}},
			Disconnects: []time.Duration{3 * time.Second},
		},
		MSR:      MSRPlan{StaleReadRate: 0.02, ReadEIORate: 0.01, EnergyWrapRaw: 1 << 31},
		Counters: CounterPlan{GlitchRate: 0.01, GlitchScale: 512},
		Nodes: map[string]NodePlan{
			"n0": {CrashAt: 5 * time.Second, RecoverAt: 9 * time.Second},
			"n1": {SlowAt: 3 * time.Second, SlowFactor: 0.5},
		},
		Managers: map[string]ManagerPlan{
			"m0": {PauseAt: 4 * time.Second, ResumeAt: 8 * time.Second},
		},
		Partitions: []Partition{{
			Window: Window{From: 6 * time.Second, To: 10 * time.Second},
			A:      []string{"n0"},
			B:      []string{"m0", "m1"},
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("realistic plan should validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"negative crash", Plan{Nodes: map[string]NodePlan{"n0": {CrashAt: -time.Second}}}, "negative"},
		{"recover before crash", Plan{Nodes: map[string]NodePlan{"n0": {CrashAt: 5 * time.Second, RecoverAt: 2 * time.Second}}}, "not after"},
		{"recover without crash", Plan{Nodes: map[string]NodePlan{"n0": {RecoverAt: 2 * time.Second}}}, "without a crash"},
		{"slow factor zero", Plan{Nodes: map[string]NodePlan{"n0": {SlowAt: time.Second}}}, "SlowFactor"},
		{"slow factor above one", Plan{Nodes: map[string]NodePlan{"n0": {SlowAt: time.Second, SlowFactor: 1.5}}}, "SlowFactor"},
		{"negative kill", Plan{Managers: map[string]ManagerPlan{"m0": {KillAt: -1}}}, "negative"},
		{"resume before pause", Plan{Managers: map[string]ManagerPlan{"m0": {PauseAt: 5 * time.Second, ResumeAt: 5 * time.Second}}}, "not after"},
		{"resume without pause", Plan{Managers: map[string]ManagerPlan{"m0": {ResumeAt: 5 * time.Second}}}, "without a pause"},
		{"empty partition window", Plan{Partitions: []Partition{{
			Window: Window{From: 2 * time.Second, To: 2 * time.Second}, A: []string{"a"}, B: []string{"b"},
		}}}, "empty or inverted"},
		{"inverted partition window", Plan{Partitions: []Partition{{
			Window: Window{From: 4 * time.Second, To: 2 * time.Second}, A: []string{"a"}, B: []string{"b"},
		}}}, "empty or inverted"},
		{"negative window start", Plan{Partitions: []Partition{{
			Window: Window{From: -time.Second, To: 2 * time.Second}, A: []string{"a"}, B: []string{"b"},
		}}}, "negative"},
		{"empty partition side", Plan{Partitions: []Partition{{
			Window: Window{From: time.Second, To: 2 * time.Second}, A: []string{"a"},
		}}}, "empty side"},
		{"actor on both sides", Plan{Partitions: []Partition{{
			Window: Window{From: time.Second, To: 2 * time.Second}, A: []string{"a"}, B: []string{"a", "b"},
		}}}, "both sides"},
		{"drop rate above one", Plan{PubSub: PubSubPlan{DropRate: 1.5}}, "outside [0, 1]"},
		{"negative delay rate", Plan{PubSub: PubSubPlan{DelayRate: -0.1}}, "outside [0, 1]"},
		{"negative max delay", Plan{PubSub: PubSubPlan{MaxDelay: -time.Second}}, "negative"},
		{"blackout empty", Plan{PubSub: PubSubPlan{Blackouts: []Window{{From: time.Second, To: time.Second}}}}, "empty or inverted"},
		{"disconnect at zero", Plan{PubSub: PubSubPlan{Disconnects: []time.Duration{0}}}, "not after time zero"},
		{"stale rate above one", Plan{MSR: MSRPlan{StaleReadRate: 2}}, "outside [0, 1]"},
		{"glitch rate negative", Plan{Counters: CounterPlan{GlitchRate: -1}}, "outside [0, 1]"},
		{"glitch scale negative", Plan{Counters: CounterPlan{GlitchRate: 0.1, GlitchScale: -2}}, "negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if err == nil {
				t.Fatalf("plan %+v should be rejected", c.plan)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
