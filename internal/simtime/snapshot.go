// Checkpoint accessors: the engine's checkpoint/fork layer snapshots a
// run mid-flight and pours the state into a freshly constructed engine.
// RNG stream position and ticker phase are the two pieces of simtime
// state that survive a fork; the clock itself restores through the
// ordinary AdvanceTo, and a scheduler with pending closures cannot be
// checkpointed at all (closures do not serialize), which the engine
// enforces by refusing to snapshot while Scheduler.Len() > 0.

package simtime

import "time"

// RNGState is the serializable position of one RNG stream. The inc field
// rides along so a restored generator is a whole-generator copy, not just
// a repositioned state: Split derives child streams from inc.
type RNGState struct {
	State uint64
	Inc   uint64
}

// State returns the generator's current position.
func (r *RNG) State() RNGState { return RNGState{State: r.state, Inc: r.inc} }

// SetState repositions the generator. Restoring the state captured from
// an identically seeded generator replays the exact draw sequence from
// the capture point.
func (r *RNG) SetState(s RNGState) {
	r.state = s.State
	r.inc = s.Inc
}

// SetNext repositions the ticker's next fire time. The period is
// construction-time configuration and does not move.
func (t *Ticker) SetNext(next time.Duration) { t.next = next }
