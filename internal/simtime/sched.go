package simtime

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At time.Duration
	Fn func(now time.Duration)

	seq int // tie-break so same-time events fire in schedule order
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic event queue over virtual time. Events
// scheduled for the same instant fire in the order they were scheduled.
type Scheduler struct {
	clock *Clock
	queue eventHeap
	seq   int
}

// NewScheduler returns a scheduler driving the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the clock the scheduler advances.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics, as it would silently reorder causality.
func (s *Scheduler) At(t time.Duration, fn func(now time.Duration)) {
	if t < s.clock.Now() {
		panic("simtime: event scheduled in the past")
	}
	s.seq++
	heap.Push(&s.queue, &Event{At: t, Fn: fn, seq: s.seq})
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d time.Duration, fn func(now time.Duration)) {
	s.At(s.clock.Now()+d, fn)
}

// NextAt returns the time of the earliest pending event. ok is false
// when the queue is empty. It is the scheduler's contribution to an
// event-horizon computation: a macro-stepping engine advances no further
// than the returned instant in one stride.
func (s *Scheduler) NextAt() (t time.Duration, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].At, true
}

// RunDue fires every event due at or before now, in (time, schedule)
// order, without touching the clock — the caller has already advanced it
// to now. Events scheduled from inside a firing callback are fired in the
// same call when they fall due at or before now. It returns the number of
// events executed.
func (s *Scheduler) RunDue(now time.Duration) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].At <= now {
		e := heap.Pop(&s.queue).(*Event)
		e.Fn(e.At)
		n++
	}
	return n
}

// Step runs the next pending event, advancing the clock to its time.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.clock.AdvanceTo(e.At)
	e.Fn(e.At)
	return true
}

// RunUntil runs events up to and including limit, advancing the clock to
// limit at the end even if no event lands exactly there. It returns the
// number of events executed.
func (s *Scheduler) RunUntil(limit time.Duration) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].At <= limit {
		s.Step()
		n++
	}
	if s.clock.Now() < limit {
		s.clock.AdvanceTo(limit)
	}
	return n
}

// Drain runs every pending event in order. It returns the number executed.
// Events may schedule further events; Drain keeps going until the queue is
// empty.
func (s *Scheduler) Drain() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}
