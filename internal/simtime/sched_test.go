package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var got []int
	s.At(3*time.Second, func(time.Duration) { got = append(got, 3) })
	s.At(1*time.Second, func(time.Duration) { got = append(got, 1) })
	s.At(2*time.Second, func(time.Duration) { got = append(got, 2) })
	s.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s.Clock().Now() != 3*time.Second {
		t.Fatalf("clock after drain = %v, want 3s", s.Clock().Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func(time.Duration) { got = append(got, i) })
	}
	s.Drain()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(NewClock(time.Minute))
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Second, func(time.Duration) {})
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(NewClock(0))
	ran := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func(time.Duration) { ran++ })
	}
	if n := s.RunUntil(3 * time.Second); n != 3 {
		t.Fatalf("RunUntil(3s) executed %d events, want 3", n)
	}
	if s.Clock().Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Clock().Now())
	}
	if s.Len() != 2 {
		t.Fatalf("pending = %d, want 2", s.Len())
	}
}

func TestSchedulerRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	s.RunUntil(42 * time.Second)
	if s.Clock().Now() != 42*time.Second {
		t.Fatalf("clock = %v, want 42s", s.Clock().Now())
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	count := 0
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Drain()
	if count != 5 {
		t.Fatalf("chained events ran %d times, want 5", count)
	}
	if s.Clock().Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Clock().Now())
	}
}

// Property: for any set of non-negative offsets, the scheduler fires
// events in non-decreasing time order.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		s := NewScheduler(NewClock(0))
		var fired []time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Millisecond
			s.At(at, func(now time.Duration) { fired = append(fired, now) })
		}
		s.Drain()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
