package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var got []int
	s.At(3*time.Second, func(time.Duration) { got = append(got, 3) })
	s.At(1*time.Second, func(time.Duration) { got = append(got, 1) })
	s.At(2*time.Second, func(time.Duration) { got = append(got, 2) })
	s.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s.Clock().Now() != 3*time.Second {
		t.Fatalf("clock after drain = %v, want 3s", s.Clock().Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func(time.Duration) { got = append(got, i) })
	}
	s.Drain()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(NewClock(time.Minute))
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Second, func(time.Duration) {})
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(NewClock(0))
	ran := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func(time.Duration) { ran++ })
	}
	if n := s.RunUntil(3 * time.Second); n != 3 {
		t.Fatalf("RunUntil(3s) executed %d events, want 3", n)
	}
	if s.Clock().Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Clock().Now())
	}
	if s.Len() != 2 {
		t.Fatalf("pending = %d, want 2", s.Len())
	}
}

func TestSchedulerRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	s.RunUntil(42 * time.Second)
	if s.Clock().Now() != 42*time.Second {
		t.Fatalf("clock = %v, want 42s", s.Clock().Now())
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	s := NewScheduler(NewClock(0))
	count := 0
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Drain()
	if count != 5 {
		t.Fatalf("chained events ran %d times, want 5", count)
	}
	if s.Clock().Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Clock().Now())
	}
}

func TestSchedulerAtCurrentInstant(t *testing.T) {
	s := NewScheduler(NewClock(time.Minute))
	ran := false
	// Scheduling at exactly the current instant is legal (only strictly
	// past times panic) and the event is immediately due.
	s.At(time.Minute, func(now time.Duration) {
		if now != time.Minute {
			t.Fatalf("callback now = %v, want 1m", now)
		}
		ran = true
	})
	if at, ok := s.NextAt(); !ok || at != time.Minute {
		t.Fatalf("NextAt = %v,%v, want 1m,true", at, ok)
	}
	if n := s.RunDue(time.Minute); n != 1 || !ran {
		t.Fatalf("RunDue at the current instant ran %d events (ran=%v), want 1", n, ran)
	}
	if s.Clock().Now() != time.Minute {
		t.Fatalf("RunDue moved the clock to %v", s.Clock().Now())
	}
}

// TestSchedulerSameInstantFIFOInterleaved pushes and pops around a
// same-instant burst: FIFO order among equal-time events must survive the
// heap churn of earlier events being consumed between the pushes.
func TestSchedulerSameInstantFIFOInterleaved(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var got []int
	s.At(time.Second, func(time.Duration) { got = append(got, 0) })
	s.At(3*time.Second, func(time.Duration) { got = append(got, 1) })
	s.At(3*time.Second, func(time.Duration) { got = append(got, 2) })
	if !s.Step() { // pop the 1s event; heap reorders internally
		t.Fatal("no event at 1s")
	}
	s.At(3*time.Second, func(time.Duration) { got = append(got, 3) })
	s.At(2*time.Second, func(time.Duration) { got = append(got, 4) })
	s.Step() // pop the 2s event between same-instant pushes
	s.At(3*time.Second, func(time.Duration) { got = append(got, 5) })
	s.Drain()
	want := []int{0, 4, 1, 2, 3, 5}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("interleaved same-instant order = %v, want %v", got, want)
		}
	}
}

// TestSchedulerCallbackSchedulesSameInstant verifies an event scheduled
// from inside a firing callback: due at the firing instant it runs in the
// same RunDue pass (after everything already queued there), due later it
// stays pending.
func TestSchedulerCallbackSchedulesSameInstant(t *testing.T) {
	s := NewScheduler(NewClock(0))
	var got []string
	s.At(time.Second, func(now time.Duration) {
		got = append(got, "first")
		s.At(now, func(time.Duration) { got = append(got, "nested-now") })
		s.At(now+time.Second, func(time.Duration) { got = append(got, "nested-later") })
	})
	s.At(time.Second, func(time.Duration) { got = append(got, "second") })
	s.Clock().AdvanceTo(time.Second)
	if n := s.RunDue(time.Second); n != 3 {
		t.Fatalf("RunDue(1s) ran %d events, want 3 (including the nested same-instant one)", n)
	}
	want := []string{"first", "second", "nested-now"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callback-scheduled order = %v, want %v", got, want)
		}
	}
	if at, ok := s.NextAt(); !ok || at != 2*time.Second {
		t.Fatalf("pending after RunDue: NextAt = %v,%v, want 2s,true", at, ok)
	}
	s.Drain()
	if got[len(got)-1] != "nested-later" {
		t.Fatalf("later nested event never fired: %v", got)
	}
}

func TestSchedulerNextAtEmpty(t *testing.T) {
	s := NewScheduler(NewClock(0))
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on an empty scheduler reported an event")
	}
}

// Property: for any set of non-negative offsets, the scheduler fires
// events in non-decreasing time order.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		s := NewScheduler(NewClock(0))
		var fired []time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Millisecond
			s.At(at, func(now time.Duration) { fired = append(fired, now) })
		}
		s.Drain()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
