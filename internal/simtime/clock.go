// Package simtime provides the virtual time base for the node simulation.
//
// All "per second" semantics in the repository (progress aggregation, the
// 1 Hz power-policy daemon, RAPL averaging windows) are defined against a
// virtual clock so that experiments run deterministically and orders of
// magnitude faster than wall time. The package also provides a small
// event scheduler and a seeded PCG random number generator so that no
// component depends on the global math/rand state.
package simtime

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value starts at time zero.
//
// Clock is not safe for concurrent use; the simulation engine owns it and
// advances it from a single goroutine.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock positioned at start.
func NewClock(start time.Duration) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Seconds returns the current virtual time in seconds.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }

// Advance moves the clock forward by d. It panics if d is negative:
// virtual time is monotone by construction, and a negative step always
// indicates a bug in the caller.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative clock advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to t. It panics if t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simtime: clock moved backwards: at %v, asked for %v", c.now, t))
	}
	c.now = t
}

// Ticker fires at a fixed period against a virtual clock. It is the
// virtual-time analogue of time.Ticker, used by the RAPL controller
// (millisecond windows) and the policy daemon (1 Hz).
type Ticker struct {
	period time.Duration
	next   time.Duration
}

// NewTicker returns a ticker with the given period whose first fire time
// is start+period.
func NewTicker(start, period time.Duration) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: ticker period must be positive, got %v", period))
	}
	return &Ticker{period: period, next: start + period}
}

// Period returns the ticker period.
func (t *Ticker) Period() time.Duration { return t.period }

// Next returns the next fire time.
func (t *Ticker) Next() time.Duration { return t.next }

// FiredAt reports whether the ticker fires at or before now, and if so
// consumes exactly one fire. Callers that may skip far ahead should loop.
func (t *Ticker) FiredAt(now time.Duration) bool {
	if now < t.next {
		return false
	}
	t.next += t.period
	return true
}

// CatchUp consumes every pending fire up to and including now and returns
// how many fired. It is used when an engine advances in coarse steps.
func (t *Ticker) CatchUp(now time.Duration) int {
	n := 0
	for t.FiredAt(now) {
		n++
	}
	return n
}
