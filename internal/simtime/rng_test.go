package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGJitterRange(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("Jitter(0.1) = %v out of [0.9,1.1]", j)
		}
	}
	if NewRNG(1).Jitter(0) != 1 {
		t.Fatal("Jitter(0) != 1")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestRNGSplitReproducible(t *testing.T) {
	a := NewRNG(5).Split(3)
	b := NewRNG(5).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split(3) not reproducible across identical parents")
		}
	}
}

// Property: Jitter(a) stays within [1-a, 1+a] for any amplitude in [0,1].
func TestRNGJitterProperty(t *testing.T) {
	r := NewRNG(17)
	prop := func(seed uint64, amp8 uint8) bool {
		amp := float64(amp8) / 255
		j := r.Jitter(amp)
		return j >= 1-amp-1e-12 && j <= 1+amp+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
