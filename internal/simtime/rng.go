package simtime

import "math"

// RNG is a small, fast, seeded PCG-XSH-RR 64/32 random number generator.
// Every stochastic element of the simulation (iteration jitter, workload
// imbalance noise, publish-loss artifacts) draws from an RNG owned by its
// component, so runs are reproducible given the experiment seed and
// independent of the global math/rand state.
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG returns a generator for the given seed. Distinct streams can be
// derived from one seed via Split.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed + 0x9e3779b97f4a7c15
	r.next()
	r.state += seed
	r.next()
	return r
}

// Split derives an independent generator from r, keyed by id. Two Splits
// with different ids produce uncorrelated streams; the same id always
// yields the same stream for a given parent state seed.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.inc*0x5851f42d4c957f2d + id*0x14057b7ef767814f + 0x632be59bd9b4e019)
}

func (r *RNG) next() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next())<<32 | uint64(r.next())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simtime: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns a multiplicative jitter factor uniform in
// [1-amplitude, 1+amplitude]. Amplitude 0 returns exactly 1.
func (r *RNG) Jitter(amplitude float64) float64 {
	if amplitude == 0 {
		return 1
	}
	return 1 + amplitude*(2*r.Float64()-1)
}
