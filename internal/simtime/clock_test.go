package simtime

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
	if c.Seconds() != 0 {
		t.Fatalf("zero clock Seconds() = %v, want 0", c.Seconds())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 1500*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if got := c.Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(0).Advance(-time.Nanosecond)
}

func TestClockAdvanceToBackwardsPanics(t *testing.T) {
	c := NewClock(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(time.Millisecond)
}

func TestClockAdvanceToSameInstantOK(t *testing.T) {
	c := NewClock(time.Second)
	c.AdvanceTo(time.Second) // no-op, must not panic
	if c.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", c.Now())
	}
}

func TestTickerFiresOnPeriod(t *testing.T) {
	tk := NewTicker(0, time.Second)
	if tk.FiredAt(999 * time.Millisecond) {
		t.Fatal("ticker fired before first period elapsed")
	}
	if !tk.FiredAt(time.Second) {
		t.Fatal("ticker did not fire at exactly one period")
	}
	if tk.FiredAt(1500 * time.Millisecond) {
		t.Fatal("ticker double-fired inside one period")
	}
	if !tk.FiredAt(2 * time.Second) {
		t.Fatal("ticker did not fire at second period")
	}
}

func TestTickerCatchUp(t *testing.T) {
	tk := NewTicker(0, 100*time.Millisecond)
	if got := tk.CatchUp(time.Second); got != 10 {
		t.Fatalf("CatchUp(1s) = %d fires, want 10", got)
	}
	if got := tk.CatchUp(time.Second); got != 0 {
		t.Fatalf("second CatchUp(1s) = %d fires, want 0", got)
	}
	if got, want := tk.Next(), 1100*time.Millisecond; got != want {
		t.Fatalf("Next() = %v, want %v", got, want)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker with zero period did not panic")
		}
	}()
	NewTicker(0, 0)
}

func TestTickerStartOffset(t *testing.T) {
	tk := NewTicker(5*time.Second, time.Second)
	if got, want := tk.Next(), 6*time.Second; got != want {
		t.Fatalf("Next() = %v, want %v", got, want)
	}
}
