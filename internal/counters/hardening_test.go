package counters

import (
	"testing"
	"time"
)

func TestReadHookPerturbsObservationsOnly(t *testing.T) {
	b := NewBank(2)
	b.Add(0, TotIns, 100)
	b.Add(1, TotIns, 100)
	b.SetReadHook(func(core int, e Event, v uint64) uint64 { return v * 2 })
	if got := b.Read(0, TotIns); got != 200 {
		t.Fatalf("hooked Read = %d, want 200", got)
	}
	if got := b.Total(TotIns); got != 400 {
		t.Fatalf("hooked Total = %d, want 400", got)
	}
	// Ground truth is untouched: removing the hook restores clean reads.
	b.SetReadHook(nil)
	if got := b.Total(TotIns); got != 200 {
		t.Fatalf("Total after hook removal = %d, want 200", got)
	}
}

func TestStopModularAcrossWraparound(t *testing.T) {
	b := NewBank(1)
	// Start the counter near the top of its 64-bit range via an overflow
	// hook, as a fault plan would.
	const offset = ^uint64(0) - 1000
	b.SetReadHook(func(core int, e Event, v uint64) uint64 { return v + offset })
	s := NewEventSet(b, TotIns)
	s.Start(0)
	b.Add(0, TotIns, 5000) // observed counter wraps 64 bits mid-interval
	r := s.Stop(time.Second)
	if got := r.Deltas[TotIns]; got != 5000 {
		t.Fatalf("wrapped delta = %d, want 5000 (modular subtraction)", got)
	}
	if len(r.Clamped) != 0 {
		t.Fatalf("plausible wrapped delta clamped: %v", r.Clamped)
	}
}

func TestStopClampsImplausibleDeltas(t *testing.T) {
	b := NewBank(1)
	b.Add(0, TotIns, 1000)
	s := NewEventSet(b, TotIns, TotCyc)
	s.Start(0)
	// A glitch hook makes the second observation a colossal spike —
	// far beyond what one core can retire in one second.
	b.SetReadHook(func(core int, e Event, v uint64) uint64 {
		if e == TotIns {
			return v + 1<<62
		}
		return v
	})
	b.Add(0, TotIns, 500)
	b.Add(0, TotCyc, 2000)
	r := s.Stop(time.Second)
	if got := r.Deltas[TotIns]; got != 0 {
		t.Fatalf("implausible delta = %d, want clamped to 0", got)
	}
	if len(r.Clamped) != 1 || r.Clamped[0] != TotIns {
		t.Fatalf("Clamped = %v, want [PAPI_TOT_INS]", r.Clamped)
	}
	if got := r.Deltas[TotCyc]; got != 2000 {
		t.Fatalf("clean event delta = %d, want 2000", got)
	}
	// Garbage must not leak into derived metrics.
	if r.MIPS() != 0 {
		t.Fatalf("MIPS from clamped reading = %v, want 0", r.MIPS())
	}
}
