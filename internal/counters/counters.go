// Package counters is the PAPI substitute: per-core hardware event
// counters maintained by the simulation and read through a PAPI-like
// event-set interface. The paper uses PAPI_TOT_INS and PAPI_L3_TCM to
// compute the MPO (misses per operation) metric, and total instructions
// over time for MIPS (Table I, Table VI).
package counters

import (
	"fmt"
	"sync"
	"time"
)

// Event identifies a hardware counter event.
type Event int

// Supported events, named after their PAPI presets.
const (
	TotIns   Event = iota // PAPI_TOT_INS: instructions completed
	TotCyc                // PAPI_TOT_CYC: total cycles
	L3TCM                 // PAPI_L3_TCM: L3 total cache misses
	RefCyc                // PAPI_REF_CYC: reference (fixed-frequency) cycles
	StallCyc              // stall cycles (memory-bound time proxy)
	numEvents
)

// String returns the PAPI-style name of the event.
func (e Event) String() string {
	switch e {
	case TotIns:
		return "PAPI_TOT_INS"
	case TotCyc:
		return "PAPI_TOT_CYC"
	case L3TCM:
		return "PAPI_L3_TCM"
	case RefCyc:
		return "PAPI_REF_CYC"
	case StallCyc:
		return "PAPI_STALL_CYC"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// ReadHook lets a fault-injection layer perturb counter values as they
// are read (glitches, overflow offsets). It receives the true value and
// returns the value the reader observes. It must be deterministic.
type ReadHook func(core int, e Event, v uint64) uint64

// Bank holds the counters for one node: numEvents counters per core.
// The simulation engine increments them; readers snapshot them through
// EventSets. Bank is safe for concurrent use.
type Bank struct {
	mu       sync.Mutex
	cores    int
	vals     [][]uint64 // [core][event]
	readHook ReadHook
}

// NewBank returns a zeroed counter bank for the given core count.
func NewBank(cores int) *Bank {
	if cores <= 0 {
		panic("counters: bank needs at least one core")
	}
	vals := make([][]uint64, cores)
	for i := range vals {
		vals[i] = make([]uint64, numEvents)
	}
	return &Bank{cores: cores, vals: vals}
}

// Cores returns the number of cores the bank covers.
func (b *Bank) Cores() int { return b.cores }

// SetReadHook installs (or, with nil, removes) the read-side fault hook.
// Writers (Add) are never perturbed: the simulation's ground truth stays
// intact; only observations degrade.
func (b *Bank) SetReadHook(h ReadHook) {
	b.mu.Lock()
	b.readHook = h
	b.mu.Unlock()
}

// observe applies the read hook, if any.
func (b *Bank) observe(core int, e Event, v uint64) uint64 {
	if b.readHook == nil {
		return v
	}
	return b.readHook(core, e, v)
}

// Add increments an event counter on a core.
func (b *Bank) Add(core int, e Event, delta uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.vals[core][e] += delta
}

// Read returns the current value of an event counter on a core.
func (b *Bank) Read(core int, e Event) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.observe(core, e, b.vals[core][e])
}

// Total returns the event count summed over all cores.
func (b *Bank) Total(e Event) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var sum uint64
	for c := 0; c < b.cores; c++ {
		sum += b.observe(c, e, b.vals[c][e])
	}
	return sum
}

// Snapshot returns a copy of every counter, indexed [core][event].
func (b *Bank) Snapshot() [][]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]uint64, b.cores)
	for c := range out {
		out[c] = append([]uint64(nil), b.vals[c]...)
	}
	return out
}

// EventSet is the PAPI-style reading interface: it remembers the counter
// values at Start and yields deltas at Stop/Read, aggregated over all
// cores.
type EventSet struct {
	bank   *Bank
	events []Event
	start  map[Event]uint64
	began  time.Duration
}

// NewEventSet creates an event set over the given events.
func NewEventSet(bank *Bank, events ...Event) *EventSet {
	if len(events) == 0 {
		panic("counters: empty event set")
	}
	return &EventSet{bank: bank, events: append([]Event(nil), events...)}
}

// Start latches the current counter values at virtual time now.
func (s *EventSet) Start(now time.Duration) {
	s.start = make(map[Event]uint64, len(s.events))
	for _, e := range s.events {
		s.start[e] = s.bank.Total(e)
	}
	s.began = now
}

// Reading is the result of a counter interval.
type Reading struct {
	Deltas  map[Event]uint64
	Elapsed time.Duration
	// Clamped lists events whose deltas were physically implausible
	// (counter glitch or mid-interval corruption) and were zeroed rather
	// than propagated into derived metrics.
	Clamped []Event
}

// maxEventsPerCoreSecond bounds how many events one core can plausibly
// retire per second: a generous 16 events per cycle at a generous 5 GHz.
// Anything above it is a glitched observation, not a measurement.
const maxEventsPerCoreSecond = 16 * 5e9

// Stop returns the deltas accumulated since Start, computed modularly so
// a counter wraparound between Start and Stop is handled exactly. Deltas
// beyond the physical event-rate bound (possible only with read faults
// injected) are zeroed and recorded in Clamped — garbage must not leak
// into MIPS/IPC/MPO. Calling Stop before Start panics.
func (s *EventSet) Stop(now time.Duration) Reading {
	if s.start == nil {
		panic("counters: EventSet.Stop before Start")
	}
	r := Reading{Deltas: make(map[Event]uint64, len(s.events)), Elapsed: now - s.began}
	sec := r.Elapsed.Seconds()
	if sec < 1 {
		sec = 1
	}
	bound := uint64(sec * float64(s.bank.Cores()) * maxEventsPerCoreSecond)
	for _, e := range s.events {
		d := s.bank.Total(e) - s.start[e] // modular: exact across wraparound
		if d > bound {
			d = 0
			r.Clamped = append(r.Clamped, e)
		}
		r.Deltas[e] = d
	}
	return r
}

// MIPS returns million instructions per second over the reading interval.
func (r Reading) MIPS() float64 {
	sec := r.Elapsed.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(r.Deltas[TotIns]) / 1e6 / sec
}

// IPC returns instructions per cycle over the reading interval.
func (r Reading) IPC() float64 {
	cyc := r.Deltas[TotCyc]
	if cyc == 0 {
		return 0
	}
	return float64(r.Deltas[TotIns]) / float64(cyc)
}

// MPO returns misses per operation: L3 total cache misses divided by
// instructions completed (Table VI). Zero instructions yields 0.
func (r Reading) MPO() float64 {
	ins := r.Deltas[TotIns]
	if ins == 0 {
		return 0
	}
	return float64(r.Deltas[L3TCM]) / float64(ins)
}
