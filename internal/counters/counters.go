// Package counters is the PAPI substitute: per-core hardware event
// counters maintained by the simulation and read through a PAPI-like
// event-set interface. The paper uses PAPI_TOT_INS and PAPI_L3_TCM to
// compute the MPO (misses per operation) metric, and total instructions
// over time for MIPS (Table I, Table VI).
package counters

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Event identifies a hardware counter event.
type Event int

// Supported events, named after their PAPI presets.
const (
	TotIns   Event = iota // PAPI_TOT_INS: instructions completed
	TotCyc                // PAPI_TOT_CYC: total cycles
	L3TCM                 // PAPI_L3_TCM: L3 total cache misses
	RefCyc                // PAPI_REF_CYC: reference (fixed-frequency) cycles
	StallCyc              // stall cycles (memory-bound time proxy)
	numEvents
)

// String returns the PAPI-style name of the event.
func (e Event) String() string {
	switch e {
	case TotIns:
		return "PAPI_TOT_INS"
	case TotCyc:
		return "PAPI_TOT_CYC"
	case L3TCM:
		return "PAPI_L3_TCM"
	case RefCyc:
		return "PAPI_REF_CYC"
	case StallCyc:
		return "PAPI_STALL_CYC"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// ReadHook lets a fault-injection layer perturb counter values as they
// are read (glitches, overflow offsets). It receives the true value and
// returns the value the reader observes. It must be deterministic.
type ReadHook func(core int, e Event, v uint64) uint64

// Bank holds the counters for one node: numEvents counters per core.
// The simulation engine increments them; readers snapshot them through
// EventSets. Bank is safe for concurrent use.
//
// Counters live in a flat per-core/per-event array of atomics rather
// than behind a mutex: Add sits on the engine's per-tick hot path (up to
// one call per rank per event per tick) and a lock/unlock pair per
// increment dominated the whole-engine profile. The trade is snapshot
// consistency: Total and Snapshot read each cell atomically but do not
// freeze the bank as a whole, so a reader racing a writer may observe a
// sum that interleaves two in-flight ticks. Within the simulation the
// engine is single-goroutine per bank, and cross-tick interleaving is
// exactly what a real PAPI read of a running core observes anyway.
type Bank struct {
	cores    int
	vals     []atomic.Uint64 // flat [core*numEvents + event]
	readHook atomic.Pointer[ReadHook]
}

// NewBank returns a zeroed counter bank for the given core count.
func NewBank(cores int) *Bank {
	if cores <= 0 {
		panic("counters: bank needs at least one core")
	}
	return &Bank{cores: cores, vals: make([]atomic.Uint64, cores*int(numEvents))}
}

// Cores returns the number of cores the bank covers.
func (b *Bank) Cores() int { return b.cores }

// SetReadHook installs (or, with nil, removes) the read-side fault hook.
// Writers (Add) are never perturbed: the simulation's ground truth stays
// intact; only observations degrade.
func (b *Bank) SetReadHook(h ReadHook) {
	if h == nil {
		b.readHook.Store(nil)
		return
	}
	b.readHook.Store(&h)
}

// observe applies the read hook, if any.
func (b *Bank) observe(core int, e Event, v uint64) uint64 {
	h := b.readHook.Load()
	if h == nil {
		return v
	}
	return (*h)(core, e, v)
}

// cell returns the flat index for a core/event pair, bounds-checked by
// the slice access itself for events and explicitly for cores.
func (b *Bank) cell(core int, e Event) int {
	if core < 0 || core >= b.cores {
		panic(fmt.Sprintf("counters: core %d outside bank of %d cores", core, b.cores))
	}
	return core*int(numEvents) + int(e)
}

// Add increments an event counter on a core.
func (b *Bank) Add(core int, e Event, delta uint64) {
	b.vals[b.cell(core, e)].Add(delta)
}

// Read returns the current value of an event counter on a core.
func (b *Bank) Read(core int, e Event) uint64 {
	return b.observe(core, e, b.vals[b.cell(core, e)].Load())
}

// Total returns the event count summed over all cores.
func (b *Bank) Total(e Event) uint64 {
	var sum uint64
	for c := 0; c < b.cores; c++ {
		sum += b.observe(c, e, b.vals[c*int(numEvents)+int(e)].Load())
	}
	return sum
}

// Snapshot returns a copy of every counter, indexed [core][event].
func (b *Bank) Snapshot() [][]uint64 {
	out := make([][]uint64, b.cores)
	for c := range out {
		row := make([]uint64, numEvents)
		for e := 0; e < int(numEvents); e++ {
			row[e] = b.vals[c*int(numEvents)+e].Load()
		}
		out[c] = row
	}
	return out
}

// EventSet is the PAPI-style reading interface: it remembers the counter
// values at Start and yields deltas at Stop/Read, aggregated over all
// cores.
type EventSet struct {
	bank   *Bank
	events []Event
	start  map[Event]uint64
	began  time.Duration
}

// NewEventSet creates an event set over the given events.
func NewEventSet(bank *Bank, events ...Event) *EventSet {
	if len(events) == 0 {
		panic("counters: empty event set")
	}
	return &EventSet{bank: bank, events: append([]Event(nil), events...)}
}

// Start latches the current counter values at virtual time now.
func (s *EventSet) Start(now time.Duration) {
	s.start = make(map[Event]uint64, len(s.events))
	for _, e := range s.events {
		s.start[e] = s.bank.Total(e)
	}
	s.began = now
}

// Reading is the result of a counter interval.
type Reading struct {
	Deltas  map[Event]uint64
	Elapsed time.Duration
	// Clamped lists events whose deltas were physically implausible
	// (counter glitch or mid-interval corruption) and were zeroed rather
	// than propagated into derived metrics.
	Clamped []Event
}

// maxEventsPerCoreSecond bounds how many events one core can plausibly
// retire per second: a generous 16 events per cycle at a generous 5 GHz.
// Anything above it is a glitched observation, not a measurement.
const maxEventsPerCoreSecond = 16 * 5e9

// Stop returns the deltas accumulated since Start, computed modularly so
// a counter wraparound between Start and Stop is handled exactly. Deltas
// beyond the physical event-rate bound (possible only with read faults
// injected) are zeroed and recorded in Clamped — garbage must not leak
// into MIPS/IPC/MPO. Calling Stop before Start panics.
func (s *EventSet) Stop(now time.Duration) Reading {
	if s.start == nil {
		panic("counters: EventSet.Stop before Start")
	}
	r := Reading{Deltas: make(map[Event]uint64, len(s.events)), Elapsed: now - s.began}
	sec := r.Elapsed.Seconds()
	if sec < 1 {
		sec = 1
	}
	bound := uint64(sec * float64(s.bank.Cores()) * maxEventsPerCoreSecond)
	for _, e := range s.events {
		d := s.bank.Total(e) - s.start[e] // modular: exact across wraparound
		if d > bound {
			d = 0
			r.Clamped = append(r.Clamped, e)
		}
		r.Deltas[e] = d
	}
	return r
}

// MIPS returns million instructions per second over the reading interval.
func (r Reading) MIPS() float64 {
	sec := r.Elapsed.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(r.Deltas[TotIns]) / 1e6 / sec
}

// IPC returns instructions per cycle over the reading interval.
func (r Reading) IPC() float64 {
	cyc := r.Deltas[TotCyc]
	if cyc == 0 {
		return 0
	}
	return float64(r.Deltas[TotIns]) / float64(cyc)
}

// MPO returns misses per operation: L3 total cache misses divided by
// instructions completed (Table VI). Zero instructions yields 0.
func (r Reading) MPO() float64 {
	ins := r.Deltas[TotIns]
	if ins == 0 {
		return 0
	}
	return float64(r.Deltas[L3TCM]) / float64(ins)
}
