package counters

import (
	"sync"
	"testing"
	"time"
)

func TestBankAddRead(t *testing.T) {
	b := NewBank(4)
	b.Add(0, TotIns, 100)
	b.Add(0, TotIns, 50)
	b.Add(3, TotIns, 25)
	if got := b.Read(0, TotIns); got != 150 {
		t.Fatalf("Read = %d", got)
	}
	if got := b.Total(TotIns); got != 175 {
		t.Fatalf("Total = %d", got)
	}
	if got := b.Total(L3TCM); got != 0 {
		t.Fatalf("untouched Total = %d", got)
	}
}

func TestBankZeroCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBank(0) did not panic")
		}
	}()
	NewBank(0)
}

func TestBankSnapshotIsCopy(t *testing.T) {
	b := NewBank(2)
	b.Add(1, L3TCM, 7)
	snap := b.Snapshot()
	snap[1][L3TCM] = 999
	if b.Read(1, L3TCM) != 7 {
		t.Fatal("Snapshot aliases bank storage")
	}
}

func TestBankConcurrentAdd(t *testing.T) {
	b := NewBank(8)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Add(c, TotCyc, 1)
			}
		}(c)
	}
	wg.Wait()
	if got := b.Total(TotCyc); got != 8000 {
		t.Fatalf("concurrent Total = %d, want 8000", got)
	}
}

func TestEventSetDeltas(t *testing.T) {
	b := NewBank(2)
	b.Add(0, TotIns, 1000) // pre-existing counts must not leak into deltas
	es := NewEventSet(b, TotIns, L3TCM)
	es.Start(0)
	b.Add(0, TotIns, 500)
	b.Add(1, TotIns, 500)
	b.Add(1, L3TCM, 10)
	r := es.Stop(2 * time.Second)
	if r.Deltas[TotIns] != 1000 {
		t.Fatalf("TotIns delta = %d", r.Deltas[TotIns])
	}
	if r.Deltas[L3TCM] != 10 {
		t.Fatalf("L3TCM delta = %d", r.Deltas[L3TCM])
	}
	if r.Elapsed != 2*time.Second {
		t.Fatalf("Elapsed = %v", r.Elapsed)
	}
}

func TestEventSetStopBeforeStartPanics(t *testing.T) {
	es := NewEventSet(NewBank(1), TotIns)
	defer func() {
		if recover() == nil {
			t.Fatal("Stop before Start did not panic")
		}
	}()
	es.Stop(time.Second)
}

func TestEmptyEventSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty event set did not panic")
		}
	}()
	NewEventSet(NewBank(1))
}

func TestReadingMIPS(t *testing.T) {
	r := Reading{Deltas: map[Event]uint64{TotIns: 2_000_000}, Elapsed: time.Second}
	if got := r.MIPS(); got != 2 {
		t.Fatalf("MIPS = %v", got)
	}
	r.Elapsed = 0
	if got := r.MIPS(); got != 0 {
		t.Fatalf("zero-interval MIPS = %v", got)
	}
}

func TestReadingIPC(t *testing.T) {
	r := Reading{Deltas: map[Event]uint64{TotIns: 300, TotCyc: 100}}
	if got := r.IPC(); got != 3 {
		t.Fatalf("IPC = %v", got)
	}
	r.Deltas[TotCyc] = 0
	if got := r.IPC(); got != 0 {
		t.Fatalf("zero-cycle IPC = %v", got)
	}
}

func TestReadingMPO(t *testing.T) {
	r := Reading{Deltas: map[Event]uint64{TotIns: 1000, L3TCM: 30}}
	if got := r.MPO(); got != 0.03 {
		t.Fatalf("MPO = %v", got)
	}
	r.Deltas[TotIns] = 0
	if got := r.MPO(); got != 0 {
		t.Fatalf("zero-ins MPO = %v", got)
	}
}

func TestEventNames(t *testing.T) {
	if TotIns.String() != "PAPI_TOT_INS" || L3TCM.String() != "PAPI_L3_TCM" {
		t.Fatal("event names wrong")
	}
	if Event(99).String() != "Event(99)" {
		t.Fatal("unknown event name wrong")
	}
}
