// Checkpoint accessors. Bank state is read and written through the
// atomics directly, never through observe(): a snapshot must capture the
// simulation's ground truth without consuming fault-injection randomness,
// and a restore must not look like a read to the fault layer.

package counters

import "time"

// BankState is a flat copy of every counter cell
// (index = core*numEvents + event), matching the bank's internal layout.
type BankState struct {
	Vals []uint64
}

// SnapshotState captures every counter cell raw (no read hook applied).
func (b *Bank) SnapshotState() BankState {
	out := make([]uint64, len(b.vals))
	for i := range b.vals {
		out[i] = b.vals[i].Load()
	}
	return BankState{Vals: out}
}

// RestoreState pours captured cells back. The state must come from a
// bank with the same core count.
func (b *Bank) RestoreState(s BankState) {
	if len(s.Vals) != len(b.vals) {
		panic("counters: bank state size mismatch")
	}
	for i, v := range s.Vals {
		b.vals[i].Store(v)
	}
}

// EventSetState is the mutable state of an EventSet: the values latched
// at Start (which already went through any fault hook on the donor, so
// they restore verbatim) and the interval anchor.
type EventSetState struct {
	Start map[Event]uint64
	Began time.Duration
}

// SnapshotState captures the event set's latched baseline.
func (s *EventSet) SnapshotState() EventSetState {
	var start map[Event]uint64
	if s.start != nil {
		start = make(map[Event]uint64, len(s.start))
		for e, v := range s.start {
			start[e] = v
		}
	}
	return EventSetState{Start: start, Began: s.began}
}

// RestoreState pours a captured baseline back. It replaces whatever
// Start latched, so a restored engine must not call Start again.
func (s *EventSet) RestoreState(st EventSetState) {
	if st.Start == nil {
		s.start = nil
	} else {
		s.start = make(map[Event]uint64, len(st.Start))
		for e, v := range st.Start {
			s.start[e] = v
		}
	}
	s.began = st.Began
}
