package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	bad := []Config{
		{Cores: 0, MinMHz: 1000, NomMHz: 2000, MaxMHz: 3000, StepMHz: 100},
		{Cores: 1, MinMHz: 1000, NomMHz: 2000, MaxMHz: 3000, StepMHz: 0},
		{Cores: 1, MinMHz: 0, NomMHz: 2000, MaxMHz: 3000, StepMHz: 100},
		{Cores: 1, MinMHz: 2500, NomMHz: 2000, MaxMHz: 3000, StepMHz: 100},
		{Cores: 1, MinMHz: 1000, NomMHz: 3500, MaxMHz: 3000, StepMHz: 100},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
}

func TestLadder(t *testing.T) {
	l := DefaultConfig().Ladder()
	if l[0] != 1000 || l[len(l)-1] != 3300 {
		t.Fatalf("ladder ends = %v, %v", l[0], l[len(l)-1])
	}
	if len(l) != 24 { // 1000..3300 step 100
		t.Fatalf("ladder length = %d, want 24", len(l))
	}
	for i := 1; i < len(l); i++ {
		if math.Abs(l[i]-l[i-1]-100) > 1e-9 {
			t.Fatalf("ladder step at %d: %v -> %v", i, l[i-1], l[i])
		}
	}
}

func TestQuantize(t *testing.T) {
	c := DefaultConfig()
	cases := []struct{ in, want float64 }{
		{3300, 3300}, {5000, 3300}, {1000, 1000}, {500, 1000},
		{2650, 2600}, {2699, 2600}, {2600, 2600},
	}
	for _, tc := range cases {
		if got := c.Quantize(tc.in); got != tc.want {
			t.Errorf("Quantize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Property: Quantize output is always on the ladder and never exceeds the
// request (when the request is above the minimum).
func TestQuantizeProperty(t *testing.T) {
	c := DefaultConfig()
	onLadder := make(map[float64]bool)
	for _, f := range c.Ladder() {
		onLadder[f] = true
	}
	prop := func(raw uint16) bool {
		req := float64(raw) // 0..65535 MHz
		got := c.Quantize(req)
		if !onLadder[got] {
			return false
		}
		if req >= c.MinMHz && got > req {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainStartsUncapped(t *testing.T) {
	d, err := NewDomain(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.CurrentMHz() != 3300 || d.Duty() != 1 || d.EffectiveMHz() != 3300 {
		t.Fatalf("initial state: f=%v duty=%v", d.CurrentMHz(), d.Duty())
	}
}

func TestDomainRejectsBadConfig(t *testing.T) {
	if _, err := NewDomain(Config{}); err == nil {
		t.Fatal("NewDomain accepted zero config")
	}
}

func TestDomainSetTarget(t *testing.T) {
	d, _ := NewDomain(DefaultConfig())
	if got := d.SetTargetMHz(2345); got != 2300 {
		t.Fatalf("granted %v, want 2300", got)
	}
	if d.CurrentMHz() != 2300 {
		t.Fatalf("CurrentMHz = %v", d.CurrentMHz())
	}
}

func TestDomainDutyClamping(t *testing.T) {
	d, _ := NewDomain(DefaultConfig())
	if got := d.SetDuty(2); got != 1 {
		t.Fatalf("duty clamp high = %v", got)
	}
	if got := d.SetDuty(0); got != 1.0/16 {
		t.Fatalf("duty clamp low = %v", got)
	}
	d.SetDuty(0.5)
	d.SetTargetMHz(2000)
	if d.EffectiveMHz() != 1000 {
		t.Fatalf("EffectiveMHz = %v, want 1000", d.EffectiveMHz())
	}
}

func TestUncoreDefaults(t *testing.T) {
	u := NewUncore()
	if u.BWScale() != 1 || u.MemTimeFactor() != 1 {
		t.Fatalf("initial uncore: %v, %v", u.BWScale(), u.MemTimeFactor())
	}
}

func TestUncoreScaleAndFactor(t *testing.T) {
	u := NewUncore()
	if got := u.SetBWScale(0.5); got != 0.5 {
		t.Fatalf("SetBWScale = %v", got)
	}
	if u.MemTimeFactor() != 2 {
		t.Fatalf("MemTimeFactor = %v, want 2", u.MemTimeFactor())
	}
	if got := u.SetBWScale(0.01); got != 0.1 {
		t.Fatalf("floor clamp = %v, want 0.1", got)
	}
	if got := u.SetBWScale(5); got != 1 {
		t.Fatalf("ceiling clamp = %v, want 1", got)
	}
}
