// Package cpu models the processor's frequency-control surface: the
// P-state ladder shared by all cores of a package (package-wide DVFS, as
// RAPL actuates it), dynamic duty cycle modulation (DDCM), and the uncore
// memory subsystem whose bandwidth RAPL can scale down at stringent power
// caps (uncore DVFS).
//
// The paper's testbed is a dual-socket Xeon Gold 6126; we model the node
// as a single 24-core package with a 1.0–3.3 GHz range in 100 MHz steps
// (3.3 GHz is the all-core turbo the paper treats as f_max, 1.6 GHz the
// low point used for β characterization).
package cpu

import (
	"fmt"
	"math"
)

// Config describes the frequency-control capabilities of a package.
type Config struct {
	Cores   int
	MinMHz  float64
	NomMHz  float64 // nominal (non-turbo) frequency
	MaxMHz  float64 // maximum all-core turbo
	StepMHz float64 // P-state granularity
}

// DefaultConfig models the paper's Skylake node: 24 cores, 1.0–3.3 GHz in
// 100 MHz steps, 2.6 GHz nominal.
func DefaultConfig() Config {
	return Config{Cores: 24, MinMHz: 1000, NomMHz: 2600, MaxMHz: 3300, StepMHz: 100}
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("cpu: Cores = %d, need >= 1", c.Cores)
	case c.StepMHz <= 0:
		return fmt.Errorf("cpu: StepMHz = %v, need > 0", c.StepMHz)
	case c.MinMHz <= 0 || c.MinMHz > c.NomMHz || c.NomMHz > c.MaxMHz:
		return fmt.Errorf("cpu: frequency range min=%v nom=%v max=%v is not ordered", c.MinMHz, c.NomMHz, c.MaxMHz)
	}
	return nil
}

// Ladder returns the P-state frequencies from MinMHz to MaxMHz inclusive,
// ascending, quantized by StepMHz.
func (c Config) Ladder() []float64 {
	var out []float64
	for f := c.MinMHz; f <= c.MaxMHz+1e-9; f += c.StepMHz {
		out = append(out, math.Round(f/c.StepMHz)*c.StepMHz)
	}
	return out
}

// Quantize snaps a requested frequency onto the ladder, rounding down
// (hardware grants at most the requested performance) and clamping to the
// supported range.
func (c Config) Quantize(mhz float64) float64 {
	if mhz <= c.MinMHz {
		return c.MinMHz
	}
	if mhz >= c.MaxMHz {
		return c.MaxMHz
	}
	return math.Floor(mhz/c.StepMHz) * c.StepMHz
}

// Domain is the package frequency domain: one shared P-state plus a
// package-wide duty cycle. The zero value is unusable; use NewDomain.
type Domain struct {
	cfg     Config
	freq    float64
	duty    float64 // (0,1], 1 = no modulation
	ceiling float64 // 0 = none; else max grantable P-state (throttled part)
}

// NewDomain returns a domain running at maximum turbo with no clock
// modulation (the uncapped state the paper starts every experiment from).
func NewDomain(cfg Config) (*Domain, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Domain{cfg: cfg, freq: cfg.MaxMHz, duty: 1}, nil
}

// Config returns the domain's configuration.
func (d *Domain) Config() Config { return d.cfg }

// CurrentMHz returns the current P-state frequency.
func (d *Domain) CurrentMHz() float64 { return d.freq }

// SetTargetMHz requests a frequency; the granted, quantized value is
// returned. A throttle ceiling, if set, caps the grant regardless of the
// request — exactly as firmware overrides OS P-state requests.
func (d *Domain) SetTargetMHz(mhz float64) float64 {
	d.freq = d.cfg.Quantize(mhz)
	if d.ceiling > 0 && d.freq > d.ceiling {
		d.freq = d.ceiling
	}
	return d.freq
}

// SetCeilingMHz imposes (or, with 0, clears) a frequency ceiling below
// which every grant is clamped — a thermally throttled or degraded part
// that no longer reaches its rated P-states. The current frequency is
// clamped immediately.
func (d *Domain) SetCeilingMHz(mhz float64) {
	if mhz <= 0 {
		d.ceiling = 0
		return
	}
	c := d.cfg.Quantize(mhz)
	d.ceiling = c
	if d.freq > c {
		d.freq = c
	}
}

// CeilingMHz returns the active throttle ceiling (0 when none).
func (d *Domain) CeilingMHz() float64 { return d.ceiling }

// Duty returns the current effective duty cycle.
func (d *Domain) Duty() float64 { return d.duty }

// SetDuty sets the DDCM duty cycle, clamped to [1/16, 1].
func (d *Domain) SetDuty(duty float64) float64 {
	if duty > 1 {
		duty = 1
	}
	if duty < 1.0/16 {
		duty = 1.0 / 16
	}
	d.duty = duty
	return d.duty
}

// EffectiveMHz returns the throughput-equivalent frequency: P-state
// frequency scaled by the duty cycle. Compute time scales with
// 1/EffectiveMHz.
func (d *Domain) EffectiveMHz() float64 { return d.freq * d.duty }

// Uncore models the off-core memory subsystem. BWScale in (0,1] is the
// fraction of full memory bandwidth currently granted; RAPL lowers it at
// stringent caps when the core side alone cannot satisfy the budget.
// These are the "additional means" (§VI-B) the paper's DVFS-only model
// cannot capture.
type Uncore struct {
	bwScale float64
}

// NewUncore returns an uncore at full bandwidth.
func NewUncore() *Uncore { return &Uncore{bwScale: 1} }

// BWScale returns the granted bandwidth fraction.
func (u *Uncore) BWScale() float64 { return u.bwScale }

// SetBWScale clamps and sets the bandwidth fraction. The floor of 0.1
// models the minimum uncore operating point.
func (u *Uncore) SetBWScale(s float64) float64 {
	if s > 1 {
		s = 1
	}
	if s < 0.1 {
		s = 0.1
	}
	u.bwScale = s
	return u.bwScale
}

// MemTimeFactor returns the multiplier applied to memory-stall time under
// the current bandwidth grant (1 at full bandwidth).
func (u *Uncore) MemTimeFactor() float64 { return 1 / u.bwScale }
