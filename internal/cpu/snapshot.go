// Checkpoint accessors: the frequency domain and uncore restore their
// fields raw, bypassing the quantizing/clamping setters — the captured
// values already went through quantization on the donor run, and pushing
// them through the setters again could round a ceiling-clamped frequency
// differently than the donor held it.

package cpu

// DomainState is the mutable state of a frequency Domain (the Config is
// construction-time and not part of it).
type DomainState struct {
	FreqMHz    float64
	Duty       float64
	CeilingMHz float64
}

// Snapshot captures the domain's operating point.
func (d *Domain) Snapshot() DomainState {
	return DomainState{FreqMHz: d.freq, Duty: d.duty, CeilingMHz: d.ceiling}
}

// Restore pours a captured operating point back, raw.
func (d *Domain) Restore(s DomainState) {
	d.freq = s.FreqMHz
	d.duty = s.Duty
	d.ceiling = s.CeilingMHz
}

// UncoreState is the mutable state of the Uncore.
type UncoreState struct {
	BWScale float64
}

// Snapshot captures the uncore's bandwidth grant.
func (u *Uncore) Snapshot() UncoreState { return UncoreState{BWScale: u.bwScale} }

// Restore pours a captured bandwidth grant back, raw.
func (u *Uncore) Restore(s UncoreState) { u.bwScale = s.BWScale }
