package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewTeamInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0)
}

func TestParallelRunsEveryThreadOnce(t *testing.T) {
	team := NewTeam(7)
	var counts [7]int32
	team.Parallel(func(th int) {
		atomic.AddInt32(&counts[th], 1)
	})
	for th, n := range counts {
		if n != 1 {
			t.Fatalf("thread %d ran %d times", th, n)
		}
	}
}

func TestParallelPropagatesPanic(t *testing.T) {
	team := NewTeam(4)
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic not propagated")
		}
	}()
	team.Parallel(func(th int) {
		if th == 2 {
			panic("worker died")
		}
	})
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	team := NewTeam(6)
	const n = 1000
	var hits [n]int32
	team.ParallelFor(n, func(i, th int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForStaticBlocks(t *testing.T) {
	team := NewTeam(4)
	owner := make([]int32, 100)
	team.ParallelFor(100, func(i, th int) {
		atomic.StoreInt32(&owner[i], int32(th))
	})
	// Static schedule: thread owner is non-decreasing over indices.
	for i := 1; i < 100; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("ownership not contiguous at %d: %v < %v", i, owner[i], owner[i-1])
		}
	}
	if owner[0] != 0 || owner[99] != 3 {
		t.Fatalf("block ends owned by %d and %d", owner[0], owner[99])
	}
}

func TestParallelForEmpty(t *testing.T) {
	team := NewTeam(3)
	ran := false
	team.ParallelFor(0, func(i, th int) { ran = true })
	team.ParallelFor(-5, func(i, th int) { ran = true })
	if ran {
		t.Fatal("body ran for empty range")
	}
}

func TestParallelForFewerItemsThanThreads(t *testing.T) {
	team := NewTeam(8)
	var total int32
	team.ParallelFor(3, func(i, th int) { atomic.AddInt32(&total, 1) })
	if total != 3 {
		t.Fatalf("visited %d items, want 3", total)
	}
}

func TestParallelForDynamicCoversRange(t *testing.T) {
	team := NewTeam(5)
	const n = 777
	var hits [n]int32
	team.ParallelForDynamic(n, 10, func(i, th int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForDynamicIrregularLoad(t *testing.T) {
	// With one pathological index, dynamic scheduling must still visit
	// every index exactly once (and not deadlock).
	team := NewTeam(4)
	var total int32
	team.ParallelForDynamic(64, 1, func(i, th int) {
		if i == 0 {
			for j := 0; j < 100000; j++ {
				_ = j * j
			}
		}
		atomic.AddInt32(&total, 1)
	})
	if total != 64 {
		t.Fatalf("visited %d, want 64", total)
	}
}

func TestParallelForDynamicEdges(t *testing.T) {
	team := NewTeam(3)
	ran := false
	team.ParallelForDynamic(0, 4, func(i, th int) { ran = true })
	if ran {
		t.Fatal("body ran for empty range")
	}
	var n int32
	team.ParallelForDynamic(5, 0, func(i, th int) { atomic.AddInt32(&n, 1) }) // chunk clamps to 1
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestParallelSum(t *testing.T) {
	team := NewTeam(5)
	got := team.ParallelSum(100, func(i int) float64 { return float64(i) })
	if got != 4950 {
		t.Fatalf("sum = %v, want 4950", got)
	}
	if team.ParallelSum(0, func(int) float64 { return 1 }) != 0 {
		t.Fatal("empty sum != 0")
	}
}

// Property: ParallelSum equals the serial sum for any team size and n.
func TestParallelSumProperty(t *testing.T) {
	prop := func(threads8 uint8, n16 uint16) bool {
		threads := int(threads8%16) + 1
		n := int(n16 % 500)
		team := NewTeam(threads)
		got := team.ParallelSum(n, func(i int) float64 { return float64(i * i) })
		var want float64
		for i := 0; i < n; i++ {
			want += float64(i * i)
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
