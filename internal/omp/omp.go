// Package omp is a miniature fork-join threading runtime — the
// repository's stand-in for the OpenMP runtime that parallelizes
// QMCPACK, OpenMC, and STREAM in the paper (24 pinned threads, one per
// physical core). It provides a fixed-size thread team, parallel regions,
// statically scheduled parallel-for loops, and a sum reduction.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Team is a reusable group of worker threads.
type Team struct {
	threads int
}

// NewTeam returns a team of n threads. It panics if n < 1.
func NewTeam(n int) *Team {
	if n < 1 {
		panic(fmt.Sprintf("omp: team size %d invalid", n))
	}
	return &Team{threads: n}
}

// NumThreads returns the team size.
func (t *Team) NumThreads() int { return t.threads }

// Parallel runs body once on every thread concurrently and waits for all
// of them (an `omp parallel` region). Panics in workers propagate to the
// caller after every worker has finished.
func (t *Team) Parallel(body func(thread int)) {
	var wg sync.WaitGroup
	panics := make([]interface{}, t.threads)
	for th := 0; th < t.threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			defer func() { panics[th] = recover() }()
			body(th)
		}(th)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// ParallelFor executes body(i, thread) for i in [0, n) across the team
// with static scheduling: thread k owns the contiguous block
// [k·n/threads, (k+1)·n/threads).
func (t *Team) ParallelFor(n int, body func(i, thread int)) {
	if n <= 0 {
		return
	}
	t.Parallel(func(th int) {
		lo := th * n / t.threads
		hi := (th + 1) * n / t.threads
		for i := lo; i < hi; i++ {
			body(i, th)
		}
	})
}

// ParallelForDynamic executes body(i, thread) for i in [0, n) with
// dynamic scheduling: threads grab chunkSize-sized blocks from a shared
// counter as they finish, which balances irregular iteration costs (an
// `omp parallel for schedule(dynamic, chunk)`).
func (t *Team) ParallelForDynamic(n, chunkSize int, body func(i, thread int)) {
	if n <= 0 {
		return
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	var next int64
	t.Parallel(func(th int) {
		for {
			lo := int(atomic.AddInt64(&next, int64(chunkSize))) - chunkSize
			if lo >= n {
				return
			}
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i, th)
			}
		}
	})
}

// ParallelSum evaluates f(i) for i in [0, n) across the team and returns
// the sum (an `omp parallel for reduction(+:...)`).
func (t *Team) ParallelSum(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	partial := make([]float64, t.threads)
	t.Parallel(func(th int) {
		lo := th * n / t.threads
		hi := (th + 1) * n / t.threads
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[th] = s
	})
	var total float64
	for _, s := range partial {
		total += s
	}
	return total
}
