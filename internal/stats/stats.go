// Package stats provides the small set of descriptive statistics the
// experiment harness needs: summary moments, percentiles, relative error,
// and correlation. It is deliberately minimal and allocation-light; the
// benchmark harness calls these on every sample window.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
// An empty input returns 0; p is clamped to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelErr returns |measured-predicted| / |measured| as a fraction.
// The paper reports model error this way (relative to the measured value).
// A zero measured value with nonzero predicted returns +Inf; 0/0 returns 0.
func RelErr(measured, predicted float64) float64 {
	diff := math.Abs(measured - predicted)
	if measured == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff / math.Abs(measured)
}

// RelErrPct returns RelErr as a percentage.
func RelErrPct(measured, predicted float64) float64 {
	return 100 * RelErr(measured, predicted)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ; it returns 0 if either side has zero
// variance or fewer than two points.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CoefVar returns the coefficient of variation (std/mean) of xs, used to
// classify progress metrics as "consistent" vs "fluctuating" (Fig 1).
// A zero mean returns +Inf unless the sample is empty or constant-zero.
func CoefVar(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		if s.Std == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.Std / math.Abs(s.Mean)
}

// MovingAvg returns the centered moving average of xs with the given
// window width (made odd by rounding up). Edges average over the
// available neighbors. A width of 1 or less returns a copy of xs.
func MovingAvg(xs []float64, width int) []float64 {
	out := make([]float64, len(xs))
	if width <= 1 {
		copy(out, xs)
		return out
	}
	half := width / 2
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Clamp limits v to [lo, hi]. It panics if lo > hi.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("stats: Clamp with lo %v > hi %v", lo, hi))
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1]; t outside the
// range extrapolates.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
