package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single Summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean([2,4]) != 3")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(100, 87); !almost(got, 0.13, 1e-12) {
		t.Fatalf("RelErr(100,87) = %v, want 0.13", got)
	}
	if got := RelErrPct(100, 113); !almost(got, 13, 1e-9) {
		t.Fatalf("RelErrPct(100,113) = %v, want 13", got)
	}
	if !math.IsInf(RelErr(0, 1), 1) {
		t.Fatal("RelErr(0,1) should be +Inf")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) should be 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); !almost(got, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("zero-variance correlation = %v, want 0", got)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pearson length mismatch did not panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestCoefVar(t *testing.T) {
	if got := CoefVar([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant CoefVar = %v", got)
	}
	cv := CoefVar([]float64{1, 3})
	if !almost(cv, math.Sqrt2/2, 1e-12) {
		t.Fatalf("CoefVar([1,3]) = %v", cv)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}

func TestClampInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(lo>hi) did not panic")
		}
	}()
	Clamp(1, 3, 0)
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.5) != 5 || Lerp(10, 20, 0) != 10 || Lerp(10, 20, 1) != 20 {
		t.Fatal("Lerp wrong")
	}
}

// Property: mean is bounded by min and max; std >= 0.
func TestSummaryBoundsProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonRangeProperty(t *testing.T) {
	prop := func(pairs []struct{ A, B int8 }) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			xs[i] = float64(p.A)
			ys[i] = float64(p.B)
		}
		r := Pearson(xs, ys)
		r2 := Pearson(ys, xs)
		return r >= -1-1e-9 && r <= 1+1e-9 && almost(r, r2, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
