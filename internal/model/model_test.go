package model

import (
	"math"
	"testing"
	"testing/quick"
)

func params(t *testing.T, beta, rMax, pCoreMax float64) Params {
	t.Helper()
	p := Params{Beta: beta, Alpha: DefaultAlpha, RMax: rMax, PCoreMaxW: pCoreMax}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTimeRatioIdentityAtFmax(t *testing.T) {
	if got := TimeRatio(0.7, 3300, 3300); got != 1 {
		t.Fatalf("T(fmax)/T(fmax) = %v", got)
	}
}

func TestTimeRatioComputeBound(t *testing.T) {
	// β=1: halving frequency doubles time.
	if got := TimeRatio(1, 3300, 1650); got != 2 {
		t.Fatalf("ratio = %v, want 2", got)
	}
	// β=0: frequency has no effect.
	if got := TimeRatio(0, 3300, 1000); got != 1 {
		t.Fatalf("ratio = %v, want 1", got)
	}
}

func TestBetaFromTimesInvertsTimeRatio(t *testing.T) {
	for _, beta := range []float64{0.1, 0.37, 0.52, 0.84, 1.0} {
		tMax := 10.0
		tLow := tMax * TimeRatio(beta, 3300, 1600)
		got := BetaFromTimes(tMax, tLow, 3300, 1600)
		if math.Abs(got-beta) > 1e-12 {
			t.Errorf("β round trip %v -> %v", beta, got)
		}
	}
}

func TestBetaFromTimesPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("f >= fmax did not panic")
		}
	}()
	BetaFromTimes(1, 2, 1600, 3300)
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Beta: 0, Alpha: 2, RMax: 1, PCoreMaxW: 100},
		{Beta: 1.5, Alpha: 2, RMax: 1, PCoreMaxW: 100},
		{Beta: 0.5, Alpha: 0.5, RMax: 1, PCoreMaxW: 100},
		{Beta: 0.5, Alpha: 2, RMax: 0, PCoreMaxW: 100},
		{Beta: 0.5, Alpha: 2, RMax: 1, PCoreMaxW: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d validated: %+v", i, p)
		}
	}
}

func TestFromBaseline(t *testing.T) {
	p, err := FromBaseline(0.84, 16, 180)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha != DefaultAlpha || p.RMax != 16 {
		t.Fatalf("params = %+v", p)
	}
	if math.Abs(p.PCoreMaxW-0.84*180) > 1e-12 {
		t.Fatalf("PCoreMax = %v", p.PCoreMaxW)
	}
	if _, err := FromBaseline(0, 16, 180); err == nil {
		t.Fatal("β=0 accepted")
	}
}

func TestProgressUnboundCap(t *testing.T) {
	p := params(t, 0.84, 16, 150)
	if got := p.ProgressAtCoreCap(150); got != 16 {
		t.Fatalf("progress at P_coremax = %v", got)
	}
	if got := p.ProgressAtCoreCap(500); got != 16 {
		t.Fatalf("progress above P_coremax = %v", got)
	}
	if got := p.DeltaProgressAtCoreCap(150); got != 0 {
		t.Fatalf("δ at P_coremax = %v", got)
	}
}

func TestProgressEq4Value(t *testing.T) {
	// Hand-computed: β=1, α=2, Pmax=160, cap=40 → (160/40)^0.5 = 2,
	// denom = 1·(2−1)+1 = 2 → progress halves.
	p := params(t, 1, 100, 160)
	if got := p.ProgressAtCoreCap(40); math.Abs(got-50) > 1e-9 {
		t.Fatalf("progress = %v, want 50", got)
	}
	if got := p.DeltaProgressAtCoreCap(40); math.Abs(got-50) > 1e-9 {
		t.Fatalf("δ = %v, want 50", got)
	}
}

func TestMemoryBoundLessSensitive(t *testing.T) {
	// The same relative core cap hurts a memory-bound code less.
	compute := params(t, 1.0, 100, 160)
	memory := params(t, 0.37, 100, 160)
	dc := compute.DeltaProgressAtCoreCap(60)
	dm := memory.DeltaProgressAtCoreCap(60)
	if dm >= dc {
		t.Fatalf("memory-bound δ %v not below compute-bound δ %v", dm, dc)
	}
}

func TestPredictUsesEq5Split(t *testing.T) {
	p := params(t, 0.5, 10, 80)
	// Package cap 100 → core cap 50.
	want := p.ProgressAtCoreCap(50)
	if got := p.PredictProgress(100); got != want {
		t.Fatalf("PredictProgress = %v, want %v", got, want)
	}
	if got := p.PredictDelta(100); math.Abs(got-(10-want)) > 1e-12 {
		t.Fatalf("PredictDelta = %v", got)
	}
}

func TestProgressMonotoneInCap(t *testing.T) {
	p := params(t, 0.84, 16, 150)
	prev := -1.0
	for cap := 10.0; cap <= 200; cap += 5 {
		got := p.ProgressAtCoreCap(cap)
		if got < prev {
			t.Fatalf("progress not monotone at cap %v", cap)
		}
		prev = got
	}
}

func TestZeroCapZeroProgress(t *testing.T) {
	p := params(t, 0.8, 10, 100)
	if p.ProgressAtCoreCap(0) != 0 || p.ProgressAtCoreCap(-5) != 0 {
		t.Fatal("non-positive cap should yield zero progress")
	}
}

func TestCapForProgressInvertsModel(t *testing.T) {
	p := params(t, 0.84, 16, 150)
	for _, target := range []float64{4, 8, 12, 15.9} {
		cap, err := p.CapForProgress(target)
		if err != nil {
			t.Fatal(err)
		}
		back := p.ProgressAtCoreCap(cap)
		if math.Abs(back-target) > 1e-9 {
			t.Fatalf("target %v → cap %v → progress %v", target, cap, back)
		}
	}
}

func TestCapForProgressEdges(t *testing.T) {
	p := params(t, 0.5, 10, 100)
	cap, err := p.CapForProgress(10)
	if err != nil || cap != 100 {
		t.Fatalf("target=RMax: %v, %v", cap, err)
	}
	cap, err = p.CapForProgress(25)
	if err != nil || cap != 100 {
		t.Fatalf("target>RMax: %v, %v", cap, err)
	}
	if _, err := p.CapForProgress(0); err == nil {
		t.Fatal("target 0 accepted")
	}
}

func TestPackageCapForProgress(t *testing.T) {
	p := params(t, 0.5, 10, 100)
	pkg, err := p.PackageCapForProgress(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PredictProgress(pkg); math.Abs(got-5) > 1e-9 {
		t.Fatalf("round trip progress = %v", got)
	}
}

// Property: δ is non-negative, bounded by RMax, and non-increasing in the
// cap for any valid parameters.
func TestDeltaProperty(t *testing.T) {
	prop := func(betaRaw, capRaw1, capRaw2 uint8) bool {
		beta := 0.05 + float64(betaRaw)/255*0.95
		p := Params{Beta: beta, Alpha: 2, RMax: 10, PCoreMaxW: 150}
		c1 := 1 + float64(capRaw1)/255*200
		c2 := 1 + float64(capRaw2)/255*200
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		d1, d2 := p.DeltaProgressAtCoreCap(c1), p.DeltaProgressAtCoreCap(c2)
		return d1 >= -1e-12 && d1 <= 10+1e-12 && d2 <= d1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher α (for a sub-max cap) predicts a smaller impact,
// because frequency falls more slowly with power.
func TestAlphaSensitivity(t *testing.T) {
	for _, cap := range []float64{30, 60, 90, 120} {
		p2 := Params{Beta: 0.8, Alpha: 2, RMax: 10, PCoreMaxW: 150}
		p3 := Params{Beta: 0.8, Alpha: 3, RMax: 10, PCoreMaxW: 150}
		if p3.DeltaProgressAtCoreCap(cap) > p2.DeltaProgressAtCoreCap(cap)+1e-12 {
			t.Fatalf("α=3 predicted larger impact than α=2 at cap %v", cap)
		}
	}
}
