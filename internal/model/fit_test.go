package model

import (
	"math"
	"testing"
)

func TestFitAlphaRecoversTrueExponent(t *testing.T) {
	// Generate calibration points from a known α=3 model and check the
	// fit recovers it starting from the paper's α=2 default.
	truth := Params{Beta: 0.8, Alpha: 3, RMax: 10, PCoreMaxW: 150}
	base := truth.WithAlpha(DefaultAlpha)
	var pts []CalibrationPoint
	for _, cap := range []float64{160, 130, 100, 80, 60} {
		pts = append(pts, CalibrationPoint{PkgCapW: cap, Rate: truth.PredictProgress(cap)})
	}
	fitted, err := FitAlpha(base, pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fitted.Alpha-3) > 0.051 {
		t.Fatalf("fitted α = %v, want ~3", fitted.Alpha)
	}
	// The fit must not touch the other parameters.
	if fitted.Beta != base.Beta || fitted.RMax != base.RMax || fitted.PCoreMaxW != base.PCoreMaxW {
		t.Fatalf("fit mutated parameters: %+v", fitted)
	}
}

func TestFitAlphaImprovesOverDefault(t *testing.T) {
	truth := Params{Beta: 0.6, Alpha: 3.4, RMax: 16, PCoreMaxW: 140}
	base := truth.WithAlpha(DefaultAlpha)
	var pts []CalibrationPoint
	for _, cap := range []float64{150, 120, 90, 70} {
		pts = append(pts, CalibrationPoint{PkgCapW: cap, Rate: truth.PredictProgress(cap)})
	}
	fitted, err := FitAlpha(base, pts)
	if err != nil {
		t.Fatal(err)
	}
	sse := func(p Params) float64 {
		var s float64
		for _, pt := range pts {
			d := p.PredictProgress(pt.PkgCapW) - pt.Rate
			s += d * d
		}
		return s
	}
	if sse(fitted) >= sse(base) {
		t.Fatalf("fit did not improve: %v vs %v", sse(fitted), sse(base))
	}
}

func TestFitAlphaStaysInPaperRange(t *testing.T) {
	base := Params{Beta: 0.9, Alpha: 2, RMax: 10, PCoreMaxW: 150}
	// Pathological points (rates unrelated to any α): fit must still
	// return α within [1, 4].
	pts := []CalibrationPoint{{PkgCapW: 100, Rate: 1}, {PkgCapW: 50, Rate: 9}}
	fitted, err := FitAlpha(base, pts)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.Alpha < 1 || fitted.Alpha > 4 {
		t.Fatalf("fitted α = %v outside [1,4]", fitted.Alpha)
	}
}

func TestFitAlphaValidation(t *testing.T) {
	good := Params{Beta: 0.5, Alpha: 2, RMax: 1, PCoreMaxW: 100}
	if _, err := FitAlpha(good, []CalibrationPoint{{PkgCapW: 100, Rate: 1}}); err == nil {
		t.Fatal("single point accepted")
	}
	bad := good
	bad.Beta = 0
	if _, err := FitAlpha(bad, []CalibrationPoint{{100, 1}, {50, 0.5}}); err == nil {
		t.Fatal("invalid base accepted")
	}
}

func TestWithAlpha(t *testing.T) {
	p := Params{Beta: 0.5, Alpha: 2, RMax: 1, PCoreMaxW: 100}
	q := p.WithAlpha(3)
	if q.Alpha != 3 || p.Alpha != 2 {
		t.Fatal("WithAlpha wrong or mutating")
	}
}
