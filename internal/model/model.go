// Package model implements the paper's analytical model of the impact of
// RAPL package power capping on application progress (§VI).
//
// Starting from the Etinski DVFS time model (Eq. 1) and the classical
// P_core ∝ f^α relation (Eq. 2), progress as a function of core power is
// (Eq. 4):
//
//	r(P_core) = r(P_coremax) / ( β·((P_coremax/P_core)^(1/α) − 1) + 1 )
//
// With the paper's two RAPL assumptions — the package cap is split
// between core and uncore in the ratio of the application's
// compute-boundedness (P_corecap = β·P_cap, Eq. 5) and a capped
// application uses all the power it is given (Eq. 6) — the change in
// progress under an effective core cap is (Eq. 7):
//
//	δ_progress = r(P_coremax) · [ 1 − 1/( β·((P_coremax/P_corecap)^(1/α) − 1) + 1 ) ]
//
// The paper fixes α = 2 for all predictions; DefaultAlpha follows.
package model

import (
	"fmt"
	"math"
)

// DefaultAlpha is the α the paper uses for every model prediction (§VI:
// "α is assumed to have a value of 2 for all model predictions").
const DefaultAlpha = 2.0

// TimeRatio is Eq. 1: T(f)/T(fmax) = β(fmax/f − 1) + 1.
func TimeRatio(beta, fmax, f float64) float64 {
	if f <= 0 || fmax <= 0 {
		panic(fmt.Sprintf("model: non-positive frequency %v/%v", f, fmax))
	}
	return beta*(fmax/f-1) + 1
}

// BetaFromTimes inverts Eq. 1: given execution times at two frequencies
// it returns β. This is the paper's §IV-A characterization procedure
// (times at 3300 MHz and 1600 MHz).
func BetaFromTimes(tAtFmax, tAtF, fmax, f float64) float64 {
	if tAtFmax <= 0 || f <= 0 || fmax <= f {
		panic(fmt.Sprintf("model: invalid beta inputs t=%v/%v f=%v/%v", tAtFmax, tAtF, fmax, f))
	}
	return (tAtF/tAtFmax - 1) / (fmax/f - 1)
}

// Params is a fitted model for one application.
type Params struct {
	// Beta is the application's compute-boundedness (§IV-A, Table VI).
	Beta float64
	// Alpha is the frequency exponent of core power (Eq. 2).
	Alpha float64
	// RMax is the progress rate at the uncapped core power P_coremax,
	// in the application's metric units per second.
	RMax float64
	// PCoreMaxW is the core power at the uncapped operating point. The
	// paper estimates it as β times the uncapped package power, since
	// only package-level power is observable.
	PCoreMaxW float64
}

// Validate rejects non-physical parameters.
func (p Params) Validate() error {
	switch {
	case p.Beta <= 0 || p.Beta > 1:
		return fmt.Errorf("model: β=%v outside (0,1]", p.Beta)
	case p.Alpha < 1 || p.Alpha > 4:
		return fmt.Errorf("model: α=%v outside [1,4]", p.Alpha)
	case p.RMax <= 0:
		return fmt.Errorf("model: r(P_coremax)=%v invalid", p.RMax)
	case p.PCoreMaxW <= 0:
		return fmt.Errorf("model: P_coremax=%v invalid", p.PCoreMaxW)
	}
	return nil
}

// FromBaseline builds Params from an uncapped measurement using the
// paper's estimates: P_coremax = β · P_pkg,uncapped and α = DefaultAlpha.
func FromBaseline(beta, uncappedRate, uncappedPkgW float64) (Params, error) {
	p := Params{
		Beta:      beta,
		Alpha:     DefaultAlpha,
		RMax:      uncappedRate,
		PCoreMaxW: beta * uncappedPkgW,
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// EffectiveCoreCap is Eq. 5: the core budget RAPL is assumed to allocate
// under a package cap.
func (p Params) EffectiveCoreCap(pkgCapW float64) float64 {
	return p.Beta * pkgCapW
}

// ProgressAtCoreCap is Eq. 4 evaluated at an effective core cap. Core
// caps at or above P_coremax return RMax (the cap is not binding).
func (p Params) ProgressAtCoreCap(pCoreCapW float64) float64 {
	if pCoreCapW <= 0 {
		return 0
	}
	if pCoreCapW >= p.PCoreMaxW {
		return p.RMax
	}
	denom := p.Beta*(math.Pow(p.PCoreMaxW/pCoreCapW, 1/p.Alpha)-1) + 1
	return p.RMax / denom
}

// DeltaProgressAtCoreCap is Eq. 7: the drop in progress when the
// effective core cap pCoreCapW is applied from the uncapped state.
func (p Params) DeltaProgressAtCoreCap(pCoreCapW float64) float64 {
	return p.RMax - p.ProgressAtCoreCap(pCoreCapW)
}

// PredictProgress applies Eqs. 5+4: progress under a package cap.
func (p Params) PredictProgress(pkgCapW float64) float64 {
	return p.ProgressAtCoreCap(p.EffectiveCoreCap(pkgCapW))
}

// PredictDelta applies Eqs. 5+7: change in progress under a package cap.
func (p Params) PredictDelta(pkgCapW float64) float64 {
	return p.RMax - p.PredictProgress(pkgCapW)
}

// CapForProgress inverts the model: the effective core cap needed to
// sustain a target progress rate (the paper's third modeling goal:
// "decide on the exact power budget to be employed given an expectation
// of online performance"). Targets at or above RMax return PCoreMaxW;
// non-positive targets are invalid.
func (p Params) CapForProgress(targetRate float64) (coreCapW float64, err error) {
	if targetRate <= 0 {
		return 0, fmt.Errorf("model: non-positive target rate %v", targetRate)
	}
	if targetRate >= p.RMax {
		return p.PCoreMaxW, nil
	}
	// Invert Eq. 4: denom = RMax/target; (Pmax/Pcap)^(1/α) = (denom-1)/β + 1.
	denom := p.RMax / targetRate
	base := (denom-1)/p.Beta + 1
	return p.PCoreMaxW / math.Pow(base, p.Alpha), nil
}

// PackageCapForProgress inverts Eq. 5 on top of CapForProgress.
func (p Params) PackageCapForProgress(targetRate float64) (pkgCapW float64, err error) {
	core, err := p.CapForProgress(targetRate)
	if err != nil {
		return 0, err
	}
	return core / p.Beta, nil
}

// WithAlpha returns a copy of the parameters with a different frequency
// exponent.
func (p Params) WithAlpha(alpha float64) Params {
	p.Alpha = alpha
	return p
}

// CalibrationPoint is one measured (package cap, progress rate) pair
// used to fit α.
type CalibrationPoint struct {
	PkgCapW float64
	Rate    float64
}

// FitAlpha implements the improvement the paper's discussion calls for
// (§VI-3: "our experiments indicate that this value varies between 1 and
// 4 depending on the range of the power cap"): instead of fixing α = 2,
// fit it to a small calibration sweep by minimizing the sum of squared
// progress-prediction errors over a fine grid of α ∈ [1, 4].
func FitAlpha(base Params, points []CalibrationPoint) (Params, error) {
	if err := base.Validate(); err != nil {
		return Params{}, err
	}
	if len(points) < 2 {
		return Params{}, fmt.Errorf("model: FitAlpha needs at least 2 calibration points, got %d", len(points))
	}
	bestAlpha, bestErr := base.Alpha, math.Inf(1)
	for alpha := 1.0; alpha <= 4.0+1e-9; alpha += 0.05 {
		cand := base.WithAlpha(alpha)
		var sse float64
		for _, pt := range points {
			d := cand.PredictProgress(pt.PkgCapW) - pt.Rate
			sse += d * d
		}
		if sse < bestErr {
			bestErr = sse
			bestAlpha = alpha
		}
	}
	return base.WithAlpha(bestAlpha), nil
}
