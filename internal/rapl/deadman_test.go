package rapl

import (
	"testing"
	"time"

	"progresscap/internal/msr"
)

// TestDeadmanRevertsToFirmwareDefault is the acceptance test for the cap
// deadman: a daemon programs an aggressive cap and dies; after TTL of
// un-re-armed virtual time the package reverts to the firmware-default
// cap, so the stale cap cannot strand the node.
func TestDeadmanRevertsToFirmwareDefault(t *testing.T) {
	r := newRig(t)
	if err := r.ctl.SetDeadman(Deadman{TTL: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	const staleCapW = 60
	if err := WriteLimit(r.dev, staleCapW, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// 40 ms of ticks: still within TTL, the cap must hold.
	r.runSteady(40, 1, 0.05)
	pl1, err := r.ctl.Limit()
	if err != nil {
		t.Fatal(err)
	}
	if !pl1.Enabled || pl1.Watts != staleCapW {
		t.Fatalf("cap before TTL: %+v, want enabled %v W", pl1, staleCapW)
	}
	if r.ctl.DeadmanExpired() || r.ctl.DeadmanTrips() != 0 {
		t.Fatalf("deadman tripped early: expired=%v trips=%d",
			r.ctl.DeadmanExpired(), r.ctl.DeadmanTrips())
	}

	// 20 more ms with no re-arm: the TTL expires, the register reverts.
	r.runSteady(20, 1, 0.05)
	pl1, err = r.ctl.Limit()
	if err != nil {
		t.Fatal(err)
	}
	if !pl1.Enabled || pl1.Watts != FirmwareDefaultCapW {
		t.Fatalf("cap after TTL: %+v, want firmware default %v W", pl1, FirmwareDefaultCapW)
	}
	if !r.ctl.DeadmanExpired() || r.ctl.DeadmanTrips() != 1 {
		t.Fatalf("expired=%v trips=%d, want tripped once",
			r.ctl.DeadmanExpired(), r.ctl.DeadmanTrips())
	}
	// The trip must not repeat while still un-armed.
	r.runSteady(100, 1, 0.05)
	if r.ctl.DeadmanTrips() != 1 {
		t.Fatalf("deadman re-tripped: %d", r.ctl.DeadmanTrips())
	}
}

// TestDeadmanReArmedByLiveDaemon: a daemon writing its cap within the
// TTL never trips the deadman, no matter how long the run.
func TestDeadmanReArmedByLiveDaemon(t *testing.T) {
	r := newRig(t)
	if err := r.ctl.SetDeadman(Deadman{TTL: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	const capW = 90
	for epoch := 0; epoch < 10; epoch++ {
		if err := WriteLimit(r.dev, capW, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		r.runSteady(30, 1, 0.05) // 30 ms per epoch < 50 ms TTL
	}
	if r.ctl.DeadmanTrips() != 0 {
		t.Fatalf("live daemon tripped deadman %d times", r.ctl.DeadmanTrips())
	}
	pl1, err := r.ctl.Limit()
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Watts != capW {
		t.Fatalf("cap = %v, want %v", pl1.Watts, capW)
	}
}

// TestDeadmanRecoveryAfterTrip: the daemon restarts after the trip and
// re-writes its cap; the write re-arms the deadman and the new cap
// sticks.
func TestDeadmanRecoveryAfterTrip(t *testing.T) {
	r := newRig(t)
	if err := r.ctl.SetDeadman(Deadman{TTL: 20 * time.Millisecond, DefaultCapW: 150}); err != nil {
		t.Fatal(err)
	}
	if err := WriteLimit(r.dev, 70, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(40, 1, 0.05) // expire
	if !r.ctl.DeadmanExpired() {
		t.Fatal("deadman did not trip")
	}
	pl1, _ := r.ctl.Limit()
	if pl1.Watts != 150 {
		t.Fatalf("custom default cap: got %v, want 150", pl1.Watts)
	}
	// Restarted daemon re-arms.
	if err := WriteLimit(r.dev, 110, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(10, 1, 0.05)
	if r.ctl.DeadmanExpired() {
		t.Fatal("re-arm did not clear the trip")
	}
	pl1, _ = r.ctl.Limit()
	if pl1.Watts != 110 {
		t.Fatalf("recovered cap: got %v, want 110", pl1.Watts)
	}
	// And dying again trips again.
	r.runSteady(40, 1, 0.05)
	if r.ctl.DeadmanTrips() != 2 {
		t.Fatalf("trips = %d, want 2", r.ctl.DeadmanTrips())
	}
}

// TestDeadmanFailedWriteDoesNotReArm: an EIO-failed cap write must not
// count as a re-arm — only a successful write pets the deadman.
func TestDeadmanFailedWriteDoesNotReArm(t *testing.T) {
	r := newRig(t)
	if err := r.ctl.SetDeadman(Deadman{TTL: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := WriteLimit(r.dev, 70, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(15, 1, 0.05)
	// All further writes fail with EIO.
	r.dev.SetFaultHook(func(op msr.FaultOp, addr uint32) msr.FaultClass {
		if op == msr.OpWrite {
			return msr.FaultEIO
		}
		return msr.FaultNone
	})
	if err := WriteLimit(r.dev, 70, 10*time.Millisecond); err != msr.ErrIO {
		t.Fatalf("expected EIO, got %v", err)
	}
	r.runSteady(10, 1, 0.05)
	if !r.ctl.DeadmanExpired() {
		t.Fatal("failed write re-armed the deadman")
	}
}

func TestDeadmanValidation(t *testing.T) {
	r := newRig(t)
	if err := r.ctl.SetDeadman(Deadman{TTL: -time.Second}); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if err := r.ctl.SetDeadman(Deadman{TTL: time.Second, DefaultCapW: -5}); err == nil {
		t.Fatal("negative default cap accepted")
	}
	// Zero TTL disarms.
	if err := r.ctl.SetDeadman(Deadman{TTL: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.SetDeadman(Deadman{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteLimit(r.dev, 60, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(2000, 1, 0.05)
	if r.ctl.DeadmanTrips() != 0 {
		t.Fatal("disarmed deadman tripped")
	}
	pl1, _ := r.ctl.Limit()
	if pl1.Watts != 60 {
		t.Fatalf("cap = %v, want 60 (no deadman)", pl1.Watts)
	}
}
