package rapl

import (
	"errors"
	"testing"
	"time"

	"progresscap/internal/msr"
	"progresscap/internal/powercap"
)

// fakeBackend is a scriptable actuation backend: writeErrs are consumed
// one per WriteCapW call (nil entries succeed), truncate corrupts the
// next successful latch the way a short sysfs store does.
type fakeBackend struct {
	name      string
	writeErrs []error
	readErr   error
	truncate  bool
	capW      float64
	enabled   bool
	energy    uint64
	wrap      uint64
	writes    int
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) WriteCapW(now time.Duration, watts float64) error {
	f.writes++
	if len(f.writeErrs) > 0 {
		err := f.writeErrs[0]
		f.writeErrs = f.writeErrs[1:]
		if err != nil {
			return err
		}
	}
	if f.truncate {
		f.truncate = false
		f.capW = watts / 10
		f.enabled = watts > 0
		return nil
	}
	f.capW = watts
	f.enabled = watts > 0
	return nil
}

func (f *fakeBackend) ReadCapW(now time.Duration) (float64, bool, error) {
	if f.readErr != nil {
		return 0, false, f.readErr
	}
	return f.capW, f.enabled, nil
}

func (f *fakeBackend) EnergyRaw(now time.Duration) (uint64, error) { return f.energy, nil }

func (f *fakeBackend) WrapModulus() uint64 {
	if f.wrap == 0 {
		return msr.EnergyWrapModulus
	}
	return f.wrap
}

func (f *fakeBackend) JoulesPerCount() float64 { return 1 }

func (f *fakeBackend) SampleCost() time.Duration { return time.Microsecond }

// TestActuatorRetryTransient checks that transient errors are retried
// with modeled backoff until the write latches.
func TestActuatorRetryTransient(t *testing.T) {
	b := &fakeBackend{name: "flaky", writeErrs: []error{powercap.ErrAgain, powercap.ErrIO, nil}}
	a := NewActuator(ActuatorConfig{Backends: []Backend{b}})
	if err := a.WriteCap(0, 50); err != nil {
		t.Fatalf("WriteCap: %v", err)
	}
	c := a.Counters()
	if c.Retries != 2 || c.TransientErrs != 2 {
		t.Fatalf("counters = %+v, want 2 retries / 2 transients", c)
	}
	if c.BackoffVirtual <= 0 {
		t.Fatal("no virtual backoff accounted")
	}
	if b.capW != 50 || !b.enabled {
		t.Fatalf("cap = %g enabled=%v", b.capW, b.enabled)
	}
}

// TestActuatorFailover checks that a permanent error downs the primary
// and the write lands on the secondary.
func TestActuatorFailover(t *testing.T) {
	primary := &fakeBackend{name: "sysfs", writeErrs: []error{powercap.ErrPerm}}
	secondary := &fakeBackend{name: "msr"}
	a := NewActuator(ActuatorConfig{Backends: []Backend{primary, secondary}})
	if err := a.WriteCap(0, 42); err != nil {
		t.Fatalf("WriteCap: %v", err)
	}
	c := a.Counters()
	if c.Failovers != 1 || c.PermanentErrs != 1 {
		t.Fatalf("counters = %+v, want 1 failover / 1 permanent", c)
	}
	if secondary.capW != 42 {
		t.Fatalf("secondary cap = %g, want 42", secondary.capW)
	}
	st := a.Status()
	if st[0].Health != HealthDown || st[1].Health != HealthHealthy {
		t.Fatalf("status = %+v", st)
	}
}

// TestActuatorPark checks the all-backends-down path: safe cap pushed
// best-effort, OnPark journaled, error wraps ErrAllBackendsDown.
func TestActuatorPark(t *testing.T) {
	bad1 := &fakeBackend{name: "sysfs", writeErrs: []error{powercap.ErrPerm, nil}}
	bad2 := &fakeBackend{name: "msr", writeErrs: []error{powercap.ErrNoEnt, nil}}
	var parkedAt float64
	a := NewActuator(ActuatorConfig{
		Backends: []Backend{bad1, bad2},
		SafeCapW: 40,
		OnPark:   func(now time.Duration, capW float64) { parkedAt = capW },
	})
	err := a.WriteCap(0, 90)
	if !errors.Is(err, ErrAllBackendsDown) {
		t.Fatalf("err = %v, want ErrAllBackendsDown", err)
	}
	if !a.Parked() {
		t.Fatal("not parked")
	}
	if parkedAt != 40 {
		t.Fatalf("OnPark cap = %g, want 40", parkedAt)
	}
	if a.Counters().Parks != 1 {
		t.Fatalf("Parks = %d", a.Counters().Parks)
	}
	// The scripted nil entries let the best-effort park writes land.
	if bad1.capW != 40 || bad2.capW != 40 {
		t.Fatalf("park caps = %g / %g, want 40 / 40", bad1.capW, bad2.capW)
	}
}

// TestActuatorProbationRecovery walks a backend through down →
// probation → healthy and checks the cooldown gate.
func TestActuatorProbationRecovery(t *testing.T) {
	b := &fakeBackend{name: "sysfs", writeErrs: []error{powercap.ErrPerm}}
	spare := &fakeBackend{name: "msr"}
	a := NewActuator(ActuatorConfig{
		Backends:     []Backend{b, spare},
		Cooldown:     100 * time.Millisecond,
		ProbationOps: 2,
	})
	if err := a.WriteCap(0, 50); err != nil { // downs b, lands on spare
		t.Fatalf("WriteCap: %v", err)
	}
	// Before the cooldown b stays skipped.
	if err := a.WriteCap(50*time.Millisecond, 51); err != nil {
		t.Fatalf("WriteCap: %v", err)
	}
	if b.writes != 1 {
		t.Fatalf("down backend driven %d times during cooldown, want 1", b.writes)
	}
	// After the cooldown b re-enters on probation and redeems itself.
	for i, at := range []time.Duration{200, 300} {
		if err := a.WriteCap(at*time.Millisecond, 52+float64(i)); err != nil {
			t.Fatalf("WriteCap probation %d: %v", i, err)
		}
	}
	if st := a.Status(); st[0].Health != HealthHealthy {
		t.Fatalf("primary health = %v after clean probation, want healthy", st[0].Health)
	}
}

// TestActuatorCatchesTruncatedWrite drives a real powercap zone whose
// limit write truncates once: only read-back verification notices, and
// the retry must land the full cap.
func TestActuatorCatchesTruncatedWrite(t *testing.T) {
	dev := msr.NewDevice(4, nil)
	z := powercap.NewZone(dev, msr.DefaultUnits())
	fired := false
	z.SetFaultHook(func(op powercap.FaultOp, file string, now time.Duration) powercap.FaultClass {
		if !fired && op == powercap.OpWrite && file == powercap.FilePowerLimitUW {
			fired = true
			return powercap.FaultTruncate
		}
		return powercap.FaultNone
	})
	a := NewActuator(ActuatorConfig{Backends: []Backend{powercap.NewBackend(z)}})
	if err := a.WriteCap(0, 50); err != nil {
		t.Fatalf("WriteCap: %v", err)
	}
	if c := a.Counters(); c.Retries == 0 {
		t.Fatal("truncated write latched without a verify-triggered retry")
	}
	w, on, err := powercap.NewBackend(z).ReadCapW(0)
	if err != nil || !on || w != 50 {
		t.Fatalf("final cap = %g, %v, %v; want 50, true", w, on, err)
	}
}

// TestActuatorDeterministic checks that identical seeds and fault
// scripts produce identical counters.
func TestActuatorDeterministic(t *testing.T) {
	run := func() ActuatorCounters {
		b := &fakeBackend{name: "sysfs", writeErrs: []error{
			powercap.ErrAgain, powercap.ErrAgain, nil, powercap.ErrIO, nil,
		}}
		a := NewActuator(ActuatorConfig{Backends: []Backend{b}, Seed: 7})
		for i := 0; i < 3; i++ {
			if err := a.WriteCap(time.Duration(i)*time.Second, 50+float64(i)); err != nil {
				t.Fatalf("WriteCap %d: %v", i, err)
			}
		}
		return a.Counters()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("counters diverged: %+v vs %+v", a, b)
	}
}

// TestSamplerWrap checks wrap-safe energy accumulation and overhead
// accounting through the sampler.
func TestSamplerWrap(t *testing.T) {
	b := &fakeBackend{name: "fake", wrap: 1000}
	s := NewSampler(b, 10*time.Millisecond)
	b.energy = 990
	if _, ok := s.Poll(0); !ok {
		t.Fatal("prime poll failed")
	}
	b.energy = 15 // wrapped: 990 → 15 is 25 counts forward
	dJ, ok := s.Poll(10 * time.Millisecond)
	if !ok || dJ != 25 {
		t.Fatalf("dJ = %g, want 25", dJ)
	}
	if s.TotalJ() != 25 {
		t.Fatalf("TotalJ = %g", s.TotalJ())
	}
	samples, failures, overhead := s.Stats()
	if samples != 2 || failures != 0 || overhead != 2*time.Microsecond {
		t.Fatalf("stats = %d, %d, %v", samples, failures, overhead)
	}
}
