// RAPL deadman: the hardware-side guarantee that a dead policy daemon
// can never strand the package at a stale cap.
//
// Real RAPL limits carry a time window and the firmware restores its
// default limit when the OS-programmed one is no longer maintained
// (e.g. across a watchdog reset). The emulation mirrors that contract
// explicitly: the controller tracks the PKG_POWER_LIMIT write sequence,
// and when no re-arm arrives within the TTL it reverts the register to
// the firmware-default cap. A live daemon that re-writes its cap every
// epoch never notices the deadman; a crashed one loses its aggressive
// cap after TTL rather than throttling (or over-budgeting) the node
// until someone reboots it.

package rapl

import (
	"fmt"
	"time"

	"progresscap/internal/msr"
)

// FirmwareDefaultCapW is the package cap the firmware programs at reset:
// the part's TDP, enabled and clamped. It is what the deadman reverts to
// on expiry — a safe sustained operating point, neither the dead
// daemon's aggressive cap nor an unlimited free-for-all.
const FirmwareDefaultCapW = 165

// FirmwareDefaultWindow is the averaging window of the firmware-default
// limit.
const FirmwareDefaultWindow = 10 * time.Millisecond

// Deadman configures the cap TTL.
type Deadman struct {
	// TTL is how long a programmed cap stays valid without a re-arm
	// (a fresh whitelisted write of PKG_POWER_LIMIT).
	TTL time.Duration
	// DefaultCapW is the cap restored on expiry; 0 uses
	// FirmwareDefaultCapW.
	DefaultCapW float64
}

// SetDeadman arms (or, with a zero TTL, disarms) the controller's cap
// deadman. Call before the run starts; the TTL clock is driven by the
// controller's Observe ticks, i.e. by virtual time.
func (c *Controller) SetDeadman(dm Deadman) error {
	if dm.TTL < 0 {
		return fmt.Errorf("rapl: negative deadman TTL %v", dm.TTL)
	}
	if dm.TTL == 0 {
		c.deadman = nil
		return nil
	}
	if dm.DefaultCapW == 0 {
		dm.DefaultCapW = FirmwareDefaultCapW
	}
	if dm.DefaultCapW < 0 {
		return fmt.Errorf("rapl: negative deadman default cap %v", dm.DefaultCapW)
	}
	c.deadman = &dm
	c.armSeq = c.dev.WriteSeq(msr.PkgPowerLimit)
	c.armAge = 0
	c.tripped = false
	return nil
}

// DeadmanTrips returns how many times the deadman has expired and
// reverted the cap.
func (c *Controller) DeadmanTrips() uint64 { return c.deadmanTrips }

// DeadmanExpired reports whether the deadman is currently tripped (no
// re-arm since the last revert).
func (c *Controller) DeadmanExpired() bool { return c.tripped }

// DeadmanRemaining returns how much more Observe-integrated time may
// elapse before the armed cap TTL expires. ok is false when the deadman
// is disarmed or already tripped. It is the controller's NextEventAt
// hook for the macro-stepping engine: the trip must happen at an exact
// instant, so the engine schedules a flush no later than its own
// observation anchor plus the returned remainder. A cap write between
// the last Observe and that flush re-arms the TTL at the flush, making
// the scheduled instant a harmless early visit rather than a trip.
func (c *Controller) DeadmanRemaining() (time.Duration, bool) {
	if c.deadman == nil || c.tripped {
		return 0, false
	}
	rem := c.deadman.TTL - c.armAge
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// tickDeadman advances the TTL clock by dt; Observe calls it every
// simulation tick. A fresh write of PKG_POWER_LIMIT re-arms (and clears
// a trip); TTL expiry reverts the register to the firmware-default cap
// via the hardware-side Poke, which deliberately does not advance the
// write sequence — the next policy write still reads as a re-arm.
func (c *Controller) tickDeadman(dt time.Duration) {
	if c.deadman == nil {
		return
	}
	if seq := c.dev.WriteSeq(msr.PkgPowerLimit); seq != c.armSeq {
		c.armSeq = seq
		c.armAge = 0
		c.tripped = false
		return
	}
	c.armAge += dt
	if c.tripped || c.armAge < c.deadman.TTL {
		return
	}
	c.tripped = true
	c.deadmanTrips++
	def := msr.PowerLimit{
		Watts:         c.deadman.DefaultCapW,
		Enabled:       true,
		Clamp:         true,
		WindowSeconds: FirmwareDefaultWindow.Seconds(),
	}
	c.dev.Poke(msr.PkgPowerLimit, msr.EncodePowerLimits(def, msr.PowerLimit{}, c.units))
}
