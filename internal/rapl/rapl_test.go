package rapl

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/cpu"
	"progresscap/internal/msr"
	"progresscap/internal/power"
	"progresscap/internal/stats"
)

// rig bundles a controller with its hardware for tests.
type rig struct {
	dev    *msr.Device
	domain *cpu.Domain
	uncore *cpu.Uncore
	model  power.Model
	meter  *power.Meter
	ctl    *Controller
}

func newRig(t *testing.T) *rig {
	t.Helper()
	cfg := cpu.DefaultConfig()
	dev := msr.NewDevice(cfg.Cores, nil)
	domain, err := cpu.NewDomain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uncore := cpu.NewUncore()
	model := power.DefaultModel()
	meter := power.NewMeter(model, 0.01)
	ctl, err := New(dev, domain, uncore, model, meter, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{dev: dev, domain: domain, uncore: uncore, model: model, meter: meter, ctl: ctl}
}

// runSteady drives the control loop for steps milliseconds against an
// application with the given compute activity and full-grant bandwidth
// demand. It returns the converged average package power.
func (r *rig) runSteady(steps int, activity, bwDemand float64) float64 {
	dt := time.Millisecond
	for i := 0; i < steps; i++ {
		// Bandwidth throttling inflates observed utilization.
		bwObs := stats.Clamp(bwDemand/r.uncore.BWScale(), 0, 1)
		s := power.NodeState{
			EngagedCores: r.domain.Config().Cores,
			FreqMHz:      r.domain.CurrentMHz(),
			Duty:         r.domain.Duty(),
			Activity:     activity,
			BWUtil:       bwObs,
			BWScale:      r.uncore.BWScale(),
		}
		r.ctl.Observe(s, dt)
		r.ctl.Control()
	}
	return r.meter.AvgPkgW()
}

func TestUncappedRunsAtMaxTurbo(t *testing.T) {
	r := newRig(t)
	r.runSteady(100, 1, 0.05)
	if r.domain.CurrentMHz() != 3300 || r.domain.Duty() != 1 || r.uncore.BWScale() != 1 {
		t.Fatalf("uncapped state: f=%v duty=%v bw=%v",
			r.domain.CurrentMHz(), r.domain.Duty(), r.uncore.BWScale())
	}
}

func TestCapEnforcedForComputeBound(t *testing.T) {
	r := newRig(t)
	uncapped := r.runSteady(200, 1, 0.05)
	const capW = 120
	if err := WriteLimit(r.dev, capW, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	avg := r.runSteady(3000, 1, 0.05)
	if avg > capW*1.03 {
		t.Fatalf("average power %v W exceeds cap %v W", avg, capW)
	}
	// Paper assumption: a capped application uses all the power given to
	// it (§VI). Allow a few percent of slack from P-state quantization.
	if avg < capW*0.90 {
		t.Fatalf("average power %v W far below cap %v W (uncapped was %v)", avg, capW, uncapped)
	}
	if r.domain.CurrentMHz() >= 3300 {
		t.Fatalf("frequency not reduced under cap: %v", r.domain.CurrentMHz())
	}
}

func TestCapBelowUncappedReducesFrequencyMonotonically(t *testing.T) {
	caps := []float64{170, 140, 110, 80}
	var prevFreq = math.Inf(1)
	for _, capW := range caps {
		r := newRig(t)
		if err := WriteLimit(r.dev, capW, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		r.runSteady(3000, 1, 0.05)
		f := r.domain.CurrentMHz()
		if f > prevFreq {
			t.Fatalf("frequency rose as cap tightened: cap %v → %v MHz (prev %v)", capW, f, prevFreq)
		}
		prevFreq = f
	}
}

func TestApplicationAwareBudgeting(t *testing.T) {
	// Fig 2: under identical caps RAPL runs the compute-bound code at a
	// higher frequency than the memory-bound one.
	const capW = 110
	compute := newRig(t)
	if err := WriteLimit(compute.dev, capW, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	compute.runSteady(3000, 1, 0.05)

	memory := newRig(t)
	if err := WriteLimit(memory.dev, capW, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	memory.runSteady(3000, 0.37, 1.0)

	fc, fm := compute.domain.CurrentMHz(), memory.domain.CurrentMHz()
	if fc <= fm {
		t.Fatalf("compute-bound f=%v MHz not above memory-bound f=%v MHz under identical cap", fc, fm)
	}
}

func TestStringentCapThrottlesUncore(t *testing.T) {
	r := newRig(t)
	if err := WriteLimit(r.dev, 70, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	avg := r.runSteady(5000, 0.37, 1.0)
	if r.uncore.BWScale() >= 1 {
		t.Fatalf("stringent cap did not scale uncore bandwidth (scale=%v, avg=%v W)", r.uncore.BWScale(), avg)
	}
	if avg > 70*1.05 {
		t.Fatalf("average power %v exceeds stringent cap", avg)
	}
}

func TestVeryStringentCapEngagesDutyCycle(t *testing.T) {
	// 40 W sits between the package floor (~38.5 W: core static + duty
	// floor + uncore static) and core power at the minimum P-state
	// (~33 W core + ~15 W uncore), so only duty modulation can reach it.
	r := newRig(t)
	if err := WriteLimit(r.dev, 40, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	avg := r.runSteady(5000, 1, 0.02)
	if r.domain.CurrentMHz() != r.domain.Config().MinMHz {
		t.Fatalf("expected minimum P-state, got %v", r.domain.CurrentMHz())
	}
	if r.domain.Duty() >= 1 {
		t.Fatalf("duty-cycle modulation not engaged at 40 W (duty=%v, avg=%v W)", r.domain.Duty(), avg)
	}
	if avg > 40*1.10 {
		t.Fatalf("average power %v far above 40 W cap", avg)
	}
}

func TestDisablingLimitRestoresTurbo(t *testing.T) {
	r := newRig(t)
	if err := WriteLimit(r.dev, 80, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(2000, 1, 0.05)
	if r.domain.CurrentMHz() >= 3300 {
		t.Fatal("cap had no effect")
	}
	if err := WriteLimit(r.dev, 0, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(100, 1, 0.05)
	if r.domain.CurrentMHz() != 3300 || r.domain.Duty() != 1 {
		t.Fatalf("uncap did not restore turbo: f=%v duty=%v", r.domain.CurrentMHz(), r.domain.Duty())
	}
}

func TestManualModeLeavesActuatorsAlone(t *testing.T) {
	r := newRig(t)
	r.ctl.SetManual(true)
	r.domain.SetTargetMHz(1500)
	if err := WriteLimit(r.dev, 60, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(500, 1, 0.05)
	if r.domain.CurrentMHz() != 1500 {
		t.Fatalf("manual mode: controller changed frequency to %v", r.domain.CurrentMHz())
	}
	// Status registers still track.
	raw, err := r.dev.ReadCore(3, msr.PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	if msr.MHzFromRatio(raw) != 1500 {
		t.Fatalf("PERF_STATUS = %v MHz, want 1500", msr.MHzFromRatio(raw))
	}
}

func TestPerfStatusReflectsFrequency(t *testing.T) {
	r := newRig(t)
	if err := WriteLimit(r.dev, 100, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.runSteady(3000, 1, 0.05)
	raw, err := r.dev.ReadCore(0, msr.PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	if msr.MHzFromRatio(raw) != r.domain.CurrentMHz() {
		t.Fatalf("PERF_STATUS = %v, domain = %v", msr.MHzFromRatio(raw), r.domain.CurrentMHz())
	}
}

func TestEnergyCounterAdvances(t *testing.T) {
	r := newRig(t)
	_, raw0, err := ReadEnergyJ(r.dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.runSteady(1000, 1, 0.05) // 1 virtual second uncapped ≈ 180 J
	j, _, err := ReadEnergyJ(r.dev, raw0)
	if err != nil {
		t.Fatal(err)
	}
	if j < 100 || j > 260 {
		t.Fatalf("energy over 1 s = %v J, want 100-260", j)
	}
}

func TestPStateQuantization(t *testing.T) {
	// Granted frequencies always sit on the 100 MHz ladder.
	for _, capW := range []float64{60, 85, 110, 135, 160} {
		r := newRig(t)
		if err := WriteLimit(r.dev, capW, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		r.runSteady(2000, 0.8, 0.3)
		f := r.domain.CurrentMHz()
		if math.Mod(f, 100) != 0 {
			t.Fatalf("cap %v W granted off-ladder frequency %v", capW, f)
		}
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	cfg := cpu.DefaultConfig()
	dev := msr.NewDevice(cfg.Cores, nil)
	domain, _ := cpu.NewDomain(cfg)
	m := power.DefaultModel()
	meter := power.NewMeter(m, 0.01)
	if _, err := New(dev, domain, cpu.NewUncore(), m, meter, Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
	bad := m
	bad.AlphaHW = 9
	if _, err := New(dev, domain, cpu.NewUncore(), bad, meter, DefaultOptions()); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestWriteLimitRoundTrip(t *testing.T) {
	r := newRig(t)
	if err := WriteLimit(r.dev, 123, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	limit, err := r.ctl.Limit()
	if err != nil {
		t.Fatal(err)
	}
	if !limit.Enabled || math.Abs(limit.Watts-123) > 0.5 {
		t.Fatalf("limit = %+v", limit)
	}
}
