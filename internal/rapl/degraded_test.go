package rapl

import (
	"testing"
	"time"

	"progresscap/internal/msr"
)

func TestEnergyReaderSurvivesSeededWrap(t *testing.T) {
	r := newRig(t)
	// Seed the counter just below the 32-bit wrap, prime a reader, then
	// advance the hardware past the wrap point.
	r.ctl.SeedEnergy(0xFFFF_FF00)
	er := NewEnergyReader(r.dev)
	r.dev.Poke(msr.PkgEnergyStatus, (0xFFFF_FF00+0x200)&0xFFFF_FFFF)

	u := msr.DecodeUnits(must(r.dev.Read(msr.RaplPowerUnit)))
	got := er.Advance()
	want := float64(0x200) * u.EnergyUnit()
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("wrapped delta = %v J, want %v J (naive cumulative read breaks here)", got, want)
	}
}

func TestEnergyReaderRetriesAndCarriesLastGood(t *testing.T) {
	dev := msr.NewDevice(1, nil)
	er := NewEnergyReader(dev)

	// Transient EIO: fail exactly the first access, retry succeeds.
	calls := 0
	dev.SetFaultHook(func(op msr.FaultOp, addr uint32) msr.FaultClass {
		if op == msr.OpRead && addr == msr.PkgEnergyStatus {
			calls++
			if calls == 1 {
				return msr.FaultEIO
			}
		}
		return msr.FaultNone
	})
	dev.Poke(msr.PkgEnergyStatus, 100)
	if dj := er.Advance(); dj <= 0 {
		t.Fatalf("Advance with one transient EIO = %v, want the 100-unit delta", dj)
	}
	if er.Failures() != 0 {
		t.Fatalf("failures = %d after recoverable EIO", er.Failures())
	}

	// Persistent EIO: the interval defers; next good read recovers it.
	dev.SetFaultHook(func(op msr.FaultOp, addr uint32) msr.FaultClass {
		if op == msr.OpRead && addr == msr.PkgEnergyStatus {
			return msr.FaultEIO
		}
		return msr.FaultNone
	})
	dev.Poke(msr.PkgEnergyStatus, 200)
	if dj := er.Advance(); dj != 0 {
		t.Fatalf("Advance under persistent EIO = %v, want 0", dj)
	}
	if er.Failures() != 1 {
		t.Fatalf("failures = %d, want 1", er.Failures())
	}
	dev.SetFaultHook(nil)
	dev.Poke(msr.PkgEnergyStatus, 300)
	u := msr.DecodeUnits(must(dev.Read(msr.RaplPowerUnit)))
	got := er.Advance()
	want := 200 * u.EnergyUnit() // 100 → 300: outage energy recovered
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("recovered delta = %v J, want %v J (outage energy not lost)", got, want)
	}
}

func TestWriteLimitRetry(t *testing.T) {
	dev := msr.NewDevice(1, nil)
	fails := 0
	dev.SetFaultHook(func(op msr.FaultOp, addr uint32) msr.FaultClass {
		if op == msr.OpWrite && addr == msr.PkgPowerLimit && fails > 0 {
			fails--
			return msr.FaultEIO
		}
		return msr.FaultNone
	})

	fails = 1 // one transient failure: retry absorbs it
	if err := WriteLimitRetry(dev, 90, time.Second); err != nil {
		t.Fatalf("transient EIO not absorbed: %v", err)
	}
	raw, _ := dev.Read(msr.PkgPowerLimit)
	u := msr.DecodeUnits(must(dev.Read(msr.RaplPowerUnit)))
	if pl, _ := msr.DecodePowerLimits(raw, u); pl.Watts != 90 {
		t.Fatalf("limit after retry = %v W, want 90", pl.Watts)
	}

	fails = 2 // persistent failure: surfaces
	if err := WriteLimitRetry(dev, 80, time.Second); err != msr.ErrIO {
		t.Fatalf("persistent EIO err = %v, want ErrIO", err)
	}
}

func must(v uint64, err error) uint64 {
	if err != nil {
		panic(err)
	}
	return v
}
