package rapl

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/msr"
)

func TestPowerLimitsDualRoundTrip(t *testing.T) {
	u := msr.DefaultUnits()
	in1 := msr.PowerLimit{Watts: 100, Enabled: true, Clamp: true, WindowSeconds: 0.01}
	in2 := msr.PowerLimit{Watts: 120, Enabled: true, Clamp: true, WindowSeconds: 0.0025}
	raw := msr.EncodePowerLimits(in1, in2, u)
	out1, out2 := msr.DecodePowerLimits(raw, u)
	if math.Abs(out1.Watts-100) > 0.2 || math.Abs(out2.Watts-120) > 0.2 {
		t.Fatalf("watts = %v, %v", out1.Watts, out2.Watts)
	}
	if !out1.Enabled || !out2.Enabled {
		t.Fatal("enables lost")
	}
	if out2.WindowSeconds >= out1.WindowSeconds {
		t.Fatalf("PL2 window %v not shorter than PL1 %v", out2.WindowSeconds, out1.WindowSeconds)
	}
}

func TestWriteLimitProgramsBothWindows(t *testing.T) {
	r := newRig(t)
	if err := WriteLimit(r.dev, 100, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	pl1, pl2, err := r.ctl.Limits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl1.Watts-100) > 0.5 {
		t.Fatalf("PL1 = %v", pl1.Watts)
	}
	if !pl2.Enabled || math.Abs(pl2.Watts-120) > 0.5 {
		t.Fatalf("PL2 = %+v, want 120 W enabled", pl2)
	}
}

func TestWriteLimitsExplicit(t *testing.T) {
	r := newRig(t)
	if err := WriteLimits(r.dev, 90, 10*time.Millisecond, 150, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	pl1, pl2, err := r.ctl.Limits()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl1.Watts-90) > 0.5 || math.Abs(pl2.Watts-150) > 0.5 {
		t.Fatalf("limits = %v, %v", pl1.Watts, pl2.Watts)
	}
}

func TestUncappedDisablesBothWindows(t *testing.T) {
	r := newRig(t)
	if err := WriteLimit(r.dev, 0, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	pl1, pl2, err := r.ctl.Limits()
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Enabled || pl2.Enabled {
		t.Fatalf("uncapped left limits enabled: %+v, %+v", pl1, pl2)
	}
}

// TestPL2ClampsBurst: with a PL2 barely above the PL1 and a workload
// that would overshoot during the controller's settling, the burst
// clamp must keep the fast average near PL2 even in the first
// milliseconds after the cap lands.
func TestPL2ClampsBurst(t *testing.T) {
	r := newRig(t)
	// Sustained 100 W, burst no more than 110 W.
	if err := WriteLimits(r.dev, 100, 10*time.Millisecond, 110, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Drive the loop and record the worst fast-average overshoot after
	// the first few control periods.
	worst := 0.0
	dt := time.Millisecond
	for i := 0; i < 400; i++ {
		r.runSteady(1, 1, 0.05)
		_ = dt
		if i > 5 && r.ctl.fastAvgW > worst {
			worst = r.ctl.fastAvgW
		}
	}
	if worst > 110*1.10 {
		t.Fatalf("fast average reached %v W with a 110 W PL2", worst)
	}
	// Steady state still respects PL1.
	avg := r.runSteady(3000, 1, 0.05)
	if avg > 100*1.05 {
		t.Fatalf("steady average %v exceeds PL1", avg)
	}
}

func TestPL2InactiveWhenAbovePL1Headroom(t *testing.T) {
	// Default WriteLimit PL2 (1.2×) must not disturb steady enforcement.
	r := newRig(t)
	if err := WriteLimit(r.dev, 120, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	avg := r.runSteady(3000, 1, 0.05)
	if avg < 120*0.90 || avg > 120*1.03 {
		t.Fatalf("steady average %v not tracking the 120 W PL1", avg)
	}
}
