package rapl

import (
	"testing"
	"time"

	"progresscap/internal/simtime"
)

// TestCapComplianceAcrossProfiles sweeps randomized application profiles
// (activity, bandwidth demand) and cap levels, asserting two invariants
// of the controller:
//
//  1. compliance: the converged running-average power never exceeds the
//     cap by more than 10% (RAPL guarantees the average);
//  2. utilization: for caps above the package floor, the controller uses
//     at least 80% of its budget (the paper's Eq. 6 observation that a
//     capped application uses all the power given to it).
func TestCapComplianceAcrossProfiles(t *testing.T) {
	rng := simtime.NewRNG(2024)
	const floorW = 45 // package floor ≈ 38.5 W + margin
	for trial := 0; trial < 25; trial++ {
		activity := 0.2 + 0.8*rng.Float64()
		bwDemand := rng.Float64()
		capW := 50 + 130*rng.Float64()

		r := newRig(t)
		if err := WriteLimit(r.dev, capW, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		avg := r.runSteady(4000, activity, bwDemand)

		if avg > capW*1.10 {
			t.Errorf("trial %d (act=%.2f bw=%.2f cap=%.0f): average %.1f W breaches the cap",
				trial, activity, bwDemand, capW, avg)
		}
		if capW > floorW && avg < capW*0.80 {
			t.Errorf("trial %d (act=%.2f bw=%.2f cap=%.0f): average %.1f W leaves budget unused",
				trial, activity, bwDemand, capW, avg)
		}
	}
}

// TestFrequencyMonotoneInCapAcrossProfiles: for a fixed application
// profile, a tighter cap never grants a higher frequency.
func TestFrequencyMonotoneInCapAcrossProfiles(t *testing.T) {
	profiles := []struct{ act, bw float64 }{
		{1.0, 0.05}, {0.6, 0.4}, {0.37, 1.0},
	}
	for _, p := range profiles {
		prevFreq := 1e9
		for _, capW := range []float64{170, 140, 110, 80, 60} {
			r := newRig(t)
			if err := WriteLimit(r.dev, capW, 10*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			r.runSteady(3000, p.act, p.bw)
			f := r.domain.CurrentMHz() * r.domain.Duty()
			if f > prevFreq+1 {
				t.Errorf("profile %+v: effective frequency rose from %.0f to %.0f as cap tightened to %.0f W",
					p, prevFreq, f, capW)
			}
			prevFreq = f
		}
	}
}
