package rapl

// Hardened multi-backend power actuation. The legacy helpers
// (WriteLimitRetry and friends) retry a transient EIO exactly once and
// otherwise surface the error; that is the right shape for the
// byte-identical baseline paths, but a production power manager drives
// caps through whichever interface the node offers — raw msr-safe
// registers or the powercap sysfs tree — and each fails in its own
// ways. The Actuator layers on top of any set of backends:
//
//   - per-operation deadlines with capped exponential backoff and
//     seeded jitter, accounted in virtual time so retries are visible
//     to the simulation instead of hidden in wall clock;
//   - transient-vs-permanent error classification (structural
//     Temporary() predicate, msr.ErrIO, read-back mismatches);
//   - read-back verification after every cap write, which is the only
//     way a silently truncated sysfs store is ever caught;
//   - a per-backend health state machine (healthy → flaky → down →
//     probation) with doubling cooldowns, failing over to the next
//     backend while one is down and failing back after a clean
//     probation;
//   - a park action when every backend is down: a best-effort safe cap
//     is programmed everywhere and the caller is told, so the budget
//     invariant degrades to the conservative cap instead of whatever
//     limit happened to be latched.
//
// Everything is deterministic given (config, seed): backoff jitter
// comes from a simtime RNG and time only advances by modeled backoff.
// The Actuator is strictly opt-in — no default engine, NRM, or cluster
// path constructs one, so runs that do not ask for hardened actuation
// execute the exact same device accesses as before.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"progresscap/internal/msr"
	"progresscap/internal/simtime"
)

// Backend is one way of actuating and observing the package power cap.
// Implementations: MSRBackend (registers) and powercap.Backend (sysfs),
// which satisfies this interface structurally.
type Backend interface {
	// Name identifies the backend in counters and journals.
	Name() string
	// WriteCapW programs the cap; watts <= 0 releases it. A nil return
	// does NOT guarantee the cap latched (sysfs writes truncate
	// silently) — callers must verify via ReadCapW.
	WriteCapW(now time.Duration, watts float64) error
	// ReadCapW returns the programmed cap in watts and whether capping
	// is enabled.
	ReadCapW(now time.Duration) (float64, bool, error)
	// EnergyRaw returns the wrapping energy counter image.
	EnergyRaw(now time.Duration) (uint64, error)
	// WrapModulus is the modulus EnergyRaw wraps at.
	WrapModulus() uint64
	// JoulesPerCount converts raw energy counts to joules.
	JoulesPerCount() float64
	// SampleCost is the modeled wall-clock cost of one EnergyRaw call.
	SampleCost() time.Duration
}

// MSRSampleCost is the modeled cost of one raw MSR energy read: a
// single whitelisted rdmsr is roughly an order of magnitude cheaper
// than a sysfs open/read/parse round-trip.
const MSRSampleCost = 2 * time.Microsecond

// MSRBackend actuates through the register-level device, reusing the
// same WriteLimit encoding as the legacy path.
type MSRBackend struct {
	dev    *msr.Device
	units  msr.Units
	window time.Duration
}

// NewMSRBackend returns a register-level backend. window is the PL1
// averaging window (default 10 ms, matching the policy daemon).
func NewMSRBackend(dev *msr.Device, window time.Duration) *MSRBackend {
	if dev == nil {
		panic("rapl: nil device")
	}
	if window <= 0 {
		window = 10 * time.Millisecond
	}
	return &MSRBackend{dev: dev, units: msr.DefaultUnits(), window: window}
}

// Name identifies the backend.
func (b *MSRBackend) Name() string { return "msr" }

// WriteCapW programs the cap through the whitelisted register path.
func (b *MSRBackend) WriteCapW(now time.Duration, watts float64) error {
	return WriteLimit(b.dev, watts, b.window)
}

// ReadCapW decodes the PL1 window of the power-limit register.
func (b *MSRBackend) ReadCapW(now time.Duration) (float64, bool, error) {
	v, err := b.dev.Read(msr.PkgPowerLimit)
	if err != nil {
		return 0, false, err
	}
	pl1 := msr.DecodePowerLimit(v&0xFFFFFFFF, b.units)
	return pl1.Watts, pl1.Enabled, nil
}

// EnergyRaw returns the 32-bit package energy register image.
func (b *MSRBackend) EnergyRaw(now time.Duration) (uint64, error) {
	v, err := b.dev.Read(msr.PkgEnergyStatus)
	return v & 0xFFFFFFFF, err
}

// WrapModulus is the 32-bit register wrap.
func (b *MSRBackend) WrapModulus() uint64 { return msr.EnergyWrapModulus }

// JoulesPerCount is the RAPL energy unit.
func (b *MSRBackend) JoulesPerCount() float64 { return b.units.EnergyUnit() }

// SampleCost is the modeled cost of one rdmsr.
func (b *MSRBackend) SampleCost() time.Duration { return MSRSampleCost }

// Health is a backend's position in the failover state machine.
type Health int

// Health states. Transitions: Healthy → Flaky after FlakyAfter
// consecutive transient failures, → Down after DownAfter (or any
// permanent error); Down → Probation once the (doubling) cooldown
// elapses; Probation → Healthy after ProbationOps clean operations, or
// straight back to Down on any failure.
const (
	HealthHealthy Health = iota
	HealthFlaky
	HealthDown
	HealthProbation
)

// String returns the journal spelling.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthFlaky:
		return "flaky"
	case HealthDown:
		return "down"
	case HealthProbation:
		return "probation"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// ActuatorConfig parameterizes the hardening layer. Zero fields take
// the documented defaults.
type ActuatorConfig struct {
	// Backends in preference order; the first usable one is driven and
	// later ones are failover targets. At least one is required.
	Backends []Backend
	// OpDeadline bounds the total modeled backoff one WriteCap spends on
	// a single backend before failing over (default 50 ms).
	OpDeadline time.Duration
	// BaseBackoff/MaxBackoff bound the capped exponential retry delay
	// (defaults 1 ms / 16 ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac is the multiplicative jitter amplitude on each backoff
	// (default 0.25).
	JitterFrac float64
	// FlakyAfter / DownAfter are the consecutive-transient-failure
	// thresholds (defaults 2 / 5).
	FlakyAfter int
	DownAfter  int
	// Cooldown is the first down→probation delay; it doubles per
	// consecutive down episode up to MaxCooldown (defaults 250 ms / 2 s).
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// ProbationOps is how many clean operations redeem a probation
	// backend (default 3).
	ProbationOps int
	// SafeCapW is the conservative cap parked onto every backend when
	// all are down (default FirmwareDefaultCapW — the same value the
	// deadman reverts to, so a parked node is indistinguishable from a
	// lease expiry to the budget oracles).
	SafeCapW float64
	// Seed drives backoff jitter (default 1).
	Seed uint64
	// OnPark, when set, journals each park action.
	OnPark func(now time.Duration, capW float64)
}

// ActuatorCounters are the cumulative hardening statistics surfaced in
// NRM decisions and scheduler summaries.
type ActuatorCounters struct {
	// Attempts counts individual backend write+verify attempts.
	Attempts uint64
	// Retries counts backoff-then-retry transitions.
	Retries uint64
	// Failovers counts switches to an alternate backend within one
	// WriteCap.
	Failovers uint64
	// Parks counts all-backends-down safe-cap parks.
	Parks uint64
	// TransientErrs / PermanentErrs split the classified failures.
	TransientErrs uint64
	PermanentErrs uint64
	// BackoffVirtual is the total modeled time spent backing off.
	BackoffVirtual time.Duration
}

// Merge folds another counter snapshot into c (suite-level
// aggregation across runs).
func (c *ActuatorCounters) Merge(o ActuatorCounters) {
	c.Attempts += o.Attempts
	c.Retries += o.Retries
	c.Failovers += o.Failovers
	c.Parks += o.Parks
	c.TransientErrs += o.TransientErrs
	c.PermanentErrs += o.PermanentErrs
	c.BackoffVirtual += o.BackoffVirtual
}

// BackendStatus is one backend's health snapshot.
type BackendStatus struct {
	Name       string
	Health     Health
	DownStreak int
}

// ErrAllBackendsDown is wrapped by WriteCap when no backend accepted
// the cap and the actuator parked at the safe cap.
var ErrAllBackendsDown = errors.New("rapl: all actuation backends down")

// errVerifyMismatch marks a write whose read-back did not match — a
// truncated or lost store. It is transient: the retry rewrites.
var errVerifyMismatch = errors.New("rapl: cap read-back mismatch (truncated or lost write)")

// capVerifyTolW tolerates both backends' quantization: the register
// unit is 1/8 W, and sysfs floors where the raw path rounds, so a
// correct latch is always within one unit of the request.
const capVerifyTolW = 0.125 + 1e-9

type backendState struct {
	b               Backend
	health          Health
	consecTransient int
	cleanOps        int
	downSince       time.Duration
	downStreak      int
}

// Actuator drives power caps through a preference-ordered backend list
// with retry, verification, failover, and safe-cap parking. It is safe
// for concurrent use.
type Actuator struct {
	mu       sync.Mutex
	cfg      ActuatorConfig
	backends []*backendState
	rng      *simtime.RNG
	counters ActuatorCounters
	parked   bool
}

// NewActuator returns an actuator over cfg.Backends.
func NewActuator(cfg ActuatorConfig) *Actuator {
	if len(cfg.Backends) == 0 {
		panic("rapl: actuator needs at least one backend")
	}
	if cfg.OpDeadline <= 0 {
		cfg.OpDeadline = 50 * time.Millisecond
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * time.Millisecond
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.25
	}
	if cfg.FlakyAfter <= 0 {
		cfg.FlakyAfter = 2
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 250 * time.Millisecond
	}
	if cfg.MaxCooldown <= 0 {
		cfg.MaxCooldown = 2 * time.Second
	}
	if cfg.ProbationOps <= 0 {
		cfg.ProbationOps = 3
	}
	if cfg.SafeCapW <= 0 {
		cfg.SafeCapW = FirmwareDefaultCapW
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	a := &Actuator{cfg: cfg, rng: simtime.NewRNG(cfg.Seed)}
	for _, b := range cfg.Backends {
		a.backends = append(a.backends, &backendState{b: b})
	}
	return a
}

// WriteCap programs the cap through the first backend that accepts and
// verifiably latches it, retrying transients with backoff and failing
// over on exhaustion. When every backend is down it parks the safe cap
// everywhere (best effort) and returns an error wrapping
// ErrAllBackendsDown.
func (a *Actuator) WriteCap(now time.Duration, watts float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	tried := 0
	for _, bs := range a.backends {
		if !a.usable(bs, now) {
			continue
		}
		if tried > 0 {
			a.counters.Failovers++
		}
		tried++
		if a.attempt(bs, now, watts) {
			a.parked = false
			return nil
		}
	}
	a.counters.Parks++
	a.parked = true
	safe := a.cfg.SafeCapW
	for _, bs := range a.backends {
		// Best effort, unverified: a down backend usually rejects this
		// too, but a half-alive one latching the safe cap beats leaving
		// whatever limit the last truncated write programmed.
		_ = bs.b.WriteCapW(now, safe)
	}
	if a.cfg.OnPark != nil {
		a.cfg.OnPark(now, safe)
	}
	return fmt.Errorf("%w: parked at %.6g W", ErrAllBackendsDown, safe)
}

// attempt drives one backend's retry loop; it reports whether the cap
// verifiably latched.
func (a *Actuator) attempt(bs *backendState, now time.Duration, watts float64) bool {
	var spent time.Duration
	backoff := a.cfg.BaseBackoff
	for {
		a.counters.Attempts++
		err := bs.b.WriteCapW(now+spent, watts)
		if err == nil {
			err = verifyCap(bs.b, now+spent, watts)
		}
		if err == nil {
			a.recordSuccess(bs)
			return true
		}
		if !transientErr(err) {
			a.counters.PermanentErrs++
			a.markDown(bs, now+spent)
			return false
		}
		a.counters.TransientErrs++
		a.recordTransient(bs, now+spent)
		if bs.health == HealthDown {
			return false
		}
		d := time.Duration(float64(backoff) * a.rng.Jitter(a.cfg.JitterFrac))
		if spent+d > a.cfg.OpDeadline {
			return false
		}
		spent += d
		a.counters.Retries++
		a.counters.BackoffVirtual += d
		backoff *= 2
		if backoff > a.cfg.MaxBackoff {
			backoff = a.cfg.MaxBackoff
		}
	}
}

// verifyCap reads the cap back and checks it latched. watts <= 0 must
// read back disabled; otherwise the backend must be enabled within one
// register unit of the request.
func verifyCap(b Backend, now time.Duration, watts float64) error {
	got, enabled, err := b.ReadCapW(now)
	if err != nil {
		return err
	}
	if watts <= 0 {
		if enabled {
			return errVerifyMismatch
		}
		return nil
	}
	if !enabled || math.Abs(got-watts) > capVerifyTolW {
		return errVerifyMismatch
	}
	return nil
}

// transientErr classifies an actuation error: structural Temporary()
// (the powercap errno family), the legacy msr.ErrIO, and read-back
// mismatches are retryable; whitelist violations, permission and
// not-found errors are not.
func transientErr(err error) bool {
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return errors.Is(err, msr.ErrIO) || errors.Is(err, errVerifyMismatch)
}

func (a *Actuator) recordSuccess(bs *backendState) {
	bs.consecTransient = 0
	if bs.health == HealthProbation {
		bs.cleanOps++
		if bs.cleanOps >= a.cfg.ProbationOps {
			bs.health = HealthHealthy
			bs.downStreak = 0
			bs.cleanOps = 0
		}
		return
	}
	bs.health = HealthHealthy
}

func (a *Actuator) recordTransient(bs *backendState, now time.Duration) {
	bs.consecTransient++
	switch {
	case bs.health == HealthProbation:
		a.markDown(bs, now)
	case bs.consecTransient >= a.cfg.DownAfter:
		a.markDown(bs, now)
	case bs.consecTransient >= a.cfg.FlakyAfter:
		bs.health = HealthFlaky
	}
}

func (a *Actuator) markDown(bs *backendState, now time.Duration) {
	bs.health = HealthDown
	bs.downSince = now
	bs.downStreak++
	bs.consecTransient = 0
	bs.cleanOps = 0
}

// usable reports whether the backend may be driven at now, promoting a
// cooled-down backend into probation as a side effect.
func (a *Actuator) usable(bs *backendState, now time.Duration) bool {
	if bs.health != HealthDown {
		return true
	}
	if now-bs.downSince >= a.cooldown(bs.downStreak) {
		bs.health = HealthProbation
		bs.cleanOps = 0
		return true
	}
	return false
}

// cooldown doubles per consecutive down episode, capped.
func (a *Actuator) cooldown(streak int) time.Duration {
	cd := a.cfg.Cooldown
	for i := 1; i < streak; i++ {
		cd *= 2
		if cd >= a.cfg.MaxCooldown {
			return a.cfg.MaxCooldown
		}
	}
	return cd
}

// Counters returns the cumulative hardening statistics.
func (a *Actuator) Counters() ActuatorCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counters
}

// Parked reports whether the last WriteCap ended in a safe-cap park
// with no subsequent successful actuation.
func (a *Actuator) Parked() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.parked
}

// Status snapshots every backend's health.
func (a *Actuator) Status() []BackendStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]BackendStatus, len(a.backends))
	for i, bs := range a.backends {
		out[i] = BackendStatus{Name: bs.b.Name(), Health: bs.health, DownStreak: bs.downStreak}
	}
	return out
}

// SafeCapW returns the configured park cap.
func (a *Actuator) SafeCapW() float64 { return a.cfg.SafeCapW }

// DaemonWriter adapts the actuator to the policy daemon's CapWriter
// shape (the averaging window is carried by each backend's own
// convention, so it is accepted and ignored here).
//
// A park — every backend down, safe cap programmed best-effort — is
// absorbed rather than propagated: the park IS the safety response
// (the node sits at the safe cap, the deadman reverts it in hardware
// within one TTL regardless), so a total backend outage must not abort
// the run the way a daemon write error normally would. The outage is
// still visible in Counters().Parks.
type DaemonWriter struct {
	A *Actuator
}

// WriteCap satisfies policy.CapWriter.
func (w DaemonWriter) WriteCap(now time.Duration, watts float64, window time.Duration) error {
	err := w.A.WriteCap(now, watts)
	if errors.Is(err, ErrAllBackendsDown) {
		return nil
	}
	return err
}

// Sampler polls a backend's energy counter at a fixed interval,
// accumulating wrap-safe joules and the modeled monitoring overhead —
// the per-sample cost × sample count that the ext-backends experiment
// sweeps against sampling frequency.
type Sampler struct {
	b        Backend
	interval time.Duration
	prevRaw  uint64
	primed   bool
	totalJ   float64
	samples  uint64
	failures uint64
	overhead time.Duration
}

// NewSampler returns a sampler polling b every interval (default 1 s).
func NewSampler(b Backend, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	return &Sampler{b: b, interval: interval}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Poll samples the counter at now, returning the joules consumed since
// the previous successful sample. A failed read returns (0, false);
// the energy is recovered by the next good sample, exactly like
// EnergyReader's degraded semantics.
func (s *Sampler) Poll(now time.Duration) (dJ float64, ok bool) {
	s.samples++
	s.overhead += s.b.SampleCost()
	raw, err := s.b.EnergyRaw(now)
	if err != nil {
		s.failures++
		return 0, false
	}
	if !s.primed {
		s.prevRaw = raw
		s.primed = true
		return 0, true
	}
	dRaw := msr.WrapDelta(s.prevRaw, raw, s.b.WrapModulus())
	s.prevRaw = raw
	dJ = float64(dRaw) * s.b.JoulesPerCount()
	s.totalJ += dJ
	return dJ, true
}

// TotalJ returns the energy accumulated across all successful polls.
func (s *Sampler) TotalJ() float64 { return s.totalJ }

// Stats returns the sample count, failed-sample count, and cumulative
// modeled monitoring overhead.
func (s *Sampler) Stats() (samples, failures uint64, overhead time.Duration) {
	return s.samples, s.failures, s.overhead
}
