// Package rapl emulates Intel's Running Average Power Limit for the
// package domain.
//
// The controller regulates the exponentially weighted average package
// power against the cap programmed in MSR_PKG_POWER_LIMIT, the way the
// paper's power-policy daemon drives real RAPL through libmsr. Its
// observable behaviours reproduce what the paper measures:
//
//   - Application-aware budgeting (Fig 2): the cap is split between core
//     and uncore according to the application's demand — a compute-bound
//     code gets its uncore's small demand reserved and the rest of the
//     budget as core power (high frequency); a bandwidth-bound code loses
//     a large uncore reservation first (lower frequency).
//   - P-state actuation: the core budget is converted to the highest
//     100 MHz P-state that fits, producing the quantization plateaus the
//     paper observes for AMG (Fig 4b).
//   - Non-DVFS means at stringent caps: below the minimum P-state the
//     controller engages duty-cycle modulation, and when even the core
//     floor exceeds the remaining budget it scales uncore bandwidth down.
//     These are the "additional means ... not captured by our model"
//     behind the paper's STREAM result (Fig 4d, Fig 5).
//
// The controller never inspects simulator internals directly: it observes
// the node through the power meter and demand statistics, and actuates
// only the frequency domain, duty cycle, and uncore grant — then reflects
// state back into the MSR device (PERF_STATUS, PKG_ENERGY_STATUS) for the
// policy side to read.
package rapl

import (
	"fmt"
	"math"
	"time"

	"progresscap/internal/cpu"
	"progresscap/internal/msr"
	"progresscap/internal/power"
	"progresscap/internal/stats"
)

// Options tunes the controller.
type Options struct {
	// ControlPeriod is how often the controller re-actuates. Real RAPL
	// acts on millisecond scales; 1 ms is the default.
	ControlPeriod time.Duration
	// DemandTau is the time constant of the demand EWMAs (activity,
	// bandwidth, engaged cores).
	DemandTau time.Duration
	// TrimGain is the integral gain of the feedback trim that absorbs
	// model mismatch between the controller's budget arithmetic and the
	// meter.
	TrimGain float64
	// TrimLimitW bounds the integral trim.
	TrimLimitW float64
}

// DefaultOptions returns the standard controller tuning.
func DefaultOptions() Options {
	return Options{
		ControlPeriod: time.Millisecond,
		DemandTau:     5 * time.Millisecond,
		TrimGain:      0.10,
		TrimLimitW:    25,
	}
}

// Controller is the emulated RAPL package-domain controller.
type Controller struct {
	dev        *msr.Device
	domain     *cpu.Domain
	uncore     *cpu.Uncore
	model      power.Model
	meter      *power.Meter
	opts       Options
	units      msr.Units
	energy     *msr.EnergyCounter
	dramEnergy *msr.EnergyCounter

	// Demand EWMAs.
	engaged  float64
	idle     float64
	activity float64
	bwUtil   float64
	seeded   bool

	// Fast power average for PL2 (burst) enforcement.
	fastAvgW   float64
	fastSeeded bool

	trimW  float64
	manual bool

	// Quiescence tracking: uncappedIdle records that the last Control
	// found no enabled PL1 limit (from a successful register read) and
	// parked the domain at its maximum operating point; idleSeq is the
	// PKG_POWER_LIMIT write sequence it saw. While both still hold,
	// Control calls are no-ops and the engine may skip them. See
	// Quiescent.
	uncappedIdle bool
	idleSeq      uint64

	// Deadman state (nil = disarmed): see deadman.go.
	deadman      *Deadman
	armSeq       uint64
	armAge       time.Duration
	tripped      bool
	deadmanTrips uint64
}

// fastTau is the time constant of the PL2 burst average (real PL2
// windows are on the order of milliseconds).
const fastTau = 2 * time.Millisecond

// New wires a controller to its hardware. The meter's averaging constant
// is the RAPL window; the PKG_POWER_LIMIT window field is informational
// in this emulation.
func New(dev *msr.Device, domain *cpu.Domain, uncore *cpu.Uncore, model power.Model, meter *power.Meter, opts Options) (*Controller, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if opts.ControlPeriod <= 0 || opts.DemandTau <= 0 {
		return nil, fmt.Errorf("rapl: non-positive time constants in options")
	}
	raw, err := dev.Read(msr.RaplPowerUnit)
	if err != nil {
		return nil, fmt.Errorf("rapl: reading unit register: %w", err)
	}
	u := msr.DecodeUnits(raw)
	return &Controller{
		dev:        dev,
		domain:     domain,
		uncore:     uncore,
		model:      model,
		meter:      meter,
		opts:       opts,
		units:      u,
		energy:     msr.NewEnergyCounter(u),
		dramEnergy: msr.NewEnergyCounter(u),
	}, nil
}

// ControlPeriod returns the controller's actuation period.
func (c *Controller) ControlPeriod() time.Duration { return c.opts.ControlPeriod }

// SeedEnergy positions the package energy counter at an arbitrary raw
// value and reflects it into the MSR, so a run starts mid-count the way a
// long-booted node does. Fault plans use it to force an early 32-bit
// wraparound; readers using wrap-safe deltas (EnergyReader) are
// unaffected, cumulative-from-zero readers break.
func (c *Controller) SeedEnergy(raw uint64) {
	c.energy.SeedRaw(raw)
	c.dev.Poke(msr.PkgEnergyStatus, c.energy.Raw())
}

// SetManual switches the controller into manual mode: it keeps updating
// status registers but stops actuating frequency, duty, and bandwidth.
// This is how the direct-DVFS power limiting technique (Fig 5) takes over
// the frequency domain.
func (c *Controller) SetManual(m bool) { c.manual = m }

// Observe integrates one engine tick: it feeds the power meter, advances
// the RAPL energy counter, and updates the demand EWMAs the next Control
// call budgets from.
func (c *Controller) Observe(s power.NodeState, dt time.Duration) power.Breakdown {
	c.tickDeadman(dt)
	b := c.meter.Observe(s, dt.Seconds())
	c.energy.AddJoules(b.PkgW() * dt.Seconds())
	c.dev.Poke(msr.PkgEnergyStatus, c.energy.Raw())
	c.dramEnergy.AddJoules(b.DRAMW * dt.Seconds())
	c.dev.Poke(msr.DramEnergyStatus, c.dramEnergy.Raw())

	if !c.fastSeeded {
		c.fastAvgW = b.PkgW()
		c.fastSeeded = true
	} else {
		decay := math.Exp(-dt.Seconds() / fastTau.Seconds())
		c.fastAvgW = c.fastAvgW*decay + b.PkgW()*(1-decay)
	}

	if !c.seeded {
		c.engaged = float64(s.EngagedCores)
		c.idle = float64(s.IdleCores)
		c.activity = s.Activity
		c.bwUtil = s.BWUtil
		c.seeded = true
		return b
	}
	decay := math.Exp(-dt.Seconds() / c.opts.DemandTau.Seconds())
	blend := func(old, new float64) float64 { return old*decay + new*(1-decay) }
	c.engaged = blend(c.engaged, float64(s.EngagedCores))
	c.idle = blend(c.idle, float64(s.IdleCores))
	c.activity = blend(c.activity, s.Activity)
	c.bwUtil = blend(c.bwUtil, s.BWUtil)
	return b
}

// Limit returns the currently programmed PL1 (sustained) power limit.
func (c *Controller) Limit() (msr.PowerLimit, error) {
	pl1, _, err := c.Limits()
	return pl1, err
}

// Limits returns both programmed power-limit windows.
func (c *Controller) Limits() (pl1, pl2 msr.PowerLimit, err error) {
	raw, err := c.dev.Read(msr.PkgPowerLimit)
	if err != nil {
		return msr.PowerLimit{}, msr.PowerLimit{}, err
	}
	pl1, pl2 = msr.DecodePowerLimits(raw, c.units)
	return pl1, pl2, nil
}

// Control runs one actuation step. The engine calls it every
// ControlPeriod of virtual time.
func (c *Controller) Control() {
	defer c.publishStatus()
	if c.manual {
		return
	}
	pl1, pl2, err := c.Limits()
	if err != nil {
		// An unreadable limit register means an uncapped package.
		pl1, pl2 = msr.PowerLimit{}, msr.PowerLimit{}
	}
	if !pl1.Enabled || pl1.Watts <= 0 {
		c.domain.SetTargetMHz(c.domain.Config().MaxMHz)
		c.domain.SetDuty(1)
		c.uncore.SetBWScale(1)
		c.trimW = 0
		// Quiescent only on a clean read: a transient read fault must keep
		// the controller polling at full rate, since the register may hold
		// an enforceable cap it simply could not see this period.
		c.uncappedIdle = err == nil
		c.idleSeq = c.dev.WriteSeq(msr.PkgPowerLimit)
		return
	}
	c.uncappedIdle = false
	c.enforce(pl1.Watts)

	// PL2 burst protection: if the short-window average breaches the
	// burst limit, back the P-state off immediately, overriding the PL1
	// budgeting until the burst subsides.
	if pl2.Enabled && pl2.Watts > 0 && c.fastAvgW > pl2.Watts {
		c.domain.SetTargetMHz(c.domain.CurrentMHz() - 2*c.domain.Config().StepMHz)
	}
}

// enforce implements the budgeting described in the package comment.
func (c *Controller) enforce(capW float64) {
	cfg := c.domain.Config()
	nEng := int(math.Round(c.engaged))
	nIdle := cfg.Cores - nEng
	if nIdle < 0 {
		nIdle = 0
	}
	act := stats.Clamp(c.activity, 0, 1)

	// Measured uncore draw. Using the measured (post-throttle) value
	// rather than an unobservable "demand" keeps the loop stable when
	// the memory subsystem is saturated.
	uncoreW := c.meter.Last().UncoreW
	uncoreDynMeas := math.Max(0, uncoreW-c.model.UncoreStaticW)
	curScale := c.uncore.BWScale()
	bwScale := math.Min(1, curScale*1.02) // default: gradual recovery

	// Step 1: proportional core/uncore budgeting. When the uncore is a
	// significant consumer, RAPL grants it the (1 − boundedness) share of
	// the cap — the split the paper assumes in Eq. 5 — rather than its
	// full demand. This is what makes RAPL a non-optimal limiting
	// technique for memory-bound codes (Fig 5): plain DVFS leaves the
	// memory subsystem alone at the same package power. The boundedness
	// estimate must be invariant to the controller's own actuation
	// (throttling inflates stall time and depresses raw activity), so it
	// is normalized back to full bandwidth and maximum frequency.
	const significantUncoreW = 5
	if uncoreDynMeas > significantUncoreW {
		betaHat := c.boundedness(act, cfg.MaxMHz)
		allowDyn := (1-betaHat)*capW - c.model.UncoreStaticW
		if allowDyn < uncoreDynMeas {
			if allowDyn < 0 {
				allowDyn = 0
			}
			bwScale = stats.Clamp(curScale*allowDyn/uncoreDynMeas, 0.1, 1)
		}
	}
	predictUncore := func(scale float64) float64 {
		if curScale <= 0 {
			return c.model.UncoreStaticW
		}
		return c.model.UncoreStaticW + uncoreDynMeas*scale/curScale
	}
	coreBudget := capW - predictUncore(bwScale) + c.trimW

	// Step 2: if the core floor (minimum P-state, full duty) still does
	// not fit, squeeze uncore bandwidth further to make room.
	coreFloorW := c.model.CorePower(nEng, nIdle, cfg.MinMHz, 1, act)
	if coreBudget < coreFloorW && nEng > 0 {
		uncoreDynBudget := capW - coreFloorW - c.model.UncoreStaticW
		switch {
		case uncoreDynBudget <= 0:
			bwScale = 0.1
		case uncoreDynMeas > 0.1:
			bwScale = stats.Clamp(
				math.Min(bwScale, curScale*uncoreDynBudget/uncoreDynMeas), 0.1, 1)
		}
		coreBudget = capW - predictUncore(bwScale) + c.trimW
	}

	// Step 3: P-state actuation; duty-cycle modulation below the floor.
	f, ok := c.model.FreqForCoreBudget(coreBudget, nEng, nIdle, act, cfg.MinMHz, cfg.MaxMHz)
	granted := c.domain.SetTargetMHz(f)

	// Step 4: uncore frequency coupling. Under an enabled cap the
	// hardware scales the uncore clock down alongside the core P-state,
	// costing memory bandwidth that plain core DVFS would not give up —
	// part of why RAPL underperforms DVFS for STREAM at equal power
	// (Fig 5) and why the DVFS-only model underestimates RAPL's impact on
	// memory-bound code (Fig 4d).
	coupled := 0.55 + 0.45*granted/cfg.MaxMHz
	if coupled < bwScale {
		bwScale = coupled
	}
	c.uncore.SetBWScale(bwScale)
	if ok || nEng == 0 {
		c.domain.SetDuty(1)
	} else {
		static := float64(nEng+nIdle) * c.model.CoreStaticW
		dynAtMin := float64(nEng) * c.model.CoreDynMaxW * c.model.ActivityFactor(act) *
			math.Pow(cfg.MinMHz/c.model.RefMHz, c.model.AlphaHW)
		duty := 1.0
		if dynAtMin > 0 {
			duty = (coreBudget - static) / dynAtMin
		}
		c.domain.SetDuty(stats.Clamp(duty, 1.0/16, 1))
	}

	// Step 4: integral trim against the measured running average.
	errW := capW - c.meter.AvgPkgW()
	c.trimW = stats.Clamp(c.trimW+c.opts.TrimGain*errW, -c.opts.TrimLimitW, c.opts.TrimLimitW)
}

// Quiescent reports whether skipping Control calls until the next
// PKG_POWER_LIMIT write would be observationally identical to running
// them every period. That holds in manual mode (Control only republishes
// an operating point nothing actuates) and while the package is uncapped
// with the domain already parked at maximum — the uncapped branch of
// Control is then a fixed point. An armed deadman is never quiescent: its
// TTL expiry reverts the cap via Poke, which deliberately leaves the
// write sequence untouched and so would be invisible to this check.
//
// The check reads only write-sequence metadata, never the register value,
// so it draws no fault-injection randomness and is identical between the
// macro-stepping and fixed-tick engine modes.
func (c *Controller) Quiescent() bool {
	if c.deadman != nil {
		return false
	}
	if c.manual {
		return true
	}
	return c.uncappedIdle && c.dev.WriteSeq(msr.PkgPowerLimit) == c.idleSeq
}

// boundedness converts the observed compute activity into an estimate of
// the application's compute-boundedness at the reference operating point
// (full bandwidth grant, maximum frequency). Observed activity is the
// compute share of busy time; stall share shrinks when bandwidth is
// throttled back to full grant, and compute share shrinks when frequency
// is raised back to maximum.
func (c *Controller) boundedness(act, maxMHz float64) float64 {
	stallFull := (1 - act) * c.uncore.BWScale()
	if act+stallFull <= 0 {
		return 1
	}
	actFull := act / (act + stallFull) // activity at full bandwidth, current f
	fRel := c.domain.CurrentMHz() / maxMHz
	ct := actFull * fRel // compute share rescaled to fmax
	if ct+(1-actFull) <= 0 {
		return 1
	}
	return stats.Clamp(ct/(ct+(1-actFull)), 0, 1)
}

// publishStatus reflects the operating point into read-only MSRs.
func (c *Controller) publishStatus() {
	ratio := msr.RatioFromMHz(c.domain.CurrentMHz())
	for cpuIdx := 0; cpuIdx < c.dev.Cores(); cpuIdx++ {
		c.dev.PokeCore(cpuIdx, msr.PerfStatus, ratio)
	}
}

// WriteLimit is the policy-side helper: it encodes and writes the package
// power limit through the whitelisted MSR interface, exactly as the
// paper's power-policy tool does via libmsr. A zero watts value disables
// the limit (uncapped). Alongside the PL1 sustained limit it programs
// the conventional PL2 burst window at 1.2× PL1 with a quarter of the
// averaging window.
func WriteLimit(dev *msr.Device, watts float64, window time.Duration) error {
	return WriteLimits(dev, watts, window, watts*1.2, window/4)
}

// WriteLimits programs both power-limit windows explicitly. Zero pl1
// watts disables capping entirely.
func WriteLimits(dev *msr.Device, pl1W float64, pl1Window time.Duration, pl2W float64, pl2Window time.Duration) error {
	pl1 := msr.PowerLimit{
		Watts:         pl1W,
		Enabled:       pl1W > 0,
		Clamp:         pl1W > 0,
		WindowSeconds: pl1Window.Seconds(),
	}
	pl2 := msr.PowerLimit{
		Watts:         pl2W,
		Enabled:       pl1W > 0 && pl2W > 0,
		Clamp:         pl1W > 0 && pl2W > 0,
		WindowSeconds: pl2Window.Seconds(),
	}
	raw, err := dev.Read(msr.RaplPowerUnit)
	if err != nil {
		return err
	}
	return dev.Write(msr.PkgPowerLimit, msr.EncodePowerLimits(pl1, pl2, msr.DecodeUnits(raw)))
}

// WriteLimitRetry is WriteLimit hardened for transient MSR failures: an
// ErrIO is retried once before being reported. Persistent failures still
// surface so the policy layer can enter its degraded path.
func WriteLimitRetry(dev *msr.Device, watts float64, window time.Duration) error {
	_, err := WriteLimitRetryN(dev, watts, window)
	return err
}

// WriteLimitRetryN is WriteLimitRetry reporting how many retries the
// write needed (0 or 1), so policy layers can expose an EIO-retry
// counter instead of burying transient faults in logs.
func WriteLimitRetryN(dev *msr.Device, watts float64, window time.Duration) (retries int, err error) {
	err = WriteLimit(dev, watts, window)
	if err == msr.ErrIO {
		retries = 1
		err = WriteLimit(dev, watts, window)
	}
	return retries, err
}

// EnergyReader accumulates package energy from the wrapping
// PKG_ENERGY_STATUS register with degraded-signal semantics: each Advance
// computes a wraparound-safe delta from the previous raw reading, retries
// a transient ErrIO once, and on persistent failure carries the last good
// raw value forward so the next successful read recovers the missed
// energy (the counter keeps accumulating through the outage; only reads
// fail). This replaces cumulative-from-zero reads, which a mid-run seed
// (SeedEnergy) or a 32-bit wrap silently corrupts.
type EnergyReader struct {
	dev     *msr.Device
	prevRaw uint64
	primed  bool
	totalJ  float64
	// Failures counts Advance calls that exhausted the retry, i.e.
	// intervals whose energy was deferred to the next good read.
	failures uint64
}

// NewEnergyReader returns a reader primed at the register's current
// value, so the first Advance measures only energy consumed after
// construction — regardless of where the counter was seeded.
func NewEnergyReader(dev *msr.Device) *EnergyReader {
	r := &EnergyReader{dev: dev}
	if raw, err := readRetry(dev, msr.PkgEnergyStatus); err == nil {
		r.prevRaw = raw
		r.primed = true
	}
	return r
}

// Advance reads the counter and returns the joules consumed since the
// previous successful read. On persistent read failure it returns 0 and a
// nil error — the energy is not lost, it is attributed to the interval
// ending at the next good read.
func (r *EnergyReader) Advance() float64 {
	raw, err := readRetry(r.dev, msr.PkgEnergyStatus)
	if err != nil {
		r.failures++
		return 0
	}
	if !r.primed {
		r.prevRaw = raw
		r.primed = true
		return 0
	}
	unitRaw, err := readRetry(r.dev, msr.RaplPowerUnit)
	if err != nil {
		r.failures++
		return 0
	}
	dj := msr.DeltaJoules(r.prevRaw, raw, msr.DecodeUnits(unitRaw))
	r.prevRaw = raw
	r.totalJ += dj
	return dj
}

// TotalJ returns the energy accumulated across all Advance calls.
func (r *EnergyReader) TotalJ() float64 { return r.totalJ }

// Failures returns how many Advance calls failed even after retry.
func (r *EnergyReader) Failures() uint64 { return r.failures }

// readRetry reads an MSR, retrying a transient ErrIO once.
func readRetry(dev *msr.Device, addr uint32) (uint64, error) {
	v, err := dev.Read(addr)
	if err == msr.ErrIO {
		v, err = dev.Read(addr)
	}
	return v, err
}

// ReadEnergyJ returns the cumulative package energy recorded in the MSR,
// handling counter wraparound relative to a previous raw reading. It
// returns the new raw value for the next call.
func ReadEnergyJ(dev *msr.Device, prevRaw uint64) (joules float64, raw uint64, err error) {
	return readDomainEnergyJ(dev, msr.PkgEnergyStatus, prevRaw)
}

// ReadDRAMEnergyJ is ReadEnergyJ for the DRAM domain.
func ReadDRAMEnergyJ(dev *msr.Device, prevRaw uint64) (joules float64, raw uint64, err error) {
	return readDomainEnergyJ(dev, msr.DramEnergyStatus, prevRaw)
}

func readDomainEnergyJ(dev *msr.Device, addr uint32, prevRaw uint64) (float64, uint64, error) {
	unitRaw, err := dev.Read(msr.RaplPowerUnit)
	if err != nil {
		return 0, prevRaw, err
	}
	raw, err := dev.Read(addr)
	if err != nil {
		return 0, prevRaw, err
	}
	return msr.DeltaJoules(prevRaw, raw, msr.DecodeUnits(unitRaw)), raw, nil
}
