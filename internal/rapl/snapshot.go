// Checkpoint accessors for the RAPL controller and the hardened
// actuator. Controller state is its demand EWMAs, burst average, trim
// integral, quiescence latch, energy-counter positions, and deadman
// bookkeeping; the wiring (device, domain, model, meter pointers) and
// tuning come from construction on the restored side. The deadman's
// configuration (TTL, default cap) is re-installed by the engine's
// checkpoint layer, not carried here.

package rapl

import (
	"time"

	"progresscap/internal/msr"
	"progresscap/internal/simtime"
)

// ControllerState is the mutable state of a Controller.
type ControllerState struct {
	Engaged    float64
	Idle       float64
	Activity   float64
	BWUtil     float64
	Seeded     bool
	FastAvgW   float64
	FastSeeded bool
	TrimW      float64
	Manual     bool

	UncappedIdle bool
	IdleSeq      uint64

	Energy     msr.EnergyCounterState
	DRAMEnergy msr.EnergyCounterState

	Deadman      *Deadman
	ArmSeq       uint64
	ArmAge       time.Duration
	Tripped      bool
	DeadmanTrips uint64
}

// Snapshot captures the controller's state.
func (c *Controller) Snapshot() ControllerState {
	st := ControllerState{
		Engaged:      c.engaged,
		Idle:         c.idle,
		Activity:     c.activity,
		BWUtil:       c.bwUtil,
		Seeded:       c.seeded,
		FastAvgW:     c.fastAvgW,
		FastSeeded:   c.fastSeeded,
		TrimW:        c.trimW,
		Manual:       c.manual,
		UncappedIdle: c.uncappedIdle,
		IdleSeq:      c.idleSeq,
		Energy:       c.energy.Snapshot(),
		DRAMEnergy:   c.dramEnergy.Snapshot(),
		ArmSeq:       c.armSeq,
		ArmAge:       c.armAge,
		Tripped:      c.tripped,
		DeadmanTrips: c.deadmanTrips,
	}
	if c.deadman != nil {
		d := *c.deadman
		st.Deadman = &d
	}
	return st
}

// Restore pours a captured state back into an identically constructed
// controller.
func (c *Controller) Restore(st ControllerState) {
	c.engaged = st.Engaged
	c.idle = st.Idle
	c.activity = st.Activity
	c.bwUtil = st.BWUtil
	c.seeded = st.Seeded
	c.fastAvgW = st.FastAvgW
	c.fastSeeded = st.FastSeeded
	c.trimW = st.TrimW
	c.manual = st.Manual
	c.uncappedIdle = st.UncappedIdle
	c.idleSeq = st.IdleSeq
	c.energy.Restore(st.Energy)
	c.dramEnergy.Restore(st.DRAMEnergy)
	if st.Deadman != nil {
		d := *st.Deadman
		c.deadman = &d
	} else {
		c.deadman = nil
	}
	c.armSeq = st.ArmSeq
	c.armAge = st.ArmAge
	c.tripped = st.Tripped
	c.deadmanTrips = st.DeadmanTrips
}

// BackendSnapshotState is one backend's health-machine position.
type BackendSnapshotState struct {
	Health          Health
	ConsecTransient int
	CleanOps        int
	DownSince       time.Duration
	DownStreak      int
}

// ActuatorState is the mutable state of an Actuator. Backends are
// matched positionally: the restored actuator must be built with the
// same backend list.
type ActuatorState struct {
	Backends []BackendSnapshotState
	RNG      simtime.RNGState
	Counters ActuatorCounters
	Parked   bool
}

// Snapshot captures the actuator's state.
func (a *Actuator) Snapshot() ActuatorState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ActuatorState{
		Backends: make([]BackendSnapshotState, len(a.backends)),
		RNG:      a.rng.State(),
		Counters: a.counters,
		Parked:   a.parked,
	}
	for i, bs := range a.backends {
		st.Backends[i] = BackendSnapshotState{
			Health:          bs.health,
			ConsecTransient: bs.consecTransient,
			CleanOps:        bs.cleanOps,
			DownSince:       bs.downSince,
			DownStreak:      bs.downStreak,
		}
	}
	return st
}

// Restore pours a captured state back into an actuator built over the
// same backend list.
func (a *Actuator) Restore(st ActuatorState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(st.Backends) != len(a.backends) {
		panic("rapl: actuator state backend count mismatch")
	}
	for i, bs := range st.Backends {
		a.backends[i].health = bs.Health
		a.backends[i].consecTransient = bs.ConsecTransient
		a.backends[i].cleanOps = bs.CleanOps
		a.backends[i].downSince = bs.DownSince
		a.backends[i].downStreak = bs.DownStreak
	}
	a.rng.SetState(st.RNG)
	a.counters = st.Counters
	a.parked = st.Parked
}

// EnergyReaderState is the mutable state of an EnergyReader.
type EnergyReaderState struct {
	PrevRaw  uint64
	Primed   bool
	TotalJ   float64
	Failures uint64
}

// Snapshot captures the reader's position.
func (er *EnergyReader) Snapshot() EnergyReaderState {
	return EnergyReaderState{PrevRaw: er.prevRaw, Primed: er.primed, TotalJ: er.totalJ, Failures: er.failures}
}

// Restore pours a captured position back.
func (er *EnergyReader) Restore(st EnergyReaderState) {
	er.prevRaw = st.PrevRaw
	er.primed = st.Primed
	er.totalJ = st.TotalJ
	er.failures = st.Failures
}
