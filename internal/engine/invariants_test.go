package engine

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/workload"
)

func invariantWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	return apps.LAMMPS(apps.DefaultRanks, 2000)
}

// TestInvariantsCleanRun: a normal capped run stays inside the safety
// envelope — the checker must stay silent.
func TestInvariantsCleanRun(t *testing.T) {
	e, err := New(DefaultConfig(), invariantWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetScheme(policy.Step{HighW: 0, LowW: 90, HighFor: 3 * time.Second, LowFor: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	e.EnableInvariants(InvariantConfig{})
	if _, err := e.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	if v := e.InvariantViolations(); len(v) != 0 {
		t.Fatalf("clean run violated invariants: %v", v)
	}
}

// TestInvariantsCatchOutOfRangeCap: a cap programmed outside [min, TDP]
// must be flagged. The policy layer would normally never do this; the
// checker exists to catch exactly the "normally never" cases a corrupt
// journal replay or a buggy division policy could produce.
func TestInvariantsCatchOutOfRangeCap(t *testing.T) {
	e, err := New(DefaultConfig(), invariantWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	// 8 W: far below any runnable cap.
	if err := e.SetScheme(policy.Constant{Watts: 8}); err != nil {
		t.Fatal(err)
	}
	e.EnableInvariants(InvariantConfig{})
	if _, err := e.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range e.InvariantViolations() {
		if v.Rule == "cap-range" {
			found = true
		}
	}
	if !found {
		t.Fatalf("8 W cap not flagged; violations: %v", e.InvariantViolations())
	}
}

// TestInvariantsDisabledByDefault: without EnableInvariants the checker
// neither runs nor allocates.
func TestInvariantsDisabledByDefault(t *testing.T) {
	e, err := New(DefaultConfig(), invariantWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.InvariantViolations() != nil {
		t.Fatal("violations non-nil with checker disabled")
	}
}

// TestInvariantsCatchActuationFlap: rewriting the cap register far above
// the policy-plane rate is flagged as a flapping control loop.
func TestInvariantsCatchActuationFlap(t *testing.T) {
	e, err := New(DefaultConfig(), invariantWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	e.EnableInvariants(InvariantConfig{})
	// Flap the cap register 50× within one window via the whitelisted
	// interface, as a runaway policy daemon would.
	for i := 0; i < 50; i++ {
		if err := e.Device().Write(msr.PkgPowerLimit, uint64(0x8000|(0x300+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range e.InvariantViolations() {
		if v.Rule == "actuation-rate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cap flapping not flagged; violations: %v", e.InvariantViolations())
	}
}
