package engine

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/policy"
)

func TestAdvanceFinishEquivalentToRun(t *testing.T) {
	mk := func() *Engine {
		cfg := DefaultConfig()
		e, err := New(cfg, apps.LAMMPS(apps.DefaultRanks, 100))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := mk()
	r1, err := e1.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	e2 := mk()
	for {
		done, err := e2.Advance(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	r2, err := e2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed || r1.EnergyJ != r2.EnergyJ || len(r1.Samples) != len(r2.Samples) {
		t.Fatalf("Run vs Advance loop diverged: %v/%v, %v/%v, %d/%d",
			r1.Elapsed, r2.Elapsed, r1.EnergyJ, r2.EnergyJ, len(r1.Samples), len(r2.Samples))
	}
}

func TestAdvanceStopsAtBudget(t *testing.T) {
	e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 100000))
	if err != nil {
		t.Fatal(err)
	}
	done, err := e.Advance(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("huge workload done after 2 s")
	}
	now := e.Clock().Now()
	if now < 2*time.Second || now > 2*time.Second+time.Millisecond {
		t.Fatalf("clock after Advance(2s) = %v", now)
	}
	// Second advance continues from where it stopped.
	if _, err := e.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Clock().Now() < 3*time.Second {
		t.Fatalf("clock after second Advance = %v", e.Clock().Now())
	}
}

func TestAdvanceAfterFinishFails(t *testing.T) {
	e, _ := New(DefaultConfig(), apps.ImbalanceSample(4, 1, true, 0.05))
	if _, err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Advance(time.Second); err == nil {
		t.Fatal("Advance after Finish accepted")
	}
	if _, err := e.Finish(); err == nil {
		t.Fatal("second Finish accepted")
	}
}

func TestAdvanceBadDuration(t *testing.T) {
	e, _ := New(DefaultConfig(), apps.ImbalanceSample(4, 1, true, 0.05))
	if _, err := e.Advance(0); err == nil {
		t.Fatal("Advance(0) accepted")
	}
}

func TestMultiWorkloadDisjointProgress(t *testing.T) {
	// Two workloads sharing the node: 12-rank LAMMPS + 12-rank STREAM.
	lammps := apps.LAMMPS(12, 200)
	stream := apps.STREAM(12, 160)
	e, err := NewMulti(DefaultConfig(), lammps, stream)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	if res.Jobs[0].Workload != "lammps" || res.Jobs[1].Workload != "stream" {
		t.Fatalf("job order: %s, %s", res.Jobs[0].Workload, res.Jobs[1].Workload)
	}
	if !res.Completed || !res.Jobs[0].Completed || !res.Jobs[1].Completed {
		t.Fatal("not all workloads completed")
	}
	// Both progress streams are populated and distinct.
	// Iteration duration is per-rank work at a fixed 50 ms, so the rate
	// is rank-count independent (each rank handles a larger share).
	r0, r1 := res.Jobs[0].MeanRate(), res.Jobs[1].MeanRate()
	if r0 < 700000 || r0 > 900000 {
		t.Fatalf("12-rank LAMMPS rate = %v, want ~800k", r0)
	}
	if r1 < 12 || r1 > 20 {
		t.Fatalf("12-rank STREAM rate = %v, want ~16", r1)
	}
	// Primary mirrors job 0.
	if res.MeanRate() != r0 {
		t.Fatalf("primary rate %v != job0 rate %v", res.MeanRate(), r0)
	}
}

func TestMultiWorkloadOversubscriptionRejected(t *testing.T) {
	if _, err := NewMulti(DefaultConfig(), apps.LAMMPS(16, 10), apps.STREAM(16, 10)); err == nil {
		t.Fatal("32 ranks on 24 cores accepted")
	}
	if _, err := NewMulti(DefaultConfig()); err == nil {
		t.Fatal("zero workloads accepted")
	}
}

func TestMultiWorkloadCapAffectsBoth(t *testing.T) {
	run := func(scheme policy.Scheme) (float64, float64) {
		e, err := NewMulti(DefaultConfig(), apps.LAMMPS(12, 400), apps.STREAM(12, 320))
		if err != nil {
			t.Fatal(err)
		}
		if scheme != nil {
			if err := e.SetScheme(scheme); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Run(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs[0].MeanRate(), res.Jobs[1].MeanRate()
	}
	l0, s0 := run(nil)
	l1, s1 := run(policy.Constant{Watts: 90})
	if l1 >= l0 || s1 >= s0 {
		t.Fatalf("cap did not slow both workloads: lammps %v→%v, stream %v→%v", l0, l1, s0, s1)
	}
}

func TestMultiWorkloadEarlierFinishLeavesCoresIdle(t *testing.T) {
	// Short STREAM next to long LAMMPS: after STREAM finishes, the node
	// keeps running LAMMPS and total power drops.
	e, err := NewMulti(DefaultConfig(), apps.LAMMPS(12, 400), apps.STREAM(12, 32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	// STREAM lasts ~2 s; LAMMPS ~20 s. Power in the last windows must be
	// below the first full window (fewer engaged cores).
	early := res.PowerTrace.At(1).V
	late := res.PowerTrace.At(res.PowerTrace.Len() - 2).V
	if late >= early {
		t.Fatalf("power did not drop after STREAM finished: early %v, late %v", early, late)
	}
	if math.Abs(res.Jobs[1].MeanRate()) == 0 {
		t.Fatal("stream job recorded no progress")
	}
}
