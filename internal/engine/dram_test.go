package engine

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/msr"
	"progresscap/internal/rapl"
)

func TestDRAMEnergyTracksBandwidth(t *testing.T) {
	// STREAM saturates memory bandwidth; LAMMPS barely touches it. Their
	// DRAM power (energy per second) must differ accordingly.
	stream := mustRun(t, apps.STREAM(apps.DefaultRanks, 160), nil, time.Minute)
	lammps := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 200), nil, time.Minute)
	streamW := stream.DRAMEnergyJ / stream.Elapsed.Seconds()
	lammpsW := lammps.DRAMEnergyJ / lammps.Elapsed.Seconds()
	if streamW < lammpsW*2 {
		t.Fatalf("STREAM DRAM power %v W not well above LAMMPS %v W", streamW, lammpsW)
	}
	if streamW < 15 || streamW > 25 {
		t.Fatalf("STREAM DRAM power = %v W, want ~22", streamW)
	}
}

func TestDRAMEnergyReadableViaMSR(t *testing.T) {
	e, err := New(DefaultConfig(), apps.STREAM(apps.DefaultRanks, 80))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := rapl.ReadDRAMEnergyJ(e.Device(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if j <= 0 {
		t.Fatal("DRAM energy MSR never advanced")
	}
	// MSR reading matches the meter within counter quantization.
	if diff := j - res.DRAMEnergyJ; diff > 1 || diff < -1 {
		t.Fatalf("MSR DRAM energy %v vs meter %v", j, res.DRAMEnergyJ)
	}
	// The DRAM domain is read-only, like on msr-safe defaults.
	if err := e.Device().Write(msr.DramEnergyStatus, 0); err == nil {
		t.Fatal("DRAM energy register writable")
	}
}
