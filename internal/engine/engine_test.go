package engine

import (
	"math"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/policy"
	"progresscap/internal/progress"
	"progresscap/internal/stats"
	"progresscap/internal/workload"
)

func mustRun(t *testing.T, w *workload.Workload, scheme policy.Scheme, maxDur time.Duration) *Result {
	t.Helper()
	e, err := New(DefaultConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != nil {
		if err := e.SetScheme(scheme); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Run(maxDur)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLAMMPSUncappedSteadyProgress(t *testing.T) {
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 300), nil, time.Minute)
	if !res.Completed {
		t.Fatal("LAMMPS did not complete")
	}
	// ~300 steps at ~20/s → ~15 s, ~800k atom-steps/s.
	if res.Elapsed < 13*time.Second || res.Elapsed > 18*time.Second {
		t.Fatalf("elapsed = %v, want ~15 s", res.Elapsed)
	}
	rate := res.MeanRate()
	if rate < 700000 || rate > 900000 {
		t.Fatalf("mean rate = %v atom-steps/s, want ~800k", rate)
	}
	// Fig 1 (left): steady online performance.
	if got := progress.Classify(res.Rates()); got != progress.Steady {
		t.Fatalf("LAMMPS classified %v, want steady (rates %v)", got, res.Rates())
	}
}

func TestAMGUncappedFluctuates(t *testing.T) {
	res := mustRun(t, apps.AMG(apps.DefaultRanks, 80), nil, time.Minute)
	if !res.Completed {
		t.Fatal("AMG did not complete")
	}
	rate := res.MeanRate()
	if rate < 2.2 || rate > 3.3 {
		t.Fatalf("AMG mean rate = %v it/s, want 2.5-3", rate)
	}
	// Fig 1 (center): inconsistent, needs averaging.
	if got := progress.Classify(res.Rates()); got == progress.Phased {
		t.Fatalf("AMG classified %v", got)
	}
	if cv := stats.CoefVar(res.Rates()); cv < 0.03 {
		t.Fatalf("AMG rate CV = %v, expected visible fluctuation", cv)
	}
}

func TestQMCPACKPhasesVisibleInProgress(t *testing.T) {
	// ~10 s per phase at 8/12/16 blocks/s.
	res := mustRun(t, apps.QMCPACK(apps.DefaultRanks, 80, 120, 160), nil, time.Minute)
	if !res.Completed {
		t.Fatal("QMCPACK did not complete")
	}
	// Fig 1 (right): the three phases compute blocks at different rates.
	if got := progress.Classify(res.Rates()); got != progress.Phased {
		t.Fatalf("QMCPACK classified %v, want phased (rates %v)", got, res.Rates())
	}
}

func TestOpenMCOccasionalZeroReports(t *testing.T) {
	res := mustRun(t, apps.OpenMC(apps.DefaultRanks, 5, 40, 100000), nil, 2*time.Minute)
	if !res.Completed {
		t.Fatal("OpenMC did not complete")
	}
	zeros, nonzeros := 0, 0
	for _, s := range res.Samples {
		if s.Rate == 0 {
			zeros++
		} else {
			nonzeros++
		}
	}
	// ~1.05 s batches vs 1 s windows: some windows must be empty, but
	// most must carry data.
	if zeros == 0 {
		t.Fatal("expected occasional zero-progress windows (aliasing artifact)")
	}
	if nonzeros < zeros {
		t.Fatalf("too many empty windows: %d zero vs %d nonzero", zeros, nonzeros)
	}
}

func TestStepCapProgressFollowsCap(t *testing.T) {
	// Fig 3: the online performance follows the power capping function.
	scheme := policy.Step{HighW: policy.Uncapped, LowW: 90, HighFor: 10 * time.Second, LowFor: 10 * time.Second}
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 900), scheme, 2*time.Minute)

	var highRates, lowRates []float64
	for _, s := range res.Samples {
		capW, ok := res.CapTrace.ValueAt(s.At - time.Millisecond)
		if !ok {
			continue
		}
		// Skip the window right after each transition (mixed regime).
		prev, _ := res.CapTrace.ValueAt(s.At - 1100*time.Millisecond)
		if prev != capW {
			continue
		}
		if capW == policy.Uncapped {
			highRates = append(highRates, s.Rate)
		} else {
			lowRates = append(lowRates, s.Rate)
		}
	}
	if len(highRates) < 5 || len(lowRates) < 5 {
		t.Fatalf("not enough windows: %d high, %d low", len(highRates), len(lowRates))
	}
	hi, lo := stats.Mean(highRates), stats.Mean(lowRates)
	if lo >= hi*0.9 {
		t.Fatalf("capped progress %v not clearly below uncapped %v", lo, hi)
	}
	if lo < hi*0.3 {
		t.Fatalf("capped progress %v implausibly low vs uncapped %v", lo, hi)
	}
}

func TestLinearCapProgressDecreases(t *testing.T) {
	scheme := policy.Linear{Delay: 3 * time.Second, StartW: 170, MinW: 70, RateWPerSec: 5}
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 900), scheme, time.Minute)
	rates := res.Rates()
	if len(rates) < 20 {
		t.Fatalf("only %d windows", len(rates))
	}
	early := stats.Mean(rates[1:4])
	late := stats.Mean(rates[len(rates)-4 : len(rates)-1])
	if late >= early*0.85 {
		t.Fatalf("progress did not decrease under linear cap: early %v, late %v", early, late)
	}
}

func TestJaggedCapProgressRecovers(t *testing.T) {
	scheme := policy.Jagged{StartW: 170, LowW: 80, FallFor: 8 * time.Second, UncappedFor: 4 * time.Second}
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 900), scheme, time.Minute)
	rates := res.Rates()
	// Progress must dip and recover: max over later windows close to the
	// early uncapped rate.
	if len(rates) < 24 {
		t.Fatalf("only %d windows", len(rates))
	}
	early := stats.Mean(rates[1:4])
	laterMax := 0.0
	for _, r := range rates[12:] {
		if r > laterMax {
			laterMax = r
		}
	}
	if laterMax < early*0.9 {
		t.Fatalf("progress never recovered in jagged scheme: early %v, later max %v", early, laterMax)
	}
	mn := stats.Summarize(rates[2:]).Min
	if mn > early*0.85 {
		t.Fatalf("progress never dipped in jagged scheme: early %v, min %v", early, mn)
	}
}

func TestPowerTraceRespectsCap(t *testing.T) {
	scheme := policy.Constant{Watts: 110}
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 600), scheme, time.Minute)
	// Skip the first window (transient), then package power ≈ cap.
	for i := 1; i < res.PowerTrace.Len()-1; i++ {
		p := res.PowerTrace.At(i).V
		if p > 110*1.05 {
			t.Fatalf("window %d: power %v W above cap", i, p)
		}
		if p < 110*0.85 {
			t.Fatalf("window %d: power %v W far below cap (RAPL should use the full budget)", i, p)
		}
	}
}

func TestFrequencyHigherForComputeBoundUnderSameCap(t *testing.T) {
	// Fig 2 at engine level.
	const capW = 110
	resC := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 400), policy.Constant{Watts: capW}, time.Minute)
	resM := mustRun(t, apps.STREAM(apps.DefaultRanks, 320), policy.Constant{Watts: capW}, time.Minute)
	fC := stats.Mean(resC.FreqTrace.Values()[2:])
	fM := stats.Mean(resM.FreqTrace.Values()[2:])
	if fC <= fM {
		t.Fatalf("compute-bound freq %v MHz not above memory-bound %v MHz", fC, fM)
	}
}

func TestManualDVFSHoldsFrequency(t *testing.T) {
	e, err := New(DefaultConfig(), apps.STREAM(apps.DefaultRanks, 160))
	if err != nil {
		t.Fatal(err)
	}
	e.SetManualDVFS(1600)
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.FreqTrace.Points() {
		if p.V != 1600 {
			t.Fatalf("window %d: frequency %v, want 1600", i, p.V)
		}
	}
}

func TestTableICorrelation(t *testing.T) {
	// Table I: equal vs unequal work — same iterations/s, roughly halved
	// work units, wildly different MIPS.
	resEq := mustRun(t, apps.ImbalanceSample(24, 5, true, 1.0), nil, time.Minute)
	resUn := mustRun(t, apps.ImbalanceSample(24, 5, false, 1.0), nil, time.Minute)
	if !resEq.Completed || !resUn.Completed {
		t.Fatal("imbalance samples did not complete")
	}

	itEq := 5 / resEq.Elapsed.Seconds()
	itUn := 5 / resUn.Elapsed.Seconds()
	if math.Abs(itEq-itUn)/itEq > 0.02 {
		t.Fatalf("iterations/s differ: equal %v, unequal %v", itEq, itUn)
	}
	if math.Abs(itEq-1) > 0.05 {
		t.Fatalf("iterations/s = %v, want ~1", itEq)
	}

	// Definition 2: equal = 24 × 1M units per iteration, unequal =
	// Σ(r+1)/24 × 1M = 12.5M, so the ratio is 1.92.
	if resEq.WorkUnits <= 0 || resUn.WorkUnits <= 0 {
		t.Fatal("work units not accounted")
	}
	ratio := resEq.WorkUnits / resUn.WorkUnits
	if math.Abs(ratio-1.92) > 0.05 {
		t.Fatalf("work unit ratio = %v, want ~1.92", ratio)
	}

	mipsEq := resEq.Counters.MIPS()
	mipsUn := resUn.Counters.MIPS()
	if mipsUn < 5*mipsEq {
		t.Fatalf("unequal MIPS %v not far above equal MIPS %v (barrier spin missing?)", mipsUn, mipsEq)
	}
}

func TestEngineValidation(t *testing.T) {
	w := apps.LAMMPS(48, 10) // more ranks than cores
	if _, err := New(DefaultConfig(), w); err == nil {
		t.Fatal("oversubscribed workload accepted")
	}
	cfg := DefaultConfig()
	cfg.Tick = 10 * time.Millisecond // tick > RAPL period
	if _, err := New(cfg, apps.LAMMPS(24, 10)); err == nil {
		t.Fatal("tick > control period accepted")
	}
}

func TestEngineRunTwiceFails(t *testing.T) {
	e, err := New(DefaultConfig(), apps.ImbalanceSample(4, 1, true, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(time.Minute); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestEngineTimeLimit(t *testing.T) {
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 100000), nil, 3*time.Second)
	if res.Completed {
		t.Fatal("run should have hit the time limit")
	}
	if res.Elapsed > 3*time.Second+100*time.Millisecond {
		t.Fatalf("elapsed %v exceeds limit", res.Elapsed)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *Result {
		return mustRun(t, apps.AMG(apps.DefaultRanks, 20), policy.Constant{Watts: 120}, time.Minute)
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.EnergyJ != b.EnergyJ || len(a.Samples) != len(b.Samples) {
		t.Fatalf("runs diverged: %v/%v, %v/%v", a.Elapsed, b.Elapsed, a.EnergyJ, b.EnergyJ)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d diverged", i)
		}
	}
}

func TestEnergyConsistentWithPowerTrace(t *testing.T) {
	res := mustRun(t, apps.LAMMPS(apps.DefaultRanks, 200), nil, time.Minute)
	// Energy ≈ mean power × elapsed.
	var weighted float64
	prev := time.Duration(0)
	for _, p := range res.PowerTrace.Points() {
		weighted += p.V * (p.T - prev).Seconds()
		prev = p.T
	}
	if math.Abs(weighted-res.EnergyJ)/res.EnergyJ > 0.02 {
		t.Fatalf("trace-integrated energy %v vs meter %v", weighted, res.EnergyJ)
	}
}
