package engine

import (
	"reflect"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/counters"
	"progresscap/internal/cpu"
	"progresscap/internal/fault"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/power"
	"progresscap/internal/powercap"
	"progresscap/internal/progress"
	"progresscap/internal/pubsub"
	"progresscap/internal/rapl"
	"progresscap/internal/simtime"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// TestCheckpointResumeMatchesScratch is the checkpoint correctness
// oracle: for every macro scenario, a run forked from a checkpoint at
// any whole-second depth must produce a byte-identical signature to the
// same run simulated from scratch — same completion instants, energy
// integrals, samples, traces, counters, and fault outcomes.
func TestCheckpointResumeMatchesScratch(t *testing.T) {
	for _, sc := range macroScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Scratch baseline: the ordinary one-shot Run.
			fresh, err := sc.setup(DefaultConfig())
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			res, err := fresh.Run(sc.dur)
			if err != nil {
				t.Fatalf("scratch run: %v", err)
			}
			scratch := res.Signature()

			// Donor: the same run advanced in 1 s chunks, checkpointing at
			// a few depths along the way.
			donor, err := sc.setup(DefaultConfig())
			if err != nil {
				t.Fatalf("setup donor: %v", err)
			}
			if err := donor.Begin(); err != nil {
				t.Fatalf("donor Begin: %v", err)
			}
			wantDepth := map[time.Duration]bool{
				time.Second:                              true,
				(sc.dur / time.Second) / 2 * time.Second: true,
				sc.dur - time.Second:                     true,
			}
			type taken struct {
				depth time.Duration
				ck    *Checkpoint
			}
			var cks []taken
			done := false
			for !done && donor.Clock().Now() < sc.dur {
				done, err = donor.Advance(time.Second)
				if err != nil {
					t.Fatalf("donor advance: %v", err)
				}
				now := donor.Clock().Now()
				if done || now%time.Second != 0 || !wantDepth[now] {
					continue
				}
				ck, err := donor.Checkpoint()
				if err != nil {
					// A pending scheduled callback legitimately blocks a
					// checkpoint (the scheduled-actuation scenario); later
					// depths succeed.
					t.Logf("checkpoint at %v refused: %v", now, err)
					continue
				}
				if ck.SizeBytes() <= 0 {
					t.Fatalf("checkpoint at %v has non-positive size", now)
				}
				cks = append(cks, taken{now, ck})
			}
			donorRes, err := donor.Finish()
			if err != nil {
				t.Fatalf("donor finish: %v", err)
			}
			if got := donorRes.Signature(); got != scratch {
				t.Fatalf("chunked run diverges from one-shot:\n%s", diffHead(got, scratch))
			}
			if len(cks) == 0 {
				t.Fatal("no checkpoint depth succeeded")
			}

			// Fork from every captured depth and run to the end.
			for _, tk := range cks {
				forked, err := sc.setup(DefaultConfig())
				if err != nil {
					t.Fatalf("setup fork: %v", err)
				}
				if err := forked.Resume(tk.ck); err != nil {
					t.Fatalf("resume at %v: %v", tk.depth, err)
				}
				if rem := sc.dur - tk.depth; rem > 0 {
					if _, err := forked.Advance(rem); err != nil {
						t.Fatalf("forked advance at %v: %v", tk.depth, err)
					}
				}
				fres, err := forked.Finish()
				if err != nil {
					t.Fatalf("forked finish at %v: %v", tk.depth, err)
				}
				if got := fres.Signature(); got != scratch {
					t.Errorf("fork at depth %v diverges from scratch:\n%s", tk.depth, diffHead(got, scratch))
				}
			}
		})
	}
}

// TestCheckpointResumeFixedTick reruns one capped scenario in fixed-tick
// mode: the checkpoint grid must be mode-independent, so a fork taken
// under the oracle integrator reproduces the macro-stepped scratch
// signature too.
func TestCheckpointResumeFixedTick(t *testing.T) {
	mk := func(fixed bool) *Engine {
		cfg := DefaultConfig()
		cfg.FixedTick = fixed
		e, err := New(cfg, apps.STREAM(apps.DefaultRanks, 100000))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetScheme(policy.Step{HighW: 140, LowW: 80, HighFor: 2 * time.Second, LowFor: 2 * time.Second}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	const dur = 8 * time.Second
	res, err := mk(false).Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	scratch := res.Signature()

	donor := mk(true)
	if err := donor.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Advance(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	ck, err := donor.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	forked := mk(true)
	if err := forked.Resume(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := forked.Advance(dur - 3*time.Second); err != nil {
		t.Fatal(err)
	}
	fres, err := forked.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := fres.Signature(); got != scratch {
		t.Errorf("fixed-tick fork diverges from macro scratch:\n%s", diffHead(got, scratch))
	}
}

// TestCheckpointRefusals pins the guard rails: no snapshot before start,
// off the window grid, after Finish, or with un-copyable state in flight.
func TestCheckpointRefusals(t *testing.T) {
	mk := func() *Engine {
		e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 60))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := mk()
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint before start accepted")
	}

	e = mk()
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Advance(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint off the window grid accepted")
	}

	e = mk()
	e.SetWindowHook(func(WindowStats) {})
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint with a window hook accepted")
	}

	e = mk()
	e.Scheduler().At(5*time.Second, func(time.Duration) {})
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint with pending scheduler callbacks accepted")
	}

	e = mk()
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint after Finish accepted")
	}

	// Resume refusals: wrong version, used engine, topology mismatch.
	donor := mk()
	if err := donor.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	ck, err := donor.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bad := *ck
	bad.Version = CheckpointVersion + 1
	if err := mk().Resume(&bad); err == nil {
		t.Error("wrong-version checkpoint accepted")
	}
	used := mk()
	if err := used.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := used.Resume(ck); err == nil {
		t.Error("Resume on a started engine accepted")
	}
	withDaemon := mk()
	if err := withDaemon.SetScheme(policy.Constant{Watts: 100}); err != nil {
		t.Fatal(err)
	}
	if err := withDaemon.Resume(ck); err == nil {
		t.Error("daemonless checkpoint accepted by a daemon engine")
	}
	wrongSeed := func() *Engine {
		cfg := DefaultConfig()
		cfg.Seed = 999
		e, err := New(cfg, apps.LAMMPS(apps.DefaultRanks, 60))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}()
	if err := wrongSeed.Resume(ck); err == nil {
		t.Error("checkpoint restored onto a differently seeded engine")
	}
}

// inventoryCase pins one struct's field set against the checkpoint
// serializer: every field is either snapshotted (carried by Checkpoint,
// directly or through a sub-state) or exempt with a recorded reason.
// Adding a field without classifying it here fails the test, which is
// the point — state must not silently escape the snapshot.
type inventoryCase struct {
	typ         reflect.Type
	snapshotted []string
	exempt      map[string]string // field -> why it is not snapshotted
}

func (c inventoryCase) check(t *testing.T) {
	t.Helper()
	seen := map[string]bool{}
	for i := 0; i < c.typ.NumField(); i++ {
		name := c.typ.Field(i).Name
		seen[name] = true
		inSnap := false
		for _, s := range c.snapshotted {
			if s == name {
				inSnap = true
				break
			}
		}
		_, inExempt := c.exempt[name]
		switch {
		case inSnap && inExempt:
			t.Errorf("%s.%s is listed both snapshotted and exempt", c.typ, name)
		case !inSnap && !inExempt:
			t.Errorf("%s.%s is not covered by the checkpoint serializer: snapshot it or exempt it with a reason", c.typ, name)
		}
	}
	for _, s := range c.snapshotted {
		if !seen[s] {
			t.Errorf("%s: snapshotted field %q no longer exists", c.typ, s)
		}
	}
	for s := range c.exempt {
		if !seen[s] {
			t.Errorf("%s: exempt field %q no longer exists", c.typ, s)
		}
	}
}

// fieldElem descends from a struct type through a named field to the
// underlying struct type (unwrapping pointers, slices, and maps), so the
// inventory can reach unexported types like rankState or backendState.
func fieldElem(t *testing.T, typ reflect.Type, field string) reflect.Type {
	t.Helper()
	f, ok := typ.FieldByName(field)
	if !ok {
		t.Fatalf("%s has no field %q", typ, field)
	}
	ft := f.Type
	for ft.Kind() == reflect.Ptr || ft.Kind() == reflect.Slice || ft.Kind() == reflect.Map {
		ft = ft.Elem()
	}
	return ft
}

// TestEngineStateInventory is the reflection pin for the tentpole: the
// complete field set of the engine and of every subsystem it snapshots,
// checked against the checkpoint serializer. A new field anywhere in
// this object graph must be added to a snapshot state or explicitly
// exempted here.
func TestEngineStateInventory(t *testing.T) {
	cases := []inventoryCase{
		{
			typ: reflect.TypeOf(Engine{}),
			snapshotted: []string{
				"clock", "dev", "domain", "uncore", "meter", "ctl", "bank",
				"bus", "jobs", "daemon", "raplTicker", "windowTicker",
				"policyTicker", "events", "started", "res", "lastFlush",
				"energyMark", "obsAnchor", "recycle", "reserved", "faults",
				"inv",
			},
			exempt: map[string]string{
				"cfg":            "construction configuration; the resumed engine is built from the same Config",
				"sched":          "Checkpoint refuses pending callbacks (closures cannot be deep-copied); empty otherwise",
				"finished":       "Checkpoint refuses finished engines; always false in a snapshot",
				"topicsDisjoint": "derived from workload names at construction",
				"payloadFree":    "allocation recycling cache; affects allocation only, never results",
				"windowHook":     "Checkpoint refuses engines with a hook (closures cannot be deep-copied)",
				"pubFaults":      "derived view of faults; SetFaults reinstalls it on the resumed engine",
			},
		},
		{
			typ:         reflect.TypeOf(job{}),
			snapshotted: []string{"exec", "reporter", "monitor", "sub", "res"},
			exempt: map[string]string{
				"dec": "string-interning cache; rebuilding it changes nothing observable",
			},
		},
		{
			typ:         reflect.TypeOf(JobResult{}),
			snapshotted: []string{"Samples", "RateTrace", "WorkUnits"},
			exempt: map[string]string{
				"Workload":  "construction configuration",
				"Metric":    "construction configuration",
				"Completed": "derived from the executor at Finish",
				"RankLoads": "derived from the executor at Finish",
			},
		},
		{
			typ: reflect.TypeOf(Result{}),
			snapshotted: []string{
				"PowerTrace", "CoreTrace", "FreqTrace", "DutyTrace",
				"BWTrace", "WorkUnits",
			},
			exempt: map[string]string{
				"Workload":     "construction configuration",
				"Elapsed":      "derived at Finish",
				"Completed":    "derived at Finish",
				"Samples":      "alias of the primary job's samples, set at Finish",
				"RateTrace":    "alias of the primary job's trace, set at Finish",
				"CapTrace":     "alias of the daemon's trace, set at Finish",
				"EnergyJ":      "derived from the meter at Finish",
				"DRAMEnergyJ":  "derived from the meter at Finish",
				"Counters":     "derived from the event set at Finish",
				"Dropped":      "derived from the bus at Finish",
				"DropsByTopic": "derived from the bus at Finish",
				"Jobs":         "wiring rebuilt by Resume",
			},
		},
		{
			typ:         reflect.TypeOf(invariantChecker{}),
			snapshotted: []string{"lastTotalJ", "lastRawSet", "lastRaw", "lastSeq", "violations"},
			exempt:      map[string]string{"cfg": "construction configuration"},
		},
		{
			typ:         reflect.TypeOf(simtime.Clock{}),
			snapshotted: []string{"now"},
		},
		{
			typ:         reflect.TypeOf(simtime.Ticker{}),
			snapshotted: []string{"next"},
			exempt:      map[string]string{"period": "construction configuration"},
		},
		{
			typ:         reflect.TypeOf(simtime.RNG{}),
			snapshotted: []string{"state", "inc"},
		},
		{
			typ: reflect.TypeOf(simtime.Scheduler{}),
			exempt: map[string]string{
				"clock": "wiring",
				"queue": "Checkpoint refuses pending callbacks; empty otherwise",
				"seq":   "tie-breaks pending events only; meaningless when the queue is empty",
			},
		},
		{
			typ:         reflect.TypeOf(workload.Exec{}),
			snapshotted: []string{"rng", "ranks", "phaseIdx", "iter", "iterStart", "done", "at"},
			exempt: map[string]string{
				"w":       "construction configuration",
				"bank":    "wiring; the bank is snapshotted at the engine level",
				"offset":  "construction configuration",
				"compBuf": "scratch buffer reused across Step calls",
			},
		},
		{
			typ:         fieldElem(t, reflect.TypeOf(workload.Exec{}), "ranks"),
			snapshotted: []string{"seg", "remCycles", "remMem", "remSleep", "finished", "load"},
		},
		{
			typ: reflect.TypeOf(progress.Monitor{}),
			snapshotted: []string{
				"samples", "total", "reports", "lastFlush", "rejected",
				"history", "histPos", "emptyWindows",
			},
			exempt: map[string]string{
				"window":     "construction configuration",
				"pending":    "Snapshot panics unless empty; checkpoints follow a flush",
				"medScratch": "sort scratch buffer",
			},
		},
		{
			typ:         reflect.TypeOf(progress.Reporter{}),
			snapshotted: []string{"sent"},
			exempt: map[string]string{
				"app":   "construction configuration",
				"pub":   "wiring",
				"bufs":  "wiring (derived view of pub)",
				"topic": "derived from app at construction",
			},
		},
		{
			typ:         reflect.TypeOf(progress.PhaseDetector{}),
			snapshotted: []string{"n", "level", "levelN", "pending", "changes"},
			exempt: map[string]string{
				"relTol": "construction configuration",
				"minLen": "construction configuration",
			},
		},
		{
			typ:    reflect.TypeOf(progress.Decoder{}),
			exempt: map[string]string{"names": "string-interning cache"},
		},
		{
			typ:         reflect.TypeOf(pubsub.Bus{}),
			snapshotted: []string{"published", "dropped", "topicDrops"},
			exempt: map[string]string{
				"mu":   "lock",
				"subs": "wiring; subscriptions are re-created by NewMulti and re-filled via SetDropped",
			},
		},
		{
			typ:         reflect.TypeOf(pubsub.Subscription{}),
			snapshotted: []string{"dropped"},
			exempt: map[string]string{
				"bus":    "wiring",
				"prefix": "construction configuration",
				"ch":     "Checkpoint refuses undrained channels; empty otherwise",
				"mu":     "lock",
				"closed": "never closed during a run",
			},
		},
		{
			typ: reflect.TypeOf(msr.Device{}),
			snapshotted: []string{
				"pkg", "core", "writes", "reads", "writeSeq", "stalePkg",
				"staleCore",
			},
			exempt: map[string]string{
				"mu":        "lock",
				"cores":     "construction configuration",
				"writeMask": "construction configuration",
				"faultHook": "reinstalled by SetFaults on the resumed engine",
			},
		},
		{
			typ:         reflect.TypeOf(msr.EnergyCounter{}),
			snapshotted: []string{"raw", "frac"},
			exempt:      map[string]string{"units": "construction configuration"},
		},
		{
			typ:         reflect.TypeOf(counters.Bank{}),
			snapshotted: []string{"vals"},
			exempt: map[string]string{
				"cores":    "construction configuration",
				"readHook": "reinstalled by SetFaults on the resumed engine",
			},
		},
		{
			typ:         reflect.TypeOf(counters.EventSet{}),
			snapshotted: []string{"start", "began"},
			exempt: map[string]string{
				"bank":   "wiring",
				"events": "construction configuration",
			},
		},
		{
			typ:         reflect.TypeOf(cpu.Domain{}),
			snapshotted: []string{"freq", "duty", "ceiling"},
			exempt:      map[string]string{"cfg": "construction configuration"},
		},
		{
			typ:         reflect.TypeOf(cpu.Uncore{}),
			snapshotted: []string{"bwScale"},
		},
		{
			typ: reflect.TypeOf(power.Meter{}),
			snapshotted: []string{
				"avgPkgW", "havePkg", "energyJ", "coreJ", "uncoreJ", "dramJ",
				"lastBrk",
			},
			exempt: map[string]string{
				"model":  "construction configuration",
				"tauSec": "construction configuration",
			},
		},
		{
			typ: reflect.TypeOf(rapl.Controller{}),
			snapshotted: []string{
				"engaged", "idle", "activity", "bwUtil", "seeded", "fastAvgW",
				"fastSeeded", "trimW", "manual", "uncappedIdle", "idleSeq",
				"energy", "dramEnergy", "deadman", "armSeq", "armAge",
				"tripped", "deadmanTrips",
			},
			exempt: map[string]string{
				"dev":    "wiring",
				"domain": "wiring",
				"uncore": "wiring",
				"model":  "construction configuration",
				"meter":  "wiring; snapshotted at the engine level",
				"opts":   "construction configuration",
				"units":  "construction configuration (decoded once from the unit register)",
			},
		},
		{
			typ:         reflect.TypeOf(rapl.Deadman{}),
			snapshotted: []string{"TTL", "DefaultCapW"},
		},
		{
			typ:         reflect.TypeOf(rapl.Actuator{}),
			snapshotted: []string{"backends", "rng", "counters", "parked"},
			exempt: map[string]string{
				"mu":  "lock",
				"cfg": "construction configuration",
			},
		},
		{
			typ: fieldElem(t, reflect.TypeOf(rapl.Actuator{}), "backends"),
			snapshotted: []string{
				"health", "consecTransient", "cleanOps", "downSince",
				"downStreak",
			},
			exempt: map[string]string{"b": "wiring; backends are matched positionally"},
		},
		{
			typ:         reflect.TypeOf(rapl.EnergyReader{}),
			snapshotted: []string{"prevRaw", "primed", "totalJ", "failures"},
			exempt:      map[string]string{"dev": "wiring"},
		},
		{
			typ:         reflect.TypeOf(powercap.Zone{}),
			snapshotted: []string{"staleEnergy", "staleSeen", "reads", "writes"},
			exempt: map[string]string{
				"mu":    "lock",
				"dev":   "wiring",
				"units": "construction configuration",
				"hook":  "reinstalled from the run's injector",
			},
		},
		{
			typ:         reflect.TypeOf(policy.Daemon{}),
			snapshotted: []string{"start", "started", "applied", "capTrace"},
			exempt: map[string]string{
				"writer":   "wiring",
				"scheme":   "construction configuration (stateless value)",
				"interval": "construction configuration",
				"window":   "construction configuration",
			},
		},
		{
			typ:         reflect.TypeOf(trace.Series{}),
			snapshotted: []string{"pts"},
			exempt: map[string]string{
				"Name": "construction configuration",
				"Unit": "construction configuration",
			},
		},
		{
			typ:         reflect.TypeOf(fault.Injector{}),
			snapshotted: []string{"pubsub", "msr", "counters", "powercap"},
			exempt: map[string]string{
				"plan":     "construction configuration",
				"nodes":    "stateless plan queries; never advance during an engine run",
				"links":    "split RNG untouched during an engine run (cluster layer only)",
				"managers": "split RNG untouched during an engine run (cluster layer only)",
			},
		},
		{
			typ: reflect.TypeOf(fault.PubSub{}),
			snapshotted: []string{
				"rng", "queue", "seq", "kickIdx", "dropped", "delayedN",
				"duplected", "blackout",
			},
			exempt: map[string]string{"plan": "construction configuration"},
		},
		{
			typ:         fieldElem(t, reflect.TypeOf(fault.PubSub{}), "queue"),
			snapshotted: []string{"due", "seq", "m"},
		},
		{
			typ:         reflect.TypeOf(fault.MSR{}),
			snapshotted: []string{"rng", "staleServed", "readEIO", "writeEIO"},
			exempt:      map[string]string{"plan": "construction configuration"},
		},
		{
			typ:         reflect.TypeOf(fault.Counters{}),
			snapshotted: []string{"rng", "glitches", "spike"},
			exempt:      map[string]string{"plan": "construction configuration"},
		},
		{
			typ:         reflect.TypeOf(fault.Powercap{}),
			snapshotted: []string{"rng", "again", "eio", "truncated", "stale", "denied", "gone"},
			exempt:      map[string]string{"plan": "construction configuration"},
		},
	}
	for _, c := range cases {
		c.check(t)
	}
}
