package engine

import (
	"fmt"
	"sort"
	"strings"

	"progresscap/internal/counters"
	"progresscap/internal/trace"
)

// Signature flattens every observable field of the Result — scalars, all
// per-window samples, every trace point, counter deltas, drop accounting —
// into one string, bit-exact for floats (%b formatting). Two runs are
// "the same run" exactly when their signatures match. The macro-step
// differential test uses it to pin event-horizon stepping to the
// fixed-tick oracle, and the soak harness uses it both for that oracle
// and to verify disk-cached results are byte-faithful reloads.
func (res *Result) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%v|%v|%b|%b|%b|%d\n",
		res.Workload, res.Elapsed, res.Completed, res.EnergyJ, res.DRAMEnergyJ, res.WorkUnits, res.Dropped)
	topics := make([]string, 0, len(res.DropsByTopic))
	for k := range res.DropsByTopic {
		topics = append(topics, k)
	}
	sort.Strings(topics)
	for _, k := range topics {
		fmt.Fprintf(&b, "drop %s=%d\n", k, res.DropsByTopic[k])
	}
	for _, s := range res.Samples {
		fmt.Fprintf(&b, "s %v %b %d %s\n", s.At, s.Rate, s.Reports, s.Phase)
	}
	evs := make([]counters.Event, 0, len(res.Counters.Deltas))
	for ev := range res.Counters.Deltas {
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	for _, ev := range evs {
		fmt.Fprintf(&b, "c %s=%d\n", ev, res.Counters.Deltas[ev])
	}
	dump := func(name string, s *trace.Series) {
		if s == nil {
			return
		}
		fmt.Fprintf(&b, "t %s", name)
		for _, p := range s.Points() {
			fmt.Fprintf(&b, " %v:%b", p.T, p.V)
		}
		b.WriteByte('\n')
	}
	dump("power", res.PowerTrace)
	dump("core", res.CoreTrace)
	dump("freq", res.FreqTrace)
	dump("duty", res.DutyTrace)
	dump("bw", res.BWTrace)
	dump("rate", res.RateTrace)
	dump("cap", res.CapTrace)
	for _, j := range res.Jobs {
		fmt.Fprintf(&b, "j %s %v %b %d", j.Workload, j.Completed, j.WorkUnits, len(j.Samples))
		for _, rl := range j.RankLoads {
			fmt.Fprintf(&b, " %b/%b/%b", rl.WorkSeconds, rl.SpinSeconds, rl.SleepSeconds)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
