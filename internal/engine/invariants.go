package engine

import (
	"fmt"
	"time"

	"progresscap/internal/msr"
)

// InvariantConfig bounds the engine-level safety invariants. The checker
// is the run-time analogue of the property tests: it watches the *live*
// register file and energy accounting once per aggregation window, so a
// chaos run (daemon kills, fault injection, replayed journals) can
// assert that no sequence of failures ever drove the plant outside its
// safety envelope.
type InvariantConfig struct {
	// MinCapW / TDPW bound any *enabled* package cap: below MinCapW a
	// cap is un-runnable (the core floor alone exceeds it), above TDPW
	// it is fictional. Defaults: 20 W and 200 W.
	MinCapW float64
	TDPW    float64
	// MaxPowerW is the plausibility ceiling for a window-average package
	// power — a wrap-mishandled energy counter shows up as petawatts
	// long before anything else notices. Default 400 W.
	MaxPowerW float64
	// MaxCapWritesPerSec bounds the PKG_POWER_LIMIT actuation rate: the
	// policy plane acts on second scales, so a cap register being
	// rewritten hundreds of times a second means a control loop is
	// flapping. Default 10/s (plus a fixed slack of 2 per window).
	MaxCapWritesPerSec float64
}

func (c *InvariantConfig) fillDefaults() {
	if c.MinCapW == 0 {
		c.MinCapW = 20
	}
	if c.TDPW == 0 {
		c.TDPW = 200
	}
	if c.MaxPowerW == 0 {
		c.MaxPowerW = 400
	}
	if c.MaxCapWritesPerSec == 0 {
		c.MaxCapWritesPerSec = 10
	}
}

// InvariantViolation is one detected breach of the safety envelope.
type InvariantViolation struct {
	At     time.Duration
	Rule   string // "cap-range", "energy-monotonic", "power-plausible", "actuation-rate"
	Detail string
}

func (v InvariantViolation) String() string {
	return fmt.Sprintf("%v: %s: %s", v.At, v.Rule, v.Detail)
}

// invariantChecker holds the checker's window-to-window state.
type invariantChecker struct {
	cfg        InvariantConfig
	lastTotalJ float64
	lastRawSet bool
	lastRaw    uint64
	lastSeq    uint64
	violations []InvariantViolation
}

// EnableInvariants installs the engine-level invariant checker. It runs
// once per aggregation window; tests enable it unconditionally and the
// experiment harness enables it behind Options.CheckInvariants. Call
// before the first Advance.
func (e *Engine) EnableInvariants(cfg InvariantConfig) {
	cfg.fillDefaults()
	e.inv = &invariantChecker{
		cfg:     cfg,
		lastSeq: e.dev.WriteSeq(msr.PkgPowerLimit),
	}
}

// InvariantViolations returns every breach detected so far (nil when the
// checker is disabled or the run stayed inside the envelope).
func (e *Engine) InvariantViolations() []InvariantViolation {
	if e.inv == nil {
		return nil
	}
	return e.inv.violations
}

// checkInvariants runs the per-window checks; flushWindow calls it after
// the window's energy accounting settles.
func (e *Engine) checkInvariants(now time.Duration, winSec, windowAvgW float64) {
	ic := e.inv
	add := func(rule, format string, args ...interface{}) {
		ic.violations = append(ic.violations, InvariantViolation{
			At: now, Rule: rule, Detail: fmt.Sprintf(format, args...),
		})
	}

	// 1. Any enabled cap must be runnable and physical: within
	// [MinCapW, TDPW]. An unreadable register (injected EIO) skips the
	// check rather than inventing a violation.
	if raw, err := e.dev.Read(msr.PkgPowerLimit); err == nil {
		unitRaw, uerr := e.dev.Read(msr.RaplPowerUnit)
		if uerr == nil {
			pl1, _ := msr.DecodePowerLimits(raw, msr.DecodeUnits(unitRaw))
			if pl1.Enabled && (pl1.Watts < ic.cfg.MinCapW || pl1.Watts > ic.cfg.TDPW) {
				add("cap-range", "enabled cap %.1f W outside [%.0f, %.0f] W",
					pl1.Watts, ic.cfg.MinCapW, ic.cfg.TDPW)
			}
		}
	}

	// 2. Wrap-corrected energy must be monotone: the meter integral
	// never decreases, and the raw 32-bit register walks forward by the
	// same wrap-corrected amount the meter accounted (within the
	// window's plausibility bound).
	totalJ := e.meter.EnergyJ()
	if totalJ < ic.lastTotalJ {
		add("energy-monotonic", "meter energy went backwards: %.3f J -> %.3f J", ic.lastTotalJ, totalJ)
	}
	ic.lastTotalJ = totalJ
	if raw, err := e.dev.Read(msr.PkgEnergyStatus); err == nil {
		unitRaw, uerr := e.dev.Read(msr.RaplPowerUnit)
		if uerr == nil {
			if ic.lastRawSet {
				dj := msr.DeltaJoules(ic.lastRaw, raw, msr.DecodeUnits(unitRaw))
				if dj > ic.cfg.MaxPowerW*winSec*2 {
					add("energy-monotonic", "register delta %.1f J implies >%.0f W over %.2fs window (wrap mis-corrected?)",
						dj, 2*ic.cfg.MaxPowerW, winSec)
				}
			}
			ic.lastRaw = raw
			ic.lastRawSet = true
		}
	}

	// 3. Window-average package power must be physical.
	if windowAvgW < 0 || windowAvgW > ic.cfg.MaxPowerW {
		add("power-plausible", "window-average package power %.1f W outside [0, %.0f] W",
			windowAvgW, ic.cfg.MaxPowerW)
	}

	// 4. Bounded actuation rate on the cap register.
	seq := e.dev.WriteSeq(msr.PkgPowerLimit)
	writes := seq - ic.lastSeq
	ic.lastSeq = seq
	if limit := ic.cfg.MaxCapWritesPerSec*winSec + 2; float64(writes) > limit {
		add("actuation-rate", "%d cap writes in a %.2fs window (limit %.0f)", writes, winSec, limit)
	}
}
