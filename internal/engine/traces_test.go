package engine

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/policy"
)

func TestAllTracesPopulatedAndAligned(t *testing.T) {
	res := mustRun(t, apps.STREAM(apps.DefaultRanks, 96), policy.Constant{Watts: 90}, time.Minute)
	n := res.PowerTrace.Len()
	if n < 4 {
		t.Fatalf("only %d windows", n)
	}
	for name, tr := range map[string]int{
		"core": res.CoreTrace.Len(),
		"freq": res.FreqTrace.Len(),
		"duty": res.DutyTrace.Len(),
		"bw":   res.BWTrace.Len(),
		"rate": res.RateTrace.Len(),
	} {
		if tr != n {
			t.Fatalf("%s trace has %d points, power has %d", name, tr, n)
		}
	}
	// Under a stringent memory-bound cap, the bandwidth grant trace must
	// show throttling, and core power must stay below package power.
	sawThrottle := false
	for i := 2; i < n; i++ {
		if res.BWTrace.At(i).V < 1 {
			sawThrottle = true
		}
		if res.CoreTrace.At(i).V > res.PowerTrace.At(i).V {
			t.Fatalf("window %d: core %v above package %v", i, res.CoreTrace.At(i).V, res.PowerTrace.At(i).V)
		}
	}
	if !sawThrottle {
		t.Fatal("bandwidth trace never showed throttling at 90 W on STREAM")
	}
}

func TestWindowHookFieldsConsistent(t *testing.T) {
	e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetScheme(policy.Constant{Watts: 120}); err != nil {
		t.Fatal(err)
	}
	var stats []WindowStats
	e.SetWindowHook(func(ws WindowStats) { stats = append(stats, ws) })
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(res.Samples) {
		t.Fatalf("hook fired %d times for %d samples", len(stats), len(res.Samples))
	}
	for i, ws := range stats {
		if ws.Sample != res.Samples[i] {
			t.Fatalf("hook %d sample mismatch", i)
		}
		if ws.CapW != 120 {
			t.Fatalf("hook %d cap = %v", i, ws.CapW)
		}
		if ws.PkgW <= 0 || ws.FreqMHz <= 0 || ws.Duty <= 0 || ws.BWScale <= 0 {
			t.Fatalf("hook %d has zero telemetry: %+v", i, ws)
		}
		if i > 0 && ws.At <= stats[i-1].At {
			t.Fatalf("hook timestamps not increasing at %d", i)
		}
	}
}
