package engine

import (
	"sync"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
)

// buildShardEngine constructs one engine of the shard-safety fixture:
// heterogeneous power models, distinct seeds, one node with a fault
// plan — the shapes the cluster layer advances concurrently.
func buildShardEngine(t *testing.T, i int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = uint64(i + 1)
	cfg.Power.CoreDynMaxW *= 1 + 0.1*float64(i%3)
	e, err := New(cfg, apps.LAMMPS(apps.DefaultRanks, 400))
	if err != nil {
		t.Fatal(err)
	}
	if i == 2 {
		e.SetFaults(fault.NewInjector(fault.Plan{
			Seed: 7,
			MSR:  fault.MSRPlan{StaleReadRate: 0.05},
		}))
	}
	return e
}

// TestEnginesShardSafe pins the contract the cluster shard pool relies
// on (see Advance's doc comment): distinct engines advanced from
// concurrent goroutines produce results bit-identical to the same
// engines advanced serially. Run under -race this also proves the
// engine package shares no mutable state between instances.
func TestEnginesShardSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	const engines = 8
	const epochs = 5

	run := func(concurrent bool) []string {
		engs := make([]*Engine, engines)
		for i := range engs {
			engs[i] = buildShardEngine(t, i)
		}
		for ep := 0; ep < epochs; ep++ {
			if concurrent {
				var wg sync.WaitGroup
				errs := make([]error, engines)
				for i, e := range engs {
					wg.Add(1)
					go func(i int, e *Engine) {
						defer wg.Done()
						_, errs[i] = e.Advance(time.Second)
					}(i, e)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
			} else {
				for _, e := range engs {
					if _, err := e.Advance(time.Second); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		sigs := make([]string, engines)
		for i, e := range engs {
			res, err := e.Finish()
			if err != nil {
				t.Fatal(err)
			}
			sigs[i] = res.Signature()
		}
		return sigs
	}

	serial := run(false)
	parallel := run(true)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("engine %d: concurrent advance diverged from serial", i)
		}
	}
}
