package engine

import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
)

// TestFaultLayerZeroCostWhenOff is the acceptance gate for the fault
// subsystem: installing an injector whose plan perturbs nothing must
// leave the run exactly — sample for sample, trace point for trace
// point — identical to a run with no injector at all.
func TestFaultLayerZeroCostWhenOff(t *testing.T) {
	run := func(install bool) *Result {
		e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 120))
		if err != nil {
			t.Fatal(err)
		}
		if install {
			e.SetFaults(fault.NewInjector(fault.Plan{Seed: 99}))
		}
		res, err := e.Run(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean, inert := run(false), run(true)

	if len(clean.Samples) != len(inert.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(clean.Samples), len(inert.Samples))
	}
	for i := range clean.Samples {
		if clean.Samples[i] != inert.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, clean.Samples[i], inert.Samples[i])
		}
	}
	if clean.PowerTrace.Len() != inert.PowerTrace.Len() {
		t.Fatalf("power trace lengths differ")
	}
	for i := 0; i < clean.PowerTrace.Len(); i++ {
		a, b := clean.PowerTrace.At(i), inert.PowerTrace.At(i)
		if a != b {
			t.Fatalf("power point %d differs: %+v vs %+v", i, a, b)
		}
	}
	if clean.EnergyJ != inert.EnergyJ || clean.WorkUnits != inert.WorkUnits {
		t.Fatalf("aggregates differ: E %v vs %v, W %v vs %v",
			clean.EnergyJ, inert.EnergyJ, clean.WorkUnits, inert.WorkUnits)
	}
}

func TestDropFaultThinsReports(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	run := func(rate float64) *Result {
		e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 120))
		if err != nil {
			t.Fatal(err)
		}
		if rate > 0 {
			e.SetFaults(fault.NewInjector(fault.Plan{Seed: 4, PubSub: fault.PubSubPlan{DropRate: rate}}))
		}
		res, err := e.Run(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean, faulty := run(0), run(0.5)
	var cleanReports, faultyReports int
	for _, s := range clean.Samples {
		cleanReports += s.Reports
	}
	for _, s := range faulty.Samples {
		faultyReports += s.Reports
	}
	frac := float64(faultyReports) / float64(cleanReports)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("50%% drop kept %.2f of reports, want ≈0.5 (%d/%d)", frac, faultyReports, cleanReports)
	}
	// The transport fault must not change the work actually done.
	if clean.WorkUnits != faulty.WorkUnits {
		t.Fatalf("drops changed true work: %v vs %v", clean.WorkUnits, faulty.WorkUnits)
	}
}

func TestBlackoutSilencesWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 300))
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(fault.NewInjector(fault.Plan{PubSub: fault.PubSubPlan{
		Blackouts: []fault.Window{{From: 4 * time.Second, To: 9 * time.Second}},
	}}))
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		in := s.At > 4*time.Second && s.At <= 9*time.Second
		if in && s.Reports != 0 {
			t.Fatalf("window ending %v inside blackout has %d reports", s.At, s.Reports)
		}
		if !in && s.At >= 10*time.Second && s.At <= 14*time.Second && s.Reports == 0 {
			t.Fatalf("window ending %v after blackout still silent", s.At)
		}
	}
}

func TestDelayedReportsArriveLate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	e, err := New(DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 120))
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(fault.NewInjector(fault.Plan{Seed: 6, PubSub: fault.PubSubPlan{
		DelayRate: 1.0, MaxDelay: 100 * time.Millisecond,
	}}))
	res, err := e.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, s := range res.Samples {
		total += s.Reports
	}
	if total == 0 {
		t.Fatal("all-delayed run delivered nothing — Due release not wired")
	}
}
