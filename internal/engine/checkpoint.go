// Checkpoint/Resume: a complete, versioned, deep snapshot of a running
// engine, taken at aggregation-window boundaries, restorable onto a
// freshly constructed identically-configured engine. The experiments
// runner uses it to fork sweep cells from a shared prefix instead of
// re-simulating it; TestEngineStateInventory pins the field coverage so
// a new engine or subsystem field cannot silently escape the snapshot.
//
// Why window boundaries only: the engine's whole-second grid is where
// every in-flight stream is provably quiescent — flushWindow just
// drained every subscription and monitor, so the only state is the
// durable kind the sub-package snapshots capture. Mid-window state
// (buffered channel payloads aliasing recyclable buffers, undrained
// reports) is deliberately not snapshotable; Checkpoint returns an
// error rather than guessing.
//
// Deep-copy discipline: a Checkpoint may live in a shared pool and be
// restored concurrently by racing forks, so Checkpoint copies
// everything out of the engine and Resume copies everything out of the
// checkpoint. Neither side ever aliases the other's slices or maps.

package engine

import (
	"fmt"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/cpu"
	"progresscap/internal/fault"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/power"
	"progresscap/internal/progress"
	"progresscap/internal/pubsub"
	"progresscap/internal/rapl"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// CheckpointVersion identifies the snapshot layout. Resume refuses a
// checkpoint from a different version.
const CheckpointVersion = 1

// JobState is one workload's slice of a checkpoint.
type JobState struct {
	Exec       workload.ExecState
	Reporter   progress.ReporterState
	Monitor    progress.MonitorState
	SubDropped uint64
	Samples    []progress.Sample
	RateTrace  []trace.Point
	WorkUnits  float64
}

// InvariantState is the invariant checker's window-to-window state.
type InvariantState struct {
	LastTotalJ float64
	LastRawSet bool
	LastRaw    uint64
	LastSeq    uint64
	Violations []InvariantViolation
}

// Checkpoint is a complete snapshot of a started engine at an
// aggregation-window boundary.
type Checkpoint struct {
	Version int

	// Virtual-time position.
	Now        time.Duration
	ObsAnchor  time.Duration
	LastFlush  time.Duration
	EnergyMark float64

	// Ticker positions (periods are configuration).
	RaplNext   time.Duration
	WindowNext time.Duration
	PolicyNext *time.Duration // nil when no policy daemon is installed

	// Run bookkeeping.
	Recycle      bool
	Reserved     bool
	ResWorkUnits float64

	// Node-level trace points (series names are fixed by start()).
	PowerTrace []trace.Point
	CoreTrace  []trace.Point
	FreqTrace  []trace.Point
	DutyTrace  []trace.Point
	BWTrace    []trace.Point

	Jobs []JobState

	Daemon     *policy.DaemonState
	Events     counters.EventSetState
	Bus        pubsub.BusState
	Device     msr.DeviceState
	Domain     cpu.DomainState
	Uncore     cpu.UncoreState
	Meter      power.MeterState
	Controller rapl.ControllerState
	Bank       counters.BankState
	Faults     *fault.InjectorState
	Inv        *InvariantState
}

// Begin forces the lazy start-of-run initialization (result wiring,
// event-set baseline, t=0 policy apply, first RAPL control) without
// advancing time. Run refuses an engine that has already started, so
// callers that checkpoint and advance incrementally use Begin + Advance
// + Finish instead.
func (e *Engine) Begin() error { return e.start() }

// Checkpoint snapshots the engine. The engine must be started, not
// finished, sit exactly on an aggregation-window boundary, and have no
// in-flight state a deep copy cannot own (pending scheduler callbacks,
// undrained subscriptions, a window hook).
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	if !e.started {
		return nil, fmt.Errorf("engine: checkpoint before start")
	}
	if e.finished {
		return nil, fmt.Errorf("engine: checkpoint after Finish")
	}
	if e.windowHook != nil {
		return nil, fmt.Errorf("engine: checkpoint with a window hook installed")
	}
	if n := e.sched.Len(); n != 0 {
		return nil, fmt.Errorf("engine: checkpoint with %d pending scheduler callbacks", n)
	}
	now := e.clock.Now()
	if now%e.cfg.Window != 0 {
		return nil, fmt.Errorf("engine: checkpoint at %v, not on the %v window grid", now, e.cfg.Window)
	}
	for _, j := range e.jobs {
		if n := j.sub.Pending(); n != 0 {
			return nil, fmt.Errorf("engine: checkpoint with %d undrained reports for %s", n, j.res.Workload)
		}
		if n := j.monitor.Pending(); n != 0 {
			return nil, fmt.Errorf("engine: checkpoint with %d unflushed reports for %s", n, j.res.Workload)
		}
	}

	ck := &Checkpoint{
		Version:      CheckpointVersion,
		Now:          now,
		ObsAnchor:    e.obsAnchor,
		LastFlush:    e.lastFlush,
		EnergyMark:   e.energyMark,
		RaplNext:     e.raplTicker.Next(),
		WindowNext:   e.windowTicker.Next(),
		Recycle:      e.recycle,
		Reserved:     e.reserved,
		ResWorkUnits: e.res.WorkUnits,
		PowerTrace:   e.res.PowerTrace.Snapshot(),
		CoreTrace:    e.res.CoreTrace.Snapshot(),
		FreqTrace:    e.res.FreqTrace.Snapshot(),
		DutyTrace:    e.res.DutyTrace.Snapshot(),
		BWTrace:      e.res.BWTrace.Snapshot(),
		Events:       e.events.SnapshotState(),
		Bus:          e.bus.Snapshot(),
		Device:       e.dev.Snapshot(),
		Domain:       e.domain.Snapshot(),
		Uncore:       e.uncore.Snapshot(),
		Meter:        e.meter.Snapshot(),
		Controller:   e.ctl.Snapshot(),
		Bank:         e.bank.SnapshotState(),
	}
	if e.policyTicker != nil {
		n := e.policyTicker.Next()
		ck.PolicyNext = &n
	}
	if e.daemon != nil {
		d := e.daemon.Snapshot()
		ck.Daemon = &d
	}
	if e.faults != nil {
		f := e.faults.Snapshot()
		ck.Faults = &f
	}
	if e.inv != nil {
		ck.Inv = &InvariantState{
			LastTotalJ: e.inv.lastTotalJ,
			LastRawSet: e.inv.lastRawSet,
			LastRaw:    e.inv.lastRaw,
			LastSeq:    e.inv.lastSeq,
			Violations: append([]InvariantViolation(nil), e.inv.violations...),
		}
	}
	for _, j := range e.jobs {
		ck.Jobs = append(ck.Jobs, JobState{
			Exec:       j.exec.Snapshot(),
			Reporter:   j.reporter.Snapshot(),
			Monitor:    j.monitor.Snapshot(),
			SubDropped: j.sub.Dropped(),
			Samples:    append([]progress.Sample(nil), j.res.Samples...),
			RateTrace:  j.res.RateTrace.Snapshot(),
			WorkUnits:  j.res.WorkUnits,
		})
	}
	return ck, nil
}

// Resume restores a checkpoint onto this engine, which must be freshly
// constructed and configured exactly as the donor was (same Config and
// workloads via NewMulti, same SetScheme/SetSchemeVia/SetFaults/
// SetManualDVFS/SetDeadman/EnableInvariants calls) and never advanced.
// After Resume the engine continues with Advance/Finish as if it had
// simulated the prefix itself.
func (e *Engine) Resume(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("engine: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if e.started || e.finished {
		return fmt.Errorf("engine: Resume on a used engine")
	}
	if len(ck.Jobs) != len(e.jobs) {
		return fmt.Errorf("engine: checkpoint has %d jobs, engine %d", len(ck.Jobs), len(e.jobs))
	}
	if (ck.Daemon != nil) != (e.daemon != nil) {
		return fmt.Errorf("engine: checkpoint/engine policy-daemon mismatch")
	}
	if (ck.PolicyNext != nil) != (e.policyTicker != nil) {
		return fmt.Errorf("engine: checkpoint/engine policy-ticker mismatch")
	}
	if (ck.Faults != nil) != (e.faults != nil) {
		return fmt.Errorf("engine: checkpoint/engine fault-layer mismatch")
	}

	// Restore executors first: Exec.Restore replays the generator
	// sequence and verifies the RNG landing, so a wrong workload or seed
	// fails here before any engine state is touched.
	for i, j := range e.jobs {
		if err := j.exec.Restore(ck.Jobs[i].Exec); err != nil {
			return fmt.Errorf("engine: resume: %w", err)
		}
	}

	// Mirror start()'s wiring, with the checkpoint supplying everything
	// start() would have computed or latched.
	e.started = true
	e.res = &Result{
		Workload:   e.jobs[0].res.Workload,
		PowerTrace: trace.NewSeries("power.pkg", "W"),
		CoreTrace:  trace.NewSeries("power.core", "W"),
		FreqTrace:  trace.NewSeries("cpu.freq", "MHz"),
		DutyTrace:  trace.NewSeries("cpu.duty", ""),
		BWTrace:    trace.NewSeries("uncore.bwscale", ""),
	}
	for _, j := range e.jobs {
		e.res.Jobs = append(e.res.Jobs, j.res)
	}

	e.clock.AdvanceTo(ck.Now)
	e.obsAnchor = ck.ObsAnchor
	e.lastFlush = ck.LastFlush
	e.energyMark = ck.EnergyMark
	e.recycle = ck.Recycle
	e.reserved = ck.Reserved
	e.payloadFree = nil

	e.raplTicker.SetNext(ck.RaplNext)
	e.windowTicker.SetNext(ck.WindowNext)
	if e.policyTicker != nil {
		e.policyTicker.SetNext(*ck.PolicyNext)
	}

	e.res.WorkUnits = ck.ResWorkUnits
	e.res.PowerTrace.Restore(ck.PowerTrace)
	e.res.CoreTrace.Restore(ck.CoreTrace)
	e.res.FreqTrace.Restore(ck.FreqTrace)
	e.res.DutyTrace.Restore(ck.DutyTrace)
	e.res.BWTrace.Restore(ck.BWTrace)

	e.events.RestoreState(ck.Events) // replaces start()'s events.Start(0)
	e.bus.Restore(ck.Bus)
	e.dev.Restore(ck.Device)
	e.domain.Restore(ck.Domain)
	e.uncore.Restore(ck.Uncore)
	e.meter.Restore(ck.Meter)
	e.ctl.Restore(ck.Controller)
	e.bank.RestoreState(ck.Bank)
	if ck.Daemon != nil {
		e.daemon.Restore(*ck.Daemon)
	}
	if ck.Faults != nil {
		e.faults.Restore(*ck.Faults)
	}
	if ck.Inv != nil {
		if e.inv == nil {
			return fmt.Errorf("engine: checkpoint has invariant state but checker is disabled")
		}
		e.inv.lastTotalJ = ck.Inv.LastTotalJ
		e.inv.lastRawSet = ck.Inv.LastRawSet
		e.inv.lastRaw = ck.Inv.LastRaw
		e.inv.lastSeq = ck.Inv.LastSeq
		e.inv.violations = append([]InvariantViolation(nil), ck.Inv.Violations...)
	} else if e.inv != nil {
		return fmt.Errorf("engine: invariant checker enabled but checkpoint has no state")
	}

	for i, j := range e.jobs {
		js := &ck.Jobs[i]
		j.reporter.Restore(js.Reporter)
		j.monitor.Restore(js.Monitor)
		j.sub.SetDropped(js.SubDropped)
		j.res.Samples = append([]progress.Sample(nil), js.Samples...)
		j.res.RateTrace.Restore(js.RateTrace)
		j.res.WorkUnits = js.WorkUnits
	}
	return nil
}

// SizeBytes estimates the checkpoint's in-memory footprint, for the
// snapshot pool's byte-bounded LRU. It counts the dominant variable-size
// payloads (trace points, samples, register maps, counter cells, fault
// queues) plus a fixed overhead; exactness does not matter, monotonicity
// with actual size does.
func (c *Checkpoint) SizeBytes() int {
	const (
		ptSize     = 16 // trace.Point{T, V}
		sampleSize = 48 // progress.Sample incl. string header
		regSize    = 32 // map entry overhead for a uint32->uint64 pair
		fixed      = 2048
	)
	n := fixed
	n += ptSize * (len(c.PowerTrace) + len(c.CoreTrace) + len(c.FreqTrace) + len(c.DutyTrace) + len(c.BWTrace))
	n += regSize * (len(c.Device.Pkg) + len(c.Device.WriteSeq) + len(c.Device.StalePkg))
	for _, m := range c.Device.Core {
		n += regSize * len(m)
	}
	for _, m := range c.Device.StaleCore {
		n += regSize * len(m)
	}
	n += 8 * len(c.Bank.Vals)
	for i := range c.Jobs {
		j := &c.Jobs[i]
		n += sampleSize * (len(j.Samples) + len(j.Monitor.Samples))
		n += ptSize * len(j.RateTrace)
		n += 8 * len(j.Monitor.History)
		n += 136 * len(j.Exec.Ranks) // Segment + remainders + RankLoad
	}
	if c.Daemon != nil {
		n += ptSize * len(c.Daemon.CapTrace)
	}
	if c.Faults != nil {
		for i := range c.Faults.PubSub.Queue {
			n += 64 + len(c.Faults.PubSub.Queue[i].Payload)
		}
	}
	return n
}
