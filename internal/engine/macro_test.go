package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
	"progresscap/internal/policy"
	"progresscap/internal/rapl"
	"progresscap/internal/workload"
)

// resultSig is the exported Result.Signature (see signature.go): every
// observable field flattened into one string, bit-exact for floats. Two
// runs are "the same run" exactly when their signatures match.
func resultSig(res *Result) string { return res.Signature() }

// macroScenario builds one engine per invocation so the two modes never
// share mutable state.
type macroScenario struct {
	name  string
	setup func(cfg Config) (*Engine, error)
	dur   time.Duration
}

// macroScenarios covers every control path the event horizon folds over:
// quiescent-uncapped, an active RAPL capping loop, manual DVFS and DDCM
// (quiescent-manual), transport faults with delayed-report due times, a
// deadman TTL expiry, an externally scheduled mid-run actuation, and a
// multi-workload node.
func macroScenarios() []macroScenario {
	mk := func(fn func(e *Engine) error, w func() *workload.Workload) func(Config) (*Engine, error) {
		return func(cfg Config) (*Engine, error) {
			e, err := New(cfg, w())
			if err != nil {
				return nil, err
			}
			if fn != nil {
				if err := fn(e); err != nil {
					return nil, err
				}
			}
			return e, nil
		}
	}
	return []macroScenario{
		{
			name:  "uncapped-complete",
			setup: mk(nil, func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, 120) }),
			dur:   time.Minute,
		},
		{
			name: "capped-constant",
			setup: mk(func(e *Engine) error { return e.SetScheme(policy.Constant{Watts: 100}) },
				func() *workload.Workload { return apps.AMG(apps.DefaultRanks, 20) }),
			dur: time.Minute,
		},
		{
			name: "capped-dynamic-timelimit",
			setup: mk(func(e *Engine) error {
				return e.SetScheme(policy.Step{HighW: 140, LowW: 80, HighFor: 2 * time.Second, LowFor: 2 * time.Second})
			}, func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, 100000) }),
			dur: 8 * time.Second,
		},
		{
			name: "manual-dvfs",
			setup: mk(func(e *Engine) error { e.SetManualDVFS(1500); return nil },
				func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, 60) }),
			dur: time.Minute,
		},
		{
			name: "manual-ddcm",
			setup: mk(func(e *Engine) error { e.SetManualDDCM(0.5); return nil },
				func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, 60) }),
			dur: time.Minute,
		},
		{
			name: "faulted-transport",
			setup: mk(func(e *Engine) error {
				e.SetFaults(fault.NewInjector(fault.Plan{
					Seed: 7,
					PubSub: fault.PubSubPlan{
						DropRate:  0.1,
						DelayRate: 0.3,
						MaxDelay:  700 * time.Millisecond,
						DupRate:   0.05,
					},
					MSR:      fault.MSRPlan{ReadEIORate: 0.02, StaleReadRate: 0.02},
					Counters: fault.CounterPlan{GlitchRate: 0.02},
				}))
				return e.SetScheme(policy.Constant{Watts: 110})
			}, func() *workload.Workload { return apps.AMG(apps.DefaultRanks, 15) }),
			dur: time.Minute,
		},
		{
			name: "deadman-trip",
			setup: mk(func(e *Engine) error {
				// No daemon re-arms the cap, so the TTL expires mid-run and
				// the firmware-default cap snaps in at an exact instant.
				return e.SetDeadman(rapl.Deadman{TTL: 1500 * time.Millisecond, DefaultCapW: 95})
			}, func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, 200) }),
			dur: 6 * time.Second,
		},
		{
			name: "scheduled-actuation",
			setup: mk(func(e *Engine) error {
				// An off-grid external event: clamp the frequency ceiling at
				// an instant that is not a tick, control, or window boundary.
				e.Scheduler().At(2500*time.Millisecond+137*time.Microsecond, func(time.Duration) {
					e.SetFreqCeiling(1200)
				})
				return nil
			}, func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, 200) }),
			dur: 7 * time.Second,
		},
		{
			name: "multi-workload",
			setup: func(cfg Config) (*Engine, error) {
				a := apps.LAMMPS(8, 80)
				v := apps.STREAM(8, 400)
				e, err := NewMulti(cfg, a, v)
				if err != nil {
					return nil, err
				}
				return e, e.SetScheme(policy.Constant{Watts: 120})
			},
			dur: 20 * time.Second,
		},
	}
}

// TestMacroMatchesFixedTick is the engine-level differential bar: for
// every scenario, the event-driven macro stepper and the fixed-tick
// oracle must produce bit-identical results — same completion instants,
// same energy integrals, same per-window samples and traces, same fault
// outcomes.
func TestMacroMatchesFixedTick(t *testing.T) {
	for _, sc := range macroScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(fixedTick bool) string {
				cfg := DefaultConfig()
				cfg.FixedTick = fixedTick
				e, err := sc.setup(cfg)
				if err != nil {
					t.Fatalf("setup(FixedTick=%v): %v", fixedTick, err)
				}
				res, err := e.Run(sc.dur)
				if err != nil {
					t.Fatalf("run(FixedTick=%v): %v", fixedTick, err)
				}
				return resultSig(res)
			}
			macro := run(false)
			fixed := run(true)
			if macro != fixed {
				t.Errorf("macro and fixed-tick results diverge:\n%s", diffHead(macro, fixed))
			}
		})
	}
}

// diffHead trims two signatures to the first differing line plus context,
// so a divergence report is readable.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\nmacro: %s\nfixed: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestConfigTickDivisibility pins the new validation: a tick that does
// not evenly divide the RAPL control period or the progress window would
// put control boundaries off the tick grid, and the fixed-tick oracle
// could never visit them.
func TestConfigTickDivisibility(t *testing.T) {
	base := DefaultConfig()

	cfg := base
	cfg.Tick = 300 * time.Microsecond // does not divide the 1ms control period
	if _, err := New(cfg, apps.LAMMPS(24, 10)); err == nil {
		t.Fatal("tick not dividing the control period accepted")
	}

	cfg = base
	cfg.Tick = 700 * time.Microsecond
	cfg.RAPL.ControlPeriod = 2100 * time.Microsecond // divisible by tick
	cfg.Window = time.Second                         // not divisible by 700µs
	if _, err := New(cfg, apps.LAMMPS(24, 10)); err == nil {
		t.Fatal("tick not dividing the window accepted")
	}

	cfg = base
	cfg.Tick = 500 * time.Microsecond // divides both 1ms and 1s
	if _, err := New(cfg, apps.LAMMPS(24, 10)); err != nil {
		t.Fatalf("valid divisor rejected: %v", err)
	}
}
