// Package engine runs the co-simulation: one or more workloads executing
// on the simulated node, the RAPL controller enforcing whatever cap the
// policy daemon programs, and the progress pipeline (reporter → pub/sub →
// monitor) aggregating online performance once per second — the complete
// setup of the paper's experiments (§IV-B, §V).
//
// Time is virtual and advances event to event. Between consecutive
// "interesting" instants — the next RAPL control-period boundary, window
// edge, policy epoch, scheduled callback, fault due-time, deadman expiry,
// or workload composition boundary — nothing observable can change, so
// the engine advances all jobs in one closed-form macro-step (work
// consumed = effHz × Δt per the same T(f) = C/f + M model the old
// per-tick path integrated) and performs every accumulator update
// (workload consumption, power integration, counter retirement) at the
// event instant. At each event: completed iterations are published as
// progress reports, the RAPL controller re-actuates on its period, the
// policy daemon re-evaluates on its interval, and the monitors flush
// once per aggregation window. Config.FixedTick selects a reference mode
// that walks the clock at most one Tick (default 100 µs) per internal
// step, re-deriving the event horizon each tick — byte-identical output,
// used as the differential-testing oracle.
//
// A single engine can host several workloads on disjoint core ranges
// (the URBAN-style composite setup) and can be advanced incrementally
// with Advance — which is how the cluster-level power manager interleaves
// many nodes under one job budget.
package engine

import (
	"fmt"
	"strings"
	"time"

	"progresscap/internal/counters"
	"progresscap/internal/cpu"
	"progresscap/internal/fault"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/power"
	"progresscap/internal/progress"
	"progresscap/internal/pubsub"
	"progresscap/internal/rapl"
	"progresscap/internal/simtime"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// Config assembles the simulated node.
type Config struct {
	CPU    cpu.Config
	Power  power.Model
	RAPL   rapl.Options
	Tick   time.Duration // simulation step; default 100 µs
	Window time.Duration // progress aggregation window; default 1 s
	Seed   uint64
	// FixedTick selects the reference integration mode: the clock walks
	// at most one Tick per internal step and the event horizon is
	// re-derived every tick instead of jumped to. All observable state
	// still mutates only at event instants, so results are byte-identical
	// to the default macro-stepping mode; the flag exists as the
	// differential-testing oracle and costs roughly the pre-event-driven
	// engine's runtime.
	FixedTick bool
}

// DefaultConfig returns the paper's node: 24 cores, default power model,
// 1 ms RAPL control, 1 s aggregation.
func DefaultConfig() Config {
	return Config{
		CPU:    cpu.DefaultConfig(),
		Power:  power.DefaultModel(),
		RAPL:   rapl.DefaultOptions(),
		Tick:   100 * time.Microsecond,
		Window: time.Second,
		Seed:   1,
	}
}

func (c *Config) fillDefaults() {
	if c.Tick == 0 {
		c.Tick = 100 * time.Microsecond
	}
	if c.Window == 0 {
		c.Window = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c Config) validate() error {
	if c.Tick <= 0 || c.Window <= 0 {
		return fmt.Errorf("engine: non-positive tick/window")
	}
	if c.Tick > c.RAPL.ControlPeriod {
		return fmt.Errorf("engine: tick %v exceeds RAPL control period %v", c.Tick, c.RAPL.ControlPeriod)
	}
	if c.RAPL.ControlPeriod > c.Window {
		return fmt.Errorf("engine: RAPL period %v exceeds aggregation window %v", c.RAPL.ControlPeriod, c.Window)
	}
	// The fixed-tick oracle locates events by walking the tick grid; a
	// tick that does not evenly divide the control period or the window
	// would let the grid drift across those boundaries, silently breaking
	// macro-step/fixed-tick equivalence. Rejecting the configuration is
	// cheaper than documenting a rounding rule nobody relies on.
	if c.RAPL.ControlPeriod%c.Tick != 0 {
		return fmt.Errorf("engine: tick %v does not evenly divide RAPL control period %v", c.Tick, c.RAPL.ControlPeriod)
	}
	if c.Window%c.Tick != 0 {
		return fmt.Errorf("engine: tick %v does not evenly divide aggregation window %v", c.Tick, c.Window)
	}
	return nil
}

// JobResult is the per-workload outcome of a run.
type JobResult struct {
	Workload  string
	Metric    string
	Completed bool
	Samples   []progress.Sample
	RateTrace *trace.Series
	WorkUnits float64
	// RankLoads is each rank's cumulative work/spin/sleep accounting
	// (the per-processing-element progress view).
	RankLoads []workload.RankLoad
}

// Imbalance returns the job's mean barrier-spin share of busy time.
func (j *JobResult) Imbalance() float64 {
	return workload.ImbalanceIndex(j.RankLoads)
}

// MeanRate returns the mean per-window online performance of this job.
func (j *JobResult) MeanRate() float64 {
	if len(j.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range j.Samples {
		sum += s.Rate
	}
	return sum / float64(len(j.Samples))
}

// Rates returns the per-window rates of this job.
func (j *JobResult) Rates() []float64 {
	out := make([]float64, len(j.Samples))
	for i, s := range j.Samples {
		out[i] = s.Rate
	}
	return out
}

// Result is everything an experiment needs from one run. The top-level
// progress fields describe the engine's first (primary) workload; Jobs
// holds every workload's stream for composite setups.
type Result struct {
	Workload  string
	Elapsed   time.Duration
	Completed bool // every workload ran to completion (vs hit the time limit)

	// Samples are the primary workload's per-window observations.
	Samples []progress.Sample

	// Per-window node traces.
	PowerTrace *trace.Series // average package power (W)
	CoreTrace  *trace.Series // instantaneous core-component power (W)
	FreqTrace  *trace.Series // P-state frequency (MHz)
	DutyTrace  *trace.Series // DDCM duty cycle
	BWTrace    *trace.Series // uncore bandwidth grant
	RateTrace  *trace.Series // primary online performance (metric units/s)
	CapTrace   *trace.Series // applied cap (W; 0 = uncapped), nil without a daemon

	EnergyJ     float64
	DRAMEnergyJ float64 // the separate DRAM RAPL domain
	Counters    counters.Reading
	Dropped     uint64 // progress reports lost in the pub/sub layer
	// DropsByTopic attributes pub/sub losses to the progress stream that
	// suffered them (topic = "progress.<app>").
	DropsByTopic map[string]uint64

	// WorkUnits is the total application-defined work executed across
	// all workloads (the paper's Definition 2, Table I).
	WorkUnits float64

	// Jobs holds one entry per workload, in the order given to New.
	Jobs []*JobResult
}

// MeanRate returns the primary workload's mean per-window online
// performance.
func (r *Result) MeanRate() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	return r.Jobs[0].MeanRate()
}

// Rates returns the primary workload's per-window rates.
func (r *Result) Rates() []float64 {
	if len(r.Jobs) == 0 {
		return nil
	}
	return r.Jobs[0].Rates()
}

// WindowStats is the per-aggregation-window snapshot passed to the
// window hook.
type WindowStats struct {
	At      time.Duration
	Sample  progress.Sample // primary workload's sample
	PkgW    float64
	FreqMHz float64
	Duty    float64
	BWScale float64
	CapW    float64 // 0 when uncapped or no daemon installed
}

type job struct {
	exec     *workload.Exec
	reporter *progress.Reporter
	monitor  *progress.Monitor
	sub      *pubsub.Subscription
	dec      *progress.Decoder
	res      *JobResult
}

// Engine is one assembled simulation.
type Engine struct {
	cfg    Config
	clock  *simtime.Clock
	sched  *simtime.Scheduler
	dev    *msr.Device
	domain *cpu.Domain
	uncore *cpu.Uncore
	meter  *power.Meter
	ctl    *rapl.Controller
	bank   *counters.Bank
	bus    *pubsub.Bus
	jobs   []*job

	daemon *policy.Daemon

	raplTicker   *simtime.Ticker
	windowTicker *simtime.Ticker
	policyTicker *simtime.Ticker

	events   *counters.EventSet
	started  bool
	finished bool
	res      *Result

	lastFlush  time.Duration
	energyMark float64

	// obsAnchor is the instant the engine has integrated up to: the start
	// of the current stretch. Workload consumption and power observation
	// flush from it to each event instant; it always equals the clock at
	// event boundaries (in fixed-tick mode the clock walks ahead of it
	// between events without mutating anything).
	obsAnchor time.Duration

	// Payload recycling: progress-report buffers flow Reporter.Publish →
	// bus → job subscription → flushWindow, where — once decoded — the
	// buffer's lifetime provably ends and it returns to payloadFree for the
	// next Publish. recycle is latched at start() and permanently cleared
	// the moment any condition fails (fault layer installed, an external
	// bus subscriber, or overlapping job topics), because a recycled buffer
	// some other party still references would be silent corruption.
	recycle        bool
	topicsDisjoint bool
	payloadFree    [][]byte

	// reserved notes that trace series and sample slices were pre-sized
	// from the first Advance's horizon.
	reserved bool

	windowHook func(WindowStats)

	// Fault injection (nil in a clean run; every consultation is a single
	// nil-check, so an uninstalled layer costs nothing and perturbs
	// nothing).
	faults    *fault.Injector
	pubFaults *fault.PubSub

	// Invariant checker (nil unless EnableInvariants was called).
	inv *invariantChecker
}

type busPublisher struct{ e *Engine }

func (p busPublisher) PublishPayload(topic string, payload []byte) int {
	m := pubsub.Message{Topic: topic, Payload: payload}
	if f := p.e.pubFaults; f != nil {
		delivered := 0
		for _, fm := range f.Intercept(p.e.clock.Now(), m) {
			delivered += p.e.bus.Publish(fm)
		}
		return delivered
	}
	return p.e.bus.Publish(m)
}

// AcquirePayload implements progress.BufferSource: it hands the Reporter a
// recycled payload buffer when recycling is active, or a fresh allocation
// otherwise. See Engine.recycle for the safety conditions.
func (p busPublisher) AcquirePayload(n int) []byte {
	e := p.e
	if e.recycle {
		if k := len(e.payloadFree); k > 0 {
			buf := e.payloadFree[k-1]
			e.payloadFree = e.payloadFree[:k-1]
			if cap(buf) >= n {
				return buf[:0]
			}
		}
	}
	return make([]byte, 0, n)
}

// New assembles an engine for one workload.
func New(cfg Config, w *workload.Workload) (*Engine, error) {
	return NewMulti(cfg, w)
}

// NewMulti assembles an engine hosting several workloads on disjoint
// core ranges, assigned in order from core 0. The first workload is the
// primary one reflected in Result's top-level progress fields.
func NewMulti(cfg Config, ws ...*workload.Workload) (*Engine, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("engine: no workloads")
	}
	totalRanks := 0
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			return nil, err
		}
		totalRanks += w.Ranks
	}
	if totalRanks > cfg.CPU.Cores {
		return nil, fmt.Errorf("engine: workloads need %d ranks but node has %d cores", totalRanks, cfg.CPU.Cores)
	}
	domain, err := cpu.NewDomain(cfg.CPU)
	if err != nil {
		return nil, err
	}
	dev := msr.NewDevice(cfg.CPU.Cores, nil)
	uncore := cpu.NewUncore()
	meter := power.NewMeter(cfg.Power, 0.010) // 10 ms RAPL averaging window
	ctl, err := rapl.New(dev, domain, uncore, cfg.Power, meter, cfg.RAPL)
	if err != nil {
		return nil, err
	}
	bank := counters.NewBank(cfg.CPU.Cores)
	bus := pubsub.NewBus()

	clock := simtime.NewClock(0)
	e := &Engine{
		cfg:    cfg,
		clock:  clock,
		sched:  simtime.NewScheduler(clock),
		dev:    dev,
		domain: domain,
		uncore: uncore,
		meter:  meter,
		ctl:    ctl,
		bank:   bank,
		bus:    bus,
		events: counters.NewEventSet(bank, counters.TotIns, counters.TotCyc, counters.L3TCM, counters.StallCyc),
	}
	offset := 0
	for i, w := range ws {
		exec, err := workload.NewExecOffset(w, bank, cfg.Seed+uint64(i)*7919, offset)
		if err != nil {
			return nil, err
		}
		offset += w.Ranks
		e.jobs = append(e.jobs, &job{
			exec:     exec,
			reporter: progress.NewReporter(w.Name, busPublisher{e}),
			monitor:  progress.NewMonitor(cfg.Window),
			sub:      bus.Subscribe(progress.Topic(w.Name), 1024),
			dec:      progress.NewDecoder(),
			res: &JobResult{
				Workload:  w.Name,
				Metric:    w.Metric,
				RateTrace: trace.NewSeries("progress.rate."+w.Name, w.Metric),
			},
		})
	}
	// Payload recycling requires each report to reach exactly one
	// subscription: with one prefix-subscription per job, that holds iff no
	// job's topic is a prefix of another's (equal names included).
	e.topicsDisjoint = true
	for i := range ws {
		for k := range ws {
			if i == k {
				continue
			}
			if strings.HasPrefix(progress.Topic(ws[i].Name), progress.Topic(ws[k].Name)) {
				e.topicsDisjoint = false
			}
		}
	}
	e.raplTicker = simtime.NewTicker(0, cfg.RAPL.ControlPeriod)
	e.windowTicker = simtime.NewTicker(0, cfg.Window)
	return e, nil
}

// Device exposes the MSR interface, the only control surface policy code
// may use.
func (e *Engine) Device() *msr.Device { return e.dev }

// MaxFreqMHz returns the node's maximum all-core turbo frequency.
func (e *Engine) MaxFreqMHz() float64 { return e.cfg.CPU.MaxMHz }

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *simtime.Clock { return e.clock }

// Scheduler returns the engine's event scheduler. Callbacks scheduled on
// it run on the engine goroutine during Advance, at exactly their
// scheduled virtual instant (the instant becomes part of the event
// horizon, so a macro-step never strides past it); at one instant they
// fire before RAPL control, the policy daemon, and the window flush.
// Experiments use it to inject mid-run actuations — a cap schedule, a
// manual DVFS change — without tick-polling.
func (e *Engine) Scheduler() *simtime.Scheduler { return e.sched }

// Controller returns the RAPL controller (for manual-mode experiments).
func (e *Engine) Controller() *rapl.Controller { return e.ctl }

// Monitor returns the primary workload's progress monitor.
func (e *Engine) Monitor() *progress.Monitor { return e.jobs[0].monitor }

// Bus returns the engine's pub/sub broker, so external subscribers (e.g.
// a TCP bridge) can tap the progress stream.
func (e *Engine) Bus() *pubsub.Bus { return e.bus }

// Done reports whether every workload has completed.
func (e *Engine) Done() bool {
	for _, j := range e.jobs {
		if !j.exec.Done() {
			return false
		}
	}
	return true
}

// SetWindowHook registers a callback invoked after every aggregation
// window, for live streaming of progress and telemetry. Call before the
// first Advance.
func (e *Engine) SetWindowHook(fn func(WindowStats)) { e.windowHook = fn }

// SetScheme installs a power-policy daemon applying the scheme once per
// second, as the paper's tool does. Call before the first Advance.
func (e *Engine) SetScheme(s policy.Scheme) error {
	d, err := policy.NewDaemon(e.dev, s, time.Second, 10*time.Millisecond)
	if err != nil {
		return err
	}
	e.daemon = d
	e.policyTicker = simtime.NewTicker(0, d.Interval())
	return nil
}

// SetSchemeVia is SetScheme actuating through an explicit CapWriter
// (e.g. the hardened rapl.Actuator wrapped in rapl.DaemonWriter, which
// may drive the sysfs powercap backend instead of raw registers). Call
// before the first Advance.
func (e *Engine) SetSchemeVia(s policy.Scheme, w policy.CapWriter) error {
	d, err := policy.NewDaemonVia(w, s, time.Second, 10*time.Millisecond)
	if err != nil {
		return err
	}
	e.daemon = d
	e.policyTicker = simtime.NewTicker(0, d.Interval())
	return nil
}

// SetFaults installs (or, with nil, removes) a fault-injection layer:
// progress publishes route through its transport injector, MSR and
// counter reads through its hooks, and — when the plan asks for an early
// energy wraparound — the RAPL counter is re-seeded. Call before the
// first Advance and before constructing policy layers (such as an NRM)
// that prime energy readers against the device.
func (e *Engine) SetFaults(inj *fault.Injector) {
	e.faults = inj
	if inj == nil {
		e.pubFaults = nil
		e.dev.SetFaultHook(nil)
		e.bank.SetReadHook(nil)
		return
	}
	e.pubFaults = nil
	if inj.PubSub().Enabled() {
		e.pubFaults = inj.PubSub()
	}
	e.dev.SetFaultHook(inj.MSR().Hook())
	e.bank.SetReadHook(inj.Counters().Hook())
	if raw := inj.MSR().EnergyWrapRaw(); raw != 0 {
		e.ctl.SeedEnergy(raw)
	}
}

// Faults returns the installed fault injector (nil in a clean run).
func (e *Engine) Faults() *fault.Injector { return e.faults }

// SetDeadman arms the RAPL cap deadman: the policy side must re-write
// PKG_POWER_LIMIT within the TTL or the package reverts to the
// firmware-default cap. This is the hardware-side backstop that keeps a
// crashed policy daemon from stranding the node at a stale cap. Call
// before the first Advance.
func (e *Engine) SetDeadman(dm rapl.Deadman) error { return e.ctl.SetDeadman(dm) }

// SetFreqCeiling imposes (or, with 0, clears) a hardware frequency
// ceiling on the node — the cluster layer's surface for injecting a
// thermally throttled node. RAPL and DVFS keep actuating, but no grant
// exceeds the ceiling.
func (e *Engine) SetFreqCeiling(mhz float64) { e.domain.SetCeilingMHz(mhz) }

// SetManualDVFS pins the package at the given frequency and disables RAPL
// actuation — the direct-DVFS power-limiting technique of Fig 5.
func (e *Engine) SetManualDVFS(mhz float64) {
	e.ctl.SetManual(true)
	e.domain.SetTargetMHz(mhz)
	e.domain.SetDuty(1)
	e.uncore.SetBWScale(1)
}

// SetManualDDCM pins the package at maximum frequency with the given
// duty cycle and disables RAPL actuation — the dynamic duty cycle
// modulation technique (§II lists DDCM among the NRM's control knobs).
// The duty cycle is quantized to the hardware's 1/16 steps.
func (e *Engine) SetManualDDCM(duty float64) {
	e.ctl.SetManual(true)
	e.domain.SetTargetMHz(e.cfg.CPU.MaxMHz)
	e.domain.SetDuty(float64(int(duty*16)) / 16)
	e.uncore.SetBWScale(1)
}

// start lazily initializes run state before the first tick.
func (e *Engine) start() error {
	if e.started {
		return nil
	}
	e.started = true
	e.res = &Result{
		Workload:   e.jobs[0].res.Workload,
		PowerTrace: trace.NewSeries("power.pkg", "W"),
		CoreTrace:  trace.NewSeries("power.core", "W"),
		FreqTrace:  trace.NewSeries("cpu.freq", "MHz"),
		DutyTrace:  trace.NewSeries("cpu.duty", ""),
		BWTrace:    trace.NewSeries("uncore.bwscale", ""),
	}
	for _, j := range e.jobs {
		e.res.Jobs = append(e.res.Jobs, j.res)
	}
	e.events.Start(0)
	// Latch the payload-recycling decision: every party that could extend
	// a payload's lifetime (fault layer, external subscribers) is installed
	// before the first Advance per the Set* contracts, so the conditions
	// are stable from here — and flushWindow re-checks them anyway, turning
	// recycling off for good if one is violated mid-run.
	e.recycle = e.topicsDisjoint && e.pubFaults == nil &&
		e.bus.NumSubscribers() == len(e.jobs)
	// Apply the policy once at t=0 so the first window runs under it.
	if e.daemon != nil {
		if err := e.daemon.Apply(0); err != nil {
			return err
		}
	}
	e.ctl.Control()
	return nil
}

// Advance runs the simulation for up to d more virtual time, stopping
// early when every workload completes. It reports whether the engine is
// done. Advance may be called repeatedly; call Finish to collect the
// result.
//
// Shard-safety contract: an Engine is fully self-contained — its
// device, bus, monitor, fault injector, and RNG are all per-instance,
// and the package keeps no mutable global state — so DISTINCT engines
// may Advance concurrently with bit-identical results at any schedule
// (the cluster shard pool depends on this; TestEnginesShardSafe pins
// it). A single Engine is not goroutine-safe: never call Advance (or
// any other method) on the same instance from two goroutines.
func (e *Engine) Advance(d time.Duration) (bool, error) {
	if e.finished {
		return true, fmt.Errorf("engine: Advance after Finish")
	}
	if d <= 0 {
		return e.Done(), fmt.Errorf("engine: non-positive duration %v", d)
	}
	if err := e.start(); err != nil {
		return false, err
	}

	limit := e.clock.Now() + d
	tick := e.cfg.Tick
	cores := e.cfg.CPU.Cores

	// Pre-size per-window storage from the first horizon: Run-style
	// callers advance once over the whole duration, so this sizes every
	// trace and sample slice exactly; incremental callers just fall back
	// to append growth.
	if !e.reserved {
		e.reserved = true
		e.reserve(int(limit/e.cfg.Window) + 2)
	}

	// Hoist loop-invariant interfaces and nil-checks out of the loop.
	// A nil fault layer or absent policy daemon must cost nothing per step.
	pubFaults := e.pubFaults
	policyTicker := e.policyTicker
	daemon := e.daemon
	done := e.Done()

	// Fire anything scheduled at exactly the current instant before
	// computing the first horizon, so every horizon below is strictly in
	// the future.
	e.sched.RunDue(e.clock.Now())

	for !done && e.clock.Now() < limit {
		now := e.clock.Now()

		// 1. Stretch composition at the current operating point. These are
		// pure state reads: the macro mode evaluates them once per event,
		// the fixed-tick oracle once per tick, with identical values.
		effHz := e.domain.EffectiveMHz() * 1e6
		memFactor := e.uncore.MemTimeFactor()
		var engaged int
		var actSum, bwUtil float64
		var wlNext time.Duration
		wlHas := false
		for _, j := range e.jobs {
			sp := j.exec.Span(effHz, memFactor)
			engaged += sp.Engaged
			actSum += sp.ActivitySum
			bwUtil += sp.BWUtil
			if sp.HasBoundary && (!wlHas || sp.Boundary < wlNext) {
				wlNext, wlHas = sp.Boundary, true
			}
		}
		activity := 0.0
		if engaged > 0 {
			activity = actSum / float64(engaged)
		}
		if bwUtil > 1 {
			bwUtil = 1
		}
		state := power.NodeState{
			EngagedCores: engaged,
			IdleCores:    cores - engaged,
			FreqMHz:      e.domain.CurrentMHz(),
			Duty:         e.domain.Duty(),
			Activity:     activity,
			BWUtil:       bwUtil,
			BWScale:      e.uncore.BWScale(),
		}

		// 2. Event horizon: the earliest instant anything observable can
		// change. A quiescent RAPL controller (uncapped at its fixed point,
		// or manual) contributes no control boundaries — the dominant win
		// for uncapped baselines; its skipped fires were no-ops, so on
		// leaving quiescence the ticker catches up without replaying them.
		raplQuiet := e.ctl.Quiescent()
		if !raplQuiet && e.raplTicker.Next() <= now {
			e.raplTicker.CatchUp(now)
		}
		h := limit
		if wlHas && wlNext < h {
			h = wlNext
		}
		if !raplQuiet && e.raplTicker.Next() < h {
			h = e.raplTicker.Next()
		}
		if e.windowTicker.Next() < h {
			h = e.windowTicker.Next()
		}
		if policyTicker != nil && policyTicker.Next() < h {
			h = policyTicker.Next()
		}
		if at, ok := e.sched.NextAt(); ok && at < h {
			h = at
		}
		if pubFaults != nil {
			if at, ok := pubFaults.NextDueAt(); ok && at < h {
				h = at
			}
		}
		if rem, ok := e.ctl.DeadmanRemaining(); ok {
			if dl := e.obsAnchor + rem; dl < h {
				h = dl
			}
		}
		if h <= now {
			// Defensive only: every source above is strictly future once
			// due events are consumed. Never stall the clock.
			h = now + tick
		}
		te := h

		// 3. Fixed-tick oracle: walk at most one tick. A hop that falls
		// short of the horizon changes nothing observable and skips the
		// flush entirely, so state mutates at exactly the instants the
		// macro path visits.
		if e.cfg.FixedTick {
			if nt := now - now%tick + tick; nt < te {
				e.clock.AdvanceTo(nt)
				continue
			}
		}

		// 4. Flush the stretch [obsAnchor, te]: workloads consume it in
		// one analytic step and publish iterations completed exactly at
		// te, fault-delayed reports come due, and the controller
		// integrates power and demand over the full stretch.
		// The clock moves first: anything reading it during the flush (the
		// transport fault layer timestamps intercepted publishes with it)
		// must see te, which both modes visit, never the mode-dependent
		// previously visited instant.
		e.clock.AdvanceTo(te)
		completed := false
		for _, j := range e.jobs {
			for _, ev := range j.exec.ConsumeTo(te, effHz, memFactor) {
				completed = true
				j.reporter.Publish(ev.Phase, ev.Progress, ev.At)
				j.res.WorkUnits += ev.WorkUnits
				e.res.WorkUnits += ev.WorkUnits
			}
		}
		if pubFaults != nil {
			for _, m := range pubFaults.Due(te) {
				e.bus.Publish(m)
			}
		}
		if dt := te - e.obsAnchor; dt > 0 {
			e.ctl.Observe(state, dt)
			e.obsAnchor = te
		}

		// 5. Fire due events in the legacy per-tick order: scheduled
		// callbacks, RAPL control, policy daemon, window flush.
		e.sched.RunDue(te)
		if !raplQuiet {
			for e.raplTicker.FiredAt(te) {
				e.ctl.Control()
			}
		}
		if policyTicker != nil {
			for policyTicker.FiredAt(te) {
				if err := daemon.Apply(te); err != nil {
					return false, err
				}
			}
		}
		for e.windowTicker.FiredAt(te) {
			e.flushWindow(te)
		}

		// A workload can only transition to done at an event that
		// completed its final iteration, so the all-jobs scan runs only
		// then.
		if completed {
			done = e.Done()
		}
	}
	return done, nil
}

// reserve pre-sizes every per-window trace and sample slice for nWin
// aggregation windows.
func (e *Engine) reserve(nWin int) {
	if nWin <= 0 {
		return
	}
	e.res.PowerTrace.Reserve(nWin)
	e.res.CoreTrace.Reserve(nWin)
	e.res.FreqTrace.Reserve(nWin)
	e.res.DutyTrace.Reserve(nWin)
	e.res.BWTrace.Reserve(nWin)
	for _, j := range e.jobs {
		j.res.RateTrace.Reserve(nWin)
		if cap(j.res.Samples) < nWin {
			s := make([]progress.Sample, len(j.res.Samples), nWin)
			copy(s, j.res.Samples)
			j.res.Samples = s
		}
	}
}

// Finish closes out the run and returns the collected result. The engine
// cannot be advanced afterwards.
func (e *Engine) Finish() (*Result, error) {
	if e.finished {
		return nil, fmt.Errorf("engine: Finish called twice")
	}
	if err := e.start(); err != nil {
		return nil, err
	}
	e.finished = true

	// Close out the final window, unless it is too short to carry a
	// meaningful rate (a few milliseconds holding one report would show
	// up as an enormous outlier).
	end := e.clock.Now()
	if end-e.lastFlush >= e.cfg.Window/2 {
		e.flushWindow(end)
	}

	e.res.Elapsed = end
	e.res.Completed = e.Done()
	for _, j := range e.jobs {
		j.res.Completed = j.exec.Done()
		j.res.RankLoads = j.exec.RankLoads()
	}
	e.res.Samples = e.jobs[0].res.Samples
	e.res.RateTrace = e.jobs[0].res.RateTrace
	e.res.EnergyJ = e.meter.EnergyJ()
	e.res.DRAMEnergyJ = e.meter.DRAMEnergyJ()
	e.res.Counters = e.events.Stop(end)
	_, e.res.Dropped = e.bus.Stats()
	e.res.DropsByTopic = e.bus.TopicDrops()
	if e.daemon != nil {
		e.res.CapTrace = e.daemon.CapTrace()
	}
	return e.res, nil
}

// Run advances the simulation until every workload completes or maxDur
// of virtual time elapses, then returns the result. It is the one-shot
// form of Advance + Finish.
func (e *Engine) Run(maxDur time.Duration) (*Result, error) {
	if e.started {
		return nil, fmt.Errorf("engine: Run after a prior Run/Advance")
	}
	if maxDur <= 0 {
		return nil, fmt.Errorf("engine: non-positive duration %v", maxDur)
	}
	if _, err := e.Advance(maxDur); err != nil {
		return nil, err
	}
	return e.Finish()
}

// flushWindow drains pending progress reports into each job's monitor
// and records one point on every trace. A zero-length window (e.g. the
// workload finished exactly on a window boundary) is skipped.
func (e *Engine) flushWindow(now time.Duration) {
	winSec := (now - e.lastFlush).Seconds()
	if winSec <= 0 {
		return
	}
	// Re-check the recycling conditions: if a fault layer or an external
	// subscriber appeared mid-run, stop recycling for good (never
	// re-enable — a buffer handed to an outside party earlier must not be
	// reused while they may still hold it).
	if e.recycle && (e.pubFaults != nil || e.bus.NumSubscribers() != len(e.jobs)) {
		e.recycle = false
		e.payloadFree = nil
	}
	var primary progress.Sample
	for i, j := range e.jobs {
		for {
			m, ok := j.sub.TryRecv()
			if !ok {
				break
			}
			rep, err := j.dec.Unmarshal(m.Payload)
			if err != nil {
				// A malformed report indicates an engine bug, not user error.
				panic(fmt.Sprintf("engine: bad progress payload: %v", err))
			}
			// The decoder interned every byte it needed; the payload's
			// lifetime ends here and the buffer can carry the next report.
			if e.recycle {
				e.payloadFree = append(e.payloadFree, m.Payload[:0])
			}
			j.monitor.Offer(rep)
		}
		s := j.monitor.Flush(now)
		j.res.Samples = append(j.res.Samples, s)
		j.res.RateTrace.Add(now, s.Rate)
		if i == 0 {
			primary = s
		}
	}

	// Window-average power from the energy integral.
	eNow := e.meter.EnergyJ()
	winAvgW := (eNow - e.energyMark) / winSec
	e.res.PowerTrace.Add(now, winAvgW)
	e.energyMark = eNow
	e.lastFlush = now

	if e.inv != nil {
		e.checkInvariants(now, winSec, winAvgW)
	}

	e.res.CoreTrace.Add(now, e.meter.Last().CoreW)
	e.res.FreqTrace.Add(now, e.domain.CurrentMHz())
	e.res.DutyTrace.Add(now, e.domain.Duty())
	e.res.BWTrace.Add(now, e.uncore.BWScale())

	if e.windowHook != nil {
		ws := WindowStats{
			At:      now,
			Sample:  primary,
			PkgW:    e.res.PowerTrace.At(e.res.PowerTrace.Len() - 1).V,
			FreqMHz: e.domain.CurrentMHz(),
			Duty:    e.domain.Duty(),
			BWScale: e.uncore.BWScale(),
		}
		if e.daemon != nil {
			if v, ok := e.daemon.CapTrace().ValueAt(now); ok {
				ws.CapW = v
			}
		}
		e.windowHook(ws)
	}
}
