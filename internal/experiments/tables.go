package experiments

import (
	"fmt"

	"progresscap/internal/apps"
	"progresscap/internal/model"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// Table1 reproduces Table I: the MIPS hardware metric is uncorrelated
// with online performance. The Listing 1 sample runs with 24 ranks and
// five one-second iterations, balanced and imbalanced.
func Table1(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	tbl := trace.NewTable("",
		"No. of MPI Processes", "do_work Routine",
		"Def 1 (iterations/second)", "Def 2 (work units/second)", "MIPS", "Spin share")

	variants := []bool{true, false}
	mkSample := func(equal bool) func() *workload.Workload {
		return func() *workload.Workload { return apps.ImbalanceSample(24, 5, equal, 1.0) }
	}
	for _, equal := range variants {
		opts.rn().Prefetch(opts.capSpec(mkSample(equal), nil, opts.Seed, 30))
	}
	for _, equal := range variants {
		res, err := opts.rn().Do(opts.capSpec(mkSample(equal), nil, opts.Seed, 30))
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("table1: sample did not complete")
		}
		routine := "do_unequal_work"
		if equal {
			routine = "do_equal_work"
		}
		sec := res.Elapsed.Seconds()
		tbl.AddRow(
			"24",
			routine,
			fmt.Sprintf("%.3f", 5/sec),
			fmt.Sprintf("%.0f", res.WorkUnits/sec),
			fmt.Sprintf("%.1f", res.Counters.MIPS()),
			fmt.Sprintf("%.2f", res.Jobs[0].Imbalance()),
		)
	}
	return &Artifact{
		ID:     "table1",
		Title:  "Correlation between MIPS and online performance",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"Both variants complete ~1 iteration/second (Definition 1) because the slowest",
			"rank is always on the critical path; the imbalanced variant halves the useful",
			"work (Definition 2) while barrier busy-waiting inflates MIPS by orders of",
			"magnitude — MIPS is not a progress metric.",
		},
	}, nil
}

// Tables2to4 renders the application descriptions (Table II), the
// interview questions (Table III), and the summary of responses
// (Table IV) from the registry.
func Tables2to4() *Artifact {
	desc := trace.NewTable("Table II: Description of applications", "Application", "Description")
	for _, info := range apps.Registry() {
		desc.AddRow(info.Name, info.Description)
	}

	qs := trace.NewTable("Table III: Questions posed to application specialists", "Question Number", "Question")
	for i, q := range apps.Questions {
		qs.AddRow(fmt.Sprintf("%d", i+1), q)
	}

	answers := trace.NewTable("Table IV: Summary of responses",
		"Application", "1", "2", "3", "4", "5", "6", "7", "8")
	for _, info := range apps.Registry() {
		row := []string{info.Name}
		row = append(row, info.Answers[:]...)
		row = append(row, info.Resource)
		answers.AddRow(row...)
	}

	return &Artifact{
		ID:     "tables2to4",
		Title:  "Application set, interview questions, and responses",
		Tables: []*trace.Table{desc, qs, answers},
	}
}

// Table5 renders the categorization and online-performance metric per
// application (Table V).
func Table5() *Artifact {
	tbl := trace.NewTable("", "Application", "Category", "Online performance Metric")
	for _, info := range apps.Registry() {
		cat := info.Category.String()
		if info.Name == "CANDLE" {
			cat = "1/2" // the paper straddles CANDLE between categories
		}
		tbl.AddRow(info.Name, cat, info.Metric)
	}
	return &Artifact{
		ID:     "table5",
		Title:  "Categorizing applications and defining online performance",
		Tables: []*trace.Table{tbl},
	}
}

// characterizable returns the five Table VI rows: name, workload
// factory, and the paper's published β / MPO values.
func characterizable(opts Options) []charCase {
	return characterizableScaled(opts, opts.RunSeconds)
}

type charCase struct {
	name      string
	mk        func() *workload.Workload
	paperBeta float64
	paperMPO  float64
}

// characterizableScaled sizes OpenMC separately: its ~1 s batches need
// longer measurement runs than the sub-second-iteration applications.
// The cases carry factories rather than instances so runs on the same
// application can execute concurrently (generator closures are stateful).
func characterizableScaled(opts Options, openmcSecs float64) []charCase {
	secs := opts.RunSeconds
	return []charCase{
		{"QMCPACK (DMC)", func() *workload.Workload {
			return apps.QMCPACK(apps.DefaultRanks, 1, 1, int(secs*16)).SubsetPhase("dmc")
		}, 0.84, 3.91e-3},
		{"OpenMC (Active)", func() *workload.Workload {
			return apps.OpenMC(apps.DefaultRanks, 1, int(openmcSecs), 100000).SubsetPhase("active")
		}, 0.93, 0.20e-3},
		{"AMG", func() *workload.Workload { return apps.AMG(apps.DefaultRanks, int(secs*2.75)) }, 0.52, 30.1e-3},
		{"LAMMPS", func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, int(secs*20)) }, 1.00, 0.32e-3},
		{"STREAM", func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, int(secs*16)) }, 0.37, 50.9e-3},
	}
}

// charSpecs returns the two runs of the §IV-A characterization procedure:
// the application at 3300 MHz and at 1600 MHz (the slow run gets 2.5× the
// budget because it must still complete). Characterization runs never arm
// the invariant checker, preserving the historical CharacterizeBeta
// behavior regardless of Options.CheckInvariants.
func (o Options) charSpecs(mk func() *workload.Workload, seed uint64, maxSeconds float64) (fast, slow RunSpec) {
	co := o
	co.CheckInvariants = false
	return co.dvfsSpec(mk, 3300, seed, maxSeconds), co.dvfsSpec(mk, 1600, seed, maxSeconds*2.5)
}

// characterize runs (or collects the memoized results of) the two
// characterization runs and derives β, MPO, and the uncapped baseline
// rate and package power from them.
func (o Options) characterize(mk func() *workload.Workload, seed uint64, maxSeconds float64) (beta, mpo, rate, pkgW float64, err error) {
	fastSpec, slowSpec := o.charSpecs(mk, seed, maxSeconds)
	fast, err := o.rn().Do(fastSpec)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	slow, err := o.rn().Do(slowSpec)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if !fast.Completed || !slow.Completed {
		return 0, 0, 0, 0, fmt.Errorf("characterization runs did not complete (%v, %v)", fast.Elapsed, slow.Elapsed)
	}
	beta = model.BetaFromTimes(fast.Elapsed.Seconds(), slow.Elapsed.Seconds(), 3300, 1600)
	mpo = fast.Counters.MPO()
	rates := steadyRates(fast, 1)
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if len(rates) > 0 {
		rate = sum / float64(len(rates))
	}
	pkgW = meanSteadyPower(fast, 1)
	return beta, mpo, rate, pkgW, nil
}

// CharacterizeBeta measures an application's β exactly as §IV-A
// prescribes: execution time at 3300 MHz versus 1600 MHz, inverted
// through the Etinski relation. It also returns the MPO and the mean
// uncapped progress rate and package power from the fast run, which
// Figure 4 reuses as its baseline.
//
// The caller's workload instance is executed on this goroutine; callers
// inside the harness should prefer Options.characterize, which shares the
// suite's memoizing scheduler.
func CharacterizeBeta(w *workload.Workload, seed uint64, maxSeconds float64) (beta, mpo, rate, pkgW float64, err error) {
	var o Options
	if err := o.fillDefaults(); err != nil {
		return 0, 0, 0, 0, err
	}
	return o.characterize(func() *workload.Workload { return w }, seed, maxSeconds)
}

// Table6 reproduces Table VI: β and MPO for the five characterizable
// applications, measured with the paper's procedure.
func Table6(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	cases := characterizable(opts)
	// Fan the ten characterization runs out before collecting any: the
	// slow OpenMC pair no longer serializes behind the other four apps.
	for _, c := range cases {
		fast, slow := opts.charSpecs(c.mk, opts.Seed, opts.RunSeconds*4)
		opts.rn().Prefetch(fast)
		opts.rn().Prefetch(slow)
	}
	tbl := trace.NewTable("", "Application", "β Metric", "MPO Metric (×10⁻³)", "Paper β", "Paper MPO (×10⁻³)")
	for _, c := range cases {
		beta, mpo, _, _, err := opts.characterize(c.mk, opts.Seed, opts.RunSeconds*4)
		if err != nil {
			return nil, fmt.Errorf("table6: %s: %w", c.name, err)
		}
		tbl.AddRow(
			c.name,
			fmt.Sprintf("%.2f", beta),
			fmt.Sprintf("%.2f", mpo*1e3),
			fmt.Sprintf("%.2f", c.paperBeta),
			fmt.Sprintf("%.2f", c.paperMPO*1e3),
		)
	}
	return &Artifact{
		ID:     "table6",
		Title:  "β and MPO metrics for selected applications",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"β measured from execution times at 3300 MHz and 1600 MHz (§IV-A);",
			"MPO = PAPI_L3_TCM / PAPI_TOT_INS over the 3300 MHz run.",
		},
	}, nil
}
