//go:build !race

package experiments

const raceDetector = false
