package experiments

// The disk result cache: an opt-in directory of JSON-encoded
// engine.Results named by run content hash, shared across suite
// invocations and CI jobs. Because keys are content hashes of the full
// run fingerprint (workload construction, operating point, seed,
// duration, mode flags, fault plan — see spec.RunFingerprint), a cached
// entry is valid for exactly as long as the simulation it names is
// byte-identical; any change to engine semantics must bump spec.Version
// to invalidate the cache wholesale.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"progresscap/internal/engine"
)

// EnableDiskCache backs the Runner's memo table with dir: completed runs
// are persisted there and later Runners (other processes included) load
// them instead of re-simulating. The directory is created if missing.
// Must be called before the first Do/Prefetch; the cache is off by
// default so determinism tests always exercise real simulations.
func (r *Runner) EnableDiskCache(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: disk cache: %w", err)
	}
	r.mu.Lock()
	r.cacheDir = dir
	r.mu.Unlock()
	return nil
}

// cachePath maps a run key ("<workload>/<hash>") to its cache file. Only
// the hash portion names the file; the workload prefix is human context.
func (r *Runner) cachePath(key string) string {
	r.mu.Lock()
	dir := r.cacheDir
	r.mu.Unlock()
	if dir == "" {
		return ""
	}
	hash := key
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		hash = key[i+1:]
	}
	return filepath.Join(dir, hash+".json")
}

// loadCached returns the disk-cached result for key, if the cache is
// enabled and holds a well-formed entry. A missing, unreadable, or
// corrupted entry is a cache miss, never an error: the run simply
// executes and rewrites the entry.
func (r *Runner) loadCached(key string) (*engine.Result, bool) {
	path := r.cachePath(key)
	if path == "" {
		return nil, false
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var res engine.Result
	if err := json.Unmarshal(b, &res); err != nil {
		// Corrupted entry (truncated write from a killed process, manual
		// tampering): drop it so the rewrite below gets a clean slate.
		os.Remove(path)
		return nil, false
	}
	return &res, true
}

// saveCached persists a completed run. The write is atomic — temp file
// in the same directory, then rename — so a concurrent reader (another
// suite process sharing the cache) sees either the old entry or the
// complete new one, never a torn write. Persistence is best-effort:
// failure to write the cache never fails the run.
func (r *Runner) saveCached(key string, res *engine.Result) {
	path := r.cachePath(key)
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// PruneDiskCache removes cache entries older than age (by modification
// time) from dir, returning the number of entries removed and the bytes
// freed. Only the cache's own ".json" files are candidates; anything
// else in the directory is left alone. A missing directory prunes
// nothing. Removal races (another process pruning concurrently) are
// ignored; other I/O errors abort with what was freed so far.
func PruneDiskCache(dir string, age time.Duration, now time.Time) (removed int, freed int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("experiments: cache prune: %w", err)
	}
	cutoff := now.Add(-age)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue // deleted under us: not ours anymore
		}
		if !info.ModTime().Before(cutoff) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if rerr := os.Remove(path); rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return removed, freed, fmt.Errorf("experiments: cache prune: %w", rerr)
		}
		removed++
		freed += info.Size()
	}
	return removed, freed, nil
}
