package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/policy"
	"progresscap/internal/progress"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// Figure1 reproduces Fig 1: characterizing online performance. LAMMPS is
// steady, AMG fluctuates, QMCPACK shows three phased levels.
func Figure1(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	// Phase classification needs at least ~6 aggregation windows per
	// QMCPACK phase, so the characterization runs are never shorter than
	// 24 virtual seconds.
	secs := opts.RunSeconds * 2
	if secs < 24 {
		secs = 24
	}
	cases := []struct {
		name string
		mk   func() *workload.Workload
		want progress.Behavior
	}{
		{"LAMMPS", func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, int(secs*20)) }, progress.Steady},
		{"AMG", func() *workload.Workload { return apps.AMG(apps.DefaultRanks, int(secs*2.75)) }, progress.Fluctuating},
		{"QMCPACK", func() *workload.Workload {
			return apps.QMCPACK(apps.DefaultRanks, int(secs/3*8), int(secs/3*12), int(secs/3*16))
		}, progress.Phased},
	}
	for _, c := range cases {
		opts.rn().Prefetch(opts.capSpec(c.mk, nil, opts.Seed, secs*2))
	}
	tbl := trace.NewTable("", "Application", "Metric", "Mean rate", "CV", "Behavior", "Expected")
	var notes []string
	art := &Artifact{
		ID:    "fig1",
		Title: "Characterizing online performance (uncapped)",
	}
	for _, c := range cases {
		res, err := opts.rn().Do(opts.capSpec(c.mk, nil, opts.Seed, secs*2))
		if err != nil {
			return nil, fmt.Errorf("fig1: %s: %w", c.name, err)
		}
		rates := steadyRates(res, 1)
		behavior := progress.Classify(rates)
		tbl.AddRow(
			c.name,
			res.Jobs[0].Metric,
			trace.Formatted(stats.Mean(rates)),
			fmt.Sprintf("%.3f", stats.CoefVar(rates)),
			behavior.String(),
			c.want.String(),
		)
		notes = append(notes, fmt.Sprintf("%-8s %s", c.name, trace.Sparkline(rates)))

		plot := trace.NewPlot(fmt.Sprintf("Fig 1: %s online performance (%s)", c.name, behavior),
			"time (s)", res.Jobs[0].Metric)
		if err := plot.Line(c.name, res.RateTrace.Times(), res.RateTrace.Values()); err != nil {
			return nil, err
		}
		art.addFigure("fig1_"+strings.ToLower(c.name), plot)
	}
	art.Tables = []*trace.Table{tbl}
	art.Notes = notes
	return art, nil
}

// Figure2 reproduces Fig 2: RAPL performs application-aware power
// management — under identical package caps the compute-bound LAMMPS
// runs at a higher CPU frequency than the memory-bound STREAM.
func Figure2(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	caps := []float64{170, 150, 130, 110, 90}
	mkLammps := func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, int(opts.RunSeconds*30)) }
	mkStream := func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, int(opts.RunSeconds*24)) }
	for _, capW := range caps {
		opts.rn().Prefetch(opts.capSpec(mkLammps, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
		opts.rn().Prefetch(opts.capSpec(mkStream, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
	}
	tbl := trace.NewTable("", "Package cap (W)", "LAMMPS freq (MHz)", "STREAM freq (MHz)")
	var lF, sF []float64
	for _, capW := range caps {
		freq := func(mk func() *workload.Workload) (float64, error) {
			res, err := opts.rn().Do(opts.capSpec(mk, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
			if err != nil {
				return 0, err
			}
			return stats.Mean(res.FreqTrace.Values()[2:]), nil
		}
		fl, err := freq(mkLammps)
		if err != nil {
			return nil, fmt.Errorf("fig2: lammps: %w", err)
		}
		fs, err := freq(mkStream)
		if err != nil {
			return nil, fmt.Errorf("fig2: stream: %w", err)
		}
		lF = append(lF, fl)
		sF = append(sF, fs)
		tbl.AddRow(trace.Formatted(capW), trace.Formatted(fl), trace.Formatted(fs))
	}
	art := &Artifact{
		ID:     "fig2",
		Title:  "RAPL: application-aware power management",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"LAMMPS " + trace.Sparkline(lF),
			"STREAM " + trace.Sparkline(sF),
			"Under identical caps RAPL distributes more power to the core for the",
			"compute-bound code, granting it a higher CPU frequency.",
		},
	}
	plot := trace.NewPlot("Fig 2: CPU frequency under identical package caps",
		"package cap (W)", "CPU frequency (MHz)")
	if err := plot.Line("LAMMPS (compute-bound)", caps, lF); err != nil {
		return nil, err
	}
	if err := plot.Line("STREAM (memory-bound)", caps, sF); err != nil {
		return nil, err
	}
	art.addFigure("fig2_frequency", plot)
	return art, nil
}

// Figure3 reproduces Fig 3: the online performance follows the
// power-capping function for every scheme and application.
func Figure3(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	secs := opts.RunSeconds * 3
	schemes := []policy.Scheme{
		policy.Linear{Delay: 4 * time.Second, StartW: 170, MinW: 80,
			RateWPerSec: 90 / (secs - 8)},
		policy.Step{HighW: policy.Uncapped, LowW: 90,
			HighFor: 8 * time.Second, LowFor: 8 * time.Second},
		policy.Jagged{StartW: 170, LowW: 80,
			FallFor: 8 * time.Second, UncappedFor: 4 * time.Second},
	}
	workloads := []struct {
		name string
		mk   func() *workload.Workload
	}{
		{"LAMMPS", func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, int(secs*25)) }},
		{"QMCPACK (DMC)", func() *workload.Workload {
			return apps.QMCPACK(apps.DefaultRanks, 1, 1, int(secs*20)).SubsetPhase("dmc")
		}},
		{"OpenMC (active)", func() *workload.Workload {
			return apps.OpenMC(apps.DefaultRanks, 1, int(secs*1.5), 100000).SubsetPhase("active")
		}},
	}
	for _, sch := range schemes {
		for _, wl := range workloads {
			opts.rn().Prefetch(opts.capSpec(wl.mk, sch, opts.Seed, secs))
		}
	}
	tbl := trace.NewTable("", "Scheme", "Application", "corr(cap, progress)")
	var notes []string
	art := &Artifact{
		ID:    "fig3",
		Title: "Impact of dynamic power-capping on progress",
	}
	for _, sch := range schemes {
		for _, wl := range workloads {
			res, err := opts.rn().Do(opts.capSpec(wl.mk, sch, opts.Seed, secs))
			if err != nil {
				return nil, fmt.Errorf("fig3: %s/%s: %w", sch.Name(), wl.name, err)
			}
			capPerWindow, ratePerWindow := alignCapAndRate(res)
			corr := stats.Pearson(capPerWindow, ratePerWindow)
			tbl.AddRow(sch.Name(), wl.name, fmt.Sprintf("%.2f", corr))
			notes = append(notes,
				fmt.Sprintf("%-16s %-16s cap  %s", sch.Name(), wl.name, trace.Sparkline(capPerWindow)),
				fmt.Sprintf("%-16s %-16s rate %s", "", "", trace.Sparkline(ratePerWindow)))

			// SVG: normalize cap and progress onto one axis so the shape
			// tracking is visible despite different units.
			if plot, err := fig3Plot(sch.Name(), wl.name, capPerWindow, ratePerWindow); err == nil {
				name := fmt.Sprintf("fig3_%s_%s", slug(sch.Name()), slug(wl.name))
				art.addFigure(name, plot)
			}
		}
	}
	art.Tables = []*trace.Table{tbl}
	art.Notes = notes
	return art, nil
}

// fig3Plot draws cap and smoothed progress, each normalized to its own
// maximum, over window index.
func fig3Plot(scheme, app string, caps, rates []float64) (*trace.Plot, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("fig3: no windows")
	}
	norm := func(vs []float64) []float64 {
		max := 0.0
		for _, v := range vs {
			if v > max {
				max = v
			}
		}
		out := make([]float64, len(vs))
		for i, v := range vs {
			if max > 0 {
				out[i] = v / max
			}
		}
		return out
	}
	xs := make([]float64, len(caps))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	p := trace.NewPlot(fmt.Sprintf("Fig 3: %s under %s", app, scheme),
		"aggregation window", "normalized to own max")
	if err := p.Steps("power cap", xs, norm(caps)); err != nil {
		return nil, err
	}
	if err := p.Line("online performance", xs, norm(rates)); err != nil {
		return nil, err
	}
	return p, nil
}

// slug converts a label to a file-name-friendly token.
func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-', r == '_', r == '(', r == ')':
			// collapse separators; skip parens
			if b.Len() > 0 && !strings.HasSuffix(b.String(), "-") && r != '(' && r != ')' {
				b.WriteByte('-')
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// alignCapAndRate pairs each progress window with the cap in force during
// it, mapping "uncapped" to a value above any achievable draw so the
// correlation is meaningful. Rates are smoothed over a five-window moving
// average first: applications whose iteration period aliases against the
// aggregation window (OpenMC's ~1 s batches) otherwise alternate between
// zero and one whole report per window, burying the cap signal.
func alignCapAndRate(res *engine.Result) (caps, rates []float64) {
	const uncappedEquivalentW = 200
	smoothed := stats.MovingAvg(res.Rates(), 5)
	for i, s := range res.Samples {
		capW, ok := res.CapTrace.ValueAt(s.At - time.Millisecond)
		if !ok {
			continue
		}
		if capW == policy.Uncapped {
			capW = uncappedEquivalentW
		}
		caps = append(caps, capW)
		rates = append(rates, smoothed[i])
	}
	return caps, rates
}

// Figure5 reproduces Fig 5: comparing power-limiting techniques on
// STREAM. In the frequency range where plain DVFS applies, it delivers
// more progress than RAPL at the same package power, because RAPL's
// stringent-cap enforcement also throttles the uncore.
func Figure5(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	mkStream := func() *workload.Workload {
		return apps.STREAM(apps.DefaultRanks, int(opts.RunSeconds*24))
	}
	raplCaps := []float64{150, 130, 110, 90, 70, 55}
	dvfsPoints := []float64{3300, 2800, 2300, 1800, 1300, 1000}
	// Four of the six RAPL caps coincide with Figure 2's STREAM runs; the
	// shared scheduler serves those from cache.
	for _, capW := range raplCaps {
		opts.rn().Prefetch(opts.capSpec(mkStream, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
	}
	for _, mhz := range dvfsPoints {
		opts.rn().Prefetch(opts.dvfsSpec(mkStream, mhz, opts.Seed, opts.RunSeconds))
	}
	tbl := trace.NewTable("", "Technique", "Setting", "Package power (W)", "Progress (iterations/s)")

	var raplPts, dvfsPts []powerRatePoint

	for _, capW := range raplCaps {
		res, err := opts.rn().Do(opts.capSpec(mkStream, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
		if err != nil {
			return nil, fmt.Errorf("fig5: rapl %v: %w", capW, err)
		}
		p := meanSteadyPower(res, 2)
		r := stats.Mean(steadyRates(res, 2))
		raplPts = append(raplPts, powerRatePoint{p, r})
		tbl.AddRow("RAPL", fmt.Sprintf("cap %.0f W", capW),
			trace.Formatted(p), fmt.Sprintf("%.2f", r))
	}
	for _, mhz := range dvfsPoints {
		res, err := opts.rn().Do(opts.dvfsSpec(mkStream, mhz, opts.Seed, opts.RunSeconds))
		if err != nil {
			return nil, fmt.Errorf("fig5: dvfs %v: %w", mhz, err)
		}
		p := meanSteadyPower(res, 2)
		r := stats.Mean(steadyRates(res, 2))
		dvfsPts = append(dvfsPts, powerRatePoint{p, r})
		tbl.AddRow("DVFS", fmt.Sprintf("%.0f MHz", mhz),
			trace.Formatted(p), fmt.Sprintf("%.2f", r))
	}

	// Compare the techniques where their power ranges overlap: for each
	// RAPL point, interpolate the DVFS rate at the same power.
	better := 0
	comparable := 0
	for _, rp := range raplPts {
		dr, ok := interpRate(dvfsPts, rp.power)
		if !ok {
			continue
		}
		comparable++
		if dr >= rp.rate {
			better++
		}
	}
	art := &Artifact{
		ID:     "fig5",
		Title:  "STREAM: comparison of power limiting techniques on progress",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			fmt.Sprintf("DVFS matches or beats RAPL at %d of %d comparable power levels", better, comparable),
			"(in the range where DVFS is applicable) — RAPL is not the best capping",
			"technique for STREAM, as the paper observes.",
		},
	}
	plot := trace.NewPlot("Fig 5: STREAM progress vs package power by technique",
		"package power (W)", "progress (iterations/s)")
	toXY := func(pts []powerRatePoint) (xs, ys []float64) {
		sorted := append([]powerRatePoint(nil), pts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].power < sorted[j].power })
		for _, p := range sorted {
			xs = append(xs, p.power)
			ys = append(ys, p.rate)
		}
		return xs, ys
	}
	rx, ry := toXY(raplPts)
	dx, dy := toXY(dvfsPts)
	if err := plot.Line("RAPL", rx, ry); err != nil {
		return nil, err
	}
	if err := plot.Line("DVFS", dx, dy); err != nil {
		return nil, err
	}
	art.addFigure("fig5_techniques", plot)
	return art, nil
}

// powerRatePoint is one (package power, progress rate) observation.
type powerRatePoint struct{ power, rate float64 }

// interpRate linearly interpolates rate at the given power between the
// two adjacent points bracketing it; false if power is outside the
// spanned range.
func interpRate(pts []powerRatePoint, power float64) (float64, bool) {
	sorted := append([]powerRatePoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].power < sorted[j].power })
	for i := 0; i+1 < len(sorted); i++ {
		lo, hi := sorted[i], sorted[i+1]
		if lo.power <= power && power <= hi.power && lo.power < hi.power {
			t := (power - lo.power) / (hi.power - lo.power)
			return stats.Lerp(lo.rate, hi.rate, t), true
		}
	}
	return 0, false
}
