package experiments

import (
	"strconv"
	"strings"
	"testing"

	"progresscap/internal/apps"
)

// quickOpts keeps unit-test runtime bounded; bench_test.go exercises the
// full-scale harness.
func quickOpts() Options { return Options{RunSeconds: 6, Reps: 1, Seed: 1} }

// skipIfRace skips multi-second simulation sweeps under the race
// detector: the sweeps are single-goroutine simulation whose ~13×
// race-mode slowdown would blow the per-package test timeout without
// adding race coverage (the concurrent paths have their own fast tests).
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceDetector {
		t.Skip("simulation sweep skipped under -race")
	}
}

func TestTable1Shape(t *testing.T) {
	art, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if art.Tables[0].NumRows() != 2 {
		t.Fatalf("rows = %d", art.Tables[0].NumRows())
	}
	out := art.Render()
	if !strings.Contains(out, "do_equal_work") || !strings.Contains(out, "do_unequal_work") {
		t.Fatalf("missing routines:\n%s", out)
	}
	// Parse the two MIPS cells and confirm the imbalanced run is far
	// higher while iterations/s match.
	csv := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")
	if len(csv) != 3 {
		t.Fatalf("csv rows = %d", len(csv))
	}
	parse := func(line string) (it, mips float64) {
		f := strings.Split(line, ",")
		it, err1 := strconv.ParseFloat(f[2], 64)
		mips, err2 := strconv.ParseFloat(f[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %q", line)
		}
		return it, mips
	}
	itEq, mipsEq := parse(csv[1])
	itUn, mipsUn := parse(csv[2])
	if itEq < 0.95 || itEq > 1.05 || itUn < 0.95 || itUn > 1.05 {
		t.Fatalf("iterations/s: %v, %v", itEq, itUn)
	}
	if mipsUn < 10*mipsEq {
		t.Fatalf("MIPS not inflated by imbalance: %v vs %v", mipsEq, mipsUn)
	}
}

func TestTables2to4Complete(t *testing.T) {
	art := Tables2to4()
	if len(art.Tables) != 3 {
		t.Fatalf("tables = %d", len(art.Tables))
	}
	if art.Tables[0].NumRows() != 9 || art.Tables[1].NumRows() != 8 || art.Tables[2].NumRows() != 9 {
		t.Fatalf("row counts: %d, %d, %d",
			art.Tables[0].NumRows(), art.Tables[1].NumRows(), art.Tables[2].NumRows())
	}
}

func TestTable5Complete(t *testing.T) {
	art := Table5()
	if art.Tables[0].NumRows() != 9 {
		t.Fatalf("rows = %d", art.Tables[0].NumRows())
	}
	out := art.Render()
	for _, want := range []string{"Blocks per second", "N/A", "1/2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	skipIfRace(t)
	art, err := Table6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if art.Tables[0].NumRows() != 5 {
		t.Fatalf("rows = %d", art.Tables[0].NumRows())
	}
	// Every measured β within 0.05 of the paper's.
	csv := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	for _, line := range csv {
		f := strings.Split(line, ",")
		got, _ := strconv.ParseFloat(f[1], 64)
		want, _ := strconv.ParseFloat(f[3], 64)
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("%s: β %v vs paper %v", f[0], got, want)
		}
	}
}

func TestCharacterizeBetaLAMMPS(t *testing.T) {
	w := apps.LAMMPS(apps.DefaultRanks, 80)
	beta, mpo, rate, pkgW, err := CharacterizeBeta(w, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if beta < 0.95 || beta > 1.02 {
		t.Fatalf("β = %v", beta)
	}
	if mpo <= 0 || rate <= 0 || pkgW < 100 {
		t.Fatalf("mpo=%v rate=%v pkgW=%v", mpo, rate, pkgW)
	}
}

func TestFigure1Behaviors(t *testing.T) {
	art, err := Figure1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	for _, line := range csv {
		f := strings.Split(line, ",")
		name, got, want := f[0], f[4], f[5]
		if got != want {
			t.Errorf("%s classified %q, want %q", name, got, want)
		}
	}
}

func TestFigure2ComputeBoundFaster(t *testing.T) {
	art, err := Figure2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	for _, line := range csv {
		f := strings.Split(line, ",")
		lammps, _ := strconv.ParseFloat(f[1], 64)
		stream, _ := strconv.ParseFloat(f[2], 64)
		if lammps <= stream {
			t.Errorf("cap %s: LAMMPS %v MHz not above STREAM %v MHz", f[0], lammps, stream)
		}
	}
}

func TestFigure3ProgressFollowsCap(t *testing.T) {
	skipIfRace(t)
	opts := quickOpts()
	opts.RunSeconds = 8
	art, err := Figure3(opts)
	if err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	if len(csv) != 9 {
		t.Fatalf("rows = %d", len(csv))
	}
	for _, line := range csv {
		f := strings.Split(line, ",")
		corr, _ := strconv.ParseFloat(f[2], 64)
		// Sub-second-iteration apps should track the cap tightly; the
		// aliasing-prone OpenMC more loosely.
		min := 0.6
		if strings.Contains(f[1], "OpenMC") {
			min = 0.1
		}
		if corr < min {
			t.Errorf("%s/%s: corr %v below %v", f[0], f[1], corr, min)
		}
	}
}

func TestFigure4ModelShapes(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("figure 4 sweep is expensive")
	}
	data, err := Figure4Data(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("apps = %d", len(data))
	}
	byName := map[string]Fig4App{}
	for _, a := range data {
		byName[a.Name] = a
		// Measured and predicted drops grow as the cap tightens.
		for i := 1; i < len(a.Points); i++ {
			if a.Points[i].PredictedDrop < a.Points[i-1].PredictedDrop-1e-9 {
				t.Errorf("%s: predicted drop not monotone", a.Name)
			}
		}
	}
	// LAMMPS (compute-bound): model accurate at mild caps.
	if p := byName["LAMMPS"].Points[0]; p.ErrPct > 25 {
		t.Errorf("LAMMPS mild-cap error %v%%", p.ErrPct)
	}
	// STREAM: model underestimates the impact badly (paper Fig 4d).
	last := byName["STREAM"].Points[len(byName["STREAM"].Points)-1]
	if last.MeasuredDrop <= last.PredictedDrop {
		t.Errorf("STREAM stringent cap: measured %v not above predicted %v",
			last.MeasuredDrop, last.PredictedDrop)
	}
	if last.ErrPct < 30 {
		t.Errorf("STREAM stringent-cap error only %v%%", last.ErrPct)
	}
}

func TestFigure5DVFSBeatsRAPLInRange(t *testing.T) {
	art, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if art.Tables[0].NumRows() != 12 {
		t.Fatalf("rows = %d", art.Tables[0].NumRows())
	}
	// The headline note must report DVFS winning at least half the
	// comparable levels.
	var won, total int
	if _, err := fmt_Sscanf(art.Notes[0], &won, &total); err != nil {
		t.Fatalf("unparseable note %q: %v", art.Notes[0], err)
	}
	if total < 2 || won*2 < total {
		t.Errorf("DVFS won %d of %d comparable levels", won, total)
	}
}

// fmt_Sscanf extracts the two integers from the Figure 5 headline note.
func fmt_Sscanf(note string, won, total *int) (int, error) {
	fields := strings.Fields(note)
	var nums []int
	for _, f := range fields {
		if v, err := strconv.Atoi(f); err == nil {
			nums = append(nums, v)
		}
	}
	if len(nums) < 2 {
		return 0, strconv.ErrSyntax
	}
	*won, *total = nums[0], nums[1]
	return 2, nil
}

func TestArtifactRender(t *testing.T) {
	art := Table5()
	out := art.Render()
	if !strings.HasPrefix(out, "== table5:") {
		t.Fatalf("render prefix wrong:\n%s", out)
	}
}

func TestFigureArtifactsCarrySVGPlots(t *testing.T) {
	skipIfRace(t)
	opts := quickOpts()
	art, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Figures) != 1 || art.Figures[0].Name != "fig2_frequency" {
		t.Fatalf("fig2 figures = %+v", art.Figures)
	}
	svg := art.Figures[0].Plot.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "LAMMPS") {
		t.Fatal("fig2 SVG malformed")
	}

	art1, err := Figure1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(art1.Figures) != 3 {
		t.Fatalf("fig1 figures = %d, want 3", len(art1.Figures))
	}

	art5, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(art5.Figures) != 1 {
		t.Fatalf("fig5 figures = %d", len(art5.Figures))
	}
}

func TestArtifactsDeterministic(t *testing.T) {
	// End-to-end determinism: the same options must render bit-identical
	// artifacts (the EXPERIMENTS.md reproducibility claim).
	a, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("Table1 not deterministic")
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"QMCPACK (DMC)":   "qmcpack-dmc",
		"step-function":   "step-function",
		"OpenMC (active)": "openmc-active",
		"LAMMPS":          "lammps",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
