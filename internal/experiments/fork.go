// Prefix-aware run scheduling: sweep cells that share a simulation
// prefix (same workload, seed, mode flags, and cap decisions up to some
// instant) fork from an engine checkpoint taken at the divergence point
// instead of re-simulating the shared prefix from scratch.
//
// The divergence point is never computed pairwise. Instead, every
// forking run publishes checkpoints at whole-second boundaries into a
// byte-bounded LRU pool, content-keyed by a *prefix fingerprint* — a
// hash of everything that determines the simulation's behavior on
// [0, depth]: the full-run base fields (workload fingerprint, seed,
// invariants, fixed-tick, backend), the operating mode, the inclusive
// cap-decision array Caps[0..depth] (the policy daemon decides at whole
// seconds), and the fault plan truncated to the prefix. Two cells that
// agree on a prefix compute identical keys for every depth inside it
// and diverge after, so "fork from the deepest cached ancestor" is a
// pool lookup from the horizon downward.
//
// Forking is an execution knob like NodeWorkers: it changes wall-clock
// cost, never results (the fork-vs-scratch oracle tests pin
// byte-identical Result signatures), so it is banned from the run
// fingerprint and the disk cache key.

package experiments

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/powercap"
	"progresscap/internal/rapl"
	"progresscap/internal/spec"
)

// defaultPoolBytes bounds the in-memory snapshot pool. Checkpoints of
// the suite's 12-second runs are a few tens of KiB, so the default
// holds thousands of prefixes; the bound exists to keep pathological
// sweeps (long horizons, large fault queues) from growing without
// limit.
const defaultPoolBytes = 256 << 20

// forkSnapshot is one pooled prefix: the engine checkpoint plus, for
// sysfs-backend runs, the actuation state that lives outside the engine
// (the hardened actuator and the emulated powercap zone are built by
// the runner, not the engine, so the engine checkpoint cannot see
// them). Snapshots are immutable once pooled: Checkpoint copies out of
// the engine and Resume copies out of the checkpoint, so concurrent
// forks may restore from one snapshot while its donor keeps running.
type forkSnapshot struct {
	ck   *engine.Checkpoint
	act  *rapl.ActuatorState
	zone *powercap.ZoneState
	size int
}

// snapshotPool is a mutex-guarded LRU over prefix snapshots, bounded by
// estimated bytes rather than entry count (checkpoint sizes vary by two
// orders of magnitude between a bare STREAM run and a multi-workload
// faulted one).
type snapshotPool struct {
	mu    sync.Mutex
	max   int
	total int
	items map[string]*list.Element
	lru   *list.List // front = most recently used
}

type poolItem struct {
	key  string
	snap *forkSnapshot
}

func newSnapshotPool(maxBytes int) *snapshotPool {
	return &snapshotPool{max: maxBytes, items: make(map[string]*list.Element), lru: list.New()}
}

// get returns the snapshot for key and promotes it, or nil.
func (p *snapshotPool) get(key string) *forkSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.items[key]
	if !ok {
		return nil
	}
	p.lru.MoveToFront(el)
	return el.Value.(*poolItem).snap
}

// has reports whether key is pooled, without promoting it.
func (p *snapshotPool) has(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.items[key]
	return ok
}

// put inserts a snapshot, evicting least-recently-used entries until
// the byte bound holds. A snapshot larger than the whole bound is not
// pooled at all. An existing entry for key is kept (first writer wins;
// equal keys name byte-identical prefixes).
func (p *snapshotPool) put(key string, snap *forkSnapshot) {
	if snap.size > p.max {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.items[key]; ok {
		return
	}
	p.items[key] = p.lru.PushFront(&poolItem{key: key, snap: snap})
	p.total += snap.size
	for p.total > p.max {
		el := p.lru.Back()
		if el == nil {
			break
		}
		it := el.Value.(*poolItem)
		p.lru.Remove(el)
		delete(p.items, it.key)
		p.total -= it.snap.size
	}
}

// drop removes key (a snapshot that failed to resume; defensive — the
// fingerprint is supposed to make that impossible).
func (p *snapshotPool) drop(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		it := el.Value.(*poolItem)
		p.lru.Remove(el)
		delete(p.items, it.key)
		p.total -= it.snap.size
	}
}

// prefixFingerprint is the content identity of a simulation prefix:
// equal fingerprints mean byte-identical engine state at Depth whole
// seconds. Hashed (JSON, SHA-256) into the snapshot pool key.
type prefixFingerprint struct {
	Version    int
	Workload   spec.WorkloadFP
	Seed       uint64
	Invariants bool
	FixedTick  bool
	Backend    string `json:",omitempty"`
	// Depth is the prefix length in whole seconds (the engine's
	// aggregation-window grid, which is also the policy daemon's
	// decision grid).
	Depth int
	// Mode names the actuation wiring: "dvfs:<mhz>" (manual pin, no
	// daemon), "scheme" (a policy daemon decides Caps), or "uncapped"
	// (msr backend with no scheme: no daemon at all). Wiring must match
	// for a checkpoint to be restorable, but within "scheme" mode the
	// concrete scheme type is deliberately NOT part of the identity —
	// only its decisions are, so a Step and a Constant that agree on
	// Caps[0..Depth] share snapshots and diverge afterwards under their
	// own schemes.
	Mode string
	// Caps holds the daemon's cap decision at each whole second 0..Depth
	// inclusive (events at exactly t fire when advancing to t).
	Caps []float64 `json:",omitempty"`
	// Faults is the run's fault plan truncated to the prefix: schedules
	// (blackouts, disconnects, permission/gone windows) clipped to
	// [0, Depth], everything probabilistic kept verbatim — rates and the
	// stream seed shift RNG draws inside the prefix, so they must be
	// equal, while a blackout that starts after the prefix cannot.
	Faults *fault.Plan `json:",omitempty"`
}

// forkBase carries the depth-independent fingerprint fields so the
// per-depth key loop fingerprints the workload (which calls Make) once.
type forkBase struct {
	workload spec.WorkloadFP
	mode     string
	scheme   policy.Scheme // nil unless mode == "scheme"
	rs       RunSpec
}

func newForkBase(rs RunSpec) forkBase {
	b := forkBase{workload: spec.FingerprintWorkload(rs.Make()), rs: rs}
	switch {
	case rs.DVFSMHz > 0:
		b.mode = rs.operatingKey() // "dvfs:<mhz>"
	case rs.backend() == "sysfs":
		// The sysfs path always installs a daemon; uncapped means NoCap.
		b.mode = "scheme"
		if b.scheme = rs.Scheme; b.scheme == nil {
			b.scheme = policy.NoCap{}
		}
	case rs.Scheme != nil:
		b.mode = "scheme"
		b.scheme = rs.Scheme
	default:
		b.mode = "uncapped"
	}
	return b
}

// key returns the pool key for this run's prefix at depth whole seconds.
func (b forkBase) key(depth int) string {
	fp := prefixFingerprint{
		Version:    spec.Version,
		Workload:   b.workload,
		Seed:       b.rs.Seed,
		Invariants: b.rs.Invariants,
		FixedTick:  b.rs.FixedTick,
		Backend:    b.rs.backend(),
		Depth:      depth,
		Mode:       b.mode,
		Faults:     prefixFaults(b.rs.Faults, depth),
	}
	if b.scheme != nil {
		fp.Caps = make([]float64, depth+1)
		for k := 0; k <= depth; k++ {
			fp.Caps[k] = b.scheme.CapAt(time.Duration(k) * time.Second)
		}
	}
	j, err := json.Marshal(fp)
	if err != nil {
		// A fault plan is plain data; marshal cannot fail. Returning an
		// unshareable key degrades to scratch execution rather than
		// risking a collision.
		return "unhashable"
	}
	sum := sha256.Sum256(j)
	return hex.EncodeToString(sum[:])
}

// prefixFaults returns the plan truncated to [0, depth] whole seconds,
// canonicalized so plans that behave identically inside the prefix
// fingerprint identically: implicit defaults are made explicit (the
// injector applies them at construction) and time schedules are clipped
// at depth — an event at exactly depth seconds still fires (events at t
// fire when advancing to t), so windows clamp to depth+1ns and
// instants keep <= depth. Returns nil for a disabled plan (the runner
// installs no injector then).
func prefixFaults(plan fault.Plan, depth int) *fault.Plan {
	if !plan.Enabled() {
		return nil
	}
	t := time.Duration(depth) * time.Second
	p := plan
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.PubSub.MaxDelay <= 0 {
		p.PubSub.MaxDelay = 200 * time.Millisecond
	}
	if p.Counters.GlitchRate > 0 && p.Counters.GlitchScale <= 0 {
		p.Counters.GlitchScale = 1024
	}
	p.PubSub.Blackouts = clipWindows(p.PubSub.Blackouts, t)
	var disc []time.Duration
	for _, d := range p.PubSub.Disconnects {
		if d <= t {
			disc = append(disc, d)
		}
	}
	sort.Slice(disc, func(i, j int) bool { return disc[i] < disc[j] })
	p.PubSub.Disconnects = disc
	if p.Powercap != nil {
		pc := *p.Powercap
		pc.PermWindows = clipWindows(pc.PermWindows, t)
		pc.GoneWindows = clipWindows(pc.GoneWindows, t)
		p.Powercap = &pc
	}
	return &p
}

// clipWindows drops windows that start after t and clamps the rest to
// end no later than t+1ns (Window.Contains is half-open, so the clamp
// preserves containment of t itself).
func clipWindows(ws []fault.Window, t time.Duration) []fault.Window {
	var out []fault.Window
	for _, w := range ws {
		if w.From > t {
			continue
		}
		if w.To > t+1 {
			w.To = t + 1
		}
		out = append(out, w)
	}
	return out
}

// builtRun is one fully wired simulation ready to start: the engine
// plus the actuation objects the sysfs path constructs outside it.
type builtRun struct {
	eng  *engine.Engine
	act  *rapl.Actuator
	zone *powercap.Zone
}

// build performs runOnce's construction phase: every execution path —
// scratch, forked donor, and forked continuation — flows through this
// so a resumed engine is configured exactly as the donor was.
func build(rs RunSpec) (*builtRun, error) {
	cfg := engine.DefaultConfig()
	cfg.Seed = rs.Seed
	cfg.FixedTick = rs.FixedTick
	eng, err := engine.New(cfg, rs.Make())
	if err != nil {
		return nil, err
	}
	if rs.Invariants {
		eng.EnableInvariants(engine.InvariantConfig{})
	}
	if rs.Faults.Enabled() {
		eng.SetFaults(fault.NewInjector(rs.Faults))
	}
	b := &builtRun{eng: eng}
	switch {
	case rs.DVFSMHz > 0:
		eng.SetManualDVFS(rs.DVFSMHz)
	case rs.backend() == "sysfs":
		// The sysfs path always installs a daemon (NoCap when the spec is
		// uncapped): the backend IS the actuation route, so even an
		// uncapped run exercises it. The zone shares the engine's device,
		// and its fault hook comes from the injector's powercap stream.
		b.zone = powercap.NewZone(eng.Device(), msr.DefaultUnits())
		if inj := eng.Faults(); inj != nil {
			b.zone.SetFaultHook(inj.Powercap().Hook())
		}
		b.act = rapl.NewActuator(rapl.ActuatorConfig{
			Backends: []rapl.Backend{
				powercap.NewBackend(b.zone),
				rapl.NewMSRBackend(eng.Device(), 10*time.Millisecond),
			},
			Seed: rs.Seed,
		})
		scheme := rs.Scheme
		if scheme == nil {
			scheme = policy.NoCap{}
		}
		if err := eng.SetSchemeVia(scheme, rapl.DaemonWriter{A: b.act}); err != nil {
			return nil, err
		}
	case rs.Scheme != nil:
		if err := eng.SetScheme(rs.Scheme); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// finishRun mirrors runOnce's post-Run bookkeeping.
func (b *builtRun) finish(res *engine.Result) (*engine.Result, *rapl.ActuatorCounters, error) {
	if b.act != nil {
		c := b.act.Counters()
		return res, &c, invariantErr(b.eng)
	}
	return res, nil, invariantErr(b.eng)
}

// snapshot captures the run's complete state: the engine checkpoint
// plus the out-of-engine actuation state on the sysfs path.
func (b *builtRun) snapshot() (*forkSnapshot, error) {
	ck, err := b.eng.Checkpoint()
	if err != nil {
		return nil, err
	}
	s := &forkSnapshot{ck: ck, size: ck.SizeBytes()}
	if b.act != nil {
		st := b.act.Snapshot()
		s.act = &st
		s.size += 512
	}
	if b.zone != nil {
		st := b.zone.Snapshot()
		s.zone = &st
	}
	return s, nil
}

// restore pours a pooled snapshot into a freshly built run.
func (b *builtRun) restore(s *forkSnapshot) error {
	if (s.act != nil) != (b.act != nil) {
		return errActuationMismatch
	}
	if err := b.eng.Resume(s.ck); err != nil {
		return err
	}
	if s.act != nil {
		b.act.Restore(*s.act)
	}
	if s.zone != nil && b.zone != nil {
		b.zone.Restore(*s.zone)
	}
	return nil
}

var errActuationMismatch = jsonError("experiments: fork snapshot actuation-layer mismatch")

// jsonError is a tiny comparable error string (avoids importing errors
// for one sentinel).
type jsonError string

func (e jsonError) Error() string { return string(e) }

// runForked executes one simulation with prefix reuse: resume from the
// deepest pooled ancestor if one exists, publish this run's own
// whole-second prefixes for later cells, and produce a result
// byte-identical to runOnce's.
func (r *Runner) runForked(rs RunSpec) (*engine.Result, *rapl.ActuatorCounters, error) {
	horizon := time.Duration(rs.MaxSeconds * float64(time.Second))
	whole := int(horizon / time.Second)
	if whole < 1 {
		return runOnce(rs)
	}
	r.forkRuns.Add(1)
	base := newForkBase(rs)

	// Fork from the deepest cached ancestor. Resume failure means a
	// fingerprint collision (should be impossible); drop the entry and
	// fall back to scratch rather than trusting shallower siblings.
	var b *builtRun
	depth := 0
	for d := whole; d >= 1 && b == nil; d-- {
		key := base.key(d)
		snap := r.pool.get(key)
		if snap == nil {
			continue
		}
		nb, err := build(rs)
		if err != nil {
			return nil, nil, err
		}
		if err := nb.restore(snap); err != nil {
			r.pool.drop(key)
			break
		}
		b, depth = nb, d
	}
	if b == nil {
		nb, err := build(rs)
		if err != nil {
			return nil, nil, err
		}
		if err := nb.eng.Begin(); err != nil {
			return nil, nil, err
		}
		b = nb
	} else {
		r.forkHits.Add(1)
		r.forkSkipSec.Add(uint64(depth))
	}

	// Advance the remainder window by window, publishing each new
	// whole-second prefix. Checkpoint refusals (a pending scheduled
	// callback, mid-window state) just skip that depth — publishing is
	// an optimization, never a correctness requirement.
	for s := depth + 1; s <= whole; s++ {
		if _, err := b.eng.Advance(time.Second); err != nil {
			return nil, nil, err
		}
		key := base.key(s)
		if r.pool.has(key) {
			continue
		}
		if snap, err := b.snapshot(); err == nil {
			r.pool.put(key, snap)
		}
	}
	if rem := horizon - time.Duration(whole)*time.Second; rem > 0 {
		if _, err := b.eng.Advance(rem); err != nil {
			return nil, nil, err
		}
	}
	res, err := b.eng.Finish()
	if err != nil {
		return nil, nil, err
	}
	return b.finish(res)
}
