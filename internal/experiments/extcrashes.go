package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/journal"
	"progresscap/internal/msr"
	"progresscap/internal/nrm"
	"progresscap/internal/rapl"
	"progresscap/internal/supervise"
	"progresscap/internal/trace"
)

// extCrashBudgetW is the node budget every part of the harness enforces.
const extCrashBudgetW = 120

// CrashReport carries the chaos harness's measured outcomes so the
// acceptance test can assert on numbers instead of re-parsing the
// rendered artifact.
type CrashReport struct {
	// Part A: kill/restart mid-run versus an uninterrupted baseline.
	BaselineWork   float64
	CrashWork      float64
	DeviationPct   float64 // |crash - baseline| / baseline, percent
	Restarts       int
	Panics         int
	RecoveryEpochs int     // post-restart epochs until the pre-crash cap is re-actuated
	PreCrashCapW   float64 // cap latched in the register at kill time
	OvershootW     float64 // worst steady-window power above the budget, crash run

	// Part B: permanent daemon death under a deadman TTL.
	DeadmanCapBeforeW float64
	DeadmanCapAfterW  float64
	DeadmanTrips      uint64

	// Part C: panic-looping daemon, circuit break to a static safe cap.
	Broken         bool
	BreakRestarts  int
	BreakPanics    int
	SafeCapW       float64
	PostBreakPeakW float64
}

// readCapW decodes the currently programmed PL1 (0 when disabled).
func readCapW(dev *msr.Device) (float64, error) {
	raw, err := dev.Read(msr.PkgPowerLimit)
	if err != nil {
		return 0, err
	}
	unitRaw, err := dev.Read(msr.RaplPowerUnit)
	if err != nil {
		return 0, err
	}
	pl1, _ := msr.DecodePowerLimits(raw, msr.DecodeUnits(unitRaw))
	if !pl1.Enabled {
		return 0, nil
	}
	return pl1.Watts, nil
}

// peakOver returns the worst window-average power above a level after a
// warm-up boundary (0 when the run never exceeded it).
func peakOver(res *engine.Result, level float64, from time.Duration) float64 {
	worst := 0.0
	for i := 0; i < res.PowerTrace.Len(); i++ {
		p := res.PowerTrace.At(i)
		if p.T > from && p.V-level > worst {
			worst = p.V - level
		}
	}
	return worst
}

// RunCrashHarness executes the three chaos scenarios and measures the
// recovery outcomes. killAt places the Part-A daemon kill; the soak test
// sweeps it. Engine invariants are armed on every plant regardless of
// opts.CheckInvariants — a chaos harness that does not watch the safety
// envelope is testing nothing.
func RunCrashHarness(opts Options, killAt time.Duration) (*CrashReport, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	rep := &CrashReport{}
	const dur = 30 * time.Second

	mkEngine := func(seedOff uint64) (*engine.Engine, error) {
		cfg := opts.engineConfig()
		cfg.Seed = opts.Seed + seedOff
		// Sized to outlast the run, so work done is purely rate-limited.
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, int(dur.Seconds())*100))
		if err != nil {
			return nil, err
		}
		e.EnableInvariants(engine.InvariantConfig{})
		return e, nil
	}

	// Part A reference: the same node, budget, and seed with a daemon
	// that never dies.
	eb, err := mkEngine(0)
	if err != nil {
		return nil, err
	}
	nb, err := nrm.New(nrm.Config{Beta: 1.0}, eb)
	if err != nil {
		return nil, err
	}
	nb.SetBudget(extCrashBudgetW)
	baseRes, err := nb.Run(dur)
	if err != nil {
		return nil, fmt.Errorf("ext-crashes: baseline: %w", err)
	}
	if err := invariantErr(eb); err != nil {
		return nil, err
	}
	rep.BaselineWork = baseRes.WorkUnits

	// Part A: kill the daemon at killAt, supervise it back up. The
	// journal lives in img (a crash loses the process, not the log);
	// downtime is virtual time the plant runs through with the pre-crash
	// cap still latched in the RAPL register.
	ec, err := mkEngine(0)
	if err != nil {
		return nil, err
	}
	var img bytes.Buffer
	var n *nrm.NRM
	killed := false
	sup := supervise.New(supervise.Options{
		MaxRestarts: 5,
		Backoff:     2 * time.Second,
		Sleep:       func(d time.Duration) { _, _ = ec.Advance(d) },
	})
	unit := supervise.Unit{
		Name: "powerpolicy",
		Start: func(attempt int) (func() error, error) {
			cfgN := nrm.Config{Beta: 1.0, Journal: journal.NewWriter(&img)}
			var nerr error
			if attempt == 0 {
				n, nerr = nrm.New(cfgN, ec)
			} else {
				recs, _, rerr := journal.ReplayBytes(img.Bytes())
				if rerr != nil {
					return nil, rerr
				}
				n, nerr = nrm.Restore(cfgN, ec, journal.Recover(recs))
			}
			if nerr != nil {
				return nil, nerr
			}
			n.SetBudget(extCrashBudgetW)
			n.RecordSupervisorRestarts(attempt)
			return func() error {
				for {
					if !killed && ec.Clock().Now() >= killAt {
						killed = true
						rep.PreCrashCapW, _ = readCapW(ec.Device())
						panic("chaos: policy daemon killed")
					}
					done, serr := n.Step()
					if serr != nil {
						return serr
					}
					if done || ec.Clock().Now() >= dur {
						return nil
					}
				}
			}, nil
		},
	}
	if err := sup.Supervise(unit); err != nil {
		return nil, fmt.Errorf("ext-crashes: supervised run: %w", err)
	}
	crashRes, err := ec.Finish()
	if err != nil {
		return nil, err
	}
	if err := invariantErr(ec); err != nil {
		return nil, err
	}
	rep.CrashWork = crashRes.WorkUnits
	rep.Restarts = sup.Restarts()
	rep.Panics = sup.Panics()
	rep.DeviationPct = 100 * math.Abs(rep.CrashWork-rep.BaselineWork) / rep.BaselineWork
	rep.OvershootW = peakOver(crashRes, extCrashBudgetW, 6*time.Second)
	rep.RecoveryEpochs = -1
	for i, d := range n.Decisions() {
		if d.Knob == nrm.KnobRAPL && math.Abs(d.Setting-rep.PreCrashCapW) < 1e-6 {
			rep.RecoveryEpochs = i + 1
			break
		}
	}

	// Part B: the daemon programs an aggressive 60 W cap, then dies for
	// good. The deadman's TTL expires and hardware reverts to the
	// firmware-default cap — a dead daemon cannot strand the node.
	ed, err := mkEngine(7)
	if err != nil {
		return nil, err
	}
	if err := ed.SetDeadman(rapl.Deadman{TTL: 3 * time.Second}); err != nil {
		return nil, err
	}
	nd, err := nrm.New(nrm.Config{Beta: 1.0}, ed)
	if err != nil {
		return nil, err
	}
	nd.SetBudget(60)
	for ed.Clock().Now() < 8*time.Second {
		done, serr := nd.Step()
		if serr != nil {
			return nil, fmt.Errorf("ext-crashes: deadman run: %w", serr)
		}
		if done {
			break
		}
	}
	rep.DeadmanCapBeforeW, _ = readCapW(ed.Device())
	// Permanent death: nobody re-arms; the node runs on.
	if _, err := ed.Advance(8 * time.Second); err != nil {
		return nil, err
	}
	rep.DeadmanCapAfterW, _ = readCapW(ed.Device())
	rep.DeadmanTrips = ed.Controller().DeadmanTrips()
	if _, err := ed.Finish(); err != nil {
		return nil, err
	}
	if err := invariantErr(ed); err != nil {
		return nil, err
	}

	// Part C: a daemon poisoned into a panic loop. The circuit breaker
	// opens after MaxRestarts and degrades the node to a static safe cap
	// safely below the budget; the plant keeps running, daemonless.
	ep, err := mkEngine(13)
	if err != nil {
		return nil, err
	}
	rep.SafeCapW = 0.8 * extCrashBudgetW
	supC := supervise.New(supervise.Options{
		MaxRestarts: 3,
		Backoff:     time.Second,
		Sleep:       func(d time.Duration) { _, _ = ep.Advance(d) },
		OnBreak: func(unitName string, cause error) {
			_ = rapl.WriteLimit(ep.Device(), rep.SafeCapW, 10*time.Millisecond)
		},
	})
	unitC := supervise.Unit{
		Name: "powerpolicy",
		Start: func(attempt int) (func() error, error) {
			np, nerr := nrm.New(nrm.Config{Beta: 1.0}, ep)
			if nerr != nil {
				return nil, nerr
			}
			np.SetBudget(extCrashBudgetW)
			return func() error {
				if _, serr := np.Step(); serr != nil {
					return serr
				}
				panic("chaos: poisoned daemon state")
			}, nil
		},
	}
	if err := supC.Supervise(unitC); err != nil && !errors.Is(err, supervise.ErrCircuitOpen) {
		return nil, fmt.Errorf("ext-crashes: breaker run: %w", err)
	}
	rep.Broken = supC.Broken()
	rep.BreakRestarts = supC.Restarts()
	rep.BreakPanics = supC.Panics()
	breakAt := ep.Clock().Now()
	for ep.Clock().Now() < 20*time.Second {
		if _, err := ep.Advance(time.Second); err != nil {
			return nil, err
		}
	}
	resC, err := ep.Finish()
	if err != nil {
		return nil, err
	}
	if err := invariantErr(ep); err != nil {
		return nil, err
	}
	rep.PostBreakPeakW = rep.SafeCapW + peakOver(resC, rep.SafeCapW, breakAt)

	return rep, nil
}

// ExtCrashes is the chaos-restart artifact: it renders the harness's
// three scenarios (kill/restart with journal recovery, permanent death
// under the RAPL deadman, panic loop into the circuit breaker) against
// the paper's implicit always-up-daemon assumption.
func ExtCrashes(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	rep, err := RunCrashHarness(opts, 10*time.Second)
	if err != nil {
		return nil, err
	}

	recov := trace.NewTable("A: daemon SIGKILL at t=10 s, supervised restart after 2 s (budget 120 W)",
		"Run", "Work done", "Deviation %", "Restarts", "Recovery epochs", "Cap overshoot (W)")
	recov.AddRow("uninterrupted", fmt.Sprintf("%.0f", rep.BaselineWork), "-", "0", "-", "-")
	recov.AddRow("kill+restart", fmt.Sprintf("%.0f", rep.CrashWork),
		fmt.Sprintf("%.2f", rep.DeviationPct),
		fmt.Sprintf("%d", rep.Restarts),
		fmt.Sprintf("%d", rep.RecoveryEpochs),
		fmt.Sprintf("%.1f", rep.OvershootW))

	dead := trace.NewTable("B: permanent daemon death, 3 s RAPL deadman TTL",
		"Phase", "Cap (W)")
	dead.AddRow("daemon alive (aggressive cap)", fmt.Sprintf("%.0f", rep.DeadmanCapBeforeW))
	dead.AddRow("daemon dead, TTL expired", fmt.Sprintf("%.0f", rep.DeadmanCapAfterW))

	brk := trace.NewTable("C: panic-looping daemon, circuit breaker at 3 restarts",
		"Metric", "Value")
	brk.AddRow("circuit broken", fmt.Sprintf("%v", rep.Broken))
	brk.AddRow("restarts / panics", fmt.Sprintf("%d / %d", rep.BreakRestarts, rep.BreakPanics))
	brk.AddRow("static safe cap (W)", fmt.Sprintf("%.0f", rep.SafeCapW))
	brk.AddRow("peak window power after break (W)", fmt.Sprintf("%.1f", rep.PostBreakPeakW))

	return &Artifact{
		ID:     "ext-crashes",
		Title:  "Extension: crash-safe control (journal recovery, deadman, circuit breaker)",
		Tables: []*trace.Table{recov, dead, brk},
		Notes: []string{
			fmt.Sprintf("journal recovery re-armed the %.0f W pre-crash cap in %d epoch(s) after restart (acceptance: <= 3);",
				rep.PreCrashCapW, rep.RecoveryEpochs),
			fmt.Sprintf("progress deviation vs the uninterrupted run: %.2f%% (acceptance: <= 5%%), cap overshoot %.1f W (acceptance: 0);",
				rep.DeviationPct, rep.OvershootW),
			fmt.Sprintf("deadman reverted %.0f W -> %.0f W after %d trip(s); breaker held the node at %.0f W with no daemon.",
				rep.DeadmanCapBeforeW, rep.DeadmanCapAfterW, rep.DeadmanTrips, rep.SafeCapW),
		},
	}, nil
}
