package experiments

// ExtFleet — the fleet-scale scheduler sweep the sharded cluster
// stepping unlocks: fleet size (8/64/256/1024 nodes) × division policy
// (equal-split / progress-aware / throughput / binpack-sorted-watts /
// max-greedy-mins) under a tight global budget, reporting how much
// normalized progress each policy retains. 1024 nodes × one engine
// each was unthinkable when node advancement was serial per epoch;
// with the shard pool a full sweep is a few seconds of wall time.
//
// Fleet nodes deliberately run a coarser plant than the default
// (1 ms tick, 20 ms RAPL control period, 4-rank LAMMPS): epoch-level
// policy comparisons need epoch-level fidelity, and the coarse plant is
// ~10x cheaper per node-epoch, which is what makes the 1024-node cell
// affordable. All of it is still bit-deterministic at any worker count.

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/engine"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
)

// FleetSizes is the sweep's fleet-size axis.
var FleetSizes = []int{8, 64, 256, 1024}

// fleetEpochs scales the horizon down as the fleet grows: policy
// behavior is visible within a few post-calibration epochs, and the
// 1024-node cell's cost is bounded by epochs × nodes.
func fleetEpochs(nodes int) int {
	switch {
	case nodes <= 8:
		return 20
	case nodes <= 64:
		return 12
	case nodes <= 256:
		return 8
	default:
		return 6
	}
}

// FleetBudgetPerNodeW is the global budget divided by the fleet size: a
// deliberately tight allocation (~90% of the homogeneous uncapped draw,
// less for inefficient silicon) so every policy has real scarcity to
// divide.
const FleetBudgetPerNodeW = 55

// fleetIneff returns node i's silicon inefficiency factor — a
// deterministic pseudo-random spread over [1.0, 1.3), the node
// variability the paper cites from Rountree et al., reproducible at
// any fleet size without a shared RNG.
func fleetIneff(i int) float64 {
	return 1 + 0.3*float64((i*2654435761)%997)/997
}

// NewFleetManager assembles an n-node fleet under the policy with the
// coarse fleet plant, a tight global budget, and the Options' shard
// worker bound. Exported so bench_test.go can build the benchmark
// fleets from the same construction the experiment uses.
func NewFleetManager(opts Options, n int, pol cluster.Policy) (*cluster.Manager, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	steps := fleetEpochs(n)*40 + 400 // outlasts every horizon
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		cfg := opts.engineConfig()
		cfg.Seed = opts.Seed + uint64(i)*7919
		cfg.Tick = time.Millisecond
		cfg.RAPL.ControlPeriod = 20 * time.Millisecond
		cfg.RAPL.DemandTau = 100 * time.Millisecond
		cfg.Power.CoreDynMaxW *= fleetIneff(i)
		e, err := engine.New(cfg, apps.LAMMPS(4, steps))
		if err != nil {
			return nil, fmt.Errorf("ext-fleet: node %d: %w", i, err)
		}
		nodes[i] = cluster.NewNode(fmt.Sprintf("f%04d", i), e)
	}
	m, err := cluster.NewManager(pol, cluster.ConstantBudget(FleetBudgetPerNodeW*float64(n)), nodes...)
	if err != nil {
		return nil, err
	}
	m.SetNodeWorkers(opts.NodeWorkers)
	return m, nil
}

// FleetCell is one (fleet size, policy) sweep point.
type FleetCell struct {
	Nodes       int
	Policy      string
	MeanMin     float64 // mean per-epoch minimum normalized progress
	MeanMean    float64 // mean per-epoch mean normalized progress
	EnergyKJ    float64
	ShardEpochs int
}

// RunFleetSweep executes the size × policy grid and returns the cells
// in sweep order plus the merged shard-pool counters. Cells run
// serially — each one is internally sharded across the node axis, which
// is where the parallelism is at fleet scale.
func RunFleetSweep(opts Options, sizes []int) ([]FleetCell, cluster.ShardStats, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, cluster.ShardStats{}, err
	}
	policies := []cluster.Policy{
		cluster.EqualSplit{},
		cluster.ProgressAware{Gain: 3},
		cluster.Throughput{},
		cluster.BinPackSortedWatts{},
		cluster.MaxGreedyMins{},
	}
	var cells []FleetCell
	var shards cluster.ShardStats
	for _, n := range sizes {
		horizon := time.Duration(fleetEpochs(n)) * cluster.Epoch
		for _, pol := range policies {
			m, err := NewFleetManager(opts, n, pol)
			if err != nil {
				return nil, shards, err
			}
			res, err := m.Run(horizon)
			if err != nil {
				return nil, shards, fmt.Errorf("ext-fleet: %d nodes under %s: %w", n, pol.Name(), err)
			}
			st := m.ShardStats()
			shards.Merge(st)
			cells = append(cells, FleetCell{
				Nodes:       n,
				Policy:      pol.Name(),
				MeanMin:     res.MeanMinProgress(),
				MeanMean:    stats.Mean(res.MeanProgress.Values()),
				EnergyKJ:    res.TotalEnergyJ / 1e3,
				ShardEpochs: st.Epochs,
			})
		}
	}
	return cells, shards, nil
}

// ExtFleet renders the fleet-size × policy sweep as an artifact. Wall
// times and shard counters stay out of the render — the artifact must
// be byte-identical at any worker count (TestAllParallelDeterminism
// includes it) — and are reported through Runner.RecordShards instead.
func ExtFleet(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	cells, shards, err := RunFleetSweep(opts, FleetSizes)
	if err != nil {
		return nil, err
	}
	opts.rn().RecordShards(shards)

	tbl := trace.NewTable("", "Nodes", "Policy", "Mean min-progress", "Mean mean-progress", "Energy (kJ)")
	bestMin := map[int]FleetCell{}
	for _, c := range cells {
		tbl.AddRow(fmt.Sprintf("%d", c.Nodes), c.Policy,
			fmt.Sprintf("%.3f", c.MeanMin), fmt.Sprintf("%.3f", c.MeanMean),
			fmt.Sprintf("%.0f", c.EnergyKJ))
		if b, ok := bestMin[c.Nodes]; !ok || c.MeanMin > b.MeanMin {
			bestMin[c.Nodes] = c
		}
	}
	notes := []string{
		fmt.Sprintf("Global budget %d W/node (~90%% of homogeneous uncapped draw) over fleets with", FleetBudgetPerNodeW),
		"0-30% per-node silicon variability. Min-progress is the bulk-synchronous job",
		"rate; mean-progress is the embarrassingly-parallel one.",
	}
	for _, n := range FleetSizes {
		if b, ok := bestMin[n]; ok {
			notes = append(notes, fmt.Sprintf("best synchronous policy at %4d nodes: %s (%.3f)", n, b.Policy, b.MeanMin))
		}
	}
	return &Artifact{
		ID:     "ext-fleet",
		Title:  "Extension: fleet-scale budget division, size x policy under sharded stepping",
		Tables: []*trace.Table{tbl},
		Notes:  notes,
	}, nil
}
