package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/fault"
	"progresscap/internal/policy"
	"progresscap/internal/spec"
	"progresscap/internal/workload"
)

// scratchSig runs rs from scratch on a throwaway runner and returns the
// result signature.
func scratchSig(t *testing.T, rs RunSpec) string {
	t.Helper()
	rs.Forking = false
	res, err := NewRunner(1).Do(rs)
	if err != nil {
		t.Fatalf("scratch run: %v", err)
	}
	return res.Signature()
}

// TestForkedRunMatchesScratch is the fork oracle: a run that resumes
// from a pooled prefix checkpoint must produce a byte-identical result
// signature to the same spec simulated from scratch. Each case seeds
// the pool with donor runs whose prefixes the target shares, so the
// target actually forks (asserted via the runner's fork counters) at a
// case-specific depth. Cheap enough to run under -race, where it also
// exercises concurrent pool publish/resume.
func TestForkedRunMatchesScratch(t *testing.T) {
	mkAMG := func() *workload.Workload { return apps.AMG(apps.DefaultRanks, 15) }
	mkSTREAM := func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, 100000) }
	step := func(low float64) policy.Scheme {
		return policy.Step{HighW: 140, LowW: low, HighFor: 5 * time.Second, LowFor: 3 * time.Second}
	}
	faultPlan := fault.Plan{
		Seed:   7,
		PubSub: fault.PubSubPlan{DropRate: 0.1, DelayRate: 0.3, MaxDelay: 700 * time.Millisecond, DupRate: 0.05},
		MSR:    fault.MSRPlan{ReadEIORate: 0.02, StaleReadRate: 0.02},
	}

	cases := []struct {
		name   string
		donors []RunSpec
		target RunSpec
	}{
		{
			// Step ladder: caps agree on [0,5), diverge at second 5, so
			// the 90 W and 100 W cells fork from the 80 W cell's depth-4
			// checkpoint.
			name: "step-ladder",
			donors: []RunSpec{
				{Make: mkSTREAM, Scheme: step(80), Seed: 1, MaxSeconds: 8},
				{Make: mkSTREAM, Scheme: step(90), Seed: 1, MaxSeconds: 8},
			},
			target: RunSpec{Make: mkSTREAM, Scheme: step(100), Seed: 1, MaxSeconds: 8},
		},
		{
			// Same scheme, longer horizon: the 12 s cell forks from the
			// 8 s cell's full-depth checkpoint and extends it.
			name:   "horizon-extend",
			donors: []RunSpec{{Make: mkAMG, Scheme: policy.Constant{Watts: 100}, Seed: 3, MaxSeconds: 8, Invariants: true}},
			target: RunSpec{Make: mkAMG, Scheme: policy.Constant{Watts: 100}, Seed: 3, MaxSeconds: 12, Invariants: true},
		},
		{
			// Different scheme types sharing a cap prefix: Constant 140
			// and the Step ladder agree on [0,5), so the fingerprint —
			// which hashes decisions, not scheme identity — shares them.
			name:   "cross-scheme-type",
			donors: []RunSpec{{Make: mkSTREAM, Scheme: policy.Constant{Watts: 140}, Seed: 1, MaxSeconds: 8}},
			target: RunSpec{Make: mkSTREAM, Scheme: step(110), Seed: 1, MaxSeconds: 8},
		},
		{
			name:   "dvfs-pin",
			donors: []RunSpec{{Make: mkAMG, DVFSMHz: 1500, Seed: 2, MaxSeconds: 6}},
			target: RunSpec{Make: mkAMG, DVFSMHz: 1500, Seed: 2, MaxSeconds: 9},
		},
		{
			name:   "uncapped-msr",
			donors: []RunSpec{{Make: mkSTREAM, Seed: 5, MaxSeconds: 6}},
			target: RunSpec{Make: mkSTREAM, Seed: 5, MaxSeconds: 10},
		},
		{
			// Faulted transport: the injector's RNG streams, delay queue,
			// and loss accounting all cross the fork point.
			name:   "faulted",
			donors: []RunSpec{{Make: mkAMG, Scheme: step(80), Seed: 7, MaxSeconds: 8, Faults: faultPlan}},
			target: RunSpec{Make: mkAMG, Scheme: step(95), Seed: 7, MaxSeconds: 8, Faults: faultPlan},
		},
		{
			// Blackout windows that differ only beyond the divergence
			// point truncate identically inside the shared prefix.
			name: "blackout-truncation",
			donors: []RunSpec{{Make: mkAMG, Scheme: step(80), Seed: 7, MaxSeconds: 8, Faults: fault.Plan{
				Seed:   9,
				PubSub: fault.PubSubPlan{DropRate: 0.05, Blackouts: []fault.Window{{From: 6 * time.Second, To: 7 * time.Second}}},
			}}},
			target: RunSpec{Make: mkAMG, Scheme: step(95), Seed: 7, MaxSeconds: 8, Faults: fault.Plan{
				Seed:   9,
				PubSub: fault.PubSubPlan{DropRate: 0.05, Blackouts: []fault.Window{{From: 6 * time.Second, To: 8 * time.Second}}},
			}},
		},
		{
			// sysfs backend: the actuator and emulated powercap zone live
			// outside the engine, so the fork snapshot is composite.
			name: "sysfs-backend",
			donors: []RunSpec{{Make: mkSTREAM, Scheme: policy.Constant{Watts: 110}, Seed: 4, MaxSeconds: 7, Backend: "sysfs", Faults: fault.Plan{
				Seed:     11,
				Powercap: &fault.PowercapPlan{WriteAgainRate: 0.2, WriteEIORate: 0.05},
			}}},
			target: RunSpec{Make: mkSTREAM, Scheme: policy.Constant{Watts: 110}, Seed: 4, MaxSeconds: 10, Backend: "sysfs", Faults: fault.Plan{
				Seed:     11,
				Powercap: &fault.PowercapPlan{WriteAgainRate: 0.2, WriteEIORate: 0.05},
			}},
		},
		{
			// Fixed-tick oracle mode forks too.
			name:   "fixed-tick",
			donors: []RunSpec{{Make: mkSTREAM, Scheme: step(80), Seed: 1, MaxSeconds: 8, FixedTick: true}},
			target: RunSpec{Make: mkSTREAM, Scheme: step(120), Seed: 1, MaxSeconds: 8, FixedTick: true},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := scratchSig(t, tc.target)
			r := NewRunner(2)
			for i := range tc.donors {
				d := tc.donors[i]
				d.Forking = true
				if _, err := r.Do(d); err != nil {
					t.Fatalf("donor %d: %v", i, err)
				}
			}
			before := r.Stats()
			target := tc.target
			target.Forking = true
			res, err := r.Do(target)
			if err != nil {
				t.Fatalf("forked run: %v", err)
			}
			after := r.Stats()
			if after.ForkHits <= before.ForkHits {
				t.Errorf("target did not fork from the pooled prefix (hits %d -> %d)", before.ForkHits, after.ForkHits)
			}
			if got := res.Signature(); got != want {
				t.Errorf("forked signature diverges from scratch:\nfork:    %s\nscratch: %s", got, want)
			}
		})
	}
}

// TestForkedSoakScenarios replays generated soak scenarios through the
// forking path at two fork depths each — a shallow donor, a deeper
// donor forked from the shallow one, then the full run forked from the
// deeper — and requires signature identity with the scratch run. This
// sweeps the property over the generator's whole scenario space
// (schemes, DVFS pins, fault plans, sysfs backends) instead of
// hand-picked cases.
func TestForkedSoakScenarios(t *testing.T) {
	const want = 10
	got := 0
	for seed := uint64(1); got < want && seed < 200; seed++ {
		sc := spec.Generate(seed)
		if sc.Cluster() {
			continue
		}
		got++
		scheme, err := sc.Operating.Scheme.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := sc.Workloads[0]
		mk := func() *workload.Workload {
			built, err := w.Build()
			if err != nil {
				panic(err)
			}
			return built
		}
		base := RunSpec{
			Make:       mk,
			Scheme:     scheme,
			DVFSMHz:    sc.Operating.DVFSMHz,
			Seed:       sc.Seed,
			MaxSeconds: sc.HorizonSec,
			Invariants: true,
			Faults:     sc.Faults,
			Backend:    sc.Operating.Backend,
		}
		wantSig := scratchSig(t, base)

		r := NewRunner(1)
		for _, depth := range []float64{sc.HorizonSec - 4, sc.HorizonSec - 2} {
			if depth < 1 {
				continue
			}
			donor := base
			donor.MaxSeconds = depth
			donor.Forking = true
			if _, err := r.Do(donor); err != nil {
				t.Fatalf("seed %d donor at %gs: %v", seed, depth, err)
			}
		}
		full := base
		full.Forking = true
		res, err := r.Do(full)
		if err != nil {
			t.Fatalf("seed %d forked run: %v", seed, err)
		}
		if st := r.Stats(); st.ForkHits == 0 {
			t.Errorf("seed %d: no fork hits across the donor chain (stats %+v)", seed, st)
		}
		if sig := res.Signature(); sig != wantSig {
			t.Errorf("seed %d: forked signature diverges from scratch", seed)
		}
	}
	if got < want {
		t.Fatalf("generator yielded only %d single-node scenarios, want %d", got, want)
	}
}

// TestSnapshotPoolEviction pins the pool's byte-bounded LRU behavior.
func TestSnapshotPoolEviction(t *testing.T) {
	p := newSnapshotPool(100)
	put := func(key string, size int) { p.put(key, &forkSnapshot{size: size}) }
	put("a", 40)
	put("b", 40)
	if p.get("a") == nil {
		t.Fatal("a evicted below the bound")
	}
	put("c", 40) // exceeds 100: evicts LRU, which is b (a was just touched)
	if p.get("b") != nil {
		t.Error("b survived eviction")
	}
	if p.get("a") == nil || p.get("c") == nil {
		t.Error("a/c evicted out of LRU order")
	}
	put("huge", 1000) // larger than the whole bound: never pooled
	if p.get("huge") != nil {
		t.Error("oversized snapshot was pooled")
	}
	p.drop("a")
	if p.get("a") != nil {
		t.Error("a survived drop")
	}
	// Duplicate put keeps the first entry.
	first := &forkSnapshot{size: 10}
	p.put("dup", first)
	p.put("dup", &forkSnapshot{size: 10})
	if p.get("dup") != first {
		t.Error("duplicate put replaced the pooled snapshot")
	}
}

// TestPruneDiskCache pins the age-based eviction used by -cacheprune.
func TestPruneDiskCache(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	write := func(name string, age time.Duration, size int) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := now.Add(-age)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	write("old.json", 48*time.Hour, 100)
	write("older.json", 72*time.Hour, 50)
	write("fresh.json", time.Hour, 200)
	write("not-cache.txt", 72*time.Hour, 10)

	removed, freed, err := PruneDiskCache(dir, 24*time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 150 {
		t.Errorf("prune removed %d entries / %d bytes, want 2 / 150", removed, freed)
	}
	for _, keep := range []string{"fresh.json", "not-cache.txt"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Errorf("%s was pruned: %v", keep, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "old.json")); !os.IsNotExist(err) {
		t.Error("old.json survived the prune")
	}
	// A missing directory prunes nothing and is not an error.
	if removed, freed, err := PruneDiskCache(filepath.Join(dir, "absent"), time.Hour, now); err != nil || removed != 0 || freed != 0 {
		t.Errorf("prune of missing dir: %d, %d, %v", removed, freed, err)
	}
}
