package experiments

import (
	"testing"

	"progresscap/internal/cluster"
)

// TestFleetSweepWorkerDeterminism runs the small end of the fleet grid
// at 1, 2, and 8 shard workers and requires cell-for-cell identical
// results — the experiments-level face of the cluster package's
// signature-equivalence test (which also runs under -race; this sweep
// skips there, like the other multi-second simulation sweeps).
func TestFleetSweepWorkerDeterminism(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("simulation test")
	}
	sweep := func(workers int) []FleetCell {
		opts := quickOpts()
		opts.NodeWorkers = workers
		cells, _, err := RunFleetSweep(opts, []int{8, 64})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return cells
	}
	base := sweep(1)
	for _, w := range []int{2, 8} {
		got := sweep(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d cells, want %d", w, len(got), len(base))
		}
		for i := range base {
			// ShardEpochs is pool bookkeeping, not simulation output.
			a, b := base[i], got[i]
			a.ShardEpochs, b.ShardEpochs = 0, 0
			if a != b {
				t.Errorf("workers=%d cell %d: %+v != %+v", w, i, got[i], base[i])
			}
		}
	}
}

// TestFleet1024Race is the 1024-node scenario sized to run under the
// race detector: two sharded epochs across 8 workers over the full
// fleet, enough to race-exercise every engine concurrently without the
// race build's ~13x slowdown blowing the package timeout.
func TestFleet1024Race(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	opts := quickOpts()
	opts.NodeWorkers = 8
	m, err := NewFleetManager(opts, 1024, cluster.EqualSplit{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1024 {
		t.Fatalf("fleet size = %d", len(res.Nodes))
	}
	st := m.ShardStats()
	if st.Epochs != 2 || st.Shards != 8 {
		t.Fatalf("shard stats = %+v, want 2 epochs over 8 shards", st)
	}
	if res.MinProgress.Len() == 0 {
		t.Fatal("no progress recorded")
	}
}

// TestFleetArtifactShape pins the ext-fleet artifact contract: one row
// per (size, policy) cell, a best-policy note per fleet size, plausible
// cell metrics, and shard counters reported to the shared runner.
func TestFleetArtifactShape(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("simulation test")
	}
	r := NewRunner(1)
	art, err := ExtFleet(quickOpts().WithRunner(r))
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "ext-fleet" {
		t.Fatalf("ID = %s", art.ID)
	}
	if want := len(FleetSizes) * 5; art.Tables[0].NumRows() != want {
		t.Fatalf("%d rows, want %d", art.Tables[0].NumRows(), want)
	}
	if got := len(art.Notes); got < 3+len(FleetSizes) {
		t.Fatalf("%d notes, want at least %d", got, 3+len(FleetSizes))
	}
	// The runner saw the merged shard counters (summary-line plumbing).
	if r.Stats().Shards.Epochs == 0 {
		t.Fatal("fleet sweep recorded no shard stats on the shared runner")
	}
	// Cell-level plausibility on the cheap end of the grid.
	cells, _, err := RunFleetSweep(quickOpts(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.MeanMin <= 0 || c.MeanMin > 1.5 {
			t.Errorf("%d/%s: implausible mean min-progress %g", c.Nodes, c.Policy, c.MeanMin)
		}
		if c.EnergyKJ <= 0 {
			t.Errorf("%d/%s: no energy recorded", c.Nodes, c.Policy)
		}
	}
}

// TestFingerprintIgnoresExecutionKnobs pins that execution-level knobs
// — scheduler width and shard worker count — never reach the run
// fingerprint, so a disk cache written on a 64-core machine is valid on
// a laptop and vice versa.
func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	mkSpec := func(o Options) RunSpec {
		return o.capSpec(characterizable(o)[0].mk, nil, 1, 6)
	}
	a := Options{RunSeconds: 6, Reps: 1, Seed: 1, Parallel: 1, NodeWorkers: 1}
	b := Options{RunSeconds: 6, Reps: 1, Seed: 1, Parallel: 8, NodeWorkers: 8}
	if ka, kb := mkSpec(a).key(), mkSpec(b).key(); ka != kb {
		t.Fatalf("run key depends on execution knobs:\n%s\n%s", ka, kb)
	}
}
