// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated node. Each entry point returns an Artifact
// holding the rendered rows/series; cmd/experiments prints them and
// bench_test.go exposes one benchmark per artifact.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table1    — MIPS vs online-performance definitions (Listing 1)
//	Tables2to4— application descriptions and interview summary
//	Table5    — categorization and online-performance metrics
//	Table6    — β and MPO characterization
//	Figure1   — online-performance character (steady/fluctuating/phased)
//	Figure2   — RAPL application-aware frequency under identical caps
//	Figure3   — progress follows the dynamic capping function
//	Figure4   — measured vs model-predicted change in progress
//	Figure5   — STREAM: RAPL vs direct-DVFS power limiting
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"progresscap/internal/engine"
	"progresscap/internal/policy"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// Options scales the experiment harness. The zero value is filled with
// defaults tuned so the full suite runs in a couple of minutes of wall
// time; increase RunSeconds/Reps for tighter statistics.
type Options struct {
	// RunSeconds is the virtual duration of one measurement run.
	//
	// Sentinel: 0 means "use the default" (12); there is no way to request
	// a zero-length run. Negative values are rejected with an error rather
	// than silently running a zero-length sweep.
	RunSeconds float64
	// Reps is the number of repetitions averaged per power cap in
	// Figure 4 (the paper uses five).
	//
	// Sentinel: 0 means "use the default" (3). Negative values are
	// rejected with an error.
	Reps int
	// Seed is the base RNG seed; repetition k uses Seed+k.
	//
	// Sentinel: 0 means "use the default" (1) — seed 0 is not a usable
	// seed, matching engine.Config.Seed.
	Seed uint64
	// CheckInvariants arms the engine-level safety invariant checker
	// (cap range, monotonic energy, bounded actuation rate) on every run
	// the harness performs; any violation fails the artifact. Tests and
	// the chaos harness enable it unconditionally; cmd/experiments
	// exposes it as -invariants.
	CheckInvariants bool
	// Parallel bounds how many simulations run concurrently.
	//
	// Sentinel: 0 (or negative) means GOMAXPROCS. 1 reproduces the old
	// fully serial harness. Results are byte-identical at any setting;
	// only wall time changes.
	Parallel int
	// FixedTick forces every engine the harness builds to run in the
	// fixed-tick oracle mode instead of event-driven macro-stepping (see
	// engine.Config.FixedTick). Output is byte-identical either way —
	// the differential test asserts exactly that — so this exists for
	// validation, not for users.
	FixedTick bool
	// NodeWorkers bounds how many node-engine shards a cluster-level
	// generator advances concurrently within each epoch (see
	// cluster.Manager.SetNodeWorkers).
	//
	// Sentinel: 0 means GOMAXPROCS; 1 reproduces the serial advance
	// loop. Like Parallel, results are byte-identical at any setting —
	// which is why it is NOT part of any run fingerprint or memo key
	// (TestFingerprintIgnoresExecutionKnobs pins that).
	NodeWorkers int
	// Backend selects the actuation path for single-node scheme runs:
	// "" or "msr" keeps the legacy register daemon (byte-identical to
	// pre-backend artifacts), "sysfs" routes every cap through the
	// hardened actuator over the emulated powercap tree. Unlike the
	// execution knobs above it IS semantic — sysfs quantizes caps
	// differently — so it flows into the run fingerprint. Pinned-DVFS
	// runs carry no cap daemon and ignore it.
	Backend string
	// Forking enables checkpoint/fork prefix reuse across sweep cells:
	// runs that share a simulation prefix (same workload, seed, flags,
	// and cap decisions up to some second) resume from a pooled engine
	// checkpoint instead of re-simulating it (see fork.go). Like
	// Parallel and NodeWorkers this is an execution knob — results are
	// byte-identical either way, which the fork-vs-scratch oracle test
	// pins — so it is NOT part of any run fingerprint or memo key.
	Forking bool

	// runner schedules and memoizes runs. All generators reached through
	// one Options value (All, or cmd/experiments via WithRunner) share it,
	// so cross-artifact baselines simulate once. Lazily created by
	// fillDefaults when unset.
	runner *Runner
}

// DefaultOptions returns the standard harness scale: 12-second runs,
// 3 repetitions, GOMAXPROCS-wide scheduling.
func DefaultOptions() Options {
	return Options{RunSeconds: 12, Reps: 3, Seed: 1}
}

// WithRunner returns a copy of o routing every run through r, letting a
// caller share one memoizing scheduler across several artifact
// generations (cmd/experiments does this for the whole suite).
func (o Options) WithRunner(r *Runner) Options {
	o.runner = r
	return o
}

// fillDefaults validates o and replaces sentinel zeros with defaults.
// Every generator calls it on its own copy, so a shared runner must be
// injected (via All or WithRunner) before the copies diverge.
func (o *Options) fillDefaults() error {
	if o.RunSeconds < 0 {
		return fmt.Errorf("experiments: negative RunSeconds %v", o.RunSeconds)
	}
	if o.Reps < 0 {
		return fmt.Errorf("experiments: negative Reps %d", o.Reps)
	}
	if o.RunSeconds == 0 {
		o.RunSeconds = 12
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	switch o.Backend {
	case "", "sysfs":
	case "msr":
		o.Backend = "" // canonical spelling of the default path
	default:
		return fmt.Errorf("experiments: unknown actuation backend %q (want msr or sysfs)", o.Backend)
	}
	if o.runner == nil {
		o.runner = NewRunner(o.Parallel)
	}
	return nil
}

// NamedPlot pairs a file-name-friendly identifier with an SVG plot.
type NamedPlot struct {
	Name string
	Plot *trace.Plot
}

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID     string
	Title  string
	Tables []*trace.Table
	// Notes carries free-form lines (classifications, correlations,
	// sparklines) rendered after the tables.
	Notes []string
	// Figures holds SVG renderings of the artifact's series, written by
	// cmd/experiments -svg.
	Figures []NamedPlot
}

// addFigure appends a plot, ignoring nil (a figure is never mandatory).
func (a *Artifact) addFigure(name string, p *trace.Plot) {
	if p != nil {
		a.Figures = append(a.Figures, NamedPlot{Name: name, Plot: p})
	}
}

// Render returns the artifact as printable text.
func (a *Artifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", a.ID, a.Title)
	for _, t := range a.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, n := range a.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// capSpec describes one run under a scheme (nil = uncapped). mk must
// build a fresh workload per call when the spec will be Prefetched.
func (o Options) capSpec(mk func() *workload.Workload, scheme policy.Scheme, seed uint64, maxSeconds float64) RunSpec {
	return RunSpec{Make: mk, Scheme: scheme, Seed: seed, MaxSeconds: maxSeconds, Invariants: o.CheckInvariants, FixedTick: o.FixedTick, Backend: o.Backend, Forking: o.Forking}
}

// dvfsSpec describes one run pinned at a frequency with RAPL manual.
func (o Options) dvfsSpec(mk func() *workload.Workload, mhz float64, seed uint64, maxSeconds float64) RunSpec {
	return RunSpec{Make: mk, DVFSMHz: mhz, Seed: seed, MaxSeconds: maxSeconds, Invariants: o.CheckInvariants, FixedTick: o.FixedTick, Forking: o.Forking}
}

// engineConfig returns the node configuration every harness-built engine
// starts from: the package default plus the Options' engine-mode knobs.
// Extension generators that construct engines directly (rather than going
// through the Runner) must use this so -- and only so -- FixedTick reaches
// them too.
func (o Options) engineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.FixedTick = o.FixedTick
	return cfg
}

// run executes one workload under a scheme (nil = uncapped) and returns
// the result. All experiment runs flow through the Options' Runner so
// they use the same node configuration (and the same invariant checking,
// when enabled) and identical runs are memoized. The caller may reuse w
// afterwards: execution happens on this goroutine.
func (o Options) run(w *workload.Workload, scheme policy.Scheme, seed uint64, maxSeconds float64) (*engine.Result, error) {
	return o.rn().Do(o.capSpec(func() *workload.Workload { return w }, scheme, seed, maxSeconds))
}

// runDVFS executes one workload pinned at a frequency with RAPL manual.
func (o Options) runDVFS(w *workload.Workload, mhz float64, seed uint64, maxSeconds float64) (*engine.Result, error) {
	return o.rn().Do(o.dvfsSpec(func() *workload.Workload { return w }, mhz, seed, maxSeconds))
}

// rn returns the Options' runner, creating a serial fallback for callers
// that bypassed fillDefaults (defensive; generators all call it).
func (o Options) rn() *Runner {
	if o.runner != nil {
		return o.runner
	}
	return NewRunner(1)
}

// invariantErr folds a run's invariant violations into an error.
func invariantErr(e *engine.Engine) error {
	if v := e.InvariantViolations(); len(v) > 0 {
		return fmt.Errorf("experiments: %d invariant violations, first: %s", len(v), v[0])
	}
	return nil
}

// steadyRates drops the warm-up and final windows of a run and returns
// the remaining per-window rates (the controller needs a window or two
// to settle after a cap change).
func steadyRates(res *engine.Result, skip int) []float64 {
	rates := res.Rates()
	if len(rates) <= skip+1 {
		return rates
	}
	return rates[skip : len(rates)-1]
}

// meanSteadyPower averages the per-window package power, skipping
// warm-up and the final partial window.
func meanSteadyPower(res *engine.Result, skip int) float64 {
	vals := res.PowerTrace.Values()
	if len(vals) <= skip+1 {
		skip = 0
	}
	var sum float64
	n := 0
	for i := skip; i < len(vals)-1; i++ {
		sum += vals[i]
		n++
	}
	if n == 0 {
		if len(vals) == 0 {
			return 0
		}
		return vals[len(vals)-1]
	}
	return sum / float64(n)
}

// All regenerates every artifact in paper order. The generators run
// concurrently on one shared scheduler, so independent simulations
// overlap (bounded by opts.Parallel) and baselines shared between
// artifacts — Table 6 and Figure 4 characterize the same applications —
// simulate once. Output is byte-identical to a serial run: each artifact
// is assembled in its own deterministic order, and the returned slice is
// always in paper order.
func All(opts Options) ([]*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	type gen struct {
		name string
		fn   func(Options) (*Artifact, error)
	}
	gens := []gen{
		{"table1", Table1},
		{"tables2to4", func(Options) (*Artifact, error) { return Tables2to4(), nil }},
		{"table5", func(Options) (*Artifact, error) { return Table5(), nil }},
		{"table6", Table6},
		{"fig1", Figure1},
		{"fig2", Figure2},
		{"fig3", Figure3},
		{"fig4", Figure4},
		{"fig5", Figure5},
	}
	arts := make([]*Artifact, len(gens))
	errs := make([]error, len(gens))
	var wg sync.WaitGroup
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g gen) {
			defer wg.Done()
			arts[i], errs[i] = g.fn(opts)
		}(i, g)
	}
	wg.Wait()
	// Preserve the serial contract: on failure, return the artifacts that
	// precede the first failing generator, plus its error.
	for i, err := range errs {
		if err != nil {
			return arts[:i], fmt.Errorf("experiments: %s: %w", gens[i].name, err)
		}
	}
	return arts, nil
}
