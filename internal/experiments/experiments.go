// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated node. Each entry point returns an Artifact
// holding the rendered rows/series; cmd/experiments prints them and
// bench_test.go exposes one benchmark per artifact.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table1    — MIPS vs online-performance definitions (Listing 1)
//	Tables2to4— application descriptions and interview summary
//	Table5    — categorization and online-performance metrics
//	Table6    — β and MPO characterization
//	Figure1   — online-performance character (steady/fluctuating/phased)
//	Figure2   — RAPL application-aware frequency under identical caps
//	Figure3   — progress follows the dynamic capping function
//	Figure4   — measured vs model-predicted change in progress
//	Figure5   — STREAM: RAPL vs direct-DVFS power limiting
package experiments

import (
	"fmt"
	"strings"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/policy"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// Options scales the experiment harness. The zero value is filled with
// defaults tuned so the full suite runs in a couple of minutes of wall
// time; increase RunSeconds/Reps for tighter statistics.
type Options struct {
	// RunSeconds is the virtual duration of one measurement run.
	RunSeconds float64
	// Reps is the number of repetitions averaged per power cap in
	// Figure 4 (the paper uses five).
	Reps int
	// Seed is the base RNG seed; repetition k uses Seed+k.
	Seed uint64
	// CheckInvariants arms the engine-level safety invariant checker
	// (cap range, monotonic energy, bounded actuation rate) on every run
	// the harness performs; any violation fails the artifact. Tests and
	// the chaos harness enable it unconditionally; cmd/experiments
	// exposes it as -invariants.
	CheckInvariants bool
}

// DefaultOptions returns the standard harness scale: 12-second runs,
// 3 repetitions.
func DefaultOptions() Options {
	return Options{RunSeconds: 12, Reps: 3, Seed: 1}
}

func (o *Options) fillDefaults() {
	if o.RunSeconds == 0 {
		o.RunSeconds = 12
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// NamedPlot pairs a file-name-friendly identifier with an SVG plot.
type NamedPlot struct {
	Name string
	Plot *trace.Plot
}

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID     string
	Title  string
	Tables []*trace.Table
	// Notes carries free-form lines (classifications, correlations,
	// sparklines) rendered after the tables.
	Notes []string
	// Figures holds SVG renderings of the artifact's series, written by
	// cmd/experiments -svg.
	Figures []NamedPlot
}

// addFigure appends a plot, ignoring nil (a figure is never mandatory).
func (a *Artifact) addFigure(name string, p *trace.Plot) {
	if p != nil {
		a.Figures = append(a.Figures, NamedPlot{Name: name, Plot: p})
	}
}

// Render returns the artifact as printable text.
func (a *Artifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", a.ID, a.Title)
	for _, t := range a.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, n := range a.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// run executes one workload under a scheme (nil = uncapped) and returns
// the result. All experiment runs share this path so they use the same
// node configuration (and the same invariant checking, when enabled).
func (o Options) run(w *workload.Workload, scheme policy.Scheme, seed uint64, maxSeconds float64) (*engine.Result, error) {
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	e, err := engine.New(cfg, w)
	if err != nil {
		return nil, err
	}
	if o.CheckInvariants {
		e.EnableInvariants(engine.InvariantConfig{})
	}
	if scheme != nil {
		if err := e.SetScheme(scheme); err != nil {
			return nil, err
		}
	}
	res, err := e.Run(time.Duration(maxSeconds * float64(time.Second)))
	if err != nil {
		return nil, err
	}
	return res, invariantErr(e)
}

// runDVFS executes one workload pinned at a frequency with RAPL manual.
func (o Options) runDVFS(w *workload.Workload, mhz float64, seed uint64, maxSeconds float64) (*engine.Result, error) {
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	e, err := engine.New(cfg, w)
	if err != nil {
		return nil, err
	}
	if o.CheckInvariants {
		e.EnableInvariants(engine.InvariantConfig{})
	}
	e.SetManualDVFS(mhz)
	res, err := e.Run(time.Duration(maxSeconds * float64(time.Second)))
	if err != nil {
		return nil, err
	}
	return res, invariantErr(e)
}

// invariantErr folds a run's invariant violations into an error.
func invariantErr(e *engine.Engine) error {
	if v := e.InvariantViolations(); len(v) > 0 {
		return fmt.Errorf("experiments: %d invariant violations, first: %s", len(v), v[0])
	}
	return nil
}

// steadyRates drops the warm-up and final windows of a run and returns
// the remaining per-window rates (the controller needs a window or two
// to settle after a cap change).
func steadyRates(res *engine.Result, skip int) []float64 {
	rates := res.Rates()
	if len(rates) <= skip+1 {
		return rates
	}
	return rates[skip : len(rates)-1]
}

// meanSteadyPower averages the per-window package power, skipping
// warm-up and the final partial window.
func meanSteadyPower(res *engine.Result, skip int) float64 {
	vals := res.PowerTrace.Values()
	if len(vals) <= skip+1 {
		skip = 0
	}
	var sum float64
	n := 0
	for i := skip; i < len(vals)-1; i++ {
		sum += vals[i]
		n++
	}
	if n == 0 {
		if len(vals) == 0 {
			return 0
		}
		return vals[len(vals)-1]
	}
	return sum / float64(n)
}

// All regenerates every artifact in paper order.
func All(opts Options) ([]*Artifact, error) {
	type gen struct {
		name string
		fn   func(Options) (*Artifact, error)
	}
	gens := []gen{
		{"table1", Table1},
		{"tables2to4", func(Options) (*Artifact, error) { return Tables2to4(), nil }},
		{"table5", func(Options) (*Artifact, error) { return Table5(), nil }},
		{"table6", Table6},
		{"fig1", Figure1},
		{"fig2", Figure2},
		{"fig3", Figure3},
		{"fig4", Figure4},
		{"fig5", Figure5},
	}
	var out []*Artifact
	for _, g := range gens {
		a, err := g.fn(opts)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", g.name, err)
		}
		out = append(out, a)
	}
	return out, nil
}
