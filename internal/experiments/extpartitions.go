package experiments

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/trace"
)

// The partition suite's fixed geometry: three nodes, one job budget,
// a 24 s horizon with faults landing at 8 s and healing at 16 s.
const (
	partBudgetW = 300
	partHorizon = 24 * time.Second
	partFaultAt = 8 * time.Second
	partHealAt  = 16 * time.Second
)

// PartitionScenario is one measured run of the leased cluster under a
// partition/manager-fault schedule.
type PartitionScenario struct {
	Name              string
	WorkUnits         float64
	RetentionPct      float64 // work vs the fault-free baseline
	PeakOvershootW    float64 // must be 0: leases make it structural
	Failovers         int
	GrantsIssued      uint64
	FencedGrants      uint64
	UndeliveredGrants uint64
	ExpiredReverts    uint64 // node deadman trips
	Completed         bool
}

// PartitionReport carries the whole suite for the acceptance test.
type PartitionReport struct {
	Scenarios []PartitionScenario
}

// Scenario returns the named row (nil when absent).
func (r *PartitionReport) Scenario(name string) *PartitionScenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// RunPartitionSuite executes the partition/failover scenarios on the
// leased cluster and measures progress retention and budget safety.
// Engine invariants are armed on every plant — a distributed-safety
// harness that does not watch the node safety envelope is testing
// nothing.
func RunPartitionSuite(opts Options) (*PartitionReport, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}

	runOne := func(name string, plan fault.Plan) (PartitionScenario, error) {
		var nodes []*cluster.LeasedNode
		var engines []*engine.Engine
		for i, nn := range []string{"n0", "n1", "n2"} {
			cfg := opts.engineConfig()
			cfg.Seed = opts.Seed + uint64(i)
			// Epoch-level control needs no sub-millisecond plant ticks;
			// the coarse tick keeps the five-scenario suite fast.
			cfg.Tick = time.Millisecond
			e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
			if err != nil {
				return PartitionScenario{}, err
			}
			e.EnableInvariants(engine.InvariantConfig{})
			engines = append(engines, e)
			nodes = append(nodes, cluster.NewLeasedNode(nn, e))
		}
		lc, err := cluster.NewLeasedCluster(cluster.LeasedConfig{
			Policy:      cluster.EqualSplit{},
			Budget:      cluster.ConstantBudget(partBudgetW),
			Faults:      fault.NewInjector(plan),
			NodeWorkers: opts.NodeWorkers,
		}, nodes...)
		if err != nil {
			return PartitionScenario{}, err
		}
		res, err := lc.Run(partHorizon)
		if err != nil {
			return PartitionScenario{}, fmt.Errorf("ext-partitions: %s: %w", name, err)
		}
		opts.rn().RecordShards(lc.ShardStats())
		for _, e := range engines {
			if err := invariantErr(e); err != nil {
				return PartitionScenario{}, fmt.Errorf("ext-partitions: %s: %w", name, err)
			}
		}
		return PartitionScenario{
			Name:              name,
			WorkUnits:         res.WorkUnits,
			PeakOvershootW:    res.PeakOvershootW,
			Failovers:         res.Failovers,
			GrantsIssued:      res.GrantsIssued,
			FencedGrants:      res.FencedGrants,
			UndeliveredGrants: res.UndeliveredGrants,
			ExpiredReverts:    res.ExpiredReverts,
			Completed:         res.Completed,
		}, nil
	}

	managers := []string{cluster.PrimaryManager, cluster.StandbyManager}
	scenarios := []struct {
		name string
		plan fault.Plan
	}{
		{"baseline", fault.Plan{Seed: opts.Seed}},
		{"manager-kill", fault.Plan{Seed: opts.Seed, Managers: map[string]fault.ManagerPlan{
			cluster.PrimaryManager: {KillAt: partFaultAt},
		}}},
		{"sym-partition", fault.Plan{Seed: opts.Seed, Partitions: []fault.Partition{{
			Window: fault.Window{From: partFaultAt, To: partHealAt},
			A:      []string{"n1"},
			B:      managers,
		}}}},
		{"asym-partition", fault.Plan{Seed: opts.Seed, Partitions: []fault.Partition{{
			Window:     fault.Window{From: partFaultAt, To: partHealAt},
			A:          []string{"n1"},
			B:          managers,
			Asymmetric: true,
		}}}},
		{"deposed-primary", fault.Plan{Seed: opts.Seed, Managers: map[string]fault.ManagerPlan{
			cluster.PrimaryManager: {PauseAt: partFaultAt + 500*time.Millisecond, ResumeAt: partHealAt},
		}}},
	}

	rep := &PartitionReport{}
	var baseWork float64
	for _, sc := range scenarios {
		row, err := runOne(sc.name, sc.plan)
		if err != nil {
			return nil, err
		}
		if sc.name == "baseline" {
			baseWork = row.WorkUnits
		}
		if baseWork > 0 {
			row.RetentionPct = 100 * row.WorkUnits / baseWork
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	return rep, nil
}

// ExtPartitions is the partition-tolerance artifact: the leased,
// replicated job manager against manager death, symmetric and
// asymmetric node partitions, and a deposed primary flushing stale
// grants — with budget overshoot structurally zero throughout.
func ExtPartitions(opts Options) (*Artifact, error) {
	rep, err := RunPartitionSuite(opts)
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable(
		fmt.Sprintf("Leased cluster under partitions (3 nodes, %d W budget, faults %v-%v of %v)",
			partBudgetW, partFaultAt, partHealAt, partHorizon),
		"Scenario", "Work retention %", "Overshoot (W)", "Failovers", "Grants", "Fenced", "Undelivered", "Deadman reverts")
	for _, s := range rep.Scenarios {
		tbl.AddRow(s.Name,
			fmt.Sprintf("%.1f", s.RetentionPct),
			fmt.Sprintf("%.1f", s.PeakOvershootW),
			fmt.Sprintf("%d", s.Failovers),
			fmt.Sprintf("%d", s.GrantsIssued),
			fmt.Sprintf("%d", s.FencedGrants),
			fmt.Sprintf("%d", s.UndeliveredGrants),
			fmt.Sprintf("%d", s.ExpiredReverts))
	}

	kill := rep.Scenario("manager-kill")
	deposed := rep.Scenario("deposed-primary")
	sym := rep.Scenario("sym-partition")
	return &Artifact{
		ID:     "ext-partitions",
		Title:  "Extension: partition-tolerant power leasing (replicated manager, epoch fencing, deadman revert)",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			fmt.Sprintf("standby failover after primary kill kept %.1f%% of baseline work with %d failover(s) and zero overshoot;",
				kill.RetentionPct, kill.Failovers),
			fmt.Sprintf("partitioned node reverted to the safe cap via %d deadman trip(s) and was re-admitted after the heal;",
				sym.ExpiredReverts),
			fmt.Sprintf("deposed primary's stale flush was fenced (%d rejected grant(s)); budget overshoot was 0.0 W in every scenario.",
				deposed.FencedGrants),
		},
	}, nil
}
