package experiments

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// TestExtCrashesAcceptance runs the chaos harness once at the canonical
// kill time and asserts the ISSUE's acceptance criteria directly on the
// measured report.
func TestExtCrashesAcceptance(t *testing.T) {
	rep, err := RunCrashHarness(Options{Seed: 1}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Part A: kill/restart recovery.
	if rep.Restarts != 1 || rep.Panics != 1 {
		t.Fatalf("restarts=%d panics=%d, want exactly one kill+restart", rep.Restarts, rep.Panics)
	}
	if rep.PreCrashCapW != extCrashBudgetW {
		t.Fatalf("pre-crash cap %v W, want the %v W budget latched", rep.PreCrashCapW, float64(extCrashBudgetW))
	}
	if rep.RecoveryEpochs < 0 || rep.RecoveryEpochs > 3 {
		t.Fatalf("recovery took %d epochs, acceptance is <= 3", rep.RecoveryEpochs)
	}
	if rep.DeviationPct > 5 {
		t.Fatalf("progress deviation %.2f%%, acceptance is <= 5%%", rep.DeviationPct)
	}
	if rep.OvershootW > 0.5 {
		t.Fatalf("cap overshoot %.2f W, acceptance is zero", rep.OvershootW)
	}

	// Part B: deadman revert.
	if rep.DeadmanCapBeforeW != 60 {
		t.Fatalf("aggressive cap %v W, want 60", rep.DeadmanCapBeforeW)
	}
	if rep.DeadmanCapAfterW != 165 {
		t.Fatalf("post-TTL cap %v W, want the 165 W firmware default", rep.DeadmanCapAfterW)
	}
	if rep.DeadmanTrips != 1 {
		t.Fatalf("deadman trips = %d, want 1", rep.DeadmanTrips)
	}

	// Part C: circuit breaker.
	if !rep.Broken {
		t.Fatal("circuit never broke on a panic-looping daemon")
	}
	if rep.BreakRestarts != 3 || rep.BreakPanics != 4 {
		t.Fatalf("breaker restarts=%d panics=%d, want 3/4", rep.BreakRestarts, rep.BreakPanics)
	}
	if rep.PostBreakPeakW > rep.SafeCapW*1.05 {
		t.Fatalf("post-break power %.1f W escaped the %.0f W safe cap", rep.PostBreakPeakW, rep.SafeCapW)
	}
}

// TestExtCrashesArtifact sanity-checks the rendered artifact.
func TestExtCrashesArtifact(t *testing.T) {
	a, err := ExtCrashes(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "ext-crashes" || len(a.Tables) != 3 || len(a.Notes) != 3 {
		t.Fatalf("artifact shape: id=%q tables=%d notes=%d", a.ID, len(a.Tables), len(a.Notes))
	}
	if out := a.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

// TestChaosRestartSoak sweeps randomized kill times through the harness
// and holds the same acceptance bar every time. Two seeded iterations by
// default (tier-1 budget); `make soak` sets SOAK_ITERS for the longer
// randomized loop under -race.
func TestChaosRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	iters := 2
	if v := os.Getenv("SOAK_ITERS"); v != "" {
		n := 0
		for _, c := range v {
			if c < '0' || c > '9' {
				n = 0
				break
			}
			n = n*10 + int(c-'0')
		}
		if n > 0 {
			iters = n
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < iters; i++ {
		// Kill anywhere from just-after-fit to near the end of the run.
		killAt := time.Duration(5+rng.Intn(20)) * time.Second
		rep, err := RunCrashHarness(Options{Seed: uint64(i + 1)}, killAt)
		if err != nil {
			t.Fatalf("iter %d (kill at %v): %v", i, killAt, err)
		}
		if rep.RecoveryEpochs < 0 || rep.RecoveryEpochs > 3 {
			t.Fatalf("iter %d (kill at %v): recovery %d epochs", i, killAt, rep.RecoveryEpochs)
		}
		if rep.DeviationPct > 5 {
			t.Fatalf("iter %d (kill at %v): deviation %.2f%%", i, killAt, rep.DeviationPct)
		}
		if rep.OvershootW > 0.5 {
			t.Fatalf("iter %d (kill at %v): overshoot %.2f W", i, killAt, rep.OvershootW)
		}
		if !rep.Broken || rep.DeadmanTrips != 1 {
			t.Fatalf("iter %d: broken=%v deadmanTrips=%d", i, rep.Broken, rep.DeadmanTrips)
		}
	}
}
