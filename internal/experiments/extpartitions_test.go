package experiments

import (
	"strings"
	"testing"
)

func TestRunPartitionSuite(t *testing.T) {
	skipIfRace(t)
	rep, err := RunPartitionSuite(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(rep.Scenarios))
	}

	// Budget overshoot must be exactly zero everywhere: the lease design
	// makes it structural, not statistical.
	for _, s := range rep.Scenarios {
		if s.PeakOvershootW > 0 {
			t.Errorf("%s: peak overshoot %.3f W, want 0", s.Name, s.PeakOvershootW)
		}
		if s.GrantsIssued == 0 {
			t.Errorf("%s: no grants issued", s.Name)
		}
	}

	base := rep.Scenario("baseline")
	if base == nil || base.Failovers != 0 || base.ExpiredReverts != 0 {
		t.Fatalf("baseline not clean: %+v", base)
	}

	kill := rep.Scenario("manager-kill")
	if kill.Failovers != 1 {
		t.Errorf("manager-kill failovers = %d, want 1", kill.Failovers)
	}
	if kill.RetentionPct < 90 {
		t.Errorf("manager-kill retained only %.1f%% of baseline work", kill.RetentionPct)
	}

	sym := rep.Scenario("sym-partition")
	if sym.ExpiredReverts == 0 {
		t.Error("sym-partition: partitioned node never reverted via deadman")
	}
	if sym.UndeliveredGrants == 0 {
		t.Error("sym-partition: partition ate no grants")
	}

	deposed := rep.Scenario("deposed-primary")
	if deposed.Failovers != 1 {
		t.Errorf("deposed-primary failovers = %d, want 1", deposed.Failovers)
	}
	if deposed.FencedGrants == 0 {
		t.Error("deposed-primary: stale flush was never fenced")
	}

	// Every fault scenario still makes progress: the safe-cap floor keeps
	// work flowing even while degraded.
	for _, s := range rep.Scenarios {
		if s.RetentionPct < 50 {
			t.Errorf("%s retained only %.1f%% of baseline work", s.Name, s.RetentionPct)
		}
	}
}

func TestExtPartitionsArtifact(t *testing.T) {
	skipIfRace(t)
	art, err := ExtPartitions(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "ext-partitions" {
		t.Fatalf("artifact ID %q", art.ID)
	}
	out := art.Render()
	for _, want := range []string{"baseline", "manager-kill", "sym-partition", "asym-partition", "deposed-primary"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered artifact missing scenario %q", want)
		}
	}
	// The acceptance bar: overshoot renders as 0.0 for every leased row.
	if strings.Count(out, " 0.0 ")+strings.Count(out, "| 0.0") == 0 {
		t.Error("rendered artifact shows no 0.0 overshoot column")
	}
}
