package experiments

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/nrm"
	"progresscap/internal/trace"
)

// ExtFaults stress-tests the progress-driven control loop under the
// degraded telemetry a production deployment actually sees: dropped
// progress reports, a total monitoring blackout, and a node crash in a
// multi-node job. The paper's method assumes clean online measurement;
// this artifact quantifies how far that assumption can erode before the
// controller misbehaves (loses track of progress, or worse, overshoots
// its power budget while blind).
func ExtFaults(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	const budgetW = 120

	// NRM run under a fault plan (nil = clean). The workload is sized to
	// outlast the run so the true progress rate is WorkUnits/Elapsed.
	runNRM := func(plan *fault.Plan, dur time.Duration) (*engine.Result, *nrm.NRM, error) {
		cfg := opts.engineConfig()
		cfg.Seed = opts.Seed
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, int(dur.Seconds())*50))
		if err != nil {
			return nil, nil, err
		}
		if plan != nil {
			e.SetFaults(fault.NewInjector(*plan))
		}
		n, err := nrm.New(nrm.Config{Beta: 1.0}, e)
		if err != nil {
			return nil, nil, err
		}
		n.SetBudget(budgetW)
		res, err := n.Run(dur)
		return res, n, err
	}
	// Cap overshoot over the steady windows (the first epochs calibrate
	// uncapped by design and are excluded).
	overshoot := func(res *engine.Result, from time.Duration) float64 {
		worst := 0.0
		for i := 0; i < res.PowerTrace.Len(); i++ {
			p := res.PowerTrace.At(i)
			if p.T > from && p.V-budgetW > worst {
				worst = p.V - budgetW
			}
		}
		return worst
	}

	// Part A: progress-report drop sweep. Measured progress thins with
	// the drop rate, but the budget must stay enforced and the *true*
	// work rate must barely move — the controller in budget mode leans on
	// measured power, not on the (now biased) progress stream.
	dropDur := 24 * time.Second
	sweep := trace.NewTable("", "Drop rate", "Reports kept", "True rate (units/s)", "Rate error %", "Cap overshoot (W)")
	var baseRate float64
	var baseReports int
	var errAt20 float64
	for _, drop := range []float64{0, 0.05, 0.10, 0.20, 0.40} {
		var plan *fault.Plan
		if drop > 0 {
			plan = &fault.Plan{Seed: opts.Seed, PubSub: fault.PubSubPlan{DropRate: drop}}
		}
		res, _, err := runNRM(plan, dropDur)
		if err != nil {
			return nil, fmt.Errorf("ext-faults: drop %v: %w", drop, err)
		}
		reports := 0
		for _, s := range res.Samples {
			reports += s.Reports
		}
		rate := res.WorkUnits / res.Elapsed.Seconds()
		if drop == 0 {
			baseRate, baseReports = rate, reports
		}
		errPct := 100 * (rate - baseRate) / baseRate
		if errPct < 0 {
			errPct = -errPct
		}
		if drop == 0.20 {
			errAt20 = errPct
		}
		sweep.AddRow(fmt.Sprintf("%.0f%%", drop*100),
			fmt.Sprintf("%.2f", float64(reports)/float64(baseReports)),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.1f", errPct),
			fmt.Sprintf("%.1f", overshoot(res, 6*time.Second)))
	}

	// Part B: a 10 s total telemetry blackout mid-run. The NRM must drop
	// to its degraded conservative cap (no budget overshoot while blind)
	// and re-trust the signal through probation once reports resume.
	bres, bn, err := runNRM(&fault.Plan{PubSub: fault.PubSubPlan{
		Blackouts: []fault.Window{{From: 8 * time.Second, To: 18 * time.Second}},
	}}, 32*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ext-faults: blackout: %w", err)
	}
	trans := trace.NewTable("", "t (s)", "Transition", "Reason")
	for _, tr := range bn.ModeTransitions() {
		trans.AddRow(fmt.Sprintf("%.0f", tr.At.Seconds()),
			fmt.Sprintf("%s -> %s", tr.From, tr.To), tr.Reason)
	}
	blackoutPeak := 0.0
	for i := 0; i < bres.PowerTrace.Len(); i++ {
		p := bres.PowerTrace.At(i)
		if p.T > 10*time.Second && p.T <= 18*time.Second && p.V > blackoutPeak {
			blackoutPeak = p.V
		}
	}

	// Part C: node crash in a three-node job. The manager's watchdog
	// fences the dead node at the quarantine cap and the survivors
	// inherit its budget share.
	mkNode := func(name string, seed uint64) *cluster.Node {
		cfg := opts.engineConfig()
		cfg.Seed = seed
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 1500))
		if err != nil {
			panic(err)
		}
		return cluster.NewNode(name, e)
	}
	const jobBudgetW = 360
	m, err := cluster.NewManager(cluster.EqualSplit{}, cluster.ConstantBudget(jobBudgetW),
		mkNode("n0", opts.Seed+1), mkNode("n1", opts.Seed+2), mkNode("n2", opts.Seed+3))
	if err != nil {
		return nil, err
	}
	m.SetFaults(fault.NewInjector(fault.Plan{Nodes: map[string]fault.NodePlan{
		"n1": {CrashAt: 8 * time.Second},
	}}))
	cres, err := m.Run(25 * time.Second)
	if err != nil {
		return nil, fmt.Errorf("ext-faults: cluster crash: %w", err)
	}
	crash := trace.NewTable("", "Node", "State", "Final cap (W)", "Work done")
	failed := map[string]bool{}
	for _, name := range m.FailedNodes() {
		failed[name] = true
	}
	for _, n := range cres.Nodes {
		state := "healthy"
		if failed[n.Name()] {
			state = "fenced"
		}
		finalCap := 0.0
		if n.CapTrace().Len() > 0 {
			finalCap = n.CapTrace().At(n.CapTrace().Len() - 1).V
		}
		crash.AddRow(n.Name(), state, trace.Formatted(finalCap),
			fmt.Sprintf("%.0f", n.Result().WorkUnits))
	}

	sweep.Title = "A: progress-report drop sweep (NRM budget mode, 120 W)"
	trans.Title = "B: NRM mode transitions across a 10 s telemetry blackout"
	crash.Title = "C: three-node job, one node crashes at t=8 s (equal split, 360 W)"
	return &Artifact{
		ID:     "ext-faults",
		Title:  "Extension: control-loop robustness under degraded telemetry",
		Tables: []*trace.Table{sweep, trans, crash},
		Notes: []string{
			fmt.Sprintf("at a 20%% report-drop rate the true progress rate moved %.1f%% (acceptance: <= 10%%);", errAt20),
			fmt.Sprintf("peak window power while blind during the blackout: %.1f W against a %.0f W budget;", blackoutPeak, float64(budgetW)),
			fmt.Sprintf("crashed node fenced at the %.0f W quarantine cap, survivors raised to %.0f W each.",
				float64(cluster.DefaultQuarantineCapW), (jobBudgetW-cluster.DefaultQuarantineCapW)/2.0),
		},
	}, nil
}
