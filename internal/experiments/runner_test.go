package experiments

import (
	"fmt"
	"sync"
	"testing"

	"progresscap/internal/apps"
	"progresscap/internal/policy"
	"progresscap/internal/workload"
)

// mkSampleSpec is a cheap spec for scheduler tests: the Listing-1
// imbalance sample at a reduced scale.
func mkSampleSpec(seed uint64, capW float64) RunSpec {
	mk := func() *workload.Workload { return apps.ImbalanceSample(8, 3, false, 1.0) }
	var scheme policy.Scheme
	if capW > 0 {
		scheme = policy.Constant{Watts: capW}
	}
	return RunSpec{Make: mk, Scheme: scheme, Seed: seed, MaxSeconds: 10}
}

func TestRunnerMemoizesIdenticalRuns(t *testing.T) {
	r := NewRunner(2)
	a, err := r.Do(mkSampleSpec(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Do(mkSampleSpec(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical specs did not share one memoized result")
	}
	if st := r.Stats(); st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats after duplicate Do: %+v", st)
	}
	// A different seed is a different run.
	if _, err := r.Do(mkSampleSpec(2, 0)); err != nil {
		t.Fatal(err)
	}
	// A different scheme is a different run even at the same seed.
	if _, err := r.Do(mkSampleSpec(1, 90)); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 3 || st.CacheHits != 1 {
		t.Fatalf("stats after distinct specs: %+v", st)
	}
}

func TestRunnerPrefetchAccounting(t *testing.T) {
	r := NewRunner(2)
	r.Prefetch(mkSampleSpec(1, 0))
	r.Prefetch(mkSampleSpec(1, 0)) // duplicate prefetch is a no-op
	if _, err := r.Do(mkSampleSpec(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Collecting one's own prefetch is plumbing, not a cache hit.
	if st := r.Stats(); st.Executed != 1 || st.CacheHits != 0 {
		t.Fatalf("stats after prefetch+collect: %+v", st)
	}
	if _, err := r.Do(mkSampleSpec(1, 0)); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats after re-collect: %+v", st)
	}
}

// TestRunnerParallelDeterminism drives one scheduler hard from many
// goroutines and asserts every run's result matches a serial rerun of
// the same spec. Cheap enough to run under -race, where it doubles as
// the scheduler's data-race exercise.
func TestRunnerParallelDeterminism(t *testing.T) {
	specs := []RunSpec{
		mkSampleSpec(1, 0),
		mkSampleSpec(1, 95),
		mkSampleSpec(2, 0),
		mkSampleSpec(3, 80),
	}
	par := NewRunner(4)
	var wg sync.WaitGroup
	got := make([][]*runResult, 3)
	for round := range got {
		got[round] = make([]*runResult, len(specs))
		for i, spec := range specs {
			wg.Add(1)
			go func(round, i int, spec RunSpec) {
				defer wg.Done()
				res, err := par.Do(spec)
				got[round][i] = &runResult{err: err}
				if err == nil {
					got[round][i].sig = fmt.Sprintf("%v/%v/%v", res.Elapsed, res.WorkUnits, res.EnergyJ)
				}
			}(round, i, spec)
		}
	}
	wg.Wait()

	serial := NewRunner(1)
	for i, spec := range specs {
		want, err := serial.Do(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantSig := fmt.Sprintf("%v/%v/%v", want.Elapsed, want.WorkUnits, want.EnergyJ)
		for round := range got {
			g := got[round][i]
			if g.err != nil {
				t.Fatalf("round %d spec %d: %v", round, i, g.err)
			}
			if g.sig != wantSig {
				t.Fatalf("round %d spec %d: parallel %q != serial %q", round, i, g.sig, wantSig)
			}
		}
	}
	if st := par.Stats(); st.Executed != uint64(len(specs)) {
		t.Fatalf("parallel runner executed %d runs, want %d (stats %+v)", st.Executed, len(specs), st)
	}
}

type runResult struct {
	sig string
	err error
}

func TestOptionsRejectNegativeScale(t *testing.T) {
	for _, opts := range []Options{
		{RunSeconds: -1},
		{Reps: -2},
	} {
		if _, err := Table1(opts); err == nil {
			t.Errorf("Table1(%+v) accepted negative scale", opts)
		}
		if _, err := All(opts); err == nil {
			t.Errorf("All(%+v) accepted negative scale", opts)
		}
	}
}

func TestOptionsSentinelDefaults(t *testing.T) {
	var o Options
	if err := o.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	d := DefaultOptions()
	if o.RunSeconds != d.RunSeconds || o.Reps != d.Reps || o.Seed != d.Seed {
		t.Fatalf("zero-value fill %+v != DefaultOptions %+v", o, d)
	}
	if o.Parallel < 1 || o.runner == nil {
		t.Fatalf("fillDefaults left scheduler unset: %+v", o)
	}
}

// TestAllParallelDeterminism is the tentpole's non-negotiable: All()
// must render byte-identical artifacts at any parallelism.
func TestAllParallelDeterminism(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("full-suite determinism sweep is expensive")
	}
	render := func(parallel int) []string {
		opts := quickOpts()
		opts.Parallel = parallel
		// The shard axis rides the same sweep: the serial pass advances
		// cluster nodes one at a time, the wide pass shards them 8-wide.
		opts.NodeWorkers = parallel
		// And the checkpoint/fork axis: the serial pass simulates every
		// cell from scratch, the wide pass forks shared prefixes from the
		// snapshot pool. Byte-identical renders pin forking as a pure
		// execution knob.
		opts.Forking = parallel > 1
		arts, err := All(opts)
		if err != nil {
			t.Fatalf("All(parallel=%d): %v", parallel, err)
		}
		// ext-partitions and ext-fleet are not part of All() but carry the
		// same determinism bar: identical renders at any parallelism and
		// any shard worker count.
		part, err := ExtPartitions(opts)
		if err != nil {
			t.Fatalf("ExtPartitions(parallel=%d): %v", parallel, err)
		}
		fleet, err := ExtFleet(opts)
		if err != nil {
			t.Fatalf("ExtFleet(parallel=%d): %v", parallel, err)
		}
		arts = append(arts, part, fleet)
		out := make([]string, len(arts))
		for i, a := range arts {
			out[i] = a.Render()
		}
		return out
	}
	serial := render(1)
	wide := render(8)
	if len(serial) != len(wide) {
		t.Fatalf("artifact counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Errorf("artifact %d differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				i, serial[i], wide[i])
		}
	}
}
