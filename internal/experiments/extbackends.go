package experiments

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/powercap"
	"progresscap/internal/rapl"
	"progresscap/internal/trace"
)

// ExtBackends characterizes the hardened multi-backend actuation path:
// what monitoring actually costs as the sampling rate rises, how the
// retry/failover machinery behaves as the sysfs powercap tree degrades,
// and what the node does when the actuation surface disappears outright.
//
//	A — sampling frequency × backend monitoring-cost sweep. Both
//	    backends are polled side by side at rates from 1 Hz to 100 Hz;
//	    the modeled per-sample cost (2 µs register read vs 20 µs sysfs
//	    open/read/parse) turns into a monotone overhead curve.
//	B — fault-rate sweep on the sysfs backend with the register path as
//	    failover. The cap must stay enforced (zero budget overshoot in
//	    every steady window) at every fault rate; the counters show the
//	    retry → failover escalation.
//	C — total outage: the powercap tree vanishes mid-run with no
//	    failover configured. The actuator parks the safe cap, the RAPL
//	    deadman reverts the register within one TTL, and the daemon
//	    re-establishes the cap within one epoch of the tree returning.
func ExtBackends(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}

	art := &Artifact{
		ID:    "ext-backends",
		Title: "Extension: hardened actuation backends — monitoring cost, failover, outage park",
	}

	costs, costNotes, err := backendCostSweep(opts)
	if err != nil {
		return nil, fmt.Errorf("ext-backends: cost sweep: %w", err)
	}
	faults, faultNotes, err := backendFaultSweep(opts)
	if err != nil {
		return nil, fmt.Errorf("ext-backends: fault sweep: %w", err)
	}
	outage, outageNotes, err := backendOutage(opts)
	if err != nil {
		return nil, fmt.Errorf("ext-backends: outage: %w", err)
	}

	costs.Title = "A: sampling frequency vs modeled monitoring overhead (8 s run, 100 W cap)"
	faults.Title = "B: sysfs fault-rate sweep with register failover (10 s run, 100 W cap)"
	outage.Title = "C: powercap tree offline 4 s - 5.5 s, no failover (90 W cap, 60 W safe cap, 2 s deadman TTL)"
	art.Tables = []*trace.Table{costs, faults, outage}
	art.Notes = append(art.Notes, costNotes...)
	art.Notes = append(art.Notes, faultNotes...)
	art.Notes = append(art.Notes, outageNotes...)
	return art, nil
}

// backendCostSweep runs one capped workload while polling both backends'
// energy counters at several rates, and tabulates the modeled overhead.
func backendCostSweep(opts Options) (*trace.Table, []string, error) {
	const dur = 8 * time.Second
	cfg := opts.engineConfig()
	cfg.Seed = opts.Seed
	e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
	if err != nil {
		return nil, nil, err
	}
	if err := e.SetScheme(policy.Constant{Watts: 100}); err != nil {
		return nil, nil, err
	}

	zone := powercap.NewZone(e.Device(), msr.DefaultUnits())
	msrB := rapl.NewMSRBackend(e.Device(), 10*time.Millisecond)
	sysB := powercap.NewBackend(zone)
	intervals := []time.Duration{time.Second, 250 * time.Millisecond, 50 * time.Millisecond, 10 * time.Millisecond}
	type pair struct{ m, s *rapl.Sampler }
	samplers := make([]pair, len(intervals))
	for i, iv := range intervals {
		samplers[i] = pair{rapl.NewSampler(msrB, iv), rapl.NewSampler(sysB, iv)}
		// Prime at t=0 so every rate integrates the same [0, dur] span;
		// otherwise a 1 Hz sampler loses its whole first period.
		samplers[i].m.Poll(0)
		samplers[i].s.Poll(0)
	}

	const step = 10 * time.Millisecond
	for now := step; now <= dur; now += step {
		if _, err := e.Advance(step); err != nil {
			return nil, nil, err
		}
		for i, iv := range intervals {
			if now%iv == 0 {
				samplers[i].m.Poll(now)
				samplers[i].s.Poll(now)
			}
		}
	}
	res, err := e.Finish()
	if err != nil {
		return nil, nil, err
	}

	tbl := trace.NewTable("", "Interval", "Samples", "MSR overhead (µs)", "sysfs overhead (µs)", "sysfs energy err %")
	var prevMSR, prevSys time.Duration
	monotone := true
	for i, iv := range intervals {
		mN, _, mOv := samplers[i].m.Stats()
		_, _, sOv := samplers[i].s.Stats()
		if i > 0 && (mOv <= prevMSR || sOv <= prevSys) {
			monotone = false
		}
		prevMSR, prevSys = mOv, sOv
		errPct := 100 * (samplers[i].s.TotalJ() - res.EnergyJ) / res.EnergyJ
		if errPct < 0 {
			errPct = -errPct
		}
		tbl.AddRow(iv.String(), fmt.Sprintf("%d", mN),
			fmt.Sprintf("%.0f", float64(mOv.Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", float64(sOv.Nanoseconds())/1e3),
			fmt.Sprintf("%.2f", errPct))
	}
	_, _, fastSys := samplers[len(intervals)-1].s.Stats()
	notes := []string{
		fmt.Sprintf("overhead curve monotone in sampling rate: %v; sysfs costs %dx the register read per sample;",
			monotone, powercap.DefaultSampleCost/rapl.MSRSampleCost),
		fmt.Sprintf("at 100 Hz the sysfs monitor spends %.1f ms of an %.0f s run (%.4f%%) in the kernel interface.",
			float64(fastSys.Nanoseconds())/1e6, dur.Seconds(), 100*float64(fastSys)/float64(dur)),
	}
	return tbl, notes, nil
}

// backendFaultSweep drives the constant-cap daemon through the hardened
// actuator (sysfs primary, register failover) while the powercap tree
// degrades, and checks the cap stays enforced in every steady window.
func backendFaultSweep(opts Options) (*trace.Table, []string, error) {
	const (
		dur     = 10 * time.Second
		capW    = 100.0
		settleW = 3 // windows excluded from the overshoot check
	)
	tbl := trace.NewTable("", "Fault rate", "Attempts", "Retries", "Failovers", "Parks", "Worst overshoot (W)")
	worstAll := 0.0
	var lastCounters rapl.ActuatorCounters
	for _, rate := range []float64{0, 0.10, 0.25, 0.40} {
		cfg := opts.engineConfig()
		cfg.Seed = opts.Seed
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
		if err != nil {
			return nil, nil, err
		}
		zone := powercap.NewZone(e.Device(), msr.DefaultUnits())
		if rate > 0 {
			inj := fault.NewInjector(fault.Plan{Seed: opts.Seed | 1, Powercap: &fault.PowercapPlan{
				WriteAgainRate: rate,
				WriteEIORate:   rate / 2,
				TruncateRate:   rate / 4,
				ReadAgainRate:  rate / 2,
			}})
			e.SetFaults(inj)
			zone.SetFaultHook(inj.Powercap().Hook())
		}
		act := rapl.NewActuator(rapl.ActuatorConfig{
			Backends: []rapl.Backend{
				powercap.NewBackend(zone),
				rapl.NewMSRBackend(e.Device(), 10*time.Millisecond),
			},
			Seed: opts.Seed,
		})
		if err := e.SetSchemeVia(policy.Constant{Watts: capW}, rapl.DaemonWriter{A: act}); err != nil {
			return nil, nil, err
		}
		if _, err := e.Advance(dur); err != nil {
			return nil, nil, err
		}
		res, err := e.Finish()
		if err != nil {
			return nil, nil, err
		}
		worst := 0.0
		for i := settleW; i < res.PowerTrace.Len()-1; i++ {
			if over := res.PowerTrace.At(i).V - capW; over > worst {
				worst = over
			}
		}
		if worst > worstAll {
			worstAll = worst
		}
		c := act.Counters()
		lastCounters = c
		tbl.AddRow(fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", c.Attempts), fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%d", c.Failovers), fmt.Sprintf("%d", c.Parks),
			fmt.Sprintf("%.2f", worst))
	}
	notes := []string{
		fmt.Sprintf("worst steady-window overshoot across all fault rates: %.2f W against the %.0f W cap;", worstAll, capW),
		fmt.Sprintf("at the 40%% rate the actuator absorbed %d transient errors (%d retries, %d failovers) without a park.",
			lastCounters.TransientErrs, lastCounters.Retries, lastCounters.Failovers),
	}
	return tbl, notes, nil
}

// backendOutage runs the sysfs backend with no failover, takes the
// powercap tree offline mid-run, and tabulates the enforced register cap
// window by window: park, deadman revert within one TTL, re-establish
// within one epoch of recovery.
func backendOutage(opts Options) (*trace.Table, []string, error) {
	const (
		dur      = 12 * time.Second
		capW     = 90.0
		safeCapW = 60.0
		ttl      = 2 * time.Second
	)
	goneFrom, goneTo := 4*time.Second, 5500*time.Millisecond

	cfg := opts.engineConfig()
	cfg.Seed = opts.Seed
	e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
	if err != nil {
		return nil, nil, err
	}
	zone := powercap.NewZone(e.Device(), msr.DefaultUnits())
	inj := fault.NewInjector(fault.Plan{Seed: opts.Seed | 1, Powercap: &fault.PowercapPlan{
		GoneWindows: []fault.Window{{From: goneFrom, To: goneTo}},
	}})
	e.SetFaults(inj)
	zone.SetFaultHook(inj.Powercap().Hook())

	var parks []time.Duration
	act := rapl.NewActuator(rapl.ActuatorConfig{
		Backends: []rapl.Backend{powercap.NewBackend(zone)},
		SafeCapW: safeCapW,
		Seed:     opts.Seed,
		OnPark:   func(now time.Duration, capW float64) { parks = append(parks, now) },
	})
	if err := e.SetSchemeVia(policy.Constant{Watts: capW}, rapl.DaemonWriter{A: act}); err != nil {
		return nil, nil, err
	}
	if err := e.SetDeadman(rapl.Deadman{TTL: ttl, DefaultCapW: safeCapW}); err != nil {
		return nil, nil, err
	}

	// Register ground truth per window: the decode bypasses nothing —
	// it is the same read path the plant enforces from.
	registerCap := func() float64 {
		raw, err := e.Device().Read(msr.PkgPowerLimit)
		if err != nil {
			return -1
		}
		pl1, _ := msr.DecodePowerLimits(raw, msr.DefaultUnits())
		if !pl1.Enabled {
			return 0
		}
		return pl1.Watts
	}

	tbl := trace.NewTable("", "t (s)", "Register cap (W)", "Phase")
	type sample struct {
		at  time.Duration
		cap float64
	}
	var caps []sample
	const step = 500 * time.Millisecond
	for now := step; now <= dur; now += step {
		if _, err := e.Advance(step); err != nil {
			return nil, nil, err
		}
		c := registerCap()
		caps = append(caps, sample{now, c})
		phase := "enforcing"
		switch {
		case now > goneFrom && now <= goneTo:
			phase = "tree offline"
		case c == safeCapW:
			phase = "deadman revert"
		}
		tbl.AddRow(fmt.Sprintf("%.1f", now.Seconds()), fmt.Sprintf("%.1f", c), phase)
	}
	if _, err := e.Finish(); err != nil {
		return nil, nil, err
	}

	// Safety and recovery facts the acceptance test pins.
	worstCap := 0.0
	reverted := false
	var recoveredAt time.Duration
	for _, s := range caps {
		if s.cap > worstCap {
			worstCap = s.cap
		}
		if s.cap == safeCapW && s.at >= goneFrom && s.at <= goneFrom+ttl+time.Second {
			reverted = true
		}
		if recoveredAt == 0 && s.at > goneTo && s.cap == capW {
			recoveredAt = s.at
		}
	}
	notes := []string{
		fmt.Sprintf("parks=%d (first at %v); enforced cap never exceeded the %.0f W budget cap (max %.1f W);",
			len(parks), firstPark(parks), capW, worstCap),
		fmt.Sprintf("deadman reverted to the %.0f W safe cap within one %v TTL of the outage: %v;", safeCapW, ttl, reverted),
		fmt.Sprintf("cap re-established %.1f s after the tree returned (within one %v lease TTL).",
			(recoveredAt - goneTo).Seconds(), ttl),
	}
	if !reverted || recoveredAt == 0 || recoveredAt-goneTo > ttl || worstCap > capW || len(parks) == 0 {
		return nil, nil, fmt.Errorf("outage invariants violated: parks=%d reverted=%v recoveredAt=%v worstCap=%.1f",
			len(parks), reverted, recoveredAt, worstCap)
	}
	return tbl, notes, nil
}

func firstPark(parks []time.Duration) time.Duration {
	if len(parks) == 0 {
		return 0
	}
	return parks[0]
}
