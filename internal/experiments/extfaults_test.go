package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestExtFaultsAcceptance pins the robustness criteria the fault
// extension exists to demonstrate: bounded progress error under report
// loss, no budget overshoot while blind, and crash redistribution.
func TestExtFaultsAcceptance(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("fault sweep is expensive")
	}
	art, err := ExtFaults(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(art.Tables))
	}
	sweep, trans, crash := art.Tables[0], art.Tables[1], art.Tables[2]

	// A: five drop rates; <=10% true-rate error at the 20% drop row; no
	// cap overshoot beyond the RAPL settling tolerance at any rate.
	rows := strings.Split(strings.TrimSpace(sweep.CSV()), "\n")[1:]
	if len(rows) != 5 {
		t.Fatalf("sweep rows = %d", len(rows))
	}
	for _, line := range rows {
		f := strings.Split(line, ",")
		errPct, _ := strconv.ParseFloat(f[3], 64)
		over, _ := strconv.ParseFloat(f[4], 64)
		if f[0] == "20%" && errPct > 10 {
			t.Errorf("true-rate error %v%% at 20%% drop, acceptance is <=10%%", errPct)
		}
		if over > 120*0.05 {
			t.Errorf("drop %s: cap overshoot %v W", f[0], over)
		}
	}

	// B: the blackout must show degraded-mode engage AND disengage.
	tcsv := trans.CSV()
	if !strings.Contains(tcsv, "degraded") {
		t.Error("no degraded-mode engagement recorded")
	}
	if !strings.Contains(tcsv, "-> normal") {
		t.Error("signal never re-trusted after the blackout")
	}

	// C: exactly one fenced node, and the quarantine cap on it.
	ccsv := strings.Split(strings.TrimSpace(crash.CSV()), "\n")[1:]
	fenced := 0
	for _, line := range ccsv {
		f := strings.Split(line, ",")
		if f[1] == "fenced" {
			fenced++
			if f[0] != "n1" {
				t.Errorf("fenced node %s, want n1", f[0])
			}
			capW, _ := strconv.ParseFloat(f[2], 64)
			if capW != 40 {
				t.Errorf("fenced node cap %v W, want the 40 W quarantine", capW)
			}
		}
	}
	if fenced != 1 {
		t.Errorf("fenced nodes = %d, want 1", fenced)
	}

	// The notes carry the headline numbers.
	if len(art.Notes) != 3 {
		t.Fatalf("notes = %d", len(art.Notes))
	}
}
