//go:build race

package experiments

const raceDetector = true
