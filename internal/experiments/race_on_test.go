//go:build race

package experiments

import "testing"

const raceDetector = true

// TestSchedulerRenderUnderRace renders one simulation-backed artifact
// through a wide scheduler and a serial one under the race detector and
// asserts byte-identical output. The heavyweight determinism sweep
// (TestAllParallelDeterminism) is skipped under -race; this keeps the
// scheduler's concurrent claim/execute/collect paths race-exercised on
// every tier-1 run.
func TestSchedulerRenderUnderRace(t *testing.T) {
	render := func(parallel int) string {
		opts := quickOpts()
		opts.Parallel = parallel
		art, err := Table1(opts)
		if err != nil {
			t.Fatalf("Table1(parallel=%d): %v", parallel, err)
		}
		return art.Render()
	}
	if serial, wide := render(1), render(8); serial != wide {
		t.Fatalf("Table1 render differs between -parallel 1 and 8:\n%s\n---\n%s", serial, wide)
	}
}
