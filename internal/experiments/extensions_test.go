package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtAlphaFitImprovesHeldOutError(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("alpha-fit sweep is expensive")
	}
	art, err := ExtAlphaFit(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	csv := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	if len(csv) != 4 {
		t.Fatalf("rows = %d", len(csv))
	}
	improved := 0
	for _, line := range csv {
		f := strings.Split(line, ",")
		alpha, _ := strconv.ParseFloat(f[1], 64)
		fixed, _ := strconv.ParseFloat(f[2], 64)
		fitted, _ := strconv.ParseFloat(f[3], 64)
		if alpha < 1 || alpha > 4 {
			t.Errorf("%s: fitted α = %v outside [1,4]", f[0], alpha)
		}
		if fitted <= fixed {
			improved++
		}
	}
	if improved < 3 {
		t.Errorf("fitted α improved only %d of 4 applications", improved)
	}
}

func TestExtTechniquesShapes(t *testing.T) {
	skipIfRace(t)
	art, err := ExtTechniques(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if art.Tables[0].NumRows() != 12 {
		t.Fatalf("rows = %d", art.Tables[0].NumRows())
	}
	// Parse into per-app per-technique points.
	type pt struct{ power, norm float64 }
	points := map[string][]pt{}
	for _, line := range strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:] {
		f := strings.Split(line, ",")
		p, _ := strconv.ParseFloat(f[3], 64)
		n, _ := strconv.ParseFloat(f[4], 64)
		key := f[0] + "/" + f[1]
		points[key] = append(points[key], pt{p, n})
		if n <= 0 || n > 1.05 {
			t.Errorf("%s %s: normalized progress %v out of range", f[0], f[2], n)
		}
	}
	// Within each technique, less power → less progress.
	for key, pts := range points {
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", key, len(pts))
		}
		hi, lo := pts[0], pts[1]
		if hi.power < lo.power {
			hi, lo = lo, hi
		}
		if lo.norm >= hi.norm {
			t.Errorf("%s: progress did not fall with power (%v@%vW vs %v@%vW)",
				key, hi.norm, hi.power, lo.norm, lo.power)
		}
	}
}

func TestExtCompositeTracksCap(t *testing.T) {
	art, err := ExtComposite(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := strings.Split(rows[2], ",")
	if !strings.Contains(last[0], "composite") {
		t.Fatalf("last row = %q", rows[2])
	}
	corr, _ := strconv.ParseFloat(last[2], 64)
	if corr < 0.6 {
		t.Fatalf("composite correlation %v too weak", corr)
	}
}

func TestExtMethodAgreement(t *testing.T) {
	skipIfRace(t)
	art, err := ExtMethod(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, line := range rows {
		f := strings.Split(line, ",")
		dis, _ := strconv.ParseFloat(f[3], 64)
		if dis > 15 {
			t.Errorf("cap %s: methods disagree by %v%%", f[0], dis)
		}
	}
}

func TestExtEnergyShapes(t *testing.T) {
	skipIfRace(t)
	art, err := ExtEnergy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Within each application, time grows monotonically as the cap
	// tightens (rows are ordered none → 60 W).
	for app := 0; app < 2; app++ {
		prev := 0.0
		for i := 0; i < 6; i++ {
			f := strings.Split(rows[app*6+i], ",")
			tm, _ := strconv.ParseFloat(f[2], 64)
			if tm < prev {
				t.Errorf("%s: time fell as cap tightened (%v after %v)", f[0], tm, prev)
			}
			prev = tm
		}
	}
}

func TestExtClusterEqualizesProgress(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("cluster sweep is expensive")
	}
	art, err := ExtCluster(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(art.Tables[0].CSV()), "\n")[1:]
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rows come in (equal, aware) pairs per budget: aware must not lower
	// min-progress and must shrink the spread.
	for i := 0; i < len(rows); i += 2 {
		eq := strings.Split(rows[i], ",")
		aw := strings.Split(rows[i+1], ",")
		eqMin, _ := strconv.ParseFloat(eq[2], 64)
		awMin, _ := strconv.ParseFloat(aw[2], 64)
		eqSpread, _ := strconv.ParseFloat(eq[4], 64)
		awSpread, _ := strconv.ParseFloat(aw[4], 64)
		if awMin < eqMin-0.005 {
			t.Errorf("budget %s: aware min %v below equal %v", eq[1], awMin, eqMin)
		}
		if awSpread >= eqSpread {
			t.Errorf("budget %s: aware spread %v not below equal %v", eq[1], awSpread, eqSpread)
		}
	}
}
