package experiments

import (
	"testing"
)

// TestMacroFixedTickEquivalence is the macro-stepping engine's
// non-negotiable: every generator in the harness — the full paper suite
// plus every extension, including the faulted (ext-faults, ext-crashes)
// and partitioned (ext-partitions) scenarios — must render byte-identical
// artifacts whether the engines inside advance event-to-event or walk the
// fixed 100µs tick grid. It is the companion of
// TestAllParallelDeterminism: that one pins the scheduler, this one pins
// the integrator.
func TestMacroFixedTickEquivalence(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("dual-mode full-suite sweep is expensive")
	}
	type gen struct {
		name string
		fn   func(Options) (*Artifact, error)
	}
	gens := []gen{
		{"ext-alpha", ExtAlphaFit},
		{"ext-techniques", ExtTechniques},
		{"ext-composite", ExtComposite},
		{"ext-energy", ExtEnergy},
		{"ext-cluster", ExtCluster},
		{"ext-method", ExtMethod},
		{"ext-faults", ExtFaults},
		{"ext-crashes", ExtCrashes},
		{"ext-partitions", ExtPartitions},
	}
	render := func(fixed bool) []string {
		opts := quickOpts()
		opts.FixedTick = fixed
		// Both passes run with checkpoint/fork prefix reuse enabled, so
		// this oracle also pins that forking preserves macro/fixed-tick
		// equivalence across the whole suite.
		opts.Forking = true
		arts, err := All(opts)
		if err != nil {
			t.Fatalf("All(FixedTick=%v): %v", fixed, err)
		}
		out := make([]string, 0, len(arts)+len(gens))
		for _, a := range arts {
			out = append(out, a.Render())
		}
		for _, g := range gens {
			a, err := g.fn(opts)
			if err != nil {
				t.Fatalf("%s(FixedTick=%v): %v", g.name, fixed, err)
			}
			out = append(out, a.Render())
		}
		return out
	}
	macro := render(false)
	fixed := render(true)
	if len(macro) != len(fixed) {
		t.Fatalf("artifact counts differ: %d vs %d", len(macro), len(fixed))
	}
	for i := range macro {
		if macro[i] != fixed[i] {
			t.Errorf("artifact %d differs between macro and fixed-tick mode:\n--- macro ---\n%s\n--- fixed-tick ---\n%s",
				i, macro[i], fixed[i])
		}
	}
}
