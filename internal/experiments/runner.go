package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"progresscap/internal/engine"
	"progresscap/internal/policy"
	"progresscap/internal/simtime"
	"progresscap/internal/workload"
)

// RunSpec describes one independent measurement run: a workload executed
// under either a capping scheme (DVFSMHz == 0) or a pinned DVFS operating
// point (DVFSMHz > 0), from a given seed, for at most MaxSeconds of
// virtual time.
//
// Make must build a fresh *workload.Workload on every call: application
// generators carry per-instance closure state (the shared-jitter draws),
// so a single instance must never be executed by two runs concurrently.
// The Runner calls Make once to fingerprint the spec and once per actual
// execution.
type RunSpec struct {
	Make       func() *workload.Workload
	Scheme     policy.Scheme // nil = uncapped; ignored when DVFSMHz > 0
	DVFSMHz    float64
	Seed       uint64
	MaxSeconds float64
	// Invariants arms the engine invariant checker for this run. It is
	// part of the memoization key: an invariant-checked run can fail where
	// an unchecked one succeeds.
	Invariants bool
	// FixedTick runs the engine in fixed-tick oracle mode (see
	// engine.Config.FixedTick). Part of the memoization key so the
	// differential test never collapses the two modes onto one cached
	// result.
	FixedTick bool
}

// key returns the canonical memoization key: a fingerprint of the
// workload's construction (name, metric, ranks, phase structure, and
// generator output probed at fixed corner coordinates with a fixed RNG)
// combined with the operating point, seed, and duration. Two specs with
// equal keys describe byte-identical simulations.
func (s RunSpec) key() string {
	h := fnv.New64a()
	var scratch [8]byte
	put64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	putF := func(f float64) { put64(math.Float64bits(f)) }
	putS := func(str string) {
		put64(uint64(len(str)))
		h.Write([]byte(str))
	}

	w := s.Make()
	putS(w.Name)
	putS(w.Metric)
	put64(uint64(w.Ranks))
	// Probe each phase's generator at corner coordinates with a fixed,
	// throwaway RNG: deterministic per construction, and sensitive to any
	// parameter (jitter amplitude, segment split) the declarative fields
	// don't expose. Rank 0 is probed first within each iteration because
	// the shared-jitter closures re-draw there, resetting their state.
	probeRNG := simtime.NewRNG(0x9e3779b97f4a7c15)
	for _, p := range w.Phases {
		putS(p.Name)
		put64(uint64(p.Iterations))
		putF(p.ProgressPerIter)
		iters := []int{0}
		if p.Iterations > 1 {
			iters = append(iters, p.Iterations-1)
		}
		ranks := []int{0}
		if w.Ranks > 1 {
			ranks = append(ranks, 1, w.Ranks-1)
		}
		for _, it := range iters {
			for _, r := range ranks {
				seg := p.Gen(r, it, probeRNG)
				putF(seg.ComputeCycles)
				putF(seg.MemSeconds)
				putF(seg.SleepSeconds)
				putF(seg.Instructions)
				putF(seg.L3Misses)
				putF(seg.BWShare)
				putF(seg.WorkUnits)
			}
		}
	}

	if s.DVFSMHz > 0 {
		putS("dvfs")
		putF(s.DVFSMHz)
	} else if s.Scheme != nil {
		putS(fmt.Sprintf("%T%+v", s.Scheme, s.Scheme))
	} else {
		putS("uncapped")
	}
	put64(s.Seed)
	putF(s.MaxSeconds)
	if s.Invariants {
		put64(1)
	} else {
		put64(0)
	}
	if s.FixedTick {
		put64(1)
	} else {
		put64(0)
	}
	return fmt.Sprintf("%s/%016x", w.Name, h.Sum64())
}

// runEntry is one memoized run: created exactly once per key, its done
// channel closes when the result is available.
type runEntry struct {
	done       chan struct{}
	res        *engine.Result
	err        error
	prefetched bool
}

// RunnerStats is a point-in-time snapshot of scheduler effectiveness.
type RunnerStats struct {
	Executed    uint64 // simulations actually run
	CacheHits   uint64 // Do calls served from a memoized or in-flight run
	PeakWorkers int    // maximum simulations in flight at once
}

// Runner fans independent experiment runs over a bounded worker pool and
// memoizes completed runs by canonical run key, so a baseline shared
// between artifacts (the uncapped LAMMPS/STREAM runs behind Table 6,
// Fig 1, and Fig 4) simulates once per suite.
//
// Results returned by Do are shared between all callers with the same
// key and must be treated as read-only.
type Runner struct {
	sem chan struct{}

	mu      sync.Mutex
	entries map[string]*runEntry

	executed atomic.Uint64
	hits     atomic.Uint64
	active   atomic.Int64
	peak     atomic.Int64
}

// NewRunner returns a Runner executing at most parallel simulations at
// once; parallel <= 0 means GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:     make(chan struct{}, parallel),
		entries: make(map[string]*runEntry),
	}
}

// Parallel returns the worker-pool bound.
func (r *Runner) Parallel() int { return cap(r.sem) }

// Stats returns the scheduler counters accumulated so far.
func (r *Runner) Stats() RunnerStats {
	return RunnerStats{
		Executed:    r.executed.Load(),
		CacheHits:   r.hits.Load(),
		PeakWorkers: int(r.peak.Load()),
	}
}

// claim returns the entry for key, creating it if needed; created is true
// when this caller must execute the run.
func (r *Runner) claim(key string, prefetch bool) (e *runEntry, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		return e, false
	}
	e = &runEntry{done: make(chan struct{}), prefetched: prefetch}
	r.entries[key] = e
	return e, true
}

// Do executes the spec — or waits for / returns the memoized result of an
// identical run. It blocks until the result is available.
func (r *Runner) Do(spec RunSpec) (*engine.Result, error) {
	key := spec.key()
	e, created := r.claim(key, false)
	if created {
		r.execute(spec, e)
	} else {
		// A generator prefetching its own runs and then collecting them is
		// plumbing, not cache effectiveness; only count hits beyond the
		// first collection of a prefetched run.
		r.mu.Lock()
		if e.prefetched {
			e.prefetched = false
		} else {
			r.hits.Add(1)
		}
		r.mu.Unlock()
	}
	<-e.done
	return e.res, e.err
}

// Prefetch schedules the spec asynchronously so a later Do returns
// immediately. Specs already scheduled or completed are left alone.
// Unlike Do with a captured workload, Prefetch strictly requires Make to
// build a fresh instance per call (the run executes on another goroutine).
func (r *Runner) Prefetch(spec RunSpec) {
	key := spec.key()
	e, created := r.claim(key, true)
	if !created {
		return
	}
	go r.execute(spec, e)
}

// execute runs the simulation under the worker-pool bound and publishes
// the result.
func (r *Runner) execute(spec RunSpec, e *runEntry) {
	r.sem <- struct{}{}
	if n := r.active.Add(1); n > r.peak.Load() {
		// Benign race on the max: two concurrent updates both exceed the
		// old peak; CAS-loop so the larger one wins.
		for {
			old := r.peak.Load()
			if n <= old || r.peak.CompareAndSwap(old, n) {
				break
			}
		}
	}
	defer func() {
		r.active.Add(-1)
		<-r.sem
		close(e.done)
	}()

	e.res, e.err = runOnce(spec)
	r.executed.Add(1)
}

// runOnce performs one simulation from scratch: the single execution path
// every experiment run in the package flows through, so all of them use
// the same node configuration.
func runOnce(spec RunSpec) (*engine.Result, error) {
	cfg := engine.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.FixedTick = spec.FixedTick
	eng, err := engine.New(cfg, spec.Make())
	if err != nil {
		return nil, err
	}
	if spec.Invariants {
		eng.EnableInvariants(engine.InvariantConfig{})
	}
	switch {
	case spec.DVFSMHz > 0:
		eng.SetManualDVFS(spec.DVFSMHz)
	case spec.Scheme != nil:
		if err := eng.SetScheme(spec.Scheme); err != nil {
			return nil, err
		}
	}
	res, err := eng.Run(time.Duration(spec.MaxSeconds * float64(time.Second)))
	if err != nil {
		return nil, err
	}
	return res, invariantErr(eng)
}
