package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"progresscap/internal/cluster"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/policy"
	"progresscap/internal/rapl"
	"progresscap/internal/spec"
	"progresscap/internal/workload"
)

// RunSpec describes one independent measurement run: a workload executed
// under either a capping scheme (DVFSMHz == 0) or a pinned DVFS operating
// point (DVFSMHz > 0), from a given seed, for at most MaxSeconds of
// virtual time.
//
// Make must build a fresh *workload.Workload on every call: application
// generators carry per-instance closure state (the shared-jitter draws),
// so a single instance must never be executed by two runs concurrently.
// The Runner calls Make once to fingerprint the spec and once per actual
// execution.
type RunSpec struct {
	Make       func() *workload.Workload
	Scheme     policy.Scheme // nil = uncapped; ignored when DVFSMHz > 0
	DVFSMHz    float64
	Seed       uint64
	MaxSeconds float64
	// Invariants arms the engine invariant checker for this run. It is
	// part of the memoization key: an invariant-checked run can fail where
	// an unchecked one succeeds.
	Invariants bool
	// FixedTick runs the engine in fixed-tick oracle mode (see
	// engine.Config.FixedTick). Part of the memoization key so the
	// differential test never collapses the two modes onto one cached
	// result.
	FixedTick bool
	// Faults is the run's fault plan; a disabled (zero) plan runs the
	// engine faultless. Part of the memoization key: a faulted run and a
	// clean run are different runs.
	Faults fault.Plan
	// Backend selects the actuation path: "" or "msr" drives the scheme
	// through the legacy register daemon (byte-identical to pre-backend
	// runs), "sysfs" routes it through the hardened actuator over the
	// emulated powercap tree (with the MSR path as failover). Part of the
	// memoization key: sysfs floors caps where the MSR path rounds.
	Backend string
	// Forking enables prefix reuse: the run resumes from the deepest
	// pooled checkpoint whose prefix fingerprint matches and publishes
	// its own whole-second prefixes for later cells (see fork.go). An
	// execution knob like NodeWorkers — wall-clock only, results are
	// byte-identical — so it is deliberately NOT part of the
	// memoization key or the disk-cache fingerprint.
	Forking bool
}

// backend returns the normalized backend name: the explicit "msr"
// spelling collapses to the default so both key and behave identically.
func (s RunSpec) backend() string {
	if s.Backend == "msr" {
		return ""
	}
	return s.Backend
}

// operatingKey renders the run's operating point for the fingerprint:
// "dvfs:<mhz>", "scheme:<type+params>", or "uncapped". The %T+%+v scheme
// rendering is exhaustive over the concrete policy types, all of which
// are flat parameter structs.
func (s RunSpec) operatingKey() string {
	switch {
	case s.DVFSMHz > 0:
		return fmt.Sprintf("dvfs:%g", s.DVFSMHz)
	case s.Scheme != nil:
		return fmt.Sprintf("scheme:%T%+v", s.Scheme, s.Scheme)
	default:
		return "uncapped"
	}
}

// key returns the canonical memoization key: the content hash of the
// run's spec.RunFingerprint — the workload's construction fingerprint
// (declarative fields plus generator corner probes) combined with the
// operating point, seed, duration, mode flags, and fault plan. Two specs
// with equal keys describe byte-identical simulations, and the same hash
// names the run in the shared disk cache, so suite runs and CI converge
// on one copy of each result.
func (s RunSpec) key() string {
	w := s.Make()
	fp := spec.RunFingerprint{
		Version:    spec.Version,
		Workload:   spec.FingerprintWorkload(w),
		Operating:  s.operatingKey(),
		Seed:       s.Seed,
		MaxSeconds: s.MaxSeconds,
		Invariants: s.Invariants,
		FixedTick:  s.FixedTick,
	}
	if s.Faults.Enabled() {
		plan := s.Faults
		fp.Faults = &plan
	}
	fp.Backend = s.backend()
	return fmt.Sprintf("%s/%s", w.Name, fp.Hash())
}

// runEntry is one memoized run: created exactly once per key, its done
// channel closes when the result is available.
type runEntry struct {
	done       chan struct{}
	res        *engine.Result
	err        error
	prefetched bool
}

// RunnerStats is a point-in-time snapshot of scheduler effectiveness.
type RunnerStats struct {
	Executed    uint64 // simulations actually run
	CacheHits   uint64 // Do calls served from a memoized or in-flight run
	DiskHits    uint64 // runs served from the disk cache instead of executing
	PeakWorkers int    // maximum simulations in flight at once
	// Shards aggregates the intra-epoch node-advancement pools of every
	// cluster-level generator that ran through this Runner's suite (see
	// Runner.RecordShards); zero when no cluster generator ran.
	Shards cluster.ShardStats
	// Actuation aggregates hardened-actuator counters (retries,
	// failovers, parks, virtual backoff) across every executed run that
	// actuated through a backend; zero when only legacy-path runs
	// executed. Cached runs contribute nothing — these are execution
	// statistics, not result content.
	Actuation rapl.ActuatorCounters
	// ForkRuns counts executed runs that ran with prefix forking
	// enabled, ForkHits those that actually resumed from a pooled
	// snapshot, and ForkSkippedSec the virtual seconds those resumes
	// skipped re-simulating. Execution statistics, like Actuation.
	ForkRuns       uint64
	ForkHits       uint64
	ForkSkippedSec uint64
}

// Runner fans independent experiment runs over a bounded worker pool and
// memoizes completed runs by canonical run key, so a baseline shared
// between artifacts (the uncapped LAMMPS/STREAM runs behind Table 6,
// Fig 1, and Fig 4) simulates once per suite.
//
// Results returned by Do are shared between all callers with the same
// key and must be treated as read-only.
type Runner struct {
	sem chan struct{}

	mu      sync.Mutex
	entries map[string]*runEntry

	// cacheDir, when non-empty, backs the memo table with a disk cache
	// keyed by the run's content hash (see EnableDiskCache).
	cacheDir string

	executed atomic.Uint64
	hits     atomic.Uint64
	diskHits atomic.Uint64
	active   atomic.Int64
	peak     atomic.Int64

	// pool holds prefix checkpoints for Forking runs (see fork.go).
	pool        *snapshotPool
	forkRuns    atomic.Uint64
	forkHits    atomic.Uint64
	forkSkipSec atomic.Uint64

	shardMu sync.Mutex
	shards  cluster.ShardStats

	actMu     sync.Mutex
	actuation rapl.ActuatorCounters
}

// NewRunner returns a Runner executing at most parallel simulations at
// once; parallel <= 0 means GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:     make(chan struct{}, parallel),
		entries: make(map[string]*runEntry),
		pool:    newSnapshotPool(defaultPoolBytes),
	}
}

// Parallel returns the worker-pool bound.
func (r *Runner) Parallel() int { return cap(r.sem) }

// Stats returns the scheduler counters accumulated so far.
func (r *Runner) Stats() RunnerStats {
	r.shardMu.Lock()
	shards := r.shards
	r.shardMu.Unlock()
	r.actMu.Lock()
	actuation := r.actuation
	r.actMu.Unlock()
	return RunnerStats{
		Executed:       r.executed.Load(),
		CacheHits:      r.hits.Load(),
		DiskHits:       r.diskHits.Load(),
		PeakWorkers:    int(r.peak.Load()),
		Shards:         shards,
		Actuation:      actuation,
		ForkRuns:       r.forkRuns.Load(),
		ForkHits:       r.forkHits.Load(),
		ForkSkippedSec: r.forkSkipSec.Load(),
	}
}

// RecordActuation folds one actuator's counters into the suite totals
// (runs execute concurrently, hence the lock). Experiments that build
// their own actuators outside Do also report through this, so parks and
// failovers always reach the scheduler summary.
func (r *Runner) RecordActuation(c rapl.ActuatorCounters) {
	r.actMu.Lock()
	r.actuation.Merge(c)
	r.actMu.Unlock()
}

// RecordShards folds one cluster's shard-pool counters into the suite
// totals (generators run concurrently, hence the lock). Cluster steps
// don't flow through Do — each manager owns its own pool — so this is
// how their parallelism shows up in the scheduler summary.
func (r *Runner) RecordShards(s cluster.ShardStats) {
	r.shardMu.Lock()
	r.shards.Merge(s)
	r.shardMu.Unlock()
}

// claim returns the entry for key, creating it if needed; created is true
// when this caller must execute the run.
func (r *Runner) claim(key string, prefetch bool) (e *runEntry, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		return e, false
	}
	e = &runEntry{done: make(chan struct{}), prefetched: prefetch}
	r.entries[key] = e
	return e, true
}

// Do executes the spec — or waits for / returns the memoized result of an
// identical run. It blocks until the result is available.
func (r *Runner) Do(spec RunSpec) (*engine.Result, error) {
	key := spec.key()
	e, created := r.claim(key, false)
	if created {
		r.execute(spec, key, e)
	} else {
		// A generator prefetching its own runs and then collecting them is
		// plumbing, not cache effectiveness; only count hits beyond the
		// first collection of a prefetched run.
		r.mu.Lock()
		if e.prefetched {
			e.prefetched = false
		} else {
			r.hits.Add(1)
		}
		r.mu.Unlock()
	}
	<-e.done
	return e.res, e.err
}

// Prefetch schedules the spec asynchronously so a later Do returns
// immediately. Specs already scheduled or completed are left alone.
// Unlike Do with a captured workload, Prefetch strictly requires Make to
// build a fresh instance per call (the run executes on another goroutine).
func (r *Runner) Prefetch(spec RunSpec) {
	key := spec.key()
	e, created := r.claim(key, true)
	if !created {
		return
	}
	go r.execute(spec, key, e)
}

// execute runs the simulation under the worker-pool bound and publishes
// the result, consulting the disk cache (when enabled) first.
func (r *Runner) execute(spec RunSpec, key string, e *runEntry) {
	r.sem <- struct{}{}
	if n := r.active.Add(1); n > r.peak.Load() {
		// Benign race on the max: two concurrent updates both exceed the
		// old peak; CAS-loop so the larger one wins.
		for {
			old := r.peak.Load()
			if n <= old || r.peak.CompareAndSwap(old, n) {
				break
			}
		}
	}
	defer func() {
		r.active.Add(-1)
		<-r.sem
		close(e.done)
	}()

	if res, ok := r.loadCached(key); ok {
		e.res = res
		r.diskHits.Add(1)
		return
	}
	var act *rapl.ActuatorCounters
	if spec.Forking {
		e.res, act, e.err = r.runForked(spec)
	} else {
		e.res, act, e.err = runOnce(spec)
	}
	if act != nil {
		r.RecordActuation(*act)
	}
	r.executed.Add(1)
	if e.err == nil {
		r.saveCached(key, e.res)
	}
}

// runOnce performs one simulation from scratch: the construction lives
// in build (shared with the forking path, so a resumed engine is wired
// exactly like a scratch one). The returned counters are non-nil only
// when the run actuated through the hardened backend layer.
func runOnce(spec RunSpec) (*engine.Result, *rapl.ActuatorCounters, error) {
	b, err := build(spec)
	if err != nil {
		return nil, nil, err
	}
	res, err := b.eng.Run(time.Duration(spec.MaxSeconds * float64(time.Second)))
	if err != nil {
		return nil, nil, err
	}
	return b.finish(res)
}
