package experiments

// Extensions beyond the paper's published artifacts, implementing the
// improvements its discussion and future-work sections call for:
//
//	ExtAlphaFit   — fit α per application instead of fixing α=2 (§VI-3:
//	                "this value varies between 1 and 4")
//	ExtTechniques — compare RAPL, plain DVFS, and DDCM as power-limiting
//	                techniques (§II lists all three as NRM knobs)
//	ExtComposite  — weighted multi-component progress for the Category 3
//	                URBAN workload (§VI-3 / §VIII future work)
//	ExtCluster    — job-level power division across nodes driven by
//	                online progress (the §II Argo motivation)

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/composite"
	"progresscap/internal/engine"
	"progresscap/internal/model"
	"progresscap/internal/policy"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// ExtAlphaFit fits α on a calibration half of the cap sweep and
// evaluates both the paper's fixed α=2 model and the fitted model on
// held-out caps.
func ExtAlphaFit(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	calibCaps := []float64{160, 120, 80}
	evalCaps := []float64{140, 100, 65}

	tbl := trace.NewTable("", "Application", "Fitted α", "Held-out err % (α=2)", "Held-out err % (fitted)")
	cases := characterizable(opts)
	order := []int{3, 2, 0, 4} // LAMMPS, AMG, QMCPACK, STREAM
	// Characterizations here match Table 6's specs exactly, so under a
	// shared runner they come straight from cache.
	for _, idx := range order {
		c := cases[idx]
		fast, slow := opts.charSpecs(c.mk, opts.Seed, opts.RunSeconds*4)
		opts.rn().Prefetch(fast)
		opts.rn().Prefetch(slow)
		for _, capW := range append(append([]float64(nil), calibCaps...), evalCaps...) {
			opts.rn().Prefetch(opts.capSpec(c.mk, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
		}
	}
	var fixedErrs, fittedErrs []float64
	for _, idx := range order {
		c := cases[idx]
		beta, _, baseRate, basePkgW, err := opts.characterize(c.mk, opts.Seed, opts.RunSeconds*4)
		if err != nil {
			return nil, fmt.Errorf("ext-alpha: %s: %w", c.name, err)
		}
		base, err := model.FromBaseline(beta, baseRate, basePkgW)
		if err != nil {
			return nil, fmt.Errorf("ext-alpha: %s: %w", c.name, err)
		}
		measure := func(capW float64) (float64, error) {
			res, err := opts.rn().Do(opts.capSpec(c.mk, policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds))
			if err != nil {
				return 0, err
			}
			return stats.Mean(steadyRates(res, 2)), nil
		}
		var pts []model.CalibrationPoint
		for _, capW := range calibCaps {
			r, err := measure(capW)
			if err != nil {
				return nil, err
			}
			pts = append(pts, model.CalibrationPoint{PkgCapW: capW, Rate: r})
		}
		fitted, err := model.FitAlpha(base, pts)
		if err != nil {
			return nil, err
		}
		var fixedErr, fittedErr []float64
		for _, capW := range evalCaps {
			r, err := measure(capW)
			if err != nil {
				return nil, err
			}
			fixedErr = append(fixedErr, stats.RelErrPct(r, base.PredictProgress(capW)))
			fittedErr = append(fittedErr, stats.RelErrPct(r, fitted.PredictProgress(capW)))
		}
		fe, te := stats.Mean(fixedErr), stats.Mean(fittedErr)
		fixedErrs = append(fixedErrs, fe)
		fittedErrs = append(fittedErrs, te)
		tbl.AddRow(c.name, fmt.Sprintf("%.2f", fitted.Alpha),
			fmt.Sprintf("%.1f", fe), fmt.Sprintf("%.1f", te))
	}
	return &Artifact{
		ID:     "ext-alpha",
		Title:  "Extension: per-application fitted α vs the paper's fixed α=2",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			fmt.Sprintf("mean held-out progress-prediction error: %.1f%% (α=2) → %.1f%% (fitted α)",
				stats.Mean(fixedErrs), stats.Mean(fittedErrs)),
		},
	}, nil
}

// ExtTechniques compares the three node-level power-limiting knobs the
// paper's NRM has (§II): RAPL capping, plain DVFS, and DDCM, on both a
// compute-bound and a memory-bound code.
func ExtTechniques(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	tbl := trace.NewTable("", "Application", "Technique", "Setting", "Power (W)", "Progress (norm.)")
	mk := map[string]func() *workload.Workload{
		"LAMMPS": func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, int(opts.RunSeconds*30)) },
		"STREAM": func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, int(opts.RunSeconds*24)) },
	}
	for _, appName := range []string{"LAMMPS", "STREAM"} {
		baseRes, err := opts.runDVFS(mk[appName](), 3300, opts.Seed, opts.RunSeconds)
		if err != nil {
			return nil, err
		}
		base := stats.Mean(steadyRates(baseRes, 1))

		add := func(tech, setting string, res *engine.Result) {
			tbl.AddRow(appName, tech, setting,
				trace.Formatted(meanSteadyPower(res, 2)),
				fmt.Sprintf("%.3f", stats.Mean(steadyRates(res, 2))/base))
		}
		for _, capW := range []float64{130, 90} {
			res, err := opts.run(mk[appName](), policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds)
			if err != nil {
				return nil, err
			}
			add("RAPL", fmt.Sprintf("cap %.0f W", capW), res)
		}
		for _, mhz := range []float64{2300, 1400} {
			res, err := opts.runDVFS(mk[appName](), mhz, opts.Seed, opts.RunSeconds)
			if err != nil {
				return nil, err
			}
			add("DVFS", fmt.Sprintf("%.0f MHz", mhz), res)
		}
		for _, duty := range []float64{0.75, 0.5} {
			cfg := opts.engineConfig()
			cfg.Seed = opts.Seed
			e, err := engine.New(cfg, mk[appName]())
			if err != nil {
				return nil, err
			}
			e.SetManualDDCM(duty)
			res, err := e.Run(time.Duration(opts.RunSeconds*6) * time.Second)
			if err != nil {
				return nil, err
			}
			add("DDCM", fmt.Sprintf("duty %.2f", duty), res)
		}
	}
	return &Artifact{
		ID:     "ext-techniques",
		Title:  "Extension: power-limiting techniques compared (RAPL / DVFS / DDCM)",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"DDCM gates the whole pipeline, so it costs the most progress per watt saved;",
			"DVFS is gentlest for memory-bound code; RAPL trades progress for exact",
			"budget enforcement.",
		},
	}, nil
}

// ExtComposite monitors the Category 3 URBAN workload with the weighted
// multi-component progress metric the paper proposes as future work, and
// shows the combined metric follows a dynamic cap even though neither
// component alone is a reliable job-level metric.
func ExtComposite(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	secs := opts.RunSeconds * 2
	if secs < 24 {
		secs = 24
	}
	runURBAN := func(scheme policy.Scheme, dur float64) (*engine.Result, error) {
		nek, eplus := apps.URBANComponents(dur)
		e, err := engine.NewMulti(opts.engineConfig(), nek, eplus)
		if err != nil {
			return nil, err
		}
		if scheme != nil {
			if err := e.SetScheme(scheme); err != nil {
				return nil, err
			}
		}
		return e.Run(time.Duration(dur*6) * time.Second)
	}

	calib, err := runURBAN(nil, secs)
	if err != nil {
		return nil, fmt.Errorf("ext-composite: calibration: %w", err)
	}
	base := composite.BaselinesFrom(calib)
	metric, err := composite.NewMetric(
		composite.Component{Name: "nek5000", Weight: 2, Baseline: base["nek5000"]},
		composite.Component{Name: "energyplus", Weight: 1, Baseline: base["energyplus"]},
	)
	if err != nil {
		return nil, err
	}

	scheme := policy.Step{HighW: policy.Uncapped, LowW: 85, HighFor: 10 * time.Second, LowFor: 10 * time.Second}
	capped, err := runURBAN(scheme, secs*2)
	if err != nil {
		return nil, fmt.Errorf("ext-composite: capped run: %w", err)
	}
	series, err := metric.Series(capped)
	if err != nil {
		return nil, err
	}

	// Correlate composite progress (and each raw component) with the cap.
	capsAt := func(at time.Duration) float64 {
		v, ok := capped.CapTrace.ValueAt(at - time.Millisecond)
		if !ok || v == policy.Uncapped {
			return 200
		}
		return v
	}
	var capVals, compVals []float64
	for _, p := range series.Points() {
		capVals = append(capVals, capsAt(p.T))
		compVals = append(compVals, p.V)
	}
	compCorr := stats.Pearson(capVals, compVals)

	tbl := trace.NewTable("", "Stream", "Baseline", "corr(cap, smoothed rate)")
	for _, j := range capped.Jobs {
		sm := stats.MovingAvg(j.Rates(), 5)
		var cv, rv []float64
		for i, s := range j.Samples {
			cv = append(cv, capsAt(s.At))
			rv = append(rv, sm[i])
		}
		tbl.AddRow(j.Workload, trace.Formatted(base[j.Workload]),
			fmt.Sprintf("%.2f", stats.Pearson(cv, rv)))
	}
	tbl.AddRow("composite (2:1 weighted)", "1.00", fmt.Sprintf("%.2f", compCorr))

	art := &Artifact{
		ID:     "ext-composite",
		Title:  "Extension: weighted multi-component progress for URBAN (Category 3)",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"cap       " + trace.Sparkline(capVals),
			"composite " + trace.Sparkline(compVals),
			"Neither component is a job-level metric on its own (Nek5000's steps are",
			"nonuniform; EnergyPlus runs at a different timescale), but their weighted,",
			"baseline-normalized combination tracks the power cap.",
		},
	}
	if plot, err := fig3Plot("dynamic cap", "URBAN composite", capVals, compVals); err == nil {
		plot.Title = "Extension: URBAN composite progress under a step cap"
		art.addFigure("ext_composite", plot)
	}
	return art, nil
}

// ExtEnergy sweeps the power cap and reports energy-to-solution and
// energy-delay product for a fixed amount of work: capping trades time
// for energy, and static power gives both metrics an interior optimum —
// the trade a budget-setting layer navigates with the progress model.
func ExtEnergy(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	tbl := trace.NewTable("", "Application", "Cap (W)", "Time (s)", "Energy (kJ)", "J per unit", "EDP (kJ·s)")
	for _, appName := range []string{"LAMMPS", "STREAM"} {
		var mk func() *workload.Workload
		switch appName {
		case "LAMMPS":
			mk = func() *workload.Workload { return apps.LAMMPS(apps.DefaultRanks, int(opts.RunSeconds*20)) }
		case "STREAM":
			mk = func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, int(opts.RunSeconds*16)) }
		}
		for _, capW := range []float64{0, 160, 130, 100, 80, 60} {
			var scheme policy.Scheme
			if capW > 0 {
				scheme = policy.Constant{Watts: capW}
			}
			res, err := opts.run(mk(), scheme, opts.Seed, opts.RunSeconds*8)
			if err != nil {
				return nil, fmt.Errorf("ext-energy: %s cap %v: %w", appName, capW, err)
			}
			if !res.Completed {
				return nil, fmt.Errorf("ext-energy: %s cap %v did not complete", appName, capW)
			}
			t := res.Elapsed.Seconds()
			jpu := res.EnergyJ / res.WorkUnits
			capStr := "none"
			if capW > 0 {
				capStr = trace.Formatted(capW)
			}
			tbl.AddRow(appName, capStr,
				fmt.Sprintf("%.1f", t),
				fmt.Sprintf("%.2f", res.EnergyJ/1000),
				fmt.Sprintf("%.4g", jpu),
				fmt.Sprintf("%.1f", res.EnergyJ*t/1000))
		}
	}
	return &Artifact{
		ID:     "ext-energy",
		Title:  "Extension: energy-to-solution and EDP across the cap range",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"Energy per work unit falls as the cap tightens (dynamic power drops",
			"super-linearly with frequency) until static power and stretched runtime",
			"dominate; EDP exposes the delay cost of chasing that minimum.",
		},
	}, nil
}

// ExtCluster compares job-level power-division policies across
// heterogeneous nodes, quantifying what the paper's online progress
// metric buys at the level above the node.
func ExtCluster(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	steps := int(opts.RunSeconds * 3 * 20)
	mkNodes := func(seedBase uint64) []*cluster.Node {
		mk := func(name string, ineff float64, seed uint64) *cluster.Node {
			cfg := opts.engineConfig()
			cfg.Seed = seed
			cfg.Power.CoreDynMaxW *= ineff
			e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, steps))
			if err != nil {
				panic(err)
			}
			return cluster.NewNode(name, e)
		}
		return []*cluster.Node{
			mk("node0", 1.00, seedBase+1),
			mk("node1", 1.12, seedBase+2),
			mk("node2", 1.25, seedBase+3),
		}
	}

	tbl := trace.NewTable("", "Policy", "Job budget (W)", "Mean min-progress", "Mean mean-progress", "Node spread")
	for _, budget := range []float64{360, 300} {
		for _, pol := range []cluster.Policy{cluster.EqualSplit{}, cluster.ProgressAware{Gain: 3}} {
			m, err := cluster.NewManager(pol, cluster.ConstantBudget(budget), mkNodes(opts.Seed*100)...)
			if err != nil {
				return nil, err
			}
			m.SetNodeWorkers(opts.NodeWorkers)
			res, err := m.Run(time.Duration(opts.RunSeconds*3) * time.Second)
			if err != nil {
				return nil, fmt.Errorf("ext-cluster: %s at %v W: %w", pol.Name(), budget, err)
			}
			opts.rn().RecordShards(m.ShardStats())
			meanMean := stats.Mean(res.MeanProgress.Values())
			// Spread = mean gap between the job average and the slowest
			// node: how unevenly the nodes progress.
			var gaps []float64
			minVals, meanVals := res.MinProgress.Values(), res.MeanProgress.Values()
			for i := range minVals {
				gaps = append(gaps, meanVals[i]-minVals[i])
			}
			tbl.AddRow(pol.Name(), trace.Formatted(budget),
				fmt.Sprintf("%.3f", res.MeanMinProgress()), fmt.Sprintf("%.3f", meanMean),
				fmt.Sprintf("%.3f", stats.Mean(gaps)))
		}
	}
	return &Artifact{
		ID:     "ext-cluster",
		Title:  "Extension: job-level power division across heterogeneous nodes",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			"Three 24-core nodes run the same LAMMPS job with 0/12/25% extra silicon",
			"power draw (node variability à la Rountree et al.). Progress-aware division",
			"steers power toward the lagging node: the synchronous (minimum) progress",
			"rises and the spread between nodes collapses, at the same job budget —",
			"a policy only the paper's online progress metric makes possible.",
		},
	}, nil
}
