package experiments

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/policy"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
)

// ExtMethod cross-validates the harness's Figure 4 measurement method.
// The paper measures the change in progress with a step-function
// schedule ("the power cap (and hence, progress) remains stable for a
// longer period of time, making it easier to measure"); this repository
// uses steady constant-cap runs. Both methods must agree for the
// reproduction to be trustworthy.
func ExtMethod(opts Options) (*Artifact, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	caps := []float64{140, 110, 80}

	// Uncapped baseline.
	base, err := opts.runDVFS(apps.LAMMPS(apps.DefaultRanks, int(opts.RunSeconds*20)), 3300, opts.Seed, opts.RunSeconds*2)
	if err != nil {
		return nil, err
	}
	baseRate := stats.Mean(steadyRates(base, 1))

	tbl := trace.NewTable("", "P_cap (W)", "Δ constant-cap", "Δ step-schedule", "Disagreement %")
	var worst float64
	for _, capW := range caps {
		// Method 1: steady constant cap.
		resConst, err := opts.run(apps.LAMMPS(apps.DefaultRanks, int(opts.RunSeconds*20)),
			policy.Constant{Watts: capW}, opts.Seed, opts.RunSeconds)
		if err != nil {
			return nil, err
		}
		dConst := baseRate - stats.Mean(steadyRates(resConst, 2))

		// Method 2: the paper's step schedule, measuring stable windows
		// of each half.
		dStep, err := stepDropLAMMPS(opts, int(opts.RunSeconds*20*5), capW, opts.Seed, opts.RunSeconds*5)
		if err != nil {
			return nil, err
		}

		dis := stats.RelErrPct(dStep, dConst)
		if dis > worst {
			worst = dis
		}
		tbl.AddRow(trace.Formatted(capW),
			trace.Formatted(dConst), trace.Formatted(dStep), fmt.Sprintf("%.1f", dis))
	}
	return &Artifact{
		ID:     "ext-method",
		Title:  "Extension: measurement-method cross-validation (constant cap vs step schedule)",
		Tables: []*trace.Table{tbl},
		Notes: []string{
			fmt.Sprintf("worst disagreement %.1f%% — the two ways of measuring Δprogress agree,", worst),
			"so the harness's constant-cap shortcut stands in for the paper's step method.",
		},
	}, nil
}

// stepDropLAMMPS measures Δprogress with the paper's step schedule:
// alternate uncapped/capped 8 s halves, comparing only windows whose cap
// has been stable for two windows (skipping transitions).
func stepDropLAMMPS(opts Options, steps int, capW float64, seed uint64, maxSeconds float64) (float64, error) {
	scheme := policy.Step{HighW: policy.Uncapped, LowW: capW,
		HighFor: 8 * time.Second, LowFor: 8 * time.Second}
	res, err := opts.run(apps.LAMMPS(apps.DefaultRanks, steps), scheme, seed, maxSeconds)
	if err != nil {
		return 0, err
	}
	var high, low []float64
	for _, s := range res.Samples {
		cap1, ok := res.CapTrace.ValueAt(s.At - time.Millisecond)
		if !ok {
			continue
		}
		cap2, _ := res.CapTrace.ValueAt(s.At - 2100*time.Millisecond)
		if cap1 != cap2 {
			continue
		}
		if cap1 == policy.Uncapped {
			high = append(high, s.Rate)
		} else {
			low = append(low, s.Rate)
		}
	}
	if len(high) < 3 || len(low) < 3 {
		return 0, fmt.Errorf("step schedule produced too few stable windows (%d/%d)", len(high), len(low))
	}
	return stats.Mean(high) - stats.Mean(low), nil
}
