package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestExtBackendsAcceptance pins the artifact's three claims: the
// monitoring-overhead curve is monotone in sampling rate (and sysfs
// strictly dearer than the register path), the cap stays enforced at
// every fault rate with the failover escalation visible in the
// counters, and the outage part's park/revert/recover invariants hold
// (the generator itself errors if they do not, so reaching a rendered
// table C is already the proof).
func TestExtBackendsAcceptance(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("backend sweep is expensive")
	}
	art, err := ExtBackends(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(art.Tables))
	}
	costs, faults, outage := art.Tables[0], art.Tables[1], art.Tables[2]

	// A: overhead strictly increases as the interval shrinks, on both
	// backends, and sysfs is strictly dearer at every rate.
	rows := csvRows(t, costs)
	if len(rows) != 4 {
		t.Fatalf("cost rows = %d, want 4", len(rows))
	}
	prevMSR, prevSys := -1.0, -1.0
	for _, f := range rows {
		msrOv, sysOv := num(t, f[2]), num(t, f[3])
		if msrOv <= prevMSR || sysOv <= prevSys {
			t.Errorf("overhead not monotone: msr %v sys %v after %v/%v", msrOv, sysOv, prevMSR, prevSys)
		}
		if sysOv <= msrOv {
			t.Errorf("sysfs overhead %v not above msr %v", sysOv, msrOv)
		}
		if errPct := num(t, f[4]); errPct > 5 {
			t.Errorf("sampled energy error %v%% > 5%%", errPct)
		}
		prevMSR, prevSys = msrOv, sysOv
	}

	// B: zero budget overshoot beyond the RAPL settling tolerance at
	// every fault rate; retries and failovers appear once faults do; no
	// parks (the register failover always catches the cap).
	rows = csvRows(t, faults)
	if len(rows) != 4 {
		t.Fatalf("fault rows = %d, want 4", len(rows))
	}
	for i, f := range rows {
		if over := num(t, f[5]); over > 0.1 {
			t.Errorf("rate %s: steady-window overshoot %v W", f[0], over)
		}
		if parks := num(t, f[4]); parks != 0 {
			t.Errorf("rate %s: %v parks despite register failover", f[0], parks)
		}
		retries, failovers := num(t, f[2]), num(t, f[3])
		if i == 0 && (retries != 0 || failovers != 0) {
			t.Errorf("clean run saw retries=%v failovers=%v", retries, failovers)
		}
		if i > 0 && retries+failovers == 0 {
			t.Errorf("rate %s: no retries or failovers despite faults", f[0])
		}
	}

	// C: the generator already enforced park >= 1, revert within one
	// TTL, recovery within one TTL, and cap <= budget throughout; here
	// just pin the table shape and that both phases rendered.
	body := outage.Render()
	for _, phase := range []string{"tree offline", "enforcing"} {
		if !strings.Contains(body, phase) {
			t.Errorf("outage table missing phase %q", phase)
		}
	}
	if len(art.Notes) < 6 {
		t.Errorf("notes = %d, want >= 6", len(art.Notes))
	}
}

func csvRows(t *testing.T, tbl interface{ CSV() string }) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tbl.CSV()), "\n")[1:]
	out := make([][]string, len(lines))
	for i, l := range lines {
		out[i] = strings.Split(l, ",")
	}
	return out
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}
