package experiments

import (
	"fmt"

	"progresscap/internal/model"
	"progresscap/internal/policy"
	"progresscap/internal/stats"
	"progresscap/internal/trace"
	"progresscap/internal/workload"
)

// Fig4Point is one (cap, measured, predicted) triple of the Figure 4
// sweeps.
type Fig4Point struct {
	PkgCapW       float64
	CoreCapW      float64 // model-estimated effective core cap (Eq. 5)
	MeasuredDrop  float64 // Δprogress measured, averaged over repetitions
	PredictedDrop float64 // Δprogress from Eq. 7 with α = 2
	ErrPct        float64 // |measured−predicted| / measured × 100
}

// Fig4App is one sub-figure (4a..4e).
type Fig4App struct {
	Name     string
	Beta     float64
	Baseline float64 // uncapped progress rate r(P_coremax)
	Points   []Fig4Point
}

// Figure4Data runs the full measured-vs-predicted sweep and returns the
// structured results (Figure4 renders them). For each application:
//
//  1. β is characterized with the §IV-A DVFS procedure.
//  2. An uncapped baseline gives r(P_coremax) and the uncapped package
//     power; P_coremax is estimated as β × P_pkg (Eq. 5 at the top).
//  3. Each package cap runs Reps times with fresh seeds; the measured
//     change in progress is the uncapped rate minus the steady capped
//     rate, averaged over repetitions — the paper measures the same
//     quantity from the stable half of its step-function schedule.
//  4. The model predicts the change via Eqs. 5+7 with α = 2.
func Figure4Data(opts Options) ([]Fig4App, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	caps := []float64{160, 140, 120, 100, 80, 65}

	type appCase struct {
		name string
		mk   func() *workload.Workload
		secs float64 // per-run virtual duration
	}
	secs := opts.RunSeconds
	// OpenMC completes roughly one batch per second, so its per-window
	// rate is quantized to whole batches; it needs longer measurement
	// runs than the sub-second-iteration applications.
	openmcSecs := secs
	if openmcSecs < 30 {
		openmcSecs = 30
	}
	mk := characterizableScaled(opts, openmcSecs)
	cases := []appCase{
		{"LAMMPS", mk[3].mk, secs},
		{"AMG", mk[2].mk, secs},
		{"QMCPACK (DMC)", mk[0].mk, secs},
		{"STREAM", mk[4].mk, secs},
		{"OpenMC (active)", mk[1].mk, openmcSecs},
	}

	// Fan the whole sweep out up front: 10 characterization runs (8 shared
	// with Table 6 at default scale) plus caps × Reps capped runs per app.
	for _, c := range cases {
		fast, slow := opts.charSpecs(c.mk, opts.Seed, c.secs*4)
		opts.rn().Prefetch(fast)
		opts.rn().Prefetch(slow)
		for _, capW := range caps {
			for rep := 0; rep < opts.Reps; rep++ {
				opts.rn().Prefetch(opts.capSpec(c.mk, policy.Constant{Watts: capW}, opts.Seed+uint64(rep)*101, c.secs))
			}
		}
	}

	var out []Fig4App
	for _, c := range cases {
		beta, _, baseRate, basePkgW, err := opts.characterize(c.mk, opts.Seed, c.secs*4)
		if err != nil {
			return nil, fmt.Errorf("figure4: characterizing %s: %w", c.name, err)
		}
		params, err := model.FromBaseline(beta, baseRate, basePkgW)
		if err != nil {
			return nil, fmt.Errorf("figure4: %s baseline: %w", c.name, err)
		}
		app := Fig4App{Name: c.name, Beta: beta, Baseline: baseRate}
		for _, capW := range caps {
			var drops []float64
			for rep := 0; rep < opts.Reps; rep++ {
				res, err := opts.rn().Do(opts.capSpec(c.mk, policy.Constant{Watts: capW}, opts.Seed+uint64(rep)*101, c.secs))
				if err != nil {
					return nil, fmt.Errorf("figure4: %s cap %v rep %d: %w", c.name, capW, rep, err)
				}
				capped := stats.Mean(steadyRates(res, 2))
				drops = append(drops, baseRate-capped)
			}
			measured := stats.Mean(drops)
			predicted := params.PredictDelta(capW)
			app.Points = append(app.Points, Fig4Point{
				PkgCapW:       capW,
				CoreCapW:      params.EffectiveCoreCap(capW),
				MeasuredDrop:  measured,
				PredictedDrop: predicted,
				ErrPct:        stats.RelErrPct(measured, predicted),
			})
		}
		out = append(out, app)
	}
	return out, nil
}

// Figure4 renders the sweep as one table per application plus an error
// summary, mirroring Fig 4a-e.
func Figure4(opts Options) (*Artifact, error) {
	data, err := Figure4Data(opts)
	if err != nil {
		return nil, err
	}
	art := &Artifact{
		ID:    "fig4",
		Title: "Measured vs predicted change in progress (α=2, P_corecap=β·P_cap)",
	}
	sub := 'a'
	for _, app := range data {
		tbl := trace.NewTable(
			fmt.Sprintf("Fig 4%c: %s (β=%.2f, baseline %s/s)", sub, app.Name, app.Beta, trace.Formatted(app.Baseline)),
			"P_cap (W)", "P_corecap (W)", "Measured Δ", "Predicted Δ", "Error %")
		var meas, pred []float64
		for _, p := range app.Points {
			tbl.AddRow(
				trace.Formatted(p.PkgCapW),
				trace.Formatted(p.CoreCapW),
				trace.Formatted(p.MeasuredDrop),
				trace.Formatted(p.PredictedDrop),
				fmt.Sprintf("%.1f", p.ErrPct),
			)
			meas = append(meas, p.MeasuredDrop)
			pred = append(pred, p.PredictedDrop)
		}
		art.Tables = append(art.Tables, tbl)
		art.Notes = append(art.Notes,
			fmt.Sprintf("%-16s measured  %s", app.Name, trace.Sparkline(meas)),
			fmt.Sprintf("%-16s predicted %s", "", trace.Sparkline(pred)))

		plot := trace.NewPlot(
			fmt.Sprintf("Fig 4%c: %s — change in progress under effective core caps", sub, app.Name),
			"P_corecap (W)", "Δ progress (metric units/s)")
		var xs []float64
		for _, p := range app.Points {
			xs = append(xs, p.CoreCapW)
		}
		if err := plot.Scatter("measured", xs, meas); err != nil {
			return nil, err
		}
		if err := plot.Line("model (α=2)", xs, pred); err != nil {
			return nil, err
		}
		art.addFigure(fmt.Sprintf("fig4%c_%s", sub, slug(app.Name)), plot)
		sub++
	}

	// Error summary across the sweep, split mid-range vs extreme caps —
	// the paper's headline: good mid-range, poor at the extremes.
	sum := trace.NewTable("Model error summary", "Application", "Mid-range err % (min..max)", "Extreme err % (min..max)")
	for _, app := range data {
		var mid, ext []float64
		for i, p := range app.Points {
			if i == 0 || i == len(app.Points)-1 {
				ext = append(ext, p.ErrPct)
			} else {
				mid = append(mid, p.ErrPct)
			}
		}
		ms, es := stats.Summarize(mid), stats.Summarize(ext)
		sum.AddRow(app.Name,
			fmt.Sprintf("%.1f..%.1f", ms.Min, ms.Max),
			fmt.Sprintf("%.1f..%.1f", es.Min, es.Max))
	}
	art.Tables = append(art.Tables, sum)
	return art, nil
}
