package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"progresscap/internal/fault"
)

// cacheFiles returns the non-temp entries in a cache directory.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestDiskCacheCrossInvocation is the contract the soak harness and CI
// rely on: a second, separate Runner sharing the cache directory serves
// an identical spec from disk — zero executions — and the loaded result
// is byte-faithful (same signature as the freshly computed one).
func TestDiskCacheCrossInvocation(t *testing.T) {
	dir := t.TempDir()

	r1 := NewRunner(2)
	if err := r1.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	fresh, err := r1.Do(mkSampleSpec(1, 95))
	if err != nil {
		t.Fatal(err)
	}
	if st := r1.Stats(); st.Executed != 1 || st.DiskHits != 0 {
		t.Fatalf("first invocation stats: %+v", st)
	}
	if files := cacheFiles(t, dir); len(files) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(files))
	}

	r2 := NewRunner(2)
	if err := r2.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := r2.Do(mkSampleSpec(1, 95))
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Executed != 0 || st.DiskHits != 1 {
		t.Fatalf("second invocation stats: %+v", st)
	}
	if loaded.Signature() != fresh.Signature() {
		t.Fatal("disk-cached result is not byte-faithful to the computed one")
	}

	// A different spec misses and executes.
	if _, err := r2.Do(mkSampleSpec(2, 95)); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Executed != 1 || st.DiskHits != 1 {
		t.Fatalf("stats after distinct spec: %+v", st)
	}
}

// TestDiskCacheCorruptTolerance: a truncated or garbage entry is a cache
// miss — the run executes and rewrites the entry — never a panic or error.
func TestDiskCacheCorruptTolerance(t *testing.T) {
	dir := t.TempDir()
	r1 := NewRunner(1)
	if err := r1.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	want, err := r1.Do(mkSampleSpec(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte(`{"Workload": truncated garba`), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(1)
	if err := r2.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	got, err := r2.Do(mkSampleSpec(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Executed != 1 || st.DiskHits != 0 {
		t.Fatalf("corrupted entry should miss and execute: %+v", st)
	}
	if got.Signature() != want.Signature() {
		t.Fatal("re-executed run diverged from the original")
	}

	// The rewrite healed the entry: a third invocation hits again.
	r3 := NewRunner(1)
	if err := r3.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Do(mkSampleSpec(3, 0)); err != nil {
		t.Fatal(err)
	}
	if st := r3.Stats(); st.DiskHits != 1 {
		t.Fatalf("healed entry should hit: %+v", st)
	}
}

// TestFaultPlanPartOfKey: the same run with and without a fault plan are
// different runs — distinct keys, distinct cache entries.
func TestFaultPlanPartOfKey(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(2)
	if err := r.EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	clean := mkSampleSpec(1, 0)
	faulted := mkSampleSpec(1, 0)
	faulted.Faults = fault.Plan{
		Seed:   7,
		PubSub: fault.PubSubPlan{DropRate: 0.3, DelayRate: 0.2, MaxDelay: 100 * time.Millisecond},
	}
	a, err := r.Do(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Do(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 2 || st.CacheHits != 0 {
		t.Fatalf("faulted and clean runs must not share a key: %+v", st)
	}
	if a.Signature() == b.Signature() {
		t.Fatal("fault plan had no observable effect — injection not wired through the Runner")
	}
	if files := cacheFiles(t, dir); len(files) != 2 {
		t.Fatalf("cache holds %d entries, want 2", len(files))
	}
}
