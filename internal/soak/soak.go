// Package soak executes generated or hand-written scenario specs
// (internal/spec) under a battery of invariant oracles, and shrinks any
// failing scenario to a locally minimal reproduction.
//
// The oracles encode the properties the rest of the repo proves piecemeal
// in targeted tests, checked here on every randomized scenario:
//
//   - budget: Σ(enforced register caps) ≤ the spec budget at every epoch
//     (cluster scenarios; read from the simulated hardware, not the ledger).
//   - revert: a node un-renewed for a full lease TTL is back at the safe
//     cap within one epoch of slack (the deadman guarantee).
//   - journal: every lease a node accepted appears in a replay of the
//     shared manager WAL — grants are journaled before they are sent.
//   - invariants: the per-engine invariant checker (cap bounds, power
//     plausibility, energy monotonicity) reports nothing.
//   - macro: event-horizon macro-stepping and the fixed-tick oracle
//     produce bit-identical results (single-node scenarios).
//   - progress: observed progress rates are never negative.
//
// A Harness carries an optional BugW — a deliberate budget-accounting
// bug (the manager believes it has BugW more watts than the spec says)
// used by tests and the -bug flag to prove the soak finds and shrinks
// real violations end to end.
package soak

import (
	"fmt"
	"os"
	"strconv"

	"progresscap/internal/experiments"
	"progresscap/internal/spec"
	"progresscap/internal/workload"
)

// budgetSlackW absorbs float summation noise in the budget oracle; any
// real violation is whole watts, not nanowatts.
const budgetSlackW = 1e-9

// BugEnv is the environment variable enabling the deliberate
// budget-accounting bug (a float, watts). It exists so the same bug
// reaches both cmd/soak and a cmd/experiments -spec replay without
// either growing a public flag that ships a bug.
const BugEnv = "SOAK_BUG"

// BugWFromEnv reads the deliberate-bug wattage from the environment
// (0 when unset or unparsable).
func BugWFromEnv() float64 {
	v := os.Getenv(BugEnv)
	if v == "" {
		return 0
	}
	w, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0
	}
	return w
}

// Violation is one oracle failure.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Report is the outcome of soaking one scenario.
type Report struct {
	Hash       string         `json:"hash"`
	Scenario   spec.Scenario  `json:"scenario"`
	Violations []Violation    `json:"violations,omitempty"`
}

// Failed reports whether any oracle fired.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Harness executes scenarios. The zero value is usable; Runner is
// created on demand when single-node scenarios need one.
type Harness struct {
	// Runner executes single-node scenarios, sharing its memo table and
	// (if enabled) disk cache with everything else the process runs.
	Runner *experiments.Runner
	// BugW > 0 arms the deliberate budget bug: cluster managers divide
	// BudgetW+BugW while the oracles hold the spec to BudgetW.
	BugW float64
	// NodeWorkers bounds intra-epoch node-shard parallelism on cluster
	// scenarios (0 = GOMAXPROCS, 1 = serial). Oracle outcomes are
	// byte-identical at any setting — worker count never enters a
	// scenario hash.
	NodeWorkers int
	// Forking lets single-node scenarios fork from pooled engine
	// checkpoints where they share a simulation prefix (see
	// experiments.RunSpec.Forking). An execution knob like NodeWorkers:
	// oracle outcomes and scenario hashes are identical either way.
	Forking bool
}

// New returns a harness over the given runner with the deliberate bug
// armed from the environment (see BugEnv).
func New(r *experiments.Runner) *Harness {
	return &Harness{Runner: r, BugW: BugWFromEnv()}
}

func (h *Harness) runner() *experiments.Runner {
	if h.Runner == nil {
		h.Runner = experiments.NewRunner(0)
	}
	return h.Runner
}

// RunScenario validates and executes one scenario under the full oracle
// battery. Oracle failures land in the report; only infrastructure
// errors (an unbuildable scenario, an engine construction failure)
// return a non-nil error.
func (h *Harness) RunScenario(sc spec.Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	hash, err := sc.Hash()
	if err != nil {
		return nil, err
	}
	rep := &Report{Hash: hash, Scenario: sc}
	if sc.Cluster() {
		err = h.runCluster(sc, rep)
	} else {
		err = h.runSingle(sc, rep)
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// runSingle executes a single-node scenario through the experiment
// Runner (so identical scenarios — across soak runs, suites, and CI —
// share one simulation) and checks the single-node oracles.
func (h *Harness) runSingle(sc spec.Scenario, rep *Report) error {
	scheme, err := sc.Operating.Scheme.Build()
	if err != nil {
		return err
	}
	w := sc.Workloads[0]
	rs := experiments.RunSpec{
		Make:       mustBuild(w),
		Scheme:     scheme,
		DVFSMHz:    sc.Operating.DVFSMHz,
		Seed:       sc.Seed,
		MaxSeconds: sc.HorizonSec,
		Invariants: true,
		Faults:     sc.Faults,
		Backend:    sc.Operating.Backend,
		Forking:    h.Forking,
	}
	res, err := h.runner().Do(rs)
	if err != nil {
		// The Runner folds engine invariant violations into the run error;
		// they are findings, not infrastructure failures.
		rep.Violations = append(rep.Violations, Violation{Oracle: "invariants", Detail: err.Error()})
		return nil
	}

	// progress: observed rates are never negative, in the primary sample
	// stream and in every per-job stream.
	for _, s := range res.Samples {
		if s.Rate < 0 {
			rep.Violations = append(rep.Violations, Violation{
				Oracle: "progress",
				Detail: fmt.Sprintf("negative rate %g at %v", s.Rate, s.At),
			})
			break
		}
	}
	for _, j := range res.Jobs {
		for _, s := range j.Samples {
			if s.Rate < 0 {
				rep.Violations = append(rep.Violations, Violation{
					Oracle: "progress",
					Detail: fmt.Sprintf("job %s: negative rate %g at %v", j.Workload, s.Rate, s.At),
				})
				break
			}
		}
	}

	// macro: the event-horizon run must be bit-identical to the fixed-tick
	// oracle run of the same scenario.
	fixed := rs
	fixed.FixedTick = true
	fres, err := h.runner().Do(fixed)
	if err != nil {
		rep.Violations = append(rep.Violations, Violation{Oracle: "invariants", Detail: "fixed-tick: " + err.Error()})
		return nil
	}
	if res.Signature() != fres.Signature() {
		rep.Violations = append(rep.Violations, Violation{
			Oracle: "macro",
			Detail: "macro-step result diverges from the fixed-tick oracle",
		})
	}
	return nil
}

// mustBuild adapts WorkloadSpec.Build to the Runner's Make contract;
// the scenario was validated, so Build cannot fail here.
func mustBuild(w spec.WorkloadSpec) func() *workload.Workload {
	return func() *workload.Workload {
		wl, err := w.Build()
		if err != nil {
			panic(fmt.Sprintf("soak: validated workload failed to build: %v", err))
		}
		return wl
	}
}
