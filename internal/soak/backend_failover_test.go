package soak

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/journal"
	"progresscap/internal/msr"
	"progresscap/internal/nrm"
	"progresscap/internal/powercap"
	"progresscap/internal/rapl"
	"progresscap/internal/simtime"
	"progresscap/internal/supervise"
)

// TestSupervisedBackendFailoverProperty is the seeded property test for
// the hardened actuation stack under a flapping sysfs backend AND a
// crashing control daemon at once. Per seed it draws a powercap fault
// schedule (EAGAIN/EIO/truncate rates plus a transient tree
// disappearance), a daemon kill time, and whether the actuator has the
// register path to fail over to or must park; the supervised NRM runs
// through all of it. Two invariants must survive every seed:
//
//  1. Budget: once calibration is over, the cap latched in the RAPL
//     register never exceeds the budget — flapping writes, parks, and
//     daemon restarts may change WHICH safe value is enforced, never
//     push it above the budget.
//  2. Re-arm: the register is never left uncapped. Between the daemon
//     (re-arming per epoch), the actuator (parking the safe cap), and
//     the deadman (reverting within one TTL), some enforceable cap is
//     always armed — so recovery from any outage happens within one
//     lease TTL plus one epoch.
func TestSupervisedBackendFailoverProperty(t *testing.T) {
	const (
		budgetW  = 110.0
		safeCapW = 60.0
		ttl      = 2 * time.Second
		dur      = 24 * time.Second
		// calibration epochs run uncapped by design; add the first
		// post-calibration epoch and one TTL of settling.
		graceSec = 3 + 1 + 2
		// both MSR round-to-nearest and sysfs floor quantize within 1/8 W.
		quantTolW = 0.13
	)
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := simtime.NewRNG(seed)
			pc := &fault.PowercapPlan{
				WriteAgainRate: 0.10 + 0.20*rng.Float64(),
				WriteEIORate:   0.10 * rng.Float64(),
				TruncateRate:   0.05 * rng.Float64(),
				ReadAgainRate:  0.10 * rng.Float64(),
			}
			goneFrom := time.Duration(6+rng.Intn(8)) * time.Second
			goneTo := goneFrom + time.Duration(1+rng.Intn(2))*time.Second
			pc.GoneWindows = []fault.Window{{From: goneFrom, To: goneTo}}
			killAt := time.Duration(8+rng.Intn(8))*time.Second + 500*time.Millisecond
			withFailover := rng.Intn(2) == 0

			cfg := engine.DefaultConfig()
			cfg.Seed = seed
			e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 5000))
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector(fault.Plan{Seed: seed | 1, Powercap: pc})
			e.SetFaults(inj)
			zone := powercap.NewZone(e.Device(), msr.DefaultUnits())
			zone.SetFaultHook(inj.Powercap().Hook())

			backends := []rapl.Backend{powercap.NewBackend(zone)}
			if withFailover {
				backends = append(backends, rapl.NewMSRBackend(e.Device(), 10*time.Millisecond))
			}
			act := rapl.NewActuator(rapl.ActuatorConfig{
				Backends: backends,
				SafeCapW: safeCapW,
				Seed:     seed,
			})
			if err := e.SetDeadman(rapl.Deadman{TTL: ttl, DefaultCapW: safeCapW}); err != nil {
				t.Fatal(err)
			}

			registerCap := func() float64 {
				raw, err := e.Device().Read(msr.PkgPowerLimit)
				if err != nil {
					return -1
				}
				pl1, _ := msr.DecodePowerLimits(raw, msr.DefaultUnits())
				if !pl1.Enabled {
					return 0
				}
				return pl1.Watts
			}

			type capSample struct {
				at   time.Duration
				capW float64
			}
			var caps []capSample
			var img bytes.Buffer
			var n *nrm.NRM
			killed := false
			sup := supervise.New(supervise.Options{
				MaxRestarts: 5,
				Backoff:     time.Second,
				Sleep:       func(d time.Duration) { _, _ = e.Advance(d) },
			})
			unit := supervise.Unit{
				Name: "nrm",
				Start: func(attempt int) (func() error, error) {
					cfgN := nrm.Config{
						Beta:         1.0,
						DegradedCapW: safeCapW,
						Journal:      journal.NewWriter(&img),
						Actuator:     act,
					}
					var nerr error
					if attempt == 0 {
						n, nerr = nrm.New(cfgN, e)
					} else {
						recs, _, rerr := journal.ReplayBytes(img.Bytes())
						if rerr != nil {
							return nil, rerr
						}
						n, nerr = nrm.Restore(cfgN, e, journal.Recover(recs))
					}
					if nerr != nil {
						return nil, nerr
					}
					n.SetBudget(budgetW)
					n.RecordSupervisorRestarts(attempt)
					return func() error {
						for {
							if !killed && e.Clock().Now() >= killAt {
								killed = true
								panic("chaos: nrm killed mid-epoch")
							}
							done, serr := n.Step()
							if serr != nil {
								return serr
							}
							caps = append(caps, capSample{e.Clock().Now(), registerCap()})
							if done || e.Clock().Now() >= dur {
								return nil
							}
						}
					}, nil
				},
			}
			if err := sup.Supervise(unit); err != nil {
				t.Fatalf("supervise: %v", err)
			}
			if !killed {
				t.Fatal("kill never fired; property not exercised")
			}

			for _, s := range caps {
				if s.at < graceSec*time.Second {
					continue
				}
				if s.capW <= 0 {
					t.Errorf("register uncapped at %v (cap must always be armed after calibration)", s.at)
				}
				if s.capW > budgetW+quantTolW {
					t.Errorf("register cap %.3f W above the %.0f W budget at %v", s.capW, budgetW, s.at)
				}
			}
			// The flapping schedule must have actually bitten, and the
			// actuator must not be left parked once the tree is back.
			c := act.Counters()
			if c.TransientErrs == 0 {
				t.Error("no transient errors despite the flapping schedule")
			}
			if withFailover && c.Parks > 0 {
				t.Errorf("%d parks despite register failover", c.Parks)
			}
			if !withFailover && c.Parks == 0 {
				t.Error("tree disappearance never parked the single-backend actuator")
			}
			// Deliberately NOT asserted: act.Parked() == false at the end.
			// Under a continuous flapping schedule the final epoch's write
			// may legitimately exhaust and park; the property is that the
			// register stays armed at or below the budget throughout —
			// checked above — not that the last roll of the dice landed.
			if _, err := e.Finish(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
