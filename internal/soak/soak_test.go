package soak

import (
	"os"
	"path/filepath"
	"testing"

	"progresscap/internal/cluster"
	"progresscap/internal/spec"
)

// TestCorpusReplay replays every committed corpus entry under the full
// oracle battery. Entries are scenarios that once exposed a bug (now
// fixed) or pin a hard-won corner of the fault space; a violation here
// is a regression, full stop.
func TestCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("missing regression corpus: %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("regression corpus is empty")
	}
	h := &Harness{}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			sc, err := spec.Decode(b)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := h.RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestBugIsFoundAndShrunk injects the deliberate budget-accounting bug
// (the manager believes it has 30 W more than the spec budget) and
// asserts the soak (a) reports a budget violation on a generated cluster
// scenario, and (b) shrinks it to a minimal repro with no faults at all
// and a short horizon — the bug needs neither chaos nor time, and the
// shrinker must discover that.
func TestBugIsFoundAndShrunk(t *testing.T) {
	h := &Harness{BugW: 30}
	// Find a cluster scenario among the first seeds.
	var sc spec.Scenario
	for seed := uint64(1); ; seed++ {
		if seed > 50 {
			t.Fatal("no cluster scenario in the first 50 seeds")
		}
		if sc = spec.Generate(seed); sc.Cluster() {
			break
		}
	}
	rep, err := h.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("bugged harness did not fail scenario %s", sc.Name)
	}
	hasBudget := false
	for _, v := range rep.Violations {
		if v.Oracle == "budget" {
			hasBudget = true
		}
	}
	if !hasBudget {
		t.Fatalf("expected a budget violation, got %v", rep.Violations)
	}

	sr, err := h.Shrink(sc, rep, 0)
	if err != nil {
		t.Fatal(err)
	}
	min := sr.Scenario
	t.Logf("shrunk %s: %d faults, %g s horizon, %d nodes, %d runs",
		sc.Name, min.FaultCount(), min.HorizonSec, min.Fleet.Nodes, sr.Runs)
	if err := min.Validate(); err != nil {
		t.Fatalf("minimal repro does not validate: %v", err)
	}
	if !sr.Report.Failed() {
		t.Fatal("minimal repro does not fail")
	}
	if min.FaultCount() > 2 {
		t.Fatalf("minimal repro keeps %d faults, want <= 2", min.FaultCount())
	}
	if min.HorizonSec > 6 {
		t.Fatalf("minimal repro keeps a %g s horizon, want <= 6", min.HorizonSec)
	}
	if min.Fleet.Nodes > 2 {
		t.Fatalf("minimal repro keeps %d nodes, want 2", min.Fleet.Nodes)
	}

	// The minimal repro must deterministically re-fail on a fresh
	// bugged harness — the property cmd/experiments -spec relies on.
	rep2, err := (&Harness{BugW: 30}).RunScenario(min)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Failed() {
		t.Fatal("minimal repro does not re-fail on a fresh harness")
	}
	// And it must pass with the bug disarmed: the repro captures the
	// bug, not some unrelated scenario property.
	rep3, err := (&Harness{}).RunScenario(min)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Failed() {
		t.Fatalf("minimal repro fails without the bug: %v", rep3.Violations)
	}
}

// TestBugEnv pins the environment plumbing cmd/soak and cmd/experiments
// share for arming the deliberate bug.
func TestBugEnv(t *testing.T) {
	t.Setenv(BugEnv, "12.5")
	if h := New(nil); h.BugW != 12.5 {
		t.Fatalf("BugW = %g, want 12.5", h.BugW)
	}
	t.Setenv(BugEnv, "nonsense")
	if h := New(nil); h.BugW != 0 {
		t.Fatalf("BugW = %g, want 0 on unparsable input", h.BugW)
	}
}

// TestManagerConstantsMatchCluster guards the duplicated manager-name
// constants: spec mirrors cluster's without importing it, so the
// agreement is asserted here, where both packages are in scope.
func TestManagerConstantsMatchCluster(t *testing.T) {
	if spec.PrimaryManager != cluster.PrimaryManager || spec.StandbyManager != cluster.StandbyManager {
		t.Fatal("spec manager constants drifted from cluster's")
	}
	if dq := 40.0; dq != cluster.DefaultQuarantineCapW {
		t.Fatalf("spec validates quarantine against %g, cluster defaults to %g", dq, float64(cluster.DefaultQuarantineCapW))
	}
}
