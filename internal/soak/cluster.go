package soak

// The cluster soak path: build a LeasedCluster from the spec, step it
// epoch by epoch, and check the distributed-safety oracles against the
// simulated hardware and the shared manager journal after every epoch.

import (
	"fmt"
	"time"

	"progresscap/internal/cluster"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/lease"
	"progresscap/internal/spec"
)

// maxViolationsPerOracle bounds how many findings one oracle may emit
// for one scenario: the first occurrence is the repro, the rest is noise
// that would bloat shrink-loop reports.
const maxViolationsPerOracle = 3

// runCluster executes a cluster scenario and checks the budget, revert,
// journal, invariant, and progress oracles.
func (h *Harness) runCluster(sc spec.Scenario, rep *Report) error {
	quarantine := sc.Fleet.QuarantineCapW
	if quarantine == 0 {
		quarantine = cluster.DefaultQuarantineCapW
	}

	// Engine-level fault classes (transport, MSR, counters) are injected
	// per node with a derived seed, so one node's fault stream never
	// shifts another's; the cluster-level injector keeps the node,
	// partition, and manager schedules.
	engineFaults := fault.Plan{
		Seed:     sc.Faults.Seed,
		PubSub:   sc.Faults.PubSub,
		MSR:      sc.Faults.MSR,
		Counters: sc.Faults.Counters,
	}

	var nodes []*cluster.LeasedNode
	for i, name := range sc.NodeNames() {
		cfg := engine.DefaultConfig()
		cfg.Seed = sc.Seed + uint64(i)
		cfg.Tick = time.Millisecond
		w := sc.Workloads[i%len(sc.Workloads)]
		wl, err := w.Build()
		if err != nil {
			return err
		}
		eng, err := engine.New(cfg, wl)
		if err != nil {
			return err
		}
		eng.EnableInvariants(engine.InvariantConfig{})
		if engineFaults.Enabled() {
			derived := engineFaults
			derived.Seed = engineFaults.Seed + uint64(i)
			eng.SetFaults(fault.NewInjector(derived))
		}
		nodes = append(nodes, cluster.NewLeasedNode(name, eng))
	}

	inj := fault.NewInjector(sc.Faults)
	lc, err := cluster.NewLeasedCluster(cluster.LeasedConfig{
		Cluster: cluster.Config{QuarantineCapW: quarantine},
		Policy:  cluster.EqualSplit{},
		// The deliberate bug: the manager divides BugW more than the spec
		// budget. The oracles below hold the cluster to the spec.
		Budget:         cluster.ConstantBudget(sc.Fleet.BudgetW + h.BugW),
		LeaseTTL:       time.Duration(sc.Fleet.LeaseTTLEpochs) * cluster.Epoch,
		FailoverEpochs: sc.Fleet.FailoverEpochs,
		Faults:         inj,
		NodeWorkers:    h.NodeWorkers,
	}, nodes...)
	if err != nil {
		return err
	}

	counts := map[string]int{}
	report := func(oracle, format string, args ...any) {
		if counts[oracle]++; counts[oracle] <= maxViolationsPerOracle {
			rep.Violations = append(rep.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
		}
	}

	// lastRenewal / accepted track when each node last accepted a grant,
	// for the revert oracle; acceptedLeases collects every accepted lease
	// for the journal oracle.
	lastRenewal := map[string]time.Duration{}
	accepted := map[string]uint64{}
	var acceptedLeases []lease.Lease

	for e := 0; e < sc.Epochs(); e++ {
		done, err := lc.Step()
		if err != nil {
			return fmt.Errorf("soak: epoch %d: %w", e, err)
		}
		now := lc.Elapsed()
		for _, n := range lc.Nodes() {
			c := n.Holder().Counters()
			if c.Accepted > accepted[n.Name()] {
				accepted[n.Name()] = c.Accepted
				if l, ok := n.Holder().Lease(); ok {
					lastRenewal[n.Name()] = l.GrantedAt
					acceptedLeases = append(acceptedLeases, l)
				}
			}
		}

		// budget: enforced register caps never exceed the spec budget.
		enforced, err := lc.EnforcedCapW(now)
		if err != nil {
			return err
		}
		if enforced > sc.Fleet.BudgetW+budgetSlackW {
			report("budget", "enforced %.3f W > budget %g W at %v", enforced, sc.Fleet.BudgetW, now)
		}

		// revert: a node un-renewed for TTL + one epoch of slack is back
		// at the safe cap. Crashed nodes are skipped: their engines do not
		// advance, so their deadman cannot tick until they recover.
		for _, n := range lc.Nodes() {
			granted, saw := lastRenewal[n.Name()]
			if !saw || now < granted+lc.LeaseTTL()+cluster.Epoch {
				continue
			}
			if n.Engine().Done() {
				continue
			}
			if np := inj.Node(n.Name()); np != nil && np.Crashed(now) {
				continue
			}
			capW, err := n.RegisterCapW()
			if err != nil {
				return err
			}
			if capW != lc.SafeCapW() {
				report("revert", "node %s at %.1f W at %v, lease granted %v, TTL %v — no revert",
					n.Name(), capW, now, granted, lc.LeaseTTL())
			}
		}
		if done {
			break
		}
	}

	h.runner().RecordShards(lc.ShardStats())

	res, err := lc.Finish()
	if err != nil {
		return err
	}

	// journal: every lease any node ever accepted appears in a replay of
	// the shared WAL — grants are journaled before they are sent, so an
	// enforced-but-unjournaled cap means the write-ahead contract broke.
	grants, _, _, err := lc.ReplayGrants()
	if err != nil {
		report("journal", "WAL replay failed: %v", err)
	} else {
		journaled := make(map[[2]uint64]lease.Lease, len(grants))
		for _, g := range grants {
			journaled[[2]uint64{g.Epoch, g.Seq}] = g
		}
		for _, l := range acceptedLeases {
			g, ok := journaled[[2]uint64{l.Epoch, l.Seq}]
			if !ok || g.Node != l.Node || g.CapW != l.CapW {
				report("journal", "accepted lease %+v not in WAL replay", l)
			}
		}
		if uint64(len(grants)) != res.GrantsIssued {
			report("journal", "WAL replays %d grants, ledger charged %d", len(grants), res.GrantsIssued)
		}
	}

	// invariants: no engine-level invariant (cap bounds, power
	// plausibility, energy monotonicity) fired on any node.
	for _, n := range lc.Nodes() {
		if v := n.Engine().InvariantViolations(); len(v) > 0 {
			report("invariants", "node %s: %d violations, first: %s", n.Name(), len(v), v[0])
		}
	}

	// progress: per-window rates are never negative on any node.
	for _, n := range res.Nodes {
		r := n.Result()
		if r == nil {
			continue
		}
		for _, s := range r.Samples {
			if s.Rate < 0 {
				report("progress", "node %s: negative rate %g at %v", n.Name(), s.Rate, s.At)
				break
			}
		}
	}
	return nil
}
