package soak

// Automatic shrinking: greedy descent over spec.ShrinkSteps. Each
// candidate changes exactly one thing and is strictly simpler, so
// re-running the first still-failing candidate and recursing reaches a
// fixpoint — a locally minimal scenario that still reproduces the
// violation — in finitely many runs.

import "progresscap/internal/spec"

// DefaultShrinkBudget bounds how many scenario executions one shrink may
// spend. Generated scenarios carry a couple dozen shrink candidates, so
// a few hundred runs is several full descents deep.
const DefaultShrinkBudget = 200

// ShrinkResult is the outcome of shrinking one failing scenario.
type ShrinkResult struct {
	// Scenario is the minimal reproducing scenario found.
	Scenario spec.Scenario
	// Report is the failing report of that minimal scenario.
	Report *Report
	// Runs is how many scenario executions the shrink spent.
	Runs int
	// Exhausted is true when the run budget stopped the descent before a
	// fixpoint (the result still fails, but may not be minimal).
	Exhausted bool
}

// Shrink reduces a failing scenario to a locally minimal reproduction:
// no single ShrinkSteps candidate of the result still fails. The failing
// report for sc must be supplied (it becomes the fallback result); runs
// are bounded by budget (<= 0 means DefaultShrinkBudget).
func (h *Harness) Shrink(sc spec.Scenario, failing *Report, budget int) (*ShrinkResult, error) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	out := &ShrinkResult{Scenario: sc, Report: failing}
	for {
		improved := false
		for _, cand := range out.Scenario.ShrinkSteps() {
			if out.Runs >= budget {
				out.Exhausted = true
				return out, nil
			}
			rep, err := h.RunScenario(cand)
			out.Runs++
			if err != nil {
				return nil, err
			}
			if rep.Failed() {
				out.Scenario = cand
				out.Report = rep
				improved = true
				break
			}
		}
		if !improved {
			return out, nil
		}
	}
}
