package pubsub

import (
	"testing"
	"time"
)

func TestBusTopicDrops(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe("", 1)
	defer sub.Close()
	// Fill the 1-deep buffer, then overflow with two topics.
	b.Publish(Message{Topic: "progress.a"})
	b.Publish(Message{Topic: "progress.a"})
	b.Publish(Message{Topic: "progress.b"})
	b.Publish(Message{Topic: "progress.b"})
	drops := b.TopicDrops()
	if drops["progress.a"] != 1 || drops["progress.b"] != 2 {
		t.Fatalf("per-topic drops = %v, want a:1 b:2", drops)
	}
	// Returned map is a copy.
	drops["progress.a"] = 99
	if b.TopicDrops()["progress.a"] != 1 {
		t.Fatal("TopicDrops exposed internal map")
	}
	if _, total := b.Stats(); total != 3 {
		t.Fatalf("global dropped = %d, want 3", total)
	}
}

// recvReconnect receives one message from a reconnecting subscriber or
// fails after a timeout.
func recvReconnect(t *testing.T, r *ReconnectingSubscriber) Message {
	t.Helper()
	select {
	case m, ok := <-r.C():
		if !ok {
			t.Fatal("reconnecting subscriber channel closed unexpectedly")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		panic("unreachable")
	}
}

func TestReconnectSurvivesKick(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	r := DialReconnect(p.Addr(), ReconnectOptions{
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	}, "progress.")
	defer r.Close()
	waitSubs(t, p, 1)

	// Normal delivery before the fault.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.Publish(Message{Topic: "progress.app", Payload: []byte("pre")})
		select {
		case m := <-r.C():
			if string(m.Payload) != "pre" {
				t.Fatalf("got %q", m.Payload)
			}
		case <-time.After(10 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("pre-fault message never arrived")
			}
			continue
		}
		break
	}

	// Kick the transport; the subscriber must come back on its own.
	if n := p.KickAll(); n != 1 {
		t.Fatalf("KickAll dropped %d conns, want 1", n)
	}
	waitSubs(t, p, 1)

	// Delivery resumes on the same channel after redial.
	deadline = time.Now().Add(5 * time.Second)
	for {
		p.Publish(Message{Topic: "progress.app", Payload: []byte("post")})
		select {
		case m := <-r.C():
			// Drain any pre-kick stragglers.
			if string(m.Payload) == "post" {
				goto resumed
			}
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("post-fault message never arrived")
		}
	}
resumed:
	if r.ConnDrops() < 1 {
		t.Fatalf("ConnDrops = %d, want >= 1", r.ConnDrops())
	}
	if r.Reconnects() < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", r.Reconnects())
	}
}

func TestReconnectBeforePublisherUp(t *testing.T) {
	// Reserve an address, then close the listener so DialReconnect's first
	// attempts fail.
	p0, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := p0.Addr()
	p0.Close()

	r := DialReconnect(addr, ReconnectOptions{
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	})
	defer r.Close()

	// Bring the publisher up on the reserved address; the subscriber must
	// find it without intervention.
	var p *Publisher
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, err = NewPublisher(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer p.Close()
	waitSubs(t, p, 1)

	deadline = time.Now().Add(5 * time.Second)
	for {
		p.Publish(Message{Topic: "x", Payload: []byte("hello")})
		select {
		case m := <-r.C():
			if string(m.Payload) != "hello" {
				t.Fatalf("got %q", m.Payload)
			}
			return
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived after late publisher start")
		}
	}
}

func TestReconnectCloseIsIdempotent(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := DialReconnect(p.Addr(), ReconnectOptions{})
	waitSubs(t, p, 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Channel closes after Close.
	select {
	case _, ok := <-r.C():
		if ok {
			// A buffered message is fine; drain until close.
			for range r.C() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel did not close")
	}
}
