package pubsub

import (
	"fmt"
	"testing"
	"time"
)

func TestClassifyTopic(t *testing.T) {
	cases := map[string]Lane{
		"control.quarantine":   LaneControl,
		"lease.grant.n1":       LaneControl,
		"fence.epoch":          LaneControl,
		"progress.n1":          LaneTelemetry,
		"telemetry.progress.x": LaneTelemetry,
		"leases":               LaneTelemetry, // prefix must match exactly
		"":                     LaneTelemetry,
	}
	for topic, want := range cases {
		if got := ClassifyTopic(topic); got != want {
			t.Errorf("ClassifyTopic(%q) = %v, want %v", topic, got, want)
		}
	}
	if LaneControl.String() != "control" || LaneTelemetry.String() != "telemetry" {
		t.Error("lane names wrong")
	}
}

func TestLanedQueueControlFirst(t *testing.T) {
	q := NewLanedQueue(4, 4)
	q.Push(Message{Topic: "progress.n1"}, 0)
	q.Push(Message{Topic: "lease.grant.n1"}, 0)
	q.Push(Message{Topic: "progress.n2"}, 0)

	m, lane, ok := q.Pop(time.Millisecond)
	if !ok || lane != LaneControl || m.Topic != "lease.grant.n1" {
		t.Fatalf("first pop = %q lane %v, want the control message", m.Topic, lane)
	}
	m, lane, ok = q.Pop(time.Millisecond)
	if !ok || lane != LaneTelemetry || m.Topic != "progress.n1" {
		t.Fatalf("second pop = %q lane %v, want oldest telemetry", m.Topic, lane)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	q.Pop(time.Millisecond)
	if _, _, ok := q.Pop(time.Millisecond); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestLanedQueueShedsPerLane(t *testing.T) {
	q := NewLanedQueue(2, 2)
	for i := 0; i < 5; i++ {
		q.Push(Message{Topic: "progress.n1"}, 0)
	}
	if !q.Push(Message{Topic: "control.x"}, 0) {
		t.Fatal("control shed while its lane had room")
	}
	ctl, tel := q.Stats()
	if tel.Shed != 3 || tel.Enqueued != 2 || tel.Depth != 2 {
		t.Errorf("telemetry stats = %+v, want shed 3 / enqueued 2 / depth 2", tel)
	}
	if ctl.Shed != 0 || ctl.Enqueued != 1 {
		t.Errorf("control stats = %+v, want shed 0 / enqueued 1", ctl)
	}
}

func TestLanedQueueLatencyStats(t *testing.T) {
	q := NewLanedQueue(8, 8)
	q.PushLane(LaneControl, Message{Topic: "control.a"}, 0)
	q.PushLane(LaneControl, Message{Topic: "control.b"}, time.Millisecond)
	q.Pop(10 * time.Millisecond) // a: 10 ms
	q.Pop(11 * time.Millisecond) // b: 10 ms
	st := q.LaneStats(LaneControl)
	if st.P50Latency != 10*time.Millisecond || st.MaxLatency != 10*time.Millisecond {
		t.Errorf("latency stats = p50 %v max %v, want 10ms/10ms", st.P50Latency, st.MaxLatency)
	}
	if st.PeakDepth != 2 || st.Delivered != 2 {
		t.Errorf("peak/delivered = %d/%d, want 2/2", st.PeakDepth, st.Delivered)
	}
}

func TestLanedQueueValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-depth lane accepted")
		}
	}()
	NewLanedQueue(0, 8)
}

// TestControlLatencyBoundedUnderTelemetryFlood is the overload acceptance
// check: at ≥10× the normal telemetry rate, the telemetry lane sheds but
// the control lane loses nothing and its p99 delivery latency stays
// bounded by one drain interval.
func TestControlLatencyBoundedUnderTelemetryFlood(t *testing.T) {
	const (
		drainEvery  = 10 * time.Millisecond // consumer service interval
		drainBatch  = 8                     // messages served per interval
		normalRate  = 4                     // telemetry per interval, fits easily
		floodFactor = 12                    // ≥10× normal
		intervals   = 400
	)
	q := NewLanedQueue(16, 64)

	now := time.Duration(0)
	for i := 0; i < intervals; i++ {
		// One control message per interval (a lease renewal)...
		q.Push(Message{Topic: "lease.renew.n1", Payload: []byte{byte(i)}}, now)
		// ...buried under a telemetry flood.
		for j := 0; j < normalRate*floodFactor; j++ {
			q.Push(Message{Topic: fmt.Sprintf("progress.n%d", j), Payload: []byte{1}}, now)
		}
		now += drainEvery
		for k := 0; k < drainBatch; k++ {
			if _, _, ok := q.Pop(now); !ok {
				break
			}
		}
	}
	// Drain the remainder so every accepted control message is delivered.
	for {
		if _, _, ok := q.Pop(now); !ok {
			break
		}
	}

	ctl, tel := q.Stats()
	if ctl.Enqueued != intervals || ctl.Shed != 0 {
		t.Fatalf("control lane enqueued %d shed %d, want %d shed 0: control must never shed under telemetry flood",
			ctl.Enqueued, ctl.Shed, intervals)
	}
	if ctl.Delivered != intervals {
		t.Fatalf("control delivered %d of %d", ctl.Delivered, intervals)
	}
	if tel.Shed == 0 {
		t.Fatal("flood did not overload the telemetry lane; test is not exercising shedding")
	}
	// Control is served first every interval, so its p99 latency is bounded
	// by one drain interval regardless of the flood.
	if ctl.P99Latency > drainEvery {
		t.Errorf("control p99 latency %v exceeds one drain interval %v under %d× flood",
			ctl.P99Latency, drainEvery, floodFactor)
	}
	if tel.P99Latency <= ctl.P99Latency {
		t.Errorf("telemetry p99 %v not worse than control p99 %v under flood — lanes are not prioritizing",
			tel.P99Latency, ctl.P99Latency)
	}
}
