package pubsub

import (
	"net"
	"sort"
	"sync"
)

// Control topic used on the wire by subscribers to register prefixes.
// Data topics never collide with it because it carries a NUL prefix.
const subscribeTopic = "\x00subscribe"

// Publisher is the TCP PUB socket: it accepts subscriber connections and
// fans published messages out to those whose registered prefixes match.
// Slow subscribers drop messages rather than backpressure the publisher.
type Publisher struct {
	ln net.Listener

	mu        sync.Mutex
	conns     map[*pubConn]struct{}
	accepted  uint64
	dropped   uint64 // connections torn down (write error, kick, close)
	lostDrops uint64 // message drops inherited from torn-down connections
	closed    bool
	wg        sync.WaitGroup
}

type pubConn struct {
	conn net.Conn
	out  chan Message

	mu       sync.Mutex
	prefixes []string
	dropped  uint64
}

// NewPublisher starts a publisher listening on addr (e.g. "127.0.0.1:0").
func NewPublisher(addr string) (*Publisher, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Publisher{ln: ln, conns: make(map[*pubConn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the publisher's listen address.
func (p *Publisher) Addr() string { return p.ln.Addr().String() }

func (p *Publisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		pc := &pubConn{conn: conn, out: make(chan Message, 1024)}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[pc] = struct{}{}
		p.accepted++
		p.mu.Unlock()
		p.wg.Add(2)
		go p.readLoop(pc)
		go p.writeLoop(pc)
	}
}

// readLoop consumes subscribe frames from the subscriber.
func (p *Publisher) readLoop(pc *pubConn) {
	defer p.wg.Done()
	defer p.dropConn(pc)
	for {
		m, err := ReadFrame(pc.conn)
		if err != nil {
			return
		}
		if m.Topic == subscribeTopic {
			pc.mu.Lock()
			pc.prefixes = append(pc.prefixes, string(m.Payload))
			pc.mu.Unlock()
		}
	}
}

func (p *Publisher) writeLoop(pc *pubConn) {
	defer p.wg.Done()
	for m := range pc.out {
		if err := WriteFrame(pc.conn, m); err != nil {
			p.dropConn(pc)
			// Drain remaining queued messages so Publish never blocks.
			for range pc.out {
			}
			return
		}
	}
}

func (p *Publisher) dropConn(pc *pubConn) {
	pc.mu.Lock()
	shed := pc.dropped
	pc.mu.Unlock()
	p.mu.Lock()
	_, live := p.conns[pc]
	delete(p.conns, pc)
	if live {
		p.dropped++
		p.lostDrops += shed
	}
	p.mu.Unlock()
	if live {
		pc.conn.Close()
		close(pc.out)
	}
}

func (pc *pubConn) matches(topic string) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, pre := range pc.prefixes {
		if len(topic) >= len(pre) && topic[:len(pre)] == pre {
			return true
		}
	}
	return false
}

// Publish fans m out to matching subscribers without blocking. It returns
// the number of subscriber queues that accepted the message.
func (p *Publisher) Publish(m Message) int {
	p.mu.Lock()
	conns := make([]*pubConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()

	delivered := 0
	for _, pc := range conns {
		if !pc.matches(m.Topic) {
			continue
		}
		select {
		case pc.out <- m:
			delivered++
		default:
			pc.mu.Lock()
			pc.dropped++
			pc.mu.Unlock()
		}
	}
	return delivered
}

// KickAll forcibly disconnects every current subscriber without stopping
// the listener — the fault-injection surface for transport failures.
// Subscribers that reconnect (see DialReconnect) are accepted again. It
// returns how many connections were dropped.
func (p *Publisher) KickAll() int {
	p.mu.Lock()
	conns := make([]*pubConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	for _, pc := range conns {
		p.dropConn(pc)
	}
	return len(conns)
}

// NumSubscribers returns the number of live subscriber connections.
func (p *Publisher) NumSubscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// SubscriberStats is one live subscriber connection's transport health.
type SubscriberStats struct {
	Remote     string   // subscriber's remote address
	Prefixes   []string // registered topic prefixes
	QueueDepth int      // messages waiting in the outbound queue
	Dropped    uint64   // messages lost to a full outbound queue
}

// PublisherStats surfaces the drop accounting that was previously
// counted per connection but never exposed: without it, a slow or
// flapping monitor silently loses progress reports and nobody can tell
// the transport from the application.
type PublisherStats struct {
	Accepted    uint64 // connections accepted over the publisher's lifetime
	Reconnects  uint64 // accepts beyond each remote's first connection
	ConnsLost   uint64 // connections torn down (write error, kick, close)
	Live        int    // current subscriber connections
	Dropped     uint64 // total messages shed across all subscribers, living and dead
	Subscribers []SubscriberStats
}

// Stats snapshots per-subscriber queue depth and drop counters plus the
// publisher's connection churn. Drops on connections that have since
// gone away stay counted in Dropped.
func (p *Publisher) Stats() PublisherStats {
	p.mu.Lock()
	conns := make([]*pubConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	st := PublisherStats{
		Accepted:  p.accepted,
		ConnsLost: p.dropped,
		Live:      len(conns),
		Dropped:   p.lostDrops,
	}
	p.mu.Unlock()

	remotes := map[string]bool{}
	for _, pc := range conns {
		pc.mu.Lock()
		s := SubscriberStats{
			Remote:     pc.conn.RemoteAddr().String(),
			Prefixes:   append([]string(nil), pc.prefixes...),
			QueueDepth: len(pc.out),
			Dropped:    pc.dropped,
		}
		pc.mu.Unlock()
		st.Dropped += s.Dropped
		remotes[s.Remote] = true
		st.Subscribers = append(st.Subscribers, s)
	}
	sort.Slice(st.Subscribers, func(i, j int) bool {
		return st.Subscribers[i].Remote < st.Subscribers[j].Remote
	})
	if st.Accepted > uint64(len(remotes)) && len(remotes) > 0 {
		st.Reconnects = st.Accepted - uint64(len(remotes))
	}
	return st
}

// Close stops the publisher and disconnects all subscribers.
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*pubConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()

	err := p.ln.Close()
	for _, pc := range conns {
		p.dropConn(pc)
	}
	p.wg.Wait()
	return err
}

// Subscriber is the TCP SUB socket: it dials a Publisher, registers topic
// prefixes, and exposes received messages on a channel.
type Subscriber struct {
	conn net.Conn
	ch   chan Message

	mu     sync.Mutex
	wmu    sync.Mutex
	closed bool
	done   chan struct{}
}

// Dial connects to a Publisher at addr and subscribes to the given
// prefixes. At least one prefix is required ("" subscribes to everything).
func Dial(addr string, prefixes ...string) (*Subscriber, error) {
	if len(prefixes) == 0 {
		prefixes = []string{""}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Subscriber{conn: conn, ch: make(chan Message, 1024), done: make(chan struct{})}
	for _, pre := range prefixes {
		if err := s.Subscribe(pre); err != nil {
			conn.Close()
			return nil, err
		}
	}
	go s.readLoop()
	return s, nil
}

// Subscribe registers an additional topic prefix.
func (s *Subscriber) Subscribe(prefix string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return WriteFrame(s.conn, Message{Topic: subscribeTopic, Payload: []byte(prefix)})
}

func (s *Subscriber) readLoop() {
	defer close(s.ch)
	defer close(s.done)
	for {
		m, err := ReadFrame(s.conn)
		if err != nil {
			return
		}
		s.ch <- m
	}
}

// C returns the receive channel; it is closed when the connection drops or
// Close is called.
func (s *Subscriber) C() <-chan Message { return s.ch }

// Close disconnects the subscriber and waits for the read loop to exit.
func (s *Subscriber) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	<-s.done
	return err
}
