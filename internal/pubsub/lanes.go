package pubsub

import (
	"sort"
	"sync"
	"time"
)

// Priority lanes: the overload-hardening layer of the message plane.
//
// The cluster's bus carries two very different kinds of traffic. Control
// messages (lease grants, renewals, fence updates, acks) are few but
// deadline-critical: cap-enforcement latency is bounded by how fast they
// move. Telemetry (progress reports) is voluminous and individually
// expendable — the monitor is already hardened against gaps. A single
// FIFO queue lets a telemetry flood push control traffic arbitrarily far
// back; the LanedQueue instead gives each class its own bounded queue,
// always serves control first, and sheds from the lowest-priority lane
// when capacity runs out. Control traffic is never queued behind
// telemetry, so a million progress reports cannot delay a fence update.

// Lane identifies a priority class.
type Lane int

// Lanes, highest priority first.
const (
	LaneControl Lane = iota
	LaneTelemetry
	numLanes
)

func (l Lane) String() string {
	switch l {
	case LaneControl:
		return "control"
	case LaneTelemetry:
		return "telemetry"
	default:
		return "lane(?)"
	}
}

// ControlPrefixes are the topic prefixes classified into the control
// lane; everything else is telemetry.
var ControlPrefixes = []string{"control.", "lease.", "fence."}

// ClassifyTopic maps a topic to its lane.
func ClassifyTopic(topic string) Lane {
	for _, pre := range ControlPrefixes {
		if len(topic) >= len(pre) && topic[:len(pre)] == pre {
			return LaneControl
		}
	}
	return LaneTelemetry
}

// LaneStats is one lane's counters. Latencies are measured from Push to
// Pop in the caller's clock (virtual time in the simulation).
type LaneStats struct {
	Enqueued  uint64
	Delivered uint64
	Shed      uint64 // messages dropped because the lane was full
	Depth     int    // current queue depth
	PeakDepth int
	// P50/P99/Max delivery latency over a sliding window of recent
	// deliveries (zero when nothing was delivered yet).
	P50Latency time.Duration
	P99Latency time.Duration
	MaxLatency time.Duration
}

// latWindow bounds the per-lane latency sample ring.
const latWindow = 4096

type lanedEntry struct {
	m  Message
	at time.Duration
}

type laneQ struct {
	buf  []lanedEntry // ring
	head int
	n    int

	enqueued  uint64
	delivered uint64
	shed      uint64
	peakDepth int

	lat    []time.Duration // sample ring
	latPos int
	latMax time.Duration
}

func (q *laneQ) push(e lanedEntry) bool {
	if q.n == len(q.buf) {
		q.shed++
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
	q.enqueued++
	if q.n > q.peakDepth {
		q.peakDepth = q.n
	}
	return true
}

func (q *laneQ) pop(now time.Duration) (Message, bool) {
	if q.n == 0 {
		return Message{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = lanedEntry{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.delivered++
	d := now - e.at
	if d < 0 {
		d = 0
	}
	if d > q.latMax {
		q.latMax = d
	}
	if len(q.lat) < latWindow {
		q.lat = append(q.lat, d)
	} else {
		q.lat[q.latPos] = d
		q.latPos = (q.latPos + 1) % latWindow
	}
	return e.m, true
}

func (q *laneQ) stats() LaneStats {
	st := LaneStats{
		Enqueued:   q.enqueued,
		Delivered:  q.delivered,
		Shed:       q.shed,
		Depth:      q.n,
		PeakDepth:  q.peakDepth,
		MaxLatency: q.latMax,
	}
	if len(q.lat) > 0 {
		tmp := append([]time.Duration(nil), q.lat...)
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		st.P50Latency = tmp[len(tmp)*50/100]
		st.P99Latency = tmp[len(tmp)*99/100]
	}
	return st
}

// LanedQueue is a two-lane bounded priority queue. Pop always serves the
// control lane before telemetry; each lane sheds its own overflow
// (lowest-priority traffic sheds first under pressure because control is
// sized for its worst-case rate while telemetry saturates). It is safe
// for concurrent use.
type LanedQueue struct {
	mu    sync.Mutex
	lanes [numLanes]laneQ
}

// NewLanedQueue sizes the two lanes. Depths must be at least 1.
func NewLanedQueue(controlDepth, telemetryDepth int) *LanedQueue {
	if controlDepth < 1 || telemetryDepth < 1 {
		panic("pubsub: lane depths must be >= 1")
	}
	q := &LanedQueue{}
	q.lanes[LaneControl].buf = make([]lanedEntry, controlDepth)
	q.lanes[LaneTelemetry].buf = make([]lanedEntry, telemetryDepth)
	return q
}

// Push enqueues m on the lane its topic classifies into, stamping the
// enqueue time for latency accounting. It reports whether the message
// was accepted (false = shed, counted against the lane).
func (q *LanedQueue) Push(m Message, now time.Duration) bool {
	return q.PushLane(ClassifyTopic(m.Topic), m, now)
}

// PushLane enqueues on an explicit lane.
func (q *LanedQueue) PushLane(lane Lane, m Message, now time.Duration) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lanes[lane].push(lanedEntry{m: m, at: now})
}

// Pop dequeues the next message, control lane first. ok is false when
// both lanes are empty.
func (q *LanedQueue) Pop(now time.Duration) (m Message, lane Lane, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for l := Lane(0); l < numLanes; l++ {
		if m, ok := q.lanes[l].pop(now); ok {
			return m, l, true
		}
	}
	return Message{}, 0, false
}

// Len returns the total queued messages across lanes.
func (q *LanedQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lanes[LaneControl].n + q.lanes[LaneTelemetry].n
}

// LaneStats returns one lane's counters.
func (q *LanedQueue) LaneStats(lane Lane) LaneStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lanes[lane].stats()
}

// Stats returns (control, telemetry) counters.
func (q *LanedQueue) Stats() (control, telemetry LaneStats) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lanes[LaneControl].stats(), q.lanes[LaneTelemetry].stats()
}
