// Package pubsub is the repository's ZeroMQ substitute: a topic-based
// publish/subscribe layer used to transport application progress reports,
// as the paper does with ZeroMQ PUB/SUB sockets (§IV-B).
//
// Two transports are provided:
//
//   - Bus: an in-process broker used by the simulation engine. Publishes
//     are non-blocking; a slow subscriber's overflowing buffer drops
//     messages and counts the drops. This mirrors ZeroMQ's lossy PUB/SUB
//     behaviour and is what reproduces the paper's observation that
//     OpenMC's progress is "occasionally reported as zero" due to a flaw
//     in the monitoring framework rather than the application.
//
//   - Publisher/Subscriber: a TCP transport (length-prefixed frames,
//     topic-prefix subscriptions) for the cmd/ tools that stream progress
//     between real processes.
package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Message is a published datum: a topic for routing plus an opaque
// payload.
type Message struct {
	Topic   string
	Payload []byte
}

// MatchesPrefix reports whether the message's topic matches a
// subscription prefix, using ZeroMQ semantics: the empty prefix matches
// everything.
func (m Message) MatchesPrefix(prefix string) bool {
	return strings.HasPrefix(m.Topic, prefix)
}

// Frame wire format:
//
//	uint32 big-endian  frame length (topicLen field + topic + payload)
//	uint16 big-endian  topic length
//	topic bytes
//	payload bytes
const (
	maxTopicLen = 1 << 16
	// MaxFrameLen bounds a single frame; progress reports are tiny, so a
	// 16 MiB ceiling guards against corrupt length prefixes without
	// constraining any real use.
	MaxFrameLen = 16 << 20
)

// ErrFrameTooLarge is returned when an encoded or decoded frame exceeds
// MaxFrameLen.
var ErrFrameTooLarge = errors.New("pubsub: frame exceeds maximum length")

// EncodeFrame appends the wire encoding of m to dst and returns the
// extended slice.
func EncodeFrame(dst []byte, m Message) ([]byte, error) {
	if len(m.Topic) >= maxTopicLen {
		return dst, fmt.Errorf("pubsub: topic length %d exceeds %d", len(m.Topic), maxTopicLen-1)
	}
	body := 2 + len(m.Topic) + len(m.Payload)
	if body > MaxFrameLen {
		return dst, ErrFrameTooLarge
	}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(body))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(m.Topic)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, m.Topic...)
	dst = append(dst, m.Payload...)
	return dst, nil
}

// WriteFrame writes the wire encoding of m to w.
func WriteFrame(w io.Writer, m Message) error {
	buf, err := EncodeFrame(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r. It returns io.EOF cleanly when the
// stream ends on a frame boundary and io.ErrUnexpectedEOF mid-frame.
func ReadFrame(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	body := binary.BigEndian.Uint32(lenBuf[:])
	if body > MaxFrameLen {
		return Message{}, ErrFrameTooLarge
	}
	if body < 2 {
		return Message{}, fmt.Errorf("pubsub: frame body %d shorter than topic header", body)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, err
	}
	topicLen := int(binary.BigEndian.Uint16(buf[0:2]))
	if 2+topicLen > len(buf) {
		return Message{}, fmt.Errorf("pubsub: topic length %d exceeds frame body %d", topicLen, len(buf))
	}
	return Message{
		Topic:   string(buf[2 : 2+topicLen]),
		Payload: buf[2+topicLen:],
	}, nil
}
