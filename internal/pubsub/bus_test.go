package pubsub

import (
	"fmt"
	"testing"
)

func TestBusDeliversToMatchingSubscribers(t *testing.T) {
	b := NewBus()
	all := b.Subscribe("", 10)
	lammps := b.Subscribe("progress.lammps", 10)
	power := b.Subscribe("power.", 10)

	n := b.Publish(Message{Topic: "progress.lammps", Payload: []byte("1")})
	if n != 2 {
		t.Fatalf("delivered to %d subs, want 2", n)
	}
	if m, ok := all.TryRecv(); !ok || m.Topic != "progress.lammps" {
		t.Fatalf("all-sub recv = %v,%v", m, ok)
	}
	if _, ok := lammps.TryRecv(); !ok {
		t.Fatal("prefix sub missed matching message")
	}
	if _, ok := power.TryRecv(); ok {
		t.Fatal("non-matching sub received message")
	}
}

func TestBusDropsOnFullBuffer(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("", 2)
	for i := 0; i < 5; i++ {
		b.Publish(Message{Topic: "t"})
	}
	if s.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", s.Dropped())
	}
	pub, drop := b.Stats()
	if pub != 5 || drop != 3 {
		t.Fatalf("Stats = %d,%d, want 5,3", pub, drop)
	}
	got := s.DrainInto(nil)
	if len(got) != 2 {
		t.Fatalf("drained %d, want 2", len(got))
	}
}

func TestBusTryRecvEmpty(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("", 1)
	if _, ok := s.TryRecv(); ok {
		t.Fatal("TryRecv on empty buffer returned ok")
	}
}

func TestBusCloseUnregisters(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("", 1)
	s.Close()
	if n := b.Publish(Message{Topic: "t"}); n != 0 {
		t.Fatalf("delivered to closed sub: %d", n)
	}
	// channel closed: receive yields not-ok
	if _, open := <-s.C(); open {
		t.Fatal("channel still open after Close")
	}
	s.Close() // idempotent: must not panic
}

func TestBusBadBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe(buffer=0) did not panic")
		}
	}()
	NewBus().Subscribe("", 0)
}

func TestBusManySubscribers(t *testing.T) {
	b := NewBus()
	subs := make([]*Subscription, 20)
	for i := range subs {
		subs[i] = b.Subscribe(fmt.Sprintf("app.%d.", i), 5)
	}
	for i := 0; i < 20; i++ {
		b.Publish(Message{Topic: fmt.Sprintf("app.%d.progress", i), Payload: []byte{byte(i)}})
	}
	for i, s := range subs {
		m, ok := s.TryRecv()
		if !ok || m.Payload[0] != byte(i) {
			t.Fatalf("sub %d got %v,%v", i, m, ok)
		}
		if _, ok := s.TryRecv(); ok {
			t.Fatalf("sub %d received cross-topic message", i)
		}
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	s := b.Subscribe("", 10000)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				b.Publish(Message{Topic: "t"})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	pub, drop := b.Stats()
	if pub != 800 || drop != 0 {
		t.Fatalf("Stats = %d,%d, want 800,0", pub, drop)
	}
	if got := len(s.DrainInto(nil)); got != 800 {
		t.Fatalf("received %d, want 800", got)
	}
}
