// Checkpoint accessors. The bus's channels must be empty at a
// checkpoint instant (the engine only snapshots at window boundaries,
// right after the flush drained every subscription), so only the drop
// accounting is state; Pending exposes the emptiness check.

package pubsub

// BusState is the bus's loss accounting.
type BusState struct {
	Published  uint64
	Dropped    uint64
	TopicDrops map[string]uint64
}

// Snapshot captures the bus's accounting.
func (b *Bus) Snapshot() BusState {
	b.mu.Lock()
	defer b.mu.Unlock()
	td := make(map[string]uint64, len(b.topicDrops))
	for t, n := range b.topicDrops {
		td[t] = n
	}
	return BusState{Published: b.published, Dropped: b.dropped, TopicDrops: td}
}

// Restore pours captured accounting back.
func (b *Bus) Restore(s BusState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.published = s.Published
	b.dropped = s.Dropped
	b.topicDrops = make(map[string]uint64, len(s.TopicDrops))
	for t, n := range s.TopicDrops {
		b.topicDrops[t] = n
	}
}

// Pending returns how many delivered messages are buffered and not yet
// received. The engine requires zero before checkpointing: buffered
// payloads alias recyclable buffers and do not survive a deep copy.
func (s *Subscription) Pending() int { return len(s.ch) }

// SetDropped restores the subscription's per-subscription drop count.
func (s *Subscription) SetDropped(n uint64) {
	s.mu.Lock()
	s.dropped = n
	s.mu.Unlock()
}
