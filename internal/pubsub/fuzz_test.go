package pubsub

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the wire decoder against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to an
// equivalent frame.
func FuzzReadFrame(f *testing.F) {
	good, _ := EncodeFrame(nil, Message{Topic: "progress.lammps", Payload: []byte("42")})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		re, err := EncodeFrame(nil, m)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		m2, err := ReadFrame(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if m2.Topic != m.Topic || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatal("re-encode round trip changed the frame")
		}
	})
}
