package pubsub

import (
	"sync"
	"time"

	"progresscap/internal/simtime"
)

// ReconnectOptions tunes DialReconnect's retry behaviour.
type ReconnectOptions struct {
	// InitialBackoff is the delay before the first redial attempt
	// (default 50 ms). Each failed attempt doubles it up to MaxBackoff
	// (default 2 s); a successful connection resets it.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// Jitter is the ± fraction applied to every backoff sleep (default
	// 0.2) so a fleet of monitors does not redial in lockstep after a
	// publisher restart.
	Jitter float64
	// Seed drives the jitter RNG (default 1), keeping even the retry
	// schedule reproducible.
	Seed uint64
	// Buffer is the receive channel depth (default 1024).
	Buffer int
}

func (o *ReconnectOptions) fillDefaults() {
	if o.InitialBackoff <= 0 {
		o.InitialBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Jitter <= 0 {
		o.Jitter = 0.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Buffer <= 0 {
		o.Buffer = 1024
	}
}

// ReconnectingSubscriber is a Subscriber that survives transport
// failures: when the connection to the publisher drops, it redials with
// jittered exponential backoff, re-registers its topic prefixes, and
// resumes delivery on the same channel. Messages published while
// disconnected are lost (PUB/SUB has no replay); the ConnDrops and
// Reconnects counters let consumers attribute the resulting silent gaps
// to the transport instead of the application.
type ReconnectingSubscriber struct {
	addr     string
	prefixes []string
	opts     ReconnectOptions
	ch       chan Message
	done     chan struct{}

	mu         sync.Mutex
	cur        *Subscriber
	closed     bool
	connDrops  uint64
	reconnects uint64
}

// DialReconnect returns a subscriber that keeps itself connected to the
// publisher at addr. Unlike Dial it never fails: if the publisher is not
// up yet, the subscriber keeps retrying in the background until Close.
func DialReconnect(addr string, opts ReconnectOptions, prefixes ...string) *ReconnectingSubscriber {
	opts.fillDefaults()
	if len(prefixes) == 0 {
		prefixes = []string{""}
	}
	r := &ReconnectingSubscriber{
		addr:     addr,
		prefixes: append([]string(nil), prefixes...),
		opts:     opts,
		ch:       make(chan Message, opts.Buffer),
		done:     make(chan struct{}),
	}
	go r.loop()
	return r
}

// C returns the receive channel. It stays open across reconnects and is
// closed only by Close.
func (r *ReconnectingSubscriber) C() <-chan Message { return r.ch }

// ConnDrops returns how many established connections have been lost.
func (r *ReconnectingSubscriber) ConnDrops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connDrops
}

// Reconnects returns how many times the subscriber re-established a
// connection after a drop (the resume-from-drop counter; the initial
// connection is not counted).
func (r *ReconnectingSubscriber) Reconnects() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconnects
}

// Close stops the reconnect loop and closes the receive channel.
func (r *ReconnectingSubscriber) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	cur := r.cur
	r.mu.Unlock()
	close(r.done)
	if cur != nil {
		cur.Close()
	}
	return nil
}

func (r *ReconnectingSubscriber) loop() {
	defer close(r.ch)
	rng := simtime.NewRNG(r.opts.Seed)
	backoff := r.opts.InitialBackoff
	connected := false
	for {
		sub, err := Dial(r.addr, r.prefixes...)
		if err == nil {
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				sub.Close()
				return
			}
			r.cur = sub
			if connected || r.connDrops > 0 {
				r.reconnects++
			}
			connected = true
			r.mu.Unlock()
			backoff = r.opts.InitialBackoff

			for m := range sub.C() {
				select {
				case r.ch <- m:
				case <-r.done:
					sub.Close()
					return
				}
			}
			// The stream ended: either the transport dropped or Close ran.
			r.mu.Lock()
			r.cur = nil
			if r.closed {
				r.mu.Unlock()
				return
			}
			r.connDrops++
			r.mu.Unlock()
		}

		sleep := time.Duration(float64(backoff) * rng.Jitter(r.opts.Jitter))
		select {
		case <-time.After(sleep):
		case <-r.done:
			return
		}
		backoff *= 2
		if backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}
