package pubsub

import (
	"sync"
)

// Bus is the in-process broker. It is safe for concurrent use, though the
// deterministic simulation engine drives it from a single goroutine.
type Bus struct {
	mu         sync.Mutex
	subs       map[*Subscription]struct{}
	published  uint64
	dropped    uint64
	topicDrops map[string]uint64
}

// Subscription receives messages whose topic matches its prefix. Messages
// are buffered; when the buffer is full, new messages for this
// subscription are dropped (ZeroMQ PUB/SUB semantics).
type Subscription struct {
	bus     *Bus
	prefix  string
	ch      chan Message
	mu      sync.Mutex
	dropped uint64
	closed  bool
}

// NewBus returns an empty broker.
func NewBus() *Bus {
	return &Bus{
		subs:       make(map[*Subscription]struct{}),
		topicDrops: make(map[string]uint64),
	}
}

// Subscribe registers interest in topics beginning with prefix. The empty
// prefix receives everything. buffer is the subscription queue depth; it
// must be at least 1.
func (b *Bus) Subscribe(prefix string, buffer int) *Subscription {
	if buffer < 1 {
		panic("pubsub: subscription buffer must be >= 1")
	}
	s := &Subscription{bus: b, prefix: prefix, ch: make(chan Message, buffer)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Publish delivers m to every matching subscription without blocking.
// It returns the number of subscriptions that accepted the message.
func (b *Bus) Publish(m Message) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.published++
	delivered := 0
	for s := range b.subs {
		if !m.MatchesPrefix(s.prefix) {
			continue
		}
		select {
		case s.ch <- m:
			delivered++
		default:
			b.dropped++
			b.topicDrops[m.Topic]++
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
		}
	}
	return delivered
}

// NumSubscribers returns the current subscription count. The engine uses
// it to prove no external observer holds a subscription before it recycles
// payload buffers that delivered messages still reference.
func (b *Bus) NumSubscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Stats returns the total messages published to the bus and the total
// drops across all subscriptions.
func (b *Bus) Stats() (published, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.dropped
}

// TopicDrops returns a copy of the per-topic drop counts, so a loss
// artifact (the paper's OpenMC zero reports) is attributable to the
// progress stream that suffered it rather than a global total.
func (b *Bus) TopicDrops() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.topicDrops))
	for t, n := range b.topicDrops {
		out[t] = n
	}
	return out
}

// C returns the subscription's receive channel. The channel is closed by
// Close.
func (s *Subscription) C() <-chan Message { return s.ch }

// TryRecv returns the next buffered message without blocking. ok is false
// when the buffer is empty.
func (s *Subscription) TryRecv() (Message, bool) {
	select {
	case m, open := <-s.ch:
		if !open {
			return Message{}, false
		}
		return m, true
	default:
		return Message{}, false
	}
}

// DrainInto appends every currently buffered message to dst and returns
// the extended slice.
func (s *Subscription) DrainInto(dst []Message) []Message {
	for {
		m, ok := s.TryRecv()
		if !ok {
			return dst
		}
		dst = append(dst, m)
	}
}

// Dropped returns how many messages this subscription lost to a full
// buffer.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Prefix returns the subscription's topic prefix.
func (s *Subscription) Prefix() string { return s.prefix }

// Close unregisters the subscription and closes its channel. Close is
// idempotent.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	_, registered := s.bus.subs[s]
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed && registered {
		close(s.ch)
	}
	s.closed = true
}
