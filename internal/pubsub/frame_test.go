package pubsub

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{Topic: "progress.lammps", Payload: []byte("42.5")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Topic != in.Topic || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Message{Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topic != "t" || len(m.Payload) != 0 {
		t.Fatalf("got %+v", m)
	}
}

func TestFrameEmptyTopic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Message{Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topic != "" || string(m.Payload) != "x" {
		t.Fatalf("got %+v", m)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, Message{Topic: "t", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("frame %d payload = %v", i, m.Payload)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameTruncatedMidFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Message{Topic: "topic", Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameOversizeTopicRejected(t *testing.T) {
	big := strings.Repeat("x", maxTopicLen)
	if _, err := EncodeFrame(nil, Message{Topic: big}); err == nil {
		t.Fatal("oversize topic accepted")
	}
}

func TestFrameCorruptTopicLen(t *testing.T) {
	// body says 4 bytes, topic header claims 100.
	raw := []byte{0, 0, 0, 4, 0, 100, 'a', 'b'}
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt topic length accepted")
	}
}

func TestFrameOversizeBodyRejected(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(raw)); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameBodyTooShortRejected(t *testing.T) {
	raw := []byte{0, 0, 0, 1, 0}
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("one-byte body accepted")
	}
}

func TestMatchesPrefix(t *testing.T) {
	m := Message{Topic: "progress.amg"}
	if !m.MatchesPrefix("") || !m.MatchesPrefix("progress.") || !m.MatchesPrefix("progress.amg") {
		t.Fatal("prefix matching broken")
	}
	if m.MatchesPrefix("progress.amgX") || m.MatchesPrefix("power.") {
		t.Fatal("prefix over-matching")
	}
}

// Property: any (topic, payload) with a short topic round-trips exactly.
func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(topicRaw []byte, payload []byte) bool {
		if len(topicRaw) > 1000 {
			topicRaw = topicRaw[:1000]
		}
		in := Message{Topic: string(topicRaw), Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.Topic == in.Topic && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
